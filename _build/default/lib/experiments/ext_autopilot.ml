open Nestfusion
module Time = Nest_sim.Time
module Pod = Nest_orch.Pod
module Node = Nest_orch.Node

let make_pods ~quick rng =
  let n = if quick then 14 else 30 in
  List.init n (fun i ->
      let containers = 2 + Nest_sim.Prng.int rng 2 in
      Pod.make
        ~name:(Printf.sprintf "pod%d" i)
        (List.init containers (fun j ->
             Pod.container
               ~name:(Printf.sprintf "c%d" j)
               ~cpu:(1.0 +. Nest_sim.Prng.range_float rng 0.0 0.6)
               ~mem:(0.3 +. Nest_sim.Prng.range_float rng 0.0 0.4)
               ())))

let drive ~allow_split ~pods =
  let tb = Testbed.create ~num_vms:1 () in
  let ap = Autopilot.create tb ~allow_split ~provision_delay:(Time.sec 30) () in
  List.iter
    (fun pod ->
      let done_ = ref false in
      Autopilot.deploy ap pod ~on_ready:(fun _ -> done_ := true);
      Testbed.run_until tb
        (Nest_sim.Engine.now tb.Testbed.engine + Time.sec 400);
      if not !done_ then
        failwith ("ext-autopilot: deployment stuck for " ^ pod.Pod.pod_name))
    pods;
  let fleet = Autopilot.nodes ap in
  let cap = List.fold_left (fun a n -> a +. Node.cpu_capacity n) 0.0 fleet in
  let req = List.fold_left (fun a n -> a +. Node.cpu_requested n) 0.0 fleet in
  ( List.length fleet,
    Autopilot.vms_bought ap,
    Autopilot.pods_split ap,
    100.0 *. req /. cap )

let run ~quick =
  Exp_util.header
    "Extension (paper 7) - integrated orchestrator: Hostlo splitting vs whole-pod";
  let rng = Nest_sim.Prng.create 77L in
  let pods = make_pods ~quick rng in
  Printf.printf "workload: %d pods, %.1f vCPU total requested\n"
    (List.length pods)
    (List.fold_left (fun a p -> a +. Pod.cpu_total p) 0.0 pods);
  let rows =
    [ ("whole-pod only", drive ~allow_split:false ~pods);
      ("with Hostlo splitting", drive ~allow_split:true ~pods) ]
  in
  Printf.printf "%-22s %8s %10s %8s %12s\n" "mode" "fleet" "VMs bought"
    "splits" "cpu util";
  List.iter
    (fun (name, (fleet, bought, splits, util)) ->
      Printf.printf "%-22s %8d %10d %8d %11.1f%%\n" name fleet bought splits
        util)
    rows;
  let _, (_, b0, _, u0) = List.nth rows 0 in
  let _, (_, b1, _, u1) = List.nth rows 1 in
  Exp_util.kv "VMs saved by cross-VM deployment"
    (Printf.sprintf "%d (utilization %+.1f points)" (b0 - b1) (u1 -. u0))
