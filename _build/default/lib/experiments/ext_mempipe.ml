open Nestfusion
module Time = Nest_sim.Time
module Stats = Nest_sim.Stats
module Engine = Nest_sim.Engine

type Nest_net.Payload.app_msg += Mp_req of Time.ns | Mp_resp of Time.ns

(* Closed-loop RR over a MemPipe channel between two VMs. *)
let mempipe_rr ~quick ~size =
  let tb = Testbed.create ~num_vms:2 () in
  let engine = tb.Testbed.engine in
  let shm = Pod_resources.Shm.create () in
  let chan =
    Mempipe.create tb.Testbed.host shm ~pod:"pod" ~name:"rr-ring" ()
  in
  let a = Mempipe.attach chan (Testbed.vm tb 0) in
  let b = Mempipe.attach chan (Testbed.vm tb 1) in
  let latency = Stats.create ~name:"mempipe_us" () in
  let measuring = ref false in
  let stop_at = ref max_int in
  (* Server fraction: echo with the same app cost netperf's server pays. *)
  let srv_exec =
    Nest_virt.Vm.new_app_exec (Testbed.vm tb 1) ~name:"srv" ~entity:"srv"
  in
  Mempipe.set_on_recv b (fun ~size ~msg ->
      match msg with
      | Some (Mp_req t0) ->
        Nest_sim.Exec.submit srv_exec ~cost:250 (fun () ->
            Mempipe.send b ~size ~msg:(Mp_resp t0) ())
      | _ -> ());
  let send_next () =
    Mempipe.send a ~size ~msg:(Mp_req (Engine.now engine)) ()
  in
  Mempipe.set_on_recv a (fun ~size:_ ~msg ->
      match msg with
      | Some (Mp_resp t0) ->
        if !measuring then
          Stats.add latency (Time.to_us_f (Engine.now engine - t0));
        if Engine.now engine < !stop_at then send_next ()
      | _ -> ());
  let d = Exp_util.durations ~quick in
  let t0 = Engine.now engine in
  stop_at := t0 + d.Exp_util.warmup + d.Exp_util.measure;
  send_next ();
  Engine.run ~until:(t0 + d.Exp_util.warmup) engine;
  measuring := true;
  Engine.run ~until:(!stop_at + Time.ms 10) engine;
  latency

let socket_rr ~quick ~mode ~size =
  let tb, site = Exp_util.deploy_pair_sync ~mode ~port:7000 () in
  let ep = Nest_workloads.App.of_pair site in
  let d = Exp_util.durations ~quick in
  (Nest_workloads.Netperf.udp_rr tb ep ~msg_size:size
     ~warmup:d.Exp_util.warmup ~duration:d.Exp_util.measure ())
    .Nest_workloads.Netperf.latency

let run ~quick =
  Exp_util.header
    "Extension (paper 6) - MemPipe shared memory vs Hostlo vs SameNode";
  Printf.printf "%-22s %14s %12s %s\n" "transport" "RR lat (us)" "sd (us)"
    "transparent?";
  let rows =
    [ ( "SameNode localhost",
        socket_rr ~quick ~mode:`SameNode ~size:1024, "yes (same VM only)" );
      ("Hostlo localhost", socket_rr ~quick ~mode:`Hostlo ~size:1024,
        "yes (unmodified apps)");
      ("MemPipe shared mem", mempipe_rr ~quick ~size:1024,
        "no (channel API)") ]
  in
  List.iter
    (fun (name, l, transparent) ->
      Printf.printf "%-22s %14.1f %12.1f %s\n" name (Stats.mean l)
        (Stats.stddev l) transparent)
    rows;
  Exp_util.row
    "  (MemPipe wins on latency by skipping virtio/vhost entirely, but the\n\
    \   paper keeps Hostlo: pods expect their localhost, not a custom API)"
