open Nestfusion
open Nest_net
module Time = Nest_sim.Time
module Stats = Nest_sim.Stats
module App = Nest_workloads.App
module Netperf = Nest_workloads.Netperf
module Cost_model = Nest_virt.Cost_model

let dur ~quick = if quick then Time.ms 150 else Time.ms 500

let deploy_single_cm ~cost_model ~mode =
  let tb = Testbed.create ~cost_model ~num_vms:1 () in
  let site = ref None in
  Deploy.deploy_single tb ~mode ~name:"pod" ~entity:"server" ~port:7000
    ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  (tb, App.of_single tb (Option.get !site))

let stream_cm ~quick ~cost_model mode =
  let tb, ep = deploy_single_cm ~cost_model ~mode in
  (Netperf.tcp_stream tb ep ~msg_size:1280 ~duration:(dur ~quick) ()).Netperf.mbps

let guest_factor ~quick =
  Exp_util.header "Ablation — guest-kernel cost factor";
  Printf.printf "%8s %12s %12s %14s\n" "factor" "NoCont" "NAT" "NAT/NoCont";
  List.iter
    (fun f ->
      let cost_model =
        { Cost_model.default with Cost_model.guest_kernel_factor = f }
      in
      let noc = stream_cm ~quick ~cost_model `NoCont in
      let nat = stream_cm ~quick ~cost_model `Nat in
      Printf.printf "%8.2f %10.0f M %10.0f M %13.2f%%\n" f noc nat
        (100.0 *. nat /. noc))
    [ 1.0; 1.2; 1.4; 1.8 ];
  Exp_util.row "  (the nested path pays the factor on every in-VM hop)"

let chain_length ~quick =
  Exp_util.header "Ablation — iptables chain length in the VM";
  Printf.printf "%12s %12s %12s\n" "extra rules" "NAT" "BrFusion";
  List.iter
    (fun extra ->
      let measure mode =
        let tb, ep = deploy_single_cm ~cost_model:Cost_model.default ~mode in
        (* Pile extra never-matching rules onto the VM's forward chain,
           like a busy firewall would. *)
        let nf = Stack.nf (Nest_virt.Vm.ns (Testbed.vm tb 0)) in
        for i = 1 to extra do
          Netfilter.append nf Netfilter.Forward
            { Netfilter.rule_name = Printf.sprintf "filler-%d" i;
              matches = (fun _ _ -> false);
              action = (fun _ _ -> Netfilter.Accept) }
        done;
        (Netperf.tcp_stream tb ep ~msg_size:1280 ~duration:(dur ~quick) ())
          .Netperf.mbps
      in
      Printf.printf "%12d %10.0f M %10.0f M\n" extra (measure `Nat)
        (measure `Brfusion))
    [ 0; 20; 60 ];
  Exp_util.row
    "  (BrFusion pods bypass the VM's hooks entirely: flat by construction)"

let hostlo_fanout ~quick =
  Exp_util.header "Ablation — Hostlo reflection fan-out (fractions per pod)";
  Printf.printf "%10s %14s %14s\n" "fractions" "RR latency" "host sys cores";
  List.iter
    (fun n ->
      let tb = Testbed.create ~num_vms:n () in
      let config = Hostlo.make_config tb.Testbed.vmm in
      let plugin = Hostlo.plugin config in
      let nss = Array.make n None in
      Array.iteri
        (fun i _ ->
          plugin.Nest_orch.Cni.add ~pod_name:"pod" ~node:(Testbed.node tb i)
            ~publish:[] ~k:(fun ns -> nss.(i) <- Some ns))
        nss;
      Testbed.run_until tb (Time.sec 2);
      let a = Option.get nss.(0) and b = Option.get nss.(1) in
      let exec_a =
        Nest_virt.Vm.new_app_exec (Testbed.vm tb 0) ~name:"a" ~entity:"a"
      and exec_b =
        Nest_virt.Vm.new_app_exec (Testbed.vm tb 1) ~name:"b" ~entity:"b"
      in
      let ep =
        { App.cl_ns = a; cl_exec = exec_a; sv_ns = b; sv_exec = exec_b;
          sv_addr = Ipv4.localhost; sv_port = 9000;
          cl_new_exec =
            (fun nm -> Nest_virt.Vm.new_app_exec (Testbed.vm tb 0) ~name:nm ~entity:"a");
          sv_new_exec =
            (fun nm -> Nest_virt.Vm.new_app_exec (Testbed.vm tb 1) ~name:nm ~entity:"b") }
      in
      let before = App.Cpu_snap.take tb.Testbed.acct in
      let rr = Netperf.udp_rr tb ep ~msg_size:256 ~duration:(dur ~quick) () in
      let after = App.Cpu_snap.take tb.Testbed.acct in
      let soft =
        App.Cpu_snap.diff_cores ~before ~after ~entity:"host"
          Nest_sim.Cpu_account.Sys
          ~window:(dur ~quick + Time.ms 50)
      in
      Printf.printf "%10d %11.1f us %14.3f\n" n
        (Stats.mean rr.Netperf.latency)
        soft)
    [ 2; 3; 4 ];
  Exp_util.row "  (every frame is reflected to every fraction's queue)"

let packing_policy ~quick =
  Exp_util.header "Ablation — baseline placement policy vs Hostlo savings";
  let users =
    Nest_traces.Trace_gen.generate ~seed:2026L ~users:(if quick then 60 else 150)
  in
  Printf.printf "%-16s %14s %14s %10s\n" "policy" "baseline $/h"
    "hostlo $/h" "saving";
  List.iter
    (fun (name, policy) ->
      let base_total, hostlo_total =
        List.fold_left
          (fun (b, h) user ->
            let plan = Nest_costsim.Kube_pack.pack_user ~policy user in
            let improved, _ = Nest_costsim.Hostlo_pack.improve_copy plan in
            ( b +. Nest_costsim.Kube_pack.plan_cost plan,
              h +. Nest_costsim.Kube_pack.plan_cost improved ))
          (0.0, 0.0) users
      in
      Printf.printf "%-16s %14.2f %14.2f %9.1f%%\n" name base_total
        hostlo_total
        (100.0 *. (base_total -. hostlo_total) /. base_total))
    [ ("most-requested", Nest_costsim.Kube_pack.Most_requested);
      ("least-requested", Nest_costsim.Kube_pack.Least_requested);
      ("first-fit", Nest_costsim.Kube_pack.First_fit) ];
  Exp_util.row
    "  (a weaker baseline leaves more fragmentation for Hostlo to reclaim)"

let all ~quick =
  guest_factor ~quick;
  chain_length ~quick;
  hostlo_fanout ~quick;
  packing_policy ~quick
