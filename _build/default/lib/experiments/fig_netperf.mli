(** Netperf micro-benchmarks: Figs. 2, 4 and 10. *)

type point = {
  size : int;
  mbps : float;
  lat_mean_us : float;
  lat_sd_us : float;
}

val sweep_single :
  quick:bool -> mode:Nestfusion.Modes.single -> sizes:int list -> point list
(** One fresh testbed per mode, throughput and UDP_RR latency per
    message size. *)

val sweep_pair :
  quick:bool -> mode:Nestfusion.Modes.pair -> sizes:int list -> point list

val fig2 : quick:bool -> unit
(** NAT vs NoCont at 1280 B — the motivation excerpt. *)

val fig4 : quick:bool -> unit
(** Full BrFusion sweep with the paper's headline checks. *)

val fig10 : quick:bool -> unit
(** Hostlo overhead sweep across the four intra-pod modes. *)
