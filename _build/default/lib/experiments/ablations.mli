(** Ablation benches for the design choices DESIGN.md calls out.

    None of these reproduce a paper figure; they perturb one mechanism at
    a time to show which part of the model carries each result. *)

val guest_factor : quick:bool -> unit
(** Sweeps the guest-kernel cost factor: the NAT-vs-NoCont gap should
    widen with it (nested virtualization pays the guest factor twice). *)

val chain_length : quick:bool -> unit
(** Sweeps extra iptables rules in the VM: NAT throughput must degrade
    with chain length while BrFusion — whose pod pays no in-VM hooks —
    stays flat. *)

val hostlo_fanout : quick:bool -> unit
(** Splits one pod across 2..4 VMs sharing one Hostlo tap: reflection
    fans every frame to all queues, so per-pair latency and host CPU grow
    with fraction count. *)

val packing_policy : quick:bool -> unit
(** Compares the whole-pod baseline under most-requested (the paper's),
    least-requested and first-fit placement: consolidation is what keeps
    the baseline competitive, shrinking Hostlo's relative savings. *)

val all : quick:bool -> unit
