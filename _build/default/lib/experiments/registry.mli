(** Experiment registry: every table and figure of the paper's
    evaluation, addressable by id. *)

type entry = {
  id : string;           (** e.g. "fig4", "table2". *)
  description : string;
  run : quick:bool -> unit;
}

val all : entry list
(** In paper order: fig2, table1, fig4, fig5, fig6, fig7, fig8, table2,
    fig9, fig10, fig11, fig12, fig13, fig14, fig15. *)

val ablations : entry list
(** Ablation benches (not part of the paper's evaluation): guest-kernel
    factor, iptables chain length, Hostlo fan-out, packing policy. *)

val find : string -> entry option
(** Searches both [all] and [ablations]. *)

val ids : unit -> string list
val run_all : quick:bool -> unit
