(** Table 2 and Fig. 9 — the Hostlo money-saving simulation. *)

val table2 : unit -> unit

val fig9 : quick:bool -> unit
(** Full mode: 492 users (the paper's population); quick: 150. *)
