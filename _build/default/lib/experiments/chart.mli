(** Terminal charts for the experiment harness: the tables stay the
    ground truth, but a curve per figure makes who-wins-where readable at
    a glance in CI logs. *)

val plot :
  title:string ->
  y_label:string ->
  x_labels:string list ->
  series:(string * float list) list ->
  ?height:int ->
  ?width:int ->
  unit ->
  string
(** Categorical-x line chart: every series has one value per x label
    (shorter series are right-padded with gaps).  [height] defaults to
    12 rows, [width] to 72 columns of plot area.  Returns the rendered
    block (with legend); raises [Invalid_argument] on empty input. *)

val markers : char list
(** Marker cycle, in series order. *)
