(** CPU-usage breakdowns: Figs. 6, 7 (BrFusion) and 14, 15 (Hostlo).

    Breakdowns come from the same {!Nest_sim.Cpu_account} bookkeeping
    that the datapath charges, bracketed around the workload run:
    application [usr], guest-kernel [sys]/[soft] per VM, host [guest]
    (KVM time given to guests) and host [sys] (vhost workers). *)

val fig6 : quick:bool -> unit
(** Kafka CPU breakdown across NoCont / NAT / BrFusion. *)

val fig7 : quick:bool -> unit
(** NGINX CPU breakdown (same axes, larger magnitude). *)

val fig14 : quick:bool -> unit
(** Memcached CPU usage across the four intra-pod modes. *)

val fig15 : quick:bool -> unit
(** NGINX CPU usage across the four intra-pod modes. *)
