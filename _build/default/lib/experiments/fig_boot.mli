(** Fig. 8 — container start-up time, Docker NAT vs BrFusion.

    100 sequential container boots per configuration on a fresh testbed;
    the BrFusion path performs a *live* QMP hot-plug (netdev_add +
    device_add + in-guest probe), the NAT path pays the sampled veth +
    docker0 + iptables setup.  Start-up time is order-to-first-message,
    as defined in §5.2.4; the simulated clock plays the TSC's role of an
    absolute cross-boundary clock. *)

val boot_samples :
  mode:[ `Nat | `Brfusion ] -> runs:int -> seed:int64 -> float list
(** Start-up times in milliseconds. *)

val fig8 : quick:bool -> unit
(** Prints CDF excerpts and the Fig. 8b-style statistics; quick mode
    runs 40 boots instead of 100. *)
