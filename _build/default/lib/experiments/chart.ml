let markers = [ '*'; '+'; 'o'; 'x'; '#'; '@' ]

let nice_value v =
  if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 10.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.2f" v

let plot ~title ~y_label ~x_labels ~series ?(height = 12) ?(width = 72) () =
  if x_labels = [] || series = [] then invalid_arg "Chart.plot: empty input";
  let n = List.length x_labels in
  let all_values = List.concat_map snd series in
  if all_values = [] then invalid_arg "Chart.plot: no data";
  let vmax = List.fold_left Float.max neg_infinity all_values in
  let vmin = Float.min 0.0 (List.fold_left Float.min infinity all_values) in
  let vmax = if vmax <= vmin then vmin +. 1.0 else vmax in
  let grid = Array.make_matrix height width ' ' in
  let col_of i =
    if n = 1 then width / 2 else i * (width - 1) / (n - 1)
  in
  let row_of v =
    let frac = (v -. vmin) /. (vmax -. vmin) in
    let r = int_of_float (Float.round (frac *. float_of_int (height - 1))) in
    height - 1 - max 0 (min (height - 1) r)
  in
  List.iteri
    (fun s_idx (_, values) ->
      let marker = List.nth markers (s_idx mod List.length markers) in
      List.iteri
        (fun i v ->
          if i < n then begin
            let c = col_of i and r = row_of v in
            grid.(r).(c) <- (if grid.(r).(c) = ' ' then marker else '%')
          end)
        values)
    series;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("  " ^ title ^ "\n");
  let y_tag r =
    if r = 0 then nice_value vmax
    else if r = height - 1 then nice_value vmin
    else if r = (height - 1) / 2 then nice_value ((vmax +. vmin) /. 2.0)
    else ""
  in
  Array.iteri
    (fun r row ->
      Buffer.add_string buf (Printf.sprintf "%10s |" (y_tag r));
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  (* x tick labels: first, middle, last. *)
  let label i = List.nth x_labels i in
  let x_line = Bytes.make (width + 12) ' ' in
  let place s col =
    let start = max 0 (min (width + 12 - String.length s) (col + 11)) in
    String.iteri (fun j ch -> Bytes.set x_line (start + j) ch) s
  in
  place (label 0) (col_of 0);
  if n > 2 then place (label ((n - 1) / 2)) (col_of ((n - 1) / 2) - 3);
  if n > 1 then place (label (n - 1)) (col_of (n - 1) - String.length (label (n - 1)) + 1);
  Buffer.add_string buf (Bytes.to_string x_line);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "%10s  y: %s   " "" y_label);
  List.iteri
    (fun s_idx (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "%c=%s  "
           (List.nth markers (s_idx mod List.length markers))
           name))
    series;
  Buffer.add_char buf '\n';
  Buffer.contents buf
