open Nestfusion
module Time = Nest_sim.Time
module Engine = Nest_sim.Engine
module Trace = Nest_sim.Trace
module Metrics = Nest_sim.Metrics

type durations = { warmup : Time.ns; measure : Time.ns }

let durations ~quick =
  if quick then { warmup = Time.ms 50; measure = Time.ms 250 }
  else { warmup = Time.ms 100; measure = Time.sec 1 }

module Obs = struct
  (* Presentation-layer switchboard for the CLI's --trace/--metrics
     flags.  The observability *data* lives on each run's engine (and
     dies with it); this module only remembers which engines the current
     process wants dumped, and forgets them on [dump]/[discard]. *)
  type cfg = {
    mutable trace : bool;
    mutable trace_capacity : int;
    mutable metrics : bool;
    mutable json : bool;
  }

  let cfg = { trace = false; trace_capacity = 8192; metrics = false; json = false }
  let attached : (string * Engine.t) list ref = ref []

  let configure ?trace ?trace_capacity ?metrics ?json () =
    Option.iter (fun v -> cfg.trace <- v) trace;
    Option.iter (fun v -> cfg.trace_capacity <- v) trace_capacity;
    Option.iter (fun v -> cfg.metrics <- v) metrics;
    Option.iter (fun v -> cfg.json <- v) json

  let enabled () = cfg.trace || cfg.metrics

  let attach_engine engine ~label =
    if enabled () then begin
      if cfg.trace && Engine.tracer engine = None then
        Engine.set_tracer engine
          (Some (Trace.create ~capacity:cfg.trace_capacity ()));
      if not (List.exists (fun (_, e) -> e == engine) !attached) then
        attached := !attached @ [ (label, engine) ]
    end

  let attach tb ~label = attach_engine tb.Testbed.engine ~label
  let discard () = attached := []

  let dump_text () =
    List.iter
      (fun (label, engine) ->
        Printf.printf "\n--- observability: %s ---\n" label;
        if cfg.metrics then begin
          print_endline "metrics:";
          Format.printf "%a@?" Metrics.pp_text (Engine.metrics engine)
        end;
        match Engine.tracer engine with
        | None -> ()
        | Some tr ->
          print_endline "trace events by name:";
          List.iter
            (fun (name, n) -> Printf.printf "  %-40s %d\n" name n)
            (Trace.by_name tr);
          Format.printf "%a@?" (Trace.pp_text ~limit:40) tr)
      !attached

  let dump_json () =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"runs\":[";
    List.iteri
      (fun i (label, engine) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "{\"label\":\"%s\"" (Trace.json_escape label));
        if cfg.metrics then
          Buffer.add_string b
            (",\"metrics\":" ^ Metrics.to_json (Engine.metrics engine));
        (match Engine.tracer engine with
        | None -> ()
        | Some tr -> Buffer.add_string b (",\"trace\":" ^ Trace.to_json tr));
        Buffer.add_char b '}')
      !attached;
    Buffer.add_string b "]}";
    print_endline (Buffer.contents b)

  let dump () =
    if !attached <> [] then begin
      if cfg.json then dump_json () else dump_text ()
    end;
    discard ()
end

let deploy_single_sync ?(seed = 42L) ~mode ~port () =
  let tb = Testbed.create ~seed ~num_vms:1 () in
  Obs.attach tb ~label:("single:" ^ Modes.single_to_string mode);
  let site = ref None in
  Deploy.deploy_single tb ~mode ~name:"pod" ~entity:"server" ~port
    ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  match !site with
  | Some s -> (tb, s)
  | None ->
    failwith
      ("deploy_single_sync: deployment stuck in mode "
      ^ Modes.single_to_string mode)

let deploy_pair_sync ?(seed = 42L) ~mode ~port () =
  let tb = Testbed.create ~seed ~num_vms:2 () in
  Obs.attach tb ~label:("pair:" ^ Modes.pair_to_string mode);
  let site = ref None in
  Deploy.deploy_pair tb ~mode ~name:"pod" ~a_entity:"client-ctr"
    ~b_entity:"server-ctr" ~port ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  match !site with
  | Some s -> (tb, s)
  | None ->
    failwith
      ("deploy_pair_sync: deployment stuck in mode " ^ Modes.pair_to_string mode)

let header title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let row s = print_endline s
let kv k v = Printf.printf "  %-42s %s\n" k v
let pct a b = if b = 0.0 then 0.0 else 100.0 *. (a -. b) /. b
