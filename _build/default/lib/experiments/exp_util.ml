open Nestfusion
module Time = Nest_sim.Time

type durations = { warmup : Time.ns; measure : Time.ns }

let durations ~quick =
  if quick then { warmup = Time.ms 50; measure = Time.ms 250 }
  else { warmup = Time.ms 100; measure = Time.sec 1 }

let deploy_single_sync ?(seed = 42L) ~mode ~port () =
  let tb = Testbed.create ~seed ~num_vms:1 () in
  let site = ref None in
  Deploy.deploy_single tb ~mode ~name:"pod" ~entity:"server" ~port
    ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  match !site with
  | Some s -> (tb, s)
  | None ->
    failwith
      ("deploy_single_sync: deployment stuck in mode "
      ^ Modes.single_to_string mode)

let deploy_pair_sync ?(seed = 42L) ~mode ~port () =
  let tb = Testbed.create ~seed ~num_vms:2 () in
  let site = ref None in
  Deploy.deploy_pair tb ~mode ~name:"pod" ~a_entity:"client-ctr"
    ~b_entity:"server-ctr" ~port ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  match !site with
  | Some s -> (tb, s)
  | None ->
    failwith
      ("deploy_pair_sync: deployment stuck in mode " ^ Modes.pair_to_string mode)

let header title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let row s = print_endline s
let kv k v = Printf.printf "  %-42s %s\n" k v
let pct a b = if b = 0.0 then 0.0 else 100.0 *. (a -. b) /. b
