lib/experiments/chart.mli:
