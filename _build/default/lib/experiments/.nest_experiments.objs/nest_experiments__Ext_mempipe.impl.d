lib/experiments/ext_mempipe.ml: Exp_util List Mempipe Nest_net Nest_sim Nest_virt Nest_workloads Nestfusion Pod_resources Printf Testbed
