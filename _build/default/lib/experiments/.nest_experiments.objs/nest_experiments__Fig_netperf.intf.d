lib/experiments/fig_netperf.mli: Nestfusion
