lib/experiments/fig_macro.mli:
