lib/experiments/registry.mli:
