lib/experiments/fig_boot.mli:
