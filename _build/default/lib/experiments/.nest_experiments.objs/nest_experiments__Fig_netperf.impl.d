lib/experiments/fig_netperf.ml: Chart Exp_util List Modes Nest_sim Nest_workloads Nestfusion Printf
