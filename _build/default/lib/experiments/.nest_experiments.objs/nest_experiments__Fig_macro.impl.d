lib/experiments/fig_macro.ml: Exp_util List Modes Nest_sim Nest_workloads Nestfusion Printf
