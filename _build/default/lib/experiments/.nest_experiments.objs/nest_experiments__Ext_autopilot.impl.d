lib/experiments/ext_autopilot.ml: Autopilot Exp_util List Nest_orch Nest_sim Nestfusion Printf Testbed
