lib/experiments/exp_util.ml: Buffer Deploy Format List Modes Nest_sim Nestfusion Option Printf String Testbed
