lib/experiments/exp_util.ml: Deploy Modes Nest_sim Nestfusion Printf String Testbed
