lib/experiments/fig_cost.ml: Exp_util Format List Nest_costsim Nest_traces Printf String
