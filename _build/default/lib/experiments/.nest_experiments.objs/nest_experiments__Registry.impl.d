lib/experiments/registry.ml: Ablations Ext_autopilot Ext_mempipe Fig_boot Fig_cost Fig_cpu Fig_macro Fig_netperf List
