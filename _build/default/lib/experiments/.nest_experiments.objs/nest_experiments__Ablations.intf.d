lib/experiments/ablations.mli:
