lib/experiments/fig_cpu.mli:
