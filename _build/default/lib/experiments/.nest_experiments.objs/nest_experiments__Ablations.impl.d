lib/experiments/ablations.ml: Array Deploy Exp_util Hostlo Ipv4 List Nest_costsim Nest_net Nest_orch Nest_sim Nest_traces Nest_virt Nest_workloads Nestfusion Netfilter Option Printf Stack Testbed
