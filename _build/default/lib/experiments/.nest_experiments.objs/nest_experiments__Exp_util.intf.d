lib/experiments/exp_util.mli: Deploy Modes Nest_sim Nestfusion Testbed
