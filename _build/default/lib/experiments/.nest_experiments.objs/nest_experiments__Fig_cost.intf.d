lib/experiments/fig_cost.mli:
