lib/experiments/fig_boot.ml: Chart Exp_util Ipv4 List Nest_container Nest_net Nest_orch Nest_sim Nest_virt Nestfusion Printf Route Stack Testbed
