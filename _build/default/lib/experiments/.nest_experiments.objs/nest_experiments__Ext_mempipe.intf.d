lib/experiments/ext_mempipe.mli:
