lib/experiments/fig_cpu.ml: Exp_util List Modes Nest_sim Nest_workloads Nestfusion Printf Testbed
