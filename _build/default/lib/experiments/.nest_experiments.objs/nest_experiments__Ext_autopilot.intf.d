lib/experiments/ext_autopilot.mli:
