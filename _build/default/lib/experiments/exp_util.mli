(** Shared helpers for the experiment harness. *)

open Nestfusion

type durations = {
  warmup : Nest_sim.Time.ns;
  measure : Nest_sim.Time.ns;
}

val durations : quick:bool -> durations
(** quick: 50 ms / 250 ms; full: 100 ms / 1 s. *)

val deploy_single_sync :
  ?seed:int64 -> mode:Modes.single -> port:int -> unit ->
  Testbed.t * Deploy.server_site
(** Fresh testbed; drives the engine until deployment completes. *)

val deploy_pair_sync :
  ?seed:int64 -> mode:Modes.pair -> port:int -> unit ->
  Testbed.t * Deploy.pair_site

val header : string -> unit
(** Prints a boxed section header. *)

val row : string -> unit
val kv : string -> string -> unit

val pct : float -> float -> float
(** [pct a b] = 100 × (a − b) / b. *)
