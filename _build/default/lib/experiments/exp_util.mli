(** Shared helpers for the experiment harness. *)

open Nestfusion

type durations = {
  warmup : Nest_sim.Time.ns;
  measure : Nest_sim.Time.ns;
}

val durations : quick:bool -> durations
(** quick: 50 ms / 250 ms; full: 100 ms / 1 s. *)

(** Observability switchboard for the experiment drivers (the CLI's
    [--trace]/[--metrics] flags).  [configure] sets what to collect;
    the [deploy_*_sync] helpers attach each testbed they create; [dump]
    prints everything collected so far and forgets the engines. *)
module Obs : sig
  val configure :
    ?trace:bool -> ?trace_capacity:int -> ?metrics:bool -> ?json:bool ->
    unit -> unit
  (** Unspecified fields keep their previous value.  Defaults: everything
      off, capacity 8192, text output. *)

  val enabled : unit -> bool
  (** True when tracing or metrics collection is on. *)

  val attach : Testbed.t -> label:string -> unit
  (** Registers the testbed's engine for the next [dump]; installs a
      tracer on it when tracing is on.  No-op when nothing is enabled. *)

  val attach_engine : Nest_sim.Engine.t -> label:string -> unit

  val dump : unit -> unit
  (** Prints collected metrics/traces (text, or JSON with [json:true])
      for every attached engine, then discards the attachments. *)

  val discard : unit -> unit
  (** Forgets attached engines without printing. *)
end

val deploy_single_sync :
  ?seed:int64 -> mode:Modes.single -> port:int -> unit ->
  Testbed.t * Deploy.server_site
(** Fresh testbed; drives the engine until deployment completes. *)

val deploy_pair_sync :
  ?seed:int64 -> mode:Modes.pair -> port:int -> unit ->
  Testbed.t * Deploy.pair_site

val header : string -> unit
(** Prints a boxed section header. *)

val row : string -> unit
val kv : string -> string -> unit

val pct : float -> float -> float
(** [pct a b] = 100 × (a − b) / b. *)
