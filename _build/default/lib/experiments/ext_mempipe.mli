(** Extension experiment (paper §6): MemPipe vs Hostlo vs SameNode for
    intra-pod request/response traffic.

    Quantifies the trade-off the related-work section argues: a
    shared-memory transport beats the multiplexed loopback on latency,
    but only by abandoning socket transparency — Hostlo keeps unmodified
    applications. *)

val run : quick:bool -> unit
