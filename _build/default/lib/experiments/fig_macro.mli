(** Macro-benchmarks: Table 1 and Figs. 5, 11, 12, 13. *)

val table1 : unit -> unit
(** Prints the macro-benchmark parameter table. *)

val fig5 : quick:bool -> unit
(** BrFusion gain on Memcached / NGINX / Kafka (single-server modes). *)

val fig11 : quick:bool -> unit
(** Memcached throughput across the four intra-pod modes. *)

val fig12 : quick:bool -> unit
(** Memcached latency + variability across the four intra-pod modes. *)

val fig13 : quick:bool -> unit
(** NGINX latency across the four intra-pod modes. *)
