(** Extension experiment (paper §7): the integrated orchestrator.

    Streams a synthetic arrival of pods into two autopilots — one allowed
    to split pods across VMs via Hostlo, one restricted to whole-pod
    placement — and compares fleet size, requested-resource utilization
    and (m5.large-equivalent) fleet cost.  This quantifies the paper's
    closing claim: with the VMM as an orchestrator tool, cross-VM pods
    turn fragmentation into capacity. *)

val run : quick:bool -> unit
