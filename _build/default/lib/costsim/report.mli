(** Per-user cost outcomes and the Fig. 9 aggregation. *)

type outcome = {
  user_id : int;
  kube_cost : float;      (** $/h under whole-pod scheduling. *)
  hostlo_cost : float;    (** $/h after the Hostlo pass. *)
  kube_vms : int;
  hostlo_vms : int;
  saving : float;         (** $/h saved (>= 0). *)
  rel_saving : float;     (** saving / kube_cost, in [0,1]. *)
}

type summary = {
  users : int;
  users_with_savings : int;
  frac_with_savings : float;          (** Paper: ~11.4 %. *)
  frac_savers_over_5pct : float;      (** Paper: ~66.7 % of savers. *)
  max_rel_saving : float;             (** Paper: ~40 %. *)
  max_abs_saving : float;             (** Paper: ~237 $/h. *)
  max_abs_saving_rel : float;         (** Paper: ~35 %. *)
  total_kube_cost : float;
  total_hostlo_cost : float;
}

val evaluate_user : Nest_traces.Trace.user -> outcome
val evaluate : Nest_traces.Trace.user list -> outcome list
val summarize : outcome list -> summary

val savings_histogram : outcome list -> bins:int -> (float * float * int) list
(** [(lo, hi, count)] over relative savings of the *saving* users —
    Fig. 9's frequency plot (bins over (0, max]). *)

val pp_summary : Format.formatter -> summary -> unit
