lib/costsim/hostlo_pack.mli: Kube_pack Nest_traces
