lib/costsim/hostlo_pack.ml: Aws Kube_pack List Nest_traces
