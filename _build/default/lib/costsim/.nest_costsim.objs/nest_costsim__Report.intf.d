lib/costsim/report.mli: Format Nest_traces
