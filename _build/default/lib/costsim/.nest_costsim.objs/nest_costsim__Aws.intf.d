lib/costsim/aws.mli: Format
