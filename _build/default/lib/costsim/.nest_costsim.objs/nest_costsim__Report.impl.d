lib/costsim/report.ml: Array Float Format Hostlo_pack Kube_pack List Nest_sim Nest_traces
