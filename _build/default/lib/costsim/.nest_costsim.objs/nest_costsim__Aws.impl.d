lib/costsim/aws.ml: Format List
