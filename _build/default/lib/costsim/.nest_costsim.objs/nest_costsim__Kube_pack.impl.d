lib/costsim/kube_pack.ml: Aws List Nest_traces Printf
