lib/costsim/kube_pack.mli: Aws Nest_traces
