type outcome = {
  user_id : int;
  kube_cost : float;
  hostlo_cost : float;
  kube_vms : int;
  hostlo_vms : int;
  saving : float;
  rel_saving : float;
}

type summary = {
  users : int;
  users_with_savings : int;
  frac_with_savings : float;
  frac_savers_over_5pct : float;
  max_rel_saving : float;
  max_abs_saving : float;
  max_abs_saving_rel : float;
  total_kube_cost : float;
  total_hostlo_cost : float;
}

let evaluate_user user =
  let base = Kube_pack.pack_user user in
  Kube_pack.check_invariants base;
  let kube_cost = Kube_pack.plan_cost base in
  let kube_vms = Kube_pack.plan_vm_count base in
  let plan, _stats = Hostlo_pack.improve_copy base in
  let hostlo_cost = Kube_pack.plan_cost plan in
  let saving = Float.max 0.0 (kube_cost -. hostlo_cost) in
  { user_id = user.Nest_traces.Trace.u_id; kube_cost; hostlo_cost; kube_vms;
    hostlo_vms = Kube_pack.plan_vm_count plan; saving;
    rel_saving = (if kube_cost > 0.0 then saving /. kube_cost else 0.0) }

let evaluate users = List.map evaluate_user users

let summarize outcomes =
  let users = List.length outcomes in
  let savers = List.filter (fun o -> o.saving > 1e-9) outcomes in
  let users_with_savings = List.length savers in
  let over5 = List.filter (fun o -> o.rel_saving > 0.05) savers in
  let max_rel =
    List.fold_left (fun a o -> Float.max a o.rel_saving) 0.0 outcomes
  in
  let best_abs =
    List.fold_left
      (fun acc o ->
        match acc with
        | Some b when b.saving >= o.saving -> acc
        | _ -> Some o)
      None outcomes
  in
  let max_abs, max_abs_rel =
    match best_abs with
    | Some o -> (o.saving, o.rel_saving)
    | None -> (0.0, 0.0)
  in
  { users;
    users_with_savings;
    frac_with_savings =
      (if users = 0 then 0.0
       else float_of_int users_with_savings /. float_of_int users);
    frac_savers_over_5pct =
      (if users_with_savings = 0 then 0.0
       else float_of_int (List.length over5) /. float_of_int users_with_savings);
    max_rel_saving = max_rel;
    max_abs_saving = max_abs;
    max_abs_saving_rel = max_abs_rel;
    total_kube_cost = List.fold_left (fun a o -> a +. o.kube_cost) 0.0 outcomes;
    total_hostlo_cost =
      List.fold_left (fun a o -> a +. o.hostlo_cost) 0.0 outcomes }

let savings_histogram outcomes ~bins =
  let savers = List.filter (fun o -> o.saving > 1e-9) outcomes in
  let max_rel =
    List.fold_left (fun a o -> Float.max a o.rel_saving) 0.0 savers
  in
  if savers = [] || max_rel <= 0.0 then []
  else begin
    let h = Nest_sim.Stats.Histogram.create ~lo:0.0 ~hi:max_rel ~bins in
    List.iter (fun o -> Nest_sim.Stats.Histogram.add h o.rel_saving) savers;
    Array.to_list (Nest_sim.Stats.Histogram.counts h)
    |> List.mapi (fun i c ->
           let lo, hi = Nest_sim.Stats.Histogram.bin_bounds h i in
           (lo, hi, c))
  end

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>users: %d@,\
     users with savings: %d (%.1f%%)@,\
     savers above 5%%: %.1f%%@,\
     max relative saving: %.1f%%@,\
     max absolute saving: %.2f $/h (a %.1f%% reduction)@,\
     fleet cost: %.2f -> %.2f $/h@]"
    s.users s.users_with_savings
    (100.0 *. s.frac_with_savings)
    (100.0 *. s.frac_savers_over_5pct)
    (100.0 *. s.max_rel_saving)
    s.max_abs_saving
    (100.0 *. s.max_abs_saving_rel)
    s.total_kube_cost s.total_hostlo_cost
