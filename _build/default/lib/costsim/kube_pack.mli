(** Baseline VM purchase plan: Kubernetes-style *whole-pod* scheduling
    (§5.3.1 steps 1–3).

    Per user, starting from no VMs: pods are scheduled offline, biggest
    first; each pod goes whole onto the already-bought VM that the "most
    requested" policy prefers, or a new VM of the cheapest model that can
    host the whole pod is bought. *)

type vm = {
  vm_id : int;
  vm_model : Aws.model;
  mutable contents : (int * Nest_traces.Trace.container_req) list;
      (** (pod id, container) placements. *)
  mutable used_cpu : float;
  mutable used_mem : float;
}

type plan = {
  plan_user : Nest_traces.Trace.user;
  mutable vms : vm list;
}

val vm_free_cpu : vm -> float
val vm_free_mem : vm -> float
val vm_requested_fraction : vm -> float

type policy = Most_requested | Least_requested | First_fit

val pack_user : ?policy:policy -> Nest_traces.Trace.user -> plan
(** Whole-pod packing under the given placement policy (default
    [Most_requested], Kubernetes's consolidation strategy — the paper's
    baseline; the others exist for ablations).  Raises [Failure] if some
    pod exceeds the largest model (the trace generator never produces
    one). *)

val plan_cost : plan -> float
(** $/hour. *)

val plan_vm_count : plan -> int

val copy_plan : plan -> plan
(** Deep copy (fresh VM records); lets callers keep the baseline while
    improving a copy. *)

val check_invariants : plan -> unit
(** Raises [Failure] if any VM is overcommitted or any container is lost
    or duplicated w.r.t. the user's trace. *)
