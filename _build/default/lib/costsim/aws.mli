(** AWS EC2 on-demand m5 models — Table 2 of the paper, verbatim.

    Relative capacities are fractions of the largest model (24xlarge),
    matching the trace's normalized resource units. *)

type model = {
  model_name : string;
  vcpus : int;
  mem_gb : int;
  price_per_hour : float;  (** USD. *)
}

val models : model list
(** Ascending by price: large .. 24xlarge. *)

val find : string -> model option

val rel_cpu : model -> float
(** vCPUs / 96. *)

val rel_mem : model -> float
(** Memory / 384 GB. *)

val cheapest_fitting : cpu:float -> mem:float -> model option
(** Cheapest model whose relative capacity covers the demand; [None] if
    even 24xlarge cannot (the caller must split). *)

val pp_model : Format.formatter -> model -> unit

val table2_rows : (string * int * int * float * float * float) list
(** (name, vCPU, mem GB, rel vCPU, rel mem, $/h) — for regenerating
    Table 2. *)
