(** Hostlo improvement pass (§5.3.1 step 4): with cross-VM pods allowed,
    containers — no longer pods — become the placement unit.

    Starting from the Kubernetes whole-pod plan, the pass repeatedly
    (a) tries to *empty* the least-utilized VM by moving its containers,
    smallest first, into the most-wasteful remaining VMs, and (b) tries
    to *downsize* each VM to the cheapest model that still holds its
    contents.  Both directly implement the paper's "moving containers to
    the VMs that have the most wasted resources, smallest containers
    first, ... reducing the number of needed VMs or shrinking the sizes
    of VMs". *)

type stats = {
  vms_removed : int;
  vms_downsized : int;
  containers_moved : int;
}

val improve : Kube_pack.plan -> stats
(** Mutates the plan in place; terminates when no action reduces cost. *)

val pack_and_improve : Nest_traces.Trace.user -> Kube_pack.plan * stats
(** Baseline pack followed by the Hostlo pass, invariants checked. *)

val improve_copy : Kube_pack.plan -> Kube_pack.plan * stats
(** Improves a deep copy, leaving the baseline plan untouched. *)
