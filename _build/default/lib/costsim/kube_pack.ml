type vm = {
  vm_id : int;
  vm_model : Aws.model;
  mutable contents : (int * Nest_traces.Trace.container_req) list;
  mutable used_cpu : float;
  mutable used_mem : float;
}

type plan = { plan_user : Nest_traces.Trace.user; mutable vms : vm list }

let epsilon = 1e-9

let vm_free_cpu v = Aws.rel_cpu v.vm_model -. v.used_cpu
let vm_free_mem v = Aws.rel_mem v.vm_model -. v.used_mem

let vm_requested_fraction v =
  ((v.used_cpu /. Aws.rel_cpu v.vm_model)
  +. (v.used_mem /. Aws.rel_mem v.vm_model))
  /. 2.0

let fits v ~cpu ~mem =
  vm_free_cpu v +. epsilon >= cpu && vm_free_mem v +. epsilon >= mem

let place v pod_id (c : Nest_traces.Trace.container_req) =
  v.contents <- (pod_id, c) :: v.contents;
  v.used_cpu <- v.used_cpu +. c.Nest_traces.Trace.c_cpu;
  v.used_mem <- v.used_mem +. c.Nest_traces.Trace.c_mem

type policy = Most_requested | Least_requested | First_fit

let pack_user ?(policy = Most_requested) user =
  let plan = { plan_user = user; vms = [] } in
  let next_id = ref 0 in
  let pods =
    List.sort
      (fun a b ->
        compare
          (Nest_traces.Trace.pod_cpu b +. Nest_traces.Trace.pod_mem b)
          (Nest_traces.Trace.pod_cpu a +. Nest_traces.Trace.pod_mem a))
      user.Nest_traces.Trace.pods
  in
  List.iter
    (fun pod ->
      let cpu = Nest_traces.Trace.pod_cpu pod and mem = Nest_traces.Trace.pod_mem pod in
      (* (3a) placement policy over bought VMs. *)
      let better v b =
        match policy with
        | Most_requested -> vm_requested_fraction v > vm_requested_fraction b
        | Least_requested -> vm_requested_fraction v < vm_requested_fraction b
        | First_fit -> false
      in
      let best =
        List.fold_left
          (fun acc v ->
            if not (fits v ~cpu ~mem) then acc
            else
              match acc with
              | None -> Some v
              | Some b -> if better v b then Some v else acc)
          None plan.vms
      in
      let target =
        match best with
        | Some v -> v
        | None -> (
          (* (3b) buy the cheapest model hosting the whole pod. *)
          match Aws.cheapest_fitting ~cpu ~mem with
          | None ->
            failwith
              (Printf.sprintf
                 "Kube_pack: pod %d of user %d exceeds the largest model"
                 pod.Nest_traces.Trace.p_id user.Nest_traces.Trace.u_id)
          | Some model ->
            incr next_id;
            let v =
              { vm_id = !next_id; vm_model = model; contents = [];
                used_cpu = 0.0; used_mem = 0.0 }
            in
            plan.vms <- v :: plan.vms;
            v)
      in
      List.iter (fun c -> place target pod.Nest_traces.Trace.p_id c) pod.Nest_traces.Trace.p_containers)
    pods;
  plan

let plan_cost plan =
  List.fold_left
    (fun acc v -> acc +. v.vm_model.Aws.price_per_hour)
    0.0 plan.vms

let plan_vm_count plan = List.length plan.vms

let copy_plan plan =
  { plan with
    vms =
      List.map
        (fun v ->
          { v with contents = v.contents })
        plan.vms }

let check_invariants plan =
  List.iter
    (fun v ->
      let cpu =
        List.fold_left (fun a (_, c) -> a +. c.Nest_traces.Trace.c_cpu) 0.0 v.contents
      and mem =
        List.fold_left (fun a (_, c) -> a +. c.Nest_traces.Trace.c_mem) 0.0 v.contents
      in
      if abs_float (cpu -. v.used_cpu) > 1e-6
         || abs_float (mem -. v.used_mem) > 1e-6 then
        failwith "Kube_pack: usage accounting drifted";
      if
        v.used_cpu > Aws.rel_cpu v.vm_model +. 1e-6
        || v.used_mem > Aws.rel_mem v.vm_model +. 1e-6
      then failwith "Kube_pack: VM overcommitted")
    plan.vms;
  let placed =
    List.fold_left (fun a v -> a + List.length v.contents) 0 plan.vms
  in
  if placed <> Nest_traces.Trace.user_containers plan.plan_user then
    failwith "Kube_pack: containers lost or duplicated"
