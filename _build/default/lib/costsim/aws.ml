type model = {
  model_name : string;
  vcpus : int;
  mem_gb : int;
  price_per_hour : float;
}

let models =
  [ { model_name = "large"; vcpus = 2; mem_gb = 8; price_per_hour = 0.112 };
    { model_name = "xlarge"; vcpus = 4; mem_gb = 16; price_per_hour = 0.224 };
    { model_name = "2xlarge"; vcpus = 8; mem_gb = 32; price_per_hour = 0.448 };
    { model_name = "4xlarge"; vcpus = 16; mem_gb = 64; price_per_hour = 0.896 };
    { model_name = "12xlarge"; vcpus = 48; mem_gb = 192; price_per_hour = 2.689 };
    { model_name = "24xlarge"; vcpus = 96; mem_gb = 384; price_per_hour = 5.376 } ]

let find name = List.find_opt (fun m -> m.model_name = name) models
let rel_cpu m = float_of_int m.vcpus /. 96.0
let rel_mem m = float_of_int m.mem_gb /. 384.0

let cheapest_fitting ~cpu ~mem =
  List.find_opt (fun m -> rel_cpu m >= cpu && rel_mem m >= mem) models

let pp_model fmt m =
  Format.fprintf fmt "m5.%s (%d vCPU, %d GB, $%.3f/h)" m.model_name m.vcpus
    m.mem_gb m.price_per_hour

let table2_rows =
  List.map
    (fun m ->
      (m.model_name, m.vcpus, m.mem_gb, rel_cpu m, rel_mem m, m.price_per_hour))
    models
