(** The container engine (Docker): image handling, container lifecycle,
    and the default bridge+NAT networking inside a VM — the "NAT" baseline
    of every experiment.

    Network setup is continuation-passing so each networking mode plugs
    its own provisioning into the boot sequence: the default
    {!nat_net_setup} builds veth + docker0 + iptables and charges the
    sampled Bridge/NAT setup time, while the BrFusion CNI plugin passes a
    continuation that performs a *live* QMP hot-plug, so Fig. 8 compares
    real code paths rather than two constants. *)

open Nest_net

type t
type container

val create : Nest_virt.Vm.t -> name:string -> t
val vm : t -> Nest_virt.Vm.t

val docker0_subnet : Ipv4.cidr
(** 172.17.0.0/16, Docker's default. *)

val ensure_bridge : t -> Bridge.t
(** Creates docker0 (in-guest bridge + gateway address + masquerade via
    the VM's primary address) on first call. *)

val primary_vm_ip : t -> Ipv4.t
(** The VM's eth0 address (NAT target for published ports). *)

val nat_net_setup :
  t -> netns:Stack.ns -> publish:(int * int) list -> (unit -> unit) -> unit
(** Default container networking: veth into docker0, address from the
    engine's IPAM, default route, masquerade; publishes
    [(vm_port, container_port)] pairs as DNAT rules on the VM.  The
    continuation fires after the sampled setup time. *)

val instant_net_setup : (unit -> unit) -> unit
(** For containers joining a pre-built namespace (pod-shared loopback):
    no per-container network work. *)

val run :
  t ->
  name:string ->
  entity:string ->
  image:Image.t ->
  netns:Stack.ns ->
  net_setup:((unit -> unit) -> unit) ->
  ?cpu_req:float ->
  ?mem_req:float ->
  on_ready:(container -> unit) ->
  unit ->
  container
(** Orders a container: image pull (cached after first use per engine),
    runtime setup, network setup, application start, then [on_ready].
    [cpu_req]/[mem_req] are scheduler-facing resource requests. *)

val stop : t -> container -> unit
val containers : t -> container list

val name : container -> string
val entity : container -> string
val netns : container -> Stack.ns
val app_exec : container -> Nest_sim.Exec.t
val state : container -> [ `Creating | `Running | `Stopped ]
val cpu_req : container -> float
val mem_req : container -> float

val boot_duration_ns : container -> Nest_sim.Time.ns option
(** Order-to-ready duration (the Fig. 8 metric); [None] until ready. *)
