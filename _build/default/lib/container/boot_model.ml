type phases = {
  runtime_ns : Nest_sim.Time.ns;
  network_ns : Nest_sim.Time.ns;
  app_ns : Nest_sim.Time.ns;
}

let ns_of_ms ms = int_of_float (ms *. 1e6)

(* Phase parameters (ms).  Runtime setup is dominated by runc/containerd
   (namespace + cgroup + rootfs); the application phase by process start
   and first socket write.  Values sit in the range of Docker CE 18.09 on
   the paper's hardware. *)
let runtime_mean_ms = 130.0
let runtime_cv = 0.18
let app_mean_ms = 150.0
let app_cv = 0.22

(* Bridge+NAT network setup: veth pair creation, bridge attach, IPAM and
   iptables programming; the last grows with chain length. *)
let natnet_base_ms = 21.0
let natnet_cv = 0.35
let natnet_per_rule_ms = 0.45

let sample rng ~network =
  let ln mean cv = Nest_sim.Dist.lognormal_mean_cv rng ~mean ~cv in
  let runtime_ns = ns_of_ms (ln runtime_mean_ms runtime_cv) in
  let app_ns = ns_of_ms (ln app_mean_ms app_cv) in
  let network_ns =
    match network with
    | `Brfusion -> 0
    | `Bridge_nat rules ->
      ns_of_ms
        (ln natnet_base_ms natnet_cv
        +. (natnet_per_rule_ms *. float_of_int rules))
  in
  { runtime_ns; network_ns; app_ns }

let total_ns p = p.runtime_ns + p.network_ns + p.app_ns
