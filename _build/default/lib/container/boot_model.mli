(** Stochastic container start-up phases (Fig. 8's subject).

    Start-up time is defined exactly as in §5.2.4: from ordering the
    engine to create the container until the containerized application
    sends its first message through a TCP socket.  We decompose it as

      runtime setup  +  network setup  +  application start

    The runtime and application phases are mode-independent samples; the
    network phase differs by mode:
    - [`Bridge_nat]: veth pair + bridge attach + iptables programming,
      whose cost grows with the number of rules already installed;
    - [`Brfusion]: the network phase is *measured live* from the QMP
      hot-plug performed by the CNI plugin, so this module only samples
      the two common phases for it. *)

type phases = {
  runtime_ns : Nest_sim.Time.ns;
  network_ns : Nest_sim.Time.ns;  (** 0 for [`Brfusion]: measured live. *)
  app_ns : Nest_sim.Time.ns;
}

val sample :
  Nest_sim.Prng.t ->
  network:[ `Bridge_nat of int  (** existing iptables rules *) | `Brfusion ] ->
  phases

val total_ns : phases -> Nest_sim.Time.ns
