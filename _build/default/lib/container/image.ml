type t = { img_name : string; size_mb : int; layers : int }

let make ~name ~size_mb ?(layers = 4) () = { img_name = name; size_mb; layers }

let pull_delay_ns t ~cached ~rng =
  if cached then 0
  else begin
    (* ~40 MB/s registry + per-layer round trips, with 20 % jitter. *)
    let base_ms =
      (float_of_int t.size_mb /. 40.0 *. 1000.0)
      +. (float_of_int t.layers *. 120.0)
    in
    let jittered = base_ms *. Nest_sim.Prng.range_float rng 0.9 1.1 in
    int_of_float (jittered *. 1e6)
  end
