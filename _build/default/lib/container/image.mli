(** Container images: a named artifact with layers and a pull-time model.
    The paper's boot experiment runs with warm caches, so pulls are
    usually no-ops; the model still charges a realistic delay on first
    use per engine. *)

type t = {
  img_name : string;
  size_mb : int;
  layers : int;
}

val make : name:string -> size_mb:int -> ?layers:int -> unit -> t

val pull_delay_ns : t -> cached:bool -> rng:Nest_sim.Prng.t -> Nest_sim.Time.ns
(** ~0 when cached; otherwise proportional to size with jitter. *)
