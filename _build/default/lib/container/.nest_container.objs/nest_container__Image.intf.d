lib/container/image.mli: Nest_sim
