lib/container/image.ml: Nest_sim
