lib/container/engine.mli: Bridge Image Ipv4 Nest_net Nest_sim Nest_virt Stack
