lib/container/engine.ml: Boot_model Bridge Image Ipam Ipv4 List Nat Nest_net Nest_sim Nest_virt Netfilter Printf Route Stack Veth
