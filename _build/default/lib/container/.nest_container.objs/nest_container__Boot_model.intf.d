lib/container/boot_model.mli: Nest_sim
