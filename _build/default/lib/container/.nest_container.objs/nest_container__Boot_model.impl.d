lib/container/boot_model.ml: Nest_sim
