open Nest_net
module Sim_engine = Nest_sim.Engine
module Time = Nest_sim.Time

type container = {
  cid : int;
  c_name : string;
  c_entity : string;
  c_image : Image.t;
  c_netns : Stack.ns;
  c_app_exec : Nest_sim.Exec.t;
  c_ordered_at : Time.ns;
  mutable c_ready_at : Time.ns option;
  mutable c_state : [ `Creating | `Running | `Stopped ];
  c_cpu_req : float;
  c_mem_req : float;
}

type t = {
  d_vm : Nest_virt.Vm.t;
  d_name : string;
  d_rng : Nest_sim.Prng.t;
  mutable d_bridge : (Bridge.t * Ipam.t) option;
  mutable d_containers : container list;
  mutable nat_assignments : (Stack.ns * Ipv4.t) list;
  mutable next_cid : int;
  mutable image_cache : string list;
}

let docker0_subnet = Ipv4.cidr_of_string "172.17.0.0/16"
let docker0_gw = Ipv4.of_string "172.17.0.1"

let create vm ~name =
  { d_vm = vm; d_name = name;
    d_rng = Nest_sim.Prng.split (Nest_virt.Host.rng (Nest_virt.Vm.host vm));
    d_bridge = None; d_containers = []; nat_assignments = []; next_cid = 1;
    image_cache = [] }

let vm t = t.d_vm

let primary_vm_ip t =
  let vns = Nest_virt.Vm.ns t.d_vm in
  let non_lo =
    List.find_opt
      (fun (_, ip, _) -> not (Ipv4.in_subnet (Ipv4.cidr_of_string "127.0.0.0/8") ip))
      (Stack.addrs vns)
  in
  match non_lo with
  | Some (_, ip, _) -> ip
  | None -> failwith "Engine.primary_vm_ip: VM has no address"

let ensure_bridge t =
  match t.d_bridge with
  | Some (br, _) -> br
  | None ->
    let vmachine = t.d_vm in
    let host = Nest_virt.Vm.host vmachine in
    let vns = Nest_virt.Vm.ns vmachine in
    let _, bridge_hop = Nest_virt.Vm.guest_hops vmachine ~veth:() in
    let br =
      Bridge.create (Nest_virt.Host.engine host)
        ~name:(Nest_virt.Vm.name vmachine ^ ":docker0")
        ~hop:bridge_hop
        ~self_mac:(Nest_virt.Host.fresh_mac host)
        ()
    in
    let self = Bridge.self_dev br in
    Stack.attach vns self;
    Stack.add_addr vns self docker0_gw docker0_subnet;
    (* Containers are masqueraded behind the VM's own address. *)
    Nat.masquerade (Stack.nf vns) (Stack.ct vns)
      ~name:"docker-masq" ~src_subnet:docker0_subnet
      ~nat_ip:(primary_vm_ip t) ();
    (* Docker also installs its DOCKER / DOCKER-ISOLATION chain plumbing;
       the rules below match nothing but are traversed (and paid for) by
       every packet through the armed hooks, like the real chains. *)
    let filler hook name =
      Netfilter.append (Stack.nf vns) hook
        { Netfilter.rule_name = name;
          matches = (fun _ _ -> false);
          action = (fun _ _ -> Netfilter.Accept) }
    in
    filler Netfilter.Prerouting "docker-prerouting-jump";
    filler Netfilter.Forward "docker-isolation-stage-1";
    filler Netfilter.Forward "docker-isolation-stage-2";
    filler Netfilter.Forward "docker-user";
    filler Netfilter.Forward "docker-forward";
    filler Netfilter.Postrouting "docker-postrouting-jump";
    let ipam = Ipam.create ~reserved:[ docker0_gw ] docker0_subnet in
    t.d_bridge <- Some (br, ipam);
    br

let iptables_rule_count t =
  let nf = Stack.nf (Nest_virt.Vm.ns t.d_vm) in
  Netfilter.rule_count nf Netfilter.Prerouting
  + Netfilter.rule_count nf Netfilter.Postrouting

let nat_net_setup t ~netns ~publish k =
  let br = ensure_bridge t in
  let ipam = match t.d_bridge with Some (_, i) -> i | None -> assert false in
  let vmachine = t.d_vm in
  let host = Nest_virt.Vm.host vmachine in
  let vns = Nest_virt.Vm.ns vmachine in
  let veth_hop, _ = Nest_virt.Vm.guest_hops vmachine ~veth:() in
  let cip = Ipam.alloc ipam in
  t.nat_assignments <- (netns, cip) :: t.nat_assignments;
  let rules_before = iptables_rule_count t in
  let c_dev, br_dev =
    Veth.pair
      ~a_name:(Stack.name netns ^ ":eth0")
      ~a_mac:(Nest_virt.Host.fresh_mac host)
      ~b_name:("veth-" ^ Stack.name netns)
      ~b_mac:(Nest_virt.Host.fresh_mac host)
      ~ab_hop:veth_hop ~ba_hop:veth_hop ()
  in
  Stack.attach netns c_dev;
  Stack.add_addr netns c_dev cip docker0_subnet;
  Route.add_default (Stack.routes netns) ~gateway:docker0_gw ~dev:c_dev ();
  Bridge.attach br br_dev;
  List.iter
    (fun (vm_port, c_port) ->
      Nat.publish (Stack.nf vns) (Stack.ct vns)
        ~name:(Printf.sprintf "publish-%d" vm_port)
        ~dst_ip:(primary_vm_ip t) ~dst_port:vm_port ~to_ip:cip ~to_port:c_port)
    publish;
  let phases =
    Boot_model.sample t.d_rng ~network:(`Bridge_nat rules_before)
  in
  Sim_engine.schedule
    (Nest_virt.Host.engine host)
    ~delay:phases.Boot_model.network_ns k

let instant_net_setup k = k ()

let run t ~name ~entity ~image ~netns ~net_setup ?(cpu_req = 1.0)
    ?(mem_req = 1.0) ~on_ready () =
  let host = Nest_virt.Vm.host t.d_vm in
  let engine = Nest_virt.Host.engine host in
  let cached = List.mem image.Image.img_name t.image_cache in
  if not cached then t.image_cache <- image.Image.img_name :: t.image_cache;
  let c =
    { cid = t.next_cid; c_name = name; c_entity = entity; c_image = image;
      c_netns = netns;
      c_app_exec = Nest_virt.Vm.new_app_exec t.d_vm ~name:(name ^ ":app") ~entity;
      c_ordered_at = Sim_engine.now engine; c_ready_at = None;
      c_state = `Creating; c_cpu_req = cpu_req; c_mem_req = mem_req }
  in
  t.next_cid <- t.next_cid + 1;
  t.d_containers <- t.d_containers @ [ c ];
  let phases = Boot_model.sample t.d_rng ~network:`Brfusion in
  let pull = Image.pull_delay_ns image ~cached ~rng:t.d_rng in
  Sim_engine.schedule engine ~delay:(pull + phases.Boot_model.runtime_ns)
    (fun () ->
      net_setup (fun () ->
          Sim_engine.schedule engine ~delay:phases.Boot_model.app_ns
            (fun () ->
              c.c_state <- `Running;
              c.c_ready_at <- Some (Sim_engine.now engine);
              on_ready c)));
  c

let stop t c =
  c.c_state <- `Stopped;
  t.d_containers <- List.filter (fun x -> x != c) t.d_containers;
  (* Release the namespace's NAT address once no running container of
     this engine shares it (pod members share one namespace). *)
  let ns_still_used =
    List.exists (fun x -> x.c_netns == c.c_netns) t.d_containers
  in
  if not ns_still_used then begin
    match
      ( List.find_opt (fun (ns, _) -> ns == c.c_netns) t.nat_assignments,
        t.d_bridge )
    with
    | Some (_, ip), Some (_, ipam) ->
      t.nat_assignments <-
        List.filter (fun (ns, _) -> ns != c.c_netns) t.nat_assignments;
      Ipam.free ipam ip
    | _ -> ()
  end

let containers t = t.d_containers
let name c = c.c_name
let entity c = c.c_entity
let netns c = c.c_netns
let app_exec c = c.c_app_exec
let state c = c.c_state
let cpu_req c = c.c_cpu_req
let mem_req c = c.c_mem_req

let boot_duration_ns c =
  match c.c_ready_at with
  | None -> None
  | Some ready -> Some (ready - c.c_ordered_at)
