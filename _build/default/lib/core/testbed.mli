(** The paper's experimental environment (§5.1): one Dell server with 12
    CPUs; VMs with 5 vCPUs and 4 GB; a libvirt-style host bridge with NAT;
    the benchmark client running directly on the physical host, linked to
    the host bridge via NAT. *)

open Nest_net

type t = {
  engine : Nest_sim.Engine.t;
  acct : Nest_sim.Cpu_account.t;
  host : Nest_virt.Host.t;
  vmm : Nest_virt.Vmm.t;
  bridge : Bridge.t;
  client_ns : Stack.ns;
  client_subnet : Ipv4.cidr;
  mutable vms : Nest_virt.Vm.t list;
  mutable nodes : Nest_orch.Node.t list;
}

val create :
  ?seed:int64 -> ?cost_model:Nest_virt.Cost_model.t -> ?num_vms:int -> unit -> t
(** [num_vms] defaults to 1 (Figs. 2–8); pod-pair experiments use 2.
    VM i is "vm<i+1>" at 10.0.0.<i+2> on bridge "virbr0" (10.0.0.1/24).
    The client namespace is 192.168.100.2, masqueraded as 10.0.0.1. *)

val vm : t -> int -> Nest_virt.Vm.t
(** 0-based. Raises [Failure] when out of range. *)

val node : t -> int -> Nest_orch.Node.t
val client_entity : string
val run_until : t -> Nest_sim.Time.ns -> unit

val client_app_exec : t -> name:string -> Nest_sim.Exec.t
(** Application context for a benchmark client process on the host. *)
