module Time = Nest_sim.Time

(* 9p operation costs: request marshalling in the guest, server work on
   the host (page-cache backed), completion back in the guest.  Transport
   notifications are pure delay, as for virtio-net. *)
let guest_op_ns = 1_200
let server_fixed_ns = 2_000
let server_per_byte_ns = 0.30
let transport_delay_ns = 3_000

type t = {
  fs_name : string;
  host : Nest_virt.Host.t;
  server : Nest_sim.Exec.t;
  tree : (string, string) Hashtbl.t;
  mutable op_count : int;
}

type mount = { m_vm : Nest_virt.Vm.t; fs : t }

let share host ~name =
  { fs_name = name; host;
    server = Nest_virt.Host.new_vhost_exec host ~name:("9pfs-" ^ name);
    tree = Hashtbl.create 16; op_count = 0 }

let name t = t.fs_name
let mount t vm = { m_vm = vm; fs = t }

(* guest request -> transport -> server work -> transport -> guest k *)
let rpc m ~bytes ~action ~k =
  let t = m.fs in
  let engine = Nest_virt.Host.engine t.host in
  Nest_sim.Exec.submit (Nest_virt.Vm.sys_exec m.m_vm) ~cost:guest_op_ns
    (fun () ->
      Nest_sim.Engine.schedule engine ~delay:transport_delay_ns (fun () ->
          let cost =
            server_fixed_ns
            + int_of_float (server_per_byte_ns *. float_of_int bytes)
          in
          Nest_sim.Exec.submit t.server ~cost (fun () ->
              t.op_count <- t.op_count + 1;
              let result = action () in
              Nest_sim.Engine.schedule engine ~delay:transport_delay_ns
                (fun () ->
                  Nest_sim.Exec.submit
                    (Nest_virt.Vm.sys_exec m.m_vm)
                    ~cost:guest_op_ns
                    (fun () -> k result)))))

let write m ~path ~data ~k =
  rpc m ~bytes:(String.length data)
    ~action:(fun () -> Hashtbl.replace m.fs.tree path data)
    ~k:(fun () -> k ())

let append m ~path ~data ~k =
  rpc m ~bytes:(String.length data)
    ~action:(fun () ->
      let existing = Option.value (Hashtbl.find_opt m.fs.tree path) ~default:"" in
      Hashtbl.replace m.fs.tree path (existing ^ data))
    ~k:(fun () -> k ())

let read m ~path ~k =
  rpc m ~bytes:0 ~action:(fun () -> Hashtbl.find_opt m.fs.tree path) ~k

let exists t ~path = Hashtbl.mem t.tree path

let files t =
  Hashtbl.fold (fun p d acc -> (p, String.length d) :: acc) t.tree []
  |> List.sort compare

let ops t = t.op_count
