open Nest_net

let udp_path ~src ~dst ~dst_addr ~port ?(size = 64) ~k () =
  Stack.set_trace_all src true;
  let server = Stack.Udp.bind dst ~port (fun _ ~src:_ _ -> ()) in
  Stack.set_observer dst
    (Some
       (fun pkt ->
         match Packet.ports pkt with
         | Some (_, p) when p = port ->
           Stack.set_observer dst None;
           Stack.set_trace_all src false;
           Stack.Udp.close server;
           k (Packet.hops pkt)
         | Some _ | None -> ()));
  let probe = Stack.Udp.bind src ~port:0 (fun _ ~src:_ _ -> ()) in
  Stack.Udp.sendto probe ~dst:dst_addr ~dst_port:port (Payload.raw size)

let contains_seq hops expected =
  let rec go hops expected =
    match (hops, expected) with
    | _, [] -> true
    | [], _ -> false
    | h :: hs, e :: es -> if String.equal h e then go hs es else go hs expected
  in
  go hops expected

let pp_hops fmt hops =
  Format.fprintf fmt "[%s]" (String.concat " -> " hops)
