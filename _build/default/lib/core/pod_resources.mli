(** §4.3 — the two other pod-shared resources a cross-VM deployment must
    carry: volumes and shared memory.

    The paper defers the mechanics to prior work (VirtFS for cross-guest
    file systems, MemPipe for cross-VM shared memory) and only requires
    the orchestrator/VMM synchronization hooks.  This module implements
    those hooks with their safety invariants:

    - a volume mounted into fractions on several VMs must be backed by a
      sharing-capable filesystem (VirtFS) — a plain block mount into two
      guests would corrupt state (§4.3.1);
    - a pod's shared-memory segment attached from several VMs must be
      backed by a cross-VM transport (MemPipe); attachments are only
      legal from fractions of the owning pod (§4.3.2). *)

type backend = Local | Virtfs
type shm_backend = Guest_local | Mempipe

module Volumes : sig
  type t

  val create : unit -> t

  val declare : t -> pod:string -> volume:string -> backend -> unit
  (** Raises [Failure] on duplicate declaration. *)

  val mount : t -> pod:string -> volume:string -> vm:string -> unit
  (** Records a mount of the pod's volume into a VM.  Raises [Failure] if
      the volume is undeclared, or if a [Local]-backed volume would
      become visible from a second VM. *)

  val unmount : t -> pod:string -> volume:string -> vm:string -> unit
  val mounts : t -> pod:string -> volume:string -> string list
  val backend_of : t -> pod:string -> volume:string -> backend option
end

module Shm : sig
  type t

  val create : unit -> t

  val register : t -> pod:string -> segment:string -> size_kb:int -> shm_backend -> unit
  val attach : t -> pod:string -> segment:string -> vm:string -> unit
  (** Raises [Failure] for unknown segments, or when a [Guest_local]
      segment would be attached from a second VM. *)

  val detach : t -> pod:string -> segment:string -> vm:string -> unit
  val attachments : t -> pod:string -> segment:string -> string list
  val total_kb : t -> pod:string -> int
end
