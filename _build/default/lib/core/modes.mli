(** Deployment modes evaluated in the paper. *)

type single =
  [ `NoCont    (** Application directly in the VM (no container) — §5.2 baseline. *)
  | `Nat      (** Default nested virtualization: docker bridge + NAT in-VM. *)
  | `Brfusion (** Per-pod hot-plugged NIC on the host bridge (§3). *)
  ]
(** Modes for single-server experiments (Figs. 2, 4–8): the client runs
    on the physical host. *)

type pair =
  [ `SameNode (** Both containers in one pod namespace in one VM (localhost). *)
  | `NatX     (** Fractions in separate VMs, via both NAT layers (published port). *)
  | `Overlay  (** Docker Overlay (VXLAN) between the VMs. *)
  | `Hostlo   (** Multiplexed host loopback (§4). *)
  ]
(** Modes for intra-pod experiments (Figs. 10–15): both endpoints are
    containers of one pod. *)

val single_to_string : single -> string
val pair_to_string : pair -> string
val all_single : single list
val all_pair : pair list
