type single = [ `NoCont | `Nat | `Brfusion ]
type pair = [ `SameNode | `NatX | `Overlay | `Hostlo ]

let single_to_string = function
  | `NoCont -> "NoCont"
  | `Nat -> "NAT"
  | `Brfusion -> "BrFusion"

let pair_to_string = function
  | `SameNode -> "SameNode"
  | `NatX -> "NAT"
  | `Overlay -> "Overlay"
  | `Hostlo -> "Hostlo"

let all_single = [ `NoCont; `Nat; `Brfusion ]
let all_pair = [ `SameNode; `NatX; `Overlay; `Hostlo ]
