open Nest_net

type config = { vmm : Nest_virt.Vmm.t }

type state = { taps : (string, Tap.t) Hashtbl.t; counts : (string, int) Hashtbl.t }

let states : (config * state) list ref = ref []

let state_of config =
  match List.find_opt (fun (c, _) -> c == config) !states with
  | Some (_, s) -> s
  | None ->
    let s = { taps = Hashtbl.create 8; counts = Hashtbl.create 8 } in
    states := (config, s) :: !states;
    s

let make_config vmm = { vmm }

let lo_subnet = Ipv4.cidr_of_string "127.0.0.0/8"

let plugin config =
  let add ~pod_name ~node ~publish:_ ~k =
    let s = state_of config in
    let vm = Nest_orch.Node.vm node in
    let tap =
      match Hashtbl.find_opt s.taps pod_name with
      | Some tap -> tap
      | None ->
        let tap =
          Nest_virt.Vmm.create_hostlo config.vmm ~name:("hostlo-" ^ pod_name)
        in
        Hashtbl.replace s.taps pod_name tap;
        tap
    in
    let n = Option.value (Hashtbl.find_opt s.counts pod_name) ~default:0 in
    Hashtbl.replace s.counts pod_name (n + 1);
    (* The fraction gets no regular lo: the Hostlo endpoint *is* its
       localhost. *)
    let netns =
      Nest_virt.Vm.new_netns vm
        ~name:(Printf.sprintf "%s@%s" pod_name (Nest_virt.Vm.name vm))
        ~with_loopback:false ()
    in
    Nest_virt.Vmm.hotplug_hostlo_endpoint_mac config.vmm ~vm
      ~hostlo:(Tap.name tap)
      ~id:(Printf.sprintf "hlo-%s-%d" pod_name n)
      ~k:(fun mac ->
        (* The VM agent configures the endpoint as the fraction's
           localhost (§4.1 step 4). *)
        Nest_orch.Kubelet.configure_nic
          (Nest_orch.Kubelet.of_node node)
          ~netns ~mac ~ip:Ipv4.localhost ~subnet:lo_subnet
          ~k:(fun _dev -> k netns)
          ())
  in
  { Nest_orch.Cni.cni_name = "hostlo"; add }

let tap_of_pod config pod = Hashtbl.find_opt (state_of config).taps pod

let fractions config pod =
  Option.value (Hashtbl.find_opt (state_of config).counts pod) ~default:0
