lib/core/autopilot.mli: Nest_container Nest_net Nest_orch Nest_sim Pod_resources Stack Testbed
