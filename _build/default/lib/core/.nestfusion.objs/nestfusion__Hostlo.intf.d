lib/core/hostlo.mli: Nest_net Nest_orch Nest_virt Tap
