lib/core/hostlo.ml: Hashtbl Ipv4 List Nest_net Nest_orch Nest_virt Option Printf Tap
