lib/core/hostlo.ml: Hashtbl Ipv4 Nest_net Nest_orch Nest_virt Option Printf Tap
