lib/core/mempipe.ml: List Nest_net Nest_sim Nest_virt Payload Pod_resources Printf
