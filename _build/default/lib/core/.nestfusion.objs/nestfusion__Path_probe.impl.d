lib/core/path_probe.ml: Format Nest_net Packet Payload Stack String
