lib/core/virtfs.mli: Nest_virt
