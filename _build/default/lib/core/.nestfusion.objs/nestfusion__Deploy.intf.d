lib/core/deploy.mli: Ipv4 Modes Nest_net Nest_sim Stack Testbed
