lib/core/modes.ml:
