lib/core/pod_resources.mli:
