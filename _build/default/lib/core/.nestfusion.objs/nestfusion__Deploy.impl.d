lib/core/deploy.ml: Brfusion Hostlo Ipv4 List Nest_net Nest_orch Nest_sim Nest_virt Stack Testbed
