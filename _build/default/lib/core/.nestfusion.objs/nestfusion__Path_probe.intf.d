lib/core/path_probe.mli: Format Ipv4 Nest_net Stack
