lib/core/brfusion.ml: Ipam Ipv4 List Nest_net Nest_orch Nest_virt Stack
