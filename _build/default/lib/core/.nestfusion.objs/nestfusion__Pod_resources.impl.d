lib/core/pod_resources.ml: Hashtbl List Option Printf
