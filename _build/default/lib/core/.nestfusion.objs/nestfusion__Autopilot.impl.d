lib/core/autopilot.ml: Brfusion Hostlo Ipam List Nest_container Nest_net Nest_orch Nest_sim Nest_virt Pod_resources Printf Stack Testbed
