lib/core/testbed.mli: Bridge Ipv4 Nest_net Nest_orch Nest_sim Nest_virt Stack
