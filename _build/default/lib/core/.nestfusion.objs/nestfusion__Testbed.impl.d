lib/core/testbed.ml: Bridge Ipv4 List Nest_net Nest_orch Nest_sim Nest_virt Printf Stack
