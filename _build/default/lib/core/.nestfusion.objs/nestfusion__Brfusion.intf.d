lib/core/brfusion.mli: Ipam Ipv4 Nest_net Nest_orch Nest_virt Stack
