lib/core/modes.mli:
