lib/core/virtfs.ml: Hashtbl List Nest_sim Nest_virt Option String
