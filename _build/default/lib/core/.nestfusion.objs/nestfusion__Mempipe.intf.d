lib/core/mempipe.mli: Nest_net Nest_virt Pod_resources
