(** Hostlo (§4): cross-VM pod deployment via a host-backed localhost.

    The pod's private localhost interface is re-implemented as a host
    loopback TAP multiplexed between the VMs hosting the pod's fractions:
    one RX/TX queue per VM, every frame written on any queue reflected to
    all queues.  Each fraction's namespace is created *without* a regular
    [lo]; the Hostlo endpoint carries 127.0.0.1, so containerized
    applications use their localhost exactly as in a whole pod — the
    transport-level transparency the paper claims over adapted-application
    approaches (§6).

    §4.1's protocol maps to: first fraction -> VMM creates the loopback
    tap; every fraction -> VMM inserts a queue endpoint as a hot-plugged
    NIC (netdev_add_hostlo + device_add), the plugin waits for it by MAC
    (all endpoints share the tap's MAC: it is one interface) and
    configures it as the fraction's localhost. *)

open Nest_net

type config
(** A deployment's Hostlo state: the VMM handle plus the per-pod loopback
    TAPs and fraction counts.  The state is owned by the config value —
    release the config and the whole deployment's state is collectable. *)

val make_config : Nest_virt.Vmm.t -> config

val plugin : config -> Nest_orch.Cni.t
(** CNI plugin named "hostlo".  [add] treats each call for the same pod
    name as one more fraction: the first creates the loopback tap, later
    ones reuse it. *)

val tap_of_pod : config -> string -> Tap.t option
(** The pod's multiplexed loopback device, once created. *)

val fractions : config -> string -> int
(** Number of endpoints inserted for the pod so far. *)
