type backend = Local | Virtfs
type shm_backend = Guest_local | Mempipe

module Volumes = struct
  type vol = { vol_backend : backend; mutable mounted_on : string list }
  type t = (string * string, vol) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let declare t ~pod ~volume backend =
    if Hashtbl.mem t (pod, volume) then
      failwith (Printf.sprintf "Volumes.declare: duplicate %s/%s" pod volume);
    Hashtbl.replace t (pod, volume) { vol_backend = backend; mounted_on = [] }

  let get t ~pod ~volume =
    match Hashtbl.find_opt t (pod, volume) with
    | Some v -> v
    | None ->
      failwith (Printf.sprintf "Volumes: unknown volume %s/%s" pod volume)

  let mount t ~pod ~volume ~vm =
    let v = get t ~pod ~volume in
    if not (List.mem vm v.mounted_on) then begin
      (match (v.vol_backend, v.mounted_on) with
      | Local, _ :: _ ->
        failwith
          (Printf.sprintf
             "Volumes.mount: %s/%s is Local-backed; mounting it into a \
              second OS would corrupt in-memory filesystem state — back it \
              with VirtFS"
             pod volume)
      | Local, [] | Virtfs, _ -> ());
      v.mounted_on <- v.mounted_on @ [ vm ]
    end

  let unmount t ~pod ~volume ~vm =
    let v = get t ~pod ~volume in
    v.mounted_on <- List.filter (fun x -> x <> vm) v.mounted_on

  let mounts t ~pod ~volume = (get t ~pod ~volume).mounted_on

  let backend_of t ~pod ~volume =
    Option.map (fun v -> v.vol_backend) (Hashtbl.find_opt t (pod, volume))
end

module Shm = struct
  type seg = {
    seg_backend : shm_backend;
    seg_kb : int;
    mutable attached : string list;
  }

  type t = (string * string, seg) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let register t ~pod ~segment ~size_kb backend =
    if Hashtbl.mem t (pod, segment) then
      failwith (Printf.sprintf "Shm.register: duplicate %s/%s" pod segment);
    Hashtbl.replace t (pod, segment)
      { seg_backend = backend; seg_kb = size_kb; attached = [] }

  let get t ~pod ~segment =
    match Hashtbl.find_opt t (pod, segment) with
    | Some s -> s
    | None -> failwith (Printf.sprintf "Shm: unknown segment %s/%s" pod segment)

  let attach t ~pod ~segment ~vm =
    let s = get t ~pod ~segment in
    if not (List.mem vm s.attached) then begin
      (match (s.seg_backend, s.attached) with
      | Guest_local, existing :: _ when existing <> vm ->
        failwith
          (Printf.sprintf
             "Shm.attach: segment %s/%s is guest-local; cross-VM attachment \
              requires a MemPipe backend"
             pod segment)
      | (Guest_local | Mempipe), _ -> ());
      s.attached <- s.attached @ [ vm ]
    end

  let detach t ~pod ~segment ~vm =
    let s = get t ~pod ~segment in
    s.attached <- List.filter (fun x -> x <> vm) s.attached

  let attachments t ~pod ~segment = (get t ~pod ~segment).attached

  let total_kb t ~pod =
    Hashtbl.fold
      (fun (p, _) s acc -> if p = pod then acc + s.seg_kb else acc)
      t 0
end
