(** VirtFS (Jujiuri et al., §4.3.1): a para-virtualized filesystem whose
    host-side server lets the *same* directory tree be mounted into
    several guests without the cache-coherence corruption a shared block
    device would cause — the mechanism the paper designates for volumes
    of cross-VM pods.

    State lives host-side (one authoritative tree per share), so a write
    through any mount is immediately visible through every other: the
    consistency property §4.3.1 needs.  Every operation pays a 9p-style
    round trip (guest request, host server work, guest completion). *)

type t
type mount

val share : Nest_virt.Host.t -> name:string -> t
val name : t -> string

val mount : t -> Nest_virt.Vm.t -> mount
(** One mount per guest; mounting twice returns a second handle onto the
    same share. *)

val write :
  mount -> path:string -> data:string -> k:(unit -> unit) -> unit
(** Creates or truncates [path]; cost scales with [data] length. *)

val append :
  mount -> path:string -> data:string -> k:(unit -> unit) -> unit

val read : mount -> path:string -> k:(string option -> unit) -> unit

val exists : t -> path:string -> bool
val files : t -> (string * int) list
(** Sorted [(path, size)] listing. *)

val ops : t -> int
(** Total server operations (diagnostics). *)
