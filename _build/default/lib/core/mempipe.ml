open Nest_net
module Time = Nest_sim.Time

(* Copy costs: one memcpy into the shared ring on the sender's side, one
   out of it on the receiver's.  Notification is an inter-VM event-channel
   kick: pure latency. *)
let copy_fixed_ns = 350
let copy_per_byte_ns = 0.35
let notify_delay_ns = 2_800

type endpoint = {
  ep_vm : Nest_virt.Vm.t;
  mutable on_recv : size:int -> msg:Payload.app_msg option -> unit;
  chan : t;
}

and t = {
  mp_name : string;
  pod : string;
  host : Nest_virt.Host.t;
  shm : Pod_resources.Shm.t;
  ring_bytes : int;
  mutable endpoints : endpoint list;
  mutable sent : int;
  mutable delivered : int;
}

let create host shm ~pod ~name ?(ring_kb = 256) () =
  Pod_resources.Shm.register shm ~pod ~segment:name ~size_kb:ring_kb
    Pod_resources.Mempipe;
  { mp_name = name; pod; host; shm; ring_bytes = ring_kb * 1024;
    endpoints = []; sent = 0; delivered = 0 }

let attach t vm =
  Pod_resources.Shm.attach t.shm ~pod:t.pod ~segment:t.mp_name
    ~vm:(Nest_virt.Vm.name vm);
  let ep =
    { ep_vm = vm; on_recv = (fun ~size:_ ~msg:_ -> ()); chan = t }
  in
  t.endpoints <- t.endpoints @ [ ep ];
  ep

let set_on_recv ep f = ep.on_recv <- f

let copy_cost size =
  copy_fixed_ns + int_of_float (copy_per_byte_ns *. float_of_int size)

let send ep ~size ?msg () =
  let t = ep.chan in
  if size > t.ring_bytes then
    failwith
      (Printf.sprintf "Mempipe.send: %d bytes exceed the %d-byte ring" size
         t.ring_bytes);
  t.sent <- t.sent + 1;
  let engine = Nest_virt.Host.engine t.host in
  (* Copy in, on the sender's guest kernel. *)
  Nest_sim.Exec.submit (Nest_virt.Vm.sys_exec ep.ep_vm) ~cost:(copy_cost size)
    (fun () ->
      List.iter
        (fun peer ->
          if peer != ep then
            (* Event-channel kick, then the peer copies out and wakes its
               consumer. *)
            Nest_sim.Engine.schedule engine ~delay:notify_delay_ns (fun () ->
                Nest_sim.Exec.submit
                  (Nest_virt.Vm.sys_exec peer.ep_vm)
                  ~cost:(copy_cost size)
                  (fun () ->
                    t.delivered <- t.delivered + 1;
                    peer.on_recv ~size ~msg)))
        t.endpoints)

let sent t = t.sent
let delivered t = t.delivered
