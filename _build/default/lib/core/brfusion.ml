open Nest_net

type config = {
  vmm : Nest_virt.Vmm.t;
  host_bridge : string;
  pod_ipam : Ipam.t;
}

type state = {
  mutable assignments : (Stack.ns * Ipv4.t) list;
  mutable hotplugs : int;
}

(* One state per config; configs are created once per testbed. *)
let states : (config * state) list ref = ref []

let state_of config =
  match List.find_opt (fun (c, _) -> c == config) !states with
  | Some (_, s) -> s
  | None ->
    let s = { assignments = []; hotplugs = 0 } in
    states := (config, s) :: !states;
    s

let make_config vmm ~host_bridge =
  match Nest_virt.Vmm.bridge_addr vmm host_bridge with
  | None -> failwith ("Brfusion.make_config: no such bridge: " ^ host_bridge)
  | Some (gw, subnet) ->
    (* Reserve the gateway and every address already visible on the
       bridge's segment (the running VMs). *)
    let vm_addrs =
      List.concat_map
        (fun (_, vm) ->
          List.filter_map
            (fun (_, ip, _) ->
              if Ipv4.in_subnet subnet ip then Some ip else None)
            (Stack.addrs (Nest_virt.Vm.ns vm)))
        (Nest_virt.Vmm.vms vmm)
    in
    { vmm; host_bridge;
      pod_ipam = Ipam.create ~reserved:(gw :: vm_addrs) subnet }

let plugin config =
  let add ~pod_name ~node ~publish:_ ~k =
    let s = state_of config in
    let vm = Nest_orch.Node.vm node in
    let gw, subnet =
      match Nest_virt.Vmm.bridge_addr config.vmm config.host_bridge with
      | Some a -> a
      | None -> failwith "Brfusion: bridge disappeared"
    in
    let netns = Nest_virt.Vm.new_netns vm ~name:pod_name () in
    s.hotplugs <- s.hotplugs + 1;
    (* Steps 1-3: ask the VMM for a NIC on the host bridge; it answers
       with the new device's MAC. *)
    Nest_virt.Vmm.hotplug_nic_mac config.vmm ~vm ~bridge:config.host_bridge
      ~id:("brf-" ^ pod_name)
      ~k:(fun mac ->
        (* Step 4: the VM agent discovers the device by MAC, moves it
           into the pod namespace and configures it. *)
        let ip = Ipam.alloc config.pod_ipam in
        Nest_orch.Kubelet.configure_nic
          (Nest_orch.Kubelet.of_node node)
          ~netns ~mac ~ip ~subnet ~gateway:gw
          ~k:(fun _dev ->
            s.assignments <- (netns, ip) :: s.assignments;
            k netns)
          ())
  in
  { Nest_orch.Cni.cni_name = "brfusion"; add }

let pod_ip config ns =
  let s = state_of config in
  List.find_map (fun (n, ip) -> if n == ns then Some ip else None) s.assignments

let hotplug_count config = (state_of config).hotplugs
