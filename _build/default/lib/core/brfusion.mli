(** BrFusion (§3): network virtualization de-duplication.

    Instead of bridging the pod into an in-VM docker0 + NAT layer, the
    orchestrator asks the VMM — over its management side channel — to
    hot-plug a fresh virtio NIC into the VM for this pod.  The NIC's
    host-side backend is enslaved to the host bridge, and the guest-side
    device is moved straight into the pod's network namespace: the pod is
    directly linked to the host-level virtual network, with addressing and
    NAT exactly as the host already does for VMs.

    The four-step protocol of §3.1 maps to this implementation as:
    + the plugin calls {!Nest_virt.Vmm.hotplug_nic}, naming the target
      host bridge (steps 1–2: netdev_add + device_add over QMP);
    + the VMM answers with the new NIC's MAC (step 3);
    + the plugin, acting as the in-VM agent, waits for the device to
      appear by that MAC, moves it into the pod namespace and configures
      address + default route (step 4). *)

open Nest_net

type config
(** A deployment's BrFusion state: VMM handle, target bridge, pod IPAM,
    plus the pod address assignments and hotplug count accumulated by
    {!plugin}.  All of it has the config's lifetime. *)

val make_config :
  Nest_virt.Vmm.t -> host_bridge:string -> config
(** Builds the IPAM from the bridge's subnet, reserving the gateway and
    already-used VM addresses as callers allocate them through it too. *)

val host_bridge : config -> string
(** Bridge whose network pods join. *)

val pod_ipam : config -> Ipam.t
(** Addresses for pod NICs (host-bridge subnet); callers provisioning
    sibling endpoints (e.g. fresh VMs) allocate through this too. *)

val plugin : config -> Nest_orch.Cni.t
(** CNI plugin named "brfusion". *)

val pod_ip : config -> Stack.ns -> Ipv4.t option
(** Address assigned to a pod namespace by this plugin. *)

val hotplug_count : config -> int
(** NICs provisioned so far (diagnostics). *)
