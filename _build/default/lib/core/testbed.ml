open Nest_net

type t = {
  engine : Nest_sim.Engine.t;
  acct : Nest_sim.Cpu_account.t;
  host : Nest_virt.Host.t;
  vmm : Nest_virt.Vmm.t;
  bridge : Bridge.t;
  client_ns : Stack.ns;
  client_subnet : Ipv4.cidr;
  mutable vms : Nest_virt.Vm.t list;
  mutable nodes : Nest_orch.Node.t list;
}

let client_entity = "client"

let ip = Ipv4.of_string
let cidr = Ipv4.cidr_of_string

let create ?(seed = 42L) ?(cost_model = Nest_virt.Cost_model.default)
    ?(num_vms = 1) () =
  let engine = Nest_sim.Engine.create ~seed () in
  let acct = Nest_sim.Cpu_account.create () in
  let host =
    Nest_virt.Host.create engine acct ~cpus:12 ~cost_model ~name:"host" ()
  in
  let bridge =
    Nest_virt.Host.add_bridge host ~name:"virbr0" ~ip:(ip "10.0.0.1")
      ~subnet:(cidr "10.0.0.0/24")
  in
  let vmm = Nest_virt.Vmm.create host in
  let client_subnet = cidr "192.168.100.0/24" in
  let client_ns =
    Nest_virt.Host.new_process_ns host ~name:"client" ~entity:client_entity
  in
  Nest_virt.Host.connect_ns_to_host host client_ns
    ~host_ip:(ip "192.168.100.1") ~ns_ip:(ip "192.168.100.2")
    ~subnet:client_subnet;
  Nest_virt.Host.masquerade host ~src_subnet:client_subnet
    ~nat_ip:(ip "10.0.0.1");
  let t =
    { engine; acct; host; vmm; bridge; client_ns; client_subnet; vms = [];
      nodes = [] }
  in
  for i = 0 to num_vms - 1 do
    let vm =
      Nest_virt.Vmm.create_vm vmm
        ~name:(Printf.sprintf "vm%d" (i + 1))
        ~vcpus:5 ~mem_mb:4096 ~bridge:"virbr0"
        ~ip:(ip (Printf.sprintf "10.0.0.%d" (i + 2)))
    in
    t.vms <- t.vms @ [ vm ];
    t.nodes <- t.nodes @ [ Nest_orch.Node.create vm ]
  done;
  t

let vm t i =
  match List.nth_opt t.vms i with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Testbed.vm: no VM %d" i)

let node t i =
  match List.nth_opt t.nodes i with
  | Some n -> n
  | None -> failwith (Printf.sprintf "Testbed.node: no node %d" i)

let run_until t horizon = Nest_sim.Engine.run ~until:horizon t.engine

let client_app_exec t ~name =
  Nest_virt.Host.new_app_exec t.host ~name ~entity:client_entity
