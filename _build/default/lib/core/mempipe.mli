(** MemPipe (Zhang & Liu, cited in §4.3.2 and §6): cross-VM communication
    over shared memory, below the IP level.

    A channel is a host-provisioned shared-memory ring multiplexed
    between co-resident VMs.  Sending copies the payload into the ring in
    the sender's guest kernel, posts a notification, and the receiver
    copies it out — no virtio, no vhost, no network stack, no MTU
    segmentation.

    This is the related-work alternative the paper weighs against Hostlo:
    faster (see the ext-mempipe experiment), but *not transparent* — the
    application must use the channel API instead of its localhost socket,
    which is exactly why the paper picks a transport-level loopback.  The
    channel registers itself as a {!Pod_resources.Shm} Mempipe segment,
    tying §4.3.2's bookkeeping to a live object. *)

type t
type endpoint

val create :
  Nest_virt.Host.t ->
  Pod_resources.Shm.t ->
  pod:string ->
  name:string ->
  ?ring_kb:int ->
  unit ->
  t
(** Registers segment [name] for [pod] (Mempipe backend) in the given
    §4.3 registry.  [ring_kb] defaults to 256. *)

val attach : t -> Nest_virt.Vm.t -> endpoint
(** One endpoint per pod fraction; records the attachment in the Shm
    registry. *)

val set_on_recv :
  endpoint -> (size:int -> msg:Nest_net.Payload.app_msg option -> unit) -> unit

val send : endpoint -> size:int -> ?msg:Nest_net.Payload.app_msg -> unit -> unit
(** Delivers to every *other* endpoint of the channel (pod semantics).
    Raises [Failure] if [size] exceeds the ring. *)

val sent : t -> int
val delivered : t -> int
