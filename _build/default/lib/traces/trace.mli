(** Cluster-trace records (Google cluster-trace shaped).

    Resource demands are *relative units*: fractions of the largest
    machine in the fleet, exactly as the Google traces normalize them and
    as Table 2 reproduces for the AWS m5 family (24xlarge = 1.0). *)

type container_req = {
  c_cpu : float;  (** Relative CPU demand (1.0 = largest machine). *)
  c_mem : float;  (** Relative memory demand. *)
}

type pod = {
  p_id : int;
  p_containers : container_req list;
}

type user = {
  u_id : int;
  pods : pod list;
}

val pod_cpu : pod -> float
val pod_mem : pod -> float
val user_pods : user -> int
val user_containers : user -> int

val to_csv : user list -> string
(** One row per container: [user,pod,container,cpu,mem]. *)

val of_csv : string -> user list
(** Inverse of {!to_csv}.  Raises [Failure] on malformed rows. *)

val pp_user : Format.formatter -> user -> unit
