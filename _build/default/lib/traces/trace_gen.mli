(** Synthetic cluster-trace generator, calibrated to the published shape
    of the Google 2011 cluster traces as used in §5.3.1: heavy-tailed
    per-user job (pod) counts, small multi-task jobs, and per-task
    resource requests normalized to the largest machine with a
    heavy-tailed distribution concentrated well below 0.1.

    The real trace is not redistributable here; the generator exercises
    the identical packing code over the same distributions (see the
    substitution table in DESIGN.md). *)

val generate : seed:int64 -> users:int -> Trace.user list
(** Deterministic for a given seed.  The paper evaluates 492 users. *)

val default_users : int
(** 492. *)
