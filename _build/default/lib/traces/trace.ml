type container_req = { c_cpu : float; c_mem : float }
type pod = { p_id : int; p_containers : container_req list }
type user = { u_id : int; pods : pod list }

let pod_cpu p = List.fold_left (fun a c -> a +. c.c_cpu) 0.0 p.p_containers
let pod_mem p = List.fold_left (fun a c -> a +. c.c_mem) 0.0 p.p_containers
let user_pods u = List.length u.pods

let user_containers u =
  List.fold_left (fun a p -> a + List.length p.p_containers) 0 u.pods

let to_csv users =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "user,pod,container,cpu,mem\n";
  List.iter
    (fun u ->
      List.iter
        (fun p ->
          List.iteri
            (fun i c ->
              Buffer.add_string buf
                (Printf.sprintf "%d,%d,%d,%.6f,%.6f\n" u.u_id p.p_id i
                   c.c_cpu c.c_mem))
            p.p_containers)
        u.pods)
    users;
  Buffer.contents buf

let of_csv s =
  let lines = String.split_on_char '\n' s in
  let rows =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line = "user,pod,container,cpu,mem" then None
        else
          match String.split_on_char ',' line with
          | [ u; p; _; cpu; mem ] -> (
            try
              Some
                ( int_of_string u, int_of_string p,
                  { c_cpu = float_of_string cpu; c_mem = float_of_string mem } )
            with _ -> failwith ("Trace.of_csv: bad row: " ^ line))
          | _ -> failwith ("Trace.of_csv: bad row: " ^ line))
      lines
  in
  (* Group by user, then pod, preserving order of first appearance. *)
  let users = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (u, p, c) ->
      let pods =
        match Hashtbl.find_opt users u with
        | Some pods -> pods
        | None ->
          let pods = Hashtbl.create 16 in
          Hashtbl.add users u pods;
          order := u :: !order;
          pods
      in
      let cs = Option.value (Hashtbl.find_opt pods p) ~default:[] in
      Hashtbl.replace pods p (c :: cs))
    rows;
  List.rev_map
    (fun u ->
      let pods = Hashtbl.find users u in
      let pod_ids =
        Hashtbl.fold (fun p _ acc -> p :: acc) pods [] |> List.sort compare
      in
      { u_id = u;
        pods =
          List.map
            (fun p ->
              { p_id = p; p_containers = List.rev (Hashtbl.find pods p) })
            pod_ids })
    !order

let pp_user fmt u =
  Format.fprintf fmt "user %d: %d pods, %d containers" u.u_id (user_pods u)
    (user_containers u)
