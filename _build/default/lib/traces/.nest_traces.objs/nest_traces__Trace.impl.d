lib/traces/trace.ml: Buffer Format Hashtbl List Option Printf String
