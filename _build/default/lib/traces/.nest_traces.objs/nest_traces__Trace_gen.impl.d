lib/traces/trace_gen.ml: Float List Nest_sim Trace
