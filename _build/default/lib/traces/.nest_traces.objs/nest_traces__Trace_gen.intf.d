lib/traces/trace_gen.mli: Trace
