lib/traces/trace.mli: Format
