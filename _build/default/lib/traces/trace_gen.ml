module Prng = Nest_sim.Prng
module Dist = Nest_sim.Dist

let default_users = 492

(* Per-user pod counts: most users run a handful of pods, a few run
   thousands (the Google traces' user activity is roughly Zipfian). *)
let sample_pod_count rng =
  int_of_float (Dist.bounded_pareto rng ~shape:0.78 ~lo:1.0 ~hi:12_000.0)

(* Containers per pod: Google jobs are mostly 1 task, with a tail of
   wide jobs. *)
let sample_container_count rng =
  let v = Dist.bounded_pareto rng ~shape:1.4 ~lo:1.0 ~hi:24.0 in
  max 1 (int_of_float v)

(* Per-container demands, in relative units of the largest machine.
   The Google trace request distribution is heavy-tailed with most
   requests below 0.05 of a machine; memory requests correlate with CPU
   but with substantial dispersion. *)
let sample_cpu rng = Dist.bounded_pareto rng ~shape:1.15 ~lo:0.006 ~hi:0.30

let sample_mem rng cpu =
  let ratio = Dist.lognormal_mean_cv rng ~mean:1.0 ~cv:0.6 in
  Float.min 0.35 (Float.max 0.002 (cpu *. ratio))

(* A pod must fit the largest machine whole (the baseline scheduler has
   no other option, and real traces fit their machines by construction):
   trim trailing containers until the pod totals stay below capacity. *)
let pod_budget = 0.95

let clamp_pod containers =
  let rec keep acc cpu mem = function
    | [] -> List.rev acc
    | c :: rest ->
      let cpu' = cpu +. c.Trace.c_cpu and mem' = mem +. c.Trace.c_mem in
      if (cpu' > pod_budget || mem' > pod_budget) && acc <> [] then List.rev acc
      else keep (c :: acc) cpu' mem' rest
  in
  keep [] 0.0 0.0 containers

let generate ~seed ~users =
  let rng = Prng.create seed in
  List.init users (fun u ->
      let pods = sample_pod_count rng in
      { Trace.u_id = u;
        pods =
          List.init pods (fun p ->
              let n = sample_container_count rng in
              { Trace.p_id = p;
                p_containers =
                  clamp_pod
                    (List.init n (fun _ ->
                         let cpu = sample_cpu rng in
                         { Trace.c_cpu = cpu; c_mem = sample_mem rng cpu })) }) })
