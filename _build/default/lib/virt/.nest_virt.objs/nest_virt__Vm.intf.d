lib/virt/vm.mli: Dev Hop Host Mac Nest_net Nest_sim Stack
