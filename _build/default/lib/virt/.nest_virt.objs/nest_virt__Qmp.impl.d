lib/virt/qmp.ml: Format Nest_net
