lib/virt/vm.ml: Cost_model Dev Hop Host Kernel_costs List Mac Nest_net Nest_sim Stack
