lib/virt/vmm.mli: Dev Host Ipv4 Mac Nest_net Qmp Tap Vm
