lib/virt/kernel_costs.mli: Cost_model Nest_net Nest_sim
