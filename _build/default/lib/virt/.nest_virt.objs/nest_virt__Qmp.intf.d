lib/virt/qmp.mli: Format Nest_net
