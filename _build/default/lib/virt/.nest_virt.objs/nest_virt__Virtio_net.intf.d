lib/virt/virtio_net.mli: Dev Mac Nest_net Nest_sim Tap Vm
