lib/virt/cost_model.ml: Float
