lib/virt/host.mli: Bridge Cost_model Hop Ipv4 Mac Nest_net Nest_sim Stack
