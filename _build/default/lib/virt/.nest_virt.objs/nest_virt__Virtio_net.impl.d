lib/virt/virtio_net.ml: Cost_model Dev Frame Host Nest_net Nest_sim Tap Vm
