lib/virt/kernel_costs.ml: Cost_model Hop Nest_net Stack
