lib/virt/vmm.ml: Bridge Cost_model Dev Format Hashtbl Hop Host List Nest_net Nest_sim Printf Qmp Route Stack Tap Virtio_net Vm
