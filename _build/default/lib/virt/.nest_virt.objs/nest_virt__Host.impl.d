lib/virt/host.ml: Bridge Cost_model Hop Ipv4 Kernel_costs List Mac Nat Nest_net Nest_sim Printf Route Stack Veth
