lib/virt/cost_model.mli:
