type t = {
  syscall_fixed_ns : int;
  stack_tx_fixed_ns : int;
  stack_tx_per_byte_ns : float;
  stack_rx_fixed_ns : int;
  stack_rx_per_byte_ns : float;
  forward_fixed_ns : int;
  nat_hook_fixed_ns : int;
  nat_rule_ns : int;
  loopback_fixed_ns : int;
  loopback_per_byte_ns : float;
  veth_fixed_ns : int;
  veth_per_byte_ns : float;
  bridge_fixed_ns : int;
  bridge_per_byte_ns : float;
  tap_fixed_ns : int;
  guest_kernel_factor : float;
  wakeup_delay_ns : int;
  vhost_fixed_ns : int;
  vhost_per_byte_ns : float;
  virtio_kick_delay_ns : int;
  virtio_notify_delay_ns : int;
  hostlo_reflect_fixed_ns : int;
  hostlo_reflect_per_byte_ns : float;
  hostlo_per_queue_fixed_ns : int;
  vxlan_encap_fixed_ns : int;
  vxlan_encap_per_byte_ns : float;
  vxlan_decap_fixed_ns : int;
  vxlan_decap_per_byte_ns : float;
  qmp_roundtrip_mean_ns : float;
  qmp_roundtrip_cv : float;
  guest_probe_mean_ns : float;
  guest_probe_cv : float;
}

let default =
  { syscall_fixed_ns = 350;
    stack_tx_fixed_ns = 900;
    stack_tx_per_byte_ns = 0.20;
    stack_rx_fixed_ns = 750;
    stack_rx_per_byte_ns = 0.15;
    forward_fixed_ns = 450;
    nat_hook_fixed_ns = 650;
    nat_rule_ns = 170;
    loopback_fixed_ns = 1_400;
    loopback_per_byte_ns = 2.30;
    veth_fixed_ns = 500;
    veth_per_byte_ns = 0.05;
    bridge_fixed_ns = 420;
    bridge_per_byte_ns = 0.04;
    tap_fixed_ns = 260;
    guest_kernel_factor = 1.40;
    wakeup_delay_ns = 5_800;
    vhost_fixed_ns = 2_300;
    vhost_per_byte_ns = 0.75;
    virtio_kick_delay_ns = 1_200;
    virtio_notify_delay_ns = 6_200;
    hostlo_reflect_fixed_ns = 850;
    hostlo_reflect_per_byte_ns = 0.45;
    hostlo_per_queue_fixed_ns = 450;
    vxlan_encap_fixed_ns = 2_600;
    vxlan_encap_per_byte_ns = 0.10;
    vxlan_decap_fixed_ns = 2_200;
    vxlan_decap_per_byte_ns = 0.10;
    qmp_roundtrip_mean_ns = 250_000.0;
    qmp_roundtrip_cv = 0.30;
    guest_probe_mean_ns = 12_000_000.0;
    guest_probe_cv = 0.25 }

let scale_i f x = int_of_float (Float.round (f *. float_of_int x))

let scaled t f =
  { t with
    syscall_fixed_ns = scale_i f t.syscall_fixed_ns;
    stack_tx_fixed_ns = scale_i f t.stack_tx_fixed_ns;
    stack_tx_per_byte_ns = f *. t.stack_tx_per_byte_ns;
    stack_rx_fixed_ns = scale_i f t.stack_rx_fixed_ns;
    stack_rx_per_byte_ns = f *. t.stack_rx_per_byte_ns;
    forward_fixed_ns = scale_i f t.forward_fixed_ns;
    nat_hook_fixed_ns = scale_i f t.nat_hook_fixed_ns;
    nat_rule_ns = scale_i f t.nat_rule_ns;
    loopback_fixed_ns = scale_i f t.loopback_fixed_ns;
    loopback_per_byte_ns = f *. t.loopback_per_byte_ns;
    veth_fixed_ns = scale_i f t.veth_fixed_ns;
    veth_per_byte_ns = f *. t.veth_per_byte_ns;
    bridge_fixed_ns = scale_i f t.bridge_fixed_ns;
    bridge_per_byte_ns = f *. t.bridge_per_byte_ns;
    tap_fixed_ns = scale_i f t.tap_fixed_ns;
    vhost_fixed_ns = scale_i f t.vhost_fixed_ns;
    vhost_per_byte_ns = f *. t.vhost_per_byte_ns;
    hostlo_reflect_fixed_ns = scale_i f t.hostlo_reflect_fixed_ns;
    hostlo_reflect_per_byte_ns = f *. t.hostlo_reflect_per_byte_ns;
    hostlo_per_queue_fixed_ns = scale_i f t.hostlo_per_queue_fixed_ns;
    vxlan_encap_fixed_ns = scale_i f t.vxlan_encap_fixed_ns;
    vxlan_encap_per_byte_ns = f *. t.vxlan_encap_per_byte_ns;
    vxlan_decap_fixed_ns = scale_i f t.vxlan_decap_fixed_ns;
    vxlan_decap_per_byte_ns = f *. t.vxlan_decap_per_byte_ns }
