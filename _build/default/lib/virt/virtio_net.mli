(** Virtio-net device: guest-side frontend paired with a vhost backend
    worker in the host kernel, carried by a TAP queue.

    Guest transmissions pay the vhost worker for descriptor processing
    and copy before reaching the tap; tap-to-guest frames pay the same
    worker before entering the guest's receive path.  The vhost worker is
    a dedicated host-kernel execution context, so each NIC scales
    independently — the property that lets BrFusion give every pod its
    own NIC without a shared chokepoint. *)

open Nest_net

type t

val create :
  vm:Vm.t ->
  id:string ->
  mac:Mac.t ->
  queue:Tap.queue ->
  vhost:Nest_sim.Exec.t ->
  ?l2:Dev.l2_mode ->
  unit ->
  t
(** [l2 = Reflector] for Hostlo endpoints (queues of a loopback tap). *)

val dev : t -> Dev.t
(** The guest-visible device; attach it to a guest namespace. *)

val vhost_exec : t -> Nest_sim.Exec.t
val id : t -> string

val unplug : t -> unit
(** Detaches the frontend: subsequent traffic in either direction is
    dropped (device_del). *)
