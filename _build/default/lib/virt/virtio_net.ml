open Nest_net

type t = {
  nic_id : string;
  guest_dev : Dev.t;
  vhost : Nest_sim.Exec.t;
  mutable plugged : bool;
}

let create ~vm ~id ~mac ~queue ~vhost ?(l2 = Dev.Normal) () =
  let host = Vm.host vm in
  let cm = Host.cost_model host in
  let engine = Host.engine host in
  let guest_dev = Dev.create ~name:(Vm.name vm ^ ":" ^ id) ~mac ~l2 () in
  let t = { nic_id = id; guest_dev; vhost; plugged = true } in
  let vhost_cost bytes =
    cm.Cost_model.vhost_fixed_ns
    + int_of_float (cm.Cost_model.vhost_per_byte_ns *. float_of_int bytes)
  in
  (* Guest -> host: doorbell kick wakes the vhost worker, which dequeues
     from the TX vring and writes the tap. *)
  Dev.set_tx guest_dev (fun frame ->
      if t.plugged then
        Nest_sim.Engine.schedule engine ~delay:cm.Cost_model.virtio_kick_delay_ns
          (fun () ->
            if t.plugged then
              Nest_sim.Exec.submit t.vhost ~cost:(vhost_cost (Frame.len frame))
                (fun () -> if t.plugged then Tap.queue_write queue frame)));
  (* Host -> guest: vhost fills the RX vring, then injects an interrupt;
     the injection latency is pure delay (no context occupied). *)
  Tap.queue_set_backend queue (fun frame ->
      if t.plugged then
        Nest_sim.Exec.submit t.vhost ~cost:(vhost_cost (Frame.len frame))
          (fun () ->
            if t.plugged then
              Nest_sim.Engine.schedule engine
                ~delay:cm.Cost_model.virtio_notify_delay_ns (fun () ->
                  if t.plugged then Dev.deliver t.guest_dev frame)));
  t

let dev t = t.guest_dev
let vhost_exec t = t.vhost
let id t = t.nic_id

let unplug t =
  t.plugged <- false;
  t.guest_dev.Dev.up <- false
