(** Builds per-namespace {!Nest_net.Stack.costs} from a cost model and a
    kernel's two execution contexts (process-context and softirq). *)

val stack_costs :
  Cost_model.t ->
  sys_exec:Nest_sim.Exec.t ->
  soft_exec:Nest_sim.Exec.t ->
  Nest_net.Stack.costs
