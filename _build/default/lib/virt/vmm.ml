open Nest_net
module Engine = Nest_sim.Engine

let log_src = Nest_sim.Log.src "vmm"

type backend =
  | Tap_backend of Tap.t
  | Hostlo_backend of Tap.t

type t = {
  vmm_host : Host.t;
  vmm_rng : Nest_sim.Prng.t;
  mutable vm_list : (string * Vm.t) list;
  mutable hostlo_list : (string * Tap.t) list;
  netdevs : (string * string, backend) Hashtbl.t;
  nic_tbl : (string * string, Virtio_net.t) Hashtbl.t;
}

let create host =
  { vmm_host = host; vmm_rng = Nest_sim.Prng.split (Host.rng host);
    vm_list = []; hostlo_list = []; netdevs = Hashtbl.create 16;
    nic_tbl = Hashtbl.create 16 }

let host t = t.vmm_host
let vms t = t.vm_list
let find_vm t name = List.assoc_opt name t.vm_list

let bridge_self_addr t br =
  let hns = Host.ns t.vmm_host in
  let self = Bridge.self_dev br in
  List.find_map
    (fun (d, ip, cidr) -> if d == self then Some (ip, cidr) else None)
    (Stack.addrs hns)

let make_tap_on_bridge t ~name ~bridge =
  match Host.find_bridge t.vmm_host bridge with
  | None -> Error (Printf.sprintf "no such bridge: %s" bridge)
  | Some br ->
    let tap =
      Tap.create (Host.engine t.vmm_host) ~name ~mode:Tap.Normal
        ~hop:(Host.tap_hop t.vmm_host) ~mac:(Host.fresh_mac t.vmm_host) ()
    in
    Bridge.attach br (Tap.host_dev tap);
    Ok tap

let create_vm t ~name ~vcpus ~mem_mb ~bridge ~ip =
  let br =
    match Host.find_bridge t.vmm_host bridge with
    | Some br -> br
    | None -> failwith ("Vmm.create_vm: no such bridge: " ^ bridge)
  in
  let gw, subnet =
    match bridge_self_addr t br with
    | Some a -> a
    | None -> failwith ("Vmm.create_vm: bridge has no address: " ^ bridge)
  in
  let vm = Vm.create t.vmm_host ~name ~vcpus ~mem_mb in
  let tap =
    match make_tap_on_bridge t ~name:("tap-" ^ name) ~bridge with
    | Ok tap -> tap
    | Error e -> failwith ("Vmm.create_vm: " ^ e)
  in
  let queue = Tap.add_queue tap ~owner:name in
  let vhost = Host.new_vhost_exec t.vmm_host ~name:("vhost-" ^ name) in
  let nic =
    Virtio_net.create ~vm ~id:"eth0" ~mac:(Host.fresh_mac t.vmm_host) ~queue
      ~vhost ()
  in
  let dev = Virtio_net.dev nic in
  Stack.attach (Vm.ns vm) dev;
  Stack.add_addr (Vm.ns vm) dev ip subnet;
  Route.add_default (Stack.routes (Vm.ns vm)) ~gateway:gw ~dev ();
  Hashtbl.replace t.nic_tbl (name, "eth0") nic;
  Vm.nic_arrived vm dev;
  t.vm_list <- t.vm_list @ [ (name, vm) ];
  vm

let bridge_addr t name =
  match Host.find_bridge t.vmm_host name with
  | None -> None
  | Some br -> bridge_self_addr t br

let create_hostlo t ~name =
  let cm = Host.cost_model t.vmm_host in
  let hop =
    Hop.make (Host.soft_exec t.vmm_host)
      ~fixed_ns:cm.Cost_model.hostlo_reflect_fixed_ns
      ~per_byte_ns:cm.Cost_model.hostlo_reflect_per_byte_ns
  in
  let tap =
    Tap.create (Host.engine t.vmm_host) ~name ~mode:Tap.Loopback ~hop
      ~per_queue_ns:cm.Cost_model.hostlo_per_queue_fixed_ns
      ~mac:(Host.fresh_mac t.vmm_host) ()
  in
  t.hostlo_list <- t.hostlo_list @ [ (name, tap) ];
  tap

let find_hostlo t name = List.assoc_opt name t.hostlo_list

let sample_latency t ~mean ~cv =
  int_of_float (Nest_sim.Dist.lognormal_mean_cv t.vmm_rng ~mean ~cv)

let qmp_delay t =
  let cm = Host.cost_model t.vmm_host in
  sample_latency t ~mean:cm.Cost_model.qmp_roundtrip_mean_ns
    ~cv:cm.Cost_model.qmp_roundtrip_cv

let probe_delay t =
  let cm = Host.cost_model t.vmm_host in
  sample_latency t ~mean:cm.Cost_model.guest_probe_mean_ns
    ~cv:cm.Cost_model.guest_probe_cv

let perform t ~vm cmd =
  let vm_name = Vm.name vm in
  match cmd with
  | Qmp.Netdev_add { id; bridge } -> (
    match make_tap_on_bridge t ~name:(vm_name ^ ":" ^ id) ~bridge with
    | Error e -> Qmp.Error e
    | Ok tap ->
      Hashtbl.replace t.netdevs (vm_name, id) (Tap_backend tap);
      Qmp.Ok_done)
  | Qmp.Netdev_add_hostlo { id; hostlo } -> (
    match find_hostlo t hostlo with
    | None -> Qmp.Error ("no such hostlo: " ^ hostlo)
    | Some tap ->
      Hashtbl.replace t.netdevs (vm_name, id) (Hostlo_backend tap);
      Qmp.Ok_done)
  | Qmp.Device_add { id; netdev } -> (
    match Hashtbl.find_opt t.netdevs (vm_name, netdev) with
    | None -> Qmp.Error ("no such netdev: " ^ netdev)
    | Some backend ->
      let tap, l2 =
        match backend with
        | Tap_backend tap -> (tap, Dev.Normal)
        | Hostlo_backend tap -> (tap, Dev.Reflector)
      in
      let mac =
        (* Every queue of a Hostlo tap shares the tap's MAC: it is one
           interface multiplexed between VMs (§4.2). *)
        match backend with
        | Hostlo_backend tap -> Tap.mac tap
        | Tap_backend _ -> Host.fresh_mac t.vmm_host
      in
      let queue = Tap.add_queue tap ~owner:vm_name in
      let vhost =
        Host.new_vhost_exec t.vmm_host
          ~name:(Printf.sprintf "vhost-%s-%s" vm_name id)
      in
      let nic = Virtio_net.create ~vm ~id ~mac ~queue ~vhost ~l2 () in
      Hashtbl.replace t.nic_tbl (vm_name, id) nic;
      (* The frontend exists as soon as QMP returns; the guest sees the
         device once its virtio probe completes. *)
      Engine.schedule (Host.engine t.vmm_host) ~delay:(probe_delay t)
        (fun () -> Vm.nic_arrived vm (Virtio_net.dev nic));
      Qmp.Ok_nic { mac })
  | Qmp.Device_del { id } -> (
    match Hashtbl.find_opt t.nic_tbl (vm_name, id) with
    | None -> Qmp.Error ("no such device: " ^ id)
    | Some nic ->
      Virtio_net.unplug nic;
      Hashtbl.remove t.nic_tbl (vm_name, id);
      Qmp.Ok_done)

let execute t ~vm cmd k =
  Nest_sim.Log.info ~engine:(Host.engine t.vmm_host) log_src (fun () ->
      Printf.sprintf "qmp %s -> %s" (Qmp.command_name cmd) (Vm.name vm));
  Engine.schedule (Host.engine t.vmm_host) ~delay:(qmp_delay t) (fun () ->
      let r = perform t ~vm cmd in
      Nest_sim.Log.info ~engine:(Host.engine t.vmm_host) log_src (fun () ->
          Format.asprintf "qmp %s @ %s: %a" (Qmp.command_name cmd)
            (Vm.name vm) Qmp.pp_response r);
      k r)

let hotplug_nic_mac t ~vm ~bridge ~id ~k =
  execute t ~vm (Qmp.Netdev_add { id = id ^ "-nd"; bridge }) (fun r1 ->
      match r1 with
      | Qmp.Error e -> failwith ("hotplug_nic: " ^ e)
      | Qmp.Ok_done | Qmp.Ok_nic _ ->
        execute t ~vm (Qmp.Device_add { id; netdev = id ^ "-nd" }) (fun r2 ->
            match r2 with
            | Qmp.Ok_nic { mac } -> k mac
            | Qmp.Ok_done | Qmp.Error _ ->
              failwith "hotplug_nic: device_add failed"))

let hotplug_nic t ~vm ~bridge ~id ~k =
  hotplug_nic_mac t ~vm ~bridge ~id ~k:(fun mac -> Vm.wait_nic vm ~mac ~k)

let hotplug_hostlo_endpoint_mac t ~vm ~hostlo ~id ~k =
  execute t ~vm (Qmp.Netdev_add_hostlo { id = id ^ "-nd"; hostlo }) (fun r1 ->
      match r1 with
      | Qmp.Error e -> failwith ("hotplug_hostlo_endpoint: " ^ e)
      | Qmp.Ok_done | Qmp.Ok_nic _ ->
        execute t ~vm (Qmp.Device_add { id; netdev = id ^ "-nd" }) (fun r2 ->
            match r2 with
            | Qmp.Ok_nic { mac } -> k mac
            | Qmp.Ok_done | Qmp.Error _ ->
              failwith "hotplug_hostlo_endpoint: device_add failed"))

let hotplug_hostlo_endpoint t ~vm ~hostlo ~id ~k =
  hotplug_hostlo_endpoint_mac t ~vm ~hostlo ~id ~k:(fun mac ->
      Vm.wait_nic vm ~mac ~k)

let unplug_nic t ~vm ~id =
  execute t ~vm (Qmp.Device_del { id }) (fun _ -> ())
