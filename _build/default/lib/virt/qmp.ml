type command =
  | Netdev_add of { id : string; bridge : string }
  | Netdev_add_hostlo of { id : string; hostlo : string }
  | Device_add of { id : string; netdev : string }
  | Device_del of { id : string }

type response =
  | Ok_done
  | Ok_nic of { mac : Nest_net.Mac.t }
  | Error of string

let command_name = function
  | Netdev_add _ -> "netdev_add"
  | Netdev_add_hostlo _ -> "netdev_add_hostlo"
  | Device_add _ -> "device_add"
  | Device_del _ -> "device_del"

let pp_response fmt = function
  | Ok_done -> Format.pp_print_string fmt "ok"
  | Ok_nic { mac } -> Format.fprintf fmt "ok mac=%a" Nest_net.Mac.pp mac
  | Error e -> Format.fprintf fmt "error: %s" e
