(** Calibrated per-hop costs — the single source of performance truth.

    Every datapath element in the simulator draws its per-packet CPU cost
    from this table.  The values are nanoseconds of service time on the
    executing context (plus a per-byte term for copies), chosen so that
    the *composed paths* of the paper's six deployment modes reproduce the
    relative results of its evaluation (see test/test_calibration.ml):
    they are per-hop microcosts in the range reported for Linux
    networking, not per-experiment fudge factors.  [t] is a record so
    ablation benches can perturb individual entries. *)

type t = {
  (* Process-context stack work. *)
  syscall_fixed_ns : int;       (** send/recv syscall entry. *)
  stack_tx_fixed_ns : int;      (** IP/TCP transmit path per segment. *)
  stack_tx_per_byte_ns : float; (** copy-out. *)
  (* Softirq-context stack work. *)
  stack_rx_fixed_ns : int;      (** driver + IP receive per packet. *)
  stack_rx_per_byte_ns : float;
  forward_fixed_ns : int;       (** IP forwarding decision. *)
  nat_hook_fixed_ns : int;      (** netfilter traversal when armed. *)
  nat_rule_ns : int;            (** additional cost per installed rule. *)
  loopback_fixed_ns : int;      (** local (lo) delivery per packet. *)
  loopback_per_byte_ns : float;
  (* L2 devices. *)
  veth_fixed_ns : int;
  veth_per_byte_ns : float;
  bridge_fixed_ns : int;
  bridge_per_byte_ns : float;
  tap_fixed_ns : int;           (** normal-mode tap traversal. *)
  (* Virtualization. *)
  guest_kernel_factor : float;
      (** Multiplier on guest-kernel datapath costs (vmexits, EPT and
          shadow-structure overheads make the same kernel work dearer in
          a guest). *)
  wakeup_delay_ns : int;
      (** Scheduler wakeup latency before a blocked application thread
          runs its receive callback — pure delay, no CPU charge. *)
  vhost_fixed_ns : int;         (** vhost worker per descriptor. *)
  vhost_per_byte_ns : float;
  virtio_kick_delay_ns : int;   (** guest->vhost doorbell (eventfd). *)
  virtio_notify_delay_ns : int; (** vhost->guest interrupt injection. *)
  hostlo_reflect_fixed_ns : int;     (** loopback-tap reflection, total. *)
  hostlo_reflect_per_byte_ns : float;
  hostlo_per_queue_fixed_ns : int;   (** extra per served queue. *)
  (* Overlay. *)
  vxlan_encap_fixed_ns : int;
  vxlan_encap_per_byte_ns : float;
  vxlan_decap_fixed_ns : int;
  vxlan_decap_per_byte_ns : float;
  (* Management-plane latencies (hot-plug path, Fig. 8). *)
  qmp_roundtrip_mean_ns : float;     (** VMM side-channel command RTT. *)
  qmp_roundtrip_cv : float;
  guest_probe_mean_ns : float;       (** in-guest virtio probe + udev. *)
  guest_probe_cv : float;
}

val default : t

val scaled : t -> float -> t
(** Multiplies every datapath cost (not the management-plane latencies);
    used by ablation benches. *)
