open Nest_net

let stack_costs (cm : Cost_model.t) ~sys_exec ~soft_exec =
  { Stack.tx =
      Hop.make sys_exec ~fixed_ns:cm.Cost_model.stack_tx_fixed_ns
        ~per_byte_ns:cm.Cost_model.stack_tx_per_byte_ns;
    rx =
      Hop.make soft_exec ~fixed_ns:cm.Cost_model.stack_rx_fixed_ns
        ~per_byte_ns:cm.Cost_model.stack_rx_per_byte_ns;
    forward = Hop.make soft_exec ~fixed_ns:cm.Cost_model.forward_fixed_ns;
    nat = Hop.make soft_exec ~fixed_ns:cm.Cost_model.nat_hook_fixed_ns;
    nat_per_rule_ns = cm.Cost_model.nat_rule_ns;
    local =
      Hop.make sys_exec ~fixed_ns:cm.Cost_model.loopback_fixed_ns
        ~per_byte_ns:cm.Cost_model.loopback_per_byte_ns;
    syscall = Hop.make sys_exec ~fixed_ns:cm.Cost_model.syscall_fixed_ns;
    wakeup_delay_ns = cm.Cost_model.wakeup_delay_ns }
