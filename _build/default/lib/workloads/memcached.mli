(** Memcached server + memtier_benchmark client (Table 1 row 1).

    memtier drives a closed loop: [threads × conns_per_thread] persistent
    TCP connections, each issuing the next request as soon as the
    previous response arrives, with a SET:GET ratio of 1:10.  Metrics are
    responses per second and the per-request latency distribution —
    Figs. 5 (gain), 11/12 (Hostlo overhead) and the CPU figures. *)

open Nestfusion

type result = {
  responses_per_sec : float;
  latency : Nest_sim.Stats.t;  (** Per-request, us. *)
  gets : int;
  sets : int;
}

val run :
  Testbed.t ->
  App.endpoints ->
  ?threads:int ->
  ?conns_per_thread:int ->
  ?value_size:int ->
  ?server_threads:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  result
(** Defaults follow Table 1: 4 threads, 50 connections/thread, 1:10
    SET:GET; 100-byte values; 4 server worker threads. *)
