(** Netperf (§5.1): the micro-benchmark behind Figs. 2, 4 and 10.

    - [tcp_stream]: one connection, the client sends fixed-size messages
      as fast as the socket accepts them for the measurement window; the
      metric is average payload throughput.
    - [udp_rr]: synchronous request/response transactions, one at a
      time; the metric is the transaction latency distribution.

    Both run a warmup before the measured window and drive the engine to
    completion themselves. *)

open Nestfusion

type stream_result = {
  mbps : float;              (** Payload Mbit/s over the window. *)
  bytes_delivered : int;
  sends : int;
}

val tcp_stream :
  Testbed.t ->
  App.endpoints ->
  msg_size:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  stream_result
(** Defaults: 100 ms warmup, 2 s measured (the paper uses 20 s wall
    time; in simulation the steady state is reached well within 2 s —
    benches can lengthen it). *)

type rr_result = {
  latency : Nest_sim.Stats.t;  (** Per-transaction round-trip, us. *)
  transactions : int;
}

val udp_rr :
  Testbed.t ->
  App.endpoints ->
  msg_size:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  rr_result

val tcp_rr :
  Testbed.t ->
  App.endpoints ->
  msg_size:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  rr_result
(** Netperf's TCP_RR mode: synchronous transactions over one persistent
    connection. *)

val default_sizes : int list
(** The message-size sweep of Figs. 4 and 10: 64 B .. 16 KiB. *)
