open Nest_net
open Nestfusion
module Engine = Nest_sim.Engine
module Time = Nest_sim.Time

type Payload.app_msg +=
  | Kf_batch of { batch_id : int; t0s : Time.ns list }
  | Kf_ack of { batch_id : int; t0s : Time.ns list }

type result = {
  latency : Nest_sim.Stats.t;
  msgs_per_sec : float;
  batches : int;
  records : int;
}

(* Broker request handling: log append (page-cache write) per batch plus
   a small per-record cost. *)
let broker_batch_mean_ns = 160_000.0
let broker_batch_cv = 0.06
let broker_record_ns = 180

(* Producer-side serialization/compression per record. *)
let producer_record_ns = 250
let record_overhead_bytes = 70  (* Kafka record framing *)

let containerized_factor = 1.35

let run tb (ep : App.endpoints) ?(containerized = false)
    ?(rate_per_sec = 120_000) ?(record_bytes = 100) ?(batch_bytes = 8_192)
    ?(linger = Time.ms 5) ?(broker_workers = 2) ?(warmup = Time.ms 100)
    ?(duration = Time.sec 1) () =
  let engine = tb.Testbed.engine in
  let rng = Nest_sim.Prng.split (Engine.rng engine) in
  let latency = Nest_sim.Stats.create ~name:"kafka_us" () in
  let batches = ref 0 and records = ref 0 in
  let measuring = ref false in
  let stop_at = ref max_int in
  let pool =
    App.Pool.create ep.App.sv_new_exec ~n:broker_workers ~name:"kafka-broker"
  in
  (* Broker. *)
  Stack.Tcp.listen ep.App.sv_ns ~port:ep.App.sv_port ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
          List.iter
            (fun msg ->
              match msg with
              | Kf_batch { batch_id; t0s } ->
                let mean =
                  if containerized then
                    broker_batch_mean_ns *. containerized_factor
                  else broker_batch_mean_ns
                in
                let cost =
                  int_of_float
                    (Nest_sim.Dist.lognormal_mean_cv rng ~mean
                       ~cv:broker_batch_cv)
                  + (broker_record_ns * List.length t0s)
                in
                App.Pool.submit pool ~cost (fun () ->
                    if not (Stack.Tcp.is_closed conn) then
                      App.send_all conn ~size:64
                        ~msg:(Kf_ack { batch_id; t0s })
                        ())
              | _ -> ())
            msgs));
  (* Producer. *)
  let producer_conn = ref None in
  let batch : Time.ns list ref = ref [] in
  let batch_wire_bytes = ref 0 in
  let next_batch_id = ref 0 in
  let batch_opened_at = ref 0 in
  let flush () =
    match (!producer_conn, !batch) with
    | Some conn, (_ :: _ as t0s) when not (Stack.Tcp.is_closed conn) ->
      incr next_batch_id;
      let size = !batch_wire_bytes + 96 (* produce-request header *) in
      batch := [];
      batch_wire_bytes := 0;
      Nest_sim.Exec.submit ep.App.cl_exec
        ~cost:(producer_record_ns * List.length t0s)
        (fun () ->
          if not (Stack.Tcp.is_closed conn) then
            App.send_all conn ~size
              ~msg:(Kf_batch { batch_id = !next_batch_id; t0s = List.rev t0s })
              ())
    | _ -> ()
  in
  let rec linger_check opened () =
    (* Flush a partially filled batch when the linger timer expires. *)
    if !batch <> [] && !batch_opened_at = opened then flush ()
    else if !batch <> [] then
      Engine.schedule engine ~delay:linger (linger_check !batch_opened_at)
  in
  let offer_record () =
    if !batch = [] then begin
      batch_opened_at := Engine.now engine;
      Engine.schedule engine ~delay:linger (linger_check !batch_opened_at)
    end;
    batch := Engine.now engine :: !batch;
    batch_wire_bytes := !batch_wire_bytes + record_bytes + record_overhead_bytes;
    if !batch_wire_bytes >= batch_bytes then flush ()
  in
  let interval_ns = 1_000_000_000 / rate_per_sec in
  let rec tick () =
    if Engine.now engine < !stop_at then begin
      offer_record ();
      Engine.schedule engine ~delay:interval_ns tick
    end
  in
  ignore
    (Stack.Tcp.connect ep.App.cl_ns ~dst:ep.App.sv_addr ~port:ep.App.sv_port
       ~on_established:(fun conn ->
         producer_conn := Some conn;
         Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
             List.iter
               (fun msg ->
                 match msg with
                 | Kf_ack { t0s; _ } ->
                   if !measuring then begin
                     incr batches;
                     List.iter
                       (fun t0 ->
                         incr records;
                         Nest_sim.Stats.add latency
                           (Time.to_us_f (Engine.now engine - t0)))
                       t0s
                   end
                 | _ -> ())
               msgs);
         tick ())
       ());
  let t0 = Engine.now engine in
  stop_at := t0 + warmup + duration;
  Engine.run ~until:(t0 + warmup) engine;
  measuring := true;
  Engine.run ~until:!stop_at engine;
  Engine.run ~until:(!stop_at + Time.ms 50) engine;
  measuring := false;
  Stack.Tcp.unlisten ep.App.sv_ns ~port:ep.App.sv_port;
  { latency;
    msgs_per_sec = float_of_int !records /. Time.to_sec_f duration;
    batches = !batches;
    records = !records }
