open Nest_net
open Nestfusion

type endpoints = {
  cl_ns : Stack.ns;
  cl_exec : Nest_sim.Exec.t;
  sv_ns : Stack.ns;
  sv_exec : Nest_sim.Exec.t;
  sv_addr : Ipv4.t;
  sv_port : int;
  cl_new_exec : string -> Nest_sim.Exec.t;
  sv_new_exec : string -> Nest_sim.Exec.t;
}

let of_single tb (site : Deploy.server_site) =
  { cl_ns = tb.Testbed.client_ns;
    cl_exec = Testbed.client_app_exec tb ~name:(site.Deploy.site_entity ^ "-client");
    sv_ns = site.Deploy.site_ns;
    sv_exec = site.Deploy.site_exec;
    sv_addr = site.Deploy.site_addr;
    sv_port = site.Deploy.site_port;
    cl_new_exec = (fun n -> Testbed.client_app_exec tb ~name:n);
    sv_new_exec = site.Deploy.site_new_exec }

let of_pair (p : Deploy.pair_site) =
  { cl_ns = p.Deploy.a_ns; cl_exec = p.Deploy.a_exec; sv_ns = p.Deploy.b_ns;
    sv_exec = p.Deploy.b_exec; sv_addr = p.Deploy.b_addr;
    sv_port = p.Deploy.b_port; cl_new_exec = p.Deploy.a_new_exec;
    sv_new_exec = p.Deploy.b_new_exec }

let send_all conn ~size ?msg () =
  if not (Stack.Tcp.send conn ~size ?msg ()) then
    failwith "App.send_all: unexpected backpressure on request/response flow"

module Pool = struct
  type t = { workers : Nest_sim.Exec.t array }

  let create mk ~n ~name =
    { workers =
        Array.init n (fun i -> mk (Printf.sprintf "%s-w%d" name i)) }

  let submit t ~cost k =
    let best = ref t.workers.(0) in
    Array.iter
      (fun w ->
        if Nest_sim.Exec.busy_until w < Nest_sim.Exec.busy_until !best then
          best := w)
      t.workers;
    Nest_sim.Exec.submit !best ~cost k

  let size t = Array.length t.workers
end

module Cpu_snap = struct
  type t = (string * (Nest_sim.Cpu_account.category * int) list) list

  let take acct = Nest_sim.Cpu_account.snapshot acct

  let get snap ~entity cat =
    match List.assoc_opt entity snap with
    | None -> 0
    | Some cats -> Option.value (List.assoc_opt cat cats) ~default:0

  let diff_ns ~before ~after ~entity cat =
    get after ~entity cat - get before ~entity cat

  let diff_cores ~before ~after ~entity cat ~window =
    if window <= 0 then 0.0
    else float_of_int (diff_ns ~before ~after ~entity cat) /. float_of_int window

  let entity_total_cores ~before ~after ~entity ~window =
    List.fold_left
      (fun acc cat -> acc +. diff_cores ~before ~after ~entity cat ~window)
      0.0 Nest_sim.Cpu_account.all_categories
end
