(** NGINX server + wrk2 client (Table 1 row 2).

    wrk2 is an *open-loop*, constant-rate generator: requests are
    scheduled on a fixed timeline (10 k req/s by default) across 100
    connections, and latency is measured from the *intended* send time —
    wrk2's coordinated-omission correction — so server queueing shows up
    fully in the distribution.

    The paper attributes most of the containerized NGINX latency to "the
    software itself rather than the networking layer" (§5.2.2): the
    containerized server's per-request service distribution is slower and
    far heavier-tailed than the native one, which is what [containerized]
    selects. *)

open Nestfusion

type result = {
  latency : Nest_sim.Stats.t;  (** Per-request from intended time, us. *)
  achieved_rate : float;
  requests : int;
}

val run :
  Testbed.t ->
  App.endpoints ->
  containerized:bool ->
  ?threads:int ->
  ?connections:int ->
  ?rate_per_sec:int ->
  ?file_bytes:int ->
  ?server_workers:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  result
(** Defaults follow Table 1: 2 threads, 100 connections total,
    10 k req/s on a 1 kB file; 4 NGINX workers. *)
