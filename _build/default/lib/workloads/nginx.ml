open Nest_net
open Nestfusion
module Engine = Nest_sim.Engine
module Time = Nest_sim.Time

type Payload.app_msg +=
  | Ng_request of { id : int; t_intended : Time.ns }
  | Ng_response of { id : int; t_intended : Time.ns }

type result = {
  latency : Nest_sim.Stats.t;
  achieved_rate : float;
  requests : int;
}

let request_bytes = 120  (* GET + headers *)
let response_overhead_bytes = 240  (* status line + headers *)

(* Native NGINX serves a cached 1 kB file in ~180 us with moderate
   variance; the containerized instance (overlayfs, cgroup accounting,
   seccomp) is slower and heavy-tailed — the effect §5.2.2 observes. *)
let native_service_mean_ns = 180_000.0
let native_service_cv = 0.45
let containerized_service_mean_ns = 330_000.0
let containerized_service_cv = 1.2

let client_cost_ns = 500

let run tb (ep : App.endpoints) ~containerized ?(threads = 2)
    ?(connections = 100) ?(rate_per_sec = 10_000) ?(file_bytes = 1_024)
    ?(server_workers = 4) ?(warmup = Time.ms 100) ?(duration = Time.sec 1) ()
    =
  ignore threads;
  let engine = tb.Testbed.engine in
  let rng = Nest_sim.Prng.split (Engine.rng engine) in
  let latency = Nest_sim.Stats.create ~name:"nginx_us" () in
  let requests = ref 0 in
  let measuring = ref false in
  let stop_at = ref max_int in
  let service_mean, service_cv =
    if containerized then (containerized_service_mean_ns, containerized_service_cv)
    else (native_service_mean_ns, native_service_cv)
  in
  let pool =
    App.Pool.create ep.App.sv_new_exec ~n:server_workers ~name:"nginx"
  in
  Stack.Tcp.listen ep.App.sv_ns ~port:ep.App.sv_port ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
          List.iter
            (fun msg ->
              match msg with
              | Ng_request { id; t_intended } ->
                let cost =
                  int_of_float
                    (Nest_sim.Dist.lognormal_mean_cv rng ~mean:service_mean
                       ~cv:service_cv)
                in
                App.Pool.submit pool ~cost (fun () ->
                    if not (Stack.Tcp.is_closed conn) then
                      App.send_all conn
                        ~size:(file_bytes + response_overhead_bytes)
                        ~msg:(Ng_response { id; t_intended })
                        ())
              | _ -> ())
            msgs));
  (* wrk2: fixed-rate open loop over a connection pool.  Each connection
     can carry overlapping requests (HTTP pipelining is off in wrk2, but
     with 100 connections and round-robin dispatch a connection is rarely
     reused while busy at 10 k/s). *)
  let conns = Array.make connections None in
  let established = ref 0 in
  Array.iteri
    (fun i _ ->
      ignore
        (Stack.Tcp.connect ep.App.cl_ns ~dst:ep.App.sv_addr
           ~port:ep.App.sv_port
           ~on_established:(fun conn ->
             conns.(i) <- Some conn;
             incr established;
             Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
                 List.iter
                   (fun msg ->
                     match msg with
                     | Ng_response { t_intended; _ } ->
                       if !measuring then begin
                         Nest_sim.Stats.add latency
                           (Time.to_us_f (Engine.now engine - t_intended));
                         incr requests
                       end
                     | _ -> ())
                   msgs))
           ()))
    conns;
  let interval_ns = 1_000_000_000 / rate_per_sec in
  let next_conn = ref 0 in
  let next_id = ref 0 in
  let rec tick () =
    if Engine.now engine < !stop_at then begin
      (match conns.(!next_conn) with
      | Some conn when not (Stack.Tcp.is_closed conn) ->
        incr next_id;
        let id = !next_id in
        let t_intended = Engine.now engine in
        Nest_sim.Exec.submit ep.App.cl_exec ~cost:client_cost_ns (fun () ->
            if not (Stack.Tcp.is_closed conn) then
              App.send_all conn ~size:request_bytes
                ~msg:(Ng_request { id; t_intended })
                ())
      | Some _ | None -> ());
      next_conn := (!next_conn + 1) mod connections;
      Engine.schedule engine ~delay:interval_ns tick
    end
  in
  (* Let connections establish before the generator starts. *)
  Engine.schedule engine ~delay:(Time.ms 50) tick;
  let t0 = Engine.now engine in
  stop_at := t0 + Time.ms 50 + warmup + duration;
  Engine.run ~until:(t0 + Time.ms 50 + warmup) engine;
  measuring := true;
  Engine.run ~until:!stop_at engine;
  Engine.run ~until:(!stop_at + Time.ms 50) engine;
  measuring := false;
  Stack.Tcp.unlisten ep.App.sv_ns ~port:ep.App.sv_port;
  { latency;
    achieved_rate = float_of_int !requests /. Time.to_sec_f duration;
    requests = !requests }
