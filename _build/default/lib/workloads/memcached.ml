open Nest_net
open Nestfusion
module Engine = Nest_sim.Engine
module Time = Nest_sim.Time

type op = Get | Set

type Payload.app_msg +=
  | Mc_request of { op : op; id : int; t0 : Time.ns }
  | Mc_response of { id : int; t0 : Time.ns }

type result = {
  responses_per_sec : float;
  latency : Nest_sim.Stats.t;
  gets : int;
  sets : int;
}

(* Wire sizes: textual protocol framing plus key/value bytes. *)
let get_request_bytes = 40
let set_request_bytes value = 48 + value
let get_response_bytes value = 38 + value
let set_response_bytes = 8

(* Server-side service costs (request parse, hash lookup, slab
   read/write, response build). *)
let get_service_mean_ns = 7_000.0
let set_service_mean_ns = 9_000.0
let service_cv = 0.25

(* memtier's own per-request client work (request build, response parse,
   histogram update). *)
let client_cost_ns = 11_000

let run tb (ep : App.endpoints) ?(threads = 4) ?(conns_per_thread = 50)
    ?(value_size = 100) ?(server_threads = 4) ?(warmup = Time.ms 100)
    ?(duration = Time.sec 1) () =
  let engine = tb.Testbed.engine in
  let rng = Nest_sim.Prng.split (Engine.rng engine) in
  let latency = Nest_sim.Stats.create ~name:"memcached_us" () in
  let gets = ref 0 and sets = ref 0 and responses = ref 0 in
  let measuring = ref false in
  let stop_at = ref max_int in
  let pool = App.Pool.create ep.App.sv_new_exec ~n:server_threads ~name:"mc" in
  let client_pool =
    App.Pool.create ep.App.cl_new_exec ~n:threads ~name:"memtier"
  in
  (* Server: service each request on a worker thread, then respond. *)
  Stack.Tcp.listen ep.App.sv_ns ~port:ep.App.sv_port ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
          List.iter
            (fun msg ->
              match msg with
              | Mc_request { op; id; t0 } ->
                let mean =
                  match op with
                  | Get -> get_service_mean_ns
                  | Set -> set_service_mean_ns
                in
                let cost =
                  int_of_float
                    (Nest_sim.Dist.lognormal_mean_cv rng ~mean ~cv:service_cv)
                in
                let resp_bytes =
                  match op with
                  | Get -> get_response_bytes value_size
                  | Set -> set_response_bytes
                in
                App.Pool.submit pool ~cost (fun () ->
                    if not (Stack.Tcp.is_closed conn) then
                      App.send_all conn ~size:resp_bytes
                        ~msg:(Mc_response { id; t0 })
                        ())
              | _ -> ())
            msgs));
  (* memtier: one closed loop per connection. *)
  let next_id = ref 0 in
  let new_request conn =
    incr next_id;
    let id = !next_id in
    (* SET:GET = 1:10. *)
    let op = if Nest_sim.Prng.int rng 11 = 0 then Set else Get in
    if !measuring then (match op with Get -> incr gets | Set -> incr sets);
    let bytes =
      match op with
      | Get -> get_request_bytes
      | Set -> set_request_bytes value_size
    in
    App.Pool.submit client_pool ~cost:client_cost_ns (fun () ->
        if not (Stack.Tcp.is_closed conn) then
          App.send_all conn ~size:bytes
            ~msg:(Mc_request { op; id; t0 = Engine.now engine })
            ())
  in
  let total_conns = threads * conns_per_thread in
  for _ = 1 to total_conns do
    ignore
      (Stack.Tcp.connect ep.App.cl_ns ~dst:ep.App.sv_addr ~port:ep.App.sv_port
         ~on_established:(fun conn ->
           Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
               List.iter
                 (fun msg ->
                   match msg with
                   | Mc_response { t0; _ } ->
                     if !measuring then begin
                       Nest_sim.Stats.add latency
                         (Time.to_us_f (Engine.now engine - t0));
                       incr responses
                     end;
                     if Engine.now engine < !stop_at then new_request conn
                   | _ -> ())
                 msgs);
           new_request conn)
         ())
  done;
  let t0 = Engine.now engine in
  stop_at := t0 + warmup + duration;
  Engine.run ~until:(t0 + warmup) engine;
  measuring := true;
  Engine.run ~until:!stop_at engine;
  Engine.run ~until:(!stop_at + Time.ms 20) engine;
  measuring := false;
  Stack.Tcp.unlisten ep.App.sv_ns ~port:ep.App.sv_port;
  { responses_per_sec = float_of_int !responses /. Time.to_sec_f duration;
    latency; gets = !gets; sets = !sets }
