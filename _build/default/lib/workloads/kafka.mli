(** Kafka broker + kafka-producer-perf-test client (Table 1 row 3).

    The producer offers records at a constant rate (120 k msg/s, 100 B
    records) into an accumulator; batches are flushed when they reach
    [batch_bytes] (8192) or when the linger timer fires.  Record latency
    is measured from the producer [send()] of each record to the broker's
    acknowledgement of its batch — so it contains accumulation wait,
    network transfer of the multi-segment batch, and broker processing. *)

open Nestfusion

type result = {
  latency : Nest_sim.Stats.t;  (** Per-record, us. *)
  msgs_per_sec : float;
  batches : int;
  records : int;
}

val run :
  Testbed.t ->
  App.endpoints ->
  ?containerized:bool ->
  ?rate_per_sec:int ->
  ?record_bytes:int ->
  ?batch_bytes:int ->
  ?linger:Nest_sim.Time.ns ->
  ?broker_workers:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  result
(** Defaults follow Table 1: 120 000 msg/s, 100 B records, 8192 B
    batches; 5 ms linger; 2 broker request handlers. *)
