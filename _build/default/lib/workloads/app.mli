(** Shared plumbing for benchmark applications. *)

open Nest_net
open Nestfusion

type endpoints = {
  cl_ns : Stack.ns;
  cl_exec : Nest_sim.Exec.t;  (** Client application context. *)
  sv_ns : Stack.ns;
  sv_exec : Nest_sim.Exec.t;  (** Server application context. *)
  sv_addr : Ipv4.t;
  sv_port : int;
  cl_new_exec : string -> Nest_sim.Exec.t;
  sv_new_exec : string -> Nest_sim.Exec.t;
}

val of_single : Testbed.t -> Deploy.server_site -> endpoints
(** Client on the physical host (the paper's §5.1 setup). *)

val of_pair : Deploy.pair_site -> endpoints
(** Both endpoints are containers of one pod. *)

val send_all : Stack.Tcp.conn -> size:int -> ?msg:Payload.app_msg -> unit -> unit
(** Send that must succeed (request/response traffic whose volume never
    fills the socket buffer); raises [Failure] on backpressure so protocol
    bugs surface instead of silently stalling. *)

(** A pool of worker contexts (multi-threaded server model): work is
    dispatched to the least-loaded worker. *)
module Pool : sig
  type t

  val create : (string -> Nest_sim.Exec.t) -> n:int -> name:string -> t
  val submit : t -> cost:int -> (unit -> unit) -> unit
  val size : t -> int
end

(** CPU accounting snapshots for before/after measurement windows. *)
module Cpu_snap : sig
  type t

  val take : Nest_sim.Cpu_account.t -> t

  val diff_ns :
    before:t -> after:t -> entity:string -> Nest_sim.Cpu_account.category -> int

  val diff_cores :
    before:t ->
    after:t ->
    entity:string ->
    Nest_sim.Cpu_account.category ->
    window:Nest_sim.Time.ns ->
    float

  val entity_total_cores :
    before:t -> after:t -> entity:string -> window:Nest_sim.Time.ns -> float
end
