lib/workloads/netperf.mli: App Nest_sim Nestfusion Testbed
