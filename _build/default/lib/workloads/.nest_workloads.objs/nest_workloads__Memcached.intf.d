lib/workloads/memcached.mli: App Nest_sim Nestfusion Testbed
