lib/workloads/nginx.mli: App Nest_sim Nestfusion Testbed
