lib/workloads/netperf.ml: App List Nest_net Nest_sim Nestfusion Payload Stack Testbed
