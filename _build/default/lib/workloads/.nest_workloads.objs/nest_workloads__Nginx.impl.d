lib/workloads/nginx.ml: App Array List Nest_net Nest_sim Nestfusion Payload Stack Testbed
