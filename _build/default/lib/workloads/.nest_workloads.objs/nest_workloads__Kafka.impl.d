lib/workloads/kafka.ml: App List Nest_net Nest_sim Nestfusion Payload Stack Testbed
