lib/workloads/app.ml: Array Deploy Ipv4 List Nest_net Nest_sim Nestfusion Option Printf Stack Testbed
