lib/workloads/app.mli: Deploy Ipv4 Nest_net Nest_sim Nestfusion Payload Stack Testbed
