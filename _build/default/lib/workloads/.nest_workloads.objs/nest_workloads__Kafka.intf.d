lib/workloads/kafka.mli: App Nest_sim Nestfusion Testbed
