type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Passes BigCrush when used as a stream. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

let float t =
  (* 53 high bits -> uniform in [0,1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be > 0";
  (* Rejection-free modulo is fine here: bounds are tiny vs 2^62.  The
     [land max_int] guards against Int64.to_int keeping bit 62 set and
     producing a negative OCaml int. *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let range_float t lo hi = lo +. ((hi -. lo) *. float t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
