(** A pool of CPU cores shared by execution contexts.

    An {!Exec.t} bound to a cpu-set cannot start work before both one of
    its own serialization slots *and* one core of the set are free, so a
    machine's total parallelism is capped by its core count: a VM with 5
    vCPUs saturates when its applications plus its kernel contexts demand
    more than 5 cores — the regime several of the paper's macro
    experiments live in.

    Core selection is best-fit: among cores free at the work's ready
    time, the one that became free *last* is chosen (so a busy context
    keeps re-using "its" core back-to-back instead of strewing
    reservations with dead gaps across the pool); when no core is free,
    the earliest-available one is used and the work waits. *)

type t

val create : cores:int -> name:string -> t
val cores : t -> int
val name : t -> string

val book : t -> ready:Time.ns -> Time.ns * int
(** [book t ~ready] returns [(start, core)]: the earliest date >= [ready]
    at which [core] can run the work.  Must be followed by {!commit}. *)

val commit : t -> int -> finish:Time.ns -> unit
(** Marks the booked core busy until [finish]. *)

val busy_until_min : t -> Time.ns
val busy_cores : t -> now:Time.ns -> int
