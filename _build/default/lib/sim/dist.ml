let exponential rng ~mean =
  let u = 1.0 -. Prng.float rng in
  -.mean *. log u

let normal rng ~mu ~sigma =
  let u1 = 1.0 -. Prng.float rng in
  let u2 = Prng.float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal rng ~mu ~sigma = exp (normal rng ~mu ~sigma)

let lognormal_mean_cv rng ~mean ~cv =
  (* mean = exp(mu + sigma^2/2); cv^2 = exp(sigma^2) - 1 *)
  let sigma2 = log (1.0 +. (cv *. cv)) in
  let mu = log mean -. (sigma2 /. 2.0) in
  lognormal rng ~mu ~sigma:(sqrt sigma2)

let pareto rng ~shape ~scale =
  let u = 1.0 -. Prng.float rng in
  scale /. (u ** (1.0 /. shape))

let bounded_pareto rng ~shape ~lo ~hi =
  (* Inverse CDF of the truncated Pareto. *)
  let u = Prng.float rng in
  let la = lo ** shape and ha = hi ** shape in
  let x = -.((u *. ha) -. u *. la -. ha) /. (ha *. la) in
  x ** (-1.0 /. shape)

let poisson rng ~mean =
  if mean <= 0.0 then 0
  else if mean > 60.0 then
    let v = normal rng ~mu:mean ~sigma:(sqrt mean) in
    max 0 (int_of_float (Float.round v))
  else begin
    let l = exp (-.mean) in
    let k = ref 0 and p = ref 1.0 in
    let continue = ref true in
    while !continue do
      incr k;
      p := !p *. Prng.float rng;
      if !p <= l then continue := false
    done;
    !k - 1
  end

let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be > 0";
  (* Rejection method of Devroye (1986, ch. X.6). *)
  let b = 2.0 ** (s -. 1.0) in
  let rec draw () =
    let u = Prng.float rng and v = Prng.float rng in
    let x = Float.of_int (int_of_float (float_of_int n ** u)) +. 1.0 in
    let t = (1.0 +. (1.0 /. x)) ** (s -. 1.0) in
    if v *. x *. (t -. 1.0) /. (b -. 1.0) <= t /. b then int_of_float x
    else draw ()
  in
  min n (draw ())
