(** Simulated time, expressed as integer nanoseconds.

    Using [int] gives 63 usable bits on 64-bit platforms, i.e. simulated
    horizons of ~292 years, far beyond any experiment here. *)

type ns = int
(** A duration or an absolute simulated date, in nanoseconds. *)

val ns : int -> ns
val us : int -> ns
val ms : int -> ns
val sec : int -> ns

val of_sec_f : float -> ns
(** [of_sec_f s] converts a duration in (possibly fractional) seconds. *)

val to_sec_f : ns -> float
val to_us_f : ns -> float
val to_ms_f : ns -> float

val pp : Format.formatter -> ns -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)
