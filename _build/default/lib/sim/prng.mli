(** Deterministic, splittable pseudo-random number generator.

    The generator is a splitmix64 stream.  Determinism across runs for a
    fixed seed is a hard requirement: every experiment harness records its
    seed, and the test-suite pins exact values.  [split] derives an
    independent stream, which lets each subsystem own a generator without
    perturbing the draws of the others when the topology changes. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh stream.  Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives a new independent stream (advances [t] once). *)

val next_int64 : t -> int64
(** Next raw 64-bit draw. *)

val float : t -> float
(** Uniform draw in [0, 1). *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [0, bound).  [bound] must be > 0. *)

val bool : t -> bool

val range_float : t -> float -> float -> float
(** [range_float t lo hi] draws uniformly in [lo, hi). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
