(** Discrete-event simulation engine.

    The engine owns a virtual clock (nanoseconds since simulation start) and
    a priority queue of pending events.  [run] pops events in timestamp
    order; each event is a thunk that may schedule further events.  All the
    network devices, CPU contexts and workload generators in this repository
    are driven by one engine instance per experiment. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time 0.  [seed] initializes the root RNG stream
    (default [0x5EEDL]); subsystems should [Prng.split] their own streams
    from {!rng}. *)

val now : t -> Time.ns
(** Current simulated date. *)

val rng : t -> Prng.t
(** Root random stream of this engine. *)

val schedule : t -> delay:Time.ns -> (unit -> unit) -> unit
(** [schedule t ~delay f] fires [f] at [now t + max 0 delay]. *)

val schedule_at : t -> at:Time.ns -> (unit -> unit) -> unit
(** Absolute-date variant; dates in the past fire immediately (at [now]). *)

val run : ?until:Time.ns -> t -> unit
(** Pops events until the queue drains, or until the clock would pass
    [until] (events strictly after [until] remain queued; the clock is left
    at [until]). *)

val step : t -> bool
(** Executes exactly one event.  Returns [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total number of events executed so far (monotonic). *)
