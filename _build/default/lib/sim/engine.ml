type t = {
  mutable clock : Time.ns;
  queue : (unit -> unit) Heap.t;
  root_rng : Prng.t;
  mutable executed : int;
}

let create ?(seed = 0x5EEDL) () =
  { clock = 0; queue = Heap.create (); root_rng = Prng.create seed; executed = 0 }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t ~at f =
  let at = max at t.clock in
  Heap.push t.queue ~prio:at f

let schedule t ~delay f = schedule_at t ~at:(t.clock + max 0 delay) f

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, f) ->
    t.clock <- at;
    t.executed <- t.executed + 1;
    f ();
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match Heap.peek_prio t.queue with
      | Some at when at <= horizon -> ignore (step t)
      | Some _ | None ->
        continue := false;
        t.clock <- max t.clock horizon
    done

let pending t = Heap.size t.queue
let events_processed t = t.executed
