lib/sim/trace.mli: Format Time
