lib/sim/dist.mli: Prng
