lib/sim/engine.mli: Prng Time
