lib/sim/engine.mli: Metrics Prng Time Trace
