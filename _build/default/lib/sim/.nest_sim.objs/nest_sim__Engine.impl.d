lib/sim/engine.ml: Heap Prng Time
