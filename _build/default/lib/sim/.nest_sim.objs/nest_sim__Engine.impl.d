lib/sim/engine.ml: Float Hashtbl Heap List Metrics Prng Sys Time Trace
