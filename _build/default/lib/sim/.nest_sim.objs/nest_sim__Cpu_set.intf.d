lib/sim/cpu_set.mli: Time
