lib/sim/heap.mli:
