lib/sim/stats.ml: Array Format List Stdlib
