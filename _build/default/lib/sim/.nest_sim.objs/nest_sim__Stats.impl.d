lib/sim/stats.ml: Array Float Format List Stdlib
