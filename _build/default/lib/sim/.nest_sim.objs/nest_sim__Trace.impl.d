lib/sim/trace.ml: Array Buffer Char Format Hashtbl List Option Printf String Time
