lib/sim/exec.ml: Array Cpu_account Cpu_set Engine List Option Time
