lib/sim/cpu_account.mli: Format Time
