lib/sim/dist.ml: Float Prng
