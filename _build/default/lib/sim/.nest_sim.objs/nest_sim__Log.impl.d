lib/sim/log.ml: Engine Format Hashtbl Logs Time
