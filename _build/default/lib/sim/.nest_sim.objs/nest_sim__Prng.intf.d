lib/sim/prng.mli:
