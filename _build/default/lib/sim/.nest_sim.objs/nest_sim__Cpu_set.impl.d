lib/sim/cpu_set.ml: Array Time
