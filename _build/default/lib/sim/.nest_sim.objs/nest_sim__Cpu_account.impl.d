lib/sim/cpu_account.ml: Array Format Hashtbl List Time
