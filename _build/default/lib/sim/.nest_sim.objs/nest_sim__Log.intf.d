lib/sim/log.mli: Engine Logs
