lib/sim/metrics.mli: Format Stats
