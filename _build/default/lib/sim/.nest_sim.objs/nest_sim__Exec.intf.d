lib/sim/exec.mli: Cpu_account Cpu_set Engine Time
