lib/sim/metrics.ml: Buffer Float Format Hashtbl List Option Printf Stats String Trace
