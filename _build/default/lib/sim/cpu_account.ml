type category = Usr | Sys | Soft | Guest | Irq

let category_index = function Usr -> 0 | Sys -> 1 | Soft -> 2 | Guest -> 3 | Irq -> 4
let all_categories = [ Usr; Sys; Soft; Guest; Irq ]

let category_to_string = function
  | Usr -> "usr"
  | Sys -> "sys"
  | Soft -> "soft"
  | Guest -> "guest"
  | Irq -> "irq"

type t = (string, int array) Hashtbl.t

let create () : t = Hashtbl.create 32

let row t entity =
  match Hashtbl.find_opt t entity with
  | Some r -> r
  | None ->
    let r = Array.make 5 0 in
    Hashtbl.add t entity r;
    r

let charge t ~entity cat ns =
  let r = row t entity in
  let i = category_index cat in
  r.(i) <- r.(i) + ns

let get t ~entity cat =
  match Hashtbl.find_opt t entity with
  | None -> 0
  | Some r -> r.(category_index cat)

let entity_total t ~entity =
  match Hashtbl.find_opt t entity with
  | None -> 0
  | Some r -> Array.fold_left ( + ) 0 r

let entities t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort_uniq compare

let reset t = Hashtbl.reset t

let snapshot t =
  entities t
  |> List.map (fun e ->
         (e, List.map (fun c -> (c, get t ~entity:e c)) all_categories))

let cores t ~entity cat ~window =
  if window <= 0 then 0.0
  else float_of_int (get t ~entity cat) /. float_of_int window

let pp fmt t =
  List.iter
    (fun (e, cats) ->
      Format.fprintf fmt "%-24s" e;
      List.iter
        (fun (c, ns) ->
          Format.fprintf fmt " %s=%a" (category_to_string c) Time.pp ns)
        cats;
      Format.pp_print_newline fmt ())
    (snapshot t)
