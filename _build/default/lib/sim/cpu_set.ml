type t = { set_name : string; busy : Time.ns array }

let create ~cores ~name =
  if cores <= 0 then invalid_arg "Cpu_set.create: cores must be > 0";
  { set_name = name; busy = Array.make cores 0 }

let cores t = Array.length t.busy
let name t = t.set_name

let book t ~ready =
  (* Best fit among already-free cores; earliest-available otherwise. *)
  let best_free = ref (-1) in
  let earliest = ref 0 in
  Array.iteri
    (fun i v ->
      if v <= ready then begin
        match !best_free with
        | -1 -> best_free := i
        | j -> if v > t.busy.(j) then best_free := i
      end;
      if v < t.busy.(!earliest) then earliest := i)
    t.busy;
  match !best_free with
  | -1 -> (t.busy.(!earliest), !earliest)
  | i -> (ready, i)

let commit t core ~finish = t.busy.(core) <- finish

let busy_until_min t = Array.fold_left min t.busy.(0) t.busy

let busy_cores t ~now =
  Array.fold_left (fun acc v -> if v > now then acc + 1 else acc) 0 t.busy
