type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t e =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max 16 (cap * 2) in
    let nd = Array.make ncap e in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~prio value =
  let e = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek_prio t = if t.len = 0 then None else Some t.data.(0).prio
let size t = t.len
let is_empty t = t.len = 0
let clear t = t.len <- 0
