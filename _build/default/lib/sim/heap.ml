(* Slots are a variant rather than a bare entry record so vacated cells can
   be reset to [Empty]: a popped value must become unreachable from the heap
   immediately, or the backing array pins arbitrarily large closures (the
   engine stores event thunks here) until the slot happens to be
   overwritten.  [Empty] is an immediate, so the per-push allocation profile
   is the same as with a plain record. *)
type 'a slot = Empty | Entry of { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a slot array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let less a b =
  match (a, b) with
  | Entry a, Entry b -> a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)
  | _ -> assert false (* slots below [len] are always [Entry] *)

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let nd = Array.make (max 16 (cap * 2)) Empty in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~prio value =
  let e = Entry { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    match t.data.(0) with
    | Empty -> assert false
    | Entry top ->
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.data.(0) <- t.data.(t.len);
        sift_down t 0
      end;
      t.data.(t.len) <- Empty;
      Some (top.prio, top.value)
  end

let peek_prio t =
  if t.len = 0 then None
  else
    match t.data.(0) with
    | Entry e -> Some e.prio
    | Empty -> assert false

let size t = t.len
let is_empty t = t.len = 0

let clear t =
  Array.fill t.data 0 t.len Empty;
  t.len <- 0
