(** Random-variate generation on top of {!Prng}.

    All samplers take the generator explicitly so call sites stay
    deterministic and auditable. *)

val exponential : Prng.t -> mean:float -> float
(** Exponential variate with the given mean (inverse-CDF method). *)

val normal : Prng.t -> mu:float -> sigma:float -> float
(** Gaussian variate (Box-Muller; one draw per call, no caching, to keep
    stream consumption independent of call history). *)

val lognormal : Prng.t -> mu:float -> sigma:float -> float
(** Log-normal variate parameterized by the underlying normal. *)

val lognormal_mean_cv : Prng.t -> mean:float -> cv:float -> float
(** Log-normal parameterized by its own mean and coefficient of variation
    (stddev / mean); convenient for calibrating latency distributions. *)

val pareto : Prng.t -> shape:float -> scale:float -> float
(** Pareto type-I variate: support [scale, +inf), tail index [shape]. *)

val bounded_pareto : Prng.t -> shape:float -> lo:float -> hi:float -> float
(** Pareto truncated to [lo, hi]; used for heavy-tailed trace demands. *)

val poisson : Prng.t -> mean:float -> int
(** Poisson variate (Knuth for small means, normal approximation above 60). *)

val zipf : Prng.t -> n:int -> s:float -> int
(** Zipf-distributed rank in [1, n] with exponent [s] (CDF inversion over a
    precomputed table would be faster; this uses rejection sampling which is
    adequate for the trace generator's volumes). *)
