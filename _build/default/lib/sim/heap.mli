(** Array-backed binary min-heap keyed by [(priority, sequence)].

    The sequence number makes extraction FIFO among equal priorities, which
    keeps the event loop deterministic: two events scheduled for the same
    instant fire in scheduling order. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> prio:int -> 'a -> unit
(** Inserts with the next sequence number. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum [(priority, value)]. *)

val peek_prio : 'a t -> int option
(** Priority of the minimum without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
