(** Logging for the simulator, on the [logs] library.

    Each subsystem owns a source ("nest.stack", "nest.qmp", ...); all are
    silent unless enabled.  Messages are prefixed with the *simulated*
    time of the owning engine when one is supplied, which is what makes
    traces readable — wall-clock timestamps are meaningless inside a
    discrete-event run. *)

val src : string -> Logs.src
(** Creates (or reuses) a source named ["nest.<name>"]. *)

val enable : ?level:Logs.level -> unit -> unit
(** Installs a stderr reporter and turns every nest source up to [level]
    (default [Debug]).  Idempotent. *)

val disable : unit -> unit
(** Silences all nest sources (the reporter stays installed). *)

val debug : ?engine:Engine.t -> Logs.src -> (unit -> string) -> unit
(** The thunk is only evaluated when the source is enabled. *)

val info : ?engine:Engine.t -> Logs.src -> (unit -> string) -> unit
val warn : ?engine:Engine.t -> Logs.src -> (unit -> string) -> unit
