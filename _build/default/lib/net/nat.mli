(** iptables-style NAT rule installers.

    Thin helpers that append the canonical Docker/libvirt NAT rules to a
    {!Netfilter.t}, backed by a shared {!Conntrack.t}. *)

val masquerade :
  Netfilter.t ->
  Conntrack.t ->
  name:string ->
  src_subnet:Ipv4.cidr ->
  ?out_dev:string ->
  nat_ip:Ipv4.t ->
  unit ->
  unit
(** POSTROUTING: packets sourced in [src_subnet] and leaving (optionally
    via [out_dev]) toward destinations outside the subnet get their source
    rewritten to [nat_ip] with a tracked port. *)

val publish :
  Netfilter.t ->
  Conntrack.t ->
  name:string ->
  dst_ip:Ipv4.t ->
  dst_port:int ->
  to_ip:Ipv4.t ->
  to_port:int ->
  unit
(** PREROUTING: packets addressed to [dst_ip:dst_port] are redirected to
    [to_ip:to_port] (Docker's [-p] port publishing). *)

val drop_from :
  Netfilter.t -> name:string -> hook:Netfilter.hook -> src_subnet:Ipv4.cidr -> unit
(** Simple firewall rule, used in isolation tests. *)
