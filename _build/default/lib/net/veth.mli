(** Virtual Ethernet pairs.

    A veth pair is two devices joined back-to-back: transmitting on one
    delivers to the other after paying the direction's {!Hop.t} (in Linux,
    the crossing runs in the receiving side's softirq context). Veth pairs
    connect a pod's network namespace to the node's bridge — hop (1) of the
    paper's packet walk. *)

val pair :
  a_name:string ->
  a_mac:Mac.t ->
  b_name:string ->
  b_mac:Mac.t ->
  ab_hop:Hop.t ->
  ba_hop:Hop.t ->
  unit ->
  Dev.t * Dev.t
(** [pair ()] returns [(a, b)]; frames transmitted on [a] are delivered on
    [b] after [ab_hop], and symmetrically. *)
