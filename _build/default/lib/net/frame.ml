type arp_op = Request | Reply

type arp_msg = {
  op : arp_op;
  sender_mac : Mac.t;
  sender_ip : Ipv4.t;
  target_mac : Mac.t;
  target_ip : Ipv4.t;
}

type body = Ipv4_body of Packet.t | Arp_body of arp_msg

type t = {
  src : Mac.t;
  dst : Mac.t;
  body : body;
  trace : string list ref option;
}

let make ?(traced = false) ~src ~dst body =
  (* IP frames share the packet's trace so the path survives NAT rewrites
     and re-framing at every L3 hop. *)
  let trace =
    match body with
    | Ipv4_body p when p.Packet.trace <> None -> p.Packet.trace
    | Ipv4_body _ | Arp_body _ -> if traced then Some (ref []) else None
  in
  { src; dst; body; trace }

let eth_header_bytes = 14
let min_frame_bytes = 60
let arp_bytes = 28

let len t =
  let body_len =
    match t.body with
    | Ipv4_body p -> Packet.len p
    | Arp_body _ -> arp_bytes
  in
  max min_frame_bytes (eth_header_bytes + body_len)

let record_hop t hop =
  match t.trace with None -> () | Some r -> r := hop :: !r

let hops t = match t.trace with None -> [] | Some r -> List.rev !r
let is_broadcast t = Mac.is_broadcast t.dst

let pp fmt t =
  match t.body with
  | Ipv4_body p ->
    Format.fprintf fmt "[%a > %a] %a" Mac.pp t.src Mac.pp t.dst Packet.pp p
  | Arp_body a ->
    let op = match a.op with Request -> "who-has" | Reply -> "is-at" in
    Format.fprintf fmt "[%a > %a] arp %s %a" Mac.pp t.src Mac.pp t.dst op
      Ipv4.pp a.target_ip
