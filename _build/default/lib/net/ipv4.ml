type t = int

let mask32 = 0xffffffff
let of_int i = i land mask32
let to_int t = t

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    let byte x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v < 256 -> v
      | _ -> invalid_arg ("Ipv4.of_string: " ^ s)
    in
    List.fold_left (fun acc x -> (acc lsl 8) lor byte x) 0 [ a; b; c; d ]
  | _ -> invalid_arg ("Ipv4.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt t = Format.pp_print_string fmt (to_string t)
let localhost = of_string "127.0.0.1"
let any = 0

type cidr = { base : t; prefix : int }

let prefix_mask prefix =
  if prefix = 0 then 0 else mask32 land (mask32 lsl (32 - prefix))

let cidr_of_string s =
  match String.split_on_char '/' s with
  | [ addr; p ] ->
    let prefix =
      match int_of_string_opt p with
      | Some v when v >= 0 && v <= 32 -> v
      | _ -> invalid_arg ("Ipv4.cidr_of_string: " ^ s)
    in
    { base = of_string addr land prefix_mask prefix; prefix }
  | _ -> invalid_arg ("Ipv4.cidr_of_string: " ^ s)

let cidr_to_string c = Printf.sprintf "%s/%d" (to_string c.base) c.prefix
let in_subnet c ip = ip land prefix_mask c.prefix = c.base
let network c = c.base
let broadcast_addr c = c.base lor (mask32 land lnot (prefix_mask c.prefix))

let host_count c =
  let size = 1 lsl (32 - c.prefix) in
  if c.prefix >= 31 then size else size - 2

let host c i =
  let size = 1 lsl (32 - c.prefix) in
  if i < 0 || i >= size then invalid_arg "Ipv4.host: out of range";
  of_int (c.base + i)

let pp_cidr fmt c = Format.pp_print_string fmt (cidr_to_string c)
