module IpSet = Set.Make (struct
  type t = Ipv4.t

  let compare = Ipv4.compare
end)

type t = {
  pool : Ipv4.cidr;
  reserved : IpSet.t;
  mutable allocated : IpSet.t;
  size : int;
}

let create ?(reserved = []) pool =
  let size = 1 lsl (32 - pool.Ipv4.prefix) in
  let always =
    if pool.Ipv4.prefix >= 31 then []
    else [ Ipv4.network pool; Ipv4.broadcast_addr pool ]
  in
  { pool;
    reserved = IpSet.of_list (always @ reserved);
    allocated = IpSet.empty;
    size }

let cidr t = t.pool

let capacity t = t.size - IpSet.cardinal t.reserved
let in_use t = IpSet.cardinal t.allocated

let alloc t =
  if in_use t >= capacity t then failwith "Ipam.alloc: pool exhausted";
  (* Lowest-free allocation (the documented contract, and what Docker's
     IPAM does): scan from the base; freed addresses are reused first. *)
  let rec find i =
    if i >= t.size then failwith "Ipam.alloc: pool exhausted"
    else begin
      let ip = Ipv4.host t.pool i in
      if IpSet.mem ip t.reserved || IpSet.mem ip t.allocated then find (i + 1)
      else begin
        t.allocated <- IpSet.add ip t.allocated;
        ip
      end
    end
  in
  find 0

let free t ip =
  if not (IpSet.mem ip t.allocated) then
    invalid_arg ("Ipam.free: not allocated: " ^ Ipv4.to_string ip);
  t.allocated <- IpSet.remove ip t.allocated

