(** Learning Ethernet bridge (software switch), as used for libvirt's
    host bridge and Docker's in-VM [docker0].

    The bridge owns a forwarding database (MAC -> port) populated by source
    learning, with entry aging.  Unknown-destination and broadcast frames
    are flooded.  Every forwarded frame pays the bridge's {!Hop.t} — on the
    host bridge that context is the host softirq context; on an in-VM
    bridge it is the guest's, which is exactly the duplicated work BrFusion
    removes.

    A bridge also exposes a [self] device: the L3 presence of the bridge in
    its owner's network namespace (Linux's [br0] interface), so the owning
    stack can route to/from the bridged segment. *)

type t

val create :
  Nest_sim.Engine.t ->
  name:string ->
  hop:Hop.t ->
  ?aging_ns:Nest_sim.Time.ns ->
  self_mac:Mac.t ->
  unit ->
  t
(** [aging_ns] defaults to 300 s, the Linux default. *)

val name : t -> string

val self_dev : t -> Dev.t
(** The bridge's own interface; attach it to a stack like any device.
    Frames the stack transmits on it enter the bridge; bridged frames
    addressed to [self_mac] (or broadcast) are delivered up through it. *)

val attach : t -> Dev.t -> unit
(** Enslaves a device: its incoming frames are switched by the bridge. *)

val detach : t -> Dev.t -> unit

val ports : t -> Dev.t list
(** Enslaved ports (excluding [self]). *)

val fdb : t -> (Mac.t * string) list
(** Current (address, port-name) learning table, unexpired entries only. *)

val forwarded : t -> int
(** Total frames switched or flooded since creation. *)
