type t = {
  exec : Nest_sim.Exec.t;
  fixed_ns : int;
  per_byte_ns : float;
  charge_as : Nest_sim.Cpu_account.category option;
}

let make ?charge_as ?(per_byte_ns = 0.0) exec ~fixed_ns =
  { exec; fixed_ns; per_byte_ns; charge_as }

let cost_ns t ~bytes =
  t.fixed_ns + int_of_float (t.per_byte_ns *. float_of_int bytes)

let service t ~bytes k =
  Nest_sim.Exec.submit ?charge_as:t.charge_as t.exec ~cost:(cost_ns t ~bytes) k

let free engine =
  make (Nest_sim.Exec.create engine ~name:"free-hop") ~fixed_ns:0
