(** Link impairment (tc-netem style): probabilistic loss, added delay
    with jitter, and a bounded egress queue with tail drop.

    [shape] wraps a device's egress: every transmitted frame first passes
    the impairment stage.  Apply it to both ends of a link to impair both
    directions.  Used by the test suite to exercise TCP loss recovery and
    available to experiments for sensitivity studies. *)

type t

val shape :
  Nest_sim.Engine.t ->
  Dev.t ->
  ?loss:float ->
  ?delay_ns:Nest_sim.Time.ns ->
  ?jitter_ns:Nest_sim.Time.ns ->
  ?limit:int ->
  rng:Nest_sim.Prng.t ->
  unit ->
  t
(** [loss] is the per-frame drop probability (default 0); [delay_ns] an
    added one-way delay (default 0); [jitter_ns] uniform extra jitter on
    it; [limit] the maximum frames in flight through the shaper, with
    tail drop (default unbounded). *)

val remove : t -> unit
(** Restores the device's original egress. *)

val passed : t -> int
val dropped_loss : t -> int
val dropped_overflow : t -> int
