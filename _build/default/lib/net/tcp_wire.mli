(** TCP segment wire format (the part that travels inside IP packets).

    Stream payload is represented by a byte count.  Application-message
    framing rides inside the byte stream in real TCP; here it is made
    explicit as [msgs], a list of [(absolute end offset, message)] pairs
    for every application message whose last byte falls within this
    segment.  Receivers deliver a message once their cumulative in-order
    position reaches its end offset, so reordering, retransmission and NAT
    rewriting all behave correctly. *)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

val flags_none : flags
val pp_flags : Format.formatter -> flags -> unit

type t = {
  src_port : int;
  dst_port : int;
  seq : int;       (** First stream byte carried (absolute offset). *)
  ack_seq : int;   (** Next expected byte from the peer (if [flags.ack]). *)
  flags : flags;
  window : int;    (** Advertised receive window in bytes. *)
  len : int;       (** Payload bytes carried. *)
  msgs : (int * Payload.app_msg) list;
      (** Message boundaries completed inside this segment. *)
}

val header_bytes : int
(** 20 (options ignored). *)
