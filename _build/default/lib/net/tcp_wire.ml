type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

let flags_none = { syn = false; ack = false; fin = false; rst = false }

let pp_flags fmt f =
  let tag b s = if b then s else "" in
  Format.fprintf fmt "%s%s%s%s"
    (tag f.syn "S") (tag f.ack "A") (tag f.fin "F") (tag f.rst "R")

type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack_seq : int;
  flags : flags;
  window : int;
  len : int;
  msgs : (int * Payload.app_msg) list;
}

let header_bytes = 20
