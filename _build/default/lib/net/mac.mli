(** Ethernet MAC addresses (48 bits, stored in an [int]). *)

type t

val broadcast : t
val is_broadcast : t -> bool

val of_int : int -> t
(** Masks the argument to 48 bits. *)

val to_int : t -> int

val of_string : string -> t
(** Parses ["aa:bb:cc:dd:ee:ff"].  Raises [Invalid_argument] on bad input. *)

val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Deterministic allocator of locally-administered unicast addresses. *)
module Alloc : sig
  type alloc

  val create : ?oui:int -> unit -> alloc
  (** [oui] is the top 24 bits; defaults to 0x525400 (the QEMU/KVM OUI). *)

  val fresh : alloc -> t
end
