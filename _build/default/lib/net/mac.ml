type t = int

let mask48 = (1 lsl 48) - 1
let broadcast = mask48
let is_broadcast t = t = broadcast
let of_int i = i land mask48
let to_int t = t

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
    let byte x =
      match int_of_string_opt ("0x" ^ x) with
      | Some v when v >= 0 && v < 256 -> v
      | _ -> invalid_arg ("Mac.of_string: " ^ s)
    in
    List.fold_left (fun acc x -> (acc lsl 8) lor byte x) 0 [ a; b; c; d; e; f ]
  | _ -> invalid_arg ("Mac.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((t lsr 40) land 0xff) ((t lsr 32) land 0xff) ((t lsr 24) land 0xff)
    ((t lsr 16) land 0xff) ((t lsr 8) land 0xff) (t land 0xff)

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Alloc = struct
  type alloc = { oui : int; mutable next : int }

  let create ?(oui = 0x525400) () = { oui = oui land 0xffffff; next = 1 }

  let fresh a =
    if a.next > 0xffffff then failwith "Mac.Alloc.fresh: pool exhausted";
    let v = (a.oui lsl 24) lor a.next in
    a.next <- a.next + 1;
    (* Force the locally-administered bit, clear the multicast bit. *)
    let hi = ((v lsr 40) land 0xff) lor 0x02 land lnot 0x01 in
    ((hi lsl 40) lor (v land 0xffffffffff)) land mask48
end
