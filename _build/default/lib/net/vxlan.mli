(** VXLAN tunnel endpoint (VTEP) — the mechanism under Docker's Overlay
    networks, the paper's only pre-existing option for cross-node pod
    traffic (§5.3, the "Overlay" baseline).

    The VTEP presents a device to attach to an overlay bridge.  Frames
    transmitted on it are encapsulated (inner Ethernet + 8-byte VXLAN
    header) into UDP datagrams sent through the underlay namespace's
    stack; datagrams received on the VTEP's UDP port are decapsulated and
    delivered back through the device.  Both directions pay dedicated
    encap/decap hops in the underlay kernel — the overlay's CPU tax. *)

type t

type Payload.app_msg += Vxlan_encap of Frame.t

val create :
  Stack.ns ->
  name:string ->
  vni:int ->
  local:Ipv4.t ->
  ?udp_port:int ->
  encap_hop:Hop.t ->
  decap_hop:Hop.t ->
  unit ->
  t
(** [udp_port] defaults to 4789.  Binds the VTEP socket in the underlay
    namespace immediately. *)

val dev : t -> Dev.t
(** Overlay-side device (MTU 1450); enslave it to the overlay bridge. *)

val vni : t -> int

val add_remote : t -> Ipv4.t -> unit
(** Adds a peer VTEP to the flood list (broadcast / unknown-unicast). *)

val add_fdb : t -> Mac.t -> Ipv4.t -> unit
(** Pins a unicast inner MAC to a peer VTEP. *)

val encapsulated : t -> int
val decapsulated : t -> int
