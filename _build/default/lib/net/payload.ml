type app_msg = ..
type app_msg += Opaque of string

type t = { size : int; msg : app_msg option }

let raw size = { size; msg = None }
let make ~size msg = { size; msg = Some msg }
let size t = t.size
