(** IP address allocation from a CIDR pool (what Docker's libnetwork and a
    CNI IPAM plugin do for container subnets). *)

type t

val create : ?reserved:Ipv4.t list -> Ipv4.cidr -> t
(** The network and broadcast addresses are always reserved; [reserved]
    adds more (typically the gateway). *)

val cidr : t -> Ipv4.cidr

val alloc : t -> Ipv4.t
(** Lowest free address.  Raises [Failure] when the pool is exhausted. *)

val free : t -> Ipv4.t -> unit
(** Raises [Invalid_argument] if the address is not currently allocated
    from this pool. *)

val in_use : t -> int
val capacity : t -> int
