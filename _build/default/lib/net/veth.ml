let pair ~a_name ~a_mac ~b_name ~b_mac ~ab_hop ~ba_hop () =
  let a = Dev.create ~name:a_name ~mac:a_mac () in
  let b = Dev.create ~name:b_name ~mac:b_mac () in
  Dev.set_tx a (fun frame ->
      Hop.service ab_hop ~bytes:(Frame.len frame) (fun () -> Dev.deliver b frame));
  Dev.set_tx b (fun frame ->
      Hop.service ba_hop ~bytes:(Frame.len frame) (fun () -> Dev.deliver a frame));
  (a, b)
