(** IPv4 addresses and CIDR prefixes (stored in an [int], 32 bits). *)

type t

val of_string : string -> t
(** Parses dotted-quad notation.  Raises [Invalid_argument] on bad input. *)

val to_string : t -> string
val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val localhost : t
(** 127.0.0.1 *)

val any : t
(** 0.0.0.0 *)

type cidr = { base : t; prefix : int }

val cidr_of_string : string -> cidr
(** Parses ["10.0.0.0/24"]; the base is masked to the prefix. *)

val cidr_to_string : cidr -> string
val in_subnet : cidr -> t -> bool
val network : cidr -> t
val broadcast_addr : cidr -> t

val host : cidr -> int -> t
(** [host c i] is the [i]-th host address ([network + i]).  Raises
    [Invalid_argument] if out of range. *)

val host_count : cidr -> int
(** Number of usable host addresses (excludes network and broadcast for
    prefixes < 31). *)

val pp_cidr : Format.formatter -> cidr -> unit
