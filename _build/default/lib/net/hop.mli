(** A costed processing hop: the association of an execution context with a
    per-packet cost model.

    Every device crossing in the simulator is a [Hop.t]: servicing a frame
    occupies the hop's {!Nest_sim.Exec.t} for [fixed_ns + per_byte_ns × len]
    nanoseconds, charging the context's CPU account.  Throughput limits and
    queueing latency both emerge from this single mechanism. *)

type t = {
  exec : Nest_sim.Exec.t;
  fixed_ns : int;
  per_byte_ns : float;
  charge_as : Nest_sim.Cpu_account.category option;
      (** Overrides the context's default accounting category. *)
}

val make :
  ?charge_as:Nest_sim.Cpu_account.category ->
  ?per_byte_ns:float ->
  Nest_sim.Exec.t ->
  fixed_ns:int ->
  t

val cost_ns : t -> bytes:int -> int

val service : t -> bytes:int -> (unit -> unit) -> unit
(** [service t ~bytes k] queues the work on the hop's context and runs [k]
    on completion. *)

val free : Nest_sim.Engine.t -> t
(** A zero-cost hop on a private context — useful in unit tests. *)
