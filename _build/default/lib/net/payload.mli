(** Application payloads.

    Packets carry sizes (for costs and throughput) plus an optional
    structured application message.  [app_msg] is an extensible variant so
    that workload libraries can define their own message types without
    [nest_net] depending on them. *)

type app_msg = ..

type app_msg += Opaque of string  (** Generic tagged message. *)

type t = {
  size : int;  (** Application bytes (excluding all headers). *)
  msg : app_msg option;
}

val raw : int -> t
(** Payload of [n] bytes with no structured content. *)

val make : size:int -> app_msg -> t
val size : t -> int
