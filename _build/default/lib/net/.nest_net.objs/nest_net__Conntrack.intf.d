lib/net/conntrack.mli: Format Ipv4 Packet
