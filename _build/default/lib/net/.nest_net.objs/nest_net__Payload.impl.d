lib/net/payload.ml:
