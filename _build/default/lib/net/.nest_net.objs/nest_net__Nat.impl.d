lib/net/nat.ml: Conntrack Ipv4 Netfilter Packet
