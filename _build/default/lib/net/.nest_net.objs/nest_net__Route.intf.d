lib/net/route.mli: Dev Ipv4
