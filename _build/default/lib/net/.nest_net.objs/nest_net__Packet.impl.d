lib/net/packet.ml: Format Ipv4 List Option Payload Tcp_wire
