lib/net/packet.mli: Format Ipv4 Payload Tcp_wire
