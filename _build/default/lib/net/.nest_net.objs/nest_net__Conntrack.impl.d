lib/net/conntrack.ml: Format Hashtbl Ipv4 Packet Tcp_wire
