lib/net/frame.ml: Format Ipv4 List Mac Packet
