lib/net/frame.mli: Format Ipv4 Mac Packet
