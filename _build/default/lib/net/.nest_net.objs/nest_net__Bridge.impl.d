lib/net/bridge.ml: Dev Frame Hashtbl Hop List Mac Nest_sim
