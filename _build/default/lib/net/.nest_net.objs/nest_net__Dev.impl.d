lib/net/dev.ml: Frame Mac
