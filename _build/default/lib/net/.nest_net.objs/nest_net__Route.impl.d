lib/net/route.ml: Dev Ipv4 List
