lib/net/tcp_wire.ml: Format Payload
