lib/net/dev.mli: Frame Mac
