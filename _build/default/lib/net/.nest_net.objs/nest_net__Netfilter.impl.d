lib/net/netfilter.ml: Hashtbl List Packet
