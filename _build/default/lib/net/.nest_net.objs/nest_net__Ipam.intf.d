lib/net/ipam.mli: Ipv4
