lib/net/vxlan.mli: Dev Frame Hop Ipv4 Mac Payload Stack
