lib/net/stack.mli: Conntrack Dev Hop Ipv4 Mac Nest_sim Netfilter Packet Payload Route
