lib/net/mac.mli: Format
