lib/net/netem.ml: Dev Frame Nest_sim
