lib/net/payload.mli:
