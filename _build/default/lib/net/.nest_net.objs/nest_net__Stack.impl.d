lib/net/stack.ml: Conntrack Dev Format Frame Hashtbl Hop Ipv4 List Mac Nest_sim Netfilter Option Packet Payload Printf Queue Route Tcp_wire
