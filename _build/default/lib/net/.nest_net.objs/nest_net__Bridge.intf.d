lib/net/bridge.mli: Dev Hop Mac Nest_sim
