lib/net/vxlan.ml: Dev Frame Hashtbl Hop Ipv4 Lazy List Mac Nest_sim Payload Stack
