lib/net/vxlan.ml: Dev Frame Hashtbl Hop Ipv4 Lazy List Mac Payload Stack
