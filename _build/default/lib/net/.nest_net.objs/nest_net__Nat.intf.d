lib/net/nat.mli: Conntrack Ipv4 Netfilter
