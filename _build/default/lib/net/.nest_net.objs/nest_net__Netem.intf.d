lib/net/netem.mli: Dev Nest_sim
