lib/net/hop.ml: Nest_sim
