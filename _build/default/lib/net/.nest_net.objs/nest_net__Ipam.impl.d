lib/net/ipam.ml: Ipv4 Set
