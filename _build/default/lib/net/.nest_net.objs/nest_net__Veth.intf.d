lib/net/veth.mli: Dev Hop Mac
