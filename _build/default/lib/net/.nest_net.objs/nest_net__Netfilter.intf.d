lib/net/netfilter.mli: Packet
