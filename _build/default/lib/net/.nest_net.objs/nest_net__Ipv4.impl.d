lib/net/ipv4.ml: Format Hashtbl Int List Printf String
