lib/net/tcp_wire.mli: Format Payload
