lib/net/tap.mli: Dev Frame Hop Mac Nest_sim
