lib/net/mac.ml: Format Hashtbl Int List Printf String
