lib/net/tap.ml: Dev Frame Hop List Nest_sim
