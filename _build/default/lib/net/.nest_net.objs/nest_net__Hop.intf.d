lib/net/hop.mli: Nest_sim
