lib/net/veth.ml: Dev Frame Hop
