lib/orch/kube.ml: Cni List Nest_container Nest_net Nest_sim Node Option Pod Scheduler
