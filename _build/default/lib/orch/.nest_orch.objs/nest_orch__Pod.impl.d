lib/orch/pod.ml: Format List Nest_container
