lib/orch/cni_overlay.mli: Cni Nest_net Node
