lib/orch/cni_bridge.mli: Cni
