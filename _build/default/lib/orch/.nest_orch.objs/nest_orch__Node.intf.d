lib/orch/node.mli: Nest_container Nest_virt
