lib/orch/scheduler.ml: List Node
