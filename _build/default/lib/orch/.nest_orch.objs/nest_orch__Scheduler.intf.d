lib/orch/scheduler.mli: Node
