lib/orch/cni.ml: Hashtbl List Nest_net Node
