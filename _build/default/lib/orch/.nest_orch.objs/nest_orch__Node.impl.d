lib/orch/node.ml: Float Nest_container Nest_virt Printf
