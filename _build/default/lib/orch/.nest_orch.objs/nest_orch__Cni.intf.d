lib/orch/cni.mli: Nest_net Node
