lib/orch/cni_bridge.ml: Cni Nest_container Nest_virt Node
