lib/orch/cni_overlay.ml: Bridge Cni Dev Hop Ipam Ipv4 List Nest_net Nest_virt Node Stack Veth Vxlan
