lib/orch/kube.mli: Cni Nest_container Nest_net Nest_sim Node Pod
