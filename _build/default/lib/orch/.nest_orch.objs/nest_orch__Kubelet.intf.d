lib/orch/kubelet.mli: Dev Ipv4 Mac Nest_net Node Stack
