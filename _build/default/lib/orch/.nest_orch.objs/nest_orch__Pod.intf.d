lib/orch/pod.mli: Format Nest_container
