lib/orch/kubelet.ml: Ipv4 List Nest_net Nest_virt Node Printf Route Stack
