(** The node agent (kubelet): the orchestrator's hands inside each VM.

    In the paper's protocols (§3.1 step 4, §4.1 step 4) the "VM agent"
    waits for the hot-plugged NIC the VMM announced — identified by the
    MAC the orchestrator forwarded — and configures it inside the pod's
    namespace.  [configure_nic] is exactly that operation; the BrFusion
    and Hostlo CNI plugins and the boot-time experiment all go through
    it.  The agent also keeps the node-status bookkeeping an orchestrator
    polls. *)

open Nest_net

type t

val create : Node.t -> t
(** One agent per node (idempotent per node — see {!of_node}). *)

val of_node : Node.t -> t
(** The node's agent, creating it on first use. *)

val node : t -> Node.t

val configure_nic :
  t ->
  netns:Stack.ns ->
  mac:Mac.t ->
  ?ip:Ipv4.t ->
  ?subnet:Ipv4.cidr ->
  ?gateway:Ipv4.t ->
  k:(Dev.t -> unit) ->
  unit ->
  unit
(** Waits for the device with [mac] to become guest-visible (the udev
    moment), moves it into [netns], optionally assigns [ip]/[subnet] and
    a default route via [gateway], then hands it to [k]. *)

val pods_configured : t -> int
(** How many NICs this agent has configured (diagnostics). *)

val status : t -> string
(** One-line node status (name, capacity, requested, configured pods). *)
