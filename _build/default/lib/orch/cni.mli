(** Container Network Interface: the plugin boundary through which the
    orchestrator provisions pod networking (§3.2/§4.2 package BrFusion
    and Hostlo as CNI plugins).

    A plugin's [add] builds the network namespace for a pod (or a pod
    fraction, for cross-VM plugins) on one node and hands it back once it
    is usable.  Plugins are closures over whatever infrastructure they
    need (VMM handle, host bridge, overlay network, Hostlo tap). *)

type t = {
  cni_name : string;
  add :
    pod_name:string ->
    node:Node.t ->
    publish:(int * int) list ->
    k:(Nest_net.Stack.ns -> unit) ->
    unit;
}

val register : t -> unit
(** Raises [Failure] on duplicate names. *)

val find : string -> t option
val names : unit -> string list
val reset_registry : unit -> unit
