type container_spec = {
  cs_name : string;
  image : Nest_container.Image.t;
  cpu : float;
  mem : float;
  ports : (int * int) list;
}

type volume_decl = { vol_name : string; shared_fs : bool }

type t = {
  pod_name : string;
  containers : container_spec list;
  volumes : volume_decl list;
}

let make ~name ?(volumes = []) containers =
  { pod_name = name; containers; volumes }

let volume ~name ?(shared_fs = false) () = { vol_name = name; shared_fs }

let default_image = Nest_container.Image.make ~name:"alpine" ~size_mb:8 ()

let container ~name ?(image = default_image) ?(cpu = 1.0) ?(mem = 1.0)
    ?(ports = []) () =
  { cs_name = name; image; cpu; mem; ports }

let cpu_total t = List.fold_left (fun a c -> a +. c.cpu) 0.0 t.containers
let mem_total t = List.fold_left (fun a c -> a +. c.mem) 0.0 t.containers

let pp fmt t =
  Format.fprintf fmt "pod %s (%d containers, %.1f cpu, %.1f GB)" t.pod_name
    (List.length t.containers) (cpu_total t) (mem_total t)
