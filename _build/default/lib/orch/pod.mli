(** Pod specifications (Kubernetes's unit of scheduling): a set of
    logically coupled containers sharing network identity (and volumes /
    shared memory, see lib/core/pod_resources). *)

type container_spec = {
  cs_name : string;
  image : Nest_container.Image.t;
  cpu : float;  (** requested cores. *)
  mem : float;  (** requested GB. *)
  ports : (int * int) list;  (** published (node_port, container_port). *)
}

type volume_decl = {
  vol_name : string;
  shared_fs : bool;
      (** [true] = backed by a sharing-capable filesystem (VirtFS):
          mountable from several VMs; [false] = plain local backing,
          single-VM only (see lib/core/pod_resources, §4.3.1). *)
}

type t = {
  pod_name : string;
  containers : container_spec list;
  volumes : volume_decl list;
}

val make : name:string -> ?volumes:volume_decl list -> container_spec list -> t
val volume : name:string -> ?shared_fs:bool -> unit -> volume_decl
(** [shared_fs] defaults to false (plain local volume). *)

val container :
  name:string ->
  ?image:Nest_container.Image.t ->
  ?cpu:float ->
  ?mem:float ->
  ?ports:(int * int) list ->
  unit ->
  container_spec

val cpu_total : t -> float
val mem_total : t -> float
val pp : Format.formatter -> t -> unit
