let pick cmp nodes ~cpu ~mem =
  List.fold_left
    (fun best n ->
      if not (Node.fits n ~cpu ~mem) then best
      else
        match best with
        | None -> Some n
        | Some b ->
          if cmp (Node.requested_fraction n) (Node.requested_fraction b)
          then Some n
          else best)
    None nodes

let most_requested nodes ~cpu ~mem = pick (fun a b -> a > b) nodes ~cpu ~mem
let least_requested nodes ~cpu ~mem = pick (fun a b -> a < b) nodes ~cpu ~mem
