(** Docker Overlay CNI plugin: a VXLAN network spanning VMs — the
    paper's only pre-existing way to connect the containers of a pod
    split across nodes (the "Overlay" baseline of §5.3).

    Each member VM gets an overlay bridge plus a VTEP in its root
    namespace; pod fractions veth into the overlay bridge and receive
    addresses from a network-wide pool.  Inter-VM frames are VXLAN
    encapsulated, sent over the underlay (host bridge, two vhost
    crossings), and decapsulated on the peer. *)

type t

val create : name:string -> vni:int -> subnet:Nest_net.Ipv4.cidr -> t

val plugin : t -> Cni.t
(** Joins the node to the overlay on first use. *)

val members : t -> Node.t list

val pod_ip : t -> Nest_net.Stack.ns -> Nest_net.Ipv4.t option
(** The overlay address assigned to a namespace built by this plugin. *)
