(** Pod scheduling policies.

    The paper's cost simulation (§5.3.1) uses Kubernetes's "most
    requested" priority: among feasible nodes, prefer the one whose
    resources are already the most requested — a consolidation
    (bin-packing) strategy. *)

val most_requested : Node.t list -> cpu:float -> mem:float -> Node.t option
(** Feasible node with the highest {!Node.requested_fraction}; ties break
    toward the earliest node in the list.  [None] when nothing fits. *)

val least_requested : Node.t list -> cpu:float -> mem:float -> Node.t option
(** The spreading policy (for ablations). *)
