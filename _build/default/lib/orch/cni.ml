type t = {
  cni_name : string;
  add :
    pod_name:string ->
    node:Node.t ->
    publish:(int * int) list ->
    k:(Nest_net.Stack.ns -> unit) ->
    unit;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let register t =
  if Hashtbl.mem registry t.cni_name then
    failwith ("Cni.register: duplicate plugin " ^ t.cni_name);
  Hashtbl.replace registry t.cni_name t

let find name = Hashtbl.find_opt registry name
let names () = Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare
let reset_registry () = Hashtbl.reset registry
