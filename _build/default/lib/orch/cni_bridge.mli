(** The default CNI plugin: in-VM bridge + NAT (Docker's standard model) —
    the "NAT" baseline of every figure.  This is the *duplicated* network
    virtualization layer BrFusion removes. *)

val plugin : unit -> Cni.t
(** Builds a namespace inside the node's VM, veth-attached to docker0,
    masqueraded behind the VM address, with published ports DNAT-ed. *)
