let plugin () =
  let add ~pod_name ~node ~publish ~k =
    let vm = Node.vm node in
    let netns = Nest_virt.Vm.new_netns vm ~name:pod_name () in
    Nest_container.Engine.nat_net_setup (Node.docker node) ~netns ~publish
      (fun () -> k netns)
  in
  { Cni.cni_name = "bridge-nat"; add }
