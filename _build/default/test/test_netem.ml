(* Link impairment + TCP loss recovery: fast retransmit, RTO, and the
   exactly-once delivery property under random loss. *)

open Nest_net
module Engine = Nest_sim.Engine
module Exec = Nest_sim.Exec
module Time = Nest_sim.Time

let qtest = QCheck_alcotest.to_alcotest
let ip = Ipv4.of_string
let cidr = Ipv4.cidr_of_string

let cheap_costs e =
  let sys_exec = Exec.create e ~name:"sys" in
  let soft_exec = Exec.create e ~name:"soft" in
  { Stack.tx = Hop.make sys_exec ~fixed_ns:100;
    rx = Hop.make soft_exec ~fixed_ns:100;
    forward = Hop.make soft_exec ~fixed_ns:50;
    nat = Hop.make soft_exec ~fixed_ns:50;
    nat_per_rule_ns = 10;
    local = Hop.make sys_exec ~fixed_ns:100;
    syscall = Hop.make sys_exec ~fixed_ns:50;
    wakeup_delay_ns = 0 }

let two_ns seed =
  let e = Engine.create ~seed () in
  let a = Stack.create e ~name:"a" ~costs:(cheap_costs e) () in
  let b = Stack.create e ~name:"b" ~costs:(cheap_costs e) () in
  let hop = Hop.free e in
  let da, db =
    Veth.pair ~a_name:"a0" ~a_mac:(Mac.of_int 0xa) ~b_name:"b0"
      ~b_mac:(Mac.of_int 0xb) ~ab_hop:hop ~ba_hop:hop ()
  in
  Stack.attach a da;
  Stack.add_addr a da (ip "192.168.1.1") (cidr "192.168.1.0/24");
  Stack.attach b db;
  Stack.add_addr b db (ip "192.168.1.2") (cidr "192.168.1.0/24");
  (e, a, b, da, db)

let test_netem_loss_counts () =
  let e, a, b, da, _ = two_ns 1L in
  let rng = Nest_sim.Prng.create 5L in
  let nm = Netem.shape e da ~loss:1.0 ~rng () in
  let got = ref 0 in
  let _s = Stack.Udp.bind b ~port:9 (fun _ ~src:_ _ -> incr got) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  for _ = 1 to 10 do
    Stack.Udp.sendto c ~dst:(ip "192.168.1.2") ~dst_port:9 (Payload.raw 16)
  done;
  Engine.run ~until:(Time.sec 10) e;
  Alcotest.(check int) "nothing through at 100% loss" 0 !got;
  (* The ARP probe and its retries are the frames the shaper ate; the 10
     datagrams died queued behind the unresolved neighbour. *)
  Alcotest.(check bool) "ARP probes + retries counted" true
    (Netem.dropped_loss nm >= 3);
  Alcotest.(check int) "queued datagrams failed with the neighbour" 10
    (Stack.counters a).Stack.dropped_no_route;
  Netem.remove nm;
  Stack.Udp.sendto c ~dst:(ip "192.168.1.2") ~dst_port:9 (Payload.raw 16);
  Engine.run e;
  Alcotest.(check int) "restored after remove" 1 !got

let test_netem_delay () =
  let e, a, _b, da, db = two_ns 2L in
  let rng = Nest_sim.Prng.create 6L in
  let _n1 = Netem.shape e da ~delay_ns:(Time.ms 5) ~rng () in
  let _n2 = Netem.shape e db ~delay_ns:(Time.ms 5) ~rng () in
  let rtt = ref 0 in
  Stack.ping a ~dst:(ip "192.168.1.2") ~on_reply:(fun ~rtt_ns -> rtt := rtt_ns);
  Engine.run e;
  (* ARP exchange + echo: at least 2x 5ms one-way delays on the echo
     itself. *)
  Alcotest.(check bool)
    (Printf.sprintf "rtt includes both delays (got %.2fms)" (Time.to_ms_f !rtt))
    true
    (!rtt >= Time.ms 10)

let test_netem_overflow () =
  let e, _, _, da, _ = two_ns 3L in
  let rng = Nest_sim.Prng.create 7L in
  let nm = Netem.shape e da ~delay_ns:(Time.ms 100) ~limit:3 ~rng () in
  for _ = 1 to 10 do
    Dev.transmit da
      (Frame.make ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2)
         (Frame.Ipv4_body
            (Packet.make ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2")
               (Packet.Udp { src_port = 1; dst_port = 2; payload = Payload.raw 8 }))))
  done;
  Alcotest.(check int) "tail dropped beyond limit" 7 (Netem.dropped_overflow nm);
  Engine.run e;
  Alcotest.(check int) "the rest passed" 3 (Netem.passed nm)

let transfer_under_loss ~seed ~loss ~bytes =
  let e, a, b, da, db = two_ns seed in
  let rng = Nest_sim.Prng.create (Int64.add seed 1000L) in
  (* Impair only data/ack frames after the connection establishes, so the
     handshake isn't (un)lucky — loss recovery is what's under test. *)
  let received = ref 0 in
  let conn = ref None in
  Stack.Tcp.listen b ~port:80 ~on_accept:(fun c ->
      Stack.Tcp.set_on_receive c (fun ~bytes ~msgs:_ ->
          received := !received + bytes));
  let c =
    Stack.Tcp.connect a ~dst:(ip "192.168.1.2") ~port:80
      ~on_established:(fun c -> conn := Some c)
      ()
  in
  Engine.run e;
  let c = match !conn with Some _ -> c | None -> failwith "no conn" in
  let _n1 = Netem.shape e da ~loss ~rng () in
  let _n2 = Netem.shape e db ~loss ~rng () in
  ignore (Stack.Tcp.send c ~size:bytes ());
  (* Generous horizon: heavy loss needs several RTO cycles. *)
  Engine.run ~until:(Engine.now e + Time.sec 600) e;
  (c, !received)

let test_fast_retransmit_recovers () =
  let c, received = transfer_under_loss ~seed:11L ~loss:0.02 ~bytes:120_000 in
  Alcotest.(check int) "exactly-once delivery" 120_000 received;
  Alcotest.(check bool) "losses were repaired" true
    (Stack.Tcp.retransmits c > 0)

let test_delivery_under_random_loss =
  QCheck.Test.make ~name:"TCP delivers exactly once under random loss"
    ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 0 15))
    (fun (seed, loss_pct) ->
      let bytes = 30_000 in
      let _, received =
        transfer_under_loss ~seed:(Int64.of_int seed)
          ~loss:(float_of_int loss_pct /. 100.0)
          ~bytes
      in
      received = bytes)

let test_tcp_rr_mode () =
  (* Netperf TCP_RR through the real testbed. *)
  let tb = Nestfusion.Testbed.create ~num_vms:1 () in
  let site = ref None in
  Nestfusion.Deploy.deploy_single tb ~mode:`NoCont ~name:"pod" ~entity:"srv"
    ~port:7100 ~k:(fun s -> site := Some s);
  Nestfusion.Testbed.run_until tb (Time.sec 1);
  let ep = Nest_workloads.App.of_single tb (Option.get !site) in
  let r =
    Nest_workloads.Netperf.tcp_rr tb ep ~msg_size:256 ~duration:(Time.ms 150) ()
  in
  Alcotest.(check bool) "transactions" true (r.Nest_workloads.Netperf.transactions > 50);
  let mean = Nest_sim.Stats.mean r.Nest_workloads.Netperf.latency in
  Alcotest.(check bool)
    (Printf.sprintf "TCP_RR latency plausible (got %.1fus)" mean)
    true
    (mean > 20.0 && mean < 200.0)

let () =
  Alcotest.run "netem"
    [ ( "shaper",
        [ Alcotest.test_case "loss" `Quick test_netem_loss_counts;
          Alcotest.test_case "delay" `Quick test_netem_delay;
          Alcotest.test_case "overflow" `Quick test_netem_overflow ] );
      ( "tcp recovery",
        [ Alcotest.test_case "fast retransmit" `Quick test_fast_retransmit_recovers;
          qtest test_delivery_under_random_loss ] );
      ("netperf", [ Alcotest.test_case "tcp_rr" `Quick test_tcp_rr_mode ]) ]
