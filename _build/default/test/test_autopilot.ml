(* Tests for the integrated orchestrator (§7's future work): on-demand VM
   purchase, BrFusion-by-default placement, Hostlo-backed pod splitting. *)

open Nest_net
open Nestfusion
module Time = Nest_sim.Time
module Pod = Nest_orch.Pod
module Node = Nest_orch.Node

let pod name specs = Pod.make ~name (List.map (fun (n, c, m) -> Pod.container ~name:n ~cpu:c ~mem:m ()) specs)

let deploy_sync tb ap p =
  let dep = ref None in
  Autopilot.deploy ap p ~on_ready:(fun d -> dep := Some d);
  Testbed.run_until tb (Nest_sim.Engine.now tb.Testbed.engine + Time.sec 300);
  match !dep with
  | Some d -> d
  | None -> Alcotest.failf "pod %s never became ready" p.Pod.pod_name

let test_whole_placement_uses_brfusion () =
  let tb = Testbed.create ~num_vms:1 () in
  let ap = Autopilot.create tb () in
  let d = deploy_sync tb ap (pod "a" [ ("c1", 3.0, 2.0) ]) in
  (match d.Autopilot.placement with
  | Autopilot.Whole (node, netns) ->
    Alcotest.(check string) "on the existing node" "vm1" (Node.name node);
    (* BrFusion: the pod namespace owns a NIC on the host bridge subnet. *)
    Alcotest.(check bool) "pod has a host-subnet address" true
      (List.exists
         (fun (_, ip, _) ->
           Ipv4.in_subnet (Ipv4.cidr_of_string "10.0.0.0/24") ip)
         (Stack.addrs netns))
  | Autopilot.Split _ -> Alcotest.fail "should not split");
  Alcotest.(check int) "no VM bought" 0 (Autopilot.vms_bought ap);
  Alcotest.(check (float 1e-9)) "reserved" 3.0
    (Node.cpu_requested (List.hd (Autopilot.nodes ap)))

let test_buys_vm_when_full () =
  let tb = Testbed.create ~num_vms:1 () in
  let ap = Autopilot.create tb ~provision_delay:(Time.sec 10) () in
  let _a = deploy_sync tb ap (pod "a" [ ("c1", 4.0, 3.0) ]) in
  let t0 = Nest_sim.Engine.now tb.Testbed.engine in
  let b = deploy_sync tb ap (pod "b" [ ("c1", 4.0, 3.0) ]) in
  Alcotest.(check int) "one VM bought" 1 (Autopilot.vms_bought ap);
  Alcotest.(check int) "fleet grew" 2 (List.length (Autopilot.nodes ap));
  (match b.Autopilot.placement with
  | Autopilot.Whole (node, _) ->
    Alcotest.(check string) "on the new VM" "ap-vm1" (Node.name node)
  | Autopilot.Split _ -> Alcotest.fail "should not split");
  (* Ready no earlier than the provisioning delay. *)
  Alcotest.(check bool) "paid the provisioning delay" true
    (Nest_sim.Engine.now tb.Testbed.engine - t0 >= Time.sec 10)

let test_splits_with_hostlo () =
  let tb = Testbed.create ~num_vms:2 () in
  let ap = Autopilot.create tb () in
  (* Leave 1 cpu free on vm1 and 2 on vm2, then ask for a 3-container
     3-cpu pod: it fits nowhere whole, but the fragments cover it. *)
  let _ = deploy_sync tb ap (pod "fill1" [ ("c", 4.0, 1.0) ]) in
  let _ = deploy_sync tb ap (pod "fill2" [ ("c", 3.0, 1.0) ]) in
  let d =
    deploy_sync tb ap
      (pod "wide" [ ("w1", 1.0, 0.5); ("w2", 1.0, 0.5); ("w3", 1.0, 0.5) ])
  in
  (match d.Autopilot.placement with
  | Autopilot.Whole _ -> Alcotest.fail "expected a split placement"
  | Autopilot.Split fractions ->
    Alcotest.(check bool) "spans several nodes" true
      (List.length fractions >= 2);
    (* Fractions talk over the pod's localhost (the Hostlo tap). *)
    let (_, ns_a), (_, ns_b) = (List.nth fractions 0, List.nth fractions 1) in
    let got = ref false in
    let _srv = Stack.Udp.bind ns_b ~port:7777 (fun _ ~src:_ _ -> got := true) in
    let cl = Stack.Udp.bind ns_a ~port:0 (fun _ ~src:_ _ -> ()) in
    Stack.Udp.sendto cl ~dst:Ipv4.localhost ~dst_port:7777 (Payload.raw 64);
    Testbed.run_until tb (Nest_sim.Engine.now tb.Testbed.engine + Time.sec 2);
    Alcotest.(check bool) "cross-fraction localhost works" true !got);
  Alcotest.(check int) "counted as split" 1 (Autopilot.pods_split ap);
  Alcotest.(check int) "no VM bought (split avoided it)" 0
    (Autopilot.vms_bought ap)

let test_no_split_buys_instead () =
  let tb = Testbed.create ~num_vms:2 () in
  let ap = Autopilot.create tb ~allow_split:false ~provision_delay:(Time.sec 5) () in
  let _ = deploy_sync tb ap (pod "fill1" [ ("c", 4.0, 1.0) ]) in
  let _ = deploy_sync tb ap (pod "fill2" [ ("c", 3.0, 1.0) ]) in
  let d =
    deploy_sync tb ap
      (pod "wide" [ ("w1", 1.0, 0.5); ("w2", 1.0, 0.5); ("w3", 1.0, 0.5) ])
  in
  (match d.Autopilot.placement with
  | Autopilot.Whole (node, _) ->
    Alcotest.(check string) "bought a VM instead" "ap-vm1" (Node.name node)
  | Autopilot.Split _ -> Alcotest.fail "split disabled");
  Alcotest.(check int) "vm bought" 1 (Autopilot.vms_bought ap)

let test_delete_and_scale_down () =
  let tb = Testbed.create ~num_vms:1 () in
  let ap = Autopilot.create tb ~provision_delay:(Time.sec 5) () in
  let a = deploy_sync tb ap (pod "a" [ ("c1", 4.0, 3.0) ]) in
  let b = deploy_sync tb ap (pod "b" [ ("c1", 4.0, 3.0) ]) in
  Alcotest.(check int) "fleet of 2" 2 (List.length (Autopilot.nodes ap));
  Autopilot.delete ap b;
  Alcotest.(check int) "one deployment left" 1
    (List.length (Autopilot.deployments ap));
  let removed = Autopilot.scale_down ap in
  Alcotest.(check int) "released the empty VM" 1 removed;
  Alcotest.(check int) "fleet back to 1" 1 (List.length (Autopilot.nodes ap));
  Autopilot.delete ap a;
  Alcotest.(check int) "all empty now" 1 (Autopilot.scale_down ap)

let test_local_volume_prevents_split () =
  let tb = Testbed.create ~num_vms:2 () in
  let ap = Autopilot.create tb ~provision_delay:(Time.sec 5) () in
  let _ = deploy_sync tb ap (pod "fill1" [ ("c", 4.0, 1.0) ]) in
  let _ = deploy_sync tb ap (pod "fill2" [ ("c", 3.0, 1.0) ]) in
  let wide =
    Pod.make ~name:"wide"
      ~volumes:[ Pod.volume ~name:"scratch" () ]
      [ Pod.container ~name:"w1" ~cpu:1.0 ~mem:0.5 ();
        Pod.container ~name:"w2" ~cpu:1.0 ~mem:0.5 ();
        Pod.container ~name:"w3" ~cpu:1.0 ~mem:0.5 () ]
  in
  let d = deploy_sync tb ap wide in
  (match d.Autopilot.placement with
  | Autopilot.Whole (node, _) ->
    Alcotest.(check string) "local volume forces whole placement (bought)"
      "ap-vm1" (Node.name node);
    Alcotest.(check (list string)) "volume mounted on that VM"
      [ Node.name node ]
      (Pod_resources.Volumes.mounts (Autopilot.volumes ap)
         ~pod:d.Autopilot.dep_tag ~volume:"scratch")
  | Autopilot.Split _ -> Alcotest.fail "a local volume must never be split")

let test_shared_volume_allows_split () =
  let tb = Testbed.create ~num_vms:2 () in
  let ap = Autopilot.create tb () in
  let _ = deploy_sync tb ap (pod "fill1" [ ("c", 4.0, 1.0) ]) in
  let _ = deploy_sync tb ap (pod "fill2" [ ("c", 3.0, 1.0) ]) in
  let wide =
    Pod.make ~name:"wide"
      ~volumes:[ Pod.volume ~name:"data" ~shared_fs:true () ]
      [ Pod.container ~name:"w1" ~cpu:1.0 ~mem:0.5 ();
        Pod.container ~name:"w2" ~cpu:1.0 ~mem:0.5 ();
        Pod.container ~name:"w3" ~cpu:1.0 ~mem:0.5 () ]
  in
  let d = deploy_sync tb ap wide in
  match d.Autopilot.placement with
  | Autopilot.Whole _ -> Alcotest.fail "expected split"
  | Autopilot.Split frs ->
    let mounts =
      Pod_resources.Volumes.mounts (Autopilot.volumes ap)
        ~pod:d.Autopilot.dep_tag ~volume:"data"
    in
    Alcotest.(check int) "VirtFS volume mounted on every fraction's VM"
      (List.length frs) (List.length mounts)

let test_oversized_container_rejected () =
  let tb = Testbed.create ~num_vms:1 () in
  let ap = Autopilot.create tb () in
  Alcotest.check_raises "container bigger than a VM"
    (Failure "Autopilot.deploy: a container of huge exceeds a whole VM")
    (fun () ->
      Autopilot.deploy ap (pod "huge" [ ("c", 8.0, 1.0) ]) ~on_ready:(fun _ -> ()))

let () =
  Alcotest.run "autopilot"
    [ ( "placement",
        [ Alcotest.test_case "whole uses brfusion" `Quick
            test_whole_placement_uses_brfusion;
          Alcotest.test_case "buys when full" `Quick test_buys_vm_when_full;
          Alcotest.test_case "splits with hostlo" `Quick test_splits_with_hostlo;
          Alcotest.test_case "no-split buys" `Quick test_no_split_buys_instead ]
      );
      ( "lifecycle",
        [ Alcotest.test_case "delete + scale down" `Quick
            test_delete_and_scale_down;
          Alcotest.test_case "oversized rejected" `Quick
            test_oversized_container_rejected ] );
      ( "volumes (4.3)",
        [ Alcotest.test_case "local volume prevents split" `Quick
            test_local_volume_prevents_split;
          Alcotest.test_case "shared volume allows split" `Quick
            test_shared_volume_allows_split ] ) ]
