(* API-contract tests for small utility surfaces. *)

open Nest_net
module Time = Nest_sim.Time

let test_hop_cost_math () =
  let e = Nest_sim.Engine.create () in
  let x = Nest_sim.Exec.create e ~name:"w" in
  let h = Hop.make x ~fixed_ns:100 ~per_byte_ns:0.5 in
  Alcotest.(check int) "fixed + per-byte" 600 (Hop.cost_ns h ~bytes:1000);
  Alcotest.(check int) "zero bytes" 100 (Hop.cost_ns h ~bytes:0);
  let free = Hop.free e in
  Alcotest.(check int) "free hop costs nothing" 0 (Hop.cost_ns free ~bytes:1500)

let test_dev_mss () =
  let d = Dev.create ~name:"d" ~mac:(Mac.of_int 1) () in
  Alcotest.(check int) "default mtu 1500 -> mss 1460" 1460 (Dev.mss d);
  let j = Dev.create ~mtu:9000 ~name:"jumbo" ~mac:(Mac.of_int 2) () in
  Alcotest.(check int) "jumbo" 8960 (Dev.mss j)

let test_frame_pp () =
  let pkt =
    Packet.make ~src:(Ipv4.of_string "1.2.3.4") ~dst:(Ipv4.of_string "5.6.7.8")
      (Packet.Udp { src_port = 9; dst_port = 10; payload = Payload.raw 5 })
  in
  let f = Frame.make ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2) (Frame.Ipv4_body pkt) in
  let s = Format.asprintf "%a" Frame.pp f in
  Alcotest.(check bool) "mentions addresses and proto" true
    (Astring.String.is_infix ~affix:"1.2.3.4" s
    && Astring.String.is_infix ~affix:"udp" s)

let test_qmp_pp () =
  Alcotest.(check string) "command names" "netdev_add"
    (Nest_virt.Qmp.command_name (Nest_virt.Qmp.Netdev_add { id = "x"; bridge = "b" }));
  let s =
    Format.asprintf "%a" Nest_virt.Qmp.pp_response
      (Nest_virt.Qmp.Ok_nic { mac = Mac.of_int 0x42 })
  in
  Alcotest.(check bool) "mac rendered" true
    (Astring.String.is_infix ~affix:"00:00:00:00:00:42" s);
  Alcotest.(check string) "error rendered" "error: boom"
    (Format.asprintf "%a" Nest_virt.Qmp.pp_response (Nest_virt.Qmp.Error "boom"))

let test_conntrack_pp () =
  let p =
    Packet.make ~src:(Ipv4.of_string "1.1.1.1") ~dst:(Ipv4.of_string "2.2.2.2")
      (Packet.Udp { src_port = 5; dst_port = 6; payload = Payload.raw 1 })
  in
  let s = Format.asprintf "%a" Conntrack.pp_flow (Conntrack.flow_of_packet p) in
  Alcotest.(check string) "flow rendering" "udp 1.1.1.1:5>2.2.2.2:6" s

let test_modes_lists () =
  Alcotest.(check int) "3 single modes" 3 (List.length Nestfusion.Modes.all_single);
  Alcotest.(check int) "4 pair modes" 4 (List.length Nestfusion.Modes.all_pair);
  Alcotest.(check string) "NAT spelling" "NAT"
    (Nestfusion.Modes.pair_to_string `NatX)

let test_registry_complete () =
  (* Every table and figure of the evaluation is addressable. *)
  let expected =
    [ "fig2"; "table1"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "table2";
      "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "fig15" ]
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true
        (Nest_experiments.Registry.find id <> None))
    expected;
  Alcotest.(check int) "paper entries" 15
    (List.length Nest_experiments.Registry.all);
  Alcotest.(check bool) "ablations exist" true
    (List.length Nest_experiments.Registry.ablations >= 4);
  Alcotest.(check bool) "unknown id rejected" true
    (Nest_experiments.Registry.find "fig99" = None)

let test_log_facility () =
  let src = Nest_sim.Log.src "test" in
  (* Disabled: thunks must not run. *)
  let ran = ref false in
  Nest_sim.Log.debug src (fun () -> ran := true; "x");
  Alcotest.(check bool) "lazy when disabled" false !ran;
  Nest_sim.Log.enable ~level:Logs.Debug ();
  Nest_sim.Log.debug src (fun () -> ran := true; "hello from the test");
  Alcotest.(check bool) "evaluated when enabled" true !ran;
  Nest_sim.Log.disable ();
  ran := false;
  Nest_sim.Log.debug src (fun () -> ran := true; "y");
  Alcotest.(check bool) "lazy again after disable" false !ran

let test_exp_util_pct () =
  Alcotest.(check (float 1e-9)) "increase" 50.0 (Nest_experiments.Exp_util.pct 3.0 2.0);
  Alcotest.(check (float 1e-9)) "decrease" (-50.0) (Nest_experiments.Exp_util.pct 1.0 2.0);
  Alcotest.(check (float 1e-9)) "zero base" 0.0 (Nest_experiments.Exp_util.pct 1.0 0.0)

let () =
  Alcotest.run "misc"
    [ ( "utilities",
        [ Alcotest.test_case "hop cost" `Quick test_hop_cost_math;
          Alcotest.test_case "dev mss" `Quick test_dev_mss;
          Alcotest.test_case "frame pp" `Quick test_frame_pp;
          Alcotest.test_case "qmp pp" `Quick test_qmp_pp;
          Alcotest.test_case "conntrack pp" `Quick test_conntrack_pp;
          Alcotest.test_case "modes" `Quick test_modes_lists;
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "log facility" `Quick test_log_facility;
          Alcotest.test_case "exp pct" `Quick test_exp_util_pct ] ) ]
