(* Tests for the benchmark applications (netperf, memcached/memtier,
   nginx/wrk2, kafka/producer-perf).  All run on short windows. *)

open Nestfusion
module Time = Nest_sim.Time
module Stats = Nest_sim.Stats
module App = Nest_workloads.App
module Netperf = Nest_workloads.Netperf
module Memcached = Nest_workloads.Memcached
module Nginx = Nest_workloads.Nginx
module Kafka = Nest_workloads.Kafka

let single mode port =
  let tb = Testbed.create ~num_vms:1 () in
  let site = ref None in
  Deploy.deploy_single tb ~mode ~name:"pod" ~entity:"server" ~port
    ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  (tb, App.of_single tb (Option.get !site))

let test_netperf_stream_sane () =
  let tb, ep = single `NoCont 7000 in
  let r = Netperf.tcp_stream tb ep ~msg_size:1024 ~duration:(Time.ms 100) () in
  Alcotest.(check bool) "throughput positive" true (r.Netperf.mbps > 100.0);
  Alcotest.(check bool) "bytes delivered" true (r.Netperf.bytes_delivered > 0);
  Alcotest.(check bool) "sends happened" true (r.Netperf.sends > 0);
  (* Payload conservation: delivered bytes over the window can't exceed
     what the message size times sends could produce overall. *)
  Alcotest.(check bool) "no byte inflation" true
    (r.Netperf.bytes_delivered <= r.Netperf.sends * 1024)

let test_netperf_rr_sane () =
  let tb, ep = single `NoCont 7001 in
  let r = Netperf.udp_rr tb ep ~msg_size:256 ~duration:(Time.ms 100) () in
  Alcotest.(check bool) "transactions counted" true (r.Netperf.transactions > 100);
  Alcotest.(check int) "one latency sample per transaction"
    r.Netperf.transactions (Stats.count r.Netperf.latency);
  Alcotest.(check bool) "strictly serial: rate = 1/latency" true
    (let mean_us = Stats.mean r.Netperf.latency in
     let implied = 100_000.0 /. mean_us in
     abs_float (implied -. float_of_int r.Netperf.transactions)
     /. implied < 0.15)

let test_netperf_throughput_grows_with_size () =
  let at size =
    let tb, ep = single `NoCont 7000 in
    (Netperf.tcp_stream tb ep ~msg_size:size ~duration:(Time.ms 100) ()).Netperf.mbps
  in
  Alcotest.(check bool) "64B << 4096B" true (at 64 < at 4096)

let test_memcached_ratio_and_loop () =
  let tb, ep = single `NoCont 11211 in
  let r = Memcached.run tb ep ~duration:(Time.ms 200) () in
  Alcotest.(check bool) "responses" true (r.Memcached.responses_per_sec > 1000.0);
  let total = r.Memcached.gets + r.Memcached.sets in
  Alcotest.(check bool) "issued requests" true (total > 0);
  let set_frac = float_of_int r.Memcached.sets /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "SET fraction ~1/11 (got %.3f)" set_frac)
    true
    (set_frac > 0.04 && set_frac < 0.15);
  Alcotest.(check bool) "latency samples exist" true
    (Stats.count r.Memcached.latency > 100)

let test_nginx_rate_and_latency () =
  let tb, ep = single `NoCont 80 in
  let r =
    Nginx.run tb ep ~containerized:false ~rate_per_sec:2_000
      ~duration:(Time.ms 400) ()
  in
  (* Open loop at 2k/s against a native server: the achieved rate must be
     close to the offered rate. *)
  Alcotest.(check bool)
    (Printf.sprintf "achieved ~offered (got %.0f)" r.Nginx.achieved_rate)
    true
    (abs_float (r.Nginx.achieved_rate -. 2_000.0) /. 2_000.0 < 0.1);
  (* wrk2-style latency from intended time: at low rate it is close to
     service + network; always above the native service floor. *)
  Alcotest.(check bool) "latency above service floor" true
    (Stats.mean r.Nginx.latency > 100.0)

let test_nginx_containerized_slower () =
  let lat containerized =
    let tb, ep = single (if containerized then `Brfusion else `NoCont) 80 in
    let r =
      Nginx.run tb ep ~containerized ~rate_per_sec:2_000
        ~duration:(Time.ms 300) ()
    in
    Stats.mean r.Nginx.latency
  in
  Alcotest.(check bool) "containerized service is slower" true
    (lat true > lat false)

let test_kafka_batching () =
  let tb, ep = single `NoCont 9092 in
  let r = Kafka.run tb ep ~duration:(Time.ms 300) () in
  Alcotest.(check bool) "records flowed" true (r.Kafka.records > 10_000);
  Alcotest.(check bool)
    (Printf.sprintf "rate ~120k/s (got %.0f)" r.Kafka.msgs_per_sec)
    true
    (abs_float (r.Kafka.msgs_per_sec -. 120_000.0) /. 120_000.0 < 0.1);
  (* 8192-byte batches of 170-byte records: ~48 records per batch. *)
  let per_batch = float_of_int r.Kafka.records /. float_of_int r.Kafka.batches in
  Alcotest.(check bool)
    (Printf.sprintf "records per batch ~48 (got %.1f)" per_batch)
    true
    (per_batch > 40.0 && per_batch < 56.0);
  (* Latency includes accumulation: mean must exceed the pure broker
     service time. *)
  Alcotest.(check bool) "latency includes batching wait" true
    (Stats.mean r.Kafka.latency > 160.0)

let test_kafka_linger_flush () =
  (* At a rate too low to fill a batch, the linger timer must flush:
     records still flow, in small batches. *)
  let tb, ep = single `NoCont 9092 in
  let r =
    Kafka.run tb ep ~rate_per_sec:1_000 ~linger:(Time.ms 2)
      ~duration:(Time.ms 300) ()
  in
  Alcotest.(check bool) "records flowed at low rate" true (r.Kafka.records > 100);
  let per_batch = float_of_int r.Kafka.records /. float_of_int r.Kafka.batches in
  Alcotest.(check bool)
    (Printf.sprintf "small linger-bound batches (got %.1f)" per_batch)
    true (per_batch < 10.0)

let test_cpu_snapshots () =
  let tb, ep = single `Nat 11211 in
  let before = App.Cpu_snap.take tb.Testbed.acct in
  ignore (Memcached.run tb ep ~duration:(Time.ms 100) ());
  let after = App.Cpu_snap.take tb.Testbed.acct in
  let window = Time.ms 200 in
  let soft =
    App.Cpu_snap.diff_cores ~before ~after ~entity:"vm1"
      Nest_sim.Cpu_account.Soft ~window
  in
  Alcotest.(check bool) "NAT burns guest softirq time" true (soft > 0.05);
  Alcotest.(check bool) "total across categories >= soft" true
    (App.Cpu_snap.entity_total_cores ~before ~after ~entity:"vm1" ~window
    >= soft)

let test_pool_least_loaded () =
  let e = Nest_sim.Engine.create () in
  let made = ref 0 in
  let pool =
    App.Pool.create
      (fun name ->
        incr made;
        Nest_sim.Exec.create e ~name)
      ~n:3 ~name:"p"
  in
  Alcotest.(check int) "three workers" 3 !made;
  Alcotest.(check int) "size" 3 (App.Pool.size pool);
  let finish = ref [] in
  for _ = 1 to 3 do
    App.Pool.submit pool ~cost:100 (fun () ->
        finish := Nest_sim.Engine.now e :: !finish)
  done;
  App.Pool.submit pool ~cost:100 (fun () ->
      finish := Nest_sim.Engine.now e :: !finish);
  Nest_sim.Engine.run e;
  Alcotest.(check (list int)) "3 parallel + 1 queued" [ 100; 100; 100; 200 ]
    (List.sort compare !finish)

let () =
  Alcotest.run "workloads"
    [ ( "netperf",
        [ Alcotest.test_case "stream" `Quick test_netperf_stream_sane;
          Alcotest.test_case "udp_rr" `Quick test_netperf_rr_sane;
          Alcotest.test_case "size scaling" `Quick
            test_netperf_throughput_grows_with_size ] );
      ( "memcached",
        [ Alcotest.test_case "ratio+loop" `Quick test_memcached_ratio_and_loop ]
      );
      ( "nginx",
        [ Alcotest.test_case "rate+latency" `Quick test_nginx_rate_and_latency;
          Alcotest.test_case "containerized slower" `Quick
            test_nginx_containerized_slower ] );
      ( "kafka",
        [ Alcotest.test_case "batching" `Quick test_kafka_batching;
          Alcotest.test_case "linger" `Quick test_kafka_linger_flush ] );
      ( "plumbing",
        [ Alcotest.test_case "cpu snapshots" `Quick test_cpu_snapshots;
          Alcotest.test_case "worker pool" `Quick test_pool_least_loaded ] ) ]
