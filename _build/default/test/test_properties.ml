(* Cross-cutting property tests: oracle comparisons and stateful
   invariants over randomized inputs. *)

open Nest_net
module Engine = Nest_sim.Engine
module Exec = Nest_sim.Exec
module Prng = Nest_sim.Prng
module Heap = Nest_sim.Heap

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Heap vs sorted-list oracle under interleaved push/pop. *)

let test_heap_oracle =
  QCheck.Test.make ~name:"heap behaves like a sorted multiset" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      List.for_all
        (fun (is_pop, v) ->
          if is_pop then
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some (p, _), m :: rest ->
              model := rest;
              p = m
            | None, _ :: _ | Some _, [] -> false
          else begin
            Heap.push h ~prio:v v;
            model := List.sort compare (v :: !model);
            true
          end)
        ops
      && Heap.size h = List.length !model)

(* ------------------------------------------------------------------ *)
(* Route lookup vs naive longest-prefix oracle. *)

let random_cidr rng =
  let prefix = 8 + Prng.int rng 17 in
  let base = Ipv4.of_int (Prng.int rng 0x00ffffff lsl 8) in
  Ipv4.cidr_of_string (Ipv4.to_string base ^ "/" ^ string_of_int prefix)

let test_route_oracle =
  QCheck.Test.make ~name:"route lookup = naive longest-prefix scan" ~count:200
    QCheck.(pair int64 (int_range 1 20))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let rt = Route.create () in
      let entries =
        List.init n (fun i ->
            let c = random_cidr rng in
            let d = Dev.create ~name:(string_of_int i) ~mac:(Mac.of_int i) () in
            Route.add rt ~dst:c ~dev:d ();
            (c, d))
      in
      (* Entries were added in order; the most recent equal-prefix match
         wins, i.e. the *latest* in the list among maximal prefixes. *)
      let oracle ip =
        List.fold_left
          (fun acc (c, d) ->
            if Ipv4.in_subnet c ip then
              match acc with
              | Some (bc, _) when bc.Ipv4.prefix > c.Ipv4.prefix -> acc
              | _ -> Some (c, d)
            else acc)
          None entries
      in
      List.init 30 (fun _ -> Ipv4.of_int (Prng.int rng 0x7fffffff))
      |> List.for_all (fun ip ->
             match (Route.lookup rt ip, oracle ip) with
             | None, None -> true
             | Some e, Some (_, d) -> e.Route.dev == d
             | _ -> false))

(* ------------------------------------------------------------------ *)
(* Conntrack: chained DNAT + SNAT (the full nested path) stays
   invertible end to end. *)

let test_nested_nat_invertible =
  QCheck.Test.make ~name:"DNAT then SNAT composes and replies invert"
    ~count:200
    QCheck.(pair (int_range 1 60000) (int_range 1 60000))
    (fun (sport, dport) ->
      let host_ct = Conntrack.create () in
      let vm_ct = Conntrack.create () in
      let client = Ipv4.of_string "192.168.100.2" in
      let vm_ip = Ipv4.of_string "10.0.0.2" in
      let container = Ipv4.of_string "172.17.0.5" in
      let req =
        Packet.make ~src:client ~dst:vm_ip
          (Packet.Udp { src_port = sport; dst_port = dport; payload = Payload.raw 9 })
      in
      (* Host masquerades the client, the VM DNATs the published port. *)
      let at_host = Conntrack.snat host_ct req ~to_ip:(Ipv4.of_string "10.0.0.1") in
      let at_vm = Conntrack.dnat vm_ct at_host ~to_ip:container ~to_port:8080 in
      (* The container replies; both layers must invert. *)
      let rsp_src, rsp_dst = (at_vm.Packet.dst, at_vm.Packet.src) in
      let sp, dp = Option.get (Packet.ports at_vm) in
      let reply =
        Packet.make ~src:rsp_src ~dst:rsp_dst
          (Packet.Udp { src_port = dp; dst_port = sp; payload = Payload.raw 9 })
      in
      let after_vm, t1 = Conntrack.translate vm_ct reply in
      let after_host, t2 = Conntrack.translate host_ct after_vm in
      t1 && t2
      && Ipv4.equal after_host.Packet.dst client
      && (match Packet.ports after_host with
         | Some (sp', dp') -> sp' = dport && dp' = sport
         | None -> false))

(* ------------------------------------------------------------------ *)
(* Exec + Cpu_set: work conservation bounds. *)

let test_cpuset_work_conservation =
  QCheck.Test.make
    ~name:"makespan within [total/cores, total] for saturating load"
    ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size (Gen.int_range 1 30) (int_range 1 1000)))
    (fun (cores, costs) ->
      let e = Engine.create () in
      let set = Nest_sim.Cpu_set.create ~cores ~name:"m" in
      let finish = ref 0 in
      List.iteri
        (fun i cost ->
          let x = Exec.create ~cpus:set e ~name:(string_of_int i) in
          Exec.submit x ~cost (fun () -> finish := max !finish (Engine.now e)))
        costs;
      Engine.run e;
      let total = List.fold_left ( + ) 0 costs in
      let lower = total / cores and upper = total in
      !finish >= lower && !finish <= upper)

let test_exec_fifo_order =
  QCheck.Test.make ~name:"width-1 exec completes strictly in order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 100))
    (fun costs ->
      let e = Engine.create () in
      let x = Exec.create e ~name:"w" in
      let order = ref [] in
      List.iteri
        (fun i cost -> Exec.submit x ~cost (fun () -> order := i :: !order))
        costs;
      Engine.run e;
      List.rev !order = List.init (List.length costs) Fun.id)

(* ------------------------------------------------------------------ *)
(* TCP stream: arbitrary send-size sequences deliver exact totals and
   preserve message order. *)

type Payload.app_msg += Tag of int

let cheap_costs e =
  let sys_exec = Exec.create e ~name:"sys" in
  let soft_exec = Exec.create e ~name:"soft" in
  { Stack.tx = Hop.make sys_exec ~fixed_ns:80;
    rx = Hop.make soft_exec ~fixed_ns:80;
    forward = Hop.make soft_exec ~fixed_ns:40;
    nat = Hop.make soft_exec ~fixed_ns:40;
    nat_per_rule_ns = 10;
    local = Hop.make sys_exec ~fixed_ns:80;
    syscall = Hop.make sys_exec ~fixed_ns:40;
    wakeup_delay_ns = 0 }

let test_tcp_stream_framing =
  QCheck.Test.make
    ~name:"TCP delivers exact byte totals and in-order framing" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 15) (int_range 1 20_000))
    (fun sizes ->
      let e = Engine.create () in
      let a = Stack.create e ~name:"a" ~costs:(cheap_costs e) () in
      let b = Stack.create e ~name:"b" ~costs:(cheap_costs e) () in
      let hop = Hop.free e in
      let da, db =
        Veth.pair ~a_name:"a0" ~a_mac:(Mac.of_int 1) ~b_name:"b0"
          ~b_mac:(Mac.of_int 2) ~ab_hop:hop ~ba_hop:hop ()
      in
      Stack.attach a da;
      Stack.add_addr a da (Ipv4.of_string "10.1.0.1")
        (Ipv4.cidr_of_string "10.1.0.0/24");
      Stack.attach b db;
      Stack.add_addr b db (Ipv4.of_string "10.1.0.2")
        (Ipv4.cidr_of_string "10.1.0.0/24");
      let got_bytes = ref 0 and got_tags = ref [] in
      Stack.Tcp.listen b ~port:80 ~on_accept:(fun conn ->
          Stack.Tcp.set_on_receive conn (fun ~bytes ~msgs ->
              got_bytes := !got_bytes + bytes;
              List.iter
                (function Tag i -> got_tags := i :: !got_tags | _ -> ())
                msgs));
      let queue = ref (List.mapi (fun i s -> (i, s)) sizes) in
      let rec feed conn () =
        match !queue with
        | [] -> ()
        | (i, s) :: rest ->
          if Stack.Tcp.send conn ~size:s ~msg:(Tag i) () then begin
            queue := rest;
            feed conn ()
          end
          else Stack.Tcp.set_on_writable conn (feed conn)
      in
      ignore
        (Stack.Tcp.connect a ~dst:(Ipv4.of_string "10.1.0.2") ~port:80
           ~on_established:(fun conn -> feed conn ())
           ());
      Engine.run e;
      !got_bytes = List.fold_left ( + ) 0 sizes
      && List.rev !got_tags = List.init (List.length sizes) Fun.id)

(* ------------------------------------------------------------------ *)
(* Hostlo reflection invariant: frames-written x queues = reflections. *)

let test_hostlo_reflection_conservation =
  QCheck.Test.make ~name:"reflections = writes x queues" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 1 20))
    (fun (queues, writes) ->
      let e = Engine.create () in
      let tap =
        Tap.create e ~name:"hlo" ~mode:Tap.Loopback ~hop:(Hop.free e)
          ~mac:(Mac.of_int 7) ()
      in
      let qs =
        List.init queues (fun i ->
            let q = Tap.add_queue tap ~owner:(string_of_int i) in
            Tap.queue_set_backend q (fun _ -> ());
            q)
      in
      List.iteri
        (fun i q ->
          if i = 0 then
            for _ = 1 to writes do
              Tap.queue_write q
                (Frame.make ~src:(Mac.of_int 7) ~dst:Mac.broadcast
                   (Frame.Ipv4_body
                      (Packet.make ~src:Ipv4.localhost ~dst:Ipv4.localhost
                         (Packet.Udp
                            { src_port = 1; dst_port = 2;
                              payload = Payload.raw 10 }))))
            done)
        qs;
      Engine.run e;
      Tap.reflected tap = writes * queues)

(* ------------------------------------------------------------------ *)
(* Scheduler: returned node always fits; None only when nothing fits. *)

let test_scheduler_soundness =
  QCheck.Test.make ~name:"most-requested is sound and complete" ~count:100
    QCheck.(pair (int_range 1 6) (pair (float_range 0.1 8.0) (float_range 0.1 8.0)))
    (fun (nvms, (cpu, mem)) ->
      let tb = Nestfusion.Testbed.create ~num_vms:nvms () in
      let rng = Prng.create 9L in
      List.iter
        (fun n ->
          let c = Prng.range_float rng 0.0 4.0 in
          if Nest_orch.Node.fits n ~cpu:c ~mem:1.0 then
            Nest_orch.Node.reserve n ~cpu:c ~mem:1.0)
        tb.Nestfusion.Testbed.nodes;
      let nodes = tb.Nestfusion.Testbed.nodes in
      match Nest_orch.Scheduler.most_requested nodes ~cpu ~mem with
      | Some n -> Nest_orch.Node.fits n ~cpu ~mem
      | None -> not (List.exists (fun n -> Nest_orch.Node.fits n ~cpu ~mem) nodes))

(* ------------------------------------------------------------------ *)
(* Stats percentile is monotone in p. *)

let test_percentile_monotone =
  QCheck.Test.make ~name:"percentile is nondecreasing in p" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Nest_sim.Stats.create () in
      List.iter (Nest_sim.Stats.add s) xs;
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 99.; 100. ] in
      let vals = List.map (Nest_sim.Stats.percentile s) ps in
      List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 7) vals) (List.tl vals))

(* ------------------------------------------------------------------ *)
(* Netperf determinism: identical seeds give identical results. *)

let test_netperf_deterministic () =
  let run () =
    let tb, site = ref None, ref None in
    let t = Nestfusion.Testbed.create ~seed:1234L ~num_vms:1 () in
    tb := Some t;
    Nestfusion.Deploy.deploy_single t ~mode:`Nat ~name:"pod" ~entity:"srv"
      ~port:7000 ~k:(fun s -> site := Some s);
    Nestfusion.Testbed.run_until t (Nest_sim.Time.sec 1);
    let ep = Nest_workloads.App.of_single t (Option.get !site) in
    (Nest_workloads.Netperf.tcp_stream t ep ~msg_size:1024
       ~duration:(Nest_sim.Time.ms 100) ())
      .Nest_workloads.Netperf.mbps
  in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-9)) "bit-identical across runs" a b

let () =
  Alcotest.run "properties"
    [ ( "oracles",
        [ qtest test_heap_oracle;
          qtest test_route_oracle;
          qtest test_nested_nat_invertible;
          qtest test_percentile_monotone ] );
      ( "scheduling",
        [ qtest test_cpuset_work_conservation;
          qtest test_exec_fifo_order;
          qtest test_scheduler_soundness ] );
      ( "transport",
        [ qtest test_tcp_stream_framing;
          qtest test_hostlo_reflection_conservation;
          Alcotest.test_case "netperf determinism" `Quick
            test_netperf_deterministic ] ) ]
