(* Integration tests of the deployment modes: every mode must deliver
   traffic end-to-end, and the recorded device paths must match Fig. 1 of
   the paper (NAT keeps the in-VM bridge; BrFusion removes it; Hostlo
   reflects through the loopback tap; ...). *)

open Nest_net
open Nestfusion
module Time = Nest_sim.Time

let until tb t = Testbed.run_until tb t

let deploy_single_sync ~mode =
  let tb = Testbed.create ~num_vms:1 () in
  let site = ref None in
  Deploy.deploy_single tb ~mode ~name:"pod" ~entity:"srv" ~port:7000
    ~k:(fun s -> site := Some s);
  until tb (Time.sec 1);
  match !site with
  | Some s -> (tb, s)
  | None -> Alcotest.failf "deploy_single %s never completed" (Modes.single_to_string mode)

let deploy_pair_sync ~mode =
  let tb = Testbed.create ~num_vms:2 () in
  let site = ref None in
  Deploy.deploy_pair tb ~mode ~name:"pod" ~a_entity:"cli" ~b_entity:"srv"
    ~port:7000 ~k:(fun s -> site := Some s);
  until tb (Time.sec 1);
  match !site with
  | Some s -> (tb, s)
  | None -> Alcotest.failf "deploy_pair %s never completed" (Modes.pair_to_string mode)

let udp_echo_works ns_server ns_client ~addr ~port tb =
  let echoed = ref false in
  let server =
    Stack.Udp.bind ns_server ~port (fun s ~src payload ->
        let ip, p = src in
        Stack.Udp.sendto s ~dst:ip ~dst_port:p payload)
  in
  let client =
    Stack.Udp.bind ns_client ~port:0 (fun _ ~src:_ _ -> echoed := true)
  in
  Stack.Udp.sendto client ~dst:addr ~dst_port:port (Payload.raw 256);
  until tb (Time.sec 3);
  Stack.Udp.close server;
  Stack.Udp.close client;
  !echoed

(* --- single-server modes --- *)

let test_single_mode mode () =
  let tb, site = deploy_single_sync ~mode in
  Alcotest.(check bool)
    (Modes.single_to_string mode ^ " echo")
    true
    (udp_echo_works site.Deploy.site_ns tb.Testbed.client_ns
       ~addr:site.Deploy.site_addr ~port:site.Deploy.site_port tb)

let path_of_single mode =
  let tb, site = deploy_single_sync ~mode in
  let hops = ref None in
  Path_probe.udp_path ~src:tb.Testbed.client_ns ~dst:site.Deploy.site_ns
    ~dst_addr:site.Deploy.site_addr ~port:site.Deploy.site_port
    ~k:(fun h -> hops := Some h)
    ();
  until tb (Time.sec 2);
  match !hops with
  | Some h -> h
  | None -> Alcotest.fail "probe never delivered"

let test_path_nocont () =
  let hops = path_of_single `NoCont in
  (* client veth -> host bridge -> vm tap -> guest eth0; no docker0. *)
  Alcotest.(check bool) "passes host bridge" true
    (Path_probe.contains_seq hops [ "virbr0"; "tap-vm1"; "vm1:eth0" ]);
  Alcotest.(check bool) "no in-VM bridge" true
    (not (List.exists (fun h -> h = "vm1:docker0") hops))

let test_path_nat () =
  let hops = path_of_single `Nat in
  (* The duplicated layer: guest eth0 then docker0 then the pod veth. *)
  Alcotest.(check bool)
    (Format.asprintf "nested path %a" Path_probe.pp_hops hops)
    true
    (Path_probe.contains_seq hops
       [ "virbr0"; "tap-vm1"; "vm1:eth0"; "vm1:docker0"; "pod:eth0" ])

let test_path_brfusion () =
  let hops = path_of_single `Brfusion in
  (* Host bridge straight into the pod's own NIC: no vm1:eth0, no docker0. *)
  Alcotest.(check bool)
    (Format.asprintf "fused path %a" Path_probe.pp_hops hops)
    true
    (Path_probe.contains_seq hops [ "virbr0"; "vm1:brf-pod" ]);
  Alcotest.(check bool) "in-VM bridge removed" true
    (not (List.exists (fun h -> h = "vm1:docker0" || h = "vm1:eth0") hops))

(* --- pod-pair modes --- *)

let test_pair_mode mode () =
  let tb, site = deploy_pair_sync ~mode in
  Alcotest.(check bool)
    (Modes.pair_to_string mode ^ " echo")
    true
    (udp_echo_works site.Deploy.b_ns site.Deploy.a_ns ~addr:site.Deploy.b_addr
       ~port:site.Deploy.b_port tb)

let test_path_hostlo () =
  let tb, site = deploy_pair_sync ~mode:`Hostlo in
  let hops = ref None in
  Path_probe.udp_path ~src:site.Deploy.a_ns ~dst:site.Deploy.b_ns
    ~dst_addr:site.Deploy.b_addr ~port:site.Deploy.b_port
    ~k:(fun h -> hops := Some h)
    ();
  until tb (Time.sec 2);
  match !hops with
  | None -> Alcotest.fail "hostlo probe never delivered"
  | Some hops ->
    (* Endpoint in VM1 -> loopback tap -> endpoint in VM2; never the host
       bridge or any in-VM bridge. *)
    Alcotest.(check bool)
      (Format.asprintf "hostlo path %a" Path_probe.pp_hops hops)
      true
      (Path_probe.contains_seq hops [ "hostlo-pod"; "vm2:hlo-pod-1" ]);
    Alcotest.(check bool) "no host bridge on path" true
      (not (List.exists (fun h -> h = "virbr0") hops))

let test_path_overlay () =
  let tb, site = deploy_pair_sync ~mode:`Overlay in
  let hops = ref None in
  Path_probe.udp_path ~src:site.Deploy.a_ns ~dst:site.Deploy.b_ns
    ~dst_addr:site.Deploy.b_addr ~port:site.Deploy.b_port
    ~k:(fun h -> hops := Some h)
    ();
  until tb (Time.sec 2);
  match !hops with
  | None -> Alcotest.fail "overlay probe never delivered"
  | Some hops ->
    Alcotest.(check bool)
      (Format.asprintf "encap+decap %a" Path_probe.pp_hops hops)
      true
      (List.exists (fun h -> h = "vm1:pod-ov.vtep:encap" || h = "vm1:pod-ov:encap") hops
      && List.exists (fun h -> h = "vm2:pod-ov.vtep:decap" || h = "vm2:pod-ov:decap") hops)

let test_hostlo_reflection_counts () =
  (* Every frame written to the loopback tap is reflected to all queues,
     including the writer's (§4.2): the writing fraction's own stack sees
     its frames back and silently drops them. *)
  let tb, site = deploy_pair_sync ~mode:`Hostlo in
  let before = (Stack.counters site.Deploy.a_ns).Stack.dropped_no_socket in
  Alcotest.(check bool) "hostlo echo sanity" true
    (udp_echo_works site.Deploy.b_ns site.Deploy.a_ns ~addr:site.Deploy.b_addr
       ~port:site.Deploy.b_port tb);
  Alcotest.(check bool) "self-reflections reached A's stack and were dropped"
    true
    ((Stack.counters site.Deploy.a_ns).Stack.dropped_no_socket > before)

let test_tcp_over_hostlo () =
  let tb, site = deploy_pair_sync ~mode:`Hostlo in
  let received = ref 0 in
  Stack.Tcp.listen site.Deploy.b_ns ~port:7000 ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes ~msgs:_ ->
          received := !received + bytes));
  let c =
    Stack.Tcp.connect site.Deploy.a_ns ~dst:site.Deploy.b_addr ~port:7000
      ~on_established:(fun c ->
        ignore (Stack.Tcp.send c ~size:200_000 ()))
      ()
  in
  until tb (Time.sec 3);
  Alcotest.(check bool) "established over hostlo" true
    (Stack.Tcp.is_established c);
  Alcotest.(check int) "bulk transfer over hostlo" 200_000 !received;
  Alcotest.(check int) "no retransmits" 0 (Stack.Tcp.retransmits c)

let test_tcp_local_same_fraction () =
  (* Two processes in the same Hostlo fraction still talk over the
     endpoint locally. *)
  let tb, site = deploy_pair_sync ~mode:`Hostlo in
  let got = ref 0 in
  Stack.Tcp.listen site.Deploy.a_ns ~port:9100 ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes ~msgs:_ -> got := !got + bytes));
  let _c =
    Stack.Tcp.connect site.Deploy.a_ns ~dst:Ipv4.localhost ~port:9100
      ~on_established:(fun c -> ignore (Stack.Tcp.send c ~size:5_000 ()))
      ()
  in
  until tb (Time.sec 2);
  Alcotest.(check int) "local delivery within fraction" 5_000 !got

let single_cases =
  List.map
    (fun m ->
      Alcotest.test_case
        ("echo " ^ Modes.single_to_string m)
        `Quick (test_single_mode m))
    Modes.all_single

let pair_cases =
  List.map
    (fun m ->
      Alcotest.test_case
        ("echo " ^ Modes.pair_to_string m)
        `Quick (test_pair_mode m))
    Modes.all_pair

let () =
  Alcotest.run "modes"
    [ ("single", single_cases);
      ("pair", pair_cases);
      ( "paths",
        [ Alcotest.test_case "NoCont path" `Quick test_path_nocont;
          Alcotest.test_case "NAT nested path" `Quick test_path_nat;
          Alcotest.test_case "BrFusion fused path" `Quick test_path_brfusion;
          Alcotest.test_case "Hostlo reflected path" `Quick test_path_hostlo;
          Alcotest.test_case "Overlay encap path" `Quick test_path_overlay ] );
      ( "hostlo-semantics",
        [ Alcotest.test_case "reflection sanity" `Quick
            test_hostlo_reflection_counts;
          Alcotest.test_case "tcp bulk over hostlo" `Quick test_tcp_over_hostlo;
          Alcotest.test_case "tcp local within fraction" `Quick
            test_tcp_local_same_fraction ] ) ]
