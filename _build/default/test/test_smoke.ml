(* End-to-end smoke tests over the full substrate: client namespace on the
   host, veth to the host, host bridge + NAT, virtio/vhost into a VM. *)

open Nest_net
module Engine = Nest_sim.Engine

let ip = Ipv4.of_string
let cidr = Ipv4.cidr_of_string

type world = {
  engine : Engine.t;
  host : Nest_virt.Host.t;
  vmm : Nest_virt.Vmm.t;
  client_ns : Stack.ns;
  vm : Nest_virt.Vm.t;
}

let make_world () =
  let engine = Engine.create () in
  let acct = Nest_sim.Cpu_account.create () in
  let host =
    Nest_virt.Host.create engine acct ~cpus:12 ~name:"host" ()
  in
  let _br =
    Nest_virt.Host.add_bridge host ~name:"virbr0" ~ip:(ip "10.0.0.1")
      ~subnet:(cidr "10.0.0.0/24")
  in
  let vmm = Nest_virt.Vmm.create host in
  let client_ns =
    Nest_virt.Host.new_process_ns host ~name:"client" ~entity:"client"
  in
  Nest_virt.Host.connect_ns_to_host host client_ns
    ~host_ip:(ip "192.168.100.1") ~ns_ip:(ip "192.168.100.2")
    ~subnet:(cidr "192.168.100.0/24");
  Nest_virt.Host.masquerade host ~src_subnet:(cidr "192.168.100.0/24")
    ~nat_ip:(ip "10.0.0.1");
  (* Route from the host toward the client subnet exists via the veth
     (connected route); VMs reply to the NAT address so nothing more is
     needed on their side. *)
  let vm =
    Nest_virt.Vmm.create_vm vmm ~name:"vm1" ~vcpus:5 ~mem_mb:4096
      ~bridge:"virbr0" ~ip:(ip "10.0.0.2")
  in
  { engine; host; vmm; client_ns; vm }

let run_until w t = Engine.run ~until:t w.engine

let test_ping () =
  let w = make_world () in
  let got = ref None in
  Stack.ping w.client_ns ~dst:(ip "10.0.0.2") ~on_reply:(fun ~rtt_ns ->
      got := Some rtt_ns);
  run_until w (Nest_sim.Time.ms 100);
  match !got with
  | None -> Alcotest.fail "no ping reply"
  | Some rtt ->
    Alcotest.(check bool) "rtt positive" true (rtt > 0);
    Alcotest.(check bool) "rtt sane (< 1ms)" true (rtt < Nest_sim.Time.ms 1)

let test_udp_round_trip () =
  let w = make_world () in
  let vm_ns = Nest_virt.Vm.ns w.vm in
  let echoed = ref 0 in
  let _server =
    Stack.Udp.bind vm_ns ~port:7 (fun s ~src payload ->
        let src_ip, src_port = src in
        Stack.Udp.sendto s ~dst:src_ip ~dst_port:src_port payload)
  in
  let client =
    Stack.Udp.bind w.client_ns ~port:0 (fun _ ~src:_ _ ->
        incr echoed)
  in
  Stack.Udp.sendto client ~dst:(ip "10.0.0.2") ~dst_port:7
    (Payload.raw 128);
  run_until w (Nest_sim.Time.ms 100);
  Alcotest.(check int) "echo received" 1 !echoed

let test_tcp_transfer () =
  let w = make_world () in
  let vm_ns = Nest_virt.Vm.ns w.vm in
  let server_got = ref 0 in
  let server_msgs = ref [] in
  Stack.Tcp.listen vm_ns ~port:5201 ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes ~msgs ->
          server_got := !server_got + bytes;
          server_msgs := !server_msgs @ msgs));
  let c =
    Stack.Tcp.connect w.client_ns ~dst:(ip "10.0.0.2") ~port:5201
      ~on_established:(fun c ->
        ignore
          (Stack.Tcp.send c ~size:100_000
             ~msg:(Payload.Opaque "first-100k") ());
        ignore
          (Stack.Tcp.send c ~size:50_000 ~msg:(Payload.Opaque "next-50k") ()))
      ()
  in
  run_until w (Nest_sim.Time.sec 2);
  Alcotest.(check bool) "established" true (Stack.Tcp.is_established c);
  Alcotest.(check int) "all bytes received" 150_000 !server_got;
  Alcotest.(check int) "acked back to sender" 150_000 (Stack.Tcp.bytes_acked c);
  let tags =
    List.filter_map
      (function Payload.Opaque s -> Some s | _ -> None)
      !server_msgs
  in
  Alcotest.(check (list string)) "message framing preserved"
    [ "first-100k"; "next-50k" ] tags;
  Alcotest.(check int) "no retransmits" 0 (Stack.Tcp.retransmits c)

let test_nat_hides_client () =
  let w = make_world () in
  let vm_ns = Nest_virt.Vm.ns w.vm in
  let seen_src = ref None in
  let _server =
    Stack.Udp.bind vm_ns ~port:9 (fun _ ~src _ -> seen_src := Some src)
  in
  let client =
    Stack.Udp.bind w.client_ns ~port:0 (fun _ ~src:_ _ -> ())
  in
  Stack.Udp.sendto client ~dst:(ip "10.0.0.2") ~dst_port:9 (Payload.raw 32);
  run_until w (Nest_sim.Time.ms 100);
  match !seen_src with
  | None -> Alcotest.fail "no datagram at server"
  | Some (src_ip, _) ->
    Alcotest.(check string) "source masqueraded to host bridge address"
      "10.0.0.1" (Ipv4.to_string src_ip)

let test_hotplug_nic () =
  let w = make_world () in
  let plugged = ref None in
  Nest_virt.Vmm.hotplug_nic w.vmm ~vm:w.vm ~bridge:"virbr0" ~id:"pod-nic"
    ~k:(fun dev -> plugged := Some dev);
  run_until w (Nest_sim.Time.ms 200);
  match !plugged with
  | None -> Alcotest.fail "hot-plugged NIC never became guest-visible"
  | Some dev ->
    Alcotest.(check bool) "dev is up" true dev.Dev.up;
    (* The device answers traffic once addressed: give it an IP in the
       bridge subnet and ping it from the client. *)
    let pod_ns = Nest_virt.Vm.new_netns w.vm ~name:"pod" () in
    Stack.attach pod_ns dev;
    Stack.add_addr pod_ns dev (ip "10.0.0.77") (cidr "10.0.0.0/24");
    Route.add_default (Stack.routes pod_ns) ~gateway:(ip "10.0.0.1") ~dev ();
    let got = ref false in
    Stack.ping w.client_ns ~dst:(ip "10.0.0.77") ~on_reply:(fun ~rtt_ns:_ ->
        got := true);
    run_until w (Nest_sim.Time.ms 400);
    Alcotest.(check bool) "pod NIC reachable from client" true !got

let test_trace_path () =
  let w = make_world () in
  Stack.set_trace_all w.client_ns true;
  let vm_ns = Nest_virt.Vm.ns w.vm in
  let _server =
    Stack.Udp.bind vm_ns ~port:7 (fun _ ~src:_ _ -> ())
  in
  let client =
    Stack.Udp.bind w.client_ns ~port:0 (fun _ ~src:_ _ -> ())
  in
  Stack.Udp.sendto client ~dst:(ip "10.0.0.2") ~dst_port:7 (Payload.raw 64);
  run_until w (Nest_sim.Time.ms 100);
  (* We can't see the packet here, but the namespace counters prove the
     path: client veth tx, host forwarding, VM delivery. *)
  Alcotest.(check int) "host forwarded" 1
    (Stack.counters (Nest_virt.Host.ns w.host)).Stack.forwarded_pkts;
  Alcotest.(check int) "vm delivered" 1
    (Stack.counters vm_ns).Stack.delivered

let suite =
  [ Alcotest.test_case "ping client->vm" `Quick test_ping;
    Alcotest.test_case "udp echo through NAT" `Quick test_udp_round_trip;
    Alcotest.test_case "tcp transfer with framing" `Quick test_tcp_transfer;
    Alcotest.test_case "masquerade rewrites source" `Quick test_nat_hides_client;
    Alcotest.test_case "qmp NIC hot-plug" `Quick test_hotplug_nic;
    Alcotest.test_case "datapath counters" `Quick test_trace_path ]

let () = Alcotest.run "smoke" [ ("end-to-end", suite) ]
