(* Calibration tests: the paper's headline results must hold in shape.

   These run the real experiment pipelines on shortened windows, so the
   tolerance bands are generous; EXPERIMENTS.md records the full-window
   numbers against the paper's. *)

open Nestfusion
module Time = Nest_sim.Time
module Stats = Nest_sim.Stats
module App = Nest_workloads.App
module Netperf = Nest_workloads.Netperf

let dur = Time.ms 250

let single mode =
  let tb = Testbed.create ~num_vms:1 () in
  let site = ref None in
  Deploy.deploy_single tb ~mode ~name:"pod" ~entity:"server" ~port:7000
    ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  (tb, App.of_single tb (Option.get !site))

let pair mode =
  let tb = Testbed.create ~num_vms:2 () in
  let site = ref None in
  Deploy.deploy_pair tb ~mode ~name:"pod" ~a_entity:"client-ctr"
    ~b_entity:"server-ctr" ~port:7000 ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  (tb, App.of_pair (Option.get !site))

let stream mode size =
  let tb, ep = single mode in
  (Netperf.tcp_stream tb ep ~msg_size:size ~duration:dur ()).Netperf.mbps

let stream_pair mode size =
  let tb, ep = pair mode in
  (Netperf.tcp_stream tb ep ~msg_size:size ~duration:dur ()).Netperf.mbps

let rr mode size =
  let tb, ep = single mode in
  Stats.mean (Netperf.udp_rr tb ep ~msg_size:size ~duration:dur ()).Netperf.latency

let rr_pair mode size =
  let tb, ep = pair mode in
  Stats.mean (Netperf.udp_rr tb ep ~msg_size:size ~duration:dur ()).Netperf.latency

let band name lo v hi =
  Alcotest.(check bool)
    (Printf.sprintf "%s in [%.2f, %.2f] (got %.3f)" name lo hi v)
    true
    (v >= lo && v <= hi)

(* --- Fig. 2 / Fig. 4: BrFusion headline ratios --- *)

let test_nat_latency_penalty () =
  (* Paper: +31% latency for nested NAT vs single-level. *)
  band "NAT/NoCont RR latency" 1.20 (rr `Nat 1280 /. rr `NoCont 1280) 1.50

let test_brfusion_beats_nat_throughput () =
  (* Paper: BrFusion throughput 2.1x NAT at 1280B. *)
  band "BrFusion/NAT throughput" 1.8
    (stream `Brfusion 1280 /. stream `Nat 1280)
    2.6

let test_brfusion_matches_nocont () =
  (* Paper: within 3.5% of NoCont. *)
  let r = stream `Brfusion 1280 /. stream `NoCont 1280 in
  band "BrFusion/NoCont throughput" 0.95 r 1.05;
  let l = rr `Brfusion 1280 /. rr `NoCont 1280 in
  band "BrFusion/NoCont latency" 0.95 l 1.08

let test_nat_stagnates () =
  (* Paper: NAT scales more slowly with message size and stagnates. *)
  let nat_small = stream `Nat 256 and nat_big = stream `Nat 4096 in
  let noc_small = stream `NoCont 256 and noc_big = stream `NoCont 4096 in
  Alcotest.(check bool) "NoCont gains more from larger messages" true
    (noc_big /. noc_small > nat_big /. nat_small)

(* --- Fig. 10: Hostlo headline ratios --- *)

let test_hostlo_vs_pairs () =
  let same = stream_pair `SameNode 1024 in
  let natx = stream_pair `NatX 1024 in
  let hlo = stream_pair `Hostlo 1024 in
  (* Paper: Hostlo +17.9% over NAT; SameNode 5.3x Hostlo (6.1x worst). *)
  band "Hostlo/NAT throughput" 1.05 (hlo /. natx) 1.55;
  band "SameNode/Hostlo throughput" 4.0 (same /. hlo) 7.5

let test_hostlo_latency_flat_and_low () =
  let same = rr_pair `SameNode 1024 in
  let natx = rr_pair `NatX 1024 in
  let ov = rr_pair `Overlay 1024 in
  let hlo_small = rr_pair `Hostlo 64 in
  let hlo = rr_pair `Hostlo 1024 in
  (* Paper: Hostlo ~2x SameNode, far below NAT and Overlay, flat in size. *)
  band "Hostlo/SameNode latency" 1.5 (hlo /. same) 2.5;
  Alcotest.(check bool) "below NAT" true (hlo < natx);
  Alcotest.(check bool) "below Overlay" true (hlo < ov);
  band "Hostlo latency flatness across sizes" 0.85 (hlo /. hlo_small) 1.35

(* --- Fig. 8: boot times --- *)

let test_boot_brfusion_mostly_better () =
  let nat = Nest_experiments.Fig_boot.boot_samples ~mode:`Nat ~runs:30 ~seed:3L in
  let brf =
    Nest_experiments.Fig_boot.boot_samples ~mode:`Brfusion ~runs:30 ~seed:3L
  in
  let s l =
    let s = Stats.create () in
    List.iter (Stats.add s) l;
    s
  in
  let nat = s nat and brf = s brf in
  (* Paper: ~75% of start-up times slightly better with BrFusion; both in
     the hundreds of milliseconds. *)
  Alcotest.(check bool) "NAT boot in docker-like band" true
    (Stats.mean nat > 200.0 && Stats.mean nat < 1000.0);
  Alcotest.(check bool) "BrFusion median at or below NAT (2% noise band)" true
    (Stats.median brf <= Stats.median nat *. 1.02);
  Alcotest.(check bool) "BrFusion mean at or below NAT" true
    (Stats.mean brf <= Stats.mean nat *. 1.01);
  Alcotest.(check bool) "difference is slight (within 25%)" true
    (Stats.mean brf > 0.75 *. Stats.mean nat)

(* --- Fig. 9: cost savings --- *)

let test_cost_savings_shape () =
  let users = Nest_traces.Trace_gen.generate ~seed:2026L ~users:200 in
  let s = Nest_costsim.Report.summarize (Nest_costsim.Report.evaluate users) in
  (* Paper: ~11.4% of users save; most savers above 5%; max ~40%. *)
  band "fraction of users saving" 0.03 s.Nest_costsim.Report.frac_with_savings 0.25;
  band "savers above 5%" 0.4 s.Nest_costsim.Report.frac_savers_over_5pct 1.0;
  band "max relative saving" 0.15 s.Nest_costsim.Report.max_rel_saving 0.70

let () =
  Alcotest.run "calibration"
    [ ( "brfusion",
        [ Alcotest.test_case "NAT latency penalty" `Slow test_nat_latency_penalty;
          Alcotest.test_case "2.1x throughput" `Slow
            test_brfusion_beats_nat_throughput;
          Alcotest.test_case "matches NoCont" `Slow test_brfusion_matches_nocont;
          Alcotest.test_case "NAT stagnates" `Slow test_nat_stagnates ] );
      ( "hostlo",
        [ Alcotest.test_case "throughput ratios" `Slow test_hostlo_vs_pairs;
          Alcotest.test_case "latency ratios" `Slow
            test_hostlo_latency_flat_and_low ] );
      ( "boot",
        [ Alcotest.test_case "brfusion mostly better" `Slow
            test_boot_brfusion_mostly_better ] );
      ( "costsim",
        [ Alcotest.test_case "savings shape" `Slow test_cost_savings_shape ] ) ]
