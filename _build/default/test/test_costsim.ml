(* Tests for the trace generator and the Fig. 9 cost simulation. *)

module Trace = Nest_traces.Trace
module Trace_gen = Nest_traces.Trace_gen
module Aws = Nest_costsim.Aws
module Kube_pack = Nest_costsim.Kube_pack
module Hostlo_pack = Nest_costsim.Hostlo_pack
module Report = Nest_costsim.Report

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Table 2 data *)

let test_aws_models () =
  Alcotest.(check int) "six models" 6 (List.length Aws.models);
  let m = Option.get (Aws.find "2xlarge") in
  Alcotest.(check int) "2xlarge vcpus" 8 m.Aws.vcpus;
  Alcotest.(check (float 1e-9)) "2xlarge price" 0.448 m.Aws.price_per_hour;
  Alcotest.(check (float 1e-4)) "relative cpu of large" 0.0208
    (Aws.rel_cpu (Option.get (Aws.find "large")));
  Alcotest.(check (float 1e-9)) "24xlarge is the unit" 1.0
    (Aws.rel_cpu (Option.get (Aws.find "24xlarge")));
  (* Prices are increasing with size. *)
  let prices = List.map (fun m -> m.Aws.price_per_hour) Aws.models in
  Alcotest.(check bool) "sorted by price" true
    (List.sort compare prices = prices)

let test_cheapest_fitting () =
  (* The paper's motivating pod: 6 vCPU / 24 GB. *)
  let cpu = 6.0 /. 96.0 and mem = 24.0 /. 384.0 in
  (match Aws.cheapest_fitting ~cpu ~mem with
  | Some m -> Alcotest.(check string) "needs a 2xlarge whole" "2xlarge" m.Aws.model_name
  | None -> Alcotest.fail "nothing fits");
  Alcotest.(check bool) "too big for any model" true
    (Aws.cheapest_fitting ~cpu:1.5 ~mem:0.1 = None)

(* ------------------------------------------------------------------ *)
(* Trace generator *)

let test_trace_gen_deterministic () =
  let a = Trace_gen.generate ~seed:5L ~users:30 in
  let b = Trace_gen.generate ~seed:5L ~users:30 in
  Alcotest.(check bool) "same seed, same trace" true
    (Trace.to_csv a = Trace.to_csv b);
  let c = Trace_gen.generate ~seed:6L ~users:30 in
  Alcotest.(check bool) "different seed differs" true
    (Trace.to_csv a <> Trace.to_csv c)

let test_trace_gen_bounds =
  QCheck.Test.make ~name:"generated demands are positive and sub-machine"
    ~count:20 QCheck.int64
    (fun seed ->
      let users = Trace_gen.generate ~seed ~users:10 in
      List.for_all
        (fun u ->
          List.for_all
            (fun p ->
              p.Trace.p_containers <> []
              && List.for_all
                   (fun c ->
                     c.Trace.c_cpu > 0.0 && c.Trace.c_cpu <= 1.0
                     && c.Trace.c_mem > 0.0 && c.Trace.c_mem <= 1.0)
                   p.Trace.p_containers)
            u.Trace.pods)
        users)

let test_trace_csv_roundtrip () =
  let users = Trace_gen.generate ~seed:12L ~users:20 in
  let back = Trace.of_csv (Trace.to_csv users) in
  Alcotest.(check int) "user count" (List.length users) (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "pods" (Trace.user_pods a) (Trace.user_pods b);
      Alcotest.(check int) "containers" (Trace.user_containers a)
        (Trace.user_containers b))
    users back

(* ------------------------------------------------------------------ *)
(* Packing *)

let small_users = Trace_gen.generate ~seed:99L ~users:40

let test_kube_pack_invariants () =
  List.iter
    (fun user ->
      let plan = Kube_pack.pack_user user in
      Kube_pack.check_invariants plan)
    small_users

let test_kube_pack_whole_pod () =
  (* Baseline: every pod's containers co-located on a single VM. *)
  List.iter
    (fun user ->
      let plan = Kube_pack.pack_user user in
      let vm_of_pod = Hashtbl.create 16 in
      List.iter
        (fun vm ->
          List.iter
            (fun (pod_id, _) ->
              match Hashtbl.find_opt vm_of_pod pod_id with
              | None -> Hashtbl.add vm_of_pod pod_id vm
              | Some vm' ->
                if vm' != vm then
                  Alcotest.failf "pod %d of user %d split by the baseline"
                    pod_id user.Trace.u_id)
            vm.Kube_pack.contents)
        plan.Kube_pack.vms)
    small_users

let test_hostlo_improve_never_worse =
  QCheck.Test.make ~name:"hostlo pass never increases cost; invariants hold"
    ~count:15 QCheck.int64
    (fun seed ->
      let users = Trace_gen.generate ~seed ~users:8 in
      List.for_all
        (fun user ->
          let base = Kube_pack.pack_user user in
          let base_cost = Kube_pack.plan_cost base in
          let improved, _ = Hostlo_pack.improve_copy base in
          Kube_pack.check_invariants improved;
          Kube_pack.plan_cost improved <= base_cost +. 1e-9
          (* The baseline plan is untouched. *)
          && abs_float (Kube_pack.plan_cost base -. base_cost) < 1e-12)
        users)

let test_split_rebuy_example () =
  (* The paper's AWS example: one pod of three 2-vCPU/8-GB containers
     (6 vCPU / 24 GB total) costs $0.448/h whole, but $0.336/h split. *)
  let c = { Trace.c_cpu = 2.0 /. 96.0; c_mem = 8.0 /. 384.0 } in
  let user =
    { Trace.u_id = 0;
      pods = [ { Trace.p_id = 0; p_containers = [ c; c; c ] } ] }
  in
  let base = Kube_pack.pack_user user in
  Alcotest.(check (float 1e-9)) "baseline buys a 2xlarge" 0.448
    (Kube_pack.plan_cost base);
  let improved, stats = Hostlo_pack.improve_copy base in
  Alcotest.(check (float 1e-9)) "hostlo splits into 3 larges" 0.336
    (Kube_pack.plan_cost improved);
  Alcotest.(check bool) "containers moved" true
    (stats.Hostlo_pack.containers_moved > 0
    || stats.Hostlo_pack.vms_removed > 0)

let test_report_summary () =
  let users = Trace_gen.generate ~seed:2026L ~users:60 in
  let outcomes = Report.evaluate users in
  let s = Report.summarize outcomes in
  Alcotest.(check int) "population" 60 s.Report.users;
  Alcotest.(check bool) "hostlo never more expensive in aggregate" true
    (s.Report.total_hostlo_cost <= s.Report.total_kube_cost +. 1e-9);
  List.iter
    (fun o ->
      Alcotest.(check bool) "per-user saving sane" true
        (o.Report.saving >= 0.0 && o.Report.rel_saving <= 1.0);
      Alcotest.(check bool) "vm counts positive" true (o.Report.kube_vms > 0))
    outcomes;
  let hist = Report.savings_histogram outcomes ~bins:8 in
  let total = List.fold_left (fun a (_, _, c) -> a + c) 0 hist in
  Alcotest.(check int) "histogram covers all savers" s.Report.users_with_savings
    total

let () =
  Alcotest.run "costsim"
    [ ( "aws",
        [ Alcotest.test_case "table 2 values" `Quick test_aws_models;
          Alcotest.test_case "cheapest fitting" `Quick test_cheapest_fitting ] );
      ( "trace",
        [ Alcotest.test_case "deterministic" `Quick test_trace_gen_deterministic;
          qtest test_trace_gen_bounds;
          Alcotest.test_case "csv roundtrip" `Quick test_trace_csv_roundtrip ] );
      ( "packing",
        [ Alcotest.test_case "kube invariants" `Quick test_kube_pack_invariants;
          Alcotest.test_case "whole-pod placement" `Quick test_kube_pack_whole_pod;
          qtest test_hostlo_improve_never_worse;
          Alcotest.test_case "paper's split example" `Quick test_split_rebuy_example;
          Alcotest.test_case "report summary" `Quick test_report_summary ] ) ]
