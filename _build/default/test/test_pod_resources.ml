(* Tests for §4.3's pod-shared resources: volumes and shared memory. *)

open Nestfusion.Pod_resources

let test_volume_local_single_vm () =
  let t = Volumes.create () in
  Volumes.declare t ~pod:"p" ~volume:"data" Local;
  Volumes.mount t ~pod:"p" ~volume:"data" ~vm:"vm1";
  (* Idempotent on the same VM. *)
  Volumes.mount t ~pod:"p" ~volume:"data" ~vm:"vm1";
  Alcotest.(check (list string)) "one mount" [ "vm1" ]
    (Volumes.mounts t ~pod:"p" ~volume:"data");
  Alcotest.(check bool) "second VM rejected" true
    (try
       Volumes.mount t ~pod:"p" ~volume:"data" ~vm:"vm2";
       false
     with Failure _ -> true)

let test_volume_virtfs_cross_vm () =
  let t = Volumes.create () in
  Volumes.declare t ~pod:"p" ~volume:"shared" Virtfs;
  Volumes.mount t ~pod:"p" ~volume:"shared" ~vm:"vm1";
  Volumes.mount t ~pod:"p" ~volume:"shared" ~vm:"vm2";
  Alcotest.(check (list string)) "both VMs" [ "vm1"; "vm2" ]
    (Volumes.mounts t ~pod:"p" ~volume:"shared");
  Volumes.unmount t ~pod:"p" ~volume:"shared" ~vm:"vm1";
  Alcotest.(check (list string)) "after unmount" [ "vm2" ]
    (Volumes.mounts t ~pod:"p" ~volume:"shared");
  Alcotest.(check bool) "backend introspection" true
    (Volumes.backend_of t ~pod:"p" ~volume:"shared" = Some Virtfs)

let test_volume_errors () =
  let t = Volumes.create () in
  Volumes.declare t ~pod:"p" ~volume:"v" Local;
  Alcotest.(check bool) "duplicate declare" true
    (try
       Volumes.declare t ~pod:"p" ~volume:"v" Virtfs;
       false
     with Failure _ -> true);
  Alcotest.(check bool) "unknown volume" true
    (try
       Volumes.mount t ~pod:"p" ~volume:"ghost" ~vm:"vm1";
       false
     with Failure _ -> true)

let test_shm_guest_local () =
  let t = Shm.create () in
  Shm.register t ~pod:"p" ~segment:"ring" ~size_kb:64 Guest_local;
  Shm.attach t ~pod:"p" ~segment:"ring" ~vm:"vm1";
  Shm.attach t ~pod:"p" ~segment:"ring" ~vm:"vm1";
  Alcotest.(check (list string)) "single VM" [ "vm1" ]
    (Shm.attachments t ~pod:"p" ~segment:"ring");
  Alcotest.(check bool) "cross-VM rejected without MemPipe" true
    (try
       Shm.attach t ~pod:"p" ~segment:"ring" ~vm:"vm2";
       false
     with Failure _ -> true)

let test_shm_mempipe_cross_vm () =
  let t = Shm.create () in
  Shm.register t ~pod:"p" ~segment:"pipe" ~size_kb:256 Mempipe;
  Shm.attach t ~pod:"p" ~segment:"pipe" ~vm:"vm1";
  Shm.attach t ~pod:"p" ~segment:"pipe" ~vm:"vm2";
  Alcotest.(check (list string)) "both fractions" [ "vm1"; "vm2" ]
    (Shm.attachments t ~pod:"p" ~segment:"pipe");
  Shm.detach t ~pod:"p" ~segment:"pipe" ~vm:"vm1";
  Alcotest.(check (list string)) "after detach" [ "vm2" ]
    (Shm.attachments t ~pod:"p" ~segment:"pipe")

let test_shm_totals () =
  let t = Shm.create () in
  Shm.register t ~pod:"p" ~segment:"a" ~size_kb:100 Mempipe;
  Shm.register t ~pod:"p" ~segment:"b" ~size_kb:28 Guest_local;
  Shm.register t ~pod:"q" ~segment:"c" ~size_kb:999 Mempipe;
  Alcotest.(check int) "per-pod total" 128 (Shm.total_kb t ~pod:"p");
  Alcotest.(check int) "other pod" 999 (Shm.total_kb t ~pod:"q")

module Time = Nest_sim.Time

type Nest_net.Payload.app_msg += Note of string

let mempipe_world () =
  let tb = Nestfusion.Testbed.create ~num_vms:3 () in
  let shm = Shm.create () in
  let chan =
    Nestfusion.Mempipe.create tb.Nestfusion.Testbed.host shm ~pod:"p"
      ~name:"ring" ~ring_kb:64 ()
  in
  (tb, shm, chan)

let test_mempipe_delivery () =
  let tb, shm, chan = mempipe_world () in
  let a = Nestfusion.Mempipe.attach chan (Nestfusion.Testbed.vm tb 0) in
  let b = Nestfusion.Mempipe.attach chan (Nestfusion.Testbed.vm tb 1) in
  let c = Nestfusion.Mempipe.attach chan (Nestfusion.Testbed.vm tb 2) in
  Alcotest.(check (list string)) "attachments recorded"
    [ "vm1"; "vm2"; "vm3" ]
    (Shm.attachments shm ~pod:"p" ~segment:"ring");
  let got_b = ref [] and got_c = ref [] and got_a = ref [] in
  let collect cell ~size:_ ~msg =
    match msg with Some (Note s) -> cell := s :: !cell | _ -> ()
  in
  Nestfusion.Mempipe.set_on_recv a (collect got_a);
  Nestfusion.Mempipe.set_on_recv b (collect got_b);
  Nestfusion.Mempipe.set_on_recv c (collect got_c);
  Nestfusion.Mempipe.send a ~size:512 ~msg:(Note "hi") ();
  Nestfusion.Testbed.run_until tb (Time.ms 10);
  Alcotest.(check (list string)) "b received" [ "hi" ] !got_b;
  Alcotest.(check (list string)) "c received" [ "hi" ] !got_c;
  Alcotest.(check (list string)) "sender does not hear itself" [] !got_a;
  Alcotest.(check int) "sent counter" 1 (Nestfusion.Mempipe.sent chan);
  Alcotest.(check int) "delivered to both peers" 2
    (Nestfusion.Mempipe.delivered chan)

let test_mempipe_latency_beats_network () =
  let tb, _, chan = mempipe_world () in
  let a = Nestfusion.Mempipe.attach chan (Nestfusion.Testbed.vm tb 0) in
  let b = Nestfusion.Mempipe.attach chan (Nestfusion.Testbed.vm tb 1) in
  let t0 = ref 0 and rtt = ref 0 in
  Nestfusion.Mempipe.set_on_recv b (fun ~size ~msg:_ ->
      Nestfusion.Mempipe.send b ~size ());
  Nestfusion.Mempipe.set_on_recv a (fun ~size:_ ~msg:_ ->
      rtt := Nest_sim.Engine.now tb.Nestfusion.Testbed.engine - !t0);
  t0 := Nest_sim.Engine.now tb.Nestfusion.Testbed.engine;
  Nestfusion.Mempipe.send a ~size:1024 ();
  Nestfusion.Testbed.run_until tb (Time.ms 10);
  Alcotest.(check bool)
    (Printf.sprintf "shared-memory RTT well under virtio paths (got %dus)"
       (!rtt / 1000))
    true
    (!rtt > 0 && !rtt < Nest_sim.Time.us 25)

let test_mempipe_ring_bound () =
  let tb, _, chan = mempipe_world () in
  let a = Nestfusion.Mempipe.attach chan (Nestfusion.Testbed.vm tb 0) in
  Alcotest.check_raises "oversized message"
    (Failure "Mempipe.send: 100000 bytes exceed the 65536-byte ring")
    (fun () -> Nestfusion.Mempipe.send a ~size:100_000 ())

(* --- VirtFS functional model --- *)

let test_virtfs_cross_vm_coherence () =
  let tb = Nestfusion.Testbed.create ~num_vms:2 () in
  let fs = Nestfusion.Virtfs.share tb.Nestfusion.Testbed.host ~name:"podvol" in
  let m1 = Nestfusion.Virtfs.mount fs (Nestfusion.Testbed.vm tb 0) in
  let m2 = Nestfusion.Virtfs.mount fs (Nestfusion.Testbed.vm tb 1) in
  let seen = ref None in
  Nestfusion.Virtfs.write m1 ~path:"/state/leader" ~data:"vm1" ~k:(fun () ->
      Nestfusion.Virtfs.append m1 ~path:"/state/leader" ~data:"+epoch2"
        ~k:(fun () ->
          Nestfusion.Virtfs.read m2 ~path:"/state/leader" ~k:(fun v ->
              seen := v)));
  Nestfusion.Testbed.run_until tb (Time.ms 50);
  Alcotest.(check (option string)) "write in vm1 visible from vm2"
    (Some "vm1+epoch2") !seen;
  Alcotest.(check (list (pair string int))) "listing"
    [ ("/state/leader", 10) ]
    (Nestfusion.Virtfs.files fs);
  Alcotest.(check bool) "ops counted" true (Nestfusion.Virtfs.ops fs >= 3)

let test_virtfs_missing_file () =
  let tb = Nestfusion.Testbed.create ~num_vms:1 () in
  let fs = Nestfusion.Virtfs.share tb.Nestfusion.Testbed.host ~name:"v" in
  let m = Nestfusion.Virtfs.mount fs (Nestfusion.Testbed.vm tb 0) in
  let seen = ref (Some "sentinel") in
  Nestfusion.Virtfs.read m ~path:"/nope" ~k:(fun v -> seen := v);
  Nestfusion.Testbed.run_until tb (Time.ms 50);
  Alcotest.(check (option string)) "absent file" None !seen;
  Alcotest.(check bool) "exists" false (Nestfusion.Virtfs.exists fs ~path:"/nope")

let test_virtfs_ops_cost_time () =
  let tb = Nestfusion.Testbed.create ~num_vms:1 () in
  let fs = Nestfusion.Virtfs.share tb.Nestfusion.Testbed.host ~name:"v" in
  let m = Nestfusion.Virtfs.mount fs (Nestfusion.Testbed.vm tb 0) in
  let t0 = Nest_sim.Engine.now tb.Nestfusion.Testbed.engine in
  let done_at = ref 0 in
  Nestfusion.Virtfs.write m ~path:"/f" ~data:(String.make 4096 'x')
    ~k:(fun () -> done_at := Nest_sim.Engine.now tb.Nestfusion.Testbed.engine);
  Nestfusion.Testbed.run_until tb (Time.ms 50);
  let us = (!done_at - t0) / 1000 in
  Alcotest.(check bool)
    (Printf.sprintf "9p round trip in a plausible band (got %dus)" us)
    true
    (us >= 8 && us <= 60)

let () =
  Alcotest.run "pod-resources"
    [ ( "volumes",
        [ Alcotest.test_case "local single VM" `Quick test_volume_local_single_vm;
          Alcotest.test_case "virtfs cross VM" `Quick test_volume_virtfs_cross_vm;
          Alcotest.test_case "errors" `Quick test_volume_errors ] );
      ( "shared memory",
        [ Alcotest.test_case "guest local" `Quick test_shm_guest_local;
          Alcotest.test_case "mempipe cross VM" `Quick test_shm_mempipe_cross_vm;
          Alcotest.test_case "totals" `Quick test_shm_totals ] );
      ( "mempipe transport",
        [ Alcotest.test_case "delivery" `Quick test_mempipe_delivery;
          Alcotest.test_case "latency" `Quick test_mempipe_latency_beats_network;
          Alcotest.test_case "ring bound" `Quick test_mempipe_ring_bound ] );
      ( "virtfs",
        [ Alcotest.test_case "cross-VM coherence" `Quick
            test_virtfs_cross_vm_coherence;
          Alcotest.test_case "missing file" `Quick test_virtfs_missing_file;
          Alcotest.test_case "op timing" `Quick test_virtfs_ops_cost_time ] ) ]
