(* Unit + property tests for the networking substrate. *)

open Nest_net
module Engine = Nest_sim.Engine

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Addresses *)

let test_mac_roundtrip =
  QCheck.Test.make ~name:"mac of_string/to_string roundtrip" ~count:300
    QCheck.(int_bound ((1 lsl 30) - 1))
    (fun i ->
      let m = Mac.of_int i in
      Mac.equal m (Mac.of_string (Mac.to_string m)))

let test_mac_basics () =
  Alcotest.(check string) "format" "00:00:00:00:01:02"
    (Mac.to_string (Mac.of_int 0x0102));
  Alcotest.(check bool) "broadcast" true (Mac.is_broadcast Mac.broadcast);
  Alcotest.check_raises "bad parse" (Invalid_argument "Mac.of_string: zz")
    (fun () -> ignore (Mac.of_string "zz"))

let test_mac_alloc_unique () =
  let a = Mac.Alloc.create () in
  let macs = List.init 1000 (fun _ -> Mac.Alloc.fresh a) in
  Alcotest.(check int) "all distinct" 1000
    (List.length (List.sort_uniq Mac.compare macs));
  List.iter
    (fun m ->
      let hi = Mac.to_int m lsr 40 in
      Alcotest.(check bool) "locally administered unicast" true
        (hi land 0x02 = 0x02 && hi land 0x01 = 0))
    macs

let test_ipv4_roundtrip =
  QCheck.Test.make ~name:"ipv4 of_string/to_string roundtrip" ~count:300
    QCheck.(int_bound 0xffffff)
    (fun i ->
      let ip = Ipv4.of_int (i * 199) in
      Ipv4.equal ip (Ipv4.of_string (Ipv4.to_string ip)))

let test_cidr () =
  let c = Ipv4.cidr_of_string "10.1.2.0/24" in
  Alcotest.(check bool) "member" true (Ipv4.in_subnet c (Ipv4.of_string "10.1.2.77"));
  Alcotest.(check bool) "non member" false
    (Ipv4.in_subnet c (Ipv4.of_string "10.1.3.1"));
  Alcotest.(check string) "network" "10.1.2.0" (Ipv4.to_string (Ipv4.network c));
  Alcotest.(check string) "broadcast" "10.1.2.255"
    (Ipv4.to_string (Ipv4.broadcast_addr c));
  Alcotest.(check int) "hosts" 254 (Ipv4.host_count c);
  Alcotest.(check string) "host 5" "10.1.2.5" (Ipv4.to_string (Ipv4.host c 5));
  (* Base is masked. *)
  Alcotest.(check string) "masked base" "192.168.0.0/16"
    (Ipv4.cidr_to_string (Ipv4.cidr_of_string "192.168.3.4/16"))

(* ------------------------------------------------------------------ *)
(* Packet / frame *)

let udp_pkt ?(src = "10.0.0.1") ?(dst = "10.0.0.2") ?(sport = 1111)
    ?(dport = 2222) ?(size = 100) () =
  Packet.make ~src:(Ipv4.of_string src) ~dst:(Ipv4.of_string dst)
    (Packet.Udp { src_port = sport; dst_port = dport; payload = Payload.raw size })

let test_packet_len () =
  Alcotest.(check int) "udp len = 20 + 8 + payload" 128
    (Packet.len (udp_pkt ~size:100 ()));
  let tcp =
    Packet.make ~src:Ipv4.localhost ~dst:Ipv4.localhost
      (Packet.Tcp
         { seg =
             { Tcp_wire.src_port = 1; dst_port = 2; seq = 0; ack_seq = 0;
               flags = Tcp_wire.flags_none; window = 0; len = 500; msgs = [] };
           payload = Payload.raw 500 })
  in
  Alcotest.(check int) "tcp len = 20 + 20 + payload" 540 (Packet.len tcp)

let test_packet_rewrites () =
  let p = udp_pkt () in
  let p' =
    Packet.with_ports ~src_port:9 (Packet.with_addrs ~src:(Ipv4.of_string "1.2.3.4") p)
  in
  Alcotest.(check (option (pair int int))) "ports" (Some (9, 2222)) (Packet.ports p');
  Alcotest.(check string) "src" "1.2.3.4" (Ipv4.to_string p'.Packet.src);
  Alcotest.(check string) "dst unchanged" "10.0.0.2" (Ipv4.to_string p'.Packet.dst)

let test_ttl () =
  let rec burn p n =
    match Packet.decrement_ttl p with
    | None -> n
    | Some p' -> burn p' (n + 1)
  in
  Alcotest.(check int) "default ttl allows 63 hops" 63 (burn (udp_pkt ()) 0)

let test_frame_len_minimum () =
  let f =
    Frame.make ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2)
      (Frame.Ipv4_body (udp_pkt ~size:1 ()))
  in
  Alcotest.(check int) "runt padded to 60" 60 (Frame.len f)

let test_trace_shared_across_reframe () =
  let p = Packet.make ~traced:true ~src:Ipv4.localhost ~dst:Ipv4.localhost
      (Packet.Icmp_echo { id = 1; seq = 1; reply = false })
  in
  let f1 = Frame.make ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2) (Frame.Ipv4_body p) in
  Frame.record_hop f1 "a";
  (* NAT rewrite + new frame at the next hop. *)
  let p2 = Packet.with_addrs ~dst:(Ipv4.of_string "9.9.9.9") p in
  let f2 = Frame.make ~src:(Mac.of_int 3) ~dst:(Mac.of_int 4) (Frame.Ipv4_body p2) in
  Frame.record_hop f2 "b";
  Alcotest.(check (list string)) "trace survives rewrite and reframe"
    [ "a"; "b" ] (Packet.hops p)

(* ------------------------------------------------------------------ *)
(* Ipam *)

let test_ipam_unique =
  QCheck.Test.make ~name:"ipam allocations are unique and in-subnet" ~count:50
    QCheck.(int_range 1 200)
    (fun n ->
      let pool = Ipv4.cidr_of_string "172.30.0.0/22" in
      let ipam = Ipam.create pool in
      let ips = List.init n (fun _ -> Ipam.alloc ipam) in
      List.length (List.sort_uniq Ipv4.compare ips) = n
      && List.for_all (Ipv4.in_subnet pool) ips)

let test_ipam_exhaustion_and_free () =
  let ipam = Ipam.create (Ipv4.cidr_of_string "10.9.0.0/30") in
  (* /30 has 2 usable hosts. *)
  Alcotest.(check int) "capacity" 2 (Ipam.capacity ipam);
  let a = Ipam.alloc ipam in
  let _b = Ipam.alloc ipam in
  Alcotest.check_raises "exhausted" (Failure "Ipam.alloc: pool exhausted")
    (fun () -> ignore (Ipam.alloc ipam));
  Ipam.free ipam a;
  Alcotest.check_raises "double free"
    (Invalid_argument ("Ipam.free: not allocated: " ^ Ipv4.to_string a))
    (fun () -> Ipam.free ipam a);
  let c = Ipam.alloc ipam in
  Alcotest.(check bool) "freed address reusable" true (Ipv4.equal a c)

let test_ipam_reserved () =
  let gw = Ipv4.of_string "10.8.0.1" in
  let ipam = Ipam.create ~reserved:[ gw ] (Ipv4.cidr_of_string "10.8.0.0/29") in
  let all = List.init (Ipam.capacity ipam) (fun _ -> Ipam.alloc ipam) in
  Alcotest.(check bool) "gateway never handed out" false
    (List.exists (Ipv4.equal gw) all)

(* ------------------------------------------------------------------ *)
(* Route *)

let dummy_dev name = Dev.create ~name ~mac:(Mac.of_int 42) ()

let test_route_lpm () =
  let rt = Route.create () in
  let d0 = dummy_dev "default" and d1 = dummy_dev "wide" and d2 = dummy_dev "narrow" in
  Route.add_default rt ~gateway:(Ipv4.of_string "192.168.0.1") ~dev:d0 ();
  Route.add rt ~dst:(Ipv4.cidr_of_string "10.0.0.0/8") ~dev:d1 ();
  Route.add rt ~dst:(Ipv4.cidr_of_string "10.0.5.0/24") ~dev:d2 ();
  let via ip =
    match Route.lookup rt (Ipv4.of_string ip) with
    | Some e -> e.Route.dev.Dev.name
    | None -> "none"
  in
  Alcotest.(check string) "longest prefix" "narrow" (via "10.0.5.9");
  Alcotest.(check string) "wider" "wide" (via "10.9.0.1");
  Alcotest.(check string) "default" "default" (via "8.8.8.8");
  let e = Option.get (Route.lookup rt (Ipv4.of_string "8.8.8.8")) in
  Alcotest.(check string) "gateway next hop" "192.168.0.1"
    (Ipv4.to_string (Route.next_hop e (Ipv4.of_string "8.8.8.8")));
  let e2 = Option.get (Route.lookup rt (Ipv4.of_string "10.0.5.9")) in
  Alcotest.(check string) "on-link next hop" "10.0.5.9"
    (Ipv4.to_string (Route.next_hop e2 (Ipv4.of_string "10.0.5.9")));
  Route.remove_dev rt d2;
  Alcotest.(check string) "after removal" "wide" (via "10.0.5.9")

let test_route_recency_ties () =
  let rt = Route.create () in
  let d1 = dummy_dev "old" and d2 = dummy_dev "new" in
  Route.add rt ~dst:(Ipv4.cidr_of_string "10.0.0.0/24") ~dev:d1 ();
  Route.add rt ~dst:(Ipv4.cidr_of_string "10.0.0.0/24") ~dev:d2 ();
  let e = Option.get (Route.lookup rt (Ipv4.of_string "10.0.0.5")) in
  Alcotest.(check string) "most recent equal-prefix wins" "new" e.Route.dev.Dev.name

(* ------------------------------------------------------------------ *)
(* Netfilter / conntrack *)

let test_netfilter_order_and_mangle () =
  let nf = Netfilter.create () in
  let order = ref [] in
  let mk name verdict =
    { Netfilter.rule_name = name;
      matches = (fun _ _ -> true);
      action =
        (fun _ p ->
          order := name :: !order;
          verdict p) }
  in
  Netfilter.append nf Netfilter.Input (mk "first" (fun p ->
      Netfilter.Mangle (Packet.with_addrs ~src:(Ipv4.of_string "7.7.7.7") p)));
  Netfilter.append nf Netfilter.Input (mk "second" (fun _ -> Netfilter.Accept));
  (match Netfilter.run nf Netfilter.Input Netfilter.no_ctx (udp_pkt ()) with
  | Some p ->
    Alcotest.(check string) "mangled src visible downstream" "7.7.7.7"
      (Ipv4.to_string p.Packet.src)
  | None -> Alcotest.fail "dropped");
  Alcotest.(check (list string)) "rule order" [ "first"; "second" ]
    (List.rev !order);
  Alcotest.(check int) "rule count" 2 (Netfilter.rule_count nf Netfilter.Input)

let test_netfilter_drop_and_remove () =
  let nf = Netfilter.create () in
  Nat.drop_from nf ~name:"deny" ~hook:Netfilter.Forward
    ~src_subnet:(Ipv4.cidr_of_string "10.0.0.0/8");
  Alcotest.(check bool) "dropped" true
    (Netfilter.run nf Netfilter.Forward Netfilter.no_ctx (udp_pkt ()) = None);
  Netfilter.remove nf Netfilter.Forward "deny";
  Alcotest.(check bool) "accepted after removal" true
    (Netfilter.run nf Netfilter.Forward Netfilter.no_ctx (udp_pkt ()) <> None)

let test_conntrack_snat_reverse =
  QCheck.Test.make ~name:"snat then reply-translate restores the original flow"
    ~count:200
    QCheck.(quad (int_bound 0xffff) (int_bound 0xffff) (int_range 1 65000) (int_range 1 65000))
    (fun (s, d, sp, dp) ->
      let ct = Conntrack.create () in
      let nat_ip = Ipv4.of_string "10.0.0.1" in
      let pkt =
        Packet.make
          ~src:(Ipv4.of_int (0x0a640000 lor s))
          ~dst:(Ipv4.of_int (0x0a650000 lor d))
          (Packet.Udp { src_port = sp; dst_port = dp; payload = Payload.raw 10 })
      in
      let out = Conntrack.snat ct pkt ~to_ip:nat_ip in
      (* Build the reply to the translated packet. *)
      let out_sp, out_dp = Option.get (Packet.ports out) in
      let reply =
        Packet.make ~src:out.Packet.dst ~dst:out.Packet.src
          (Packet.Udp { src_port = out_dp; dst_port = out_sp; payload = Payload.raw 10 })
      in
      let back, translated = Conntrack.translate ct reply in
      let back_sp, back_dp = Option.get (Packet.ports back) in
      translated
      && Ipv4.equal back.Packet.dst pkt.Packet.src
      && back_dp = sp && back_sp = dp)

let test_conntrack_snat_stable () =
  let ct = Conntrack.create () in
  let nat_ip = Ipv4.of_string "10.0.0.1" in
  let p = udp_pkt () in
  let a = Conntrack.snat ct p ~to_ip:nat_ip in
  let b = Conntrack.snat ct p ~to_ip:nat_ip in
  Alcotest.(check bool) "same binding for same flow" true
    (Packet.ports a = Packet.ports b);
  Alcotest.(check int) "two entries (fwd + reply)" 2 (Conntrack.entry_count ct)

let test_conntrack_dnat () =
  let ct = Conntrack.create () in
  let p = udp_pkt ~dst:"10.0.0.2" ~dport:8080 () in
  let fwd = Conntrack.dnat ct p ~to_ip:(Ipv4.of_string "172.17.0.5") ~to_port:80 in
  Alcotest.(check string) "redirected" "172.17.0.5" (Ipv4.to_string fwd.Packet.dst);
  Alcotest.(check (option (pair int int))) "port" (Some (1111, 80)) (Packet.ports fwd);
  (* Reply from the container must be re-sourced as the published addr. *)
  let reply =
    Packet.make ~src:(Ipv4.of_string "172.17.0.5") ~dst:p.Packet.src
      (Packet.Udp { src_port = 80; dst_port = 1111; payload = Payload.raw 10 })
  in
  let back, translated = Conntrack.translate ct reply in
  Alcotest.(check bool) "reply translated" true translated;
  Alcotest.(check string) "source restored to published address" "10.0.0.2"
    (Ipv4.to_string back.Packet.src)

(* ------------------------------------------------------------------ *)
(* Devices: bridge, veth, tap *)

let free_hop () = Hop.free (Engine.create ())

let test_bridge_learning_and_flood () =
  let e = Engine.create () in
  let hop = Hop.free e in
  let br = Bridge.create e ~name:"br0" ~hop ~self_mac:(Mac.of_int 0xff) () in
  let mk i =
    let d = Dev.create ~name:(Printf.sprintf "p%d" i) ~mac:(Mac.of_int i) () in
    let received = ref [] in
    Dev.set_tx d (fun f -> received := f :: !received);
    (d, received)
  in
  let d1, r1 = mk 1 and d2, r2 = mk 2 and d3, r3 = mk 3 in
  Bridge.attach br d1;
  Bridge.attach br d2;
  Bridge.attach br d3;
  let frame ~src ~dst =
    Frame.make ~src:(Mac.of_int src) ~dst:(Mac.of_int dst)
      (Frame.Ipv4_body (udp_pkt ()))
  in
  (* Unknown destination: flood to all but ingress. *)
  Dev.deliver d1 (frame ~src:1 ~dst:2);
  Engine.run e;
  Alcotest.(check int) "flooded to p2" 1 (List.length !r2);
  Alcotest.(check int) "flooded to p3" 1 (List.length !r3);
  Alcotest.(check int) "not back out ingress" 0 (List.length !r1);
  (* Now mac 1 is learned: reply unicasts. *)
  Dev.deliver d2 (frame ~src:2 ~dst:1);
  Engine.run e;
  Alcotest.(check int) "unicast to learned port" 1 (List.length !r1);
  Alcotest.(check int) "no flood to p3" 1 (List.length !r3);
  Alcotest.(check bool) "fdb has both macs" true
    (List.length (Bridge.fdb br) >= 2);
  Bridge.detach br d1;
  Alcotest.(check int) "ports after detach" 2 (List.length (Bridge.ports br));
  Alcotest.(check bool) "fdb entry dropped with port" true
    (not (List.exists (fun (m, _) -> Mac.equal m (Mac.of_int 1)) (Bridge.fdb br)))

let test_bridge_self_delivery () =
  let e = Engine.create () in
  let br = Bridge.create e ~name:"br0" ~hop:(Hop.free e) ~self_mac:(Mac.of_int 0xbb) () in
  let self = Bridge.self_dev br in
  let up = ref 0 in
  Dev.set_rx self (fun _ -> incr up);
  let port = Dev.create ~name:"p" ~mac:(Mac.of_int 5) () in
  Bridge.attach br port;
  Dev.deliver port
    (Frame.make ~src:(Mac.of_int 5) ~dst:(Mac.of_int 0xbb)
       (Frame.Ipv4_body (udp_pkt ())));
  Engine.run e;
  Alcotest.(check int) "frame to self mac goes up the stack" 1 !up

let test_veth_pair () =
  let e = Engine.create () in
  let hop = Hop.make (Nest_sim.Exec.create e ~name:"x") ~fixed_ns:250 in
  let a, b =
    Veth.pair ~a_name:"a" ~a_mac:(Mac.of_int 1) ~b_name:"b" ~b_mac:(Mac.of_int 2)
      ~ab_hop:hop ~ba_hop:hop ()
  in
  let got = ref None in
  Dev.set_rx b (fun f -> got := Some (Engine.now e, Frame.len f));
  Dev.transmit a (Frame.make ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2)
                    (Frame.Ipv4_body (udp_pkt ())));
  Engine.run e;
  (match !got with
  | Some (t, _) -> Alcotest.(check int) "crossing paid the hop" 250 t
  | None -> Alcotest.fail "frame lost");
  Alcotest.(check int) "tx counted" 1 a.Dev.stats.Dev.tx_packets;
  Alcotest.(check int) "rx counted" 1 b.Dev.stats.Dev.rx_packets

let test_tap_normal_bidirectional () =
  let e = Engine.create () in
  let tap = Tap.create e ~name:"tap0" ~mode:Tap.Normal ~hop:(Hop.free e)
      ~mac:(Mac.of_int 0x10) () in
  let q = Tap.add_queue tap ~owner:"vm1" in
  let to_guest = ref 0 and to_host = ref 0 in
  Tap.queue_set_backend q (fun _ -> incr to_guest);
  Dev.set_rx (Tap.host_dev tap) (fun _ -> incr to_host);
  let f = Frame.make ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2)
      (Frame.Ipv4_body (udp_pkt ())) in
  Tap.queue_write q f;
  Dev.transmit (Tap.host_dev tap) f;
  Engine.run e;
  Alcotest.(check int) "guest->host" 1 !to_host;
  Alcotest.(check int) "host->guest" 1 !to_guest

let test_tap_loopback_reflects_to_all () =
  let e = Engine.create () in
  let tap = Tap.create e ~name:"hlo" ~mode:Tap.Loopback ~hop:(Hop.free e)
      ~mac:(Mac.of_int 0x20) () in
  let q1 = Tap.add_queue tap ~owner:"vm1" in
  let q2 = Tap.add_queue tap ~owner:"vm2" in
  let q3 = Tap.add_queue tap ~owner:"vm3" in
  let hits = Array.make 3 0 in
  List.iteri
    (fun i q -> Tap.queue_set_backend q (fun _ -> hits.(i) <- hits.(i) + 1))
    [ q1; q2; q3 ];
  Tap.queue_write q2
    (Frame.make ~src:(Mac.of_int 9) ~dst:Mac.broadcast
       (Frame.Ipv4_body (udp_pkt ())));
  Engine.run e;
  Alcotest.(check (array int)) "every queue including the writer's"
    [| 1; 1; 1 |] hits;
  Alcotest.(check int) "reflection counter" 3 (Tap.reflected tap);
  Alcotest.check_raises "no host side on loopback taps"
    (Failure "Tap.host_dev: loopback taps have no host side") (fun () ->
      ignore (Tap.host_dev tap))

let test_dev_down_drops () =
  let d = dummy_dev "down0" in
  d.Dev.up <- false;
  Dev.transmit d (Frame.make ~src:(Mac.of_int 1) ~dst:(Mac.of_int 2)
                    (Frame.Ipv4_body (udp_pkt ())));
  Alcotest.(check int) "dropped" 1 d.Dev.stats.Dev.drops;
  ignore (free_hop ())

let () =
  Alcotest.run "net"
    [ ( "addresses",
        [ qtest test_mac_roundtrip;
          Alcotest.test_case "mac basics" `Quick test_mac_basics;
          Alcotest.test_case "mac alloc" `Quick test_mac_alloc_unique;
          qtest test_ipv4_roundtrip;
          Alcotest.test_case "cidr" `Quick test_cidr ] );
      ( "packets",
        [ Alcotest.test_case "lengths" `Quick test_packet_len;
          Alcotest.test_case "rewrites" `Quick test_packet_rewrites;
          Alcotest.test_case "ttl" `Quick test_ttl;
          Alcotest.test_case "frame minimum" `Quick test_frame_len_minimum;
          Alcotest.test_case "trace sharing" `Quick
            test_trace_shared_across_reframe ] );
      ( "ipam",
        [ qtest test_ipam_unique;
          Alcotest.test_case "exhaustion/free" `Quick test_ipam_exhaustion_and_free;
          Alcotest.test_case "reserved" `Quick test_ipam_reserved ] );
      ( "routing",
        [ Alcotest.test_case "lpm" `Quick test_route_lpm;
          Alcotest.test_case "recency ties" `Quick test_route_recency_ties ] );
      ( "netfilter",
        [ Alcotest.test_case "order+mangle" `Quick test_netfilter_order_and_mangle;
          Alcotest.test_case "drop+remove" `Quick test_netfilter_drop_and_remove;
          qtest test_conntrack_snat_reverse;
          Alcotest.test_case "snat stable" `Quick test_conntrack_snat_stable;
          Alcotest.test_case "dnat" `Quick test_conntrack_dnat ] );
      ( "devices",
        [ Alcotest.test_case "bridge learning" `Quick test_bridge_learning_and_flood;
          Alcotest.test_case "bridge self" `Quick test_bridge_self_delivery;
          Alcotest.test_case "veth" `Quick test_veth_pair;
          Alcotest.test_case "tap normal" `Quick test_tap_normal_bidirectional;
          Alcotest.test_case "tap loopback" `Quick test_tap_loopback_reflects_to_all;
          Alcotest.test_case "down drops" `Quick test_dev_down_drops ] ) ]
