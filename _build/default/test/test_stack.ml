(* Tests for the per-namespace IP stack: ARP, local delivery, forwarding,
   sockets, and TCP edge behaviour. *)

open Nest_net
module Engine = Nest_sim.Engine
module Exec = Nest_sim.Exec
module Time = Nest_sim.Time

let cheap_costs e =
  let sys_exec = Exec.create e ~name:"sys" in
  let soft_exec = Exec.create e ~name:"soft" in
  { Stack.tx = Hop.make sys_exec ~fixed_ns:100;
    rx = Hop.make soft_exec ~fixed_ns:100;
    forward = Hop.make soft_exec ~fixed_ns:50;
    nat = Hop.make soft_exec ~fixed_ns:50;
    nat_per_rule_ns = 10;
    local = Hop.make sys_exec ~fixed_ns:100;
    syscall = Hop.make sys_exec ~fixed_ns:50;
    wakeup_delay_ns = 0 }

let ip = Ipv4.of_string
let cidr = Ipv4.cidr_of_string

(* Two namespaces joined by a veth pair on 192.168.1.0/24. *)
let two_ns () =
  let e = Engine.create () in
  let a = Stack.create e ~name:"a" ~costs:(cheap_costs e) () in
  let b = Stack.create e ~name:"b" ~costs:(cheap_costs e) () in
  let hop = Hop.free e in
  let da, db =
    Veth.pair ~a_name:"a0" ~a_mac:(Mac.of_int 0xa) ~b_name:"b0"
      ~b_mac:(Mac.of_int 0xb) ~ab_hop:hop ~ba_hop:hop ()
  in
  Stack.attach a da;
  Stack.add_addr a da (ip "192.168.1.1") (cidr "192.168.1.0/24");
  Stack.attach b db;
  Stack.add_addr b db (ip "192.168.1.2") (cidr "192.168.1.0/24");
  (e, a, b, da, db)

let test_arp_resolution () =
  let e, a, b, _, _ = two_ns () in
  let got = ref false in
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> got := true) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  Stack.Udp.sendto c ~dst:(ip "192.168.1.2") ~dst_port:53 (Payload.raw 32);
  Engine.run e;
  Alcotest.(check bool) "delivered after ARP" true !got;
  (* Both sides learned each other. *)
  Alcotest.(check bool) "a cached b" true
    (List.mem_assoc (ip "192.168.1.2") (Stack.arp_cache a));
  Alcotest.(check bool) "b cached a (gratuitous from request)" true
    (List.mem_assoc (ip "192.168.1.1") (Stack.arp_cache b));
  (* Second datagram goes through without a new ARP exchange: count
     deliveries. *)
  Stack.Udp.sendto c ~dst:(ip "192.168.1.2") ~dst_port:53 (Payload.raw 32);
  Engine.run e;
  Alcotest.(check int) "second delivery" 2 (Stack.counters b).Stack.delivered

let test_local_delivery_over_lo () =
  let e = Engine.create () in
  let a = Stack.create e ~name:"solo" ~costs:(cheap_costs e) () in
  let got = ref 0 in
  let _s = Stack.Udp.bind a ~port:9000 (fun _ ~src:_ _ -> incr got) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  Stack.Udp.sendto c ~dst:Ipv4.localhost ~dst_port:9000 (Payload.raw 16);
  Stack.Udp.sendto c ~dst:(ip "127.0.0.42") ~dst_port:9000 (Payload.raw 16);
  Engine.run e;
  Alcotest.(check int) "any 127/8 address delivers locally" 2 !got

let test_no_socket_counted () =
  let e, a, b, _, _ = two_ns () in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  Stack.Udp.sendto c ~dst:(ip "192.168.1.2") ~dst_port:9999 (Payload.raw 16);
  Engine.run e;
  Alcotest.(check int) "dropped_no_socket" 1
    (Stack.counters b).Stack.dropped_no_socket

let test_forwarding_disabled_drops () =
  (* b is not a router: a packet not addressed to it must die there. *)
  let e, a, b, _, _ = two_ns () in
  Stack.set_ip_forward b false;
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  (* Static route pushes an off-subnet destination via the veth. *)
  Route.add (Stack.routes a) ~dst:(cidr "10.50.0.0/16")
    ~dev:(Option.get (Stack.find_dev a "a0"))
    ~gateway:(ip "192.168.1.2") ();
  Stack.Udp.sendto c ~dst:(ip "10.50.0.1") ~dst_port:1 (Payload.raw 16);
  Engine.run e;
  Alcotest.(check int) "not forwarded" 0 (Stack.counters b).Stack.forwarded_pkts;
  Alcotest.(check int) "counted as unroutable" 1
    (Stack.counters b).Stack.dropped_no_route

let test_firewall_drop_counted () =
  let e, a, b, _, _ = two_ns () in
  Nat.drop_from (Stack.nf b) ~name:"deny-a" ~hook:Netfilter.Input
    ~src_subnet:(cidr "192.168.1.0/24");
  let got = ref false in
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> got := true) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  Stack.Udp.sendto c ~dst:(ip "192.168.1.2") ~dst_port:53 (Payload.raw 16);
  Engine.run e;
  Alcotest.(check bool) "filtered" false !got;
  Alcotest.(check int) "counter" 1 (Stack.counters b).Stack.dropped_filtered

let test_udp_bind_conflicts () =
  let e = Engine.create () in
  let a = Stack.create e ~name:"x" ~costs:(cheap_costs e) () in
  let _s = Stack.Udp.bind a ~port:5000 (fun _ ~src:_ _ -> ()) in
  Alcotest.check_raises "port busy"
    (Failure "Stack.Udp.bind: port 5000 busy in x") (fun () ->
      ignore (Stack.Udp.bind a ~port:5000 (fun _ ~src:_ _ -> ())));
  let eph1 = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  let eph2 = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  Alcotest.(check bool) "distinct ephemerals" true
    (Stack.Udp.port eph1 <> Stack.Udp.port eph2);
  Stack.Udp.close eph1;
  Alcotest.(check bool) "ephemeral range" true (Stack.Udp.port eph2 >= 49152)

let test_tcp_rst_on_closed_port () =
  let e, a, b, _, _ = two_ns () in
  let closed = ref false in
  let c =
    Stack.Tcp.connect a ~dst:(ip "192.168.1.2") ~port:7777
      ~on_established:(fun _ -> ())
      ~on_close:(fun () -> closed := true)
      ()
  in
  Engine.run e;
  Alcotest.(check bool) "connection reset" true !closed;
  Alcotest.(check bool) "closed state" true (Stack.Tcp.is_closed c);
  Alcotest.(check int) "b sent a RST" 1 (Stack.counters b).Stack.rst_sent

let test_tcp_backpressure_and_writable () =
  let e, a, b, _, _ = two_ns () in
  let received = ref 0 in
  Stack.Tcp.listen b ~port:80 ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes ~msgs:_ ->
          received := !received + bytes));
  let writable_fired = ref false in
  let sent = ref 0 in
  let _c =
    Stack.Tcp.connect a ~dst:(ip "192.168.1.2") ~port:80
      ~on_established:(fun conn ->
        let limit = Stack.Tcp.sndbuf_limit conn in
        (* Fill the buffer past its limit: the last send must fail. *)
        Alcotest.(check bool) "first send fits" true
          (Stack.Tcp.send conn ~size:limit ());
        sent := limit;
        Alcotest.(check bool) "overflow send rejected" false
          (Stack.Tcp.send conn ~size:1 ());
        Stack.Tcp.set_on_writable conn (fun () ->
            writable_fired := true;
            Alcotest.(check bool) "accepted after drain" true
              (Stack.Tcp.send conn ~size:1000 ());
            sent := !sent + 1000))
      ()
  in
  Engine.run e;
  Alcotest.(check bool) "writable callback fired" true !writable_fired;
  Alcotest.(check int) "all bytes delivered" !sent !received

let test_tcp_retransmit_recovers_from_outage () =
  let e, a, b, da, _ = two_ns () in
  let received = ref 0 in
  Stack.Tcp.listen b ~port:80 ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes ~msgs:_ ->
          received := !received + bytes));
  let c =
    Stack.Tcp.connect a ~dst:(ip "192.168.1.2") ~port:80
      ~on_established:(fun _ -> ())
      ()
  in
  Engine.run e;
  Alcotest.(check bool) "established" true (Stack.Tcp.is_established c);
  (* Yank the client device, send during the outage (all segments are
     lost at the device), then restore it: the RTO must recover. *)
  da.Dev.up <- false;
  ignore (Stack.Tcp.send c ~size:40_000 ());
  Engine.run ~until:(Engine.now e + Time.ms 120) e;
  Alcotest.(check int) "nothing delivered during outage" 0 !received;
  da.Dev.up <- true;
  Engine.run ~until:(Engine.now e + Time.sec 60) e;
  Alcotest.(check int) "transfer completes despite outage" 40_000 !received;
  Alcotest.(check bool) "retransmissions happened" true
    (Stack.Tcp.retransmits c > 0)

let test_tcp_close_sequence () =
  let e, a, b, _, _ = two_ns () in
  let server_conn = ref None in
  let server_closed = ref false in
  Stack.Tcp.listen b ~port:80 ~on_accept:(fun conn ->
      server_conn := Some conn;
      Stack.Tcp.set_on_close conn (fun () -> server_closed := true));
  let c =
    Stack.Tcp.connect a ~dst:(ip "192.168.1.2") ~port:80
      ~on_established:(fun _ -> ())
      ()
  in
  Engine.run e;
  Alcotest.(check bool) "established" true (Stack.Tcp.is_established c);
  Stack.Tcp.close c;
  Engine.run e;
  Alcotest.(check bool) "active side closed" true (Stack.Tcp.is_closed c);
  Alcotest.(check bool) "passive side closed" true
    (match !server_conn with Some sc -> Stack.Tcp.is_closed sc | None -> false);
  Alcotest.(check bool) "close callback" true !server_closed

let test_tcp_endpoints () =
  let e, a, _, _, _ = two_ns () in
  let c =
    Stack.Tcp.connect a ~dst:(ip "192.168.1.2") ~port:80
      ~on_established:(fun _ -> ())
      ()
  in
  ignore e;
  let lip, lport = Stack.Tcp.local_endpoint c in
  let rip, rport = Stack.Tcp.remote_endpoint c in
  Alcotest.(check string) "local ip from route" "192.168.1.1" (Ipv4.to_string lip);
  Alcotest.(check bool) "ephemeral local port" true (lport >= 49152);
  Alcotest.(check string) "remote" "192.168.1.2" (Ipv4.to_string rip);
  Alcotest.(check int) "remote port" 80 rport

let test_ping_rtt_accounts_hops () =
  let e, a, _, _, _ = two_ns () in
  let rtt = ref 0 in
  Stack.ping a ~dst:(ip "192.168.1.2") ~on_reply:(fun ~rtt_ns -> rtt := rtt_ns);
  Engine.run e;
  Alcotest.(check bool) "reply came" true (!rtt > 0);
  (* Costed hops only: tx(100) rx(100) tx-reply(100) rx(100) + icmp path
     costs; must be well under a millisecond with the cheap model. *)
  Alcotest.(check bool) "cheap-model rtt < 5us" true (!rtt < 5_000)

let () =
  Alcotest.run "stack"
    [ ( "ip",
        [ Alcotest.test_case "arp" `Quick test_arp_resolution;
          Alcotest.test_case "loopback" `Quick test_local_delivery_over_lo;
          Alcotest.test_case "no socket" `Quick test_no_socket_counted;
          Alcotest.test_case "forwarding off" `Quick test_forwarding_disabled_drops;
          Alcotest.test_case "firewall" `Quick test_firewall_drop_counted;
          Alcotest.test_case "ping" `Quick test_ping_rtt_accounts_hops ] );
      ( "udp",
        [ Alcotest.test_case "bind conflicts" `Quick test_udp_bind_conflicts ] );
      ( "tcp",
        [ Alcotest.test_case "rst on closed port" `Quick test_tcp_rst_on_closed_port;
          Alcotest.test_case "backpressure" `Quick test_tcp_backpressure_and_writable;
          Alcotest.test_case "retransmit outage" `Quick
            test_tcp_retransmit_recovers_from_outage;
          Alcotest.test_case "close sequence" `Quick test_tcp_close_sequence;
          Alcotest.test_case "endpoints" `Quick test_tcp_endpoints ] ) ]
