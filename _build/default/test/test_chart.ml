(* Tests for the terminal chart renderer. *)

module Chart = Nest_experiments.Chart

let qtest = QCheck_alcotest.to_alcotest

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_basic_render () =
  let out =
    Chart.plot ~title:"demo" ~y_label:"Mbps" ~x_labels:[ "64"; "256"; "1024" ]
      ~series:[ ("a", [ 1.0; 2.0; 3.0 ]); ("b", [ 3.0; 2.0; 1.0 ]) ]
      ()
  in
  Alcotest.(check bool) "title" true (contains out "demo");
  Alcotest.(check bool) "legend a" true (contains out "*=a");
  Alcotest.(check bool) "legend b" true (contains out "+=b");
  Alcotest.(check bool) "x labels" true
    (contains out "64" && contains out "1024");
  Alcotest.(check bool) "y max label" true (contains out "3.00");
  Alcotest.(check bool) "markers drawn" true
    (contains out "*" && contains out "+")

let test_single_point () =
  let out =
    Chart.plot ~title:"one" ~y_label:"v" ~x_labels:[ "x" ]
      ~series:[ ("s", [ 42.0 ]) ] ()
  in
  Alcotest.(check bool) "renders" true (contains out "42.0")

let test_empty_rejected () =
  Alcotest.check_raises "no labels" (Invalid_argument "Chart.plot: empty input")
    (fun () ->
      ignore (Chart.plot ~title:"t" ~y_label:"y" ~x_labels:[] ~series:[ ("s", [ 1. ]) ] ()));
  Alcotest.check_raises "no data" (Invalid_argument "Chart.plot: no data")
    (fun () ->
      ignore (Chart.plot ~title:"t" ~y_label:"y" ~x_labels:[ "a" ] ~series:[ ("s", []) ] ()))

let test_dimensions =
  QCheck.Test.make ~name:"rendered block has the requested height" ~count:50
    QCheck.(pair (int_range 4 20) (list_of_size (Gen.int_range 1 10) (float_range 0. 100.)))
    (fun (height, values) ->
      let labels = List.mapi (fun i _ -> string_of_int i) values in
      let out =
        Chart.plot ~title:"t" ~y_label:"y" ~x_labels:labels
          ~series:[ ("s", values) ] ~height ()
      in
      let lines = String.split_on_char '\n' out in
      (* title + height rows + axis + xlabels + legend + trailing *)
      List.length lines = height + 5)

let test_values_in_range =
  QCheck.Test.make ~name:"no marker outside the plot grid" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 12) (float_range (-50.) 50.))
    (fun values ->
      let labels = List.mapi (fun i _ -> string_of_int i) values in
      let out =
        Chart.plot ~title:"t" ~y_label:"y" ~x_labels:labels
          ~series:[ ("s", values) ] ~width:40 ()
      in
      (* every grid row is exactly 12 (label) + 1 (bar) + 40 wide *)
      String.split_on_char '\n' out
      |> List.for_all (fun l -> String.length l <= 56))

let () =
  Alcotest.run "chart"
    [ ( "render",
        [ Alcotest.test_case "basic" `Quick test_basic_render;
          Alcotest.test_case "single point" `Quick test_single_point;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          qtest test_dimensions;
          qtest test_values_in_range ] ) ]
