test/test_sim.ml: Alcotest Array Format Gen List Nest_sim Printf QCheck QCheck_alcotest
