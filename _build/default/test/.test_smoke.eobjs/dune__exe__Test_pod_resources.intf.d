test/test_pod_resources.mli:
