test/test_netem.mli:
