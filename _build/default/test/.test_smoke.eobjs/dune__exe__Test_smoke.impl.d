test/test_smoke.ml: Alcotest Dev Ipv4 List Nest_net Nest_sim Nest_virt Payload Route Stack
