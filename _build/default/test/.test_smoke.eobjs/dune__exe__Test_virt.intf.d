test/test_virt.mli:
