test/test_pod_resources.ml: Alcotest Nest_net Nest_sim Nestfusion Printf Shm String Volumes
