test/test_net.ml: Alcotest Array Bridge Conntrack Dev Frame Hop Ipam Ipv4 List Mac Nat Nest_net Nest_sim Netfilter Option Packet Payload Printf QCheck QCheck_alcotest Route Tap Tcp_wire Veth
