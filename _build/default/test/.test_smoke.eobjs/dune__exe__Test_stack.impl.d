test/test_stack.ml: Alcotest Dev Hop Ipv4 List Mac Nat Nest_net Nest_sim Netfilter Option Payload Route Stack Veth
