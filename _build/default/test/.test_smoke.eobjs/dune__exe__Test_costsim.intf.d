test/test_costsim.mli:
