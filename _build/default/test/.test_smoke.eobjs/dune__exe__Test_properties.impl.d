test/test_properties.ml: Alcotest Conntrack Dev Frame Fun Gen Hop Ipv4 List Mac Nest_net Nest_orch Nest_sim Nest_workloads Nestfusion Option Packet Payload QCheck QCheck_alcotest Route Stack Tap Veth
