test/test_virt.ml: Alcotest Cost_model Dev Frame Host Ipv4 List Mac Nest_net Nest_sim Nest_virt Option Packet Payload Printf QCheck QCheck_alcotest Qmp Stack Tap Vm Vmm
