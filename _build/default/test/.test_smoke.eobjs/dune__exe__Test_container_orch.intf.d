test/test_container_orch.mli:
