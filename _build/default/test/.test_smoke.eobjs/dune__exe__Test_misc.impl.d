test/test_misc.ml: Alcotest Astring Conntrack Dev Format Frame Hop Ipv4 List Logs Mac Nest_experiments Nest_net Nest_sim Nest_virt Nestfusion Packet Payload
