test/test_workloads.ml: Alcotest Deploy List Nest_sim Nest_workloads Nestfusion Option Printf Testbed
