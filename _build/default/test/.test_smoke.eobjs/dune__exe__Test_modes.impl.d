test/test_modes.ml: Alcotest Deploy Format Ipv4 List Modes Nest_net Nest_sim Nestfusion Path_probe Payload Stack Testbed
