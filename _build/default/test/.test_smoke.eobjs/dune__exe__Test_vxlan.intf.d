test/test_vxlan.mli:
