test/test_chart.mli:
