test/test_chart.ml: Alcotest Gen List Nest_experiments QCheck QCheck_alcotest String
