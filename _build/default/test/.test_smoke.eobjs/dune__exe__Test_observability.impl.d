test/test_observability.ml: Alcotest Astring Bridge Bytes Deploy Float Gc Hostlo List Modes Nest_net Nest_orch Nest_sim Nestfusion Payload Printf Stack Testbed Weak
