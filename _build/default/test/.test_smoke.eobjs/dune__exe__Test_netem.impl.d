test/test_netem.ml: Alcotest Dev Frame Hop Int64 Ipv4 Mac Nest_net Nest_sim Nest_workloads Nestfusion Netem Option Packet Payload Printf QCheck QCheck_alcotest Stack Veth
