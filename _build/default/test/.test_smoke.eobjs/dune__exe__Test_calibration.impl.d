test/test_calibration.ml: Alcotest Deploy List Nest_costsim Nest_experiments Nest_sim Nest_traces Nest_workloads Nestfusion Option Printf Testbed
