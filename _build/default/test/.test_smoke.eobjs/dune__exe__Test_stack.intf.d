test/test_stack.mli:
