test/test_autopilot.ml: Alcotest Autopilot Ipv4 List Nest_net Nest_orch Nest_sim Nestfusion Payload Pod_resources Stack Testbed
