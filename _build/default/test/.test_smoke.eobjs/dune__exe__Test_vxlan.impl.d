test/test_vxlan.ml: Alcotest Array Bridge Dev Frame Hop Ipv4 List Mac Nest_net Nest_sim Packet Payload Printf Stack Veth Vxlan
