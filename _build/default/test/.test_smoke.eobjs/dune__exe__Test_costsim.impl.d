test/test_costsim.ml: Alcotest Hashtbl List Nest_costsim Nest_traces Option QCheck QCheck_alcotest
