test/test_autopilot.mli:
