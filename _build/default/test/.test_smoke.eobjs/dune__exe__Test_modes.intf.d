test/test_modes.mli:
