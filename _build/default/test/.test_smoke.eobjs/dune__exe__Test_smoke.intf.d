test/test_smoke.mli:
