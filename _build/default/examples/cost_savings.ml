(* Cost-savings demo: the paper's motivating AWS example, then a small
   trace-driven simulation.

     dune exec examples/cost_savings.exe *)

module Trace = Nest_traces.Trace
module Aws = Nest_costsim.Aws
module Kube_pack = Nest_costsim.Kube_pack
module Hostlo_pack = Nest_costsim.Hostlo_pack
module Report = Nest_costsim.Report

let () =
  (* §2's example: a pod needing 6 vCPUs / 24 GB. *)
  print_endline "the paper's example: a pod of 3 x (2 vCPU / 8 GB) containers";
  let c = { Trace.c_cpu = 2.0 /. 96.0; c_mem = 8.0 /. 384.0 } in
  let user =
    { Trace.u_id = 0; pods = [ { Trace.p_id = 0; p_containers = [ c; c; c ] } ] }
  in
  let base = Kube_pack.pack_user user in
  let vm_list plan =
    String.concat " + "
      (List.map
         (fun vm -> Format.asprintf "%a" Aws.pp_model vm.Kube_pack.vm_model)
         plan.Kube_pack.vms)
  in
  Printf.printf "  whole-pod (Kubernetes): $%.3f/h on %s\n"
    (Kube_pack.plan_cost base) (vm_list base);
  let improved, _ = Hostlo_pack.improve_copy base in
  Printf.printf "  cross-VM pod (Hostlo):  $%.3f/h on %s\n"
    (Kube_pack.plan_cost improved) (vm_list improved);
  Printf.printf "  saving: %.1f%%\n\n"
    (100.0
    *. (Kube_pack.plan_cost base -. Kube_pack.plan_cost improved)
    /. Kube_pack.plan_cost base);

  (* A small synthetic-trace run (Fig. 9 at reduced scale). *)
  print_endline "trace-driven simulation (100 users):";
  let users = Nest_traces.Trace_gen.generate ~seed:2026L ~users:100 in
  let outcomes = Report.evaluate users in
  Format.printf "%a@." Report.pp_summary (Report.summarize outcomes);
  print_endline "\nper-user detail (savers only):";
  List.iter
    (fun o ->
      if o.Report.saving > 1e-9 then
        Printf.printf
          "  user %-4d  %2d VMs -> %2d VMs   $%.3f/h -> $%.3f/h  (-%.1f%%)\n"
          o.Report.user_id o.Report.kube_vms o.Report.hostlo_vms
          o.Report.kube_cost o.Report.hostlo_cost
          (100.0 *. o.Report.rel_saving))
    outcomes
