(* Hostlo demo: a pod split across two VMs whose containers still talk
   over plain localhost, compared with the Docker Overlay alternative.

     dune exec examples/hostlo_pod.exe *)

open Nestfusion
open Nest_net
module Time = Nest_sim.Time
module Stats = Nest_sim.Stats

let chat tb (site : Deploy.pair_site) =
  (* Server in fraction B; client in fraction A; both use the pod's own
     localhost address when the mode provides one. *)
  let received = ref [] in
  Stack.Tcp.listen site.Deploy.b_ns ~port:site.Deploy.b_port
    ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
          List.iter
            (function
              | Payload.Opaque s ->
                received := s :: !received;
                ignore
                  (Stack.Tcp.send conn ~size:32
                     ~msg:(Payload.Opaque ("ack:" ^ s)) ())
              | _ -> ())
            msgs));
  let acks = ref [] in
  let _c =
    Stack.Tcp.connect site.Deploy.a_ns ~dst:site.Deploy.b_addr
      ~port:site.Deploy.b_port
      ~on_established:(fun conn ->
        Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
            List.iter
              (function Payload.Opaque s -> acks := s :: !acks | _ -> ())
              msgs);
        List.iter
          (fun m -> ignore (Stack.Tcp.send conn ~size:64 ~msg:(Payload.Opaque m) ()))
          [ "hello"; "from"; "the"; "other"; "vm" ])
      ()
  in
  Testbed.run_until tb (Nest_sim.Engine.now tb.Testbed.engine + Time.sec 2);
  (List.rev !received, List.rev !acks)

let bench mode =
  let tb = Testbed.create ~num_vms:2 () in
  let site = ref None in
  Deploy.deploy_pair tb ~mode ~name:"pod" ~a_entity:"cli" ~b_entity:"srv"
    ~port:9000 ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  let site = Option.get !site in
  let ep = Nest_workloads.App.of_pair site in
  let rr =
    Nest_workloads.Netperf.udp_rr tb ep ~msg_size:1024 ~duration:(Time.ms 300) ()
  in
  (site, Stats.mean rr.Nest_workloads.Netperf.latency)

let () =
  (* Functional demo over Hostlo. *)
  let tb = Testbed.create ~num_vms:2 () in
  let site = ref None in
  Deploy.deploy_pair tb ~mode:`Hostlo ~name:"pod" ~a_entity:"cli"
    ~b_entity:"srv" ~port:9000 ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  let s = Option.get !site in
  Printf.printf
    "pod split across vm1 + vm2; fraction B listens on %s:%d (its localhost)\n"
    (Ipv4.to_string s.Deploy.b_addr) s.Deploy.b_port;
  let received, acks = chat tb s in
  Printf.printf "B received over the multiplexed loopback: %s\n"
    (String.concat " " received);
  Printf.printf "A got acks: %s\n" (String.concat " " acks);

  (* Latency comparison across the cross-VM options. *)
  print_endline "\nintra-pod UDP_RR latency at 1024B:";
  List.iter
    (fun mode ->
      let _, lat = bench mode in
      Printf.printf "  %-9s %7.1f us\n" (Modes.pair_to_string mode) lat)
    [ `SameNode; `Hostlo; `Overlay; `NatX ];
  print_endline
    "\nHostlo keeps localhost semantics across the VM boundary at a fraction\n\
     of the overlay/NAT latency - the paper's cross-VM pod deployment."
