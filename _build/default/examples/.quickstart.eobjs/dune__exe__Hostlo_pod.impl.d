examples/hostlo_pod.ml: Deploy Ipv4 List Modes Nest_net Nest_sim Nest_workloads Nestfusion Option Payload Printf Stack String Testbed
