examples/cost_savings.mli:
