examples/autopilot_demo.ml: Autopilot List Nest_orch Nest_sim Nestfusion Pod_resources Printf String Testbed
