examples/cost_savings.ml: Format List Nest_costsim Nest_traces Printf String
