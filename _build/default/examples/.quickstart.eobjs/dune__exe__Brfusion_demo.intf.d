examples/brfusion_demo.mli:
