examples/quickstart.ml: Bridge Deploy Format Ipv4 Nest_net Nest_sim Nest_workloads Nestfusion Option Path_probe Printf Stack Testbed
