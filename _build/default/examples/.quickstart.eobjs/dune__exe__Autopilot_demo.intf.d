examples/autopilot_demo.mli:
