examples/hostlo_pod.mli:
