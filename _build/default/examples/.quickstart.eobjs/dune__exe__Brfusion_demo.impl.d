examples/brfusion_demo.ml: Deploy List Modes Nest_sim Nest_workloads Nestfusion Option Printf Testbed
