examples/quickstart.mli:
