(* BrFusion demo: measure the three single-server modes side by side and
   show where the nested-NAT CPU goes.

     dune exec examples/brfusion_demo.exe *)

open Nestfusion
module Time = Nest_sim.Time
module Stats = Nest_sim.Stats
module App = Nest_workloads.App
module Netperf = Nest_workloads.Netperf

let run_mode mode =
  let tb = Testbed.create ~num_vms:1 () in
  let site = ref None in
  Deploy.deploy_single tb ~mode ~name:"pod" ~entity:"server" ~port:7000
    ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  let ep = App.of_single tb (Option.get !site) in
  let before = App.Cpu_snap.take tb.Testbed.acct in
  let stream = Netperf.tcp_stream tb ep ~msg_size:1280 ~duration:(Time.ms 400) () in
  let after = App.Cpu_snap.take tb.Testbed.acct in
  let tb2 = Testbed.create ~num_vms:1 () in
  let site2 = ref None in
  Deploy.deploy_single tb2 ~mode ~name:"pod" ~entity:"server" ~port:7000
    ~k:(fun s -> site2 := Some s);
  Testbed.run_until tb2 (Time.sec 1);
  let ep2 = App.of_single tb2 (Option.get !site2) in
  let rr = Netperf.udp_rr tb2 ep2 ~msg_size:1280 ~duration:(Time.ms 300) () in
  let soft =
    App.Cpu_snap.diff_cores ~before ~after ~entity:"vm1"
      Nest_sim.Cpu_account.Soft ~window:(Time.ms 500)
  in
  (stream.Netperf.mbps, Stats.mean rr.Netperf.latency, soft)

let () =
  print_endline "mode       throughput     RR latency   guest softirq";
  let base = ref None in
  List.iter
    (fun mode ->
      let mbps, lat, soft = run_mode mode in
      (match (mode, !base) with `NoCont, _ -> base := Some mbps | _ -> ());
      Printf.printf "%-10s %7.0f Mbps   %7.1f us   %5.2f cores"
        (Modes.single_to_string mode) mbps lat soft;
      (match !base with
      | Some b when mode <> `NoCont ->
        Printf.printf "   (%.0f%% of NoCont)" (100.0 *. mbps /. b)
      | _ -> ());
      print_newline ())
    Modes.all_single;
  print_endline
    "\nBrFusion removes the in-VM bridge+NAT layer: same path as NoCont,\n\
     ~2x the NAT throughput, and the guest softirq CPU all but disappears."
