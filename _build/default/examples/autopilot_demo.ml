(* Integrated-orchestrator demo (the paper's §7 direction): the
   orchestrator manages the VM fleet through the VMM — BrFusion for
   whole pods, Hostlo splitting when fragmentation demands it, VM
   purchase as the last resort.

     dune exec examples/autopilot_demo.exe *)

open Nestfusion
module Time = Nest_sim.Time
module Pod = Nest_orch.Pod
module Node = Nest_orch.Node

let show ap tb msg =
  ignore tb;
  Printf.printf "%-46s fleet=%d bought=%d splits=%d\n%!" msg
    (List.length (Autopilot.nodes ap))
    (Autopilot.vms_bought ap) (Autopilot.pods_split ap);
  List.iter
    (fun n ->
      Printf.printf "    %-8s %.1f/%.1f cpu  %.1f/%.1f GB\n" (Node.name n)
        (Node.cpu_requested n) (Node.cpu_capacity n) (Node.mem_requested n)
        (Node.mem_capacity n))
    (Autopilot.nodes ap)

let deploy tb ap p =
  let d = ref None in
  Autopilot.deploy ap p ~on_ready:(fun x -> d := Some x);
  Testbed.run_until tb (Nest_sim.Engine.now tb.Testbed.engine + Time.sec 300);
  match !d with Some d -> d | None -> failwith "deployment stuck"

let () =
  let tb = Testbed.create ~num_vms:1 () in
  let ap = Autopilot.create tb ~provision_delay:(Time.sec 30) () in
  show ap tb "start: one 5-vCPU node";

  let d1 =
    deploy tb ap
      (Pod.make ~name:"api" [ Pod.container ~name:"srv" ~cpu:4.0 ~mem:2.0 () ])
  in
  ignore d1;
  show ap tb "deployed 'api' (4 cpu) whole, via BrFusion";

  let _d2 =
    deploy tb ap
      (Pod.make ~name:"db" [ Pod.container ~name:"pg" ~cpu:3.0 ~mem:2.5 () ])
  in
  show ap tb "'db' (3 cpu) did not fit: a VM was bought";

  (* Now only fragments remain (1 + 2 cpu): a 3-container pod splits. *)
  let d3 =
    deploy tb ap
      (Pod.make ~name:"workers"
         ~volumes:[ Pod.volume ~name:"artifacts" ~shared_fs:true () ]
         [ Pod.container ~name:"w1" ~cpu:1.0 ~mem:0.4 ();
           Pod.container ~name:"w2" ~cpu:1.0 ~mem:0.4 ();
           Pod.container ~name:"w3" ~cpu:1.0 ~mem:0.4 () ])
  in
  show ap tb "'workers' (3x1 cpu) split across the fragments via Hostlo";
  (match d3.Autopilot.placement with
  | Autopilot.Split frs ->
    Printf.printf "  fractions on: %s; VirtFS volume mounted on: %s\n"
      (String.concat ", " (List.map (fun (n, _) -> Node.name n) frs))
      (String.concat ", "
         (Pod_resources.Volumes.mounts (Autopilot.volumes ap)
            ~pod:d3.Autopilot.dep_tag ~volume:"artifacts"))
  | Autopilot.Whole _ -> ());

  Autopilot.delete ap d3;
  (match Autopilot.deployments ap with
  | d :: _ -> Autopilot.delete ap d
  | [] -> ());
  let removed = Autopilot.scale_down ap in
  Printf.printf "\nafter deleting two pods, scale_down released %d VM(s)\n"
    removed;
  show ap tb "final fleet"
