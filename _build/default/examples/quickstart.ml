(* Quickstart: boot the paper's testbed, deploy a pod under BrFusion, and
   exchange traffic with it.

     dune exec examples/quickstart.exe *)

open Nestfusion
open Nest_net
module Time = Nest_sim.Time

let () =
  (* One physical host (12 CPUs), a host bridge with NAT, one VM with
     5 vCPUs / 4 GB, and a client process on the host — §5.1's setup. *)
  let tb = Testbed.create ~num_vms:1 () in
  Printf.printf "testbed up: host bridge %s, vm1 at 10.0.0.2\n"
    (Bridge.name tb.Testbed.bridge);

  (* Deploy a pod with BrFusion: the orchestrator asks the VMM for a
     fresh NIC over QMP, and the pod namespace gets it directly. *)
  let site = ref None in
  Deploy.deploy_single tb ~mode:`Brfusion ~name:"demo-pod" ~entity:"demo"
    ~port:7000 ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  let site = Option.get !site in
  Printf.printf "pod deployed; BrFusion NIC carries %s\n"
    (Ipv4.to_string site.Deploy.site_addr);

  (* Ping it from the host client. *)
  Stack.ping tb.Testbed.client_ns ~dst:site.Deploy.site_addr
    ~on_reply:(fun ~rtt_ns ->
      Printf.printf "ping: reply from pod in %.1f us\n" (Time.to_us_f rtt_ns));
  Testbed.run_until tb (Time.sec 2);

  (* The packet path, hop by hop: note there is no in-VM bridge. *)
  Path_probe.udp_path ~src:tb.Testbed.client_ns ~dst:site.Deploy.site_ns
    ~dst_addr:site.Deploy.site_addr ~port:7000
    ~k:(fun hops ->
      Format.printf "datapath: %a@." Path_probe.pp_hops hops)
    ();
  Testbed.run_until tb (Time.sec 3);

  (* A short netperf. *)
  let ep = Nest_workloads.App.of_single tb site in
  let s =
    Nest_workloads.Netperf.tcp_stream tb ep ~msg_size:1280
      ~duration:(Time.ms 300) ()
  in
  Printf.printf "netperf TCP_STREAM (1280B messages): %.0f Mbps\n"
    s.Nest_workloads.Netperf.mbps;
  print_endline "quickstart: done."
