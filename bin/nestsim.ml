(* nestsim — experiment driver CLI.

   Run any table or figure of the paper's evaluation:
     nestsim run fig4
     nestsim run all --quick
     nestsim run ablations
     nestsim list
     nestsim obs run fig4 --out trace.json
     nestsim trace gen --users 492 --seed 2026 --out trace.csv
     nestsim trace stats trace.csv *)

let list_cmd () =
  List.iter
    (fun e ->
      Printf.printf "%-8s %s\n" e.Nest_experiments.Registry.id
        e.Nest_experiments.Registry.description)
    (Nest_experiments.Registry.all @ Nest_experiments.Registry.ablations)

let run_cmd ids quick jobs shards trace metrics obs_json trace_capacity =
  if trace_capacity <= 0 then begin
    Printf.eprintf "nestsim: --trace-capacity must be positive (got %d)\n"
      trace_capacity;
    exit 1
  end;
  if jobs <= 0 then begin
    Printf.eprintf "nestsim: --jobs must be positive (got %d)\n" jobs;
    exit 1
  end;
  if shards <= 0 then begin
    Printf.eprintf "nestsim: --shards must be positive (got %d)\n" shards;
    exit 1
  end;
  Nestfusion.Testbed.set_default_shards shards;
  Nest_experiments.Exp_util.Obs.configure ~trace ~metrics ~json:obs_json
    ~trace_capacity ();
  Nest_experiments.Exp_util.Par.set_jobs jobs;
  (match ids with
  | [ "all" ] | [] -> Nest_experiments.Registry.run_all ~jobs ~quick ()
  | [ "ablations" ] ->
    List.iter
      (fun e -> e.Nest_experiments.Registry.run ~quick)
      Nest_experiments.Registry.ablations
  | ids ->
    List.iter
      (fun id ->
        match Nest_experiments.Registry.find id with
        | Some e -> e.Nest_experiments.Registry.run ~quick
        | None ->
          Printf.eprintf "unknown experiment %S; try `nestsim list'\n" id;
          exit 1)
      ids);
  Nest_experiments.Exp_util.Obs.dump ()

(* Observability-first run: full collection on, any registered experiment
   (or none), a Perfetto-loadable Chrome trace written to --out, and a
   per-hop latency-attribution table comparing the deployment modes. *)
let obs_cmd ids quick shards out trace_capacity timeline_period_us prov_sample
    slo =
  if trace_capacity <= 0 then begin
    Printf.eprintf "nestsim: --trace-capacity must be positive (got %d)\n"
      trace_capacity;
    exit 1
  end;
  if shards <= 0 then begin
    Printf.eprintf "nestsim: --shards must be positive (got %d)\n" shards;
    exit 1
  end;
  Nestfusion.Testbed.set_default_shards shards;
  if timeline_period_us <= 0 then begin
    Printf.eprintf "nestsim: --timeline-period must be positive (got %d)\n"
      timeline_period_us;
    exit 1
  end;
  if prov_sample <= 0 then begin
    Printf.eprintf "nestsim: --prov-sample must be positive (got %d)\n"
      prov_sample;
    exit 1
  end;
  Nest_experiments.Exp_util.Obs.configure ~trace:true ~metrics:true
    ~provenance:true ~prov_sample ~timeline:true ~trace_capacity
    ~timeline_period:(Nest_sim.Time.us timeline_period_us) ();
  List.iter
    (fun id ->
      match Nest_experiments.Registry.find id with
      | Some e -> e.Nest_experiments.Registry.run ~quick
      | None ->
        Printf.eprintf "unknown experiment %S; try `nestsim list'\n" id;
        exit 1)
    ids;
  (* Timed per-mode probes: each deploys its own testbed (attached above
     through the sync helpers), so their spans land in the export too.
     The probes decompose one datagram exactly, so they are never
     sampled away — --prov-sample applies to the experiments above. *)
  Nest_experiments.Exp_util.Obs.configure ~prov_sample:1 ();
  let probes = Nest_experiments.Exp_util.provenance_probes () in
  let ex = Nest_experiments.Exp_util.Obs.export_chrome () in
  List.iter
    (fun (label, entries) ->
      let pid = Nest_sim.Trace_export.process ex ~name:("probe:" ^ label) in
      Nest_sim.Trace_export.add_provenance ex ~pid entries)
    probes;
  Nest_sim.Trace_export.to_file ex out;
  List.iter Nest_experiments.Exp_util.print_attribution probes;
  Nest_experiments.Exp_util.print_cache_health ();
  Nest_experiments.Exp_util.Obs.print_shard_tables ();
  Nest_experiments.Exp_util.Obs.discard ();
  (* Live SLO monitoring demo: one fault-free served cell per deployment
     mode carrying netperf UDP_RR with the standard chaos objectives
     (availability, p99 latency, goodput), evaluated window by window on
     the engine clock.  Deterministic in the seed. *)
  if slo then begin
    print_newline ();
    print_endline
      "Per-mode SLO compliance (fault-free UDP_RR cell, 500 ms windows):";
    List.iter
      (fun mode ->
        let o =
          Nest_fault.Chaos.run_cell ~quick:true
            ~workload:Nest_fault.Chaos.Rr ~mode ~rate:0.0 ~seed:42L ()
        in
        Printf.printf "  %s\n" o.Nest_fault.Chaos.o_mode;
        List.iter
          (fun c -> Format.printf "    %a@." Nest_sim.Slo.pp_compliance c)
          o.Nest_fault.Chaos.o_slo;
        let lat = o.Nest_fault.Chaos.o_slo_lat in
        if Nest_sim.Hdr.count lat > 0 then
          Printf.printf "    latency n=%d p50 %.1f us p99 %.1f us\n"
            (Nest_sim.Hdr.count lat)
            (Nest_sim.Hdr.percentile lat 50.0)
            (Nest_sim.Hdr.percentile lat 99.0))
      Nest_fault.Chaos.all_modes
  end;
  Printf.printf "\nwrote %d trace events to %s (open in ui.perfetto.dev)\n"
    (Nest_sim.Trace_export.event_count ex)
    out

let trace_gen users seed out =
  let trace =
    Nest_traces.Trace_gen.generate ~seed:(Int64.of_int seed) ~users
  in
  let csv = Nest_traces.Trace.to_csv trace in
  (match out with
  | None -> print_string csv
  | Some path ->
    let oc = open_out path in
    output_string oc csv;
    close_out oc;
    Printf.printf "wrote %d users (%d containers) to %s\n" users
      (List.fold_left
         (fun a u -> a + Nest_traces.Trace.user_containers u)
         0 trace)
      path)

let trace_stats path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let csv = really_input_string ic len in
  close_in ic;
  let users = Nest_traces.Trace.of_csv csv in
  let pods = Nest_sim.Stats.create ~name:"pods/user" () in
  let conts = Nest_sim.Stats.create ~name:"containers/pod" () in
  let cpu = Nest_sim.Stats.create ~name:"cpu/container (rel)" () in
  List.iter
    (fun u ->
      Nest_sim.Stats.add pods (float_of_int (Nest_traces.Trace.user_pods u));
      List.iter
        (fun p ->
          Nest_sim.Stats.add conts
            (float_of_int (List.length p.Nest_traces.Trace.p_containers));
          List.iter
            (fun c -> Nest_sim.Stats.add cpu c.Nest_traces.Trace.c_cpu)
            p.Nest_traces.Trace.p_containers)
        u.Nest_traces.Trace.pods)
    users;
  Printf.printf "users: %d\n" (List.length users);
  List.iter
    (fun s -> Format.printf "%a@." Nest_sim.Stats.pp_summary s)
    [ pods; conts; cpu ]

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shorter measurement windows.")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Fan independent experiment cells (one testbed + workload \
                 each) across $(docv) domains.  Results are identical for \
                 any value; only wall-clock time changes.")

let shards =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Partition every testbed's event loop into $(docv) \
                 conservative sub-engines (null-message synchronized; see \
                 DESIGN.md).  Results are byte-identical for any value; \
                 single-testbed experiments embed at shard 0, so this \
                 mainly exercises the sharded loop — multi-node scaling \
                 lives in the $(b,cluster) subcommand.")

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiment ids (fig2..fig15, table1, table2) or 'all'.")

let trace_flag =
  Arg.(value & flag
       & info [ "trace" ]
           ~doc:"Collect per-hop/per-packet event traces and dump them \
                 after the run.")

let metrics_flag =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Dump a metrics snapshot (counters, gauges, histograms) \
                 per deployed testbed after the run.")

let obs_json =
  Arg.(value & flag
       & info [ "obs-json" ]
           ~doc:"Emit the --trace/--metrics dump as JSON instead of text.")

let trace_capacity =
  Arg.(value & opt int 8192
       & info [ "trace-capacity" ] ~docv:"N"
           ~doc:"Trace ring capacity in events (oldest are dropped).")

let run_term =
  let doc = "Run experiments (default: all)." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_cmd $ ids $ quick $ jobs $ shards $ trace_flag $ metrics_flag
      $ obs_json $ trace_capacity)

let list_term =
  let doc = "List available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const list_cmd $ const ())

let obs_term =
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Chrome trace-event JSON output (Perfetto-loadable).")
  in
  let timeline_period =
    Arg.(value & opt int 1000
         & info [ "timeline-period" ] ~docv:"US"
             ~doc:"CPU-timeline sampling period in microseconds of sim \
                   time.")
  in
  let prov_sample =
    Arg.(value & opt int 1
         & info [ "prov-sample" ] ~docv:"N"
             ~doc:"Mint one latency-provenance record per $(docv) eligible \
                   packets instead of per packet (1 = every packet).  \
                   Applies to experiment traffic; the timed per-mode probes \
                   always record every packet.  Sampling is deterministic: \
                   the counter advances in send order per namespace, so the \
                   sampled subset is identical across runs and $(b,--jobs) \
                   levels.")
  in
  let obs_ids =
    Arg.(value & pos_all string []
         & info [] ~docv:"EXPERIMENT"
             ~doc:"Experiment ids to run with full collection on (may be \
                   empty: the probes alone still produce a trace).")
  in
  let slo_flag =
    Arg.(value & flag
         & info [ "slo" ]
             ~doc:"Additionally run one fault-free netperf UDP_RR cell per \
                   deployment mode under the live SLO monitor and print \
                   per-mode windowed compliance (availability, p99 latency \
                   ceiling, goodput floor) plus sketch latency percentiles.")
  in
  let run =
    let doc =
      "Run experiments with tracing, metrics, CPU timelines and latency \
       provenance all on; write a Chrome trace and print per-hop latency \
       attribution across deployment modes."
    in
    Cmd.v (Cmd.info "run" ~doc)
      Term.(
        const obs_cmd $ obs_ids $ quick $ shards $ out $ trace_capacity
        $ timeline_period $ prov_sample $ slo_flag)
  in
  let doc = "Observability workflows (Perfetto export, latency attribution)." in
  Cmd.group (Cmd.info "obs" ~doc) [ run ]

let chaos_cmd rates seed jobs shards quick check workload standby =
  if jobs <= 0 then begin
    Printf.eprintf "nestsim: --jobs must be positive (got %d)\n" jobs;
    exit 1
  end;
  if shards <= 0 then begin
    Printf.eprintf "nestsim: --shards must be positive (got %d)\n" shards;
    exit 1
  end;
  Nestfusion.Testbed.set_default_shards shards;
  if standby < 0 then begin
    Printf.eprintf "nestsim: --standby must be >= 0 (got %d)\n" standby;
    exit 1
  end;
  let workload =
    match Nest_fault.Chaos.workload_of_string workload with
    | Some w -> w
    | None ->
      Printf.eprintf
        "nestsim: unknown --workload %S (expected probe, rr or memcached)\n"
        workload;
      exit 1
  in
  if check then begin
    if
      not
        (Nest_experiments.Fig_chaos.check ~seed ~jobs ~workload ~standby
           ~quick ())
    then exit 1
  end
  else begin
    Nest_experiments.Exp_util.Par.set_jobs jobs;
    let rates =
      match rates with
      | [] -> Nest_experiments.Fig_chaos.default_rates
      | rs -> rs
    in
    Nest_experiments.Fig_chaos.run ~rates ~seed ~workload ~standby ~quick ()
  end

let chaos_term =
  let rates =
    Arg.(value & opt (list float) []
         & info [ "rates" ] ~docv:"R1,R2,..."
             ~doc:"Management-plane fault rates to sweep (default \
                   0,0.1,0.3,0.5).  Each rate runs all four deployment \
                   modes.")
  in
  let seed =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Testbed seed; the fault plan derives its private \
                   stream from it.  Same seed, same fault timeline.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Determinism guard: run a fixed cell set sequentially, \
                   fanned over --jobs domains, and again sequentially; \
                   exit non-zero unless every cell digest is identical.")
  in
  let workload =
    Arg.(value & opt string "probe"
         & info [ "workload" ] ~docv:"W"
             ~doc:"What the served cell carries: $(b,probe) (UDP echo \
                   probe, the default), $(b,rr) (netperf UDP_RR) or \
                   $(b,memcached) (memtier-shaped closed loops).  Real \
                   workloads additionally report goodput-under-fault \
                   and post-recovery latency percentiles.")
  in
  let standby =
    Arg.(value & opt int 0
         & info [ "standby" ] ~docv:"N"
             ~doc:"Pre-provision N pooled Hostlo endpoints per (VM, \
                   pod) and fail the service over to a surviving VM on \
                   crash, claiming a pooled endpoint instead of paying \
                   QMP hot-plug under faults.  0 disables (default); \
                   other modes ignore it.")
  in
  let doc =
    "Sweep fault rates across deployment modes; report pod-start \
     behaviour under QMP faults (time-to-ready, retries, losses) and \
     service availability with recovery-latency percentiles around VM \
     crashes — optionally with a live workload in the cell."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const chaos_cmd $ rates $ seed $ jobs $ shards $ quick $ check
      $ workload $ standby)

(* Resolve a --profile name ("none" or absent means unimpaired links). *)
let resolve_profile = function
  | None -> None
  | Some "none" -> None
  | Some name -> (
    match Nest_net.Netem.profile name with
    | Some p -> Some p
    | None ->
      Printf.eprintf "nestsim: unknown --profile %S (expected %s or none)\n"
        name
        (String.concat ", " (Nest_net.Netem.profile_names ()));
      exit 1)

let profile_arg =
  let open Cmdliner in
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~docv:"P"
           ~doc:"Named link profile for the inter-node wires: \
                 $(b,datacenter), $(b,wan), $(b,edge) or $(b,lossy) (see \
                 lib/net/netem).  The profile's one-way delay becomes each \
                 wire's latency and lookahead; its loss and jitter are \
                 applied per datagram, per direction, deterministically \
                 for any shard split.  Default: unimpaired fixed-latency \
                 links.")

let cluster_cmd nodes shards domains seed quick check profile =
  if nodes <= 0 then begin
    Printf.eprintf "nestsim: --nodes must be positive (got %d)\n" nodes;
    exit 1
  end;
  if shards <= 0 then begin
    Printf.eprintf "nestsim: --shards must be positive (got %d)\n" shards;
    exit 1
  end;
  if domains <= 0 then begin
    Printf.eprintf "nestsim: --domains must be positive (got %d)\n" domains;
    exit 1
  end;
  let profile = resolve_profile profile in
  if check then begin
    if not (Nest_experiments.Fig_cluster.check ~nodes ~seed ?profile ~quick ())
    then exit 1
  end
  else
    Nest_experiments.Fig_cluster.run ~nodes ~shards ~domains ~seed ?profile
      ~quick ()

let cluster_term =
  let nodes =
    Arg.(value & opt int 4
         & info [ "nodes" ] ~docv:"N"
             ~doc:"Ring size: $(docv) full single-node testbeds, node i's \
                   client driving node i+1's service across a wire.")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "domains" ] ~docv:"D"
             ~doc:"OS-level parallelism: pump the shards from $(docv) \
                   domains (capped at the shard count).  The digest is \
                   identical for any value.")
  in
  let seed =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Root seed; each node keys its private streams off it, \
                   so the outcome is independent of placement.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Determinism guard: digest the scenario at shards 1, 2 \
                   and 4 (the latter two also with 2 domains); exit \
                   non-zero unless all digests are byte-identical.")
  in
  let doc =
    "Cross-node UDP_RR ring on the sharded parallel engine: one \
     conservative sub-engine per shard, inter-node links providing the \
     synchronization lookahead.  The scenario the single sequential \
     event loop capped — and the determinism witness for --shards."
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(
      const cluster_cmd $ nodes $ shards $ domains $ seed $ quick $ check
      $ profile_arg)

let fleet_cmd nodes pods rate arrival shards domains seed quick check profile
    fault_rate standby admission autoscale service_us pods_max frontier =
  if nodes <= 0 then begin
    Printf.eprintf "nestsim: --nodes must be positive (got %d)\n" nodes;
    exit 1
  end;
  if pods < 0 then begin
    Printf.eprintf "nestsim: --pods must be >= 0 (got %d)\n" pods;
    exit 1
  end;
  if rate <= 0.0 then begin
    Printf.eprintf "nestsim: --rate must be positive (got %g)\n" rate;
    exit 1
  end;
  if shards <= 0 then begin
    Printf.eprintf "nestsim: --shards must be positive (got %d)\n" shards;
    exit 1
  end;
  if domains <= 0 then begin
    Printf.eprintf "nestsim: --jobs must be positive (got %d)\n" domains;
    exit 1
  end;
  if fault_rate < 0.0 || fault_rate > 1.0 then begin
    Printf.eprintf "nestsim: --fault-rate must be in [0,1] (got %g)\n"
      fault_rate;
    exit 1
  end;
  if standby < 0 then begin
    Printf.eprintf "nestsim: --standby must be >= 0 (got %d)\n" standby;
    exit 1
  end;
  let arrival =
    match arrival with
    | "poisson" -> `Poisson
    | "constant" -> `Constant
    | a ->
      Printf.eprintf
        "nestsim: unknown --arrival %S (expected poisson or constant)\n" a;
      exit 1
  in
  if service_us <= 0.0 then begin
    Printf.eprintf "nestsim: --service-us must be positive (got %g)\n"
      service_us;
    exit 1
  end;
  if pods_max < 1 then begin
    Printf.eprintf "nestsim: --pods-max must be >= 1 (got %d)\n" pods_max;
    exit 1
  end;
  let admission =
    match Nest_experiments.Fig_fleet.admission_of_string admission with
    | Some a -> a
    | None ->
      Printf.eprintf
        "nestsim: unknown --admission %S (expected fixed, burn or codel)\n"
        admission;
      exit 1
  in
  let profile = resolve_profile profile in
  let params =
    { Nest_experiments.Fig_fleet.nodes; pods; rate; arrival; profile;
      fault_rate; standby; admission; autoscale; service_us; pods_max; seed }
  in
  if check then begin
    if not (Nest_experiments.Fig_fleet.check ~params ~quick ()) then exit 1
  end
  else if frontier then
    Nest_experiments.Fig_fleet.frontier ~params ~shards ~domains ~quick ()
  else Nest_experiments.Fig_fleet.run ~params ~shards ~domains ~quick ()

let fleet_term =
  let nodes =
    Arg.(value & opt int 8
         & info [ "nodes" ] ~docv:"N"
             ~doc:"Fleet size: $(docv) full single-node testbeds with \
                   heterogeneous deployment modes (NAT, BrFusion, Hostlo \
                   round-robin).")
  in
  let pods =
    Arg.(value & opt int 200
         & info [ "pods" ] ~docv:"P"
             ~doc:"Cluster-trace pods replayed live through the scheduler \
                   over the measurement window (arrivals, exponential \
                   lifetimes, departures; unschedulable arrivals are \
                   counted).")
  in
  let rate =
    Arg.(value & opt float 2000.0
         & info [ "rate" ] ~docv:"R"
             ~doc:"Fleet-wide open-loop arrival rate in requests/s, split \
                   evenly across nodes.  Arrivals never wait for \
                   completions: latency is measured from each request's \
                   scheduled start, so coordinated omission is impossible.")
  in
  let arrival =
    Arg.(value & opt string "poisson"
         & info [ "arrival" ] ~docv:"A"
             ~doc:"Arrival process: $(b,poisson) (default) or \
                   $(b,constant).")
  in
  let domains =
    Arg.(value & opt int 1
         & info [ "jobs"; "domains" ] ~docv:"D"
             ~doc:"OS-level parallelism: pump the shards from $(docv) \
                   domains (capped at the shard count).  The digest is \
                   identical for any value.")
  in
  let seed =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Root seed; every node, link and churn stream keys off \
                   it, so the outcome is independent of placement.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Determinism guard: digest the scenario at (shards, \
                   domains) = (1,1), (2,1), (4,2) and (4,4); exit non-zero \
                   unless all digests are byte-identical.")
  in
  let fault_rate =
    Arg.(value & opt float 0.0
         & info [ "fault-rate" ] ~docv:"F"
             ~doc:"Per-link-direction probability of one flap (admin-down \
                   then up) during the window — the fleet-scale chaos \
                   plan.  0 disables (default).")
  in
  let standby =
    Arg.(value & opt int 0
         & info [ "standby" ] ~docv:"S"
             ~doc:"Hostlo standby endpoint pool depth per (VM, pod) on the \
                   fleet's Hostlo nodes (see $(b,chaos --standby)); also \
                   the number of warm (instant-activation) workers per \
                   serving pod pool.")
  in
  let admission =
    Arg.(value & opt string "fixed"
         & info [ "admission" ] ~docv:"POLICY"
             ~doc:"Client-side shed policy: $(b,fixed) (outstanding bound, \
                   default), $(b,burn) (AIMD concurrency limit driven by \
                   the node's latency-SLO burn rate, with hysteresis) or \
                   $(b,codel) (deadline-aware dropping).")
  in
  let autoscale =
    Arg.(value & flag
         & info [ "autoscale" ]
             ~doc:"Per-node pod autoscaling: each serving pool is driven \
                   by a server-side SLO-burn controller (proportional \
                   scale-up, cooled-down one-step scale-down with drain), \
                   bounded by the node's static replica headroom.")
  in
  let service_us =
    Arg.(value & opt float 0.25
         & info [ "service-us" ] ~docv:"US"
             ~doc:"Per-request service cost on a serving pod, in \
                   microseconds.  Raise it to move the fleet's bottleneck \
                   from the network to the pods (and give admission and \
                   autoscaling something to fight).")
  in
  let pods_max =
    Arg.(value & opt int 4
         & info [ "pods-max" ] ~docv:"K"
             ~doc:"Per-node serving-pool ceiling; the effective maximum is \
                   further clamped by the node's remaining capacity at \
                   setup (Autopilot replica headroom).")
  in
  let frontier =
    Arg.(value & flag
         & info [ "frontier" ]
             ~doc:"Shedding-vs-scaling sweep: degraded link profiles (wan, \
                   lossy, flaky) crossed with the admission x autoscaling \
                   grid; one row per (link, control, mode).")
  in
  let doc =
    "Fleet-scale trace replay: open-loop load generation (intended-start \
     timestamping, pluggable SLO-burn admission control) across a \
     heterogeneous sharded fleet with per-node pod autoscaling, plus a \
     live cluster-trace churning through the scheduler — per-mode SLO \
     compliance and merged HDR percentiles."
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(
      const fleet_cmd $ nodes $ pods $ rate $ arrival $ shards $ domains
      $ seed $ quick $ check $ profile_arg $ fault_rate $ standby $ admission
      $ autoscale $ service_us $ pods_max $ frontier)

let trace_term =
  let users =
    Arg.(value & opt int 492 & info [ "users" ] ~doc:"Number of users.")
  in
  let seed = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"PRNG seed.") in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~doc:"Output file.")
  in
  let action =
    Arg.(value & pos 0 (enum [ ("gen", `Gen); ("stats", `Stats) ]) `Gen
           & info [] ~docv:"ACTION")
  in
  let file =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE")
  in
  let doc = "Generate or summarize synthetic cluster traces." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const (fun action users seed out file ->
          match action with
          | `Gen -> trace_gen users seed out
          | `Stats -> (
            match file with
            | Some f -> trace_stats f
            | None -> prerr_endline "trace stats: FILE required"; Stdlib.exit 1))
      $ action $ users $ seed $ out $ file)

let main =
  let doc = "Nested Virtualization Without the Nest — experiment driver" in
  Cmd.group
    (Cmd.info "nestsim" ~version:"1.0.0" ~doc)
    ~default:Term.(const (fun () -> list_cmd ()) $ const ())
    [ run_term; list_term; obs_term; chaos_term; cluster_term; fleet_term;
      trace_term ]

let () = exit (Cmd.eval main)
