(* Tests for the container engine and the orchestrator. *)

open Nest_net
module Engine = Nest_sim.Engine
module Time = Nest_sim.Time
module Docker = Nest_container.Engine
module Image = Nest_container.Image
module Boot_model = Nest_container.Boot_model
open Nest_orch

let qtest = QCheck_alcotest.to_alcotest
let ip = Ipv4.of_string
let cidr = Ipv4.cidr_of_string

let world ?(num_vms = 1) () =
  let tb = Nestfusion.Testbed.create ~num_vms () in
  Nestfusion.Testbed.run_until tb (Time.ms 1);
  tb

(* ------------------------------------------------------------------ *)
(* Image / boot model *)

let test_image_pull () =
  let rng = Nest_sim.Prng.create 1L in
  let img = Image.make ~name:"big" ~size_mb:400 () in
  Alcotest.(check int) "cached pull is free" 0
    (Image.pull_delay_ns img ~cached:true ~rng);
  let d = Image.pull_delay_ns img ~cached:false ~rng in
  Alcotest.(check bool) "cold pull takes seconds" true
    (d > Time.sec 5 && d < Time.sec 30)

let test_boot_model_shapes =
  QCheck.Test.make ~name:"boot phases are positive; NAT pays network setup"
    ~count:200 QCheck.int64
    (fun seed ->
      let rng = Nest_sim.Prng.create seed in
      let nat = Boot_model.sample rng ~network:(`Bridge_nat 8) in
      let brf = Boot_model.sample rng ~network:`Brfusion in
      nat.Boot_model.runtime_ns > 0
      && nat.Boot_model.app_ns > 0
      && nat.Boot_model.network_ns > 0
      && brf.Boot_model.network_ns = 0
      && Boot_model.total_ns nat
         = nat.Boot_model.runtime_ns + nat.Boot_model.network_ns
           + nat.Boot_model.app_ns)

let test_boot_network_grows_with_rules () =
  let rng = Nest_sim.Prng.create 3L in
  let avg n =
    let total = ref 0 in
    for _ = 1 to 200 do
      total :=
        !total + (Boot_model.sample rng ~network:(`Bridge_nat n)).Boot_model.network_ns
    done;
    !total / 200
  in
  Alcotest.(check bool) "100 rules cost more than 0" true (avg 100 > avg 0)

(* ------------------------------------------------------------------ *)
(* Docker engine *)

let test_docker_lifecycle_and_boot_duration () =
  let tb = world () in
  let vm = Nestfusion.Testbed.vm tb 0 in
  let docker = Node.docker (Nestfusion.Testbed.node tb 0) in
  let netns = Nest_virt.Vm.new_netns vm ~name:"c1" () in
  let ready = ref None in
  let c =
    Docker.run docker ~name:"c1" ~entity:"app1"
      ~image:(Image.make ~name:"alpine" ~size_mb:8 ())
      ~netns
      ~net_setup:(fun k -> Docker.nat_net_setup docker ~netns ~publish:[] k)
      ~on_ready:(fun c -> ready := Some c)
      ()
  in
  Alcotest.(check bool) "creating" true (Docker.state c = `Creating);
  Alcotest.(check bool) "no duration yet" true (Docker.boot_duration_ns c = None);
  Nestfusion.Testbed.run_until tb (Time.sec 20);
  Alcotest.(check bool) "became ready" true (!ready <> None);
  Alcotest.(check bool) "running" true (Docker.state c = `Running);
  (match Docker.boot_duration_ns c with
  | Some d ->
    Alcotest.(check bool)
      (Printf.sprintf "boot in a docker-like band (got %.0f ms)" (Time.to_ms_f d))
      true
      (d > Time.ms 100 && d < Time.sec 3)
  | None -> Alcotest.fail "no boot duration");
  Alcotest.(check int) "listed" 1 (List.length (Docker.containers docker));
  Docker.stop docker c;
  Alcotest.(check bool) "stopped" true (Docker.state c = `Stopped);
  Alcotest.(check int) "unlisted" 0 (List.length (Docker.containers docker))

let test_docker_nat_connectivity () =
  (* A NAT-networked container must reach its VM's gateway and be
     reachable from the host client through the published port. *)
  let tb = world () in
  let vm = Nestfusion.Testbed.vm tb 0 in
  let docker = Node.docker (Nestfusion.Testbed.node tb 0) in
  let netns = Nest_virt.Vm.new_netns vm ~name:"web" () in
  let ready = ref false in
  Docker.nat_net_setup docker ~netns ~publish:[ (8080, 80) ] (fun () ->
      ready := true);
  Nestfusion.Testbed.run_until tb (Time.sec 2);
  Alcotest.(check bool) "net setup done" true !ready;
  (* Container -> docker0 gateway. *)
  let got_gw = ref false in
  Stack.ping netns ~dst:(ip "172.17.0.1") ~on_reply:(fun ~rtt_ns:_ ->
      got_gw := true);
  Nestfusion.Testbed.run_until tb (Time.sec 3);
  Alcotest.(check bool) "container reaches docker0 gateway" true !got_gw;
  (* Client -> published port, DNAT into the container. *)
  let got = ref false in
  let _srv = Stack.Udp.bind netns ~port:80 (fun _ ~src:_ _ -> got := true) in
  let cl = Stack.Udp.bind tb.Nestfusion.Testbed.client_ns ~port:0
      (fun _ ~src:_ _ -> ()) in
  Stack.Udp.sendto cl ~dst:(ip "10.0.0.2") ~dst_port:8080 (Payload.raw 32);
  Nestfusion.Testbed.run_until tb (Time.sec 4);
  Alcotest.(check bool) "published port reaches container" true !got

let test_docker_armed_netfilter () =
  let tb = world () in
  let vm = Nestfusion.Testbed.vm tb 0 in
  let docker = Node.docker (Nestfusion.Testbed.node tb 0) in
  let nf = Stack.nf (Nest_virt.Vm.ns vm) in
  let rules_before =
    List.fold_left
      (fun a h -> a + Netfilter.rule_count nf h)
      0
      [ Netfilter.Prerouting; Netfilter.Forward; Netfilter.Postrouting ]
  in
  Alcotest.(check int) "pristine VM has no rules" 0 rules_before;
  ignore (Docker.ensure_bridge docker);
  let rules_after =
    List.fold_left
      (fun a h -> a + Netfilter.rule_count nf h)
      0
      [ Netfilter.Prerouting; Netfilter.Forward; Netfilter.Postrouting ]
  in
  Alcotest.(check bool) "docker installs its chains" true (rules_after >= 7)

(* ------------------------------------------------------------------ *)
(* Orchestrator *)

let test_node_reservation () =
  let tb = world () in
  let node = Nestfusion.Testbed.node tb 0 in
  Alcotest.(check (float 1e-9)) "cpu capacity from vcpus" 5.0 (Node.cpu_capacity node);
  Alcotest.(check (float 1e-9)) "mem capacity GB" 4.0 (Node.mem_capacity node);
  Alcotest.(check bool) "fits" true (Node.fits node ~cpu:5.0 ~mem:4.0);
  Node.reserve node ~cpu:3.0 ~mem:2.0;
  Alcotest.(check bool) "remaining fits" true (Node.fits node ~cpu:2.0 ~mem:2.0);
  Alcotest.(check bool) "overcommit rejected" false
    (Node.fits node ~cpu:2.5 ~mem:1.0);
  Alcotest.check_raises "reserve raises on overcommit"
    (Invalid_argument "Node.reserve: overcommit on vm1") (fun () ->
      Node.reserve node ~cpu:3.0 ~mem:1.0);
  Node.release node ~cpu:3.0 ~mem:2.0;
  Alcotest.(check (float 1e-9)) "released" 0.0 (Node.cpu_requested node)

let test_scheduler_policies () =
  let tb = world ~num_vms:2 () in
  let n1 = Nestfusion.Testbed.node tb 0 and n2 = Nestfusion.Testbed.node tb 1 in
  Node.reserve n1 ~cpu:3.0 ~mem:1.0;
  (* most requested consolidates onto the busier node. *)
  (match Scheduler.most_requested [ n1; n2 ] ~cpu:1.0 ~mem:1.0 with
  | Some n -> Alcotest.(check string) "most-requested" "vm1" (Node.name n)
  | None -> Alcotest.fail "no node");
  (match Scheduler.least_requested [ n1; n2 ] ~cpu:1.0 ~mem:1.0 with
  | Some n -> Alcotest.(check string) "least-requested spreads" "vm2" (Node.name n)
  | None -> Alcotest.fail "no node");
  (* When the busy node can't fit, fall over to the other. *)
  (match Scheduler.most_requested [ n1; n2 ] ~cpu:3.0 ~mem:1.0 with
  | Some n -> Alcotest.(check string) "feasibility first" "vm2" (Node.name n)
  | None -> Alcotest.fail "no node");
  Alcotest.(check bool) "nothing fits" true
    (Scheduler.most_requested [ n1; n2 ] ~cpu:99.0 ~mem:1.0 = None)

let test_cni_registry () =
  Cni.reset_registry ();
  let p = Cni_bridge.plugin () in
  Cni.register p;
  Alcotest.(check bool) "found" true (Cni.find "bridge-nat" <> None);
  Alcotest.check_raises "duplicate"
    (Failure "Cni.register: duplicate plugin bridge-nat") (fun () ->
      Cni.register (Cni_bridge.plugin ()));
  Alcotest.(check (list string)) "names" [ "bridge-nat" ] (Cni.names ());
  Cni.reset_registry ();
  Alcotest.(check bool) "reset" true (Cni.find "bridge-nat" = None)

let test_kube_deploy_pod () =
  let tb = world ~num_vms:2 () in
  let kube =
    Kube.create tb.Nestfusion.Testbed.engine ~default_cni:(Cni_bridge.plugin ())
  in
  Kube.add_node kube (Nestfusion.Testbed.node tb 0);
  Kube.add_node kube (Nestfusion.Testbed.node tb 1);
  let pod =
    Pod.make ~name:"web"
      [ Pod.container ~name:"nginx" ~cpu:2.0 ~mem:1.0 ~ports:[ (8080, 80) ] ();
        Pod.container ~name:"sidecar" ~cpu:0.5 ~mem:0.5 () ]
  in
  Alcotest.(check (float 1e-9)) "pod cpu" 2.5 (Pod.cpu_total pod);
  let dep = ref None in
  Kube.deploy_pod kube pod ~on_ready:(fun d -> dep := Some d) ();
  Nestfusion.Testbed.run_until tb (Time.sec 30);
  match !dep with
  | None -> Alcotest.fail "pod never became ready"
  | Some d ->
    Alcotest.(check int) "both containers" 2 (List.length d.Kube.dep_containers);
    Alcotest.(check bool) "containers run in pod ns" true
      (List.for_all
         (fun c -> Docker.netns c == d.Kube.dep_ns)
         d.Kube.dep_containers);
    Alcotest.(check (float 1e-9)) "resources reserved" 2.5
      (Node.cpu_requested d.Kube.dep_node);
    Alcotest.(check int) "deployment listed" 1 (List.length (Kube.deployments kube));
    Kube.delete_pod kube d;
    Alcotest.(check (float 1e-9)) "released" 0.0
      (Node.cpu_requested d.Kube.dep_node);
    Alcotest.(check int) "delisted" 0 (List.length (Kube.deployments kube))

let test_kube_no_fit () =
  let tb = world () in
  let kube =
    Kube.create tb.Nestfusion.Testbed.engine ~default_cni:(Cni_bridge.plugin ())
  in
  Kube.add_node kube (Nestfusion.Testbed.node tb 0);
  let monster = Pod.make ~name:"huge" [ Pod.container ~name:"x" ~cpu:64.0 () ] in
  Alcotest.check_raises "no node fits"
    (Failure "Kube.deploy_pod: no node fits huge") (fun () ->
      Kube.deploy_pod kube monster ~on_ready:(fun _ -> ()) ())

let test_nat_ip_released_on_stop () =
  let tb = world () in
  let vm = Nestfusion.Testbed.vm tb 0 in
  let docker = Node.docker (Nestfusion.Testbed.node tb 0) in
  let boot i =
    let netns = Nest_virt.Vm.new_netns vm ~name:(Printf.sprintf "c%d" i) () in
    let ready = ref None in
    let c =
      Docker.run docker ~name:(Printf.sprintf "c%d" i) ~entity:"app"
        ~image:(Image.make ~name:"alpine" ~size_mb:8 ())
        ~netns
        ~net_setup:(fun k -> Docker.nat_net_setup docker ~netns ~publish:[] k)
        ~on_ready:(fun c -> ready := Some c)
        ()
    in
    Nestfusion.Testbed.run_until tb
      (Nest_sim.Engine.now tb.Nestfusion.Testbed.engine + Time.sec 20);
    ignore !ready;
    (c, netns)
  in
  let c1, ns1 = boot 1 in
  let ip1 =
    match Stack.addrs ns1 with
    | (_, ip, _) :: _ when Ipv4.in_subnet Docker.docker0_subnet ip -> Some ip
    | _ ->
      List.find_map
        (fun (_, ip, _) ->
          if Ipv4.in_subnet Docker.docker0_subnet ip then Some ip else None)
        (Stack.addrs ns1)
  in
  Docker.stop docker c1;
  let _, ns2 = boot 2 in
  let ip2 =
    List.find_map
      (fun (_, ip, _) ->
        if Ipv4.in_subnet Docker.docker0_subnet ip then Some ip else None)
      (Stack.addrs ns2)
  in
  Alcotest.(check bool) "released address reused" true
    (match (ip1, ip2) with
    | Some a, Some b -> Ipv4.equal a b
    | _ -> false)

let test_kubelet_agent () =
  let tb = world () in
  let node = Nestfusion.Testbed.node tb 0 in
  let kl = Kubelet.of_node node in
  Alcotest.(check bool) "idempotent per node" true (Kubelet.of_node node == kl);
  (* Drive the paper's step 3-4 by hand: VMM announces a MAC, the agent
     discovers and configures. *)
  let netns = Nest_virt.Vm.new_netns (Node.vm node) ~name:"p" () in
  let configured = ref None in
  Nest_virt.Vmm.hotplug_nic_mac tb.Nestfusion.Testbed.vmm ~vm:(Node.vm node)
    ~bridge:"virbr0" ~id:"n1"
    ~k:(fun r ->
      match r with
      | Error e -> Alcotest.fail ("hotplug failed: " ^ e)
      | Ok mac ->
        Kubelet.configure_nic kl ~netns ~mac ~ip:(ip "10.0.0.88")
          ~subnet:(cidr "10.0.0.0/24") ~gateway:(ip "10.0.0.1")
          ~k:(fun dev -> configured := Some dev)
          ());
  Nestfusion.Testbed.run_until tb (Time.sec 1);
  (match !configured with
  | None -> Alcotest.fail "agent never configured the NIC"
  | Some dev ->
    Alcotest.(check bool) "attached into the pod namespace" true
      (List.memq dev (Stack.devices netns));
    Alcotest.(check bool) "addressed" true
      (Stack.is_local_addr netns (ip "10.0.0.88")));
  Alcotest.(check int) "counted" 1 (Kubelet.pods_configured kl);
  Alcotest.(check bool) "status mentions the node" true
    (String.length (Kubelet.status kl) > 0
    && String.sub (Kubelet.status kl) 0 3 = "vm1")

let test_overlay_pods_isolated_network () =
  (* Two pods on the same overlay get distinct addresses and can talk. *)
  let tb = world ~num_vms:2 () in
  let net =
    Cni_overlay.create ~name:"ov" ~vni:77 ~subnet:(cidr "10.99.0.0/24")
  in
  let plugin = Cni_overlay.plugin net in
  let ns_a = ref None and ns_b = ref None in
  plugin.Cni.add ~pod_name:"pa" ~node:(Nestfusion.Testbed.node tb 0) ~publish:[]
    ~k:(fun ns -> ns_a := Some ns);
  plugin.Cni.add ~pod_name:"pb" ~node:(Nestfusion.Testbed.node tb 1) ~publish:[]
    ~k:(fun ns -> ns_b := Some ns);
  Nestfusion.Testbed.run_until tb (Time.sec 1);
  let a = Option.get !ns_a and b = Option.get !ns_b in
  let ip_a = Option.get (Cni_overlay.pod_ip net a) in
  let ip_b = Option.get (Cni_overlay.pod_ip net b) in
  Alcotest.(check bool) "distinct addresses" false (Ipv4.equal ip_a ip_b);
  Alcotest.(check int) "both nodes joined" 2 (List.length (Cni_overlay.members net));
  let got = ref false in
  let _srv = Stack.Udp.bind b ~port:5555 (fun _ ~src:_ _ -> got := true) in
  let cl = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  Stack.Udp.sendto cl ~dst:ip_b ~dst_port:5555 (Payload.raw 700);
  Nestfusion.Testbed.run_until tb (Time.sec 3);
  Alcotest.(check bool) "cross-VM overlay datagram" true !got

let () =
  Alcotest.run "container+orch"
    [ ( "image+boot",
        [ Alcotest.test_case "pull" `Quick test_image_pull;
          qtest test_boot_model_shapes;
          Alcotest.test_case "rules grow setup" `Quick
            test_boot_network_grows_with_rules ] );
      ( "docker",
        [ Alcotest.test_case "lifecycle" `Quick test_docker_lifecycle_and_boot_duration;
          Alcotest.test_case "nat connectivity" `Quick test_docker_nat_connectivity;
          Alcotest.test_case "armed netfilter" `Quick test_docker_armed_netfilter ]
      );
      ( "orchestrator",
        [ Alcotest.test_case "node reservation" `Quick test_node_reservation;
          Alcotest.test_case "scheduler" `Quick test_scheduler_policies;
          Alcotest.test_case "cni registry" `Quick test_cni_registry;
          Alcotest.test_case "kube deploy" `Quick test_kube_deploy_pod;
          Alcotest.test_case "kube no fit" `Quick test_kube_no_fit;
          Alcotest.test_case "overlay isolation" `Quick
            test_overlay_pods_isolated_network;
          Alcotest.test_case "kubelet agent" `Quick test_kubelet_agent;
          Alcotest.test_case "nat ip released" `Quick
            test_nat_ip_released_on_stop ] ) ]
