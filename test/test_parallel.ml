(* Domain-parallel experiment harness: Domain_pool semantics and the
   determinism guard — fanning cells across domains must change
   wall-clock only, never results. *)

module Domain_pool = Nest_sim.Domain_pool
module Par = Nest_experiments.Exp_util.Par

let test_pool_preserves_order () =
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Domain_pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7; 100; 200 ]

let test_pool_empty_and_small () =
  Alcotest.(check (list int)) "empty input" []
    (Domain_pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "one item" [ 3 ]
    (Domain_pool.map ~jobs:4 (fun x -> x + 1) [ 2 ]);
  Alcotest.(check (list int)) "jobs=0 degrades to sequential" [ 1; 2 ]
    (Domain_pool.map ~jobs:0 Fun.id [ 1; 2 ])

exception Boom of int

let test_pool_reraises () =
  Alcotest.check_raises "first failing index wins" (Boom 3) (fun () ->
      ignore
        (Domain_pool.map ~jobs:4
           (fun x -> if x >= 3 then raise (Boom x) else x)
           [ 0; 1; 2; 3; 4; 5 ]));
  (* All domains must have joined: the pool is reusable after a failure. *)
  Alcotest.(check (list int)) "pool usable after exception" [ 0; 2; 4 ]
    (Domain_pool.map ~jobs:2 (fun x -> 2 * x) [ 0; 1; 2 ])

let test_pool_actually_parallel () =
  (* With 4 domains and 4 sleepers, wall-clock must be well under the
     sequential sum (generous bound to stay robust on loaded hosts). *)
  let t0 = Unix.gettimeofday () in
  ignore (Domain_pool.map ~jobs:4 (fun _ -> Unix.sleepf 0.2) [ (); (); (); () ]);
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "4x 200ms sleeps in %.2fs < 0.75s" dt)
    true (dt < 0.75)

(* ------------------------------------------------------------------ *)
(* Determinism guard: the real harness path at --jobs 1 vs --jobs 4. *)

let sweep () =
  Nest_experiments.Fig_netperf.sweep_single ~quick:true ~mode:`Nat
    ~sizes:[ 64; 1024 ]

let test_jobs_determinism () =
  Par.set_jobs 1;
  let serial = sweep () in
  Par.set_jobs 4;
  let parallel = sweep () in
  Par.set_jobs 1;
  Alcotest.(check int) "same number of points" (List.length serial)
    (List.length parallel);
  let open Nest_experiments.Fig_netperf in
  List.iter2
    (fun (s : point) (p : point) ->
      Alcotest.(check int) "size" s.size p.size;
      Alcotest.(check (float 0.0)) "mbps bit-identical" s.mbps p.mbps;
      Alcotest.(check (float 0.0)) "latency bit-identical" s.lat_mean_us
        p.lat_mean_us;
      Alcotest.(check (float 0.0)) "latency sd bit-identical" s.lat_sd_us
        p.lat_sd_us)
    serial parallel

let () =
  Alcotest.run "parallel"
    [ ( "domain_pool",
        [ Alcotest.test_case "order preserved" `Quick test_pool_preserves_order;
          Alcotest.test_case "edge cases" `Quick test_pool_empty_and_small;
          Alcotest.test_case "exceptions re-raised" `Quick test_pool_reraises;
          Alcotest.test_case "parallel wall-clock" `Quick
            test_pool_actually_parallel ] );
      ( "determinism",
        [ Alcotest.test_case "jobs=1 equals jobs=4" `Quick
            test_jobs_determinism ] ) ]
