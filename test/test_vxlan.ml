(* Direct VTEP tests: encapsulation, FDB-directed unicast vs flood, and
   counters — below the CNI overlay plugin that normally drives it. *)

open Nest_net
module Engine = Nest_sim.Engine
module Exec = Nest_sim.Exec
module Time = Nest_sim.Time

let cheap_costs e =
  let sys_exec = Exec.create e ~name:"sys" in
  let soft_exec = Exec.create e ~name:"soft" in
  { Stack.tx = Hop.make sys_exec ~fixed_ns:100;
    rx = Hop.make soft_exec ~fixed_ns:100;
    forward = Hop.make soft_exec ~fixed_ns:50;
    nat = Hop.make soft_exec ~fixed_ns:50;
    nat_per_rule_ns = 10;
    local = Hop.make sys_exec ~fixed_ns:100;
    syscall = Hop.make sys_exec ~fixed_ns:50;
    wakeup_delay_ns = 0 }

let ip = Ipv4.of_string
let cidr = Ipv4.cidr_of_string

(* Three underlay namespaces on one segment, each with a VTEP. *)
let world () =
  let e = Engine.create () in
  let mk i =
    let ns =
      Stack.create e ~name:(Printf.sprintf "u%d" i) ~costs:(cheap_costs e) ()
    in
    (ns, Ipv4.of_string (Printf.sprintf "10.5.0.%d" i))
  in
  let nodes = List.init 3 (fun i -> mk (i + 1)) in
  (* Full-mesh veths would do; simpler: one bridge in a fourth ns acting
     as the physical switch. *)
  let br_hop = Hop.free e in
  let br = Bridge.create e ~name:"switch" ~hop:br_hop ~self_mac:(Mac.of_int 0xff) () in
  List.iteri
    (fun i (ns, addr) ->
      let a, b =
        Veth.pair
          ~a_name:(Printf.sprintf "u%d:eth0" (i + 1))
          ~a_mac:(Mac.of_int (0x10 + i))
          ~b_name:(Printf.sprintf "sw%d" i)
          ~b_mac:(Mac.of_int (0x20 + i))
          ~ab_hop:(Hop.free e) ~ba_hop:(Hop.free e) ()
      in
      Stack.attach ns a;
      Stack.add_addr ns a addr (cidr "10.5.0.0/24");
      Bridge.attach br b)
    nodes;
  (e, nodes)

let vtep e ns local =
  ignore e;
  Vxlan.create ns ~name:(Stack.name ns ^ "-vtep") ~vni:88 ~local
    ~encap_hop:(Hop.free (Stack.engine ns))
    ~decap_hop:(Hop.free (Stack.engine ns))
    ()

let overlay_frame ~src ~dst =
  Frame.make ~src ~dst
    (Frame.Ipv4_body
       (Packet.make ~src:(ip "10.99.0.1") ~dst:(ip "10.99.0.2")
          (Packet.Udp { src_port = 1000; dst_port = 2000; payload = Payload.raw 64 })))

let test_flood_unknown_unicast () =
  let e, nodes = world () in
  let (ns1, a1) = List.nth nodes 0
  and (_, a2) = List.nth nodes 1
  and (_, a3) = List.nth nodes 2 in
  let v1 = vtep e ns1 a1 in
  Vxlan.add_remote v1 a2;
  Vxlan.add_remote v1 a3;
  (* Receivers on the other two nodes. *)
  let hits = Array.make 3 0 in
  List.iteri
    (fun i (ns, addr) ->
      if i > 0 then begin
        let v = vtep e ns addr in
        let sink = Dev.create ~name:"sink" ~mac:(Mac.of_int (0x50 + i)) () in
        ignore sink;
        Dev.set_rx (Vxlan.dev v) (fun _ -> hits.(i) <- hits.(i) + 1)
      end)
    nodes;
  (* Unknown destination MAC: flood to both remotes. *)
  Dev.transmit (Vxlan.dev v1)
    (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
  Engine.run e;
  Alcotest.(check int) "node2 got the flood" 1 hits.(1);
  Alcotest.(check int) "node3 got the flood" 1 hits.(2);
  Alcotest.(check int) "two encapsulations" 2 (Vxlan.encapsulated v1)

let test_fdb_unicast () =
  let e, nodes = world () in
  let (ns1, a1) = List.nth nodes 0
  and (_, a2) = List.nth nodes 1
  and (_, a3) = List.nth nodes 2 in
  let v1 = vtep e ns1 a1 in
  Vxlan.add_remote v1 a2;
  Vxlan.add_remote v1 a3;
  Vxlan.add_fdb v1 (Mac.of_int 0xbb) a3;
  let hits = Array.make 3 0 in
  List.iteri
    (fun i (ns, addr) ->
      if i > 0 then begin
        let v = vtep e ns addr in
        Dev.set_rx (Vxlan.dev v) (fun _ -> hits.(i) <- hits.(i) + 1)
      end)
    nodes;
  Dev.transmit (Vxlan.dev v1)
    (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
  Engine.run e;
  Alcotest.(check int) "pinned MAC goes only to node3" 0 hits.(1);
  Alcotest.(check int) "node3 got it" 1 hits.(2);
  Alcotest.(check int) "single encapsulation" 1 (Vxlan.encapsulated v1)

let test_decap_counter_and_inner_intact () =
  let e, nodes = world () in
  let (ns1, a1) = List.nth nodes 0 and (ns2, a2) = List.nth nodes 1 in
  let v1 = vtep e ns1 a1 in
  let v2 = vtep e ns2 a2 in
  Vxlan.add_remote v1 a2;
  let inner_seen = ref None in
  Dev.set_rx (Vxlan.dev v2) (fun f -> inner_seen := Some f);
  Dev.transmit (Vxlan.dev v1)
    (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
  Engine.run e;
  (match !inner_seen with
  | None -> Alcotest.fail "inner frame lost"
  | Some f -> (
    Alcotest.(check bool) "inner MACs intact" true
      (Mac.equal f.Frame.src (Mac.of_int 0xaa)
      && Mac.equal f.Frame.dst (Mac.of_int 0xbb));
    match f.Frame.body with
    | Frame.Ipv4_body p ->
      Alcotest.(check string) "inner IP intact" "10.99.0.2"
        (Ipv4.to_string p.Packet.dst)
    | Frame.Arp_body _ -> Alcotest.fail "wrong inner body"));
  Alcotest.(check int) "decap counted" 1 (Vxlan.decapsulated v2);
  Alcotest.(check int) "vni accessor" 88 (Vxlan.vni v2)

let test_no_remotes_drops_silently () =
  let e, nodes = world () in
  let (ns1, a1) = List.nth nodes 0 in
  let v1 = vtep e ns1 a1 in
  Dev.transmit (Vxlan.dev v1)
    (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
  Engine.run e;
  Alcotest.(check int) "nothing encapsulated without peers" 0
    (Vxlan.encapsulated v1)

(* ------------------------------------------------------------------ *)
(* Composed-verdict cache: one lookup per steady-state overlay packet,
   invalidated by FDB/flood churn, revalidated against the underlay. *)

let test_compose_hits_accumulate () =
  let e, nodes = world () in
  let (ns1, a1) = List.nth nodes 0
  and (_, a2) = List.nth nodes 1
  and (_, a3) = List.nth nodes 2 in
  let v1 = vtep e ns1 a1 in
  Vxlan.add_remote v1 a2;
  Vxlan.add_remote v1 a3;
  Vxlan.add_fdb v1 (Mac.of_int 0xbb) a3;
  let hits = Array.make 3 0 in
  List.iteri
    (fun i (ns, addr) ->
      if i > 0 then begin
        let v = vtep e ns addr in
        Dev.set_rx (Vxlan.dev v) (fun _ -> hits.(i) <- hits.(i) + 1)
      end)
    nodes;
  for _ = 1 to 6 do
    Dev.transmit (Vxlan.dev v1)
      (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
    Engine.run e
  done;
  let ch, cm = Vxlan.compose_stats v1 in
  Alcotest.(check int) "one composed miss" 1 cm;
  Alcotest.(check int) "rest are composed hits" 5 ch;
  Alcotest.(check int) "all delivered to the pinned node" 6 hits.(2);
  Alcotest.(check int) "flood node untouched" 0 hits.(1);
  Alcotest.(check int) "six encapsulations" 6 (Vxlan.encapsulated v1)

let test_remove_remote_redirects_flood () =
  let e, nodes = world () in
  let (ns1, a1) = List.nth nodes 0
  and (_, a2) = List.nth nodes 1
  and (_, a3) = List.nth nodes 2 in
  let v1 = vtep e ns1 a1 in
  Vxlan.add_remote v1 a2;
  Vxlan.add_remote v1 a3;
  Vxlan.add_fdb v1 (Mac.of_int 0xbb) a3;
  let hits = Array.make 3 0 in
  List.iteri
    (fun i (ns, addr) ->
      if i > 0 then begin
        let v = vtep e ns addr in
        Dev.set_rx (Vxlan.dev v) (fun _ -> hits.(i) <- hits.(i) + 1)
      end)
    nodes;
  (* Warm the composed verdict toward node3... *)
  for _ = 1 to 3 do
    Dev.transmit (Vxlan.dev v1)
      (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
    Engine.run e
  done;
  Alcotest.(check int) "warm: pinned node receiving" 3 hits.(2);
  (* ...then node3 dies and is pruned (Cni_overlay failover path).  The
     warm verdict must die with it: the flow falls back to flooding the
     surviving member, not encapsulating into the void. *)
  Vxlan.remove_remote v1 a3;
  for _ = 1 to 2 do
    Dev.transmit (Vxlan.dev v1)
      (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
    Engine.run e
  done;
  Alcotest.(check int) "dead VTEP gets nothing more" 3 hits.(2);
  Alcotest.(check int) "survivor now floods" 2 hits.(1);
  let _, cm = Vxlan.compose_stats v1 in
  Alcotest.(check int) "exactly one re-composition" 2 cm

let test_underlay_rule_not_bypassed () =
  let e, nodes = world () in
  let (ns1, a1) = List.nth nodes 0 and (_, a3) = List.nth nodes 2 in
  let v1 = vtep e ns1 a1 in
  Vxlan.add_remote v1 a3;
  Vxlan.add_fdb v1 (Mac.of_int 0xbb) a3;
  let got = ref 0 in
  let (ns3, _) = List.nth nodes 2 in
  let v3 = vtep e ns3 a3 in
  Dev.set_rx (Vxlan.dev v3) (fun _ -> incr got);
  for _ = 1 to 3 do
    Dev.transmit (Vxlan.dev v1)
      (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
    Engine.run e
  done;
  Alcotest.(check int) "warm through the underlay" 3 !got;
  (* A firewall rule lands in the underlay under the warm tunnel: the
     composed verdict may not bypass it — the underlay half revalidates
     on every send. *)
  Nat.drop_from (Stack.nf ns1) ~name:"deny" ~hook:Netfilter.Output
    ~src_subnet:(cidr "10.5.0.0/24");
  Dev.transmit (Vxlan.dev v1)
    (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
  Engine.run e;
  Alcotest.(check int) "new underlay rule drops despite warm encap" 3 !got;
  let ch, _ = Vxlan.compose_stats v1 in
  Alcotest.(check bool) "composition itself still hits" true (ch >= 3)

let run_overlay_exchange ~cache () =
  let e, nodes = world () in
  if not cache then
    List.iter (fun (ns, _) -> Stack.set_flow_cache ns false) nodes;
  let (ns1, a1) = List.nth nodes 0
  and (_, a2) = List.nth nodes 1
  and (_, a3) = List.nth nodes 2 in
  let v1 = vtep e ns1 a1 in
  Vxlan.add_remote v1 a2;
  Vxlan.add_remote v1 a3;
  let decaps = Array.make 3 0 in
  let vteps =
    List.mapi
      (fun i (ns, addr) ->
        if i > 0 then begin
          let v = vtep e ns addr in
          Dev.set_rx (Vxlan.dev v) (fun _ -> decaps.(i) <- decaps.(i) + 1);
          Some v
        end
        else None)
      nodes
  in
  (* Flood first (unknown unicast), then pin, then churn the pin. *)
  for _ = 1 to 3 do
    Dev.transmit (Vxlan.dev v1)
      (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
    Engine.run e
  done;
  Vxlan.add_fdb v1 (Mac.of_int 0xbb) a3;
  for _ = 1 to 3 do
    Dev.transmit (Vxlan.dev v1)
      (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
    Engine.run e
  done;
  Vxlan.remove_remote v1 a3;
  for _ = 1 to 3 do
    Dev.transmit (Vxlan.dev v1)
      (overlay_frame ~src:(Mac.of_int 0xaa) ~dst:(Mac.of_int 0xbb));
    Engine.run e
  done;
  ignore vteps;
  [ decaps.(1); decaps.(2); Vxlan.encapsulated v1; Engine.now e ]

let test_overlay_on_off_equivalent () =
  Alcotest.(check (list int))
    "overlay churn identical with cache on/off"
    (run_overlay_exchange ~cache:false ())
    (run_overlay_exchange ~cache:true ())

let () =
  Alcotest.run "vxlan"
    [ ( "vtep",
        [ Alcotest.test_case "flood unknown" `Quick test_flood_unknown_unicast;
          Alcotest.test_case "fdb unicast" `Quick test_fdb_unicast;
          Alcotest.test_case "decap intact" `Quick
            test_decap_counter_and_inner_intact;
          Alcotest.test_case "no remotes" `Quick test_no_remotes_drops_silently ]
      );
      ( "compose",
        [ Alcotest.test_case "hits accumulate" `Quick
            test_compose_hits_accumulate;
          Alcotest.test_case "remove_remote churn" `Quick
            test_remove_remote_redirects_flood;
          Alcotest.test_case "underlay rule not bypassed" `Quick
            test_underlay_rule_not_bypassed;
          Alcotest.test_case "on/off identical" `Quick
            test_overlay_on_off_equivalent ] ) ]
