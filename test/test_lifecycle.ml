(* Tests for the VM lifecycle state machine (lib/virt/vmm.ml): random
   legal/illegal transition sequences never take the machine outside its
   four states or trip an illegal transition, and the two directed races
   — crash landing inside a restart's boot window, and a restart racing
   a Hostlo queue detach — resolve to consistent state. *)

module Time = Nest_sim.Time
module Testbed = Nestfusion.Testbed
module Vmm = Nest_virt.Vmm
module Tap = Nest_net.Tap

let check_consistent ?(msg = "invariants hold") tb =
  Alcotest.(check int) "no illegal transitions" 0
    (Vmm.illegal_transitions tb.Testbed.vmm);
  Alcotest.(check (list string)) msg [] (Vmm.check_invariants tb.Testbed.vmm)

(* ------------------------------------------------------------------ *)
(* Property: random sequences of crash/restart requests — many of them
   illegal for the state the VM happens to be in — are either performed
   (legal edge) or refused (restart_vm returns false, crash_vm no-ops).
   The machine itself never records an illegal transition, and after the
   dust settles the cross-table invariants hold. *)

let legal_restart st = st = Some Vmm.Down

let test_random_transition_sequences () =
  List.iter
    (fun seed ->
      let tb = Testbed.create ~num_vms:2 ~seed:(Int64.of_int seed) () in
      Testbed.run_until tb (Time.ms 1);
      let vmm = tb.Testbed.vmm in
      let rng = Random.State.make [| seed |] in
      let t = ref (Time.ms 1) in
      for _ = 1 to 60 do
        let name = if Random.State.bool rng then "vm1" else "vm2" in
        (match Random.State.int rng 3 with
        | 0 -> Vmm.crash_vm vmm ~name
        | 1 ->
          let st = Vmm.lifecycle vmm name in
          let accepted = Vmm.restart_vm vmm ~name ~k:(fun _ -> ()) () in
          Alcotest.(check bool)
            (Printf.sprintf "restart accepted iff Down (seed %d)" seed)
            (legal_restart st) accepted
        | _ ->
          (* Advance virtual time so boot windows can complete (or be
             crashed into) at random phases. *)
          t := !t + Time.ms (1 + Random.State.int rng 150);
          Testbed.run_until tb !t);
        (match Vmm.lifecycle vmm name with
        | Some (Vmm.Running | Vmm.Crashing | Vmm.Down | Vmm.Restarting) -> ()
        | None -> Alcotest.fail (name ^ " lost its lifecycle entry"));
        Alcotest.(check int)
          (Printf.sprintf "no illegal transitions (seed %d)" seed)
          0
          (Vmm.illegal_transitions vmm)
      done;
      (* Park everything in Running for the final invariant sweep. *)
      t := !t + Time.sec 1;
      Testbed.run_until tb !t;
      List.iter
        (fun name ->
          if Vmm.lifecycle vmm name = Some Vmm.Down then
            ignore (Vmm.restart_vm vmm ~name ~k:(fun _ -> ()) ()))
        [ "vm1"; "vm2" ];
      Testbed.run_until tb (!t + Time.sec 1);
      check_consistent ~msg:(Printf.sprintf "invariants hold (seed %d)" seed)
        tb)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* Directed: a crash landing inside the boot window cancels the pending
   boot (its continuation never fires), parks the VM back at Down, and a
   later restart still works. *)

let test_crash_during_restart () =
  let tb = Testbed.create ~num_vms:1 () in
  Testbed.run_until tb (Time.ms 1);
  let vmm = tb.Testbed.vmm in
  Vmm.crash_vm vmm ~name:"vm1";
  Alcotest.(check bool) "down after crash" true
    (Vmm.lifecycle vmm "vm1" = Some Vmm.Down);
  let booted = ref false in
  let ok = Vmm.restart_vm vmm ~name:"vm1" ~k:(fun _ -> booted := true) () in
  Alcotest.(check bool) "restart accepted" true ok;
  Alcotest.(check bool) "restarting during boot window" true
    (Vmm.lifecycle vmm "vm1" = Some Vmm.Restarting);
  (* Default boot_delay is 100 ms; crash at +50 ms, mid-boot. *)
  Testbed.run_until tb (Time.ms 51);
  Vmm.crash_vm vmm ~name:"vm1";
  Testbed.run_until tb (Time.ms 500);
  Alcotest.(check bool) "cancelled boot never fires" false !booted;
  Alcotest.(check bool) "back down after mid-boot crash" true
    (Vmm.lifecycle vmm "vm1" = Some Vmm.Down);
  let ok2 = Vmm.restart_vm vmm ~name:"vm1" ~k:(fun _ -> booted := true) () in
  Alcotest.(check bool) "second restart accepted" true ok2;
  Testbed.run_until tb (Time.sec 1);
  Alcotest.(check bool) "second restart boots" true !booted;
  Alcotest.(check bool) "running again" true
    (Vmm.lifecycle vmm "vm1" = Some Vmm.Running);
  check_consistent tb

(* ------------------------------------------------------------------ *)
(* Directed: restart issued at the same virtual instant as a crash that
   detaches the VM's Hostlo reflector queue.  The detach must complete
   against the dead incarnation, the reflector survives, and the
   restarted VM's re-added fraction gets a fresh queue — no queue ever
   points at a non-Running VM. *)

let test_restart_during_hostlo_detach () =
  let tb = Testbed.create ~num_vms:2 () in
  Testbed.run_until tb (Time.ms 1);
  let vmm = tb.Testbed.vmm in
  let config = Nestfusion.Hostlo.make_config vmm in
  let plugin = Nestfusion.Hostlo.plugin config in
  let added = ref 0 in
  let add node =
    plugin.Nest_orch.Cni.add ~pod_name:"svc" ~node ~publish:[]
      ~k:(fun _ -> incr added)
  in
  add (Testbed.node tb 0);
  add (Testbed.node tb 1);
  Testbed.run_until tb (Time.sec 1);
  Alcotest.(check int) "both fractions set up" 2 !added;
  let tap =
    match Vmm.find_hostlo vmm "hostlo-svc" with
    | Some tap -> tap
    | None -> Alcotest.fail "reflector tap hostlo-svc not found"
  in
  let owners () =
    List.sort_uniq String.compare (List.map Tap.queue_owner (Tap.queues tap))
  in
  Alcotest.(check (list string)) "one queue per VM" [ "vm1"; "vm2" ]
    (owners ());
  (* Crash and restart back-to-back, zero virtual time apart: the
     restart rides on the tail of the detach. *)
  let booted = ref None in
  Vmm.crash_vm vmm ~name:"vm2";
  let ok =
    Vmm.restart_vm vmm ~name:"vm2"
      ~k:(fun vm' -> booted := Some (Nest_orch.Node.create vm'))
      ()
  in
  Alcotest.(check bool) "immediate restart accepted" true ok;
  Alcotest.(check (list string)) "queue detached despite pending boot"
    [ "vm1" ] (owners ());
  Testbed.run_until tb (Time.sec 2);
  let node' =
    match !booted with
    | Some n -> n
    | None -> Alcotest.fail "restart_vm did not boot"
  in
  add node';
  Testbed.run_until tb (Time.sec 3);
  Alcotest.(check int) "re-added fraction set up" 3 !added;
  Alcotest.(check (list string)) "fresh queue on the new incarnation"
    [ "vm1"; "vm2" ] (owners ());
  check_consistent tb

let () =
  Alcotest.run "lifecycle"
    [ ( "property",
        [ Alcotest.test_case "random transition sequences" `Slow
            test_random_transition_sequences ] );
      ( "directed",
        [ Alcotest.test_case "crash during restart" `Quick
            test_crash_during_restart;
          Alcotest.test_case "restart during hostlo detach" `Quick
            test_restart_during_hostlo_detach ] ) ]
