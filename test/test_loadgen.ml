(* PR-9 load-generation subsystem: arrival processes, heavy-tailed
   sizes, open-loop admission/accounting, and the fleet scenario's
   shard/domain determinism.  The open-vs-closed test is the point of
   the subsystem: the same stalled server must inflate the open-loop
   percentiles while the closed loop's completed-RTT histogram sleeps
   through the outage. *)

module Time = Nest_sim.Time
module Engine = Nest_sim.Engine
module Prng = Nest_sim.Prng
module Hdr = Nest_sim.Hdr
module Arrival = Nest_loadgen.Arrival
module Size_dist = Nest_loadgen.Size_dist
module Loadgen = Nest_loadgen.Loadgen

let take_offsets a n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match Arrival.next a with
      | None -> List.rev acc
      | Some t -> go (t :: acc) (k - 1)
  in
  go [] n

(* --- arrival processes -------------------------------------------- *)

let test_constant () =
  let a = Arrival.constant ~rate_per_s:1000.0 in
  Alcotest.(check (list int))
    "1 kHz arrivals sit on exact-ms marks"
    [ Time.ms 1; Time.ms 2; Time.ms 3; Time.ms 4 ]
    (take_offsets a 4);
  Alcotest.(check (option int)) "rate process is infinite" None (Arrival.total a);
  Alcotest.check_raises "non-positive rate rejected"
    (Invalid_argument "Arrival.constant: rate must be > 0") (fun () ->
      ignore (Arrival.constant ~rate_per_s:0.0))

let test_poisson_deterministic () =
  let offsets seed =
    take_offsets (Arrival.poisson ~rng:(Prng.create seed) ~rate_per_s:5000.0) 500
  in
  Alcotest.(check (list int))
    "same seed, same schedule" (offsets 42L) (offsets 42L);
  Alcotest.(check bool)
    "different seed, different schedule" false
    (offsets 42L = offsets 43L);
  let xs = offsets 42L in
  Alcotest.(check bool) "monotone non-decreasing" true
    (List.for_all2 ( <= ) (0 :: xs) (xs @ [ max_int ]));
  (* Mean inter-arrival of a 5 kHz Poisson process is 200 µs; 500 draws
     put the sample mean within a few percent. *)
  let mean =
    float_of_int (List.nth xs 499) /. 500.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean inter-arrival ~200us (got %.1fus)" (mean /. 1e3))
    true
    (mean > 150e3 && mean < 250e3)

let test_of_trace_totals () =
  let users = Nest_traces.Trace_gen.generate ~seed:7L ~users:5 in
  let pods =
    List.fold_left (fun n u -> n + Nest_traces.Trace.user_pods u) 0 users
  in
  let a = Arrival.of_trace ~users ~over:(Time.sec 1) in
  Alcotest.(check (option int))
    "finite process knows its total" (Some pods) (Arrival.total a);
  let xs = take_offsets a (pods + 10) in
  Alcotest.(check int)
    "replay yields exactly one arrival per trace pod" pods (List.length xs);
  Alcotest.(check bool) "all offsets within the window" true
    (List.for_all (fun t -> t > 0 && t <= Time.sec 1) xs)

(* --- size distributions ------------------------------------------- *)

let test_sizes () =
  let rng = Prng.create 11L in
  let pareto = Size_dist.Pareto { shape = 1.2; lo = 64; hi = 1400 } in
  let draws = List.init 2000 (fun _ -> Size_dist.draw pareto rng) in
  Alcotest.(check bool) "bounded pareto stays in [lo, hi]" true
    (List.for_all (fun s -> s >= 64 && s <= 1400) draws);
  Alcotest.(check bool) "heavy tail reaches past 4x the floor" true
    (List.exists (fun s -> s > 256) draws);
  Alcotest.(check int) "fixed is fixed" 512
    (Size_dist.draw (Size_dist.Fixed 512) rng);
  Alcotest.check_raises "inverted uniform bounds rejected"
    (Invalid_argument "Size_dist.draw: Uniform needs 1 <= lo <= hi") (fun () ->
      ignore (Size_dist.draw (Size_dist.Uniform { lo = 9; hi = 3 }) rng))

(* --- open-loop accounting ----------------------------------------- *)

(* Arrivals at 1 ms spacing into a 4-slot admission bound, against a
   server that never answers: slots are only reclaimed by the 20 ms
   timeout, so the generator must shed most arrivals, lose every
   admitted one, and the books must balance exactly.  (99, not 100: an
   arrival landing exactly on [stop] is never scheduled.) *)
let test_shed_and_lost () =
  let engine = Engine.create () in
  let start = Time.ms 10 and stop = Time.ms 110 in
  let g =
    Loadgen.create ~engine ~label:"blackhole"
      ~arrival:(Arrival.constant ~rate_per_s:1000.0)
      ~sizes:(Size_dist.Fixed 64) ~rng:(Prng.create 1L) ~max_outstanding:4
      ~timeout:(Time.ms 20)
      ~dispatch:(fun ~seq:_ ~size:_ -> ())
      ~start ~stop ()
  in
  Engine.run engine;
  let c = Loadgen.counts g in
  Alcotest.(check int) "every scheduled arrival fired" 99 c.Loadgen.offered;
  Alcotest.(check int) "offered = admitted + shed" c.Loadgen.offered
    (c.Loadgen.admitted + c.Loadgen.shed);
  Alcotest.(check int) "admitted = lost + completed (drained)"
    c.Loadgen.admitted
    (c.Loadgen.lost + c.Loadgen.completed);
  Alcotest.(check int) "nothing completed" 0 c.Loadgen.completed;
  Alcotest.(check bool) "bound actually shed" true (c.Loadgen.shed > 0);
  Alcotest.(check bool) "timeouts actually reclaimed slots" true
    (c.Loadgen.lost >= 4)

let test_all_completed () =
  let engine = Engine.create () in
  let g = ref None in
  let gen =
    Loadgen.create ~engine
      ~arrival:(Arrival.constant ~rate_per_s:2000.0)
      ~sizes:(Size_dist.Fixed 64) ~rng:(Prng.create 2L)
      ~dispatch:(fun ~seq ~size:_ ->
        Engine.schedule engine ~delay:(Time.us 100) (fun () ->
            Loadgen.complete (Option.get !g) ~seq))
      ~start:(Time.ms 1) ~stop:(Time.ms 51) ()
  in
  g := Some gen;
  Engine.run engine;
  let c = Loadgen.counts gen in
  Alcotest.(check int) "all offered" 99 c.Loadgen.offered;
  Alcotest.(check int) "all completed" 99 c.Loadgen.completed;
  Alcotest.(check int) "nothing shed" 0 c.Loadgen.shed;
  Alcotest.(check int) "nothing lost" 0 c.Loadgen.lost;
  Alcotest.(check int) "one completion record per request" 99
    (List.length (Loadgen.completions gen));
  (* Duplicate and never-issued completions must be ignored. *)
  Loadgen.complete gen ~seq:1;
  Loadgen.complete gen ~seq:100000;
  Alcotest.(check int) "stale completions ignored" 99
    (Loadgen.counts gen).Loadgen.completed

(* --- open vs closed loop under a stalled server -------------------- *)

(* One server model, two measurement disciplines.  The server answers in
   1 ms, except requests landing in [150 ms, 350 ms) which are parked
   until the stall lifts.  The closed loop (one outstanding op, next
   send gated on the previous completion, latency from actual send)
   records the stall in exactly ONE sample, so its p50 — and with few
   enough samples even its p99 — stays at 1 ms: coordinated omission.
   The open loop keeps its schedule and measures from intended start, so
   every arrival during the stall carries its true wait. *)
let test_open_vs_closed_divergence () =
  let stall_lo = Time.ms 150 and stall_hi = Time.ms 350 in
  let reply_at engine =
    let now = Engine.now engine in
    if now >= stall_lo && now < stall_hi then stall_hi + Time.ms 1
    else now + Time.ms 1
  in
  (* Open loop. *)
  let open_p99, open_counts =
    let engine = Engine.create () in
    let g = ref None in
    let gen =
      Loadgen.create ~engine
        ~arrival:(Arrival.constant ~rate_per_s:500.0)
        ~sizes:(Size_dist.Fixed 64) ~rng:(Prng.create 3L)
        ~max_outstanding:1024 ~timeout:(Time.sec 1)
        ~dispatch:(fun ~seq ~size:_ ->
          Engine.schedule_at engine ~at:(reply_at engine) (fun () ->
              Loadgen.complete (Option.get !g) ~seq))
        ~start:0 ~stop:(Time.ms 500) ()
    in
    g := Some gen;
    Engine.run engine;
    (Hdr.percentile (Loadgen.latency gen) 99.0, Loadgen.counts gen)
  in
  (* Closed loop over the same server model. *)
  let closed_p99, closed_n =
    let engine = Engine.create () in
    let lat = Hdr.create () in
    let n = ref 0 in
    let rec send () =
      if Engine.now engine < Time.ms 500 then begin
        let sent_at = Engine.now engine in
        Engine.schedule_at engine ~at:(reply_at engine) (fun () ->
            Hdr.add lat (Time.to_us_f (Engine.now engine - sent_at));
            incr n;
            send ())
      end
    in
    Engine.schedule_at engine ~at:0 send;
    Engine.run engine;
    (Hdr.percentile lat 99.0, !n)
  in
  Alcotest.(check int) "open loop completed everything it admitted"
    open_counts.Loadgen.admitted open_counts.Loadgen.completed;
  Alcotest.(check bool)
    (Printf.sprintf "closed loop slept through the stall (p99 %.0fus)"
       closed_p99)
    true (closed_p99 < 2_000.0);
  Alcotest.(check bool)
    (Printf.sprintf "closed loop paused its own sampling (%d samples)"
       closed_n)
    true (closed_n < 350);
  Alcotest.(check bool)
    (Printf.sprintf "open loop carries the stall (p99 %.0fus)" open_p99)
    true (open_p99 > 100_000.0);
  Alcotest.(check bool) "divergence is two orders of magnitude" true
    (open_p99 > 50.0 *. closed_p99)

(* --- fleet scenario determinism ----------------------------------- *)

(* End-to-end guard at unit-test scale: a 3-node fleet (one node per
   deployment mode) must produce a byte-identical digest however the
   event loop is sharded and however many domains drive it. *)
let test_fleet_digest_determinism () =
  let params =
    { Nest_experiments.Fig_fleet.default_params with
      Nest_experiments.Fig_fleet.nodes = 3;
      pods = 30;
      rate = 600.0 }
  in
  let d ~shards ~domains =
    Nest_experiments.Fig_fleet.digest ~params ~shards ~domains ~quick:true ()
  in
  let base = d ~shards:1 ~domains:1 in
  Alcotest.(check string) "shards 2" base (d ~shards:2 ~domains:1);
  Alcotest.(check string) "shards 3, domains 2" base (d ~shards:3 ~domains:2)

let () =
  Alcotest.run "loadgen"
    [ ( "arrival",
        [ Alcotest.test_case "constant" `Quick test_constant;
          Alcotest.test_case "poisson deterministic" `Quick
            test_poisson_deterministic;
          Alcotest.test_case "trace replay totals" `Quick test_of_trace_totals
        ] );
      ( "sizes",
        [ Alcotest.test_case "distributions" `Quick test_sizes ] );
      ( "accounting",
        [ Alcotest.test_case "shed and lost" `Quick test_shed_and_lost;
          Alcotest.test_case "all completed" `Quick test_all_completed ] );
      ( "coordinated omission",
        [ Alcotest.test_case "open vs closed divergence" `Quick
            test_open_vs_closed_divergence ] );
      ( "fleet",
        [ Alcotest.test_case "digest across shards/domains" `Slow
            test_fleet_digest_determinism ] ) ]
