(* PR-10 closed control loop: admission policies (burn AIMD, CoDel),
   the per-node pod autoscaler, and the fleet's graceful-degradation
   dynamics.  The acceptance test is the point: at 2x saturating load,
   burn admission + autoscaling must keep the availability budget
   intact and the completed-RTT tail within 2x of the unloaded
   baseline, while the fixed bound violates both. *)

open Nestfusion
module Time = Nest_sim.Time
module Engine = Nest_sim.Engine
module Prng = Nest_sim.Prng
module Stack = Nest_net.Stack
module Arrival = Nest_loadgen.Arrival
module Size_dist = Nest_loadgen.Size_dist
module Loadgen = Nest_loadgen.Loadgen
module Admission = Nest_loadgen.Admission
module Autoscaler = Nest_orch.Autoscaler
module Netperf = Nest_workloads.Netperf
module Fig_fleet = Nest_experiments.Fig_fleet

(* --- admission policies ------------------------------------------- *)

(* Blackhole server under a Burn policy whose source reports a constant
   overload: the limit must collapse to the floor, the generator must
   shed, and the offered/admitted/shed/lost/completed books must still
   balance exactly once the engine drains. *)
let test_burn_books () =
  let engine = Engine.create () in
  let start = Time.ms 10 and stop = Time.ms 510 in
  let g =
    Loadgen.create ~engine ~label:"burn-blackhole"
      ~arrival:(Arrival.constant ~rate_per_s:1000.0)
      ~sizes:(Size_dist.Fixed 64) ~rng:(Prng.create 1L)
      ~admission:
        (Admission.burn ~floor:1 ~init:8 ~ceiling:16 ~window:(Time.ms 50) ())
      ~burn_source:(fun () -> 5.0)
      ~timeout:(Time.ms 20)
      ~dispatch:(fun ~seq:_ ~size:_ -> ())
      ~start ~stop ()
  in
  Engine.run engine;
  let c = Loadgen.counts g in
  Alcotest.(check int) "every scheduled arrival fired" 499 c.Loadgen.offered;
  Alcotest.(check int) "offered = admitted + shed" c.Loadgen.offered
    (c.Loadgen.admitted + c.Loadgen.shed);
  Alcotest.(check int) "admitted = lost + completed (drained)"
    c.Loadgen.admitted
    (c.Loadgen.lost + c.Loadgen.completed);
  Alcotest.(check bool) "burn shedding happened" true (c.Loadgen.shed > 0);
  Alcotest.(check int) "limit collapsed to the floor" 1
    (Loadgen.admission_limit g)

(* A square wave oscillating strictly inside the hysteresis band
   (low 0.25 < 0.4, 0.9 < high 1.0) must never move the limit; the same
   wave crossing both thresholds must. *)
let test_burn_hysteresis_no_flap () =
  let flaps wave =
    let engine = Engine.create () in
    let a =
      Admission.create ~engine
        ~burn_source:(fun () ->
          let w = Engine.now engine / Time.ms 100 in
          if w mod 2 = 0 then fst wave else snd wave)
        ~stop:(Time.sec 2)
        (Admission.burn ~floor:1 ~init:8 ~ceiling:16 ~high:1.0 ~low:0.25
           ~window:(Time.ms 50) ())
    in
    Engine.run engine;
    (Admission.transitions a, Admission.limit a)
  in
  let t_band, l_band = flaps (0.4, 0.9) in
  Alcotest.(check int) "in-band square wave: zero transitions" 0 t_band;
  Alcotest.(check int) "in-band square wave: limit held" 8 l_band;
  let t_cross, _ = flaps (2.0, 0.0) in
  Alcotest.(check bool) "threshold-crossing wave does move the limit" true
    (t_cross > 0)

(* CoDel: persistent over-target completions tip the controller into a
   dropping episode; one good completion ends it. *)
let test_codel_episode () =
  let engine = Engine.create () in
  let a =
    Admission.create ~engine
      (Admission.codel ~target_us:100.0 ~interval:(Time.ms 10) ~ceiling:64 ())
  in
  let dropped = ref 0 and admitted = ref 0 in
  for i = 0 to 99 do
    Engine.schedule_at engine ~at:(Time.ms (i + 1)) (fun () ->
        if Admission.decide a ~outstanding:1 then incr admitted
        else incr dropped;
        Admission.on_complete a ~latency_us:5000.0)
  done;
  Engine.run engine;
  Alcotest.(check bool) "dropping episode engaged" true (!dropped > 0);
  Alcotest.(check bool) "codel never sheds everything" true (!admitted > 0);
  (* A single under-target completion resets the episode. *)
  Admission.on_complete a ~latency_us:10.0;
  let reopened = ref false in
  Engine.schedule_at engine ~at:(Time.ms 200) (fun () ->
      reopened := Admission.decide a ~outstanding:1);
  Engine.run engine;
  Alcotest.(check bool) "good completion reopens admission" true !reopened

(* --- autoscaler --------------------------------------------------- *)

(* Scripted burn trajectory: a burst of burn 3.0 must produce one
   proportional jump (1 -> 3, not a step per window thanks to the up
   cooldown), then sustained quiet must walk the count back down one
   step per down-cooldown, never below min. *)
let test_autoscaler_trajectory () =
  let engine = Engine.create () in
  let applied = ref [] in
  let a =
    Autoscaler.create ~engine ~min:1 ~max:4 ~window:(Time.ms 100)
      ~up_cooldown:(Time.ms 300) ~down_cooldown:(Time.ms 300)
      ~burn_source:(fun () ->
        if Engine.now engine <= Time.ms 250 then 3.0 else 0.0)
      ~apply:(fun d -> applied := d :: !applied)
      ~start:0 ~stop:(Time.sec 2) ()
  in
  Engine.run engine;
  Alcotest.(check int) "back to min after sustained quiet" 1
    (Autoscaler.desired a);
  (match Autoscaler.events a with
  | (t1, d1) :: _ ->
    Alcotest.(check int) "first move is the proportional jump" 3 d1;
    Alcotest.(check int) "at the first window tick" (Time.ms 100) t1
  | [] -> Alcotest.fail "autoscaler never moved");
  (* 1->3 up, then 3->2->1 down: exactly three transitions, no flap. *)
  Alcotest.(check int) "transition count" 3 (Autoscaler.transitions a);
  Alcotest.(check (list int)) "apply saw every transition" [ 1; 2; 3 ]
    !applied

(* Scale-down must drain, not strand: requests already accepted by a
   worker the autoscaler deactivates must still be served.  20 requests
   are fired at 2 ready workers faster than they can serve; mid-burst
   the pool is scaled to 1.  Every accepted request must produce a
   reply. *)
let test_scale_down_drains () =
  let tb = Testbed.create ~num_vms:1 () in
  let site = ref None in
  Deploy.deploy_single tb ~mode:`NoCont ~name:"pod" ~entity:"server"
    ~port:9000 ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  let site = Option.get !site in
  let engine = tb.Testbed.engine in
  let pool =
    Netperf.udp_echo_pool ~ns:site.Deploy.site_ns ~port:site.Deploy.site_port
      ~new_exec:site.Deploy.site_new_exec ~service_cost:(Time.ms 1) ~initial:2
      ~max:2 ()
  in
  let replies = ref 0 in
  let sock =
    Stack.Udp.bind tb.Testbed.client_ns ~port:9001 (fun _ ~src:_ _ ->
        incr replies)
  in
  let payload = Nest_net.Payload.raw 64 in
  for i = 0 to 19 do
    Engine.schedule_at engine
      ~at:(Time.sec 1 + Time.ms 1 + (i * Time.us 200))
      (fun () ->
        Stack.Udp.sendto sock ~dst:site.Deploy.site_addr
          ~dst_port:site.Deploy.site_port payload)
  done;
  Engine.schedule_at engine
    ~at:(Time.sec 1 + Time.ms 3)
    (fun () -> pool.Netperf.epool_set_active 1);
  Testbed.run_until tb (Time.sec 2);
  Alcotest.(check int) "pool scaled down" 1 (pool.Netperf.epool_active ());
  Alcotest.(check int) "every request was accepted" 20
    (pool.Netperf.epool_served ());
  Alcotest.(check int) "no accepted request was stranded" 20 !replies

(* --- the closed loop on the fleet --------------------------------- *)

let overload_params admission autoscale rate =
  { Fig_fleet.default_params with
    Fig_fleet.nodes = 3;
    pods = 60;
    rate;
    admission;
    autoscale;
    service_us = 2000.0 }

(* The ISSUE's acceptance criterion, verbatim: at 2x saturating offered
   load, burn admission (+ autoscaling) keeps the worst availability
   window burn below 1.0 and the completed-RTT p99 within 2x of the
   unloaded baseline; the fixed bound violates both. *)
let test_graceful_degradation () =
  let baseline =
    Fig_fleet.summarize ~params:(overload_params `Fixed false 300.0)
      ~shards:1 ~quick:false ()
  in
  let fixed =
    Fig_fleet.summarize ~params:(overload_params `Fixed true 3000.0)
      ~shards:1 ~quick:false ()
  in
  let burn =
    Fig_fleet.summarize ~params:(overload_params `Burn true 3000.0)
      ~shards:1 ~quick:false ()
  in
  Alcotest.(check bool) "baseline is actually unloaded" true
    (baseline.Fig_fleet.s_shed = 0 && baseline.Fig_fleet.s_lost = 0);
  Alcotest.(check bool)
    (Printf.sprintf "burn keeps availability burn < 1.0 (got %.2f)"
       burn.Fig_fleet.s_avail_worst_burn)
    true
    (burn.Fig_fleet.s_avail_worst_burn < 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "fixed violates availability (worst burn %.2f)"
       fixed.Fig_fleet.s_avail_worst_burn)
    true
    (fixed.Fig_fleet.s_avail_worst_burn > 1.0);
  let budget = 2.0 *. baseline.Fig_fleet.s_p99_us in
  Alcotest.(check bool)
    (Printf.sprintf "burn p99 within 2x of baseline (%.0f <= %.0f us)"
       burn.Fig_fleet.s_p99_us budget)
    true
    (burn.Fig_fleet.s_p99_us <= budget);
  Alcotest.(check bool)
    (Printf.sprintf "fixed p99 blows the budget (%.0f > %.0f us)"
       fixed.Fig_fleet.s_p99_us budget)
    true
    (fixed.Fig_fleet.s_p99_us > budget);
  Alcotest.(check bool) "burn sheds early instead of losing" true
    (burn.Fig_fleet.s_shed > 0 && burn.Fig_fleet.s_lost < fixed.Fig_fleet.s_lost);
  Alcotest.(check bool) "the autoscaler actually scaled" true
    (burn.Fig_fleet.s_scale_events > 0 && burn.Fig_fleet.s_pods > 3)

(* Digest byte-identity across shard/domain splits with the whole
   control loop live: admission ticks, autoscaler ticks, pool routing
   and cold starts are all digest material. *)
let test_control_loop_digest_determinism () =
  let params = overload_params `Burn true 3000.0 in
  let d ~shards ~domains =
    Fig_fleet.digest ~params ~shards ~domains ~quick:true ()
  in
  let base = d ~shards:1 ~domains:1 in
  Alcotest.(check string) "shards 2" base (d ~shards:2 ~domains:1);
  Alcotest.(check string) "shards 3, domains 2" base (d ~shards:3 ~domains:2);
  Alcotest.(check string) "shards 3, domains 4" base (d ~shards:3 ~domains:4)

let () =
  Alcotest.run "admission"
    [
      ( "admission",
        [
          Alcotest.test_case "burn books balance" `Quick test_burn_books;
          Alcotest.test_case "hysteresis no-flap" `Quick
            test_burn_hysteresis_no_flap;
          Alcotest.test_case "codel episode" `Quick test_codel_episode;
        ] );
      ( "autoscaler",
        [
          Alcotest.test_case "trajectory" `Quick test_autoscaler_trajectory;
          Alcotest.test_case "scale-down drains" `Quick test_scale_down_drains;
        ] );
      ( "closed loop",
        [
          Alcotest.test_case "graceful degradation" `Quick
            test_graceful_degradation;
          Alcotest.test_case "digest determinism" `Quick
            test_control_loop_digest_determinism;
        ] );
    ]
