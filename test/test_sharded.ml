(* Conservative sharded engine: primitive ordering contracts, the
   deadlock guard, and the tentpole invariant — shards=1 ≡ shards=N
   byte-identical on the cross-node scenario and under chaos. *)

module Sharded = Nest_sim.Sharded
module Engine = Nest_sim.Engine
module Time = Nest_sim.Time
module Chaos = Nest_fault.Chaos
module Fig_cluster = Nest_experiments.Fig_cluster

(* ------------------------------------------------------------------ *)
(* Primitives. *)

(* Two shards bounce a counter back and forth.  Each shard appends to
   its own log slot (single writer per domain); the merged trace must
   not depend on how many domains executed the run. *)
let ping_pong ~domains =
  let sd = Sharded.create ~shards:2 () in
  let e0 = Sharded.engine sd 0 and e1 = Sharded.engine sd 1 in
  let fwd = Sharded.link sd ~src:0 ~dst:1 ~lookahead:(Time.us 10) () in
  let rev = Sharded.link sd ~src:1 ~dst:0 ~lookahead:(Time.us 10) () in
  let logs = Array.make 2 [] in
  let note i now = logs.(i) <- now :: logs.(i) in
  let rec ping n () =
    note 0 (Engine.now e0);
    if n > 0 then
      Sharded.send sd fwd ~delay:(Time.us 15) (fun () ->
          note 1 (Engine.now e1);
          Sharded.send sd rev ~delay:(Time.us 25) (ping (n - 1)))
  in
  Engine.schedule_at e0 ~label:"ping" ~at:(Time.us 1) (ping 20);
  Sharded.run ~until:(Time.ms 2) ~domains sd;
  (List.rev logs.(0), List.rev logs.(1), Sharded.stats sd)

let test_ping_pong_domains_identical () =
  let l0, l1, _ = ping_pong ~domains:1 in
  let l0', l1', _ = ping_pong ~domains:2 in
  Alcotest.(check (list int)) "shard 0 trace, domains 1 = 2" l0 l0';
  Alcotest.(check (list int)) "shard 1 trace, domains 1 = 2" l1 l1';
  Alcotest.(check int) "all pings landed" 21 (List.length l0)

let test_stats_counters () =
  let _, _, st = ping_pong ~domains:1 in
  Alcotest.(check int) "two shards" 2 (Array.length st);
  Alcotest.(check int) "shard 1 deliveries = pings" 20 st.(1).Sharded.ss_delivered;
  Alcotest.(check bool) "events counted" true (st.(0).Sharded.ss_events > 0)

(* Same-date ordering: deliveries beat local events, and among
   same-date deliveries link creation order wins regardless of which
   link sent first. *)
let test_tie_order () =
  let sd = Sharded.create ~shards:2 () in
  let e0 = Sharded.engine sd 0 and e1 = Sharded.engine sd 1 in
  let la = Sharded.link sd ~src:1 ~dst:0 ~lookahead:(Time.us 10) () in
  let lb = Sharded.link sd ~src:1 ~dst:0 ~lookahead:(Time.us 10) () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  (* Local shard-0 event dated exactly at the deliveries' date. *)
  Engine.schedule_at e0 ~label:"local" ~at:(Time.us 30) (note "local");
  Engine.schedule_at e1 ~label:"emit" ~at:(Time.us 10) (fun () ->
      (* Send on the later-created link first: creation order must
         still decide the tie at the destination. *)
      Sharded.send sd lb ~delay:(Time.us 20) (note "b");
      Sharded.send sd la ~delay:(Time.us 20) (note "a"));
  Sharded.run ~until:(Time.us 100) sd;
  Alcotest.(check (list string))
    "deliveries (in link order) before the same-date local event"
    [ "a"; "b"; "local" ] (List.rev !log)

let test_zero_lookahead_rejected () =
  let sd = Sharded.create ~shards:2 () in
  Alcotest.check_raises "lookahead 0 refused at link creation"
    (Invalid_argument
       "Sharded.link: lookahead must be > 0 (a zero-lookahead link \
        cannot be synchronized conservatively and would deadlock)")
    (fun () -> ignore (Sharded.link sd ~src:0 ~dst:1 ~lookahead:0 ()))

let test_undersized_delay_rejected () =
  let sd = Sharded.create ~shards:2 () in
  let e0 = Sharded.engine sd 0 in
  let l = Sharded.link sd ~src:0 ~dst:1 ~lookahead:(Time.us 10) () in
  let saw = ref false in
  Engine.schedule_at e0 ~label:"bad" ~at:1 (fun () ->
      match Sharded.send sd l ~delay:(Time.us 5) (fun () -> ()) with
      | () -> ()
      | exception Invalid_argument _ -> saw := true);
  Sharded.run ~until:(Time.us 50) sd;
  Alcotest.(check bool) "delay < lookahead refused at send" true !saw

(* ------------------------------------------------------------------ *)
(* The tentpole invariant on the real scenario. *)

let test_cluster_digest_shard_identity () =
  let digest ?domains shards =
    Fig_cluster.digest ~nodes:4 ~shards ?domains ~quick:true ()
  in
  let d1 = digest 1 in
  Alcotest.(check string) "shards 1 = 2" d1 (digest 2);
  Alcotest.(check string) "shards 1 = 4" d1 (digest 4);
  Alcotest.(check string) "shards 4 over 2 domains" d1 (digest ~domains:2 4)

(* The chaos digest must survive the CLI's --shards knob: a fused-cell
   run is single-testbed, so folding it onto N shards must be a no-op
   for results. *)
let test_chaos_digest_with_shards () =
  let digest () =
    Chaos.digest (Chaos.run_cell ~quick:true ~mode:`Brfusion ~rate:0.5 ~seed:7L ())
  in
  let d1 = digest () in
  Nestfusion.Testbed.set_default_shards 2;
  Fun.protect
    ~finally:(fun () -> Nestfusion.Testbed.set_default_shards 1)
    (fun () ->
      Alcotest.(check string) "chaos digest, shards 1 = 2" d1 (digest ()))

let () =
  Alcotest.run "sharded"
    [
      ( "primitives",
        [
          Alcotest.test_case "ping-pong domains 1 = 2" `Quick
            test_ping_pong_domains_identical;
          Alcotest.test_case "per-shard stats" `Quick test_stats_counters;
          Alcotest.test_case "same-date tie order" `Quick test_tie_order;
        ] );
      ( "guards",
        [
          Alcotest.test_case "zero lookahead rejected" `Quick
            test_zero_lookahead_rejected;
          Alcotest.test_case "undersized delay rejected" `Quick
            test_undersized_delay_rejected;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "cluster digest shard identity" `Slow
            test_cluster_digest_shard_identity;
          Alcotest.test_case "chaos digest with --shards" `Quick
            test_chaos_digest_with_shards;
        ] );
    ]
