(* Latency provenance, CPU timelines and the Chrome-trace exporter.

   Three layers of assertion:
   1. unit — Provenance record arithmetic, branching, Trace.iter,
      Timeline sampling, contains_seq edge cases;
   2. honesty — a timed probe through each deployment mode must
      reconcile: per-hop queue+service sums to the datagram's measured
      one-way latency (within 1 ns per hop), every serviced hop feeds
      its metrics histograms, and with provenance off the hot path
      allocates exactly what the untimed path does;
   3. export — the emitted trace JSON round-trips through a (hand
      written, dependency-free) JSON parser with the right shapes. *)

open Nest_net
open Nestfusion
module Time = Nest_sim.Time
module Engine = Nest_sim.Engine
module Trace = Nest_sim.Trace
module Metrics = Nest_sim.Metrics
module Cpu_account = Nest_sim.Cpu_account
module Timeline = Nest_sim.Timeline
module Trace_export = Nest_sim.Trace_export
module Exec = Nest_sim.Exec
module P = Nest_sim.Provenance

(* --- Provenance records --- *)

let test_record_arithmetic () =
  let p = P.create () in
  Alcotest.(check bool) "fresh record empty" true (P.is_empty p);
  P.add p ~hop:"a" ~enqueue_ns:10 ~start_ns:15 ~end_ns:40;
  P.add p ~hop:"b" ~enqueue_ns:40 ~start_ns:40 ~end_ns:70;
  P.mark_after p ~hop:"nat:rewrite";
  Alcotest.(check int) "length" 3 (P.length p);
  Alcotest.(check (list string))
    "hops oldest first" [ "a"; "b"; "nat:rewrite" ] (P.hops p);
  (match P.entries p with
  | [ a; b; m ] ->
    Alcotest.(check int) "a queued" 5 (P.queue_ns a);
    Alcotest.(check int) "a serviced" 25 (P.service_ns a);
    Alcotest.(check int) "b queued" 0 (P.queue_ns b);
    Alcotest.(check int) "b serviced" 30 (P.service_ns b);
    (* The marker is pinned to b's completion and spans nothing. *)
    Alcotest.(check int) "marker date" 70 m.P.enqueue_ns;
    Alcotest.(check int) "marker queue" 0 (P.queue_ns m);
    Alcotest.(check int) "marker service" 0 (P.service_ns m)
  | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es));
  Alcotest.(check int) "attributed" 60 (P.attributed_ns p);
  Alcotest.(check int) "total = first enqueue to last end" 60 (P.total_ns p);
  Alcotest.(check int) "contiguous path has no gap" 0 (P.gap_ns p)

let test_gap () =
  let p = P.create () in
  P.add p ~hop:"a" ~enqueue_ns:0 ~start_ns:0 ~end_ns:10;
  (* 7 ns elapse between a's completion and b's hand-off that no hop
     claims: the record must expose them, not hide them. *)
  P.add p ~hop:"b" ~enqueue_ns:17 ~start_ns:20 ~end_ns:25;
  Alcotest.(check int) "attributed" 18 (P.attributed_ns p);
  Alcotest.(check int) "total" 25 (P.total_ns p);
  Alcotest.(check int) "gap" 7 (P.gap_ns p)

let test_branch () =
  let p = P.create () in
  P.add p ~hop:"shared" ~enqueue_ns:0 ~start_ns:0 ~end_ns:5;
  let q = P.branch p in
  P.add p ~hop:"left" ~enqueue_ns:5 ~start_ns:5 ~end_ns:9;
  P.add q ~hop:"right" ~enqueue_ns:5 ~start_ns:6 ~end_ns:7;
  Alcotest.(check (list string))
    "trunk keeps its own suffix" [ "shared"; "left" ] (P.hops p);
  Alcotest.(check (list string))
    "branch shares only the prefix" [ "shared"; "right" ] (P.hops q)

(* --- Trace.iter --- *)

let test_trace_iter () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.instant tr ~ts:i ~cat:"t" ~name:(string_of_int i) ()
  done;
  let seen = ref [] in
  Trace.iter tr (fun e -> seen := e.Trace.name :: !seen);
  Alcotest.(check (list string))
    "iter agrees with events after wrap-around"
    (List.map (fun e -> e.Trace.name) (Trace.events tr))
    (List.rev !seen)

(* --- contains_seq --- *)

let test_contains_seq () =
  let check name exp hops expected =
    Alcotest.(check bool) name exp (Path_probe.contains_seq hops expected)
  in
  check "empty expected in empty hops" true [] [];
  check "empty expected in any hops" true [ "a"; "b" ] [];
  check "anything in empty hops" false [] [ "a" ];
  check "exact match" true [ "a"; "b"; "c" ] [ "a"; "b"; "c" ];
  check "subsequence with gaps" true [ "a"; "x"; "b"; "y"; "c" ]
    [ "a"; "b"; "c" ];
  check "order matters" false [ "b"; "a" ] [ "a"; "b" ];
  check "longer than hops" false [ "a" ] [ "a"; "a" ];
  (* Repeated names must be matched against distinct occurrences. *)
  check "repeats need repeats" true [ "a"; "b"; "a" ] [ "a"; "a" ];
  check "single occurrence can't count twice" false [ "a"; "b" ] [ "a"; "a" ]

(* --- Timeline sampling --- *)

let test_timeline_sampling () =
  let e = Engine.create () in
  let acct = Cpu_account.create () in
  Alcotest.(check bool) "period must be positive" true
    (try
       ignore (Timeline.create ~period:0 e acct);
       false
     with Invalid_argument _ -> true);
  let tl = Timeline.create ~period:(Time.us 10) e acct in
  Timeline.start tl;
  Timeline.start tl (* idempotent: must not double the cadence *);
  Engine.schedule e ~delay:(Time.us 25) (fun () ->
      Cpu_account.charge acct ~entity:"vm1" Cpu_account.Soft (Time.us 3));
  Engine.schedule e ~delay:(Time.us 55) (fun () ->
      Cpu_account.charge acct ~entity:"vm1" Cpu_account.Soft (Time.us 2));
  Engine.run ~until:(Time.us 100) e;
  Timeline.stop tl;
  (* Ticks at 0,10,...,100 sim-us: one per period, not more. *)
  Alcotest.(check int) "one sample per period" 11 (Timeline.sample_count tl);
  Alcotest.(check (list string)) "entities" [ "vm1" ] (Timeline.entities tl);
  let series = Timeline.series tl ~entity:"vm1" Cpu_account.Soft in
  Alcotest.(check int) "series covers every tick" 11 (List.length series);
  ignore
    (List.fold_left
       (fun prev (_, v) ->
         Alcotest.(check bool) "cumulative series non-decreasing" true
           (v >= prev);
         v)
       0 series);
  (match List.rev series with
  | (ts, v) :: _ ->
    Alcotest.(check int) "last tick date" (Time.us 100) ts;
    Alcotest.(check int) "final sample = total charged" (Time.us 5) v
  | [] -> Alcotest.fail "empty series");
  Alcotest.(check (list (pair int int)))
    "ticks before first charge read 0"
    [ (0, 0); (Time.us 10, 0); (Time.us 20, 0) ]
    (List.filteri (fun i _ -> i < 3) series);
  (* Stopped: driving the engine further adds no samples. *)
  Engine.schedule e ~delay:(Time.us 50) (fun () -> ());
  Engine.run ~until:(Time.us 200) e;
  Alcotest.(check int) "no samples after stop" 11 (Timeline.sample_count tl)

(* --- pay-for-use: prov=None allocates exactly like the untimed path --- *)

(* Top-level so the continuation captures nothing and allocates once. *)
let knop () = ()

let alloc_per_call f =
  let n = 1_000 in
  let before = Gc.minor_words () in
  for _ = 1 to n do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int n

let test_prov_disabled_is_free () =
  let e = Engine.create () in
  let exec = Exec.create e ~name:"ctx" in
  let hop = Hop.make exec ~name:"h" ~fixed_ns:100 in
  let service () = Hop.service hop ~bytes:64 knop in
  let service_prov () = Hop.service_prov hop ~bytes:64 knop in
  (* Warm both paths (first calls may allocate caches), then measure. *)
  service ();
  service_prov ();
  Engine.run e;
  let base = alloc_per_call service in
  Engine.run e;
  let timed_off = alloc_per_call service_prov in
  Engine.run e;
  Alcotest.(check (float 0.5))
    "service_prov without a record allocates like service" base timed_off

(* --- timed probes through the real deployment modes --- *)

let deploy_single_sync ~mode =
  let tb = Testbed.create ~num_vms:1 () in
  let site = ref None in
  Deploy.deploy_single tb ~mode ~name:"pod" ~entity:"srv" ~port:7000
    ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  match !site with
  | Some s -> (tb, s)
  | None ->
    Alcotest.failf "deploy_single %s never completed"
      (Modes.single_to_string mode)

let deploy_pair_sync ~mode =
  let tb = Testbed.create ~num_vms:2 () in
  let site = ref None in
  Deploy.deploy_pair tb ~mode ~name:"pod" ~a_entity:"cli" ~b_entity:"srv"
    ~port:7000 ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  match !site with
  | Some s -> (tb, s)
  | None ->
    Alcotest.failf "deploy_pair %s never completed" (Modes.pair_to_string mode)

(* Runs the timed probe and returns (engine, entries, delivery date). *)
let timed_probe ~tb ~src ~dst ~dst_addr ~port =
  let engine = tb.Testbed.engine in
  let got = ref None in
  Path_probe.udp_timed_path ~src ~dst ~dst_addr ~port
    ~k:(fun entries -> got := Some (entries, Engine.now engine))
    ();
  Testbed.run_until tb (Time.sec 3);
  match !got with
  | Some (entries, at) -> (engine, entries, at)
  | None -> Alcotest.fail "timed probe never delivered"

(* The reconciliation contract: the datagram's one-way latency (send date
   to delivery date, both measured outside the provenance machinery)
   decomposes into the recorded per-hop queue+service times within 1 ns
   per hop; stamps are internally ordered; every serviced hop fed its
   metrics histograms. *)
let check_reconciles label engine entries delivered_at =
  Alcotest.(check bool) (label ^ ": recorded hops") true (entries <> []);
  List.iter
    (fun en ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s stamps ordered" label en.P.hop)
        true
        (en.P.enqueue_ns <= en.P.start_ns && en.P.start_ns <= en.P.end_ns))
    entries;
  ignore
    (List.fold_left
       (fun prev en ->
         Alcotest.(check bool)
           (Printf.sprintf "%s: %s in causal order" label en.P.hop)
           true (en.P.enqueue_ns >= prev);
         en.P.enqueue_ns)
       0 entries);
  let sent_at = (List.hd entries).P.enqueue_ns in
  let e2e = delivered_at - sent_at in
  let attributed =
    List.fold_left (fun a en -> a + P.queue_ns en + P.service_ns en) 0 entries
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: attribution reconciles (e2e %d vs attributed %d)"
       label e2e attributed)
    true
    (abs (e2e - attributed) <= List.length entries);
  let m = Engine.metrics engine in
  List.iter
    (fun en ->
      if P.service_ns en > 0 then
        List.iter
          (fun suffix ->
            let key = "hop." ^ en.P.hop ^ suffix in
            match Metrics.find m key with
            | Some (Metrics.Summary { count; _ }) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s populated" label key)
                true (count >= 1)
            | _ -> Alcotest.failf "%s: histogram %s missing" label key)
          [ ".queue_ns"; ".service_ns" ])
    entries

let probe_single mode =
  let tb, site = deploy_single_sync ~mode in
  timed_probe ~tb ~src:tb.Testbed.client_ns ~dst:site.Deploy.site_ns
    ~dst_addr:site.Deploy.site_addr ~port:site.Deploy.site_port

let probe_pair mode =
  let tb, site = deploy_pair_sync ~mode in
  timed_probe ~tb ~src:site.Deploy.a_ns ~dst:site.Deploy.b_ns
    ~dst_addr:site.Deploy.b_addr ~port:site.Deploy.b_port

let test_reconcile_single mode () =
  let label = Modes.single_to_string mode in
  let engine, entries, at = probe_single mode in
  check_reconciles label engine entries at

let test_reconcile_pair mode () =
  let label = Modes.pair_to_string mode in
  let engine, entries, at = probe_pair mode in
  check_reconciles label engine entries at

let test_brfusion_beats_nat () =
  let _, nat, _ = probe_single `Nat in
  let _, brf, _ = probe_single `Brfusion in
  let service es = List.fold_left (fun a en -> a + P.service_ns en) 0 es in
  (* Fig. 1: fusing the pod NIC onto the host bridge removes the in-VM
     bridge/NAT layer — strictly fewer hops and less total service. *)
  Alcotest.(check bool)
    (Printf.sprintf "fewer hops (%d < %d)" (List.length brf) (List.length nat))
    true
    (List.length brf < List.length nat);
  Alcotest.(check bool)
    (Printf.sprintf "less summed service (%d < %d)" (service brf) (service nat))
    true
    (service brf < service nat)

(* --- Chrome trace export: round-trip through a JSON parser --- *)

(* Minimal recursive-descent JSON parser: enough to validate that the
   exporter emits well-formed documents without pulling in a JSON
   dependency.  Raises [Failure] on malformed input. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let advance () = incr pos in
    let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      if peek () = c then advance ()
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal lit v =
      String.iter expect lit;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            (* Keep the code point as its escape; the exporter never
               emits \u for ASCII so nothing round-trips through here. *)
            for _ = 1 to 4 do
              advance ()
            done;
            Buffer.add_char b '?'
          | c -> fail (Printf.sprintf "bad escape %c" c));
          advance ();
          go ()
        | '\255' -> fail "unterminated string"
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let number_char c =
        (c >= '0' && c <= '9')
        || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && number_char s.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((key, v) :: acc)
            | '}' ->
              advance ();
              Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              elements (v :: acc)
            | ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
        end
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> parse_number () |> fun f -> Num f
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let str = function Str s -> Some s | _ -> None
  let num = function Num f -> Some f | _ -> None
end

let get_exn what = function
  | Some v -> v
  | None -> Alcotest.failf "missing %s" what

let test_export_roundtrip () =
  let ex = Trace_export.create () in
  let pid = Trace_export.process ex ~name:"proc \"zero\"" in
  Trace_export.thread_name ex ~pid ~tid:0 "main";
  Trace_export.span ex ~pid ~cat:"c" ~name:"work" ~start_ns:100 ~end_ns:250
    [ ("k", "1") ];
  Trace_export.instant ex ~pid ~cat:"c" ~name:"blip" ~ts:300 [];
  Trace_export.counter ex ~pid ~name:"depth" ~ts:400 [ ("v", "2.5") ];
  let p = P.create () in
  P.add p ~hop:"hop\"quoted" ~enqueue_ns:0 ~start_ns:5 ~end_ns:20;
  Trace_export.add_provenance ex ~pid (P.entries p);
  let doc = Json.parse (Trace_export.to_string ex) in
  Alcotest.(check (option string))
    "displayTimeUnit" (Some "ns")
    (Option.bind (Json.member "displayTimeUnit" doc) Json.str);
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.Arr es) -> es
    | _ -> Alcotest.fail "traceEvents missing or not an array"
  in
  Alcotest.(check int) "event_count matches the document"
    (Trace_export.event_count ex)
    (List.length events);
  let ph e = Option.bind (Json.member "ph" e) Json.str |> get_exn "ph" in
  let by_ph c = List.filter (fun e -> ph e = c) events in
  (* M: process_name + thread_name; B/E: span + provenance slice. *)
  Alcotest.(check int) "metadata events" 2 (List.length (by_ph "M"));
  Alcotest.(check int) "begin events" 2 (List.length (by_ph "B"));
  Alcotest.(check int) "end events" 2 (List.length (by_ph "E"));
  Alcotest.(check int) "instants" 1 (List.length (by_ph "i"));
  Alcotest.(check int) "counters" 1 (List.length (by_ph "C"));
  (* The quoted process name survived the trip. *)
  let pnames =
    List.filter_map
      (fun e ->
        match Option.bind (Json.member "name" e) Json.str with
        | Some "process_name" ->
          Option.bind (Json.member "args" e) (Json.member "name")
          |> Fun.flip Option.bind Json.str
        | _ -> None)
      events
  in
  Alcotest.(check (list string)) "escaped process name" [ "proc \"zero\"" ]
    pnames;
  (* ns → us: the span beginning at 100 ns has ts 0.1 us, duration via
     its E at 0.25 us; nothing rounded away. *)
  let span_b =
    List.find
      (fun e -> ph e = "B" && Json.member "name" e = Some (Json.Str "work"))
      events
  in
  Alcotest.(check (float 1e-9)) "ts in microseconds" 0.1
    (Option.bind (Json.member "ts" span_b) Json.num |> get_exn "ts");
  (* The provenance slice carries its attribution args. *)
  let hop_b =
    List.find
      (fun e ->
        ph e = "B" && Json.member "cat" e = Some (Json.Str "hop"))
      events
  in
  Alcotest.(check (option string)) "hop name escaped" (Some "hop\"quoted")
    (Option.bind (Json.member "name" hop_b) Json.str);
  let arg key =
    Option.bind (Json.member "args" hop_b) (Json.member key)
    |> Fun.flip Option.bind Json.num
  in
  Alcotest.(check (option (float 0.0))) "queue_ns arg" (Some 5.0) (arg "queue_ns");
  Alcotest.(check (option (float 0.0))) "service_ns arg" (Some 15.0)
    (arg "service_ns")

(* A full probe's export must parse too — this is the `nestsim obs`
   payload end to end, minus the CLI. *)
let test_probe_export_parses () =
  let tb, site = deploy_single_sync ~mode:`Brfusion in
  let tr = Trace.create ~capacity:4096 () in
  Engine.set_tracer tb.Testbed.engine (Some tr);
  let _, entries, _ =
    timed_probe ~tb ~src:tb.Testbed.client_ns ~dst:site.Deploy.site_ns
      ~dst_addr:site.Deploy.site_addr ~port:site.Deploy.site_port
  in
  Engine.set_tracer tb.Testbed.engine None;
  let ex = Trace_export.create () in
  let pid = Trace_export.process ex ~name:"single:brfusion" in
  Trace_export.add_trace ex ~pid tr;
  Trace_export.add_provenance ex ~pid entries;
  let doc = Json.parse (Trace_export.to_string ex) in
  (match Json.member "traceEvents" doc with
  | Some (Json.Arr es) ->
    Alcotest.(check bool) "events present" true (List.length es > 10);
    Alcotest.(check bool) "hop slices present" true
      (List.exists (fun e -> Json.member "cat" e = Some (Json.Str "hop")) es)
  | _ -> Alcotest.fail "traceEvents missing");
  (* B/E only: the replayed trace ring contributes cat-"hop" *instants*
     (device crossings), which are not attribution slices. *)
  Alcotest.(check int) "one hop slice pair per entry"
    (List.length entries * 2)
    (List.length
       (match Json.member "traceEvents" doc with
       | Some (Json.Arr es) ->
         List.filter
           (fun e ->
             Json.member "cat" e = Some (Json.Str "hop")
             && (Json.member "ph" e = Some (Json.Str "B")
                || Json.member "ph" e = Some (Json.Str "E")))
           es
       | _ -> []))

let () =
  Alcotest.run "provenance"
    [ ( "record",
        [ Alcotest.test_case "arithmetic" `Quick test_record_arithmetic;
          Alcotest.test_case "gap" `Quick test_gap;
          Alcotest.test_case "branch" `Quick test_branch ] );
      ( "trace",
        [ Alcotest.test_case "iter" `Quick test_trace_iter ] );
      ( "path-probe",
        [ Alcotest.test_case "contains_seq edges" `Quick test_contains_seq ] );
      ( "timeline",
        [ Alcotest.test_case "sampling" `Quick test_timeline_sampling ] );
      ( "pay-for-use",
        [ Alcotest.test_case "disabled is free" `Quick
            test_prov_disabled_is_free ] );
      ( "reconcile",
        [ Alcotest.test_case "nat" `Quick (test_reconcile_single `Nat);
          Alcotest.test_case "brfusion" `Quick
            (test_reconcile_single `Brfusion);
          Alcotest.test_case "hostlo" `Quick (test_reconcile_pair `Hostlo);
          Alcotest.test_case "overlay" `Quick (test_reconcile_pair `Overlay);
          Alcotest.test_case "brfusion beats nat" `Quick
            test_brfusion_beats_nat ] );
      ( "export",
        [ Alcotest.test_case "round-trip" `Quick test_export_roundtrip;
          Alcotest.test_case "probe export parses" `Quick
            test_probe_export_parses ] ) ]
