(* Flow-cache correctness: verdicts must be invalidated by every table
   mutation they depend on (routes, devices, ARP, netfilter), and the
   cache must be semantically invisible — identical results on or off.
   Also pins down the Route.lookup contract the cache memoizes. *)

open Nest_net
module Engine = Nest_sim.Engine
module Exec = Nest_sim.Exec

let cheap_costs e =
  let sys_exec = Exec.create e ~name:"sys" in
  let soft_exec = Exec.create e ~name:"soft" in
  { Stack.tx = Hop.make sys_exec ~fixed_ns:100;
    rx = Hop.make soft_exec ~fixed_ns:100;
    forward = Hop.make soft_exec ~fixed_ns:50;
    nat = Hop.make soft_exec ~fixed_ns:50;
    nat_per_rule_ns = 10;
    local = Hop.make sys_exec ~fixed_ns:100;
    syscall = Hop.make sys_exec ~fixed_ns:50;
    wakeup_delay_ns = 0 }

let ip = Ipv4.of_string
let cidr = Ipv4.cidr_of_string

let two_ns () =
  let e = Engine.create () in
  let a = Stack.create e ~name:"a" ~costs:(cheap_costs e) () in
  let b = Stack.create e ~name:"b" ~costs:(cheap_costs e) () in
  let hop = Hop.free e in
  let da, db =
    Veth.pair ~a_name:"a0" ~a_mac:(Mac.of_int 0xa) ~b_name:"b0"
      ~b_mac:(Mac.of_int 0xb) ~ab_hop:hop ~ba_hop:hop ()
  in
  Stack.attach a da;
  Stack.add_addr a da (ip "192.168.1.1") (cidr "192.168.1.0/24");
  Stack.attach b db;
  Stack.add_addr b db (ip "192.168.1.2") (cidr "192.168.1.0/24");
  (e, a, b, da, db)

(* ------------------------------------------------------------------ *)
(* Route.lookup: the contract the cache memoizes. *)

let test_route_longest_prefix () =
  let e = Engine.create () in
  let a = Stack.create e ~name:"r" ~costs:(cheap_costs e) () in
  let hop = Hop.free e in
  let d1, _ =
    Veth.pair ~a_name:"d1" ~a_mac:(Mac.of_int 1) ~b_name:"x1"
      ~b_mac:(Mac.of_int 2) ~ab_hop:hop ~ba_hop:hop ()
  in
  let d2, _ =
    Veth.pair ~a_name:"d2" ~a_mac:(Mac.of_int 3) ~b_name:"x2"
      ~b_mac:(Mac.of_int 4) ~ab_hop:hop ~ba_hop:hop ()
  in
  let rt = Stack.routes a in
  Route.add rt ~dst:(cidr "10.0.0.0/8") ~dev:d1 ();
  Route.add rt ~dst:(cidr "10.1.0.0/16") ~dev:d2 ();
  Route.add rt ~dst:(cidr "10.1.2.0/24") ~dev:d1 ();
  let dev_of addr =
    match Route.lookup rt (ip addr) with
    | Some en -> en.Route.dev.Dev.name
    | None -> "none"
  in
  Alcotest.(check string) "/24 beats /16 and /8" "d1" (dev_of "10.1.2.3");
  Alcotest.(check string) "/16 beats /8" "d2" (dev_of "10.1.9.9");
  Alcotest.(check string) "/8 catches the rest" "d1" (dev_of "10.200.0.1");
  Alcotest.(check string) "no match" "none" (dev_of "172.16.0.1")

let test_route_most_recent_wins () =
  let e = Engine.create () in
  let a = Stack.create e ~name:"r" ~costs:(cheap_costs e) () in
  let hop = Hop.free e in
  let d1, _ =
    Veth.pair ~a_name:"d1" ~a_mac:(Mac.of_int 1) ~b_name:"x1"
      ~b_mac:(Mac.of_int 2) ~ab_hop:hop ~ba_hop:hop ()
  in
  let d2, _ =
    Veth.pair ~a_name:"d2" ~a_mac:(Mac.of_int 3) ~b_name:"x2"
      ~b_mac:(Mac.of_int 4) ~ab_hop:hop ~ba_hop:hop ()
  in
  let rt = Stack.routes a in
  Route.add rt ~dst:(cidr "10.0.0.0/8") ~dev:d1 ();
  Route.add rt ~dst:(cidr "10.0.0.0/8") ~dev:d2 ();
  (match Route.lookup rt (ip "10.1.1.1") with
  | Some en -> Alcotest.(check string) "most recent of equal prefixes" "d2"
                 en.Route.dev.Dev.name
  | None -> Alcotest.fail "expected a route");
  Route.remove_dev rt d2;
  match Route.lookup rt (ip "10.1.1.1") with
  | Some en ->
    Alcotest.(check string) "older entry resurfaces after remove_dev" "d1"
      en.Route.dev.Dev.name
  | None -> Alcotest.fail "expected the surviving route"

(* ------------------------------------------------------------------ *)
(* Cache population and hit accounting. *)

let send_one c dst =
  Stack.Udp.sendto c ~dst ~dst_port:53 (Payload.raw 32)

let test_cache_hits_accumulate () =
  let e, a, b, _, _ = two_ns () in
  Alcotest.(check bool) "cache on by default" true (Stack.flow_cache_enabled a);
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> ()) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  (* First packet: miss with ARP unresolved, so no verdict installs
     (async resolution).  Second packet: miss again, but the neighbour
     is known now, so the verdict is cached. *)
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let hits0, misses0 = Stack.flow_cache_stats a in
  Alcotest.(check bool) "first packet misses" true (misses0 >= 1);
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let hits1, misses1 = Stack.flow_cache_stats a in
  for _ = 1 to 5 do
    send_one c (ip "192.168.1.2")
  done;
  Engine.run e;
  let hits2, misses2 = Stack.flow_cache_stats a in
  Alcotest.(check int) "no new misses once warm" misses1 misses2;
  Alcotest.(check bool) "subsequent packets hit" true
    (hits2 >= hits1 + 5 && hits1 >= hits0);
  Alcotest.(check int) "all delivered" 7 (Stack.counters b).Stack.delivered

(* ------------------------------------------------------------------ *)
(* Invalidation: route add, device detach, ARP expiry, netfilter rule. *)

let warm () =
  let e, a, b, da, db = two_ns () in
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> ()) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  (* miss (ARP unresolved) / miss + install / hit *)
  for _ = 1 to 3 do
    send_one c (ip "192.168.1.2");
    Engine.run e
  done;
  let hits, _ = Stack.flow_cache_stats a in
  Alcotest.(check bool) "warm: cache is hitting" true (hits >= 1);
  (e, a, b, da, db, c)

let test_invalidate_on_route_add () =
  let e, a, _, da, _, c = warm () in
  let _, misses0 = Stack.flow_cache_stats a in
  (* Any table mutation must flush dependent verdicts, even one that
     resolves to the same forwarding decision. *)
  Route.add (Stack.routes a) ~dst:(cidr "10.99.0.0/16") ~dev:da
    ~gateway:(ip "192.168.1.2") ();
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let _, misses1 = Stack.flow_cache_stats a in
  Alcotest.(check int) "route add forces a re-walk" (misses0 + 1) misses1

let test_invalidate_on_dev_detach () =
  let e, a, b, da, _, c = warm () in
  let delivered0 = (Stack.counters b).Stack.delivered in
  Stack.detach a da;
  send_one c (ip "192.168.1.2");
  Engine.run e;
  Alcotest.(check int) "no stale verdict into a detached device"
    delivered0 (Stack.counters b).Stack.delivered;
  Alcotest.(check int) "counted as unroutable" 1
    (Stack.counters a).Stack.dropped_no_route

let test_invalidate_on_arp_flush () =
  let e, a, b, _, _, c = warm () in
  let _, misses0 = Stack.flow_cache_stats a in
  Stack.arp_flush a;
  Alcotest.(check int) "neighbour table empty" 0
    (List.length (Stack.arp_cache a));
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let _, misses1 = Stack.flow_cache_stats a in
  Alcotest.(check bool) "re-resolves and re-installs" true (misses1 > misses0);
  Alcotest.(check int) "still delivered after re-ARP" 4
    (Stack.counters b).Stack.delivered

let test_invalidate_on_netfilter_rule () =
  let e, a, b, _, _, c = warm () in
  (* A rule installed after the cache warmed must still apply: a cached
     "transmit" verdict may not bypass the new Output-hook drop. *)
  Nat.drop_from (Stack.nf a) ~name:"deny" ~hook:Netfilter.Output
    ~src_subnet:(cidr "192.168.1.0/24");
  let delivered0 = (Stack.counters b).Stack.delivered in
  send_one c (ip "192.168.1.2");
  Engine.run e;
  Alcotest.(check int) "new rule drops despite warm cache"
    delivered0 (Stack.counters b).Stack.delivered;
  Alcotest.(check int) "drop counted" 1
    (Stack.counters a).Stack.dropped_filtered

(* ------------------------------------------------------------------ *)
(* Equivalence: cache on vs off must be observationally identical. *)

let run_exchange ~cache () =
  let e, a, b, _, _ = two_ns () in
  if not cache then begin
    Stack.set_flow_cache a false;
    Stack.set_flow_cache b false
  end;
  let got = ref 0 in
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> incr got) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  for _ = 1 to 8 do
    send_one c (ip "192.168.1.2")
  done;
  Engine.run e;
  let rtt = ref 0 in
  Stack.ping a ~dst:(ip "192.168.1.2") ~on_reply:(fun ~rtt_ns -> rtt := rtt_ns);
  Engine.run e;
  (!got, Engine.now e, !rtt)

let test_cache_on_off_equivalent () =
  let d_on, t_on, rtt_on = run_exchange ~cache:true () in
  let d_off, t_off, rtt_off = run_exchange ~cache:false () in
  Alcotest.(check int) "deliveries equal" d_off d_on;
  Alcotest.(check int) "simulated end time identical" t_off t_on;
  Alcotest.(check int) "ping rtt identical" rtt_off rtt_on

let () =
  Alcotest.run "flow_cache"
    [ ( "route",
        [ Alcotest.test_case "longest prefix" `Quick test_route_longest_prefix;
          Alcotest.test_case "most recent wins" `Quick
            test_route_most_recent_wins ] );
      ( "cache",
        [ Alcotest.test_case "hits accumulate" `Quick
            test_cache_hits_accumulate;
          Alcotest.test_case "invalidate: route add" `Quick
            test_invalidate_on_route_add;
          Alcotest.test_case "invalidate: dev detach" `Quick
            test_invalidate_on_dev_detach;
          Alcotest.test_case "invalidate: arp flush" `Quick
            test_invalidate_on_arp_flush;
          Alcotest.test_case "invalidate: netfilter rule" `Quick
            test_invalidate_on_netfilter_rule ] );
      ( "equivalence",
        [ Alcotest.test_case "on/off identical" `Quick
            test_cache_on_off_equivalent ] ) ]
