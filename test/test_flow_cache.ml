(* Flow-cache correctness: verdicts must be invalidated by every table
   mutation they depend on (routes, devices, ARP, netfilter), and the
   cache must be semantically invisible — identical results on or off.
   Also pins down the Route.lookup contract the cache memoizes. *)

open Nest_net
module Engine = Nest_sim.Engine
module Exec = Nest_sim.Exec

let cheap_costs e =
  let sys_exec = Exec.create e ~name:"sys" in
  let soft_exec = Exec.create e ~name:"soft" in
  { Stack.tx = Hop.make sys_exec ~fixed_ns:100;
    rx = Hop.make soft_exec ~fixed_ns:100;
    forward = Hop.make soft_exec ~fixed_ns:50;
    nat = Hop.make soft_exec ~fixed_ns:50;
    nat_per_rule_ns = 10;
    local = Hop.make sys_exec ~fixed_ns:100;
    syscall = Hop.make sys_exec ~fixed_ns:50;
    wakeup_delay_ns = 0 }

let ip = Ipv4.of_string
let cidr = Ipv4.cidr_of_string

let two_ns () =
  let e = Engine.create () in
  let a = Stack.create e ~name:"a" ~costs:(cheap_costs e) () in
  let b = Stack.create e ~name:"b" ~costs:(cheap_costs e) () in
  let hop = Hop.free e in
  let da, db =
    Veth.pair ~a_name:"a0" ~a_mac:(Mac.of_int 0xa) ~b_name:"b0"
      ~b_mac:(Mac.of_int 0xb) ~ab_hop:hop ~ba_hop:hop ()
  in
  Stack.attach a da;
  Stack.add_addr a da (ip "192.168.1.1") (cidr "192.168.1.0/24");
  Stack.attach b db;
  Stack.add_addr b db (ip "192.168.1.2") (cidr "192.168.1.0/24");
  (e, a, b, da, db)

(* ------------------------------------------------------------------ *)
(* Route.lookup: the contract the cache memoizes. *)

let test_route_longest_prefix () =
  let e = Engine.create () in
  let a = Stack.create e ~name:"r" ~costs:(cheap_costs e) () in
  let hop = Hop.free e in
  let d1, _ =
    Veth.pair ~a_name:"d1" ~a_mac:(Mac.of_int 1) ~b_name:"x1"
      ~b_mac:(Mac.of_int 2) ~ab_hop:hop ~ba_hop:hop ()
  in
  let d2, _ =
    Veth.pair ~a_name:"d2" ~a_mac:(Mac.of_int 3) ~b_name:"x2"
      ~b_mac:(Mac.of_int 4) ~ab_hop:hop ~ba_hop:hop ()
  in
  let rt = Stack.routes a in
  Route.add rt ~dst:(cidr "10.0.0.0/8") ~dev:d1 ();
  Route.add rt ~dst:(cidr "10.1.0.0/16") ~dev:d2 ();
  Route.add rt ~dst:(cidr "10.1.2.0/24") ~dev:d1 ();
  let dev_of addr =
    match Route.lookup rt (ip addr) with
    | Some en -> en.Route.dev.Dev.name
    | None -> "none"
  in
  Alcotest.(check string) "/24 beats /16 and /8" "d1" (dev_of "10.1.2.3");
  Alcotest.(check string) "/16 beats /8" "d2" (dev_of "10.1.9.9");
  Alcotest.(check string) "/8 catches the rest" "d1" (dev_of "10.200.0.1");
  Alcotest.(check string) "no match" "none" (dev_of "172.16.0.1")

let test_route_most_recent_wins () =
  let e = Engine.create () in
  let a = Stack.create e ~name:"r" ~costs:(cheap_costs e) () in
  let hop = Hop.free e in
  let d1, _ =
    Veth.pair ~a_name:"d1" ~a_mac:(Mac.of_int 1) ~b_name:"x1"
      ~b_mac:(Mac.of_int 2) ~ab_hop:hop ~ba_hop:hop ()
  in
  let d2, _ =
    Veth.pair ~a_name:"d2" ~a_mac:(Mac.of_int 3) ~b_name:"x2"
      ~b_mac:(Mac.of_int 4) ~ab_hop:hop ~ba_hop:hop ()
  in
  let rt = Stack.routes a in
  Route.add rt ~dst:(cidr "10.0.0.0/8") ~dev:d1 ();
  Route.add rt ~dst:(cidr "10.0.0.0/8") ~dev:d2 ();
  (match Route.lookup rt (ip "10.1.1.1") with
  | Some en -> Alcotest.(check string) "most recent of equal prefixes" "d2"
                 en.Route.dev.Dev.name
  | None -> Alcotest.fail "expected a route");
  Route.remove_dev rt d2;
  match Route.lookup rt (ip "10.1.1.1") with
  | Some en ->
    Alcotest.(check string) "older entry resurfaces after remove_dev" "d1"
      en.Route.dev.Dev.name
  | None -> Alcotest.fail "expected the surviving route"

(* ------------------------------------------------------------------ *)
(* Cache population and hit accounting. *)

let send_one c dst =
  Stack.Udp.sendto c ~dst ~dst_port:53 (Payload.raw 32)

let test_cache_hits_accumulate () =
  let e, a, b, _, _ = two_ns () in
  Alcotest.(check bool) "cache on by default" true (Stack.flow_cache_enabled a);
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> ()) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  (* First packet: miss with ARP unresolved, so no verdict installs
     (async resolution).  Second packet: miss again, but the neighbour
     is known now, so the verdict is cached. *)
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let hits0, misses0 = Stack.flow_cache_stats a in
  Alcotest.(check bool) "first packet misses" true (misses0 >= 1);
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let hits1, misses1 = Stack.flow_cache_stats a in
  for _ = 1 to 5 do
    send_one c (ip "192.168.1.2")
  done;
  Engine.run e;
  let hits2, misses2 = Stack.flow_cache_stats a in
  Alcotest.(check int) "no new misses once warm" misses1 misses2;
  Alcotest.(check bool) "subsequent packets hit" true
    (hits2 >= hits1 + 5 && hits1 >= hits0);
  Alcotest.(check int) "all delivered" 7 (Stack.counters b).Stack.delivered

(* ------------------------------------------------------------------ *)
(* Invalidation: route add, device detach, ARP expiry, netfilter rule. *)

let warm () =
  let e, a, b, da, db = two_ns () in
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> ()) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  (* miss (ARP unresolved) / miss + install / hit *)
  for _ = 1 to 3 do
    send_one c (ip "192.168.1.2");
    Engine.run e
  done;
  let hits, _ = Stack.flow_cache_stats a in
  Alcotest.(check bool) "warm: cache is hitting" true (hits >= 1);
  (e, a, b, da, db, c)

let test_invalidate_on_route_add () =
  let e, a, _, da, _, c = warm () in
  let _, misses0 = Stack.flow_cache_stats a in
  (* Any table mutation must flush dependent verdicts, even one that
     resolves to the same forwarding decision. *)
  Route.add (Stack.routes a) ~dst:(cidr "10.99.0.0/16") ~dev:da
    ~gateway:(ip "192.168.1.2") ();
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let _, misses1 = Stack.flow_cache_stats a in
  Alcotest.(check int) "route add forces a re-walk" (misses0 + 1) misses1

let test_invalidate_on_dev_detach () =
  let e, a, b, da, _, c = warm () in
  let delivered0 = (Stack.counters b).Stack.delivered in
  Stack.detach a da;
  send_one c (ip "192.168.1.2");
  Engine.run e;
  Alcotest.(check int) "no stale verdict into a detached device"
    delivered0 (Stack.counters b).Stack.delivered;
  Alcotest.(check int) "counted as unroutable" 1
    (Stack.counters a).Stack.dropped_no_route

let test_invalidate_on_arp_flush () =
  let e, a, b, _, _, c = warm () in
  let _, misses0 = Stack.flow_cache_stats a in
  Stack.arp_flush a;
  Alcotest.(check int) "neighbour table empty" 0
    (List.length (Stack.arp_cache a));
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let _, misses1 = Stack.flow_cache_stats a in
  Alcotest.(check bool) "re-resolves and re-installs" true (misses1 > misses0);
  Alcotest.(check int) "still delivered after re-ARP" 4
    (Stack.counters b).Stack.delivered

let test_invalidate_on_netfilter_rule () =
  let e, a, b, _, _, c = warm () in
  (* A rule installed after the cache warmed must still apply: a cached
     "transmit" verdict may not bypass the new Output-hook drop. *)
  Nat.drop_from (Stack.nf a) ~name:"deny" ~hook:Netfilter.Output
    ~src_subnet:(cidr "192.168.1.0/24");
  let delivered0 = (Stack.counters b).Stack.delivered in
  send_one c (ip "192.168.1.2");
  Engine.run e;
  Alcotest.(check int) "new rule drops despite warm cache"
    delivered0 (Stack.counters b).Stack.delivered;
  Alcotest.(check int) "drop counted" 1
    (Stack.counters a).Stack.dropped_filtered

let test_invalidate_counters_full_vs_scoped () =
  let _e, a, _, _, _, _c = warm () in
  let full0, scoped0 = Stack.flow_cache_invalidations a in
  Stack.arp_flush ~ip:(ip "192.168.1.2") a;
  let full1, scoped1 = Stack.flow_cache_invalidations a in
  Alcotest.(check int) "single-entry expiry is scoped" full0 full1;
  Alcotest.(check int) "scoped counted" (scoped0 + 1) scoped1;
  Stack.arp_flush a;
  let full2, scoped2 = Stack.flow_cache_invalidations a in
  Alcotest.(check int) "whole-cache flush is full" (full1 + 1) full2;
  Alcotest.(check int) "scoped unchanged" scoped1 scoped2

(* ------------------------------------------------------------------ *)
(* Scoped neighbour invalidation: GARP storms must not collapse the
   cache fleet-wide. *)

let test_garp_storm_same_mac_keeps_cache () =
  let e, a, b, _, db, c = warm () in
  let hits0, misses0 = Stack.flow_cache_stats a in
  let full0, scoped0 = Stack.flow_cache_invalidations a in
  (* Chaos recovery re-announces addresses aggressively; as long as the
     MAC is unchanged nothing moved, so nothing may invalidate. *)
  for _ = 1 to 10 do
    Stack.garp b db (ip "192.168.1.2")
  done;
  Engine.run e;
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let hits1, misses1 = Stack.flow_cache_stats a in
  Alcotest.(check int) "no re-walk after same-MAC GARP storm" misses0 misses1;
  Alcotest.(check bool) "still hitting" true (hits1 > hits0);
  let full1, scoped1 = Stack.flow_cache_invalidations a in
  Alcotest.(check int) "no full invalidation" full0 full1;
  Alcotest.(check int) "no scoped invalidation" scoped0 scoped1

let test_mac_move_scoped_invalidate () =
  let e, a, b, _, db = two_ns () in
  Stack.add_addr b db (ip "192.168.1.3") (cidr "192.168.1.0/24");
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> ()) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  (* Warm two flows through the same device, distinct neighbours. *)
  for _ = 1 to 3 do
    send_one c (ip "192.168.1.2");
    send_one c (ip "192.168.1.3");
    Engine.run e
  done;
  let _, misses0 = Stack.flow_cache_stats a in
  let full0, scoped0 = Stack.flow_cache_invalidations a in
  (* The peer NIC is replaced: same address, new MAC, announced by a
     burst of gratuitous ARPs. *)
  db.Dev.mac <- Mac.of_int 0xbb;
  for _ = 1 to 5 do
    Stack.garp b db (ip "192.168.1.2")
  done;
  Engine.run e;
  let full1, scoped1 = Stack.flow_cache_invalidations a in
  Alcotest.(check int) "MAC move never flushes the whole cache" full0 full1;
  Alcotest.(check int) "one scoped invalidation (burst deduped)"
    (scoped0 + 1) scoped1;
  (* The unaffected neighbour's flow keeps hitting — and keeps sending
     to the stale MAC, exactly as the slow path would (only .2 was
     announced; .3's ARP entry is genuinely stale until it expires, so
     this packet is lost at the peer's L2 filter, cache or no cache). *)
  send_one c (ip "192.168.1.3");
  Engine.run e;
  let _, misses1 = Stack.flow_cache_stats a in
  Alcotest.(check int) "other neighbour unaffected" misses0 misses1;
  (* ...the moved one re-walks exactly once, then hits at the new MAC. *)
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let _, misses2 = Stack.flow_cache_stats a in
  Alcotest.(check int) "moved neighbour re-walks once" (misses1 + 1) misses2;
  send_one c (ip "192.168.1.2");
  Engine.run e;
  let _, misses3 = Stack.flow_cache_stats a in
  Alcotest.(check int) "then warms again" misses2 misses3;
  (* 6 warm + 2 post-move to .2; the one stale-MAC .3 packet is lost. *)
  Alcotest.(check int) "deliveries across the move" 8
    (Stack.counters b).Stack.delivered

(* ------------------------------------------------------------------ *)
(* Reflector (Hostlo) egress: the local-deliver-vs-reflect decision is
   cached against socket and binding generations. *)

(* Two pod namespaces multiplexed on one Hostlo loopback tap, wired as
   the VMM does but without the VM layer: each endpoint shares the tap's
   MAC and binding-generation ref. *)
let reflector_world () =
  let e = Engine.create () in
  let tap =
    Tap.create e ~name:"hlo" ~mode:Tap.Loopback ~hop:(Hop.free e)
      ~mac:(Mac.of_int 0x42) ()
  in
  let mk name =
    let ns =
      Stack.create e ~name ~costs:(cheap_costs e) ~with_loopback:false ()
    in
    let q = Tap.add_queue tap ~owner:name in
    let dev =
      Dev.create ~name:(name ^ ":hlo0") ~mac:(Tap.mac tap) ~l2:Dev.Reflector
        ~binding:(Tap.queue_binding q) ()
    in
    Dev.set_tx dev (fun f -> Tap.queue_write q f);
    Tap.queue_set_backend q (fun f -> Dev.deliver dev f);
    Stack.attach ns dev;
    Stack.add_addr ns dev (ip "127.0.0.1") (cidr "127.0.0.0/8");
    ns
  in
  let a = mk "pa" in
  let b = mk "pb" in
  (e, tap, a, b)

let test_reflector_hits_accumulate () =
  let e, _tap, a, b = reflector_world () in
  let got = ref 0 in
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> incr got) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  (* Reflectors resolve synchronously (broadcast), so the very first
     walk installs; everything after is a hit. *)
  send_one c (ip "127.0.0.1");
  Engine.run e;
  let _, misses0 = Stack.flow_cache_stats a in
  for _ = 1 to 5 do
    send_one c (ip "127.0.0.1")
  done;
  Engine.run e;
  let hits1, misses1 = Stack.flow_cache_stats a in
  Alcotest.(check int) "reflector egress cached after first walk"
    misses0 misses1;
  Alcotest.(check bool) "reflector sends hit" true (hits1 >= 5);
  Alcotest.(check int) "all delivered across the tap" 6 !got

let test_reflector_socket_transition () =
  let e, _tap, a, b = reflector_world () in
  let b_got = ref 0 and a_got = ref 0 in
  let _sb = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> incr b_got) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  for _ = 1 to 3 do
    send_one c (ip "127.0.0.1")
  done;
  Engine.run e;
  Alcotest.(check int) "reflected to the peer while a has no server" 3 !b_got;
  (* A server appears in the sender's own fraction: localhost is local
     again, warm reflect verdicts notwithstanding. *)
  let sa = Stack.Udp.bind a ~port:53 (fun _ ~src:_ _ -> incr a_got) in
  for _ = 1 to 3 do
    send_one c (ip "127.0.0.1")
  done;
  Engine.run e;
  Alcotest.(check int) "local server captures localhost" 3 !a_got;
  Alcotest.(check int) "peer no longer sees the flow" 3 !b_got;
  (* Server closes: back to reflection, again against a warm cache. *)
  Stack.Udp.close sa;
  for _ = 1 to 3 do
    send_one c (ip "127.0.0.1")
  done;
  Engine.run e;
  Alcotest.(check int) "reflection resumes after close" 6 !b_got;
  Alcotest.(check int) "local server is gone" 3 !a_got

let test_reflector_binding_claim_invalidates () =
  let e, tap, a, b = reflector_world () in
  let _sb = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> ()) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  for _ = 1 to 3 do
    send_one c (ip "127.0.0.1")
  done;
  Engine.run e;
  let _, misses0 = Stack.flow_cache_stats a in
  (* A standby-pool claim / hot-plug rebind changes which owner the
     reflector serves (PR 5 failover): verdicts must die with it. *)
  Tap.bump_binding tap;
  send_one c (ip "127.0.0.1");
  Engine.run e;
  let _, misses1 = Stack.flow_cache_stats a in
  Alcotest.(check int) "claim forces a re-walk of reflector egress"
    (misses0 + 1) misses1;
  send_one c (ip "127.0.0.1");
  Engine.run e;
  let _, misses2 = Stack.flow_cache_stats a in
  Alcotest.(check int) "then warms again" misses1 misses2

let run_reflector_exchange ~cache () =
  let e, _tap, a, b = reflector_world () in
  if not cache then begin
    Stack.set_flow_cache a false;
    Stack.set_flow_cache b false
  end;
  let b_got = ref 0 and a_got = ref 0 in
  let _sb = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> incr b_got) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  for _ = 1 to 4 do
    send_one c (ip "127.0.0.1")
  done;
  Engine.run e;
  let sa = Stack.Udp.bind a ~port:53 (fun _ ~src:_ _ -> incr a_got) in
  for _ = 1 to 4 do
    send_one c (ip "127.0.0.1")
  done;
  Engine.run e;
  Stack.Udp.close sa;
  for _ = 1 to 4 do
    send_one c (ip "127.0.0.1")
  done;
  Engine.run e;
  [ !a_got; !b_got; (Stack.counters a).Stack.dropped_no_socket; Engine.now e ]

let test_reflector_on_off_equivalent () =
  Alcotest.(check (list int))
    "reflector churn identical with cache on/off"
    (run_reflector_exchange ~cache:false ())
    (run_reflector_exchange ~cache:true ())

(* ------------------------------------------------------------------ *)
(* Equivalence: cache on vs off must be observationally identical. *)

let run_exchange ~cache () =
  let e, a, b, _, _ = two_ns () in
  if not cache then begin
    Stack.set_flow_cache a false;
    Stack.set_flow_cache b false
  end;
  let got = ref 0 in
  let _s = Stack.Udp.bind b ~port:53 (fun _ ~src:_ _ -> incr got) in
  let c = Stack.Udp.bind a ~port:0 (fun _ ~src:_ _ -> ()) in
  for _ = 1 to 8 do
    send_one c (ip "192.168.1.2")
  done;
  Engine.run e;
  let rtt = ref 0 in
  Stack.ping a ~dst:(ip "192.168.1.2") ~on_reply:(fun ~rtt_ns -> rtt := rtt_ns);
  Engine.run e;
  (!got, Engine.now e, !rtt)

let test_cache_on_off_equivalent () =
  let d_on, t_on, rtt_on = run_exchange ~cache:true () in
  let d_off, t_off, rtt_off = run_exchange ~cache:false () in
  Alcotest.(check int) "deliveries equal" d_off d_on;
  Alcotest.(check int) "simulated end time identical" t_off t_on;
  Alcotest.(check int) "ping rtt identical" rtt_off rtt_on

let () =
  Alcotest.run "flow_cache"
    [ ( "route",
        [ Alcotest.test_case "longest prefix" `Quick test_route_longest_prefix;
          Alcotest.test_case "most recent wins" `Quick
            test_route_most_recent_wins ] );
      ( "cache",
        [ Alcotest.test_case "hits accumulate" `Quick
            test_cache_hits_accumulate;
          Alcotest.test_case "invalidate: route add" `Quick
            test_invalidate_on_route_add;
          Alcotest.test_case "invalidate: dev detach" `Quick
            test_invalidate_on_dev_detach;
          Alcotest.test_case "invalidate: arp flush" `Quick
            test_invalidate_on_arp_flush;
          Alcotest.test_case "invalidate: netfilter rule" `Quick
            test_invalidate_on_netfilter_rule;
          Alcotest.test_case "invalidate counters: full vs scoped" `Quick
            test_invalidate_counters_full_vs_scoped ] );
      ( "scoped",
        [ Alcotest.test_case "GARP storm, same MAC" `Quick
            test_garp_storm_same_mac_keeps_cache;
          Alcotest.test_case "MAC move is scoped" `Quick
            test_mac_move_scoped_invalidate ] );
      ( "reflector",
        [ Alcotest.test_case "hits accumulate" `Quick
            test_reflector_hits_accumulate;
          Alcotest.test_case "socket transition" `Quick
            test_reflector_socket_transition;
          Alcotest.test_case "binding claim invalidates" `Quick
            test_reflector_binding_claim_invalidates;
          Alcotest.test_case "on/off identical" `Quick
            test_reflector_on_off_equivalent ] );
      ( "equivalence",
        [ Alcotest.test_case "on/off identical" `Quick
            test_cache_on_off_equivalent ] ) ]
