(* Tests for the fault-injection subsystem (lib/fault): schedule
   determinism — same seed means the same fault timeline and the same
   outcome digest, sequentially and under domain fan-out — and the
   recovery invariants around Hostlo reflector queues. *)

module Time = Nest_sim.Time
module Testbed = Nestfusion.Testbed
module Chaos = Nest_fault.Chaos
module Fault_plan = Nest_fault.Fault_plan
module Tap = Nest_net.Tap
module Vmm = Nest_virt.Vmm

(* ------------------------------------------------------------------ *)
(* Fault-plan basics *)

let test_plan_events () =
  let plan =
    Fault_plan.make ~seed:9L
      ~qmp:(Fault_plan.qmp_rule ~fail_prob:0.2 ())
      ~events:
        [ Fault_plan.Vm_crash
            { vm = "vm1"; at = Time.ms 10; restart_after = Some (Time.ms 5) };
          Fault_plan.Link_down
            { vm = "vm1"; at = Time.ms 2; duration = Time.ms 1 } ]
      ()
  in
  Alcotest.(check bool) "not empty" false (Fault_plan.is_empty plan);
  Alcotest.(check bool) "empty is empty" true (Fault_plan.is_empty Fault_plan.empty);
  Alcotest.(check (list int)) "event times"
    [ Time.ms 10; Time.ms 2 ]
    (List.map Fault_plan.event_at plan.Fault_plan.events)

(* ------------------------------------------------------------------ *)
(* Determinism: same seed => same timeline and same digest. *)

let test_same_seed_same_timeline () =
  let run () =
    Chaos.run_cell ~quick:true ~mode:`Brfusion ~rate:0.3 ~seed:7L ()
  in
  let a = run () and b = run () in
  Alcotest.(check string) "same digest" (Chaos.digest a) (Chaos.digest b);
  Alcotest.(check (list (pair int string)))
    "same fault timeline" a.Chaos.o_timeline b.Chaos.o_timeline;
  (* The timeline is non-trivial: crash trials are always scheduled. *)
  Alcotest.(check bool) "timeline non-empty" true
    (List.length a.Chaos.o_timeline > 0)

let test_seed_changes_timeline () =
  let a = Chaos.run_cell ~quick:true ~mode:`Brfusion ~rate:0.5 ~seed:7L () in
  let b = Chaos.run_cell ~quick:true ~mode:`Brfusion ~rate:0.5 ~seed:8L () in
  Alcotest.(check bool) "different seed, different digest" true
    (not (String.equal (Chaos.digest a) (Chaos.digest b)))

(* The determinism guard that matters for --jobs N: fanning the same
   cells over domains must not change a single byte of any outcome. *)
let test_jobs_fanout_deterministic () =
  let cells = List.map (fun m -> (m, 0.3)) Chaos.all_modes in
  let digest_of (mode, rate) =
    Chaos.digest (Chaos.run_cell ~quick:true ~mode ~rate ~seed:11L ())
  in
  let seq = List.map digest_of cells in
  let par = Nest_sim.Domain_pool.map ~jobs:4 digest_of cells in
  List.iteri
    (fun i (mode, _) ->
      Alcotest.(check string)
        (Chaos.mode_to_string mode ^ " jobs=1 equals jobs=4")
        (List.nth seq i) (List.nth par i))
    cells

(* The composed-verdict fast path must be invisible to chaos outcomes:
   the same cell run mechanisms-off (flow cache disabled process-wide)
   must produce byte-identical digests, including through failover
   (standby claims) and recovery GARP bursts. *)
let test_cache_on_off_digest_identical () =
  let cell mode =
    let run () =
      Chaos.run_cell ~quick:true ~standby:2 ~mode ~rate:0.4 ~seed:13L ()
    in
    let on = Chaos.digest (run ()) in
    Nest_net.Stack.set_default_flow_cache false;
    let off =
      Fun.protect
        ~finally:(fun () -> Nest_net.Stack.set_default_flow_cache true)
        (fun () -> Chaos.digest (run ()))
    in
    Alcotest.(check string)
      (Chaos.mode_to_string mode ^ " digest cache-on = cache-off")
      off on
  in
  List.iter cell [ `Overlay; `Hostlo ]

(* ------------------------------------------------------------------ *)
(* Hostlo recovery invariant: a VM crash mid-pod detaches exactly the
   dead VM's reflector queues; the reflector itself survives, and a
   re-added fraction gets a fresh queue. *)

let test_hostlo_crash_no_dangling_queue () =
  let tb = Testbed.create ~num_vms:2 () in
  Testbed.run_until tb (Time.ms 1);
  let config = Nestfusion.Hostlo.make_config tb.Testbed.vmm in
  let plugin = Nestfusion.Hostlo.plugin config in
  let added = ref 0 in
  let add node =
    plugin.Nest_orch.Cni.add ~pod_name:"svc" ~node ~publish:[]
      ~k:(fun _ -> incr added)
  in
  add (Testbed.node tb 0);
  add (Testbed.node tb 1);
  Testbed.run_until tb (Time.sec 1);
  Alcotest.(check int) "both fractions set up" 2 !added;
  let tap =
    match Vmm.find_hostlo tb.Testbed.vmm "hostlo-svc" with
    | Some tap -> tap
    | None -> Alcotest.fail "reflector tap hostlo-svc not found"
  in
  let owners () =
    List.sort_uniq String.compare
      (List.map Tap.queue_owner (Tap.queues tap))
  in
  Alcotest.(check (list string)) "one queue per VM" [ "vm1"; "vm2" ]
    (owners ());
  Vmm.crash_vm tb.Testbed.vmm ~name:"vm2";
  Alcotest.(check (list string)) "dead VM's queue detached" [ "vm1" ]
    (owners ());
  (* Restart the VM and re-add its fraction: the persisting reflector
     grows a fresh queue for the replacement. *)
  let booted = ref None in
  let started =
    Vmm.restart_vm tb.Testbed.vmm ~name:"vm2"
      ~k:(fun vm' -> booted := Some (Nest_orch.Node.create vm'))
      ()
  in
  Alcotest.(check bool) "restart accepted" true started;
  Testbed.run_until tb (Time.sec 1 + Time.ms 500);
  let node' =
    match !booted with
    | Some n -> n
    | None -> Alcotest.fail "restart_vm did not boot"
  in
  add node';
  Testbed.run_until tb (Time.sec 2);
  Alcotest.(check int) "re-added fraction set up" 3 !added;
  Alcotest.(check (list string)) "fresh queue after reattach"
    [ "vm1"; "vm2" ] (owners ())

(* ------------------------------------------------------------------ *)
(* Exactly-once hot-plug: an applied-but-ack-lost Device_add, retried
   with the same id, answers from the reply journal — one NIC, not two. *)

let test_partial_timeout_dedupe () =
  let tb = Testbed.create ~num_vms:1 () in
  Testbed.run_until tb (Time.ms 1);
  let vmm = tb.Testbed.vmm in
  let vm = Testbed.vm tb 0 in
  let first = ref true in
  Vmm.set_qmp_fault vmm
    (Some
       (fun ~vm:_ cmd ->
         match cmd with
         | Nest_virt.Qmp.Device_add _ when !first ->
           first := false;
           Vmm.Partial_timeout (Time.ms 50)
         | _ -> Vmm.Pass));
  let nics0 = List.length (Nest_virt.Vm.nics vm) in
  let replies = ref [] in
  Vmm.execute vmm ~vm
    (Nest_virt.Qmp.Netdev_add { id = "dup"; bridge = "virbr0" })
    (fun _ ->
      let dev_add = Nest_virt.Qmp.Device_add { id = "dup"; netdev = "dup" } in
      Vmm.execute vmm ~vm dev_add (fun r1 ->
          replies := ("first", r1) :: !replies;
          (* The orchestrator's retry of the same logical operation. *)
          Vmm.execute vmm ~vm dev_add (fun r2 ->
              replies := ("retry", r2) :: !replies)));
  Testbed.run_until tb (Time.sec 1);
  Vmm.set_qmp_fault vmm None;
  (match List.assoc_opt "first" !replies with
  | Some (Nest_virt.Qmp.Error _) -> ()
  | _ -> Alcotest.fail "first attempt should lose its ack (Error)");
  (match List.assoc_opt "retry" !replies with
  | Some (Nest_virt.Qmp.Ok_nic _) -> ()
  | _ -> Alcotest.fail "retry should answer Ok_nic from the journal");
  Alcotest.(check int) "exactly one NIC plugged" (nics0 + 1)
    (List.length (Nest_virt.Vm.nics vm));
  (match
     Nest_sim.Metrics.find
       (Nest_sim.Engine.metrics tb.Testbed.engine)
       "qmp.dedupe"
   with
  | Some (Nest_sim.Metrics.Counter n) ->
    Alcotest.(check bool) "dedupe counted" true (n >= 1)
  | _ -> Alcotest.fail "qmp.dedupe metric missing");
  Alcotest.(check (list string)) "vmm invariants hold" []
    (Vmm.check_invariants vmm)

(* Under a fault plan with Partial_timeout probability 0.3 (rate 0.6 maps
   to partial_prob = 0.3), the drained cell must hold the no-leak
   invariants: every IPAM lease belongs to a live pod, no duplicate
   devices, lifecycle tables consistent. *)
let test_partial_faults_no_leak () =
  let o = Chaos.run_cell ~quick:true ~mode:`Brfusion ~rate:0.6 ~seed:21L () in
  Alcotest.(check int) "no leaked IPAM leases" 0 o.Chaos.o_leaked_leases;
  Alcotest.(check (list string)) "vmm invariants hold" [] o.Chaos.o_invariants

let () =
  Alcotest.run "fault"
    [ ( "plan",
        [ Alcotest.test_case "events" `Quick test_plan_events ] );
      ( "determinism",
        [ Alcotest.test_case "same seed, same timeline" `Quick
            test_same_seed_same_timeline;
          Alcotest.test_case "seed changes timeline" `Quick
            test_seed_changes_timeline;
          Alcotest.test_case "jobs fan-out identical" `Slow
            test_jobs_fanout_deterministic;
          Alcotest.test_case "cache on/off digests identical" `Slow
            test_cache_on_off_digest_identical ] );
      ( "recovery",
        [ Alcotest.test_case "hostlo crash leaves no dangling queue" `Quick
            test_hostlo_crash_no_dangling_queue ] );
      ( "exactly_once",
        [ Alcotest.test_case "partial timeout dedupes on retry" `Quick
            test_partial_timeout_dedupe;
          Alcotest.test_case "partial faults leak nothing" `Slow
            test_partial_faults_no_leak ] ) ]
