(* The PR-7 observability additions: bounded-error mergeable histograms
   (Hdr), sharded binary trace rings' merged read view, and the live SLO
   monitor's windowed burn-rate accounting.  The merge tests double as
   the --jobs determinism guard at the data-structure level: the same
   samples/events must yield bit-identical digests however they were
   sharded or which domain produced them. *)

module Time = Nest_sim.Time
module Engine = Nest_sim.Engine
module Trace = Nest_sim.Trace
module Metrics = Nest_sim.Metrics
module Hdr = Nest_sim.Hdr
module Slo = Nest_sim.Slo
module Domain_pool = Nest_sim.Domain_pool

(* Deterministic sample stream (no Random state shared with other
   tests): a tiny LCG over positive floats spanning ~5 decades. *)
let samples seed n =
  let x = ref (Int64.of_int (seed + 1)) in
  List.init n (fun _ ->
      x := Int64.add (Int64.mul !x 6364136223846793005L) 1442695040888963407L;
      let u = Int64.to_float (Int64.shift_right_logical !x 11) /. 9.0e18 in
      0.5 +. (100_000.0 *. u *. u))

(* --- Hdr: accuracy against exact percentiles ---------------------- *)

let exact_percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let test_hdr_accuracy () =
  let xs = samples 7 5000 in
  let h = Hdr.create ~error:0.01 () in
  List.iter (Hdr.add h) xs;
  let sorted = Array.of_list xs in
  Array.sort compare sorted;
  Alcotest.(check int) "count exact" 5000 (Hdr.count h);
  Alcotest.(check (float 1e-6)) "total exact"
    (List.fold_left ( +. ) 0.0 xs)
    (Hdr.total h);
  Alcotest.(check (float 0.0)) "min exact" sorted.(0) (Hdr.min h);
  Alcotest.(check (float 0.0)) "max exact" sorted.(4999) (Hdr.max h);
  List.iter
    (fun p ->
      let ex = exact_percentile sorted p in
      let got = Hdr.percentile h p in
      let rel = abs_float (got -. ex) /. ex in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within 1%% (exact %.3f got %.3f rel %.4f)" p ex
           got rel)
        true (rel <= 0.0101))
    [ 50.0; 90.0; 99.0; 99.9 ]

let test_hdr_zero_and_empty () =
  let h = Hdr.create () in
  Alcotest.(check (float 0.0)) "empty percentile is 0" 0.0
    (Hdr.percentile h 99.0);
  Alcotest.(check (float 0.0)) "empty min" infinity (Hdr.min h);
  Hdr.add h 0.0;
  Hdr.add h (-3.0);
  Hdr.add h Float.nan;
  Hdr.add h 10.0;
  Alcotest.(check int) "non-positive and NaN still counted" 4 (Hdr.count h);
  (* Ranks falling in the zero bucket report the exact minimum (here the
     negative sample), never a fabricated bucket midpoint. *)
  Alcotest.(check (float 0.0)) "zero bucket reports exact min" (-3.0)
    (Hdr.percentile h 25.0)

(* --- Hdr: merging is exact sharding ------------------------------- *)

let test_hdr_merge_identity () =
  let xs = samples 11 4000 in
  let whole = Hdr.create () in
  List.iter (Hdr.add whole) xs;
  (* Shard the same stream 4 ways round-robin, then merge in two
     different orders: both must equal the unsharded sketch bit for
     bit — bucket-wise addition is exact and order-free. *)
  let shards = Array.init 4 (fun _ -> Hdr.create ()) in
  List.iteri (fun i x -> Hdr.add shards.(i mod 4) x) xs;
  let merge order =
    let m = Hdr.create () in
    List.iter (fun i -> Hdr.merge_into ~into:m shards.(i)) order;
    m
  in
  let a = merge [ 0; 1; 2; 3 ] and b = merge [ 3; 1; 0; 2 ] in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%g merge = whole" p)
        (Hdr.percentile whole p) (Hdr.percentile a p);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "p%g merge order-free" p)
        (Hdr.percentile a p) (Hdr.percentile b p))
    [ 1.0; 50.0; 90.0; 99.0; 99.9; 100.0 ];
  Alcotest.(check int) "count merges" (Hdr.count whole) (Hdr.count a);
  Alcotest.(check (float 0.0)) "max merges" (Hdr.max whole) (Hdr.max a)

let test_hdr_merge_error_mismatch () =
  let a = Hdr.create ~error:0.01 () and b = Hdr.create ~error:0.02 () in
  Alcotest.(check bool) "different error bounds rejected" true
    (try
       Hdr.merge_into ~into:a b;
       false
     with Invalid_argument _ -> true)

(* --- Trace: sharded rings, one merged order ----------------------- *)

let shape tr =
  List.map (fun e -> (e.Trace.ts, e.Trace.name, e.Trace.arg)) (Trace.events tr)

let test_trace_shards_merge_like_one () =
  (* The same strictly-increasing event stream written round-robin over
     4 shards must read back exactly like the single-shard trace. *)
  let one = Trace.create ~capacity:64 ~shards:1 () in
  let four = Trace.create ~capacity:16 ~shards:4 () in
  for i = 1 to 40 do
    let name = "ev" ^ string_of_int i in
    Trace.instant one ~ts:i ~cat:"t" ~name ();
    Trace.instant four ~shard:(i mod 4) ~ts:i ~cat:"t" ~name ()
  done;
  Alcotest.(check (list (triple int string string)))
    "sharded = unsharded" (shape one) (shape four);
  Alcotest.(check int) "recorded over shards" 40 (Trace.recorded four);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped four)

let test_trace_merge_tiebreak () =
  let tr = Trace.create ~capacity:16 ~shards:2 () in
  (* Record in an order the merge must NOT preserve: same ts, shard 1
     before shard 0; and a lower prio arriving last. *)
  Trace.instant tr ~shard:1 ~ts:5 ~cat:"t" ~name:"s1" ();
  Trace.instant tr ~shard:0 ~ts:5 ~cat:"t" ~name:"s0" ();
  Trace.instant tr ~shard:0 ~prio:1 ~ts:9 ~cat:"t" ~name:"late" ();
  Trace.instant tr ~shard:1 ~prio:0 ~ts:9 ~cat:"t" ~name:"early" ();
  Alcotest.(check (list string))
    "(ts, prio, shard, seq) order"
    [ "s0"; "s1"; "early"; "late" ]
    (List.map (fun e -> e.Trace.name) (Trace.events tr))

let test_trace_shard_wrap () =
  (* Wrap-around is per shard: flooding one shard must not evict the
     other shard's history. *)
  let tr = Trace.create ~capacity:4 ~shards:2 () in
  Trace.instant tr ~shard:1 ~ts:0 ~cat:"t" ~name:"keep" ();
  for i = 1 to 10 do
    Trace.instant tr ~shard:0 ~ts:i ~cat:"t" ~name:"flood" ()
  done;
  Alcotest.(check int) "dropped only from the flooded shard" 6
    (Trace.dropped tr);
  Alcotest.(check bool) "other shard intact" true
    (List.exists (fun e -> e.Trace.name = "keep") (Trace.events tr))

let test_trace_iter_merged () =
  let a = Trace.create ~capacity:16 () and b = Trace.create ~capacity:16 () in
  Trace.instant a ~ts:1 ~cat:"t" ~name:"a1" ();
  Trace.instant a ~ts:3 ~cat:"t" ~name:"a3" ();
  Trace.instant b ~ts:2 ~cat:"t" ~name:"b2" ();
  Trace.instant b ~ts:3 ~cat:"t" ~name:"b3" ();
  let names ts = List.map (fun e -> e.Trace.name) (Trace.merged_events ts) in
  (* Time-sorted across traces; ties broken by list position. *)
  Alcotest.(check (list string))
    "merged across traces" [ "a1"; "b2"; "a3"; "b3" ]
    (names [ a; b ]);
  Alcotest.(check (list string))
    "repeatable" (names [ a; b ]) (names [ a; b ])

(* --- Slo: windowed burn rates ------------------------------------- *)

let test_slo_availability_windows () =
  let e = Engine.create () in
  let slo =
    Slo.create
      ~specs:[ Slo.availability ~window:(Time.ms 100) ~target:0.9 () ]
      ~stop:(Time.ms 450) e
  in
  let feed ~at ~sent ~ok =
    Engine.schedule_at e ~at (fun () ->
        for _ = 1 to sent do
          Slo.observe_sent slo
        done;
        for _ = 1 to ok do
          Slo.observe_ok slo
        done)
  in
  feed ~at:(Time.ms 50) ~sent:10 ~ok:10;   (* window 1: burn 0 *)
  feed ~at:(Time.ms 150) ~sent:10 ~ok:5;   (* window 2: err .5/.1 = 5 *)
  feed ~at:(Time.ms 250) ~sent:10 ~ok:9;   (* window 3: burn exactly 1 *)
  Engine.run e;
  match Slo.report slo with
  | [ c ] ->
    Alcotest.(check int) "four full windows before stop" 4 c.Slo.c_windows;
    Alcotest.(check int) "only the 50%% window violates" 1 c.Slo.c_violations;
    Alcotest.(check (float 1e-9)) "worst burn" 5.0 c.Slo.c_worst_burn;
    Alcotest.(check bool) "not compliant" false (Slo.compliant c);
    Alcotest.(check (float 1e-9)) "compliance ratio" 0.75
      (Slo.compliance_ratio c)
  | r -> Alcotest.failf "one spec, %d compliance rows" (List.length r)

let test_slo_goodput_start_offset () =
  let e = Engine.create () in
  (* Armed at t=0 for a workload that only begins at 200 ms: the idle
     lead-in must not be counted as silent (burn = inf) windows. *)
  let slo =
    Slo.create ~start:(Time.ms 200)
      ~specs:[ Slo.goodput ~window:(Time.ms 100) ~floor_per_s:100.0 () ]
      ~stop:(Time.ms 500) e
  in
  Engine.schedule_at e ~at:(Time.ms 250) (fun () ->
      for _ = 1 to 20 do
        Slo.observe_ok slo
      done);
  Engine.run e;
  match Slo.report slo with
  | [ c ] ->
    (* Ticks at 300/400/500 only. 20 ok in 100 ms = 200/s >= floor; the
       two silent windows after the burst burn infinitely. *)
    Alcotest.(check int) "lead-in not windowed" 3 c.Slo.c_windows;
    Alcotest.(check int) "silent windows violate" 2 c.Slo.c_violations;
    Alcotest.(check bool) "silent burn is inf" true
      (c.Slo.c_worst_burn = infinity)
  | r -> Alcotest.failf "one spec, %d compliance rows" (List.length r)

let test_slo_latency_percentile () =
  let e = Engine.create () in
  let slo =
    Slo.create
      ~specs:[ Slo.latency_p ~window:(Time.ms 100) ~p:90.0 ~limit_us:100.0 () ]
      ~stop:(Time.ms 100) e
  in
  Engine.schedule_at e ~at:(Time.ms 50) (fun () ->
      for i = 1 to 10 do
        Slo.observe_latency slo (if i <= 8 then 50.0 else 500.0)
      done);
  Engine.run e;
  (match Slo.report slo with
  | [ c ] ->
    Alcotest.(check int) "one window" 1 c.Slo.c_windows;
    (* 2/10 over the limit against a 10 % budget: burn 2. *)
    Alcotest.(check (float 1e-9)) "burn = over/budget" 2.0 c.Slo.c_worst_burn;
    Alcotest.(check int) "violated" 1 c.Slo.c_violations
  | r -> Alcotest.failf "one spec, %d compliance rows" (List.length r));
  let lat = Slo.latency slo in
  Alcotest.(check int) "run-wide sketch holds every sample" 10 (Hdr.count lat);
  Alcotest.(check (float 0.0)) "sketch max exact" 500.0 (Hdr.max lat)

let test_slo_violation_side_effects () =
  let e = Engine.create () in
  let tr = Trace.create ~capacity:256 () in
  Engine.set_tracer e (Some tr);
  let slo =
    Slo.create
      ~specs:[ Slo.availability ~window:(Time.ms 100) ~target:0.9 () ]
      ~stop:(Time.ms 200) e
  in
  Engine.schedule_at e ~at:(Time.ms 50) (fun () ->
      Slo.observe_sent slo;
      Slo.observe_sent slo;
      Slo.observe_ok slo)
  (* window 1: 50 % errors -> violation; window 2: quiet, compliant *);
  Engine.run e;
  let slo_instants =
    List.filter
      (fun ev -> ev.Trace.kind = Trace.Instant && ev.Trace.cat = "slo")
      (Trace.events tr)
  in
  (match slo_instants with
  | [ ev ] ->
    Alcotest.(check string) "instant names the spec" "availability"
      ev.Trace.name;
    Alcotest.(check string) "instant carries the burn" "burn=5.00"
      ev.Trace.arg
  | l -> Alcotest.failf "expected 1 slo instant, got %d" (List.length l));
  match Metrics.find (Engine.metrics e) "slo.availability.violations" with
  | Some (Metrics.Counter n) -> Alcotest.(check int) "counter bumped" 1 n
  | _ -> Alcotest.fail "violation counter missing"

let test_slo_no_counter_when_compliant () =
  let e = Engine.create () in
  let slo =
    Slo.create
      ~specs:[ Slo.availability ~window:(Time.ms 100) ~target:0.9 () ]
      ~stop:(Time.ms 200) e
  in
  Engine.schedule_at e ~at:(Time.ms 50) (fun () ->
      Slo.observe_sent slo;
      Slo.observe_ok slo);
  Engine.run e;
  Alcotest.(check bool) "no zero row in metric dumps" true
    (Metrics.find (Engine.metrics e) "slo.availability.violations" = None);
  Alcotest.(check int) "engine drained despite ticks" 2
    (match Slo.report slo with [ c ] -> c.Slo.c_windows | _ -> -1)

(* --- --jobs determinism of the merged views ----------------------- *)

(* One "cell": a private sketch + trace built deterministically from the
   cell index.  Fanning cells across domains and merging must be
   bit-identical to the sequential run — this is the data-structure half
   of the chaos --check guarantee. *)
let cell i =
  let h = Hdr.create ~name:(Printf.sprintf "cell%d" i) () in
  List.iter (Hdr.add h) (samples i 2000);
  let tr = Trace.create ~capacity:256 ~shards:4 () in
  for j = 0 to 99 do
    Trace.instant tr ~shard:(j mod 4) ~ts:((j * 7) + i) ~cat:"c"
      ~name:(Printf.sprintf "%d.%d" i j) ()
  done;
  (h, tr)

let merged_digest cells =
  let m = Hdr.create () in
  List.iter (fun (h, _) -> Hdr.merge_into ~into:m h) cells;
  let evs =
    List.map
      (fun e -> Printf.sprintf "%d:%s" e.Trace.ts e.Trace.name)
      (Trace.merged_events (List.map snd cells))
  in
  ( Hdr.percentile m 50.0,
    Hdr.percentile m 99.0,
    Hdr.count m,
    Digest.to_hex (Digest.string (String.concat "," evs)) )

(* --- observability is pure observation ---------------------------- *)

(* The headline always-on claim: attaching tracing + metrics +
   provenance to an experiment must not perturb its results by a single
   bit; and switching everything back off must leave no residue. *)
let test_obs_neutrality () =
  let module Obs = Nest_experiments.Exp_util.Obs in
  let sweep () =
    Nest_experiments.Fig_netperf.sweep_single ~quick:true ~mode:`Nat
      ~sizes:[ 64; 1024 ]
  in
  let bare = sweep () in
  Obs.configure ~trace:true ~metrics:true ~provenance:true ~prov_sample:4 ();
  let observed = sweep () in
  Obs.discard ();
  Obs.configure ~trace:false ~metrics:false ~provenance:false ();
  let after = sweep () in
  let open Nest_experiments.Fig_netperf in
  List.iter2
    (fun (a : point) (b : point) ->
      Alcotest.(check int) "size" a.size b.size;
      Alcotest.(check (float 0.0)) "mbps unperturbed" a.mbps b.mbps;
      Alcotest.(check (float 0.0)) "latency unperturbed" a.lat_mean_us
        b.lat_mean_us)
    bare observed;
  List.iter2
    (fun (a : point) (b : point) ->
      Alcotest.(check (float 0.0)) "no residue after disable" a.mbps b.mbps)
    bare after

let test_jobs_merge_determinism () =
  let idx = [ 0; 1; 2; 3 ] in
  let seq = merged_digest (Domain_pool.map ~jobs:1 cell idx) in
  let par = merged_digest (Domain_pool.map ~jobs:4 cell idx) in
  let p50a, p99a, na, da = seq and p50b, p99b, nb, db = par in
  Alcotest.(check (float 0.0)) "merged p50 bit-identical" p50a p50b;
  Alcotest.(check (float 0.0)) "merged p99 bit-identical" p99a p99b;
  Alcotest.(check int) "merged count" na nb;
  Alcotest.(check string) "merged trace order bit-identical" da db

let () =
  Alcotest.run "slo"
    [ ( "hdr",
        [ Alcotest.test_case "accuracy vs exact" `Quick test_hdr_accuracy;
          Alcotest.test_case "zero/NaN/empty" `Quick test_hdr_zero_and_empty;
          Alcotest.test_case "merge = sharding" `Quick test_hdr_merge_identity;
          Alcotest.test_case "merge error mismatch" `Quick
            test_hdr_merge_error_mismatch ] );
      ( "trace-shards",
        [ Alcotest.test_case "sharded reads like one" `Quick
            test_trace_shards_merge_like_one;
          Alcotest.test_case "tie-break order" `Quick test_trace_merge_tiebreak;
          Alcotest.test_case "per-shard wrap" `Quick test_trace_shard_wrap;
          Alcotest.test_case "iter_merged" `Quick test_trace_iter_merged ] );
      ( "slo",
        [ Alcotest.test_case "availability windows" `Quick
            test_slo_availability_windows;
          Alcotest.test_case "goodput start offset" `Quick
            test_slo_goodput_start_offset;
          Alcotest.test_case "latency percentile" `Quick
            test_slo_latency_percentile;
          Alcotest.test_case "violation side effects" `Quick
            test_slo_violation_side_effects;
          Alcotest.test_case "compliant leaves no counter" `Quick
            test_slo_no_counter_when_compliant ] );
      ( "jobs",
        [ Alcotest.test_case "merged views deterministic" `Quick
            test_jobs_merge_determinism ] );
      ( "neutrality",
        [ Alcotest.test_case "obs does not perturb results" `Quick
            test_obs_neutrality ] ) ]
