(* Unit + property tests for the simulation engine library. *)

module Engine = Nest_sim.Engine
module Heap = Nest_sim.Heap
module Prng = Nest_sim.Prng
module Dist = Nest_sim.Dist
module Stats = Nest_sim.Stats
module Exec = Nest_sim.Exec
module Cpu_set = Nest_sim.Cpu_set
module Cpu_account = Nest_sim.Cpu_account
module Time = Nest_sim.Time

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order"
    ~count:200
    QCheck.(list small_int)
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~prio:p p) prios;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare prios)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~prio:7 v) [ "a"; "b"; "c" ];
  let popped =
    List.init 3 (fun _ ->
        match Heap.pop h with Some (_, v) -> v | None -> assert false)
  in
  Alcotest.(check (list string)) "insertion order among equal priorities"
    [ "a"; "b"; "c" ] popped

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h ~prio:5 5;
  Heap.push h ~prio:1 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek_prio h);
  ignore (Heap.pop h);
  Heap.push h ~prio:3 3;
  Alcotest.(check (option int)) "peek after mix" (Some 3) (Heap.peek_prio h);
  Alcotest.(check int) "size" 2 (Heap.size h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Timing wheel: the engine's queue, contractually identical to Heap
   for the engine's monotone usage pattern. *)

module Wheel = Nest_sim.Wheel

let drain_both w h =
  let rec go () =
    match (Wheel.pop w, Heap.pop h) with
    | None, None -> true
    | Some (pw, vw), Some (ph, vh) -> pw = ph && vw = vh && go ()
    | None, Some _ | Some _, None -> false
  in
  go ()

let test_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel pops exactly like the heap (order + FIFO ties)"
    ~count:300
    QCheck.(list (int_bound 5000))
    (fun prios ->
      let w = Wheel.create () and h = Heap.create () in
      List.iteri
        (fun i p ->
          Wheel.push w ~prio:p i;
          Heap.push h ~prio:p i)
        prios;
      drain_both w h)

let test_wheel_fifo_ties () =
  let w = Wheel.create () in
  List.iter (fun v -> Wheel.push w ~prio:7 v) [ "a"; "b"; "c" ];
  Wheel.push w ~prio:3 "first";
  let popped =
    List.init 4 (fun _ ->
        match Wheel.pop w with Some (_, v) -> v | None -> assert false)
  in
  Alcotest.(check (list string)) "insertion order among equal priorities"
    [ "first"; "a"; "b"; "c" ] popped

let test_wheel_overflow_frames () =
  (* Priorities spanning far more than one 2^30 frame: entries park in
     the overflow heap and drain back as the base advances. *)
  let w = Wheel.create () and h = Heap.create () in
  let prios =
    [ 0; 1; 31; 32; 1 lsl 20; (1 lsl 30) + 5; (1 lsl 30) + 5; 3 lsl 30;
      (3 lsl 30) + 7; 7 lsl 30; max_int / 2 ]
  in
  List.iteri
    (fun i p ->
      Wheel.push w ~prio:p i;
      Heap.push h ~prio:p i)
    prios;
  Alcotest.(check bool) "drains in heap order across frames" true
    (drain_both w h)

let test_wheel_past_clamp () =
  (* The engine never schedules below its clock, but the wheel still
     clamps a below-base priority to the base rather than corrupting
     its frames. *)
  let w = Wheel.create () in
  Wheel.push w ~prio:100 "a";
  Alcotest.(check (option int)) "min" (Some 100) (Wheel.peek_prio w);
  ignore (Wheel.pop w);
  Wheel.push w ~prio:5 "late";
  (match Wheel.pop w with
  | Some (p, v) ->
    Alcotest.(check string) "late entry pops" "late" v;
    Alcotest.(check bool) "clamped to >= base" true (p >= 100)
  | None -> Alcotest.fail "expected an entry");
  Alcotest.(check bool) "empty" true (Wheel.is_empty w)

let test_wheel_interleaved_monotone =
  (* The engine's actual pattern: pushes always at or above the last
     popped priority.  The wheel must match the heap pop-for-pop. *)
  QCheck.Test.make ~name:"wheel = heap under monotone interleaving"
    ~count:200
    QCheck.(list (pair bool (int_bound 100_000)))
    (fun ops ->
      let w = Wheel.create () and h = Heap.create () in
      let floor = ref 0 and next = ref 0 in
      List.for_all
        (fun (is_pop, delta) ->
          if is_pop then
            match (Wheel.pop w, Heap.pop h) with
            | None, None -> true
            | Some (pw, vw), Some (ph, vh) ->
              floor := pw;
              pw = ph && vw = vh
            | None, Some _ | Some _, None -> false
          else begin
            let prio = !floor + delta in
            incr next;
            Wheel.push w ~prio !next;
            Heap.push h ~prio !next;
            true
          end)
        ops
      && drain_both w h)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:30 (fun () -> log := 30 :: !log);
  Engine.schedule e ~delay:10 (fun () -> log := 10 :: !log);
  Engine.schedule e ~delay:20 (fun () -> log := 20 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "timestamp order" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now e)

let test_engine_horizon () =
  let e = Engine.create () in
  let fired = ref 0 in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> incr fired))
    [ 5; 15; 25 ];
  Engine.run ~until:16 e;
  Alcotest.(check int) "two events within horizon" 2 !fired;
  Alcotest.(check int) "clock parked at horizon" 16 (Engine.now e);
  Alcotest.(check int) "one still pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 3 !fired

let test_engine_cascade () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec step n () =
    incr count;
    if n > 0 then Engine.schedule e ~delay:1 (step (n - 1))
  in
  Engine.schedule e ~delay:0 (step 99);
  Engine.run e;
  Alcotest.(check int) "cascaded events" 100 !count;
  Alcotest.(check int) "events processed" 100 (Engine.events_processed e)

let test_engine_past_schedule () =
  let e = Engine.create () in
  let at = ref (-1) in
  Engine.schedule e ~delay:10 (fun () ->
      Engine.schedule_at e ~at:3 (fun () -> at := Engine.now e));
  Engine.run e;
  Alcotest.(check int) "past dates fire now, never rewind the clock" 10 !at

(* ------------------------------------------------------------------ *)
(* Prng / Dist *)

let test_prng_determinism () =
  let a = Prng.create 99L and b = Prng.create 99L in
  let xs = List.init 50 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys)

let test_prng_split_independent () =
  let a = Prng.create 7L in
  let child = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.next_int64 child) in
  let ys = List.init 20 (fun _ -> Prng.next_int64 a) in
  Alcotest.(check bool) "split stream differs from parent" true (xs <> ys)

let test_prng_float_range =
  QCheck.Test.make ~name:"Prng.float in [0,1)" ~count:500
    QCheck.(int64)
    (fun seed ->
      let r = Prng.create seed in
      let x = Prng.float r in
      x >= 0.0 && x < 1.0)

let test_prng_int_range =
  QCheck.Test.make ~name:"Prng.int in [0,bound)" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Prng.create seed in
      let v = Prng.int r bound in
      v >= 0 && v < bound)

let test_prng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair int64 (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Prng.shuffle (Prng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let mean_of f n rng =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. f rng
  done;
  !acc /. float_of_int n

let test_dist_exponential_mean () =
  let rng = Prng.create 1L in
  let m = mean_of (fun r -> Dist.exponential r ~mean:50.0) 20_000 rng in
  Alcotest.(check bool)
    (Printf.sprintf "exponential mean ~50 (got %.2f)" m)
    true
    (abs_float (m -. 50.0) < 2.5)

let test_dist_lognormal_mean_cv () =
  let rng = Prng.create 2L in
  let samples =
    List.init 30_000 (fun _ -> Dist.lognormal_mean_cv rng ~mean:100.0 ~cv:0.5)
  in
  let s = Stats.create () in
  List.iter (Stats.add s) samples;
  Alcotest.(check bool)
    (Printf.sprintf "mean ~100 (got %.2f)" (Stats.mean s))
    true
    (abs_float (Stats.mean s -. 100.0) < 3.0);
  let cv = Stats.stddev s /. Stats.mean s in
  Alcotest.(check bool)
    (Printf.sprintf "cv ~0.5 (got %.3f)" cv)
    true
    (abs_float (cv -. 0.5) < 0.06)

let test_dist_bounded_pareto =
  QCheck.Test.make ~name:"bounded pareto stays within bounds" ~count:500
    QCheck.(int64)
    (fun seed ->
      let r = Prng.create seed in
      let x = Dist.bounded_pareto r ~shape:1.2 ~lo:2.0 ~hi:64.0 in
      x >= 2.0 && x <= 64.0 +. 1e-9)

let test_dist_poisson_mean () =
  let rng = Prng.create 3L in
  let m =
    mean_of (fun r -> float_of_int (Dist.poisson r ~mean:8.0)) 20_000 rng
  in
  Alcotest.(check bool)
    (Printf.sprintf "poisson mean ~8 (got %.2f)" m)
    true
    (abs_float (m -. 8.0) < 0.3)

let test_dist_zipf_range =
  QCheck.Test.make ~name:"zipf rank within [1,n]" ~count:300
    QCheck.(pair int64 (int_range 1 500))
    (fun (seed, n) ->
      let r = Prng.create seed in
      let v = Dist.zipf r ~n ~s:1.2 in
      v >= 1 && v <= n)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_against_oracle =
  QCheck.Test.make ~name:"stats mean/stddev match direct computation"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 2 60) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (n -. 1.0)
      in
      abs_float (Stats.mean s -. mean) < 1e-6
      && abs_float (Stats.variance s -. var) < 1e-3)

let test_stats_percentiles () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.; 20.; 30.; 40.; 50. ];
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p50" 30.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100" 50.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 20.0
    (Stats.percentile s 25.0);
  Alcotest.(check (float 1e-9)) "median" 30.0 (Stats.median s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.; 2. ];
  List.iter (Stats.add b) [ 3.; 4. ];
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 4 (Stats.count m);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean m)

let test_stats_cdf_monotone =
  QCheck.Test.make ~name:"cdf fractions are nondecreasing in [0,1]"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 80) (float_range 0. 100.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let cdf = Stats.cdf ~points:20 s in
      let fracs = List.map snd cdf in
      List.for_all (fun f -> f >= 0.0 && f <= 1.0) fracs
      && List.sort compare fracs = fracs)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 2.5; 9.5; 11.0; -1.0 ];
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "total counts everything (clamped)" 6
    (Stats.Histogram.total h);
  Alcotest.(check int) "first bin has 0.5, 1.5 and clamped -1.0" 3 counts.(0);
  Alcotest.(check int) "last bin has 9.5 and clamped 11.0" 2 counts.(4);
  let lo, hi = Stats.Histogram.bin_bounds h 1 in
  Alcotest.(check (float 1e-9)) "bin 1 lo" 2.0 lo;
  Alcotest.(check (float 1e-9)) "bin 1 hi" 4.0 hi

(* ------------------------------------------------------------------ *)
(* Exec / Cpu_set / Cpu_account *)

let test_exec_serializes () =
  let e = Engine.create () in
  let x = Exec.create e ~name:"w" in
  let finished = ref [] in
  Exec.submit x ~cost:100 (fun () -> finished := (1, Engine.now e) :: !finished);
  Exec.submit x ~cost:50 (fun () -> finished := (2, Engine.now e) :: !finished);
  Engine.run e;
  Alcotest.(check (list (pair int int)))
    "FIFO with accumulated service"
    [ (1, 100); (2, 150) ]
    (List.rev !finished);
  Alcotest.(check int) "busy_ns" 150 (Exec.busy_ns x)

let test_exec_width_parallel () =
  let e = Engine.create () in
  let x = Exec.create ~width:2 e ~name:"wide" in
  let done_at = ref [] in
  for _ = 1 to 2 do
    Exec.submit x ~cost:100 (fun () -> done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "two slots run in parallel" [ 100; 100 ]
    !done_at

let test_exec_accounting () =
  let e = Engine.create () in
  let acct = Cpu_account.create () in
  let x =
    Exec.create ~account:(acct, "vm1", Cpu_account.Soft)
      ~also:[ (acct, "host", Cpu_account.Guest) ]
      e ~name:"acc"
  in
  Exec.submit x ~cost:500 (fun () -> ());
  Exec.submit ~charge_as:Cpu_account.Sys x ~cost:300 (fun () -> ());
  Engine.run e;
  Alcotest.(check int) "primary soft" 500 (Cpu_account.get acct ~entity:"vm1" Cpu_account.Soft);
  Alcotest.(check int) "override goes to sys" 300
    (Cpu_account.get acct ~entity:"vm1" Cpu_account.Sys);
  Alcotest.(check int) "secondary guest gets all" 800
    (Cpu_account.get acct ~entity:"host" Cpu_account.Guest);
  Alcotest.(check int) "entity total" 800
    (Cpu_account.entity_total acct ~entity:"vm1")

let test_cpuset_caps_parallelism () =
  let e = Engine.create () in
  let set = Cpu_set.create ~cores:2 ~name:"vm" in
  (* Three independent width-1 contexts on a 2-core machine. *)
  let xs = List.init 3 (fun i -> Exec.create ~cpus:set e ~name:(string_of_int i)) in
  let done_at = ref [] in
  List.iter
    (fun x -> Exec.submit x ~cost:100 (fun () -> done_at := Engine.now e :: !done_at))
    xs;
  Engine.run e;
  Alcotest.(check (list int)) "third context waits for a core"
    [ 100; 100; 200 ]
    (List.sort compare !done_at)

let test_cpuset_affinity_no_false_contention () =
  let e = Engine.create () in
  let set = Cpu_set.create ~cores:2 ~name:"m" in
  let busy = Exec.create ~cpus:set e ~name:"busy" in
  (* Saturate one context with queued work... *)
  for _ = 1 to 10 do
    Exec.submit busy ~cost:100 (fun () -> ())
  done;
  (* ...the other context must still run immediately on the second core. *)
  let other = Exec.create ~cpus:set e ~name:"other" in
  let at = ref (-1) in
  Exec.submit other ~cost:50 (fun () -> at := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "no false contention from queued work" 50 !at

let test_cpu_account_reset_snapshot () =
  let acct = Cpu_account.create () in
  Cpu_account.charge acct ~entity:"a" Cpu_account.Usr 100;
  Cpu_account.charge acct ~entity:"b" Cpu_account.Sys 200;
  Alcotest.(check (list string)) "entities sorted" [ "a"; "b" ]
    (Cpu_account.entities acct);
  let snap = Cpu_account.snapshot acct in
  Alcotest.(check int) "snapshot rows" 2 (List.length snap);
  Alcotest.(check (float 1e-9)) "cores" 0.5
    (Cpu_account.cores acct ~entity:"b" Cpu_account.Sys ~window:400);
  Cpu_account.reset acct;
  Alcotest.(check int) "reset zeroes" 0
    (Cpu_account.get acct ~entity:"a" Cpu_account.Usr)

let test_time_pp () =
  let s t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "ns" "42ns" (s 42);
  Alcotest.(check string) "us" "1.50us" (s 1500);
  Alcotest.(check string) "ms" "2.50ms" (s 2_500_000);
  Alcotest.(check string) "s" "1.500s" (s 1_500_000_000);
  Alcotest.(check int) "of_sec_f" (Time.sec 2) (Time.of_sec_f 2.0)

let () =
  Alcotest.run "sim"
    [ ( "heap",
        [ qtest test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved ] );
      ( "wheel",
        [ qtest test_wheel_matches_heap;
          Alcotest.test_case "fifo ties" `Quick test_wheel_fifo_ties;
          Alcotest.test_case "overflow frames" `Quick test_wheel_overflow_frames;
          Alcotest.test_case "past clamp" `Quick test_wheel_past_clamp;
          qtest test_wheel_interleaved_monotone ] );
      ( "engine",
        [ Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "horizon" `Quick test_engine_horizon;
          Alcotest.test_case "cascade" `Quick test_engine_cascade;
          Alcotest.test_case "past schedule" `Quick test_engine_past_schedule ]
      );
      ( "prng",
        [ Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          qtest test_prng_float_range;
          qtest test_prng_int_range;
          qtest test_prng_shuffle_permutation ] );
      ( "dist",
        [ Alcotest.test_case "exponential mean" `Quick test_dist_exponential_mean;
          Alcotest.test_case "lognormal mean/cv" `Quick test_dist_lognormal_mean_cv;
          qtest test_dist_bounded_pareto;
          Alcotest.test_case "poisson mean" `Quick test_dist_poisson_mean;
          qtest test_dist_zipf_range ] );
      ( "stats",
        [ qtest test_stats_against_oracle;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          qtest test_stats_cdf_monotone;
          Alcotest.test_case "histogram" `Quick test_histogram ] );
      ( "exec",
        [ Alcotest.test_case "serializes" `Quick test_exec_serializes;
          Alcotest.test_case "width parallel" `Quick test_exec_width_parallel;
          Alcotest.test_case "accounting" `Quick test_exec_accounting;
          Alcotest.test_case "cpuset caps" `Quick test_cpuset_caps_parallelism;
          Alcotest.test_case "cpuset affinity" `Quick
            test_cpuset_affinity_no_false_contention;
          Alcotest.test_case "account snapshot" `Quick
            test_cpu_account_reset_snapshot;
          Alcotest.test_case "time pp" `Quick test_time_pp ] ) ]
