(* Tests for the virtualization substrate: host, VM, virtio/vhost, QMP,
   hot-plug, and the cost model. *)

open Nest_net
open Nest_virt
module Engine = Nest_sim.Engine
module Time = Nest_sim.Time
module Cpu_account = Nest_sim.Cpu_account

let qtest = QCheck_alcotest.to_alcotest
let ip = Ipv4.of_string
let cidr = Ipv4.cidr_of_string

let world () =
  let e = Engine.create () in
  let acct = Cpu_account.create () in
  let host = Host.create e acct ~name:"host" () in
  let _ = Host.add_bridge host ~name:"virbr0" ~ip:(ip "10.0.0.1")
      ~subnet:(cidr "10.0.0.0/24") in
  let vmm = Vmm.create host in
  (e, acct, host, vmm)

let test_host_defaults () =
  let _, _, host, _ = world () in
  Alcotest.(check int) "paper testbed cpus" 12 (Host.cpus host);
  Alcotest.(check string) "entity" "host" (Host.entity host);
  Alcotest.(check int) "cpu set size" 12
    (Nest_sim.Cpu_set.cores (Host.cpu_set host));
  Alcotest.(check bool) "bridge registered" true
    (Host.find_bridge host "virbr0" <> None);
  Alcotest.(check bool) "unknown bridge" true
    (Host.find_bridge host "nope" = None)

let test_vm_creation () =
  let e, _, _, vmm = world () in
  let vm = Vmm.create_vm vmm ~name:"vm1" ~vcpus:5 ~mem_mb:4096
      ~bridge:"virbr0" ~ip:(ip "10.0.0.2") in
  Engine.run ~until:(Time.ms 1) e;
  Alcotest.(check int) "vcpus" 5 (Vm.vcpus vm);
  Alcotest.(check int) "vm cpu set" 5 (Nest_sim.Cpu_set.cores (Vm.cpu_set vm));
  Alcotest.(check int) "one boot NIC" 1 (List.length (Vm.nics vm));
  Alcotest.(check bool) "addressed" true
    (Stack.is_local_addr (Vm.ns vm) (ip "10.0.0.2"));
  Alcotest.(check (list string)) "registered" [ "vm1" ]
    (List.map fst (Vmm.vms vmm));
  Alcotest.(check bool) "bridge addr surfaced" true
    (match Vmm.bridge_addr vmm "virbr0" with
    | Some (gw, sub) ->
      Ipv4.equal gw (ip "10.0.0.1") && sub = cidr "10.0.0.0/24"
    | None -> false)

let test_create_vm_bad_bridge () =
  let _, _, _, vmm = world () in
  Alcotest.check_raises "unknown bridge"
    (Failure "Vmm.create_vm: no such bridge: br-x") (fun () ->
      ignore
        (Vmm.create_vm vmm ~name:"v" ~vcpus:1 ~mem_mb:512 ~bridge:"br-x"
           ~ip:(ip "10.0.0.9")))

let test_qmp_errors () =
  let e, _, _, vmm = world () in
  let vm = Vmm.create_vm vmm ~name:"vm1" ~vcpus:2 ~mem_mb:1024
      ~bridge:"virbr0" ~ip:(ip "10.0.0.2") in
  let responses = ref [] in
  let push r = responses := r :: !responses in
  Vmm.execute vmm ~vm (Qmp.Netdev_add { id = "nd0"; bridge = "missing" }) push;
  Vmm.execute vmm ~vm (Qmp.Device_add { id = "n0"; netdev = "ghost" }) push;
  Vmm.execute vmm ~vm (Qmp.Device_del { id = "ghost" }) push;
  Vmm.execute vmm ~vm (Qmp.Netdev_add_hostlo { id = "nd1"; hostlo = "nope" }) push;
  Engine.run ~until:(Time.sec 1) e;
  Alcotest.(check int) "all responded" 4 (List.length !responses);
  Alcotest.(check bool) "all errors" true
    (List.for_all (function Qmp.Error _ -> true | _ -> false) !responses)

let test_qmp_roundtrip_has_latency () =
  let e, _, _, vmm = world () in
  let vm = Vmm.create_vm vmm ~name:"vm1" ~vcpus:2 ~mem_mb:1024
      ~bridge:"virbr0" ~ip:(ip "10.0.0.2") in
  let t0 = Engine.now e in
  let responded_at = ref 0 in
  Vmm.execute vmm ~vm (Qmp.Netdev_add { id = "nd0"; bridge = "virbr0" })
    (fun _ -> responded_at := Engine.now e);
  Engine.run ~until:(Time.sec 1) e;
  let rtt = !responded_at - t0 in
  Alcotest.(check bool)
    (Printf.sprintf "management RTT in a plausible band (got %dus)" (rtt / 1000))
    true
    (rtt > Time.us 50 && rtt < Time.ms 2)

let test_hotplug_protocol_steps () =
  let e, _, _, vmm = world () in
  let vm = Vmm.create_vm vmm ~name:"vm1" ~vcpus:2 ~mem_mb:1024
      ~bridge:"virbr0" ~ip:(ip "10.0.0.2") in
  (* Drive the two QMP commands by hand, then discover by MAC like the
     in-guest agent (§3.1 steps 1-4). *)
  let mac = ref None in
  Vmm.execute vmm ~vm (Qmp.Netdev_add { id = "nd0"; bridge = "virbr0" })
    (fun r -> Alcotest.(check bool) "netdev_add ok" true (r = Qmp.Ok_done));
  Engine.run ~until:(Engine.now e + Time.ms 5) e;
  Vmm.execute vmm ~vm (Qmp.Device_add { id = "nic0"; netdev = "nd0" })
    (fun r ->
      match r with
      | Qmp.Ok_nic { mac = m } -> mac := Some m
      | _ -> Alcotest.fail "device_add failed");
  Engine.run ~until:(Engine.now e + Time.ms 2) e;
  let m = Option.get !mac in
  (* Device must NOT be guest-visible before the probe delay. *)
  Alcotest.(check bool) "not visible immediately" true
    (not (List.exists (fun d -> Mac.equal d.Dev.mac m) (Vm.nics vm)));
  let seen = ref false in
  Vm.wait_nic vm ~mac:m ~k:(fun _ -> seen := true) ();
  Engine.run ~until:(Engine.now e + Time.ms 200) e;
  Alcotest.(check bool) "guest-visible after probe" true !seen

let test_device_del_unplugs () =
  let e, _, _, vmm = world () in
  let vm = Vmm.create_vm vmm ~name:"vm1" ~vcpus:2 ~mem_mb:1024
      ~bridge:"virbr0" ~ip:(ip "10.0.0.2") in
  let dev = ref None in
  Vmm.hotplug_nic vmm ~vm ~bridge:"virbr0" ~id:"nic0"
    ~k:(fun d -> dev := Some d);
  Engine.run ~until:(Time.ms 200) e;
  let d = Option.get !dev in
  Alcotest.(check bool) "up after plug" true d.Dev.up;
  Vmm.unplug_nic vmm ~vm ~id:"nic0";
  Engine.run ~until:(Time.ms 400) e;
  Alcotest.(check bool) "down after device_del" false d.Dev.up

let test_guest_time_double_accounting () =
  let e, acct, host, vmm = world () in
  ignore host;
  let vm = Vmm.create_vm vmm ~name:"vm1" ~vcpus:2 ~mem_mb:1024
      ~bridge:"virbr0" ~ip:(ip "10.0.0.2") in
  Engine.run ~until:(Time.ms 1) e;
  Cpu_account.reset acct;
  let app = Vm.new_app_exec vm ~name:"w" ~entity:"myapp" in
  Nest_sim.Exec.submit app ~cost:1_000 (fun () -> ());
  Nest_sim.Exec.submit (Vm.soft_exec vm) ~cost:500 (fun () -> ());
  Engine.run e;
  Alcotest.(check int) "app usr" 1_000 (Cpu_account.get acct ~entity:"myapp" Cpu_account.Usr);
  Alcotest.(check int) "vm soft" 500 (Cpu_account.get acct ~entity:"vm1" Cpu_account.Soft);
  Alcotest.(check int) "host guest = sum of guest work" 1_500
    (Cpu_account.get acct ~entity:"host" Cpu_account.Guest);
  Alcotest.(check bool) "vm tracks app entities" true
    (List.mem "myapp" (Vm.entities vm))

let test_hostlo_tap_shared_mac () =
  let e, _, _, vmm = world () in
  let vm1 = Vmm.create_vm vmm ~name:"vm1" ~vcpus:2 ~mem_mb:1024
      ~bridge:"virbr0" ~ip:(ip "10.0.0.2") in
  let vm2 = Vmm.create_vm vmm ~name:"vm2" ~vcpus:2 ~mem_mb:1024
      ~bridge:"virbr0" ~ip:(ip "10.0.0.3") in
  let tap = Vmm.create_hostlo vmm ~name:"hlo0" in
  Alcotest.(check bool) "registered" true (Vmm.find_hostlo vmm "hlo0" <> None);
  let d1 = ref None and d2 = ref None in
  Vmm.hotplug_hostlo_endpoint vmm ~vm:vm1 ~hostlo:"hlo0" ~id:"e1"
    ~k:(fun d -> d1 := Some d);
  Vmm.hotplug_hostlo_endpoint vmm ~vm:vm2 ~hostlo:"hlo0" ~id:"e2"
    ~k:(fun d -> d2 := Some d);
  Engine.run ~until:(Time.ms 500) e;
  let d1 = Option.get !d1 and d2 = Option.get !d2 in
  Alcotest.(check bool) "one interface, one MAC (multiplexed)" true
    (Mac.equal d1.Dev.mac d2.Dev.mac && Mac.equal d1.Dev.mac (Tap.mac tap));
  Alcotest.(check bool) "endpoints are reflectors" true
    (d1.Dev.l2 = Dev.Reflector && d2.Dev.l2 = Dev.Reflector);
  Alcotest.(check int) "two queues" 2 (List.length (Tap.queues tap))

let test_cost_model_scaled =
  QCheck.Test.make ~name:"Cost_model.scaled multiplies datapath costs"
    ~count:100
    QCheck.(float_range 0.5 3.0)
    (fun f ->
      let cm = Cost_model.default in
      let s = Cost_model.scaled cm f in
      let close a b = abs_float (a -. b) <= 0.5 +. (0.01 *. abs_float b) in
      close
        (float_of_int s.Cost_model.stack_rx_fixed_ns)
        (f *. float_of_int cm.Cost_model.stack_rx_fixed_ns)
      && close
           (float_of_int s.Cost_model.vhost_fixed_ns)
           (f *. float_of_int cm.Cost_model.vhost_fixed_ns)
      && close s.Cost_model.veth_per_byte_ns (f *. cm.Cost_model.veth_per_byte_ns)
      (* Management latencies are deliberately not scaled. *)
      && s.Cost_model.qmp_roundtrip_mean_ns = cm.Cost_model.qmp_roundtrip_mean_ns)

let test_vhost_charges_host_sys () =
  let e, acct, _, vmm = world () in
  let vm = Vmm.create_vm vmm ~name:"vm1" ~vcpus:2 ~mem_mb:1024
      ~bridge:"virbr0" ~ip:(ip "10.0.0.2") in
  Engine.run ~until:(Time.ms 1) e;
  Cpu_account.reset acct;
  (* Transmit one frame out of the guest: the vhost worker's time must
     land on host sys. *)
  let dev = List.hd (Vm.nics vm) in
  Dev.transmit dev
    (Frame.make ~src:dev.Dev.mac ~dst:Mac.broadcast
       (Frame.Ipv4_body
          (Packet.make ~src:(ip "10.0.0.2") ~dst:(ip "10.0.0.255")
             (Packet.Udp { src_port = 1; dst_port = 2; payload = Payload.raw 64 }))));
  Engine.run e;
  Alcotest.(check bool) "host sys charged by vhost" true
    (Cpu_account.get acct ~entity:"host" Cpu_account.Sys > 0)

let () =
  Alcotest.run "virt"
    [ ( "host+vm",
        [ Alcotest.test_case "host defaults" `Quick test_host_defaults;
          Alcotest.test_case "vm creation" `Quick test_vm_creation;
          Alcotest.test_case "bad bridge" `Quick test_create_vm_bad_bridge;
          Alcotest.test_case "guest accounting" `Quick
            test_guest_time_double_accounting;
          Alcotest.test_case "vhost accounting" `Quick test_vhost_charges_host_sys ]
      );
      ( "qmp",
        [ Alcotest.test_case "errors" `Quick test_qmp_errors;
          Alcotest.test_case "latency" `Quick test_qmp_roundtrip_has_latency;
          Alcotest.test_case "hotplug protocol" `Quick test_hotplug_protocol_steps;
          Alcotest.test_case "device_del" `Quick test_device_del_unplugs;
          Alcotest.test_case "hostlo shared mac" `Quick test_hostlo_tap_shared_mac ]
      );
      ("cost model", [ qtest test_cost_model_scaled ]) ]
