(* Observability layer (Trace + Metrics + engine wiring) and regression
   tests for the space-leak / stale-state fixes that landed with it:
   heap slots cleared on pop, per-config Hostlo state, NaN-safe cached
   percentiles.  The reconciliation tests assert the layer is *truthful*:
   trace instants must agree with the datapath counters they mirror. *)

open Nest_net
open Nestfusion
module Time = Nest_sim.Time
module Engine = Nest_sim.Engine
module Trace = Nest_sim.Trace
module Metrics = Nest_sim.Metrics
module Stats = Nest_sim.Stats
module Hdr = Nest_sim.Hdr
module Heap = Nest_sim.Heap

(* --- Trace ring --- *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.instant tr ~ts:i ~cat:"t" ~name:(string_of_int i) ()
  done;
  Alcotest.(check int) "recorded" 6 (Trace.recorded tr);
  Alcotest.(check int) "dropped" 2 (Trace.dropped tr);
  Alcotest.(check (list string))
    "oldest first, oldest two overwritten"
    [ "3"; "4"; "5"; "6" ]
    (List.map (fun e -> e.Trace.name) (Trace.events tr));
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.recorded tr);
  Alcotest.(check (list string)) "no events" []
    (List.map (fun e -> e.Trace.name) (Trace.events tr))

let test_trace_by_name () =
  let tr = Trace.create ~capacity:16 () in
  Trace.instant tr ~ts:1 ~cat:"hop" ~name:"br0" ();
  Trace.instant tr ~ts:2 ~cat:"hop" ~name:"br0" ();
  Trace.instant tr ~ts:3 ~cat:"pkt" ~name:"ns1" ~arg:"delivered" ();
  Alcotest.(check (list (pair string int)))
    "aggregated"
    [ ("hop:br0", 2); ("pkt:ns1", 1) ]
    (Trace.by_name tr)

let test_engine_spans_and_profile () =
  let e = Engine.create () in
  let tr = Trace.create ~capacity:64 () in
  Engine.set_tracer e (Some tr);
  (* Deterministic profiling clock: 0.5 "seconds" per reading. *)
  let ticks = ref 0.0 in
  Engine.enable_profiling e
    ~clock:(fun () ->
      ticks := !ticks +. 0.5;
      !ticks);
  Engine.schedule e ~label:"worker" ~delay:5 (fun () ->
      Engine.trace_instant e ~cat:"t" ~name:"inside" ());
  Engine.schedule e ~delay:7 (fun () -> ());
  Engine.run e;
  let shape =
    List.map
      (fun ev ->
        ( (match ev.Trace.kind with
          | Trace.Span_begin -> "begin"
          | Trace.Span_end -> "end"
          | Trace.Instant -> "instant"),
          ev.Trace.name,
          ev.Trace.ts ))
      (Trace.events tr)
  in
  (* The labeled event is bracketed; the instant nests inside; the
     unlabeled event produces no span. *)
  Alcotest.(check (list (triple string string int)))
    "span brackets"
    [ ("begin", "worker", 5); ("instant", "inside", 5); ("end", "worker", 5) ]
    shape;
  let prof = Engine.profile e in
  let calls_of label =
    List.filter_map
      (fun (l, calls, _) -> if l = label then Some calls else None)
      prof
  in
  Alcotest.(check (list int)) "labeled profiled" [ 1 ] (calls_of "worker");
  Alcotest.(check (list int)) "unlabeled profiled" [ 1 ] (calls_of "<unlabeled>");
  List.iter
    (fun (_, _, wall) ->
      Alcotest.(check (float 1e-9)) "injected clock" 0.5 wall)
    prof

(* --- Metrics registry --- *)

let test_metrics_roundtrip () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests" in
  Metrics.bump c ();
  Metrics.bump c ~by:4 ();
  Metrics.set_gauge m "depth" 3.5;
  let backing = ref 7.0 in
  Metrics.gauge_probe m "probe" (fun () -> !backing);
  let h = Metrics.histogram m "lat" in
  Hdr.add h 1.0;
  Hdr.add h 3.0;
  Alcotest.(check int) "counter handle" 5 (Metrics.counter_value c);
  Alcotest.(check bool) "same handle on re-lookup" true
    (Metrics.counter m "requests" == c);
  (match Metrics.snapshot m with
  | [ ("depth", Metrics.Gauge d);
      ("lat", Metrics.Summary { count; mean; _ });
      ("probe", Metrics.Gauge p); ("requests", Metrics.Counter n) ] ->
    Alcotest.(check (float 0.0)) "gauge" 3.5 d;
    Alcotest.(check int) "hist count" 2 count;
    Alcotest.(check (float 1e-9)) "hist mean" 2.0 mean;
    Alcotest.(check (float 0.0)) "probe read at snapshot" 7.0 p;
    Alcotest.(check int) "counter" 5 n
  | snap ->
    Alcotest.failf "unexpected snapshot shape (%d entries)" (List.length snap));
  backing := 9.0;
  (match Metrics.find m "probe" with
  | Some (Metrics.Gauge p) -> Alcotest.(check (float 0.0)) "probe live" 9.0 p
  | _ -> Alcotest.fail "probe lost");
  Metrics.reset m;
  Alcotest.(check int) "counter reset via handle" 0 (Metrics.counter_value c);
  Alcotest.(check int) "hist emptied via handle" 0 (Hdr.count h);
  (match Metrics.find m "probe" with
  | Some (Metrics.Gauge p) ->
    Alcotest.(check (float 0.0)) "probe survives reset" 9.0 p
  | _ -> Alcotest.fail "probe lost after reset");
  Alcotest.(check bool) "flavour clash rejected" true
    (try
       ignore (Metrics.counter m "depth");
       false
     with Invalid_argument _ -> true)

let test_metrics_json () =
  let m = Metrics.create () in
  Metrics.bump (Metrics.counter m "c") ~by:2 ();
  Metrics.set_gauge m "g\"q" 1.5;
  Hdr.add (Metrics.histogram m "h") 4.0;
  let j = Metrics.to_json m in
  Alcotest.(check bool) "escaped name" true
    (Astring.String.is_infix ~affix:"g\\\"q" j);
  Alcotest.(check bool) "counter value" true
    (Astring.String.is_infix ~affix:"\"value\":2" j);
  Alcotest.(check bool) "histogram count" true
    (Astring.String.is_infix ~affix:"\"count\":1" j);
  (* Histograms dump their full percentile ladder, not just a mean. *)
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " emitted") true
        (Astring.String.is_infix ~affix:("\"" ^ key ^ "\":") j))
    [ "p50"; "p90"; "p99"; "p999"; "min"; "max"; "total"; "mean" ]

(* --- Heap slot release (space-leak regression) --- *)

(* Helpers allocate in their own frame so the test frame holds no hidden
   strong reference when the GC runs. *)
let[@inline never] push_tracked h w i =
  let v = Bytes.make 32 'x' in
  Weak.set w i (Some v);
  Heap.push h ~prio:(i + 1) v

let[@inline never] drain h = while Heap.pop h <> None do () done

let weak_cleared w i = Weak.get w i = None

let test_heap_pop_releases () =
  let h = Heap.create () in
  let w = Weak.create 2 in
  push_tracked h w 0;
  push_tracked h w 1;
  drain h;
  Gc.full_major ();
  Alcotest.(check bool) "slot 0 released after pop" true (weak_cleared w 0);
  Alcotest.(check bool) "slot 1 released after pop" true (weak_cleared w 1);
  (* The heap stays usable afterwards. *)
  Heap.push h ~prio:1 (Bytes.make 1 'y');
  Alcotest.(check int) "reusable" 1 (Heap.size h)

let test_heap_clear_releases () =
  let h = Heap.create () in
  let w = Weak.create 3 in
  for i = 0 to 2 do
    push_tracked h w i
  done;
  Heap.clear h;
  Gc.full_major ();
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "slot %d released after clear" i)
      true (weak_cleared w i)
  done

(* --- Stats: NaN-safe cached percentiles --- *)

let test_stats_nan_and_cache () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 3.0; 1.0; Float.nan ];
  (* Float.compare totally orders NaN below all numbers, so the median of
     three samples is the finite middle one, not garbage from an
     inconsistent polymorphic sort. *)
  Alcotest.(check (float 0.0)) "p50 with NaN sample" 1.0
    (Stats.percentile s 50.0);
  Alcotest.(check (float 0.0)) "p100 with NaN sample" 3.0
    (Stats.percentile s 100.0);
  Stats.add s 5.0;
  Alcotest.(check (float 0.0)) "cache invalidated by add" 5.0
    (Stats.percentile s 100.0);
  Stats.clear s;
  Alcotest.(check int) "cleared" 0 (Stats.count s);
  Stats.add s 2.0;
  Alcotest.(check (float 0.0)) "reusable after clear" 2.0 (Stats.median s)

(* --- Hostlo state lives in the config --- *)

let test_hostlo_state_per_config () =
  let tb = Testbed.create ~num_vms:2 () in
  let c1 = Hostlo.make_config tb.Testbed.vmm in
  let c2 = Hostlo.make_config tb.Testbed.vmm in
  let added = ref 0 in
  let p1 = Hostlo.plugin c1 in
  p1.Nest_orch.Cni.add ~pod_name:"pod" ~node:(Testbed.node tb 0) ~publish:[]
    ~k:(fun _ -> incr added);
  p1.Nest_orch.Cni.add ~pod_name:"pod" ~node:(Testbed.node tb 1) ~publish:[]
    ~k:(fun _ -> incr added);
  Testbed.run_until tb (Time.sec 1);
  Alcotest.(check int) "two fractions deployed" 2 !added;
  Alcotest.(check int) "c1 counts its fractions" 2 (Hostlo.fractions c1 "pod");
  Alcotest.(check bool) "c1 has the tap" true
    (Hostlo.tap_of_pod c1 "pod" <> None);
  (* A second config over the same VMM is a fresh deployment: it must not
     observe (or reuse) c1's TAPs. *)
  Alcotest.(check int) "c2 sees no fractions" 0 (Hostlo.fractions c2 "pod");
  Alcotest.(check bool) "c2 has no tap" true
    (Hostlo.tap_of_pod c2 "pod" = None)

let[@inline never] deploy_and_track tb w =
  let c = Hostlo.make_config tb.Testbed.vmm in
  let added = ref 0 in
  let p = Hostlo.plugin c in
  p.Nest_orch.Cni.add ~pod_name:"wpod" ~node:(Testbed.node tb 0) ~publish:[]
    ~k:(fun _ -> incr added);
  Testbed.run_until tb (Time.sec 1);
  Alcotest.(check int) "fraction deployed" 1 !added;
  Weak.set w 0 (Some c)

let test_hostlo_config_collectable () =
  (* Regression: a module-global registry used to retain every config
     (and its TAP tables) for the life of the process. *)
  let tb = Testbed.create ~num_vms:2 () in
  let w = Weak.create 1 in
  deploy_and_track tb w;
  Gc.full_major ();
  Alcotest.(check bool) "config released after run" true (Weak.get w 0 = None)

(* --- Trace/counter reconciliation over real deployments --- *)

let deploy_single_sync ~mode =
  let tb = Testbed.create ~num_vms:1 () in
  let site = ref None in
  Deploy.deploy_single tb ~mode ~name:"pod" ~entity:"srv" ~port:7000
    ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  match !site with
  | Some s -> (tb, s)
  | None ->
    Alcotest.failf "deploy_single %s never completed"
      (Modes.single_to_string mode)

let count_instants tr ~cat ~name ~arg =
  List.length
    (List.filter
       (fun e ->
         e.Trace.kind = Trace.Instant
         && e.Trace.cat = cat && e.Trace.name = name && e.Trace.arg = arg)
       (Trace.events tr))

let count_cat tr ~cat =
  List.length
    (List.filter
       (fun e -> e.Trace.kind = Trace.Instant && e.Trace.cat = cat)
       (Trace.events tr))

(* Runs [n] UDP echos through a deployed single-server site with a tracer
   installed for the traffic phase only.  Returns (trace, hop instants,
   per-ns checks run). *)
let echo_traffic_traced mode n =
  let tb, site = deploy_single_sync ~mode in
  let engine = tb.Testbed.engine in
  let tr = Trace.create ~capacity:65536 () in
  Engine.set_tracer engine (Some tr);
  let srv = site.Deploy.site_ns and cli = tb.Testbed.client_ns in
  let srv_before = (Stack.counters srv).Stack.delivered in
  let cli_before = (Stack.counters cli).Stack.delivered in
  let echoed = ref 0 in
  let server =
    Stack.Udp.bind srv ~port:site.Deploy.site_port (fun s ~src payload ->
        let ip, p = src in
        Stack.Udp.sendto s ~dst:ip ~dst_port:p payload)
  in
  let client =
    Stack.Udp.bind cli ~port:0 (fun _ ~src:_ _ -> incr echoed)
  in
  for _ = 1 to n do
    Stack.Udp.sendto client ~dst:site.Deploy.site_addr
      ~dst_port:site.Deploy.site_port (Payload.raw 256)
  done;
  Testbed.run_until tb (Time.sec 3);
  Stack.Udp.close server;
  Stack.Udp.close client;
  Alcotest.(check int)
    (Modes.single_to_string mode ^ ": all echoed")
    n !echoed;
  let srv_delta = (Stack.counters srv).Stack.delivered - srv_before in
  let cli_delta = (Stack.counters cli).Stack.delivered - cli_before in
  Alcotest.(check int)
    (Modes.single_to_string mode ^ ": server trace instants = counter delta")
    srv_delta
    (count_instants tr ~cat:"pkt" ~name:(Stack.name srv) ~arg:"delivered");
  Alcotest.(check int)
    (Modes.single_to_string mode ^ ": client trace instants = counter delta")
    cli_delta
    (count_instants tr ~cat:"pkt" ~name:(Stack.name cli) ~arg:"delivered");
  (* The host bridge's hop metric counts every switched frame since
     creation — exactly what Bridge.forwarded counts. *)
  (match Metrics.find (Engine.metrics engine) "hop.virbr0" with
  | Some (Metrics.Counter n) ->
    Alcotest.(check int)
      (Modes.single_to_string mode ^ ": bridge hop metric = forwarded")
      (Bridge.forwarded tb.Testbed.bridge)
      n
  | _ -> Alcotest.fail "hop.virbr0 metric missing");
  Engine.set_tracer engine None;
  count_cat tr ~cat:"hop"

let test_reconcile_nat_vs_brfusion () =
  let n = 5 in
  let nat_hops = echo_traffic_traced `Nat n in
  let brf_hops = echo_traffic_traced `Brfusion n in
  Alcotest.(check bool) "both paths cross devices" true
    (nat_hops > 0 && brf_hops > 0);
  (* BrFusion removes the in-VM bridge/NAT layer, so the same traffic
     crosses strictly fewer instrumented hops (Fig. 1). *)
  Alcotest.(check bool)
    (Printf.sprintf "fused path shorter (%d < %d)" brf_hops nat_hops)
    true (brf_hops < nat_hops)

let test_reconcile_hostlo_pair () =
  let tb = Testbed.create ~num_vms:2 () in
  let site = ref None in
  Deploy.deploy_pair tb ~mode:`Hostlo ~name:"pod" ~a_entity:"cli"
    ~b_entity:"srv" ~port:7000 ~k:(fun s -> site := Some s);
  Testbed.run_until tb (Time.sec 1);
  let site =
    match !site with
    | Some s -> s
    | None -> Alcotest.fail "hostlo pair never deployed"
  in
  let engine = tb.Testbed.engine in
  let tr = Trace.create ~capacity:65536 () in
  Engine.set_tracer engine (Some tr);
  let b_before = (Stack.counters site.Deploy.b_ns).Stack.delivered in
  let echoed = ref false in
  let server =
    Stack.Udp.bind site.Deploy.b_ns ~port:site.Deploy.b_port
      (fun s ~src payload ->
        let ip, p = src in
        Stack.Udp.sendto s ~dst:ip ~dst_port:p payload)
  in
  let client =
    Stack.Udp.bind site.Deploy.a_ns ~port:0 (fun _ ~src:_ _ -> echoed := true)
  in
  Stack.Udp.sendto client ~dst:site.Deploy.b_addr ~dst_port:site.Deploy.b_port
    (Payload.raw 128);
  Testbed.run_until tb (Time.sec 3);
  Stack.Udp.close server;
  Stack.Udp.close client;
  Alcotest.(check bool) "hostlo echo" true !echoed;
  let b_delta = (Stack.counters site.Deploy.b_ns).Stack.delivered - b_before in
  Alcotest.(check int) "server trace instants = counter delta" b_delta
    (count_instants tr ~cat:"pkt"
       ~name:(Stack.name site.Deploy.b_ns)
       ~arg:"delivered");
  (* Cross-VM localhost traffic reflects through the loopback tap and
     never touches the host bridge. *)
  Alcotest.(check bool) "crosses the hostlo tap" true
    (count_instants tr ~cat:"hop" ~name:"hostlo-pod" ~arg:"" > 0);
  Alcotest.(check int) "never crosses virbr0" 0
    (count_instants tr ~cat:"hop" ~name:"virbr0" ~arg:"");
  match Metrics.find (Engine.metrics engine) "hop.hostlo-pod" with
  | Some (Metrics.Counter n) ->
    Alcotest.(check bool) "hostlo tap hop metric counted" true (n > 0)
  | _ -> Alcotest.fail "hop.hostlo-pod metric missing"

let () =
  Alcotest.run "observability"
    [ ( "trace",
        [ Alcotest.test_case "ring" `Quick test_trace_ring;
          Alcotest.test_case "by-name" `Quick test_trace_by_name;
          Alcotest.test_case "engine spans + profile" `Quick
            test_engine_spans_and_profile ] );
      ( "metrics",
        [ Alcotest.test_case "roundtrip + reset" `Quick test_metrics_roundtrip;
          Alcotest.test_case "json" `Quick test_metrics_json ] );
      ( "leaks",
        [ Alcotest.test_case "heap pop releases" `Quick test_heap_pop_releases;
          Alcotest.test_case "heap clear releases" `Quick
            test_heap_clear_releases;
          Alcotest.test_case "hostlo config collectable" `Quick
            test_hostlo_config_collectable ] );
      ( "stats",
        [ Alcotest.test_case "nan + cache" `Quick test_stats_nan_and_cache ] );
      ( "state",
        [ Alcotest.test_case "hostlo per-config" `Quick
            test_hostlo_state_per_config ] );
      ( "reconcile",
        [ Alcotest.test_case "nat vs brfusion" `Quick
            test_reconcile_nat_vs_brfusion;
          Alcotest.test_case "hostlo pair" `Quick test_reconcile_hostlo_pair ]
      ) ]
