type stats = {
  vms_removed : int;
  vms_downsized : int;
  containers_moved : int;
}

let epsilon = 1e-9

let fits v ~cpu ~mem =
  Kube_pack.vm_free_cpu v +. epsilon >= cpu
  && Kube_pack.vm_free_mem v +. epsilon >= mem

let move_out (v : Kube_pack.vm) entry =
  let _, (c : Nest_traces.Trace.container_req) = entry in
  (* Remove a single physical occurrence of [entry]. *)
  let removed = ref false in
  v.Kube_pack.contents <-
    List.filter
      (fun e ->
        if (not !removed) && e == entry then begin
          removed := true;
          false
        end
        else true)
      v.Kube_pack.contents;
  assert !removed;
  v.Kube_pack.used_cpu <- v.Kube_pack.used_cpu -. c.Nest_traces.Trace.c_cpu;
  v.Kube_pack.used_mem <- v.Kube_pack.used_mem -. c.Nest_traces.Trace.c_mem

let move_in (v : Kube_pack.vm) entry =
  let _, (c : Nest_traces.Trace.container_req) = entry in
  v.Kube_pack.contents <- entry :: v.Kube_pack.contents;
  v.Kube_pack.used_cpu <- v.Kube_pack.used_cpu +. c.Nest_traces.Trace.c_cpu;
  v.Kube_pack.used_mem <- v.Kube_pack.used_mem +. c.Nest_traces.Trace.c_mem

(* Wasted capacity, used to order eviction targets. *)
let waste v = Kube_pack.vm_free_cpu v +. Kube_pack.vm_free_mem v

(* Try to empty [victim] into the other VMs (most wasted space first,
   victim's smallest containers first).  All-or-nothing: partial spills
   would not release the VM.  Returns the number of containers moved. *)
(* VMs are compared by [vm_id] throughout: downsizing (and copies made
   by [Kube_pack.copy_plan]) produce records that are logically the same
   VM but physically distinct, so pointer identity silently stops
   matching after the first rewrite sweep. *)
let same_vm (a : Kube_pack.vm) (b : Kube_pack.vm) =
  a.Kube_pack.vm_id = b.Kube_pack.vm_id

let try_empty (plan : Kube_pack.plan) victim =
  let others =
    List.filter (fun v -> not (same_vm v victim)) plan.Kube_pack.vms
  in
  let contents =
    List.sort
      (fun (_, a) (_, b) ->
        compare
          (a.Nest_traces.Trace.c_cpu +. a.Nest_traces.Trace.c_mem)
          (b.Nest_traces.Trace.c_cpu +. b.Nest_traces.Trace.c_mem))
      victim.Kube_pack.contents
  in
  (* Tentative placement on copies of the free-space figures. *)
  let free =
    List.map
      (fun v -> (v, ref (Kube_pack.vm_free_cpu v), ref (Kube_pack.vm_free_mem v)))
      others
  in
  (* Most-wasted-first targets; ordered once per attempt (incremental
     re-sorting is quadratic on large fleets for no behavioral gain). *)
  let candidates =
    List.sort
      (fun (_, fc1, fm1) (_, fc2, fm2) ->
        compare (!fc2 +. !fm2) (!fc1 +. !fm1))
      free
  in
  let assignment = ref [] in
  let ok =
    List.for_all
      (fun ((_, c) as entry) ->
        match
          List.find_opt
            (fun (_, fc, fm) ->
              !fc +. epsilon >= c.Nest_traces.Trace.c_cpu && !fm +. epsilon >= c.Nest_traces.Trace.c_mem)
            candidates
        with
        | None -> false
        | Some (target, fc, fm) ->
          fc := !fc -. c.Nest_traces.Trace.c_cpu;
          fm := !fm -. c.Nest_traces.Trace.c_mem;
          assignment := (entry, target) :: !assignment;
          true)
      contents
  in
  if not ok then 0
  else begin
    List.iter
      (fun (entry, target) ->
        move_out victim entry;
        move_in target entry)
      !assignment;
    plan.Kube_pack.vms <-
      List.filter (fun v -> not (same_vm v victim)) plan.Kube_pack.vms;
    List.length !assignment
  end

(* Replace one VM by several smaller ones: pack its containers
   first-fit-decreasing into bins of a cheaper model and adopt the split
   when the bin set costs less.  This is the paper's motivating AWS
   example (a 6 vCPU / 24 GB pod on one m5.2xlarge for $0.448/h vs a
   large + xlarge for $0.336/h) generalized: Hostlo makes the split legal
   because the pod keeps a single localhost across the VMs. *)
let try_split_rebuy (plan : Kube_pack.plan) (v : Kube_pack.vm) =
  let contents =
    List.sort
      (fun (_, a) (_, b) ->
        compare
          (b.Nest_traces.Trace.c_cpu +. b.Nest_traces.Trace.c_mem)
          (a.Nest_traces.Trace.c_cpu +. a.Nest_traces.Trace.c_mem))
      v.Kube_pack.contents
  in
  let ffd_cost model =
    (* Returns (bins as (contents, cpu, mem) list) packing everything. *)
    let cap_cpu = Aws.rel_cpu model and cap_mem = Aws.rel_mem model in
    let bins = ref [] in
    let ok =
      List.for_all
        (fun ((_, c) as entry) ->
          if
            c.Nest_traces.Trace.c_cpu > cap_cpu +. epsilon
            || c.Nest_traces.Trace.c_mem > cap_mem +. epsilon
          then false
          else begin
            let placed =
              List.find_opt
                (fun (_, cpu, mem) ->
                  !cpu +. c.Nest_traces.Trace.c_cpu <= cap_cpu +. epsilon
                  && !mem +. c.Nest_traces.Trace.c_mem <= cap_mem +. epsilon)
                !bins
            in
            (match placed with
            | Some (items, cpu, mem) ->
              items := entry :: !items;
              cpu := !cpu +. c.Nest_traces.Trace.c_cpu;
              mem := !mem +. c.Nest_traces.Trace.c_mem
            | None ->
              bins :=
                !bins
                @ [ ( ref [ entry ],
                      ref c.Nest_traces.Trace.c_cpu,
                      ref c.Nest_traces.Trace.c_mem ) ]);
            true
          end)
        contents
    in
    if ok then Some !bins else None
  in
  let current = v.Kube_pack.vm_model.Aws.price_per_hour in
  let candidates =
    List.filter
      (fun m -> m.Aws.price_per_hour < current -. epsilon)
      Aws.models
  in
  let best =
    List.fold_left
      (fun acc model ->
        match ffd_cost model with
        | None -> acc
        | Some bins ->
          let cost =
            float_of_int (List.length bins) *. model.Aws.price_per_hour
          in
          (match acc with
          | Some (_, _, best_cost) when best_cost <= cost +. epsilon -> acc
          | _ -> Some (model, bins, cost)))
      None candidates
  in
  match best with
  | Some (model, bins, cost) when cost < current -. epsilon ->
    let fresh_id = ref (List.length plan.Kube_pack.vms + 1000 * v.Kube_pack.vm_id) in
    let replacements =
      List.map
        (fun (items, cpu, mem) ->
          incr fresh_id;
          { Kube_pack.vm_id = !fresh_id; vm_model = model;
            contents = !items; used_cpu = !cpu; used_mem = !mem })
        bins
    in
    plan.Kube_pack.vms <-
      List.filter (fun x -> not (same_vm x v)) plan.Kube_pack.vms @ replacements;
    Some (List.length replacements)
  | Some _ | None -> None

(* Downsize a VM to the cheapest model that still holds its contents. *)
let try_downsize (v : Kube_pack.vm) =
  match Aws.cheapest_fitting ~cpu:v.Kube_pack.used_cpu ~mem:v.Kube_pack.used_mem with
  | Some model
    when model.Aws.price_per_hour
         < v.Kube_pack.vm_model.Aws.price_per_hour -. epsilon ->
    Some { v with Kube_pack.vm_model = model }
  | Some _ | None -> None

let improve (plan : Kube_pack.plan) =
  let removed = ref 0 and downsized = ref 0 and moved = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    (* (a) Eviction sweep: least-utilized VMs are the easiest wins.  A
       cheap total-free-space precheck prunes hopeless victims, which
       dominates on large fleets. *)
    let by_usage =
      List.sort
        (fun a b ->
          compare
            (a.Kube_pack.used_cpu +. a.Kube_pack.used_mem)
            (b.Kube_pack.used_cpu +. b.Kube_pack.used_mem))
        plan.Kube_pack.vms
    in
    List.iter
      (fun victim ->
        if
          List.length plan.Kube_pack.vms > 1
          && List.exists (same_vm victim) plan.Kube_pack.vms
        then begin
          let free_cpu, free_mem =
            List.fold_left
              (fun (fc, fm) v ->
                if same_vm v victim then (fc, fm)
                else
                  (fc +. Kube_pack.vm_free_cpu v, fm +. Kube_pack.vm_free_mem v))
              (0.0, 0.0) plan.Kube_pack.vms
          in
          if
            free_cpu +. epsilon >= victim.Kube_pack.used_cpu
            && free_mem +. epsilon >= victim.Kube_pack.used_mem
          then begin
            let n = try_empty plan victim in
            if n > 0 then begin
              incr removed;
              moved := !moved + n;
              progress := true
            end
          end
        end)
      by_usage;
    (* (b) Split-and-rebuy sweep: most expensive VMs first. *)
    let by_price =
      List.sort
        (fun a b ->
          compare b.Kube_pack.vm_model.Aws.price_per_hour
            a.Kube_pack.vm_model.Aws.price_per_hour)
        plan.Kube_pack.vms
    in
    List.iter
      (fun v ->
        if List.exists (same_vm v) plan.Kube_pack.vms then
          match try_split_rebuy plan v with
          | Some n ->
            incr removed;
            moved := !moved + n;
            progress := true
          | None -> ())
      by_price;
    (* (c) Downsizing sweep. *)
    plan.Kube_pack.vms <-
      List.map
        (fun v ->
          match try_downsize v with
          | Some v' ->
            incr downsized;
            progress := true;
            v'
          | None -> v)
        plan.Kube_pack.vms
  done;
  ignore waste;
  ignore fits;
  { vms_removed = !removed; vms_downsized = !downsized;
    containers_moved = !moved }

let pack_and_improve user =
  let plan = Kube_pack.pack_user user in
  Kube_pack.check_invariants plan;
  let stats = improve plan in
  Kube_pack.check_invariants plan;
  (plan, stats)

let improve_copy base =
  let plan = Kube_pack.copy_plan base in
  let stats = improve plan in
  Kube_pack.check_invariants plan;
  (plan, stats)
