(** Per-user cost outcomes and the Fig. 9 aggregation. *)

type outcome = {
  user_id : int;
  kube_cost : float;      (** $/h under whole-pod scheduling. *)
  hostlo_cost : float;    (** $/h after the Hostlo pass. *)
  hostlo_standby_cost : float;
      (** $/h with [standby_depth] pooled endpoints pinned per
          (VM, split pod) — the memory the Hostlo CNI's standby pool
          holds for QMP-free failover, priced by re-buying any VM the
          pool pushes over its model's capacity.  Equals [hostlo_cost]
          at depth 0. *)
  split_pods : int;       (** Pods with containers on more than one VM. *)
  kube_vms : int;
  hostlo_vms : int;
  saving : float;         (** $/h saved (>= 0). *)
  rel_saving : float;     (** saving / kube_cost, in [0,1]. *)
}

type summary = {
  users : int;
  users_with_savings : int;
  frac_with_savings : float;          (** Paper: ~11.4 %. *)
  frac_savers_over_5pct : float;      (** Paper: ~66.7 % of savers. *)
  max_rel_saving : float;             (** Paper: ~40 %. *)
  max_abs_saving : float;             (** Paper: ~237 $/h. *)
  max_abs_saving_rel : float;         (** Paper: ~35 %. *)
  total_kube_cost : float;
  total_hostlo_cost : float;
  total_standby_cost : float;
  total_split_pods : int;
}

val default_ep_mem : float
(** 4 MiB per pooled endpoint, in the trace's relative memory units
    (fractions of the 24xlarge's 384 GB). *)

val evaluate_user :
  ?standby_depth:int -> ?standby_ep_mem:float -> Nest_traces.Trace.user ->
  outcome
(** [standby_depth] (default 0) pooled endpoints are pinned per
    (VM, split pod), [standby_ep_mem] ({!default_ep_mem}) relative
    memory each; the pool is priced into [hostlo_standby_cost]. *)

val evaluate :
  ?standby_depth:int -> ?standby_ep_mem:float ->
  Nest_traces.Trace.user list -> outcome list
val summarize : outcome list -> summary

val savings_histogram : outcome list -> bins:int -> (float * float * int) list
(** [(lo, hi, count)] over relative savings of the *saving* users —
    Fig. 9's frequency plot (bins over (0, max]). *)

val pp_summary : Format.formatter -> summary -> unit
