type outcome = {
  user_id : int;
  kube_cost : float;
  hostlo_cost : float;
  hostlo_standby_cost : float;
  split_pods : int;
  kube_vms : int;
  hostlo_vms : int;
  saving : float;
  rel_saving : float;
}

type summary = {
  users : int;
  users_with_savings : int;
  frac_with_savings : float;
  frac_savers_over_5pct : float;
  max_rel_saving : float;
  max_abs_saving : float;
  max_abs_saving_rel : float;
  total_kube_cost : float;
  total_hostlo_cost : float;
  total_standby_cost : float;
  total_split_pods : int;
}

(* A pooled Hostlo standby endpoint is an ivshmem BAR plus a queue pair
   pinned in guest memory; pre-provisioning [depth] of them per
   (VM, split pod) buys QMP-free failover (see Hostlo.make_config) at a
   memory price.  4 MiB per endpoint, expressed in the trace's relative
   units (fractions of the 24xlarge's 384 GB). *)
let default_ep_mem = 4.0 /. (384.0 *. 1024.0)

(* Pods whose containers ended up on more than one VM — only those go
   through the reflector, so only those carry a standby pool. *)
let split_pod_counts (plan : Kube_pack.plan) =
  let vms_of_pod = Hashtbl.create 64 in
  List.iter
    (fun vm ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (pod, _) ->
          if not (Hashtbl.mem seen pod) then begin
            Hashtbl.add seen pod ();
            Hashtbl.replace vms_of_pod pod
              (1 + Option.value ~default:0 (Hashtbl.find_opt vms_of_pod pod))
          end)
        vm.Kube_pack.contents)
    plan.Kube_pack.vms;
  vms_of_pod

(* Re-price the plan with the pool's memory added to each VM's demand:
   the same "cheapest fitting model" rule the packer itself uses, so a
   VM that standby memory pushes over its model's capacity is bought one
   size up rather than silently overcommitted. *)
let standby_priced_cost ~depth ~ep_mem (plan : Kube_pack.plan) =
  if depth = 0 then Kube_pack.plan_cost plan
  else begin
    let vms_of_pod = split_pod_counts plan in
    List.fold_left
      (fun acc vm ->
        let seen = Hashtbl.create 8 in
        List.iter
          (fun (pod, _) -> Hashtbl.replace seen pod ())
          vm.Kube_pack.contents;
        let split_here =
          Hashtbl.fold
            (fun pod () n ->
              if Option.value ~default:0 (Hashtbl.find_opt vms_of_pod pod) > 1
              then n + 1
              else n)
            seen 0
        in
        let overhead = float_of_int (depth * split_here) *. ep_mem in
        let bought = vm.Kube_pack.vm_model.Aws.price_per_hour in
        let price =
          match
            Aws.cheapest_fitting ~cpu:vm.Kube_pack.used_cpu
              ~mem:(vm.Kube_pack.used_mem +. overhead)
          with
          | Some m -> Float.max m.Aws.price_per_hour bought
          | None -> bought
        in
        acc +. price)
      0.0 plan.Kube_pack.vms
  end

let evaluate_user ?(standby_depth = 0) ?(standby_ep_mem = default_ep_mem)
    user =
  let base = Kube_pack.pack_user user in
  Kube_pack.check_invariants base;
  let kube_cost = Kube_pack.plan_cost base in
  let kube_vms = Kube_pack.plan_vm_count base in
  let plan, _stats = Hostlo_pack.improve_copy base in
  let hostlo_cost = Kube_pack.plan_cost plan in
  let hostlo_standby_cost =
    standby_priced_cost ~depth:standby_depth ~ep_mem:standby_ep_mem plan
  in
  let split_pods =
    Hashtbl.fold
      (fun _ n acc -> if n > 1 then acc + 1 else acc)
      (split_pod_counts plan) 0
  in
  let saving = Float.max 0.0 (kube_cost -. hostlo_cost) in
  { user_id = user.Nest_traces.Trace.u_id; kube_cost; hostlo_cost;
    hostlo_standby_cost; split_pods; kube_vms;
    hostlo_vms = Kube_pack.plan_vm_count plan; saving;
    rel_saving = (if kube_cost > 0.0 then saving /. kube_cost else 0.0) }

let evaluate ?standby_depth ?standby_ep_mem users =
  List.map (evaluate_user ?standby_depth ?standby_ep_mem) users

let summarize outcomes =
  let users = List.length outcomes in
  let savers = List.filter (fun o -> o.saving > 1e-9) outcomes in
  let users_with_savings = List.length savers in
  let over5 = List.filter (fun o -> o.rel_saving > 0.05) savers in
  let max_rel =
    List.fold_left (fun a o -> Float.max a o.rel_saving) 0.0 outcomes
  in
  let best_abs =
    List.fold_left
      (fun acc o ->
        match acc with
        | Some b when b.saving >= o.saving -> acc
        | _ -> Some o)
      None outcomes
  in
  let max_abs, max_abs_rel =
    match best_abs with
    | Some o -> (o.saving, o.rel_saving)
    | None -> (0.0, 0.0)
  in
  { users;
    users_with_savings;
    frac_with_savings =
      (if users = 0 then 0.0
       else float_of_int users_with_savings /. float_of_int users);
    frac_savers_over_5pct =
      (if users_with_savings = 0 then 0.0
       else float_of_int (List.length over5) /. float_of_int users_with_savings);
    max_rel_saving = max_rel;
    max_abs_saving = max_abs;
    max_abs_saving_rel = max_abs_rel;
    total_kube_cost = List.fold_left (fun a o -> a +. o.kube_cost) 0.0 outcomes;
    total_hostlo_cost =
      List.fold_left (fun a o -> a +. o.hostlo_cost) 0.0 outcomes;
    total_standby_cost =
      List.fold_left (fun a o -> a +. o.hostlo_standby_cost) 0.0 outcomes;
    total_split_pods =
      List.fold_left (fun a o -> a + o.split_pods) 0 outcomes }

let savings_histogram outcomes ~bins =
  let savers = List.filter (fun o -> o.saving > 1e-9) outcomes in
  let max_rel =
    List.fold_left (fun a o -> Float.max a o.rel_saving) 0.0 savers
  in
  if savers = [] || max_rel <= 0.0 then []
  else begin
    let h = Nest_sim.Stats.Histogram.create ~lo:0.0 ~hi:max_rel ~bins in
    List.iter (fun o -> Nest_sim.Stats.Histogram.add h o.rel_saving) savers;
    Array.to_list (Nest_sim.Stats.Histogram.counts h)
    |> List.mapi (fun i c ->
           let lo, hi = Nest_sim.Stats.Histogram.bin_bounds h i in
           (lo, hi, c))
  end

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>users: %d@,\
     users with savings: %d (%.1f%%)@,\
     savers above 5%%: %.1f%%@,\
     max relative saving: %.1f%%@,\
     max absolute saving: %.2f $/h (a %.1f%% reduction)@,\
     fleet cost: %.2f -> %.2f $/h@]"
    s.users s.users_with_savings
    (100.0 *. s.frac_with_savings)
    (100.0 *. s.frac_savers_over_5pct)
    (100.0 *. s.max_rel_saving)
    s.max_abs_saving
    (100.0 *. s.max_abs_saving_rel)
    s.total_kube_cost s.total_hostlo_cost;
  if s.total_standby_cost > s.total_hostlo_cost then
    Format.fprintf fmt
      "@,standby pool: %.2f $/h over %d split pods (+%.3f%% of the \
       Hostlo fleet cost)"
      (s.total_standby_cost -. s.total_hostlo_cost)
      s.total_split_pods
      (if s.total_hostlo_cost > 0.0 then
         100.0
         *. (s.total_standby_cost -. s.total_hostlo_cost)
         /. s.total_hostlo_cost
       else 0.0)
