(** The node agent (kubelet): the orchestrator's hands inside each VM.

    In the paper's protocols (§3.1 step 4, §4.1 step 4) the "VM agent"
    waits for the hot-plugged NIC the VMM announced — identified by the
    MAC the orchestrator forwarded — and configures it inside the pod's
    namespace.  [configure_nic] is exactly that operation; the BrFusion
    and Hostlo CNI plugins and the boot-time experiment all go through
    it.  The agent also keeps the node-status bookkeeping an orchestrator
    polls. *)

open Nest_net

type t

val create : Node.t -> t
(** One agent per node (idempotent per node — see {!of_node}). *)

val of_node : Node.t -> t
(** The node's agent, creating it on first use. *)

val node : t -> Node.t

val configure_nic :
  t ->
  netns:Stack.ns ->
  mac:Mac.t ->
  ?ip:Ipv4.t ->
  ?subnet:Ipv4.cidr ->
  ?gateway:Ipv4.t ->
  ?on_dead:(unit -> unit) ->
  k:(Dev.t -> unit) ->
  unit ->
  unit
(** Waits for the device with [mac] to become guest-visible (the udev
    moment), moves it into [netns], optionally assigns [ip]/[subnet] and
    a default route via [gateway], then hands it to [k].  [on_dead] fires
    instead of [k] if the VM dies before the device arrives, so plugins
    can release resources (an IPAM lease) reserved for the NIC. *)

val pods_configured : t -> int
(** How many NICs this agent has configured (diagnostics). *)

val hotplug_with_retry :
  t ->
  ?policy:Backoff.policy ->
  issue:(k:((Mac.t, string) result -> unit) -> unit) ->
  k:((Mac.t, string) result -> unit) ->
  unit ->
  unit
(** Issue a VMM hot-plug operation with kubelet retry semantics: on
    [Error], re-issue after {!Backoff} delays until success or policy
    exhaustion.  Retries are counted per agent and on the engine's
    [recovery.hotplug_retries] metric (plus a ["fault"] trace instant).
    With no fault plan installed the operation succeeds first try and
    this is exactly one [issue] call. *)

val hotplug_retries : t -> int

val status : t -> string
(** One-line node status (name, capacity, requested, configured pods). *)
