type t = {
  cni_name : string;
  add :
    pod_name:string ->
    node:Node.t ->
    publish:(int * int) list ->
    k:(Nest_net.Stack.ns -> unit) ->
    unit;
}

(* Process-global and therefore mutex-guarded: the parallel experiment
   harness may register/look up plugins from several domains. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let registry_mu = Mutex.create ()

let locked f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

let register t =
  locked (fun () ->
      if Hashtbl.mem registry t.cni_name then
        failwith ("Cni.register: duplicate plugin " ^ t.cni_name);
      Hashtbl.replace registry t.cni_name t)

let find name = locked (fun () -> Hashtbl.find_opt registry name)

let names () =
  locked (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
  |> List.sort compare

let reset_registry () = locked (fun () -> Hashtbl.reset registry)
