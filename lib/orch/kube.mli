(** The orchestrator control plane: node registry, scheduling, and the
    pod deployment pipeline (schedule -> CNI add -> start containers).

    Baseline Kubernetes semantics: a pod is placed whole on a single
    node (§2's "constraint of VM boundary").  Cross-VM deployment is the
    capability the core library adds on top (lib/core/Hostlo +
    Deploy). *)

type t

type deployment = {
  dep_pod : Pod.t;
  dep_node : Node.t;
  dep_ns : Nest_net.Stack.ns;
  dep_containers : Nest_container.Engine.container list;
  dep_cni : Cni.t;  (** how the pod was wired, for rescheduling *)
}

val create : Nest_sim.Engine.t -> default_cni:Cni.t -> t
val add_node : t -> Node.t -> unit
val nodes : t -> Node.t list

val deploy_pod :
  t ->
  Pod.t ->
  ?cni:Cni.t ->
  ?node:Node.t ->
  on_ready:(deployment -> unit) ->
  unit ->
  unit
(** Schedules with the most-requested policy unless [node] pins
    placement; reserves resources; builds pod networking through the CNI
    plugin; starts every container joined to the pod namespace.
    [on_ready] fires when all containers are running.
    Raises [Failure] when no node fits. *)

val delete_pod : t -> deployment -> unit
(** Stops containers and releases the reservation. *)

val deployments : t -> deployment list

val reschedule_node_failure :
  t -> node:Node.t -> on_ready:(deployment -> unit) -> int * int
(** React to [node]'s VM dying: mark it not-ready, evict its pods, and
    re-place each on a surviving node through its original CNI plugin.
    Returns [(rescheduled, lost)] where lost pods fit on no ready node.
    [on_ready] fires per re-placed pod once its containers restart. *)
