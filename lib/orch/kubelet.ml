open Nest_net

type t = { kl_node : Node.t; mutable configured : int }

(* Process-global: concurrent experiment cells each deploy onto their
   own nodes, but they share this table, so guard it.  Keyed by the node
   value itself (compared physically) — node *names* repeat across
   testbeds ("node0" everywhere), and under a parallel harness two live
   testbeds can hold same-named nodes at once. *)
let registry : t list ref = ref []
let registry_mu = Mutex.create ()

let locked f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

let create_unlocked node =
  let t = { kl_node = node; configured = 0 } in
  registry := t :: !registry;
  t

let create node = locked (fun () -> create_unlocked node)

let of_node node =
  locked (fun () ->
      match List.find_opt (fun t -> t.kl_node == node) !registry with
      | Some t -> t
      | None -> create_unlocked node)

let node t = t.kl_node

let configure_nic t ~netns ~mac ?ip ?subnet ?gateway ~k () =
  Nest_virt.Vm.wait_nic (Node.vm t.kl_node) ~mac ~k:(fun dev ->
      Stack.attach netns dev;
      (match (ip, subnet) with
      | Some ip, Some subnet -> Stack.add_addr netns dev ip subnet
      | Some ip, None ->
        Stack.add_addr netns dev ip
          (Ipv4.cidr_of_string (Ipv4.to_string ip ^ "/32"))
      | None, _ -> ());
      (match gateway with
      | Some gw -> Route.add_default (Stack.routes netns) ~gateway:gw ~dev ()
      | None -> ());
      t.configured <- t.configured + 1;
      k dev)

let pods_configured t = t.configured

let status t =
  Printf.sprintf "%s: cpu %.1f/%.1f mem %.1f/%.1f, %d NIC(s) configured"
    (Node.name t.kl_node)
    (Node.cpu_requested t.kl_node)
    (Node.cpu_capacity t.kl_node)
    (Node.mem_requested t.kl_node)
    (Node.mem_capacity t.kl_node)
    t.configured
