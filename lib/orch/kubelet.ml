open Nest_net

type t = { kl_node : Node.t; mutable configured : int; mutable retries : int }

(* Process-global: concurrent experiment cells each deploy onto their
   own nodes, but they share this table, so guard it.  Keyed by the node
   value itself (compared physically) — node *names* repeat across
   testbeds ("node0" everywhere), and under a parallel harness two live
   testbeds can hold same-named nodes at once. *)
let registry : t list ref = ref []
let registry_mu = Mutex.create ()

let locked f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

let create_unlocked node =
  let t = { kl_node = node; configured = 0; retries = 0 } in
  registry := t :: !registry;
  t

let create node = locked (fun () -> create_unlocked node)

let of_node node =
  locked (fun () ->
      match List.find_opt (fun t -> t.kl_node == node) !registry with
      | Some t -> t
      | None -> create_unlocked node)

let node t = t.kl_node

let configure_nic t ~netns ~mac ?ip ?subnet ?gateway ?on_dead ~k () =
  Nest_virt.Vm.wait_nic (Node.vm t.kl_node) ~mac ?on_dead ~k:(fun dev ->
      Stack.attach netns dev;
      (match (ip, subnet) with
      | Some ip, Some subnet -> Stack.add_addr netns dev ip subnet
      | Some ip, None ->
        Stack.add_addr netns dev ip
          (Ipv4.cidr_of_string (Ipv4.to_string ip ^ "/32"))
      | None, _ -> ());
      (match gateway with
      | Some gw -> Route.add_default (Stack.routes netns) ~gateway:gw ~dev ()
      | None -> ());
      t.configured <- t.configured + 1;
      k dev)
    ()

let pods_configured t = t.configured
let hotplug_retries t = t.retries

(* Hot-plug with kubelet semantics: a failed or timed-out QMP round-trip
   is retried with exponential backoff instead of wedging pod setup.
   [issue] is the raw VMM operation ({!Nest_virt.Vmm.hotplug_nic_mac} or
   the Hostlo variant); each retry is counted on the agent and on the
   engine's [recovery.hotplug_retries] metric so chaos runs can report
   it.  The final failure (policy exhausted) is handed to [k] — deciding
   whether that loses the pod is the caller's business. *)
let hotplug_with_retry t ?(policy = Backoff.default)
    ~(issue : k:((Mac.t, string) result -> unit) -> unit) ~k () =
  let engine =
    Nest_virt.Host.engine (Nest_virt.Vm.host (Node.vm t.kl_node))
  in
  Backoff.retry engine policy
    ~on_retry:(fun ~attempt ~delay_ns ->
      t.retries <- t.retries + 1;
      (* Registered on first retry only: unfaulted runs must not grow a
         zero-valued row in existing metrics dumps. *)
      let metrics = Nest_sim.Engine.metrics engine in
      Nest_sim.Metrics.bump
        (Nest_sim.Metrics.counter metrics "recovery.hotplug_retries")
        ();
      (* The schedule as data (satellite of the exactly-once work): which
         attempt we are on and how long this retry sleeps, so a chaos
         report can read retry-storm intensity straight off the metrics
         ([fault.retry_attempt] vmax = deepest backoff reached,
         [fault.retry_delay_ms] total = wall time sunk into waiting). *)
      Nest_sim.Hdr.add
        (Nest_sim.Metrics.histogram metrics "fault.retry_attempt")
        (float_of_int attempt);
      Nest_sim.Hdr.add
        (Nest_sim.Metrics.histogram metrics "fault.retry_delay_ms")
        (float_of_int delay_ns /. 1e6);
      Nest_sim.Engine.trace_instant engine ~cat:"fault" ~name:"hotplug_retry"
        ~arg:(Node.name t.kl_node) ())
    (fun ~attempt:_ ~k -> issue ~k)
    ~k

let status t =
  Printf.sprintf "%s: cpu %.1f/%.1f mem %.1f/%.1f, %d NIC(s) configured"
    (Node.name t.kl_node)
    (Node.cpu_requested t.kl_node)
    (Node.cpu_capacity t.kl_node)
    (Node.mem_requested t.kl_node)
    (Node.mem_capacity t.kl_node)
    t.configured
