type t = {
  node_vm : Nest_virt.Vm.t;
  node_docker : Nest_container.Engine.t;
  cpu_cap : float;
  mem_cap : float;
  mutable cpu_req : float;
  mutable mem_req : float;
  mutable node_ready : bool;
}

let create vm =
  { node_vm = vm;
    node_docker =
      Nest_container.Engine.create vm ~name:(Nest_virt.Vm.name vm ^ ":docker");
    cpu_cap = float_of_int (Nest_virt.Vm.vcpus vm);
    mem_cap = float_of_int (Nest_virt.Vm.mem_mb vm) /. 1024.0;
    cpu_req = 0.0; mem_req = 0.0; node_ready = true }

let vm t = t.node_vm
let docker t = t.node_docker
let name t = Nest_virt.Vm.name t.node_vm
let cpu_capacity t = t.cpu_cap
let mem_capacity t = t.mem_cap
let cpu_requested t = t.cpu_req
let mem_requested t = t.mem_req

let ready t = t.node_ready
let set_ready t b = t.node_ready <- b

let epsilon = 1e-9

let fits t ~cpu ~mem =
  t.node_ready
  && t.cpu_req +. cpu <= t.cpu_cap +. epsilon
  && t.mem_req +. mem <= t.mem_cap +. epsilon

let reserve t ~cpu ~mem =
  if not (fits t ~cpu ~mem) then
    invalid_arg (Printf.sprintf "Node.reserve: overcommit on %s" (name t));
  t.cpu_req <- t.cpu_req +. cpu;
  t.mem_req <- t.mem_req +. mem

let release t ~cpu ~mem =
  t.cpu_req <- Float.max 0.0 (t.cpu_req -. cpu);
  t.mem_req <- Float.max 0.0 (t.mem_req -. mem)

let requested_fraction t =
  ((t.cpu_req /. t.cpu_cap) +. (t.mem_req /. t.mem_cap)) /. 2.0
