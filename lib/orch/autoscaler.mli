(** Burn-driven per-node pod autoscaling.

    A controller owns one integer — the desired replica count of one
    service on one node — and re-evaluates it every [window] of
    simulated time against a live SLO burn reading (typically
    {!Nest_sim.Slo.worst_last_burn} of a server-side monitor).  The
    policy is deliberately asymmetric, like production autoscalers:

    - {e scale-up is proportional and eager}: at burn ≥ [up], jump
      toward [ceil (desired × burn)] (clamped to [max]) — a 4× burn
      wants 4× the capacity {e now}, not four windows from now;
    - {e scale-down is one step and reluctant}: at burn ≤ [down],
      shrink by one replica, and only after [down_cooldown] of quiet;
    - between the thresholds the controller {e holds} — the hysteresis
      band that keeps a load hovering near the threshold from flapping
      pods up and down every window.

    Each change invokes [apply desired] inside the controller's own
    tick event, so the receiving pool (e.g.
    {!Nest_workloads.Netperf.udp_echo_pool}) mutates only on the
    owning shard's engine clock.  The controller never touches shared
    orchestrator state at runtime — its [max] is planned statically
    (see {!Autopilot.replica_headroom} in [nest_core]) precisely so
    that scaling cannot race the churn replay on another shard and
    break digest byte-identity (DESIGN.md §5e). *)

type t

val create :
  engine:Nest_sim.Engine.t ->
  ?label:string ->
  min:int ->
  max:int ->
  ?up:float ->
  ?down:float ->
  ?up_cooldown:Nest_sim.Time.ns ->
  ?down_cooldown:Nest_sim.Time.ns ->
  ?window:Nest_sim.Time.ns ->
  burn_source:(unit -> float) ->
  apply:(int -> unit) ->
  start:Nest_sim.Time.ns ->
  stop:Nest_sim.Time.ns ->
  unit ->
  t
(** Arms the evaluation ticks from [start + window] up to [stop] (they
    must not outlive the workload and wedge a draining run).  Initial
    desired count is [min]; [apply] is {e not} called for it — size the
    pool to [min] at setup.  Defaults: [up] 1.0 (the whole error budget
    is burning), [down] 0.25, [up_cooldown] one window, [down_cooldown]
    four windows, [window] 100 ms.  Raises [Invalid_argument] on
    nonsense bounds ([min < 1], [max < min], [down >= up], non-positive
    windows or cooldowns). *)

val desired : t -> int
(** Current desired replica count. *)

val transitions : t -> int
(** Number of desired-count changes — the no-flap test's counter. *)

val events : t -> (Nest_sim.Time.ns * int) list
(** Every change as [(when, new_desired)], in time order — digest
    material for determinism checks. *)
