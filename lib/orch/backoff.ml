(* Deterministic exponential backoff.

   Kubernetes retries failed pod-setup steps (image pulls, CNI ADD,
   device attach) with an exponentially growing delay.  This policy is
   deliberately jitter-free: fault-injection runs must produce the same
   retry timeline for the same seed, and the simulator has no thundering
   herd to break up. *)

type policy = {
  base_ns : Nest_sim.Time.ns;
  multiplier : float;
  max_delay_ns : Nest_sim.Time.ns;
  max_attempts : int;
}

let default =
  {
    (* 100 ms, x2 up to 3.2 s, 6 tries — kubelet-flavoured but scaled to
       hot-plug RTTs (tens of ms) rather than image pulls. *)
    base_ns = 100_000_000;
    multiplier = 2.0;
    max_delay_ns = 3_200_000_000;
    max_attempts = 6;
  }

(* Delay scheduled after the [attempt]-th failure (1-based). *)
let delay_ns p ~attempt =
  let a = max 1 attempt in
  let d =
    float_of_int p.base_ns *. (p.multiplier ** float_of_int (a - 1))
  in
  min p.max_delay_ns (int_of_float d)

(* The whole retry schedule as data: after the [a]-th failure the caller
   waits the paired delay (no pair for the final attempt — exhaustion is
   reported, not slept on).  Chaos reporting uses this to turn "retries
   happened" into retry-storm intensity: how much wall time the policy
   sinks into waiting at a given fault rate. *)
let schedule p =
  List.init (max 0 (p.max_attempts - 1)) (fun i ->
      let attempt = i + 1 in
      (attempt, delay_ns p ~attempt))

let total_delay_ns p =
  List.fold_left (fun acc (_, d) -> acc + d) 0 (schedule p)

(* Run [op] until it succeeds or the policy is exhausted.  [op] receives
   the 1-based attempt number and must call its continuation exactly
   once; [on_retry] (diagnostics, metrics) fires before each re-issue. *)
let retry engine p ?(on_retry = fun ~attempt:_ ~delay_ns:_ -> ()) op ~k =
  let rec go attempt =
    op ~attempt ~k:(fun r ->
        match r with
        | Ok _ -> k r
        | Error _ when attempt >= p.max_attempts -> k r
        | Error _ ->
          let delay = delay_ns p ~attempt in
          on_retry ~attempt ~delay_ns:delay;
          Nest_sim.Engine.schedule engine ~delay (fun () -> go (attempt + 1)))
  in
  go 1
