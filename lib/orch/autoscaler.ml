(* Per-node burn-driven replica controller.  See autoscaler.mli.

   All mutation happens inside the controller's own tick events; the
   burn source is read there and nowhere else.  Cooldowns are kept on
   the engine clock, so the whole trajectory — every (when, desired)
   pair — is a pure function of the shard's deterministic event
   order. *)

module Engine = Nest_sim.Engine
module Time = Nest_sim.Time

type t = {
  as_engine : Engine.t;
  as_label : string;
  as_min : int;
  as_max : int;
  as_up : float;
  as_down : float;
  as_up_cd : Time.ns;
  as_down_cd : Time.ns;
  as_burn : unit -> float;
  as_apply : int -> unit;
  mutable as_desired : int;
  mutable as_last_up : Time.ns;    (* when we last scaled up *)
  mutable as_last_down : Time.ns;  (* when we last scaled down *)
  mutable as_transitions : int;
  mutable as_events : (Time.ns * int) list;  (* newest first *)
}

let set t next =
  if next <> t.as_desired then begin
    t.as_desired <- next;
    t.as_transitions <- t.as_transitions + 1;
    t.as_events <- (Engine.now t.as_engine, next) :: t.as_events;
    t.as_apply next
  end

let tick t () =
  let now = Engine.now t.as_engine in
  let b = t.as_burn () in
  if b >= t.as_up then begin
    if now - t.as_last_up >= t.as_up_cd && t.as_desired < t.as_max then begin
      (* Proportional jump: a burn of 3 wants roughly 3x the capacity.
         Always at least one step, never past the planned headroom. *)
      let want =
        int_of_float (Float.ceil (float_of_int t.as_desired *. b))
      in
      let next = Stdlib.min t.as_max (Stdlib.max (t.as_desired + 1) want) in
      t.as_last_up <- now;
      set t next
    end
  end
  else if b <= t.as_down then begin
    if
      now - t.as_last_down >= t.as_down_cd
      && now - t.as_last_up >= t.as_down_cd
      && t.as_desired > t.as_min
    then begin
      t.as_last_down <- now;
      set t (t.as_desired - 1)
    end
  end
(* between down and up: hold — the hysteresis band *)

let rec arm t ~window ~stop ~at =
  if at <= stop then
    Engine.schedule_at t.as_engine ~label:(t.as_label ^ ":tick") ~at
      (fun () ->
        tick t ();
        arm t ~window ~stop ~at:(at + window))

let create ~engine ?(label = "autoscaler") ~min ~max ?(up = 1.0)
    ?(down = 0.25) ?up_cooldown ?down_cooldown ?(window = Time.ms 100)
    ~burn_source ~apply ~start ~stop () =
  if min < 1 then invalid_arg "Autoscaler: min must be >= 1";
  if max < min then invalid_arg "Autoscaler: max must be >= min";
  if not (down < up) then invalid_arg "Autoscaler: needs down < up";
  if window <= 0 then invalid_arg "Autoscaler: window must be > 0";
  let up_cd = match up_cooldown with Some c -> c | None -> window in
  let down_cd = match down_cooldown with Some c -> c | None -> 4 * window in
  if up_cd <= 0 || down_cd <= 0 then
    invalid_arg "Autoscaler: cooldowns must be > 0";
  let t =
    {
      as_engine = engine;
      as_label = label;
      as_min = min;
      as_max = max;
      as_up = up;
      as_down = down;
      as_up_cd = up_cd;
      as_down_cd = down_cd;
      as_burn = burn_source;
      as_apply = apply;
      as_desired = min;
      (* Start both cooldowns satisfied at [start] so the first tick may
         already act; negative sentinels would break on start = 0. *)
      as_last_up = start - up_cd;
      as_last_down = start - down_cd;
      as_transitions = 0;
      as_events = [];
    }
  in
  arm t ~window ~stop ~at:(start + window);
  t

let desired t = t.as_desired
let transitions t = t.as_transitions
let events t = List.rev t.as_events
