type deployment = {
  dep_pod : Pod.t;
  dep_node : Node.t;
  dep_ns : Nest_net.Stack.ns;
  dep_containers : Nest_container.Engine.container list;
  dep_cni : Cni.t;  (* how the pod was wired, for rescheduling *)
}

type t = {
  engine : Nest_sim.Engine.t;
  default_cni : Cni.t;
  mutable node_list : Node.t list;
  mutable deployment_list : deployment list;
}

let create engine ~default_cni =
  { engine; default_cni; node_list = []; deployment_list = [] }

let add_node t n = t.node_list <- t.node_list @ [ n ]
let nodes t = t.node_list

let deploy_pod t pod ?cni ?node ~on_ready () =
  let cni = Option.value cni ~default:t.default_cni in
  let cpu = Pod.cpu_total pod and mem = Pod.mem_total pod in
  let node =
    match node with
    | Some n -> n
    | None -> (
      match Scheduler.most_requested t.node_list ~cpu ~mem with
      | Some n -> n
      | None ->
        failwith ("Kube.deploy_pod: no node fits " ^ pod.Pod.pod_name))
  in
  Node.reserve node ~cpu ~mem;
  let publish =
    List.concat_map (fun c -> c.Pod.ports) pod.Pod.containers
  in
  cni.Cni.add ~pod_name:pod.Pod.pod_name ~node ~publish ~k:(fun pod_ns ->
      let remaining = ref (List.length pod.Pod.containers) in
      let started = ref [] in
      List.iter
        (fun (cs : Pod.container_spec) ->
          let c =
            Nest_container.Engine.run (Node.docker node)
              ~name:(pod.Pod.pod_name ^ "/" ^ cs.Pod.cs_name)
              ~entity:cs.Pod.cs_name ~image:cs.Pod.image ~netns:pod_ns
              ~net_setup:Nest_container.Engine.instant_net_setup
              ~cpu_req:cs.Pod.cpu ~mem_req:cs.Pod.mem
              ~on_ready:(fun _ ->
                decr remaining;
                if !remaining = 0 then begin
                  let dep =
                    { dep_pod = pod; dep_node = node; dep_ns = pod_ns;
                      dep_containers = List.rev !started; dep_cni = cni }
                  in
                  t.deployment_list <- t.deployment_list @ [ dep ];
                  on_ready dep
                end)
              ()
          in
          started := c :: !started)
        pod.Pod.containers)

let delete_pod t dep =
  List.iter
    (fun c -> Nest_container.Engine.stop (Node.docker dep.dep_node) c)
    dep.dep_containers;
  Node.release dep.dep_node ~cpu:(Pod.cpu_total dep.dep_pod)
    ~mem:(Pod.mem_total dep.dep_pod);
  t.deployment_list <- List.filter (fun d -> d != dep) t.deployment_list

let deployments t = t.deployment_list

(* A node's VM died.  Kubernetes semantics, compressed: the node goes
   NotReady, its pods are evicted, and the scheduler re-places each one
   on a surviving node — through the same CNI plugin it was originally
   wired with, so a BrFusion pod gets a fresh hot-plugged NIC on its new
   node.  Pods that fit nowhere are lost (counted, reported); they are
   NOT returned to the deployment list.  No resources are released on
   the dead node: they died with the VM. *)
let reschedule_node_failure t ~node ~on_ready =
  Node.set_ready node false;
  let dead, rest =
    List.partition (fun d -> d.dep_node == node) t.deployment_list
  in
  t.deployment_list <- rest;
  let rescheduled = ref 0 and lost = ref 0 in
  List.iter
    (fun d ->
      let pod = d.dep_pod in
      let cpu = Pod.cpu_total pod and mem = Pod.mem_total pod in
      match Scheduler.most_requested t.node_list ~cpu ~mem with
      | None -> incr lost
      | Some n ->
        incr rescheduled;
        deploy_pod t pod ~cni:d.dep_cni ~node:n ~on_ready ())
    dead;
  (!rescheduled, !lost)
