(** Deterministic exponential backoff for orchestrator retries.

    No jitter by design: a seeded fault-injection run must yield the
    same retry timeline every time, including under [--jobs N]. *)

type policy = {
  base_ns : Nest_sim.Time.ns;
  multiplier : float;
  max_delay_ns : Nest_sim.Time.ns;
  max_attempts : int;
}

val default : policy
(** 100 ms base, doubling, capped at 3.2 s, 6 attempts. *)

val delay_ns : policy -> attempt:int -> Nest_sim.Time.ns
(** Delay scheduled after the [attempt]-th failure (1-based),
    [base * multiplier^(attempt-1)] capped at [max_delay_ns]. *)

val schedule : policy -> (int * Nest_sim.Time.ns) list
(** The retry schedule as data: [(attempt, delay after that attempt
    fails)] for every attempt that has a retry behind it (so
    [max_attempts - 1] pairs — exhaustion of the last attempt is reported
    to the caller, not slept on).  Lets chaos reporting quantify
    retry-storm intensity without re-deriving the policy arithmetic. *)

val total_delay_ns : policy -> Nest_sim.Time.ns
(** Sum of {!schedule} delays: the wall time a caller sinks into waiting
    when the policy runs to exhaustion. *)

val retry :
  Nest_sim.Engine.t ->
  policy ->
  ?on_retry:(attempt:int -> delay_ns:Nest_sim.Time.ns -> unit) ->
  (attempt:int -> k:(('a, string) result -> unit) -> unit) ->
  k:(('a, string) result -> unit) ->
  unit
(** [retry engine p op ~k] issues [op ~attempt:1] and re-issues after
    each [Error] with the policy's delay until success or
    [max_attempts], then passes the final result to [k].  [op] must
    call its continuation exactly once per issue. *)
