(** Deterministic exponential backoff for orchestrator retries.

    No jitter by design: a seeded fault-injection run must yield the
    same retry timeline every time, including under [--jobs N]. *)

type policy = {
  base_ns : Nest_sim.Time.ns;
  multiplier : float;
  max_delay_ns : Nest_sim.Time.ns;
  max_attempts : int;
}

val default : policy
(** 100 ms base, doubling, capped at 3.2 s, 6 attempts. *)

val delay_ns : policy -> attempt:int -> Nest_sim.Time.ns
(** Delay scheduled after the [attempt]-th failure (1-based),
    [base * multiplier^(attempt-1)] capped at [max_delay_ns]. *)

val retry :
  Nest_sim.Engine.t ->
  policy ->
  ?on_retry:(attempt:int -> delay_ns:Nest_sim.Time.ns -> unit) ->
  (attempt:int -> k:(('a, string) result -> unit) -> unit) ->
  k:(('a, string) result -> unit) ->
  unit
(** [retry engine p op ~k] issues [op ~attempt:1] and re-issues after
    each [Error] with the policy's delay until success or
    [max_attempts], then passes the final result to [k].  [op] must
    call its continuation exactly once per issue. *)
