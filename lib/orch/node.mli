(** A cluster node: one VM running a kubelet agent and a container
    engine.  Tracks requested resources for the scheduler. *)

type t

val create : Nest_virt.Vm.t -> t
(** Capacity is the VM's vCPU count and memory. *)

val vm : t -> Nest_virt.Vm.t
val docker : t -> Nest_container.Engine.t
val name : t -> string

val cpu_capacity : t -> float
val mem_capacity : t -> float
val cpu_requested : t -> float
val mem_requested : t -> float

val ready : t -> bool
(** Node condition, [true] at creation.  The chaos controller flips it
    when the backing VM crashes or comes back. *)

val set_ready : t -> bool -> unit

val fits : t -> cpu:float -> mem:float -> bool
(** False for not-ready nodes, so the scheduler skips them. *)

val reserve : t -> cpu:float -> mem:float -> unit
(** Raises [Invalid_argument] when it would overcommit. *)

val release : t -> cpu:float -> mem:float -> unit

val requested_fraction : t -> float
(** Mean of cpu and memory requested fractions — the score of
    Kubernetes's "most requested" policy. *)
