open Nest_net

type member = { m_node : Node.t; m_vtep : Vxlan.t; m_bridge : Bridge.t }

type t = {
  ov_name : string;
  ov_vni : int;
  subnet : Ipv4.cidr;
  ipam : Ipam.t;
  mutable member_list : member list;
  mutable pod_addrs : (Stack.ns * Ipv4.t) list;
}

let create ~name ~vni ~subnet =
  { ov_name = name; ov_vni = vni; subnet; ipam = Ipam.create subnet;
    member_list = []; pod_addrs = [] }

let vm_primary_ip vm =
  let lo = Ipv4.cidr_of_string "127.0.0.0/8" in
  match
    List.find_opt
      (fun (_, ip, _) -> not (Ipv4.in_subnet lo ip))
      (Stack.addrs (Nest_virt.Vm.ns vm))
  with
  | Some (_, ip, _) -> ip
  | None -> failwith "Cni_overlay: VM has no underlay address"

let ensure_member t node =
  match List.find_opt (fun m -> m.m_node == node) t.member_list with
  | Some m -> m
  | None ->
    let vm = Node.vm node in
    let host = Nest_virt.Vm.host vm in
    let cm = Nest_virt.Host.cost_model host in
    let soft = Nest_virt.Vm.soft_exec vm in
    let vns = Nest_virt.Vm.ns vm in
    let _, bridge_hop = Nest_virt.Vm.guest_hops vm ~veth:() in
    let br =
      Bridge.create (Nest_virt.Host.engine host)
        ~name:(Nest_virt.Vm.name vm ^ ":" ^ t.ov_name ^ "-br")
        ~hop:bridge_hop ~self_mac:(Nest_virt.Host.fresh_mac host) ()
    in
    let vtep =
      Vxlan.create vns
        ~name:(Nest_virt.Vm.name vm ^ ":" ^ t.ov_name)
        ~vni:t.ov_vni ~local:(vm_primary_ip vm)
        ~encap_hop:
          (Hop.make soft ~fixed_ns:cm.Nest_virt.Cost_model.vxlan_encap_fixed_ns
             ~per_byte_ns:cm.Nest_virt.Cost_model.vxlan_encap_per_byte_ns)
        ~decap_hop:
          (Hop.make soft ~fixed_ns:cm.Nest_virt.Cost_model.vxlan_decap_fixed_ns
             ~per_byte_ns:cm.Nest_virt.Cost_model.vxlan_decap_per_byte_ns)
        ()
    in
    Bridge.attach br (Vxlan.dev vtep);
    let m = { m_node = node; m_vtep = vtep; m_bridge = br } in
    (* Drop members whose VM has died before peering: a replacement VM
       reuses the dead one's underlay address, and peering the joining
       VTEP against the stale entry would install it as its own remote —
       every reflected self-copy then re-enters the overlay bridge on the
       VTEP port and poisons its MAC learning. *)
    let live, dead =
      List.partition
        (fun m' -> Nest_virt.Vm.alive (Node.vm m'.m_node))
        t.member_list
    in
    (* Unpeer the dead members from the survivors too: their flood-list
       and FDB entries (and any composed encap verdicts resolving through
       them) would otherwise keep pointing at the dead VTEP until the
       replacement re-announced the address. *)
    List.iter
      (fun d ->
        let dead_ip = vm_primary_ip (Node.vm d.m_node) in
        List.iter (fun m' -> Vxlan.remove_remote m'.m_vtep dead_ip) live)
      dead;
    t.member_list <- live;
    (* Full-mesh peering with surviving members. *)
    let my_ip = vm_primary_ip vm in
    List.iter
      (fun m' ->
        let peer_ip = vm_primary_ip (Node.vm m'.m_node) in
        if not (Ipv4.equal peer_ip my_ip) then begin
          Vxlan.add_remote m.m_vtep peer_ip;
          Vxlan.add_remote m'.m_vtep my_ip
        end)
      t.member_list;
    t.member_list <- t.member_list @ [ m ];
    m

let plugin t =
  let add ~pod_name ~node ~publish:_ ~k =
    let m = ensure_member t node in
    let vm = Node.vm node in
    let host = Nest_virt.Vm.host vm in
    let netns = Nest_virt.Vm.new_netns vm ~name:pod_name () in
    let veth_hop, _ = Nest_virt.Vm.guest_hops vm ~veth:() in
    let c_dev, br_dev =
      Veth.pair
        ~a_name:(pod_name ^ ":eth0")
        ~a_mac:(Nest_virt.Host.fresh_mac host)
        ~b_name:("veth-" ^ pod_name)
        ~b_mac:(Nest_virt.Host.fresh_mac host)
        ~ab_hop:veth_hop ~ba_hop:veth_hop ()
    in
    (* Overlay MTU leaves room for the VXLAN encapsulation. *)
    c_dev.Dev.mtu <- 1450;
    br_dev.Dev.mtu <- 1450;
    let ip = Ipam.alloc t.ipam in
    Stack.attach netns c_dev;
    Stack.add_addr netns c_dev ip t.subnet;
    Bridge.attach m.m_bridge br_dev;
    t.pod_addrs <- (netns, ip) :: t.pod_addrs;
    k netns
  in
  { Cni.cni_name = "overlay:" ^ t.ov_name; add }

let members t = List.map (fun m -> m.m_node) t.member_list

let pod_ip t ns =
  List.find_map
    (fun (n, ip) -> if n == ns then Some ip else None)
    t.pod_addrs
