(** VXLAN tunnel endpoint (VTEP) — the mechanism under Docker's Overlay
    networks, the paper's only pre-existing option for cross-node pod
    traffic (§5.3, the "Overlay" baseline).

    The VTEP presents a device to attach to an overlay bridge.  Frames
    transmitted on it are encapsulated (inner Ethernet + 8-byte VXLAN
    header) into UDP datagrams sent through the underlay namespace's
    stack; datagrams received on the VTEP's UDP port are decapsulated and
    delivered back through the device.  Both directions pay dedicated
    encap/decap hops in the underlay kernel — the overlay's CPU tax.

    Egress composes a verdict per inner flow (ONCache-style): the inner
    MAC/flow tuple maps to the resolved target set as pinned underlay
    flows, so a steady-state overlay packet costs one lookup instead of
    inner-lookup + encap + outer-lookup.  Entries are invalidated by an
    FDB/flood-list generation (bumped by {!add_remote}, {!add_fdb},
    {!remove_remote}); the underlay half revalidates against the
    underlay namespace's flow-cache stamp at every send, so route/ARP/
    netfilter changes under the tunnel are picked up exactly as on the
    cold path.  Simulated time and frame bytes are identical with the
    cache on or off; hit/miss counts are exported as
    [fc.overlay.<name>.hits]/[.misses]. *)

type t

type Payload.app_msg += Vxlan_encap of Frame.t

val create :
  Stack.ns ->
  name:string ->
  vni:int ->
  local:Ipv4.t ->
  ?udp_port:int ->
  encap_hop:Hop.t ->
  decap_hop:Hop.t ->
  unit ->
  t
(** [udp_port] defaults to 4789.  Binds the VTEP socket in the underlay
    namespace immediately. *)

val dev : t -> Dev.t
(** Overlay-side device (MTU 1450); enslave it to the overlay bridge. *)

val vni : t -> int

val add_remote : t -> Ipv4.t -> unit
(** Adds a peer VTEP to the flood list (broadcast / unknown-unicast). *)

val add_fdb : t -> Mac.t -> Ipv4.t -> unit
(** Pins a unicast inner MAC to a peer VTEP. *)

val remove_remote : t -> Ipv4.t -> unit
(** Drops a peer VTEP: removes it from the flood list, expires every FDB
    entry pointing at it, and invalidates composed verdicts that
    resolved through it.  Called by the overlay CNI when a member node
    is pruned, so failover cannot keep encapsulating toward a dead
    VTEP. *)

val compose_stats : t -> int * int
(** [(hits, misses)] of the composed egress cache (also exported as
    [fc.overlay.<name>.hits]/[.misses] counters). *)

val encapsulated : t -> int
val decapsulated : t -> int
