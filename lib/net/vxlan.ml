type Payload.app_msg += Vxlan_encap of Frame.t

let vxlan_header_bytes = 8
let default_port = 4789
let overlay_mtu = 1450

type t = {
  vtep_name : string;
  vni : int;
  underlay : Stack.ns;
  udp_port : int;
  sock : Stack.Udp.sock;
  overlay_dev : Dev.t;
  encap_hop : Hop.t;
  decap_hop : Hop.t;
  fdb : (Mac.t, Ipv4.t) Hashtbl.t;
  mutable remotes : Ipv4.t list;
  mutable encapsulated : int;
  mutable decapsulated : int;
  encap_ctr : Nest_sim.Metrics.counter;
  decap_ctr : Nest_sim.Metrics.counter;
}

let decap t (payload : Payload.t) =
  match payload.Payload.msg with
  | Some (Vxlan_encap inner) ->
    t.decapsulated <- t.decapsulated + 1;
    Nest_sim.Metrics.bump t.decap_ctr ();
    Frame.record_hop inner (t.vtep_name ^ ":decap");
    Nest_sim.Engine.trace_instant (Stack.engine t.underlay) ~cat:"hop"
      ~name:(t.vtep_name ^ ":decap") ();
    Hop.service_prov ?prov:(Frame.prov inner) t.decap_hop
      ~bytes:(Frame.len inner) (fun () -> Dev.deliver t.overlay_dev inner)
  | Some _ | None -> ()

let encap t (inner : Frame.t) =
  let targets =
    if Frame.is_broadcast inner then t.remotes
    else
      match Hashtbl.find_opt t.fdb inner.Frame.dst with
      | Some remote -> [ remote ]
      | None -> t.remotes
  in
  if targets <> [] then begin
    Nest_sim.Metrics.bump t.encap_ctr ();
    Frame.record_hop inner (t.vtep_name ^ ":encap");
    Nest_sim.Engine.trace_instant (Stack.engine t.underlay) ~cat:"hop"
      ~name:(t.vtep_name ^ ":encap") ();
    let payload =
      Payload.make ~size:(Frame.len inner + vxlan_header_bytes)
        (Vxlan_encap inner)
    in
    let single = match targets with [ _ ] -> true | _ -> false in
    Hop.service_prov ?prov:(Frame.prov inner) t.encap_hop
      ~bytes:(Frame.len inner) (fun () ->
        List.iter
          (fun remote ->
            t.encapsulated <- t.encapsulated + 1;
            (* Thread the inner frame's provenance onto the outer
               datagram so underlay hops attribute to the same record;
               multicast replication branches it per remote. *)
            let prov =
              match Frame.prov inner with
              | Some p when not single -> Some (Nest_sim.Provenance.branch p)
              | p -> p
            in
            Stack.Udp.sendto ?prov t.sock ~dst:remote ~dst_port:t.udp_port
              payload)
          targets)
  end

let create underlay ~name ~vni ~local ?(udp_port = default_port) ~encap_hop
    ~decap_hop () =
  ignore local;
  Hop.set_name encap_hop (name ^ ":encap");
  Hop.set_name decap_hop (name ^ ":decap");
  let overlay_dev =
    Dev.create ~mtu:overlay_mtu ~name:(name ^ ".vtep")
      ~mac:(Mac.of_int (0x0242000000 lor (vni land 0xffffff)))
      ()
  in
  let rec t =
    lazy
      { vtep_name = name; vni; underlay; udp_port;
        sock =
          Stack.Udp.bind underlay ~port:udp_port ~kernel:true
            (fun _ ~src:_ payload -> decap (Lazy.force t) payload);
        overlay_dev; encap_hop; decap_hop; fdb = Hashtbl.create 16;
        remotes = []; encapsulated = 0; decapsulated = 0;
        encap_ctr =
          Nest_sim.Metrics.counter
            (Nest_sim.Engine.metrics (Stack.engine underlay))
            ("hop." ^ name ^ ".encap");
        decap_ctr =
          Nest_sim.Metrics.counter
            (Nest_sim.Engine.metrics (Stack.engine underlay))
            ("hop." ^ name ^ ".decap") }
  in
  let t = Lazy.force t in
  Dev.set_tx overlay_dev (fun frame -> encap t frame);
  t

let dev t = t.overlay_dev
let vni t = t.vni
let add_remote t ip = if not (List.mem ip t.remotes) then t.remotes <- t.remotes @ [ ip ]
let add_fdb t mac ip = Hashtbl.replace t.fdb mac ip
let encapsulated t = t.encapsulated
let decapsulated t = t.decapsulated
