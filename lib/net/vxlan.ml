type Payload.app_msg += Vxlan_encap of Frame.t

let vxlan_header_bytes = 8
let default_port = 4789
let overlay_mtu = 1450

(* Composed-verdict entry: the resolved target set for one inner flow,
   valid while the FDB/flood configuration is unchanged.  The underlay
   half of the verdict lives in the [Stack.Udp.flow] handles themselves
   (stamp-validated at each send), so one entry covers the whole
   inner-lookup + encap + outer-lookup traversal. *)
type entry = { e_gen : int; e_flows : Stack.Udp.flow list }

type t = {
  vtep_name : string;
  vni : int;
  underlay : Stack.ns;
  udp_port : int;
  sock : Stack.Udp.sock;
  overlay_dev : Dev.t;
  encap_hop : Hop.t;
  decap_hop : Hop.t;
  fdb : (Mac.t, Ipv4.t) Hashtbl.t;
  mutable remotes : Ipv4.t list;
  (* Bumped on any FDB or flood-list change (including member pruning on
     failover) — invalidates every composed entry at once. *)
  mutable fdb_gen : int;
  (* One pinned underlay flow per peer VTEP, shared by cold and warm
     paths so both produce identical outer datagrams. *)
  flows : (Ipv4.t, Stack.Udp.flow) Hashtbl.t;
  ecache : (Mac.t * Conntrack.flow, entry) Hashtbl.t;
  mutable compose_hits : int;
  mutable compose_misses : int;
  mutable encapsulated : int;
  mutable decapsulated : int;
  encap_ctr : Nest_sim.Metrics.counter;
  decap_ctr : Nest_sim.Metrics.counter;
  ov_hit_ctr : Nest_sim.Metrics.counter;
  ov_miss_ctr : Nest_sim.Metrics.counter;
}

let decap t (payload : Payload.t) =
  match payload.Payload.msg with
  | Some (Vxlan_encap inner) ->
    t.decapsulated <- t.decapsulated + 1;
    Nest_sim.Metrics.bump t.decap_ctr ();
    Frame.record_hop inner (t.vtep_name ^ ":decap");
    Nest_sim.Engine.trace_instant (Stack.engine t.underlay) ~cat:"hop"
      ~name:(t.vtep_name ^ ":decap") ();
    Hop.service_prov ?prov:(Frame.prov inner) t.decap_hop
      ~bytes:(Frame.len inner) (fun () -> Dev.deliver t.overlay_dev inner)
  | Some _ | None -> ()

let flow_to t remote =
  match Hashtbl.find_opt t.flows remote with
  | Some uf -> uf
  | None ->
    let uf = Stack.Udp.flow t.sock ~dst:remote ~dst_port:t.udp_port in
    Hashtbl.replace t.flows remote uf;
    uf

(* Slow resolution: FDB-pinned unicast or flood, as underlay flows. *)
let resolve t (inner : Frame.t) =
  let remotes =
    if Frame.is_broadcast inner then t.remotes
    else
      match Hashtbl.find_opt t.fdb inner.Frame.dst with
      | Some remote -> [ remote ]
      | None -> t.remotes
  in
  List.map (flow_to t) remotes

let flow_key (inner : Frame.t) =
  if Frame.is_broadcast inner then None
  else
    match inner.Frame.body with
    | Frame.Arp_body _ -> None
    | Frame.Ipv4_body p -> Some (inner.Frame.dst, Conntrack.flow_of_packet p)

let ecache_cap = 4096

let targets_for t inner =
  if not (Stack.flow_cache_enabled t.underlay) then resolve t inner
  else
    match flow_key inner with
    | None ->
      (* Broadcast / ARP: target set may be payload-dependent, never
         cached.  Counted as misses so the hit rate stays honest. *)
      t.compose_misses <- t.compose_misses + 1;
      Nest_sim.Metrics.bump t.ov_miss_ctr ();
      resolve t inner
    | Some key -> (
      match Hashtbl.find_opt t.ecache key with
      | Some e when e.e_gen = t.fdb_gen ->
        t.compose_hits <- t.compose_hits + 1;
        Nest_sim.Metrics.bump t.ov_hit_ctr ();
        e.e_flows
      | Some _ | None ->
        t.compose_misses <- t.compose_misses + 1;
        Nest_sim.Metrics.bump t.ov_miss_ctr ();
        let flows = resolve t inner in
        if Hashtbl.length t.ecache >= ecache_cap then Hashtbl.reset t.ecache;
        Hashtbl.replace t.ecache key { e_gen = t.fdb_gen; e_flows = flows };
        flows)

let encap t (inner : Frame.t) =
  let targets = targets_for t inner in
  if targets <> [] then begin
    Nest_sim.Metrics.bump t.encap_ctr ();
    Frame.record_hop inner (t.vtep_name ^ ":encap");
    Nest_sim.Engine.trace_instant (Stack.engine t.underlay) ~cat:"hop"
      ~name:(t.vtep_name ^ ":encap") ();
    let payload =
      Payload.make ~size:(Frame.len inner + vxlan_header_bytes)
        (Vxlan_encap inner)
    in
    let single = match targets with [ _ ] -> true | _ -> false in
    Hop.service_prov ?prov:(Frame.prov inner) t.encap_hop
      ~bytes:(Frame.len inner) (fun () ->
        List.iter
          (fun uf ->
            t.encapsulated <- t.encapsulated + 1;
            (* Thread the inner frame's provenance onto the outer
               datagram so underlay hops attribute to the same record;
               multicast replication branches it per remote. *)
            let prov =
              match Frame.prov inner with
              | Some p when not single -> Some (Nest_sim.Provenance.branch p)
              | p -> p
            in
            Stack.Udp.flow_send ?prov uf payload)
          targets)
  end

let create underlay ~name ~vni ~local ?(udp_port = default_port) ~encap_hop
    ~decap_hop () =
  ignore local;
  Hop.set_name encap_hop (name ^ ":encap");
  Hop.set_name decap_hop (name ^ ":decap");
  let overlay_dev =
    Dev.create ~mtu:overlay_mtu ~name:(name ^ ".vtep")
      ~mac:(Mac.of_int (0x0242000000 lor (vni land 0xffffff)))
      ()
  in
  let metrics = Nest_sim.Engine.metrics (Stack.engine underlay) in
  let rec t =
    lazy
      { vtep_name = name; vni; underlay; udp_port;
        sock =
          Stack.Udp.bind underlay ~port:udp_port ~kernel:true
            (fun _ ~src:_ payload -> decap (Lazy.force t) payload);
        overlay_dev; encap_hop; decap_hop; fdb = Hashtbl.create 16;
        remotes = []; fdb_gen = 0; flows = Hashtbl.create 8;
        ecache = Hashtbl.create 64; compose_hits = 0; compose_misses = 0;
        encapsulated = 0; decapsulated = 0;
        encap_ctr = Nest_sim.Metrics.counter metrics ("hop." ^ name ^ ".encap");
        decap_ctr = Nest_sim.Metrics.counter metrics ("hop." ^ name ^ ".decap");
        ov_hit_ctr =
          Nest_sim.Metrics.counter metrics ("fc.overlay." ^ name ^ ".hits");
        ov_miss_ctr =
          Nest_sim.Metrics.counter metrics ("fc.overlay." ^ name ^ ".misses") }
  in
  let t = Lazy.force t in
  Dev.set_tx overlay_dev (fun frame -> encap t frame);
  t

let dev t = t.overlay_dev
let vni t = t.vni

let add_remote t ip =
  if not (List.mem ip t.remotes) then begin
    t.remotes <- t.remotes @ [ ip ];
    t.fdb_gen <- t.fdb_gen + 1
  end

let add_fdb t mac ip =
  if Hashtbl.find_opt t.fdb mac <> Some ip then begin
    Hashtbl.replace t.fdb mac ip;
    t.fdb_gen <- t.fdb_gen + 1
  end

let remove_remote t ip =
  let in_flood = List.mem ip t.remotes in
  let stale_macs =
    Hashtbl.fold (fun mac dst acc -> if dst = ip then mac :: acc else acc)
      t.fdb []
  in
  if in_flood || stale_macs <> [] then begin
    t.remotes <- List.filter (fun r -> r <> ip) t.remotes;
    List.iter (Hashtbl.remove t.fdb) stale_macs;
    Hashtbl.remove t.flows ip;
    t.fdb_gen <- t.fdb_gen + 1
  end

let compose_stats t = (t.compose_hits, t.compose_misses)
let encapsulated t = t.encapsulated
let decapsulated t = t.decapsulated
