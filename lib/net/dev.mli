(** Network devices (interfaces).

    A device separates two roles:
    - [transmit]: the owner (an IP stack or a bridge) pushes a frame out of
      the device; the device's medium — installed by the medium constructor
      ({!Veth}, {!Tap}, virtio, ...) — carries it to the other side;
    - [deliver]: the medium hands an incoming frame to the device, which
      forwards it to whatever is attached on top (stack input or bridge
      port input).

    [l2_mode] distinguishes ordinary interfaces from reflectors (loopback
    and Hostlo endpoints), on which the stack transmits with a broadcast
    destination MAC and skips ARP — the medium reflects frames rather than
    switching them. *)

type l2_mode = Normal | Reflector

type stats = {
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable drops : int;
}

type t = {
  name : string;
  mutable mac : Mac.t;
  mutable mtu : int;
  mutable up : bool;
  l2 : l2_mode;
  binding : int ref;  (** Ownership/binding generation; see {!bump_binding}. *)
  stats : stats;
  mutable tx_fn : Frame.t -> unit;
  mutable rx_fn : (Frame.t -> unit) option;
  mutable corrupt_fn : (Frame.t -> bool) option;
}

val create :
  ?mtu:int -> ?l2:l2_mode -> ?binding:int ref -> name:string -> mac:Mac.t ->
  unit -> t
(** Fresh device, up, with no medium ([tx_fn] drops and counts) and nothing
    attached on top.  [binding] shares an ownership-generation ref with
    sibling devices (all endpoints of one reflector tap); by default the
    device gets a private one. *)

val bump_binding : t -> unit
(** Marks an ownership change — the device (or, for a shared ref, any of
    its siblings) was claimed or rebound.  Flow-cache verdicts whose
    validity depends on which socket owner the device serves embed the
    binding generation and die on the next lookup. *)

val binding_generation : t -> int

val set_tx : t -> (Frame.t -> unit) -> unit
(** Installed by the medium constructor. *)

val set_rx : t -> (Frame.t -> unit) -> unit
(** Installed by the stack or bridge the device is attached to. *)

val clear_rx : t -> unit

val set_up : t -> bool -> unit
(** Administrative link state.  A down device counts every transmit and
    delivery as a drop — the hook fault injection uses for link-down and
    link-flap events. *)

val set_corrupt : t -> (Frame.t -> bool) option -> unit
(** Optional receive-side corruption oracle (fault injection).  When
    installed and it returns [true] for a frame, the frame is discarded
    as an FCS/checksum failure and counted in [stats.drops].  [None]
    (the default) costs the datapath nothing. *)

val transmit : t -> Frame.t -> unit
(** Owner -> medium.  Counts tx; drops when the device is down. *)

val deliver : t -> Frame.t -> unit
(** Medium -> owner.  Records the device name in the frame's hop trace,
    counts rx; drops when down or unattached. *)

val mss : t -> int
(** MTU minus IP+TCP headers. *)
