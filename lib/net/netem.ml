type t = {
  dev : Dev.t;
  original_tx : Frame.t -> unit;
  mutable passed : int;
  mutable dropped_loss : int;
  mutable dropped_overflow : int;
  mutable in_flight : int;
  mutable active : bool;
}

let shape engine dev ?(loss = 0.0) ?(delay_ns = 0) ?(jitter_ns = 0)
    ?(limit = max_int) ~rng () =
  if loss < 0.0 || loss > 1.0 then invalid_arg "Netem.shape: loss in [0,1]";
  let t =
    { dev; original_tx = dev.Dev.tx_fn; passed = 0; dropped_loss = 0;
      dropped_overflow = 0; in_flight = 0; active = true }
  in
  let shaped frame =
    if not t.active then t.original_tx frame
    else if loss > 0.0 && Nest_sim.Prng.float rng < loss then begin
      t.dropped_loss <- t.dropped_loss + 1;
      dev.Dev.stats.Dev.drops <- dev.Dev.stats.Dev.drops + 1
    end
    else if t.in_flight >= limit then begin
      t.dropped_overflow <- t.dropped_overflow + 1;
      dev.Dev.stats.Dev.drops <- dev.Dev.stats.Dev.drops + 1
    end
    else begin
      let extra =
        if jitter_ns > 0 then Nest_sim.Prng.int rng (jitter_ns + 1) else 0
      in
      t.in_flight <- t.in_flight + 1;
      let delay = delay_ns + extra in
      (* Pure link delay: attribute it as queue-only time — the frame
         waits but no context serves it. *)
      (match Frame.prov frame with
      | None -> ()
      | Some p ->
        let now = Nest_sim.Engine.now engine in
        Nest_sim.Provenance.add p ~hop:(dev.Dev.name ^ ":netem")
          ~enqueue_ns:now ~start_ns:(now + delay) ~end_ns:(now + delay));
      Nest_sim.Engine.schedule engine ~delay (fun () ->
          t.in_flight <- t.in_flight - 1;
          t.passed <- t.passed + 1;
          t.original_tx frame)
    end
  in
  Dev.set_tx dev shaped;
  t

let remove t =
  t.active <- false;
  Dev.set_tx t.dev t.original_tx

type profile = {
  p_name : string;
  p_delay : Nest_sim.Time.ns;
  p_jitter : Nest_sim.Time.ns;
  p_loss : float;
  p_limit : int option;
}

let us = Nest_sim.Time.us
let ms = Nest_sim.Time.ms

let profiles =
  [ { p_name = "datacenter"; p_delay = us 25; p_jitter = us 5; p_loss = 0.0;
      p_limit = None };
    { p_name = "wan"; p_delay = ms 10; p_jitter = ms 1; p_loss = 0.001;
      p_limit = None };
    { p_name = "edge"; p_delay = ms 30; p_jitter = ms 5; p_loss = 0.005;
      p_limit = None };
    { p_name = "lossy"; p_delay = ms 5; p_jitter = ms 2; p_loss = 0.02;
      p_limit = Some 64 } ]

let profile name = List.find_opt (fun p -> String.equal p.p_name name) profiles
let profile_names () = List.map (fun p -> p.p_name) profiles

let shape_profile engine dev p ~rng =
  shape engine dev ~loss:p.p_loss ~delay_ns:p.p_delay ~jitter_ns:p.p_jitter
    ?limit:p.p_limit ~rng ()

let passed t = t.passed
let dropped_loss t = t.dropped_loss
let dropped_overflow t = t.dropped_overflow
