(** Connection tracking with NAT bindings (Linux conntrack).

    Both NAT layers of the nested stack (Docker's inside the VM, the
    VMM's on the host) are built on this: a flow's first packet through a
    SNAT/DNAT rule creates a binding, and every subsequent packet of the
    flow — in either direction — is translated from the table without
    consulting the rules again. *)

type proto = Proto_udp | Proto_tcp | Proto_icmp

type flow = {
  proto : proto;
  f_src : Ipv4.t;
  f_sport : int;
  f_dst : Ipv4.t;
  f_dport : int;
}
(** ICMP echo flows use the echo identifier as both ports. *)

val flow_of_packet : Packet.t -> flow
val pp_flow : Format.formatter -> flow -> unit

type t

val create : unit -> t

val snat : t -> Packet.t -> to_ip:Ipv4.t -> Packet.t
(** Source-NAT (masquerade): rewrites the source to [to_ip] with an
    allocated port, creating forward and reply bindings on first sight.
    Idempotent for an already-bound flow. *)

val dnat : t -> Packet.t -> to_ip:Ipv4.t -> to_port:int -> Packet.t
(** Destination-NAT (port publishing). *)

val translate : t -> Packet.t -> Packet.t * bool
(** Table-only translation for established flows; the boolean reports
    whether a binding applied (in which case NAT rules must be skipped,
    matching Linux semantics). *)

val entry_count : t -> int

val set_capacity : t -> int option -> unit
(** Fault injection: clamp the table to at most [n] bindings ([None], the
    default, is unlimited).  Enforced through {!admit} at the netfilter
    layer, not inside {!snat}/{!dnat}. *)

val capacity : t -> int option

val admit : t -> Packet.t -> bool
(** [admit t p] is [true] when [p]'s flow is already bound or the table
    has room for a new forward+reply pair.  Returns [false] — and counts
    a drop — when a new binding would exceed the capacity clamp; the
    caller must then drop the packet (Linux "nf_conntrack: table full,
    dropping packet"). *)

val drops : t -> int
(** Packets refused by {!admit} because the table was full. *)

val generation : t -> int
(** Monotonic counter bumped whenever a new binding pair is created.
    Lets callers (the stack's flow cache) detect staleness with one
    comparison. *)

val bindings : t -> (flow * flow) list
(** [(matched flow, rewritten-to flow)] pairs, unordered. *)
