type proto = Proto_udp | Proto_tcp | Proto_icmp

type flow = {
  proto : proto;
  f_src : Ipv4.t;
  f_sport : int;
  f_dst : Ipv4.t;
  f_dport : int;
}

let flow_of_packet (p : Packet.t) =
  match p.transport with
  | Packet.Udp { src_port; dst_port; _ } ->
    { proto = Proto_udp; f_src = p.src; f_sport = src_port; f_dst = p.dst;
      f_dport = dst_port }
  | Packet.Tcp { seg; _ } ->
    { proto = Proto_tcp; f_src = p.src; f_sport = seg.Tcp_wire.src_port;
      f_dst = p.dst; f_dport = seg.Tcp_wire.dst_port }
  | Packet.Icmp_echo { id; _ } ->
    { proto = Proto_icmp; f_src = p.src; f_sport = id; f_dst = p.dst;
      f_dport = id }

let pp_flow fmt f =
  let proto =
    match f.proto with
    | Proto_udp -> "udp"
    | Proto_tcp -> "tcp"
    | Proto_icmp -> "icmp"
  in
  Format.fprintf fmt "%s %a:%d>%a:%d" proto Ipv4.pp f.f_src f.f_sport Ipv4.pp
    f.f_dst f.f_dport

(* A binding rewrites matched packets to have the given endpoints. *)
type rewrite = {
  new_src : (Ipv4.t * int) option;
  new_dst : (Ipv4.t * int) option;
}

type t = {
  table : (flow, rewrite) Hashtbl.t;
  mutable next_port : int;
  mutable gen : int;
  mutable capacity : int option;
  mutable ct_drops : int;
}

let create () =
  { table = Hashtbl.create 64; next_port = 32768; gen = 0; capacity = None;
    ct_drops = 0 }

let set_capacity t c = t.capacity <- c
let capacity t = t.capacity
let drops t = t.ct_drops

(* nf_conntrack admission: an established flow always passes; a new flow
   needs room for its forward+reply binding pair.  When there is none the
   packet must be dropped by the caller ("table full, dropping packet"). *)
let admit t p =
  match t.capacity with
  | None -> true
  | Some cap ->
    let f = flow_of_packet p in
    if Hashtbl.mem t.table f then true
    else if Hashtbl.length t.table + 2 <= cap then true
    else begin
      t.ct_drops <- t.ct_drops + 1;
      false
    end

let alloc_port t =
  let p = t.next_port in
  t.next_port <- (if p >= 60999 then 32768 else p + 1);
  p

let apply rw (p : Packet.t) =
  let p =
    match rw.new_src with
    | None -> p
    | Some (ip, port) ->
      Packet.with_ports ~src_port:port (Packet.with_addrs ~src:ip p)
  in
  match rw.new_dst with
  | None -> p
  | Some (ip, port) ->
    Packet.with_ports ~dst_port:port (Packet.with_addrs ~dst:ip p)

let translate t p =
  let f = flow_of_packet p in
  match Hashtbl.find_opt t.table f with
  | Some rw -> (apply rw p, true)
  | None -> (p, false)

let snat t p ~to_ip =
  let f = flow_of_packet p in
  match Hashtbl.find_opt t.table f with
  | Some rw -> apply rw p
  | None ->
    (* ICMP has no ports: the echo identifier must survive translation so
       the reply can be matched. *)
    let nat_port =
      match f.proto with Proto_icmp -> f.f_sport | _ -> alloc_port t
    in
    let fwd = { new_src = Some (to_ip, nat_port); new_dst = None } in
    (* Replies arrive addressed to the NAT endpoint. *)
    let reply_flow =
      { proto = f.proto; f_src = f.f_dst; f_sport = f.f_dport; f_dst = to_ip;
        f_dport = nat_port }
    in
    let back = { new_src = None; new_dst = Some (f.f_src, f.f_sport) } in
    t.gen <- t.gen + 1;
    Hashtbl.replace t.table f fwd;
    Hashtbl.replace t.table reply_flow back;
    apply fwd p

let dnat t p ~to_ip ~to_port =
  let f = flow_of_packet p in
  match Hashtbl.find_opt t.table f with
  | Some rw -> apply rw p
  | None ->
    let fwd = { new_src = None; new_dst = Some (to_ip, to_port) } in
    let reply_flow =
      { proto = f.proto; f_src = to_ip; f_sport = to_port; f_dst = f.f_src;
        f_dport = f.f_sport }
    in
    let back = { new_src = Some (f.f_dst, f.f_dport); new_dst = None } in
    t.gen <- t.gen + 1;
    Hashtbl.replace t.table f fwd;
    Hashtbl.replace t.table reply_flow back;
    apply fwd p

let entry_count t = Hashtbl.length t.table
let generation t = t.gen

let bindings t =
  Hashtbl.fold
    (fun f rw acc ->
      let to_flow =
        let src, sport =
          match rw.new_src with Some (ip, p) -> (ip, p) | None -> (f.f_src, f.f_sport)
        in
        let dst, dport =
          match rw.new_dst with Some (ip, p) -> (ip, p) | None -> (f.f_dst, f.f_dport)
        in
        { f with f_src = src; f_sport = sport; f_dst = dst; f_dport = dport }
      in
      (f, to_flow) :: acc)
    t.table []
