let dst_port_of pkt = match Packet.ports pkt with Some (_, d) -> d | None -> -1

(* A NAT rewrite runs inside the hop that invoked the netfilter hook, so
   its provenance mark is a zero-duration entry pinned to that hop's end
   — it names the rewrite without claiming time (the hook's CPU cost is
   the nat surcharge already folded into the rx/tx hop). *)
let note_rewrite (pkt : Packet.t) name =
  Packet.record_hop pkt ("nat:" ^ name);
  match pkt.Packet.prov with
  | Some p -> Nest_sim.Provenance.mark_after p ~hop:("nat:" ^ name)
  | None -> ()

let masquerade nf ct ~name ~src_subnet ?out_dev ~nat_ip () =
  let matches (ctx : Netfilter.ctx) (pkt : Packet.t) =
    Ipv4.in_subnet src_subnet pkt.Packet.src
    && (not (Ipv4.in_subnet src_subnet pkt.Packet.dst))
    &&
    match out_dev with
    | None -> true
    | Some d -> ctx.Netfilter.out_dev = Some d
  in
  let action _ctx pkt =
    if not (Conntrack.admit ct pkt) then Netfilter.Drop
    else begin
      note_rewrite pkt name;
      Netfilter.Mangle (Conntrack.snat ct pkt ~to_ip:nat_ip)
    end
  in
  Netfilter.append nf Netfilter.Postrouting { rule_name = name; matches; action }

let publish nf ct ~name ~dst_ip ~dst_port ~to_ip ~to_port =
  let matches _ctx (pkt : Packet.t) =
    Ipv4.equal pkt.Packet.dst dst_ip && dst_port_of pkt = dst_port
  in
  let action _ctx pkt =
    if not (Conntrack.admit ct pkt) then Netfilter.Drop
    else begin
      note_rewrite pkt name;
      Netfilter.Mangle (Conntrack.dnat ct pkt ~to_ip ~to_port)
    end
  in
  Netfilter.append nf Netfilter.Prerouting { rule_name = name; matches; action }

let drop_from nf ~name ~hook ~src_subnet =
  let matches _ctx (pkt : Packet.t) = Ipv4.in_subnet src_subnet pkt.Packet.src in
  let action _ctx _pkt = Netfilter.Drop in
  Netfilter.append nf hook { rule_name = name; matches; action }
