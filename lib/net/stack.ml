module Engine = Nest_sim.Engine
module Time = Nest_sim.Time
module Trace = Nest_sim.Trace
module Metrics = Nest_sim.Metrics

let log_src = Nest_sim.Log.src "stack"

type costs = {
  tx : Hop.t;
  rx : Hop.t;
  forward : Hop.t;
  nat : Hop.t;
  nat_per_rule_ns : int;
  local : Hop.t;
  syscall : Hop.t;
  wakeup_delay_ns : int;
}

type ns_counters = {
  mutable delivered : int;
  mutable forwarded_pkts : int;
  mutable dropped_no_socket : int;
  mutable dropped_no_route : int;
  mutable dropped_filtered : int;
  mutable dropped_ttl : int;
  mutable rst_sent : int;
}

(* ONCache-style flow cache: the complete forwarding verdict for a flow —
   egress device, next hop, ARP-resolved MAC, and whether the netfilter
   chains were a no-op — memoized per namespace so steady-state packets
   skip the route list walk, the hook chains and ARP resolution.

   A verdict is valid while none of the state it was derived from has
   mutated; each mutable table carries a monotonic generation counter and
   the verdict records their sum at install time (all counters only grow,
   so sum equality is equivalent to component-wise equality; [fc_stamp]
   asserts the monotonicity and guards the sum against saturation).
   Neighbour state is scoped finer: instead of folding ARP churn into the
   namespace-wide generation, each verdict that resolved a next hop also
   records that destination's per-neighbour generation ([fc_ngen]), so a
   MAC move — chaos recovery announces them in gratuitous-ARP bursts —
   kills only the verdicts that reference the moved neighbour.

   Reflector (Hostlo) egress additionally depends on live socket state:
   the local-deliver vs reflect split consults the socket tables, and the
   endpoint can be rebound wholesale (standby-pool claim).  Those inputs
   get their own generations — [sock_gen] for the socket tables and the
   device's binding generation (see {!Dev.bump_binding}) — folded into
   [rf_gen] at install time, which makes the previously uncacheable
   reflector decision an ordinary stamped verdict.

   Per-packet work that is not flow-invariant — conntrack translation,
   TTL decrement, hop costing, delivery counters — still runs on the fast
   path, so cached and uncached packets are simulated identically. *)
type fc_tx = { fc_dev : Dev.t; fc_next_hop : Ipv4.t; fc_mac : Mac.t }

type fc_reflect = Rf_local | Rf_tx of fc_tx

type fc_out =
  | Fc_out_local
  | Fc_out_tx of fc_tx
  | Fc_out_reflect of {
      rf_dev : Dev.t;
      rf_gen : int;   (* sock_gen + endpoint binding generation at install *)
      rf_syn : bool;  (* derived from a connection-opening SYN?  The
                         listener clause of the socket match only applies
                         to such packets, so a verdict may be replayed
                         only for packets of the same class. *)
      rf_v : fc_reflect;
    }

type fc_in = Fc_in_deliver | Fc_in_forward of fc_tx

type 'v fc_verdict = { fc_stamp : int; fc_ngen : int; fc_v : 'v }

(* TCP tuning.  Values follow Linux defaults where a default exists. *)
let sndbuf_default = 262_144
let rcvwnd_default = 262_144
let init_cwnd_segments = 10
let rto_initial = Time.ms 200

(* Consecutive no-progress RTOs before the connection is aborted — the
   role of Linux's tcp_retries2 (and tcp_syn_retries for handshakes),
   scaled down to simulation horizons: 8 rungs of the capped-at-2^6
   exponential ladder span ~38 s of virtual time. *)
let tcp_max_retries = 8
let delack_delay = Time.us 200
let ack_every_segments = 2
let ephemeral_base = 49_152
let loopback_mtu = 65_536

type tcp_state =
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait
  | Last_ack
  | Closed

type udp_sock = {
  u_ns : ns;
  u_port : int;
  u_kernel : bool;
  mutable u_recv : udp_sock -> src:Ipv4.t * int -> Payload.t -> unit;
  mutable u_closed : bool;
}

and tcp_conn = {
  c_ns : ns;
  c_local_ip : Ipv4.t;
  c_local_port : int;
  c_remote_ip : Ipv4.t;
  c_remote_port : int;
  c_mss : int;
  mutable c_state : tcp_state;
  (* Send side: absolute stream offsets starting at 0. *)
  mutable snd_una : int;        (* oldest unacknowledged byte *)
  mutable snd_nxt : int;        (* next byte to transmit *)
  mutable send_off : int;       (* end of data accepted from the app *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable peer_wnd : int;
  tx_boundaries : (int * Payload.app_msg) Queue.t;  (* untransmitted *)
  mutable inflight : (int * int * (int * Payload.app_msg) list) list;
      (* (seq, len, msgs), ascending seq; for retransmission *)
  mutable rto_armed : bool;
  mutable rto_una_at_arm : int;
  mutable rto_backoff : int;
  mutable dup_acks : int;
  mutable c_retransmits : int;
  (* Receive side. *)
  mutable rcv_nxt : int;
  mutable delivered_off : int;
  mutable ooo : (int * int * (int * Payload.app_msg) list) list;  (* sorted *)
  rcv_pending : (int, Payload.app_msg) Hashtbl.t;  (* end-offset -> msg *)
  mutable pending_ack_segs : int;
  mutable delack_armed : bool;
  (* Application interface. *)
  mutable on_receive : bytes:int -> msgs:Payload.app_msg list -> unit;
  mutable on_writable : unit -> unit;
  mutable writable_waiting : bool;
  mutable on_established_cb : tcp_conn -> unit;
  mutable on_close_cb : unit -> unit;
  c_sndbuf : int;
}

and tcp_listener = { l_on_accept : tcp_conn -> unit }

and ns = {
  ns_name : string;
  eng : Engine.t;
  cs : costs;
  nf_tbl : Netfilter.t;
  ct_tbl : Conntrack.t;
  rt : Route.t;
  mutable devs : Dev.t list;
  mutable addr_list : (Dev.t * Ipv4.t * Ipv4.cidr) list;
  arp_tbl : (Ipv4.t, Mac.t) Hashtbl.t;
  arp_waiting : (Ipv4.t, (Mac.t -> unit) list ref) Hashtbl.t;
  udp_binds : (int, udp_sock) Hashtbl.t;
  listeners : (int, tcp_listener) Hashtbl.t;
  conns : (int * Ipv4.t * int, tcp_conn) Hashtbl.t;
  icmp_waiters : (int, Time.ns * (rtt_ns:Time.ns -> unit)) Hashtbl.t;
  mutable next_eph : int;
  mutable next_icmp_id : int;
  mutable fwd : bool;
  mutable trace_all : bool;
  mutable prov_all : bool;
  mutable prov_tick : int;  (* 1-in-N sampling countdown, see fresh_prov *)
  cnt : ns_counters;
  mutable lo : Dev.t option;
  mutable observer : (Packet.t -> unit) option;
  ns_rng : Nest_sim.Prng.t;
  (* Flow cache (see the comment on [fc_tx]). *)
  mutable fc_enabled : bool;
  mutable fc_gen : int;  (* bumped on addr/dev/fwd-flag mutation *)
  mutable sock_gen : int;  (* bumped on any socket-table mutation *)
  neigh_gen : (Ipv4.t, int) Hashtbl.t;  (* per-destination ARP moves *)
  out_cache : (Conntrack.flow, fc_out fc_verdict) Hashtbl.t;
  in_cache : (string * Conntrack.flow, fc_in fc_verdict) Hashtbl.t;
  mutable fc_hits : int;
  mutable fc_misses : int;
  mutable fc_inval_full : int;    (* whole-cache invalidations *)
  mutable fc_inval_scoped : int;  (* single-neighbour invalidations *)
  (* Last component generations seen by [fc_stamp], for the debug
     assertion that each one is monotonic (sum aliasing guard). *)
  mutable fc_seen_rt : int;
  mutable fc_seen_nf : int;
  mutable fc_seen_ct : int;
}

(* Scheduler wakeup latency: base plus an exponential tail (run-queue
   luck), so end-to-end latency distributions have realistic spread. *)
let wakeup_delay ns =
  let base = float_of_int ns.cs.wakeup_delay_ns in
  if base <= 0.0 then 0
  else
    int_of_float
      ((0.6 *. base) +. Nest_sim.Dist.exponential ns.ns_rng ~mean:(0.4 *. base))

(* Counter bumps funnel through these helpers so every delivery/drop also
   leaves a trace instant (cat ["pkt"], name = namespace) when a tracer is
   installed.  The reconciliation invariant tested in the observability
   suite — trace instants per namespace equal counter deltas — depends on
   the two being updated at the same site. *)
let note_delivered ns =
  ns.cnt.delivered <- ns.cnt.delivered + 1;
  Engine.trace_instant ns.eng ~cat:"pkt" ~name:ns.ns_name ~arg:"delivered" ()

let note_drop ?(n = 1) ns reason =
  (match reason with
  | `No_socket -> ns.cnt.dropped_no_socket <- ns.cnt.dropped_no_socket + n
  | `No_route -> ns.cnt.dropped_no_route <- ns.cnt.dropped_no_route + n
  | `Filtered -> ns.cnt.dropped_filtered <- ns.cnt.dropped_filtered + n
  | `Ttl -> ns.cnt.dropped_ttl <- ns.cnt.dropped_ttl + n);
  match Engine.tracer ns.eng with
  | None -> ()
  | Some tr ->
    let arg =
      match reason with
      | `No_socket -> "drop:no_socket"
      | `No_route -> "drop:no_route"
      | `Filtered -> "drop:filtered"
      | `Ttl -> "drop:ttl"
    in
    for _ = 1 to n do
      Trace.instant tr ~ts:(Engine.now ns.eng) ~cat:"pkt" ~name:ns.ns_name
        ~arg ()
    done

let name ns = ns.ns_name
let engine ns = ns.eng
let nf ns = ns.nf_tbl
let ct ns = ns.ct_tbl
let routes ns = ns.rt
let counters ns = ns.cnt
let costs ns = ns.cs
let devices ns = ns.devs
let find_dev ns n = List.find_opt (fun d -> d.Dev.name = n) ns.devs
let addrs ns = ns.addr_list
let set_ip_forward ns b =
  ns.fwd <- b;
  ns.fc_gen <- ns.fc_gen + 1;
  ns.fc_inval_full <- ns.fc_inval_full + 1
let set_trace_all ns b = ns.trace_all <- b
let set_provenance_all ns b = ns.prov_all <- b

(* Latency-provenance record for a packet originating in this namespace;
   [None] (the free path) unless provenance is switched on.  With
   [Provenance.set_sampling n > 1], only every n-th eligible packet gets
   a record — the counter is per-namespace and advanced in send order,
   so the sampled subset is deterministic across runs and [--jobs N]. *)
let fresh_prov ns =
  if not ns.prov_all then None
  else
    let n = Nest_sim.Provenance.sampling () in
    if n <= 1 then Some (Nest_sim.Provenance.create ())
    else begin
      ns.prov_tick <- ns.prov_tick + 1;
      if ns.prov_tick >= n then begin
        ns.prov_tick <- 0;
        Some (Nest_sim.Provenance.create ())
      end
      else None
    end
let set_observer ns f = ns.observer <- f
let loopback_dev ns = ns.lo

let addr_of_dev ns dev =
  List.find_map
    (fun (d, ip, _) -> if d == dev then Some ip else None)
    ns.addr_list

let lo_subnet = Ipv4.cidr_of_string "127.0.0.0/8"

let is_local_addr ns ip =
  List.exists (fun (_, a, _) -> Ipv4.equal a ip) ns.addr_list
  || (ns.lo <> None && Ipv4.in_subnet lo_subnet ip)

let dev_holding_addr ns ip =
  match
    List.find_map
      (fun (d, a, _) -> if Ipv4.equal a ip then Some d else None)
      ns.addr_list
  with
  | Some d -> Some d
  | None -> if Ipv4.in_subnet lo_subnet ip then ns.lo else None

let arp_cache ns =
  Hashtbl.fold (fun ip mac acc -> (ip, mac) :: acc) ns.arp_tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Flow cache                                                          *)

(* Margin before [max_int] at which the saturation guard trips.  Far
   larger than any realistic mutation count, far smaller than the range
   it protects. *)
let fc_stamp_margin = 0xffff

(* The stamp is a SUM of four generation counters.  Sum equality stands
   in for component-wise equality only because every component is
   monotonic non-decreasing: a later +1/-1 pair across two components
   could otherwise alias a stamp back onto a stale verdict.  The debug
   assertion pins the invariant (each component never observed to
   decrease); release builds compile it out and the datapath pays two
   loads per component.  Should the sum ever approach [max_int] — it
   cannot overflow silently, OCaml ints wrap — the cache fails safe by
   switching itself off for this namespace instead of risking aliased
   stamps after a wrap. *)
let fc_stamp ns =
  let rt_gen = Route.generation ns.rt in
  let nf_gen = Netfilter.generation ns.nf_tbl in
  let ct_gen = Conntrack.generation ns.ct_tbl in
  assert (
    rt_gen >= ns.fc_seen_rt && nf_gen >= ns.fc_seen_nf
    && ct_gen >= ns.fc_seen_ct);
  ns.fc_seen_rt <- rt_gen;
  ns.fc_seen_nf <- nf_gen;
  ns.fc_seen_ct <- ct_gen;
  let s = rt_gen + nf_gen + ct_gen + ns.fc_gen in
  if s >= max_int - fc_stamp_margin && ns.fc_enabled then begin
    ns.fc_enabled <- false;
    Hashtbl.reset ns.out_cache;
    Hashtbl.reset ns.in_cache
  end;
  s

(* Stale entries linger until overwritten or the cap trips; they are
   harmless (the stamp check rejects them) but bound the tables anyway. *)
let fc_cap = 4096

let fc_install tbl key v =
  if Hashtbl.length tbl >= fc_cap then Hashtbl.reset tbl;
  Hashtbl.replace tbl key v

let fc_invalidate ns =
  ns.fc_gen <- ns.fc_gen + 1;
  ns.fc_inval_full <- ns.fc_inval_full + 1

(* Per-destination invalidation: only verdicts whose resolved next hop is
   [ip] embed its neighbour generation, so bumping it leaves every other
   flow's verdict live — a gratuitous-ARP storm no longer collapses the
   hit rate namespace-wide. *)
let neigh_generation ns ip =
  match Hashtbl.find_opt ns.neigh_gen ip with Some g -> g | None -> 0

let fc_invalidate_neigh ns ip =
  Hashtbl.replace ns.neigh_gen ip (neigh_generation ns ip + 1);
  ns.fc_inval_scoped <- ns.fc_inval_scoped + 1

(* Socket-table generation: any bind/close/listen/connect-registration
   mutation.  Only reflector verdicts depend on it (their local-deliver
   vs reflect split consults the socket tables); ordinary verdicts stay
   live across socket churn. *)
let sock_mutated ns = ns.sock_gen <- ns.sock_gen + 1

let reflector_gen ns (dev : Dev.t) = ns.sock_gen + Dev.binding_generation dev

let pkt_open_syn (pkt : Packet.t) =
  match pkt.Packet.transport with
  | Packet.Tcp { seg; _ } ->
    seg.Tcp_wire.flags.Tcp_wire.syn && not seg.Tcp_wire.flags.Tcp_wire.ack
  | Packet.Udp _ | Packet.Icmp_echo _ -> false

(* ICMP echo state (icmp_waiters) churns with every ping, so reflector
   verdicts for ICMP would invalidate themselves constantly. *)
let reflect_cachable (pkt : Packet.t) =
  match pkt.Packet.transport with
  | Packet.Icmp_echo _ -> false
  | Packet.Udp _ | Packet.Tcp _ -> true

let fc_tx_live ns v tx = neigh_generation ns tx.fc_next_hop = v.fc_ngen

let fc_out_live ns pkt (v : fc_out fc_verdict) =
  match v.fc_v with
  | Fc_out_local -> true
  | Fc_out_tx tx -> fc_tx_live ns v tx
  | Fc_out_reflect r ->
    r.rf_gen = reflector_gen ns r.rf_dev
    && r.rf_syn = pkt_open_syn pkt
    && (match r.rf_v with Rf_local -> true | Rf_tx tx -> fc_tx_live ns v tx)

let fc_in_live ns (v : fc_in fc_verdict) =
  match v.fc_v with
  | Fc_in_deliver -> true
  | Fc_in_forward tx -> fc_tx_live ns v tx

let fc_out_ngen ns = function
  | Fc_out_local | Fc_out_reflect { rf_v = Rf_local; _ } -> 0
  | Fc_out_tx tx | Fc_out_reflect { rf_v = Rf_tx tx; _ } ->
    neigh_generation ns tx.fc_next_hop

let fc_in_ngen ns = function
  | Fc_in_deliver -> 0
  | Fc_in_forward tx -> neigh_generation ns tx.fc_next_hop

let set_flow_cache ns on =
  ns.fc_enabled <- on;
  if not on then begin
    Hashtbl.reset ns.out_cache;
    Hashtbl.reset ns.in_cache
  end

(* Process-wide default applied at namespace creation.  Written only by
   harness code between runs (bench mechanisms-off passes, equivalence
   tests) — never from inside a simulation — so reading it under
   [--jobs N] domains is race-free in practice and atomic regardless. *)
let fc_default = Atomic.make true
let set_default_flow_cache b = Atomic.set fc_default b
let default_flow_cache () = Atomic.get fc_default

let flow_cache_enabled ns = ns.fc_enabled
let flow_cache_stats ns = (ns.fc_hits, ns.fc_misses)
let flow_cache_invalidations ns = (ns.fc_inval_full, ns.fc_inval_scoped)

(* Netfilter is "armed" once any rule exists; armed namespaces pay the
   [nat] hop surcharge on their datapath — a fixed hook cost plus a
   per-rule term (Docker's chains are long) — which is exactly the
   per-packet work BrFusion eliminates inside the VM. *)
let all_hooks =
  [ Netfilter.Prerouting; Netfilter.Input; Netfilter.Forward;
    Netfilter.Output; Netfilter.Postrouting ]

let total_rules ns =
  List.fold_left (fun a h -> a + Netfilter.rule_count ns.nf_tbl h) 0 all_hooks

let nf_armed ns = total_rules ns > 0 || Conntrack.entry_count ns.ct_tbl > 0

let nat_surcharge ns =
  if nf_armed ns then
    ns.cs.nat.Hop.fixed_ns + (ns.cs.nat_per_rule_ns * total_rules ns)
  else 0

(* ------------------------------------------------------------------ *)
(* ARP                                                                 *)

let send_ip_frame ns dev ~dst_mac pkt =
  let frame =
    Frame.make ~traced:ns.trace_all ~src:dev.Dev.mac ~dst:dst_mac
      (Frame.Ipv4_body pkt)
  in
  Dev.transmit dev frame

let arp_request ns dev target_ip =
  let sender_ip = Option.value (addr_of_dev ns dev) ~default:Ipv4.any in
  let msg =
    { Frame.op = Frame.Request; sender_mac = dev.Dev.mac; sender_ip;
      target_mac = Mac.of_int 0; target_ip }
  in
  Dev.transmit dev
    (Frame.make ~traced:ns.trace_all ~src:dev.Dev.mac ~dst:Mac.broadcast
       (Frame.Arp_body msg))

(* Gratuitous ARP: broadcast announce of [ip] at [dev]'s MAC, as
   `arping -A` after an address assignment.  Every listener's
   [arp_input] runs [arp_learn], so a neighbour holding a stale entry
   for a reused address (freed lease, re-allocated to a new pod with a
   new MAC) is corrected instead of blackholing until its entry ages
   out. *)
let garp ns dev ip =
  let msg =
    { Frame.op = Frame.Request; sender_mac = dev.Dev.mac; sender_ip = ip;
      target_mac = Mac.of_int 0; target_ip = ip }
  in
  Dev.transmit dev
    (Frame.make ~traced:ns.trace_all ~src:dev.Dev.mac ~dst:Mac.broadcast
       (Frame.Arp_body msg))

let arp_retry_delay = Time.sec 1
let arp_max_tries = 3

let arp_resolve ns dev ip k =
  if dev.Dev.l2 = Dev.Reflector then k Mac.broadcast
  else
    match Hashtbl.find_opt ns.arp_tbl ip with
    | Some mac -> k mac
    | None -> (
      match Hashtbl.find_opt ns.arp_waiting ip with
      | Some q -> q := k :: !q
      | None ->
        Hashtbl.add ns.arp_waiting ip (ref [ k ]);
        (* Linux-style retry: re-probe a few times, then fail the queued
           transmissions (counted as unroutable). *)
        let rec attempt n =
          if Hashtbl.mem ns.arp_waiting ip then
            if n > arp_max_tries then begin
              let waiters =
                match Hashtbl.find_opt ns.arp_waiting ip with
                | Some q -> List.length !q
                | None -> 0
              in
              Hashtbl.remove ns.arp_waiting ip;
              note_drop ~n:waiters ns `No_route
            end
            else begin
              arp_request ns dev ip;
              Engine.schedule ns.eng ~delay:arp_retry_delay (fun () ->
                  attempt (n + 1))
            end
        in
        attempt 1)

let arp_learn ns ip mac =
  if not (Ipv4.equal ip Ipv4.any) then begin
    (* A neighbour moving to a new MAC invalidates cached verdicts that
       resolved the old one — and only those: the invalidation is scoped
       to this destination's neighbour generation, so a recovery-time
       GARP burst does not flush unrelated flows.  Re-learning the same
       MAC invalidates nothing (it is the common case and would defeat
       the cache). *)
    (match Hashtbl.find_opt ns.arp_tbl ip with
    | Some old when not (Mac.equal old mac) -> fc_invalidate_neigh ns ip
    | Some _ | None -> ());
    Hashtbl.replace ns.arp_tbl ip mac;
    match Hashtbl.find_opt ns.arp_waiting ip with
    | None -> ()
    | Some q ->
      let ks = List.rev !q in
      Hashtbl.remove ns.arp_waiting ip;
      List.iter (fun k -> k mac) ks
  end

let arp_flush ?ip ns =
  match ip with
  | Some ip ->
    Hashtbl.remove ns.arp_tbl ip;
    fc_invalidate_neigh ns ip
  | None ->
    Hashtbl.reset ns.arp_tbl;
    fc_invalidate ns

let arp_input ns dev (a : Frame.arp_msg) =
  arp_learn ns a.Frame.sender_ip a.Frame.sender_mac;
  match a.Frame.op with
  | Frame.Request ->
    let holds_target =
      List.exists
        (fun (d, ip, _) -> d == dev && Ipv4.equal ip a.Frame.target_ip)
        ns.addr_list
    in
    if holds_target then begin
      let reply =
        { Frame.op = Frame.Reply; sender_mac = dev.Dev.mac;
          sender_ip = a.Frame.target_ip; target_mac = a.Frame.sender_mac;
          target_ip = a.Frame.sender_ip }
      in
      Dev.transmit dev
        (Frame.make ~traced:ns.trace_all ~src:dev.Dev.mac
           ~dst:a.Frame.sender_mac (Frame.Arp_body reply))
    end
  | Frame.Reply -> ()

(* ------------------------------------------------------------------ *)
(* IP output                                                           *)

(* Forward declaration: local delivery needs the demux defined below. *)
let ip_local_input_ref : (ns -> Packet.t -> unit) ref =
  ref (fun _ _ -> assert false)

(* Would this packet, if it looped straight back in, find a local socket?
   Used on reflector (Hostlo) devices to decide between local delivery and
   transmission into the multiplexed loopback. *)
let local_socket_matches ns (pkt : Packet.t) =
  match pkt.Packet.transport with
  | Packet.Udp { dst_port; _ } -> Hashtbl.mem ns.udp_binds dst_port
  | Packet.Tcp { seg; _ } ->
    Hashtbl.mem ns.conns
      (seg.Tcp_wire.dst_port, pkt.Packet.src, seg.Tcp_wire.src_port)
    || (seg.Tcp_wire.flags.Tcp_wire.syn
       && (not seg.Tcp_wire.flags.Tcp_wire.ack)
       && Hashtbl.mem ns.listeners seg.Tcp_wire.dst_port)
  | Packet.Icmp_echo { id; reply; _ } ->
    if reply then Hashtbl.mem ns.icmp_waiters id else true

(* [install] receives the complete transmit verdict when it is safe to
   replay for the rest of the flow: the postrouting chain either was
   skipped (conntrack-translated flow — the fast path re-translates every
   packet) or returned the packet physically unchanged, and the next hop's
   MAC is already resolved (an async ARP resolution installs nothing; the
   flow's next packet will).  Reflector devices resolve synchronously to
   broadcast, so their transmit verdict always installs; the caller is
   responsible for wrapping it with the socket/binding generations its
   delivery-vs-transmit split depends on. *)
let transmit_via ?(install = fun (_ : fc_tx) -> ()) ns ~(dev : Dev.t)
    ~next_hop pkt =
  let ctx = { Netfilter.in_dev = None; out_dev = Some dev.Dev.name } in
  let pkt0 = pkt in
  let pkt, translated = Conntrack.translate ns.ct_tbl pkt in
  let post =
    if translated then Some pkt
    else Netfilter.run ns.nf_tbl Netfilter.Postrouting ctx pkt
  in
  match post with
  | None -> note_drop ns `Filtered
  | Some pkt ->
    if dev.Dev.l2 = Dev.Reflector then begin
      if translated || pkt == pkt0 then
        install { fc_dev = dev; fc_next_hop = next_hop; fc_mac = Mac.broadcast };
      send_ip_frame ns dev ~dst_mac:Mac.broadcast pkt
    end
    else (
      match Hashtbl.find_opt ns.arp_tbl next_hop with
      | Some mac ->
        if translated || pkt == pkt0 then
          install { fc_dev = dev; fc_next_hop = next_hop; fc_mac = mac };
        send_ip_frame ns dev ~dst_mac:mac pkt
      | None ->
        arp_resolve ns dev next_hop (fun mac ->
            send_ip_frame ns dev ~dst_mac:mac pkt))

let deliver_locally ns pkt =
  Hop.service_prov ?prov:(Packet.prov pkt) ns.cs.local
    ~bytes:(Packet.len pkt) (fun () ->
      (match ns.lo with
      | Some lo ->
        Packet.record_hop pkt lo.Dev.name;
        Engine.trace_instant ns.eng ~cat:"hop" ~name:lo.Dev.name ()
      | None -> ());
      !ip_local_input_ref ns pkt)

let ip_output_slow ns ~install pkt =
  let ctx = Netfilter.no_ctx in
  let pkt0 = pkt in
  match Netfilter.run ns.nf_tbl Netfilter.Output ctx pkt with
  | None -> note_drop ns `Filtered
  | Some pkt -> (
    (* A mangled packet means the verdict keyed on the original flow does
       not describe what the chains do: never install it. *)
    let unmangled = pkt == pkt0 in
    if is_local_addr ns pkt.Packet.dst then begin
      match dev_holding_addr ns pkt.Packet.dst with
      | Some dev when dev.Dev.l2 = Dev.Reflector ->
        (* Hostlo: the destination is the pod's localhost; whether it is
           delivered here or leaves through the reflector depends on live
           socket state.  The verdict is cachable anyway, stamped with the
           socket-table and endpoint-binding generations (plus the SYN
           class for TCP, whose listener clause only matches opening
           SYNs); ICMP echo state churns per ping and stays uncached. *)
        let install_rf rf_v =
          if reflect_cachable pkt then
            install
              (Fc_out_reflect
                 { rf_dev = dev; rf_gen = reflector_gen ns dev;
                   rf_syn = pkt_open_syn pkt; rf_v })
        in
        if local_socket_matches ns pkt then begin
          if unmangled then install_rf Rf_local;
          deliver_locally ns pkt
        end
        else
          transmit_via ns
            ~install:(if unmangled then fun tx -> install_rf (Rf_tx tx)
                      else fun _ -> ())
            ~dev ~next_hop:pkt.Packet.dst pkt
      | Some _ | None ->
        if unmangled then install Fc_out_local;
        deliver_locally ns pkt
    end
    else
      match Route.lookup ns.rt pkt.Packet.dst with
      | None -> note_drop ns `No_route
      | Some e ->
        transmit_via ns
          ~install:(if unmangled then fun tx -> install (Fc_out_tx tx)
                    else fun _ -> ())
          ~dev:e.Route.dev
          ~next_hop:(Route.next_hop e pkt.Packet.dst) pkt)

let fc_no_install _ = ()

let fc_out_replay ns pkt (v : fc_out fc_verdict) =
  ns.fc_hits <- ns.fc_hits + 1;
  match v.fc_v with
  | Fc_out_local | Fc_out_reflect { rf_v = Rf_local; _ } ->
    deliver_locally ns pkt
  | Fc_out_tx tx | Fc_out_reflect { rf_v = Rf_tx tx; _ } ->
    (* Translation is per-packet work (it rewrites each packet of a
       bound flow); the chains stay skipped either because the flow is
       translated (Linux semantics) or because they were observed to
       be a no-op for this flow. *)
    let pkt, _ = Conntrack.translate ns.ct_tbl pkt in
    send_ip_frame ns tx.fc_dev ~dst_mac:tx.fc_mac pkt

let ip_output ns pkt =
  if not ns.fc_enabled then ip_output_slow ns ~install:fc_no_install pkt
  else
    let key = Conntrack.flow_of_packet pkt in
    let stamp = fc_stamp ns in
    match Hashtbl.find_opt ns.out_cache key with
    | Some v when v.fc_stamp = stamp && fc_out_live ns pkt v ->
      fc_out_replay ns pkt v
    | Some _ | None ->
      ns.fc_misses <- ns.fc_misses + 1;
      ip_output_slow ns pkt ~install:(fun v ->
          fc_install ns.out_cache key
            { fc_stamp = stamp; fc_ngen = fc_out_ngen ns v; fc_v = v })

(* ------------------------------------------------------------------ *)
(* TCP                                                                 *)

let conn_key_of c = (c.c_local_port, c.c_remote_ip, c.c_remote_port)

let tcp_register c =
  sock_mutated c.c_ns;
  Hashtbl.replace c.c_ns.conns (conn_key_of c) c

let tcp_unregister c =
  sock_mutated c.c_ns;
  Hashtbl.remove c.c_ns.conns (conn_key_of c)

let tcp_make_segment c ~flags ~seq ~len ~msgs =
  let seg =
    { Tcp_wire.src_port = c.c_local_port; dst_port = c.c_remote_port; seq;
      ack_seq = c.rcv_nxt; flags; window = rcvwnd_default; len; msgs }
  in
  Packet.make ~traced:c.c_ns.trace_all ?prov:(fresh_prov c.c_ns)
    ~src:c.c_local_ip ~dst:c.c_remote_ip
    (Packet.Tcp { seg; payload = Payload.raw len })

let tcp_xmit c pkt =
  c.pending_ack_segs <- 0;
  Hop.service_prov ?prov:(Packet.prov pkt)
    ~extra_ns:(nat_surcharge c.c_ns) c.c_ns.cs.tx ~bytes:(Packet.len pkt)
    (fun () -> ip_output c.c_ns pkt)

let flags_ack = { Tcp_wire.flags_none with Tcp_wire.ack = true }

let tcp_send_pure_ack c = tcp_xmit c (tcp_make_segment c ~flags:flags_ack ~seq:c.snd_nxt ~len:0 ~msgs:[])

let rec tcp_arm_rto c =
  if not c.rto_armed then begin
    c.rto_armed <- true;
    c.rto_una_at_arm <- c.snd_una;
    let delay = rto_initial * (1 lsl min 6 c.rto_backoff) in
    Engine.schedule c.c_ns.eng ~delay (fun () -> tcp_rto_fire c)
  end

and tcp_rto_fire c =
  c.rto_armed <- false;
  if c.c_state <> Closed then begin
    let outstanding =
      c.snd_una < c.snd_nxt || c.c_state = Syn_sent || c.c_state = Syn_rcvd
    in
    if outstanding then
      if c.snd_una = c.rto_una_at_arm then
        if c.rto_backoff >= tcp_max_retries then begin
          (* tcp_retries2-style abort: the peer has acknowledged nothing
             across the whole backoff ladder — it is gone (crashed VM,
             partitioned path).  Without this cap a connection into a
             dead endpoint retransmits forever and a run-to-quiescence
             drain never terminates. *)
          Nest_sim.Log.debug ~engine:c.c_ns.eng log_src (fun () ->
              Printf.sprintf "%s: aborting after %d retransmits (una=%d)"
                c.c_ns.ns_name c.c_retransmits c.snd_una);
          c.c_state <- Closed;
          tcp_unregister c;
          c.on_close_cb ()
        end
        else begin
        (* No progress since arming: retransmit. *)
        c.c_retransmits <- c.c_retransmits + 1;
        Nest_sim.Log.debug ~engine:c.c_ns.eng log_src (fun () ->
            Printf.sprintf "%s: RTO retransmit #%d (una=%d nxt=%d)"
              c.c_ns.ns_name c.c_retransmits c.snd_una c.snd_nxt);
        c.rto_backoff <- c.rto_backoff + 1;
        c.ssthresh <- max (2 * c.c_mss) ((c.snd_nxt - c.snd_una) / 2);
        c.cwnd <- init_cwnd_segments * c.c_mss;
        (match c.c_state with
        | Syn_sent ->
          tcp_xmit c
            (tcp_make_segment c
               ~flags:{ Tcp_wire.flags_none with Tcp_wire.syn = true }
               ~seq:0 ~len:0 ~msgs:[])
        | Syn_rcvd ->
          tcp_xmit c
            (tcp_make_segment c
               ~flags:{ flags_ack with Tcp_wire.syn = true }
               ~seq:0 ~len:0 ~msgs:[])
        | _ -> (
          match c.inflight with
          | [] -> ()
          | (seq, len, msgs) :: _ ->
            tcp_xmit c (tcp_make_segment c ~flags:flags_ack ~seq ~len ~msgs)));
        tcp_arm_rto c
      end
      else tcp_arm_rto c
  end

let rec tcp_pump c =
  if c.c_state = Established then begin
    let window = min c.cwnd c.peer_wnd in
    let inflight_bytes = c.snd_nxt - c.snd_una in
    if c.snd_nxt < c.send_off && inflight_bytes < window then begin
      let len =
        min (min c.c_mss (c.send_off - c.snd_nxt)) (window - inflight_bytes)
      in
      if len > 0 then begin
        let seg_end = c.snd_nxt + len in
        let msgs = ref [] in
        let continue = ref true in
        while !continue && not (Queue.is_empty c.tx_boundaries) do
          let off, _ = Queue.peek c.tx_boundaries in
          if off <= seg_end then msgs := Queue.pop c.tx_boundaries :: !msgs
          else continue := false
        done;
        let msgs = List.rev !msgs in
        let seq = c.snd_nxt in
        c.snd_nxt <- seg_end;
        c.inflight <- c.inflight @ [ (seq, len, msgs) ];
        tcp_arm_rto c;
        tcp_xmit c (tcp_make_segment c ~flags:flags_ack ~seq ~len ~msgs);
        tcp_pump c
      end
    end
  end

let tcp_deliver c =
  if c.rcv_nxt > c.delivered_off then begin
    let bytes = c.rcv_nxt - c.delivered_off in
    c.delivered_off <- c.rcv_nxt;
    let ready =
      Hashtbl.fold
        (fun off msg acc -> if off <= c.rcv_nxt then (off, msg) :: acc else acc)
        c.rcv_pending []
      |> List.sort compare
    in
    List.iter (fun (off, _) -> Hashtbl.remove c.rcv_pending off) ready;
    let msgs = List.map snd ready in
    (* The consuming application must be scheduled before its receive
       callback runs. *)
    Engine.schedule c.c_ns.eng ~delay:(wakeup_delay c.c_ns) (fun () ->
        c.on_receive ~bytes ~msgs)
  end

let tcp_schedule_delack c =
  if not c.delack_armed then begin
    c.delack_armed <- true;
    Engine.schedule c.c_ns.eng ~delay:delack_delay (fun () ->
        c.delack_armed <- false;
        if c.c_state <> Closed && c.pending_ack_segs > 0 then
          tcp_send_pure_ack c)
  end

let tcp_rx_data c (seg : Tcp_wire.t) =
  if seg.Tcp_wire.len > 0 then begin
    let seq = seg.Tcp_wire.seq and len = seg.Tcp_wire.len in
    List.iter
      (fun (off, msg) ->
        if off > c.delivered_off then Hashtbl.replace c.rcv_pending off msg)
      seg.Tcp_wire.msgs;
    if seq <= c.rcv_nxt && seq + len > c.rcv_nxt then begin
      c.rcv_nxt <- seq + len;
      (* Absorb any now-contiguous out-of-order segments. *)
      let rec drain () =
        match c.ooo with
        | (s, l, _) :: rest when s <= c.rcv_nxt ->
          if s + l > c.rcv_nxt then c.rcv_nxt <- s + l;
          c.ooo <- rest;
          drain ()
        | _ -> ()
      in
      drain ();
      tcp_deliver c;
      c.pending_ack_segs <- c.pending_ack_segs + 1;
      if c.pending_ack_segs >= ack_every_segments then tcp_send_pure_ack c
      else tcp_schedule_delack c
    end
    else if seq > c.rcv_nxt then begin
      (* Hole: stash and duplicate-ack. *)
      let entry = (seq, len, seg.Tcp_wire.msgs) in
      c.ooo <-
        List.sort (fun (a, _, _) (b, _, _) -> compare a b) (entry :: c.ooo);
      tcp_send_pure_ack c
    end
    else
      (* Entirely old data: re-ack. *)
      tcp_send_pure_ack c
  end

let tcp_fast_retransmit c =
  (* RFC 5681-style: three duplicate ACKs signal a lost segment; resend
     the first unacknowledged one and halve the congestion window. *)
  match c.inflight with
  | [] -> ()
  | (seq, len, msgs) :: _ ->
    c.c_retransmits <- c.c_retransmits + 1;
    c.ssthresh <- max (2 * c.c_mss) ((c.snd_nxt - c.snd_una) / 2);
    c.cwnd <- max (2 * c.c_mss) c.ssthresh;
    tcp_xmit c (tcp_make_segment c ~flags:flags_ack ~seq ~len ~msgs)

let tcp_rx_ack c (seg : Tcp_wire.t) =
  if seg.Tcp_wire.flags.Tcp_wire.ack then begin
    c.peer_wnd <- seg.Tcp_wire.window;
    let ack = seg.Tcp_wire.ack_seq in
    if ack = c.snd_una && seg.Tcp_wire.len = 0 && c.snd_nxt > c.snd_una
    then begin
      c.dup_acks <- c.dup_acks + 1;
      if c.dup_acks = 3 then tcp_fast_retransmit c
    end;
    if ack > c.snd_una then begin
      let acked = ack - c.snd_una in
      c.snd_una <- ack;
      c.rto_backoff <- 0;
      c.dup_acks <- 0;
      c.inflight <-
        List.filter (fun (seq, len, _) -> seq + len > ack) c.inflight;
      (* Slow start below ssthresh, linear growth above, capped at the
         advertised receive window. *)
      if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd + min acked c.c_mss
      else c.cwnd <- c.cwnd + max 1 (c.c_mss * c.c_mss / c.cwnd);
      if c.cwnd > rcvwnd_default then c.cwnd <- rcvwnd_default;
      if c.writable_waiting && c.send_off - c.snd_una <= c.c_sndbuf / 2
      then begin
        c.writable_waiting <- false;
        c.on_writable ()
      end;
      tcp_pump c
    end
  end

let tcp_close_conn c =
  if c.c_state <> Closed then begin
    c.c_state <- Closed;
    tcp_unregister c;
    c.on_close_cb ()
  end

let tcp_conn_input c (pkt : Packet.t) (seg : Tcp_wire.t) =
  ignore pkt;
  if seg.Tcp_wire.flags.Tcp_wire.rst then tcp_close_conn c
  else
    match c.c_state with
    | Syn_sent ->
      if seg.Tcp_wire.flags.Tcp_wire.syn && seg.Tcp_wire.flags.Tcp_wire.ack
      then begin
        c.c_state <- Established;
        c.peer_wnd <- seg.Tcp_wire.window;
        tcp_send_pure_ack c;
        c.on_established_cb c;
        tcp_pump c
      end
    | Syn_rcvd ->
      if seg.Tcp_wire.flags.Tcp_wire.ack then begin
        c.c_state <- Established;
        c.peer_wnd <- seg.Tcp_wire.window;
        c.on_established_cb c;
        tcp_rx_data c seg;
        tcp_pump c
      end
    | Established ->
      tcp_rx_ack c seg;
      tcp_rx_data c seg;
      if seg.Tcp_wire.flags.Tcp_wire.fin then begin
        (* Passive close: ack the FIN, send ours, await its ack. *)
        c.c_state <- Last_ack;
        tcp_xmit c
          (tcp_make_segment c
             ~flags:{ flags_ack with Tcp_wire.fin = true }
             ~seq:c.snd_nxt ~len:0 ~msgs:[])
      end
    | Fin_wait ->
      tcp_rx_ack c seg;
      tcp_rx_data c seg;
      if seg.Tcp_wire.flags.Tcp_wire.fin then begin
        tcp_send_pure_ack c;
        tcp_close_conn c
      end
    | Last_ack ->
      if seg.Tcp_wire.flags.Tcp_wire.ack then tcp_close_conn c
    | Closed -> ()

let alloc_ephemeral ns =
  let rec go tries =
    if tries > 16_384 then failwith "Stack: ephemeral ports exhausted";
    let p = ns.next_eph in
    ns.next_eph <- (if p >= 65_535 then ephemeral_base else p + 1);
    let busy =
      Hashtbl.mem ns.listeners p
      || Hashtbl.mem ns.udp_binds p
      || Hashtbl.fold (fun (lp, _, _) _ acc -> acc || lp = p) ns.conns false
    in
    if busy then go (tries + 1) else p
  in
  go 0

let mss_for ns dst =
  if is_local_addr ns dst then
    match dev_holding_addr ns dst with
    | Some d -> Dev.mss d
    | None -> loopback_mtu - 40
  else
    match Route.lookup ns.rt dst with
    | Some e -> Dev.mss e.Route.dev
    | None -> 1460

let src_for ns dst =
  if is_local_addr ns dst then dst
  else
    match Route.lookup ns.rt dst with
    | None -> Ipv4.any
    | Some e -> (
      match e.Route.src with
      | Some s -> s
      | None -> Option.value (addr_of_dev ns e.Route.dev) ~default:Ipv4.any)

let tcp_fresh_conn ns ~local_ip ~local_port ~remote_ip ~remote_port ~state =
  let mss = mss_for ns remote_ip in
  { c_ns = ns; c_local_ip = local_ip; c_local_port = local_port;
    c_remote_ip = remote_ip; c_remote_port = remote_port; c_mss = mss;
    c_state = state; snd_una = 0; snd_nxt = 0; send_off = 0;
    cwnd = init_cwnd_segments * mss; ssthresh = rcvwnd_default;
    peer_wnd = rcvwnd_default; tx_boundaries = Queue.create ();
    inflight = []; rto_armed = false; rto_una_at_arm = 0; rto_backoff = 0;
    dup_acks = 0; c_retransmits = 0; rcv_nxt = 0; delivered_off = 0; ooo = [];
    rcv_pending = Hashtbl.create 8; pending_ack_segs = 0;
    delack_armed = false;
    on_receive = (fun ~bytes:_ ~msgs:_ -> ());
    on_writable = (fun () -> ());
    writable_waiting = false;
    on_established_cb = (fun _ -> ());
    on_close_cb = (fun () -> ());
    c_sndbuf = sndbuf_default }

let tcp_send_rst ns (pkt : Packet.t) (seg : Tcp_wire.t) =
  ns.cnt.rst_sent <- ns.cnt.rst_sent + 1;
  let rst =
    { Tcp_wire.src_port = seg.Tcp_wire.dst_port;
      dst_port = seg.Tcp_wire.src_port; seq = seg.Tcp_wire.ack_seq;
      ack_seq = seg.Tcp_wire.seq + seg.Tcp_wire.len;
      flags = { Tcp_wire.flags_none with Tcp_wire.rst = true; ack = true };
      window = 0; len = 0; msgs = [] }
  in
  ip_output ns
    (Packet.make ~traced:ns.trace_all ?prov:(fresh_prov ns)
       ~src:pkt.Packet.dst ~dst:pkt.Packet.src
       (Packet.Tcp { seg = rst; payload = Payload.raw 0 }))

let tcp_input ns (in_dev : Dev.t option) (pkt : Packet.t) (seg : Tcp_wire.t) =
  let key = (seg.Tcp_wire.dst_port, pkt.Packet.src, seg.Tcp_wire.src_port) in
  match Hashtbl.find_opt ns.conns key with
  | Some c ->
    note_delivered ns;
    tcp_conn_input c pkt seg
  | None -> (
    match Hashtbl.find_opt ns.listeners seg.Tcp_wire.dst_port with
    | Some l
      when seg.Tcp_wire.flags.Tcp_wire.syn
           && not seg.Tcp_wire.flags.Tcp_wire.ack ->
      note_delivered ns;
      let c =
        tcp_fresh_conn ns ~local_ip:pkt.Packet.dst
          ~local_port:seg.Tcp_wire.dst_port ~remote_ip:pkt.Packet.src
          ~remote_port:seg.Tcp_wire.src_port ~state:Syn_rcvd
      in
      c.peer_wnd <- seg.Tcp_wire.window;
      c.on_established_cb <- l.l_on_accept;
      tcp_register c;
      tcp_xmit c
        (tcp_make_segment c
           ~flags:{ flags_ack with Tcp_wire.syn = true }
           ~seq:0 ~len:0 ~msgs:[]);
      tcp_arm_rto c
    | Some _ | None ->
      note_drop ns `No_socket;
      (* Reflector endpoints see every frame of the multiplexed loopback;
         fractions that don't own the flow must stay silent (§4.2). *)
      let on_reflector =
        match in_dev with
        | Some d -> d.Dev.l2 = Dev.Reflector
        | None -> false
      in
      if (not on_reflector) && not seg.Tcp_wire.flags.Tcp_wire.rst then
        tcp_send_rst ns pkt seg)

(* ------------------------------------------------------------------ *)
(* Demux and input                                                     *)

let icmp_input ns (pkt : Packet.t) ~id ~seq ~reply =
  if reply then begin
    match Hashtbl.find_opt ns.icmp_waiters id with
    | None -> note_drop ns `No_socket
    | Some (t0, k) ->
      Hashtbl.remove ns.icmp_waiters id;
      note_delivered ns;
      k ~rtt_ns:(Engine.now ns.eng - t0)
  end
  else begin
    note_delivered ns;
    let echo =
      Packet.make ~traced:ns.trace_all ?prov:(fresh_prov ns)
        ~src:pkt.Packet.dst ~dst:pkt.Packet.src
        (Packet.Icmp_echo { id; seq; reply = true })
    in
    ip_output ns echo
  end

let demux ns (in_dev : Dev.t option) (pkt : Packet.t) =
  (match ns.observer with None -> () | Some f -> f pkt);
  match pkt.Packet.transport with
  | Packet.Udp { src_port; dst_port; payload } -> (
    match Hashtbl.find_opt ns.udp_binds dst_port with
    | Some s when not s.u_closed ->
      note_delivered ns;
      let deliver () =
        if not s.u_closed then s.u_recv s ~src:(pkt.Packet.src, src_port) payload
      in
      if s.u_kernel then deliver ()
      else Engine.schedule ns.eng ~delay:(wakeup_delay ns) deliver
    | Some _ | None ->
      note_drop ns `No_socket;
      Nest_sim.Log.debug ~engine:ns.eng log_src (fun () ->
          Format.asprintf "%s: no UDP socket for %a" ns.ns_name Packet.pp pkt))
  | Packet.Tcp { seg; _ } -> tcp_input ns in_dev pkt seg
  | Packet.Icmp_echo { id; seq; reply } -> icmp_input ns pkt ~id ~seq ~reply

let ip_local_input ns pkt =
  let ctx = Netfilter.no_ctx in
  match Netfilter.run ns.nf_tbl Netfilter.Input ctx pkt with
  | None -> note_drop ns `Filtered
  | Some pkt -> demux ns None pkt

let () = ip_local_input_ref := ip_local_input

(* Input from a device, after the rx hop has been paid. *)
let ip_input_slow ns (dev : Dev.t) ~install (pkt : Packet.t) =
  let ctx = { Netfilter.in_dev = Some dev.Dev.name; out_dev = None } in
  let pkt0 = pkt in
  let pkt, translated = Conntrack.translate ns.ct_tbl pkt in
  let pre =
    if translated then Some pkt
    else Netfilter.run ns.nf_tbl Netfilter.Prerouting ctx pkt
  in
  match pre with
  | None -> note_drop ns `Filtered
  | Some pkt ->
    (* Installable only when the packet the verdict was derived from is
       the keyed flow itself: translated (the fast path re-translates) or
       passed through prerouting untouched. *)
    let unmangled = translated || pkt == pkt0 in
    if is_local_addr ns pkt.Packet.dst then begin
      let pkt1 = pkt in
      match Netfilter.run ns.nf_tbl Netfilter.Input ctx pkt with
      | None -> note_drop ns `Filtered
      | Some pkt ->
        if unmangled && pkt == pkt1 then install Fc_in_deliver;
        demux ns (Some dev) pkt
    end
    else if ns.fwd then begin
      let pkt1 = pkt in
      match Netfilter.run ns.nf_tbl Netfilter.Forward ctx pkt with
      | None -> note_drop ns `Filtered
      | Some pkt -> (
        let unmangled = unmangled && pkt == pkt1 in
        match Packet.decrement_ttl pkt with
        | None -> note_drop ns `Ttl
        | Some pkt -> (
          match Route.lookup ns.rt pkt.Packet.dst with
          | None -> note_drop ns `No_route
          | Some e ->
            ns.cnt.forwarded_pkts <- ns.cnt.forwarded_pkts + 1;
            Hop.service_prov ?prov:(Packet.prov pkt) ns.cs.forward
              ~bytes:(Packet.len pkt) (fun () ->
                transmit_via ns
                  ~install:
                    (if unmangled then fun tx -> install (Fc_in_forward tx)
                     else fun _ -> ())
                  ~dev:e.Route.dev
                  ~next_hop:(Route.next_hop e pkt.Packet.dst) pkt)))
    end
    else note_drop ns `No_route

let ip_input ns (dev : Dev.t) (pkt : Packet.t) =
  if not ns.fc_enabled then ip_input_slow ns dev ~install:fc_no_install pkt
  else
    let key = (dev.Dev.name, Conntrack.flow_of_packet pkt) in
    let stamp = fc_stamp ns in
    match Hashtbl.find_opt ns.in_cache key with
    | Some v when v.fc_stamp = stamp && fc_in_live ns v -> (
      ns.fc_hits <- ns.fc_hits + 1;
      let pkt, _ = Conntrack.translate ns.ct_tbl pkt in
      match v.fc_v with
      | Fc_in_deliver -> demux ns (Some dev) pkt
      | Fc_in_forward tx -> (
        match Packet.decrement_ttl pkt with
        | None -> note_drop ns `Ttl
        | Some pkt ->
          ns.cnt.forwarded_pkts <- ns.cnt.forwarded_pkts + 1;
          Hop.service_prov ?prov:(Packet.prov pkt) ns.cs.forward
            ~bytes:(Packet.len pkt) (fun () ->
              (* Second translation mirrors the slow path's transmit_via
                 (the forwarded flow may carry its own binding). *)
              let pkt, _ = Conntrack.translate ns.ct_tbl pkt in
              send_ip_frame ns tx.fc_dev ~dst_mac:tx.fc_mac pkt)))
    | Some _ | None ->
      ns.fc_misses <- ns.fc_misses + 1;
      ip_input_slow ns dev pkt ~install:(fun v ->
          fc_install ns.in_cache key
            { fc_stamp = stamp; fc_ngen = fc_in_ngen ns v; fc_v = v })

let dev_rx ns dev frame =
  (* L2 address filter. *)
  let accept =
    Frame.is_broadcast frame
    || Mac.equal frame.Frame.dst dev.Dev.mac
    || dev.Dev.l2 = Dev.Reflector
  in
  if accept then begin
    match frame.Frame.body with
    | Frame.Arp_body a ->
      Hop.service ns.cs.rx ~bytes:(Frame.len frame) (fun () ->
          arp_input ns dev a)
    | Frame.Ipv4_body pkt ->
      Hop.service_prov ?prov:(Frame.prov frame) ~extra_ns:(nat_surcharge ns)
        ns.cs.rx ~bytes:(Frame.len frame)
        (fun () -> ip_input ns dev pkt)
  end

(* ------------------------------------------------------------------ *)
(* Namespace construction and device management                        *)

let add_addr ns dev ip cidr =
  ns.addr_list <- ns.addr_list @ [ (dev, ip, cidr) ];
  fc_invalidate ns;
  Route.add ns.rt ~dst:cidr ~dev ~src:ip ()

let attach ns dev =
  ns.devs <- ns.devs @ [ dev ];
  Dev.set_rx dev (fun frame -> dev_rx ns dev frame)

let detach ns dev =
  ns.devs <- List.filter (fun d -> d != dev) ns.devs;
  ns.addr_list <- List.filter (fun (d, _, _) -> d != dev) ns.addr_list;
  fc_invalidate ns;
  Route.remove_dev ns.rt dev;
  Dev.clear_rx dev

let create engine ~name ~costs ?(with_loopback = true) ?rng () =
  let cnt =
    { delivered = 0; forwarded_pkts = 0; dropped_no_socket = 0;
      dropped_no_route = 0; dropped_filtered = 0; dropped_ttl = 0;
      rst_sent = 0 }
  in
  let ns =
    { ns_name = name; eng = engine; cs = costs; nf_tbl = Netfilter.create ();
      ct_tbl = Conntrack.create (); rt = Route.create (); devs = [];
      addr_list = []; arp_tbl = Hashtbl.create 16;
      arp_waiting = Hashtbl.create 4; udp_binds = Hashtbl.create 16;
      listeners = Hashtbl.create 8; conns = Hashtbl.create 32;
      icmp_waiters = Hashtbl.create 4; next_eph = ephemeral_base;
      next_icmp_id = 1; fwd = false; trace_all = false; prov_all = false;
      prov_tick = 0; cnt; lo = None; observer = None;
      ns_rng =
        Nest_sim.Prng.split
          (match rng with Some r -> r | None -> Engine.rng engine);
      fc_enabled = default_flow_cache (); fc_gen = 0;
      sock_gen = 0; neigh_gen = Hashtbl.create 16;
      out_cache = Hashtbl.create 64; in_cache = Hashtbl.create 64;
      fc_hits = 0; fc_misses = 0; fc_inval_full = 0; fc_inval_scoped = 0;
      fc_seen_rt = 0; fc_seen_nf = 0; fc_seen_ct = 0 }
  in
  (* Each namespace owns its costs record (Kernel_costs.stack_costs builds
     fresh hops per call), so its hops can carry attribution names. *)
  Hop.set_name costs.tx (name ^ ":tx");
  Hop.set_name costs.rx (name ^ ":rx");
  Hop.set_name costs.forward (name ^ ":fwd");
  Hop.set_name costs.local (name ^ ":lo");
  Hop.set_name costs.syscall (name ^ ":syscall");
  if with_loopback then begin
    let lo =
      Dev.create ~mtu:loopback_mtu ~name:(name ^ ":lo") ~mac:(Mac.of_int 0) ()
    in
    ns.lo <- Some lo;
    attach ns lo;
    add_addr ns lo Ipv4.localhost lo_subnet
  end;
  (* Export the datapath counters on the engine's registry.  Probes read
     the live [cnt] record at snapshot time, so there is a single source
     of truth and no double accounting. *)
  let m = Engine.metrics engine in
  let reg field f =
    Metrics.gauge_probe m (Printf.sprintf "ns.%s.%s" name field) (fun () ->
        float_of_int (f cnt))
  in
  reg "delivered" (fun c -> c.delivered);
  reg "forwarded" (fun c -> c.forwarded_pkts);
  reg "dropped_no_socket" (fun c -> c.dropped_no_socket);
  reg "dropped_no_route" (fun c -> c.dropped_no_route);
  reg "dropped_filtered" (fun c -> c.dropped_filtered);
  reg "dropped_ttl" (fun c -> c.dropped_ttl);
  reg "rst_sent" (fun c -> c.rst_sent);
  Metrics.gauge_probe m
    (Printf.sprintf "ns.%s.flow_cache_hits" name)
    (fun () -> float_of_int ns.fc_hits);
  Metrics.gauge_probe m
    (Printf.sprintf "ns.%s.flow_cache_misses" name)
    (fun () -> float_of_int ns.fc_misses);
  Metrics.gauge_probe m
    (Printf.sprintf "fc.invalidate.%s.full" name)
    (fun () -> float_of_int ns.fc_inval_full);
  Metrics.gauge_probe m
    (Printf.sprintf "fc.invalidate.%s.scoped" name)
    (fun () -> float_of_int ns.fc_inval_scoped);
  ns

(* ------------------------------------------------------------------ *)
(* Socket APIs                                                         *)

module Udp = struct
  type sock = udp_sock

  let bind ns ~port ?(kernel = false) recv =
    let port = if port = 0 then alloc_ephemeral ns else port in
    if Hashtbl.mem ns.udp_binds port then
      failwith
        (Printf.sprintf "Stack.Udp.bind: port %d busy in %s" port ns.ns_name);
    let s =
      { u_ns = ns; u_port = port; u_kernel = kernel; u_recv = recv;
        u_closed = false }
    in
    Hashtbl.replace ns.udp_binds port s;
    sock_mutated ns;
    s

  let sendto ?prov s ~dst ~dst_port payload =
    let ns = s.u_ns in
    let src = src_for ns dst in
    (* [prov] lets a tunnel (vxlan) thread the inner frame's record onto
       the outer datagram; otherwise a record is minted when the
       namespace has provenance enabled. *)
    let prov = match prov with Some _ as p -> p | None -> fresh_prov ns in
    let pkt =
      Packet.make ~traced:ns.trace_all ?prov ~src ~dst
        (Packet.Udp { src_port = s.u_port; dst_port; payload })
    in
    Hop.service_prov ?prov:(Packet.prov pkt)
      ~extra_ns:(ns.cs.syscall.Hop.fixed_ns + nat_surcharge ns) ns.cs.tx
      ~bytes:(Packet.len pkt)
      (fun () -> ip_output ns pkt)

  (* A pinned destination for a socket: memoizes the source-address
     selection, the syscall/NAT surcharge, and (once warm) the composed
     egress verdict, all validated against the namespace stamp so a warm
     send is indistinguishable from [sendto] — same packet bytes, same
     hop costs, same delivery-time table consultation. *)
  type flow = {
    uf_sock : sock;
    uf_dst : Ipv4.t;
    uf_dport : int;
    mutable uf_stamp : int;
    mutable uf_src : Ipv4.t;
    mutable uf_extra_ns : int;
    mutable uf_v : fc_out fc_verdict option;
  }

  let flow s ~dst ~dst_port =
    { uf_sock = s; uf_dst = dst; uf_dport = dst_port; uf_stamp = min_int;
      uf_src = dst; uf_extra_ns = 0; uf_v = None }

  let flow_send ?prov uf payload =
    let s = uf.uf_sock in
    let ns = s.u_ns in
    if not ns.fc_enabled then
      sendto ?prov s ~dst:uf.uf_dst ~dst_port:uf.uf_dport payload
    else begin
      let stamp = fc_stamp ns in
      if uf.uf_stamp <> stamp then begin
        (* Same lookups [sendto] performs at send time, revalidated by
           the stamp that already covers route and netfilter state. *)
        uf.uf_src <- src_for ns uf.uf_dst;
        uf.uf_extra_ns <- ns.cs.syscall.Hop.fixed_ns + nat_surcharge ns;
        uf.uf_stamp <- stamp;
        uf.uf_v <- None
      end;
      let prov = match prov with Some _ as p -> p | None -> fresh_prov ns in
      let pkt =
        Packet.make ~traced:ns.trace_all ?prov ~src:uf.uf_src ~dst:uf.uf_dst
          (Packet.Udp { src_port = s.u_port; dst_port = uf.uf_dport; payload })
      in
      Hop.service_prov ?prov:(Packet.prov pkt) ~extra_ns:uf.uf_extra_ns
        ns.cs.tx ~bytes:(Packet.len pkt)
        (fun () ->
          (* Consult at delivery time, exactly like [ip_output]: table
             state may have moved while the datagram sat in the tx hop. *)
          match uf.uf_v with
          | Some v
            when ns.fc_enabled && v.fc_stamp = fc_stamp ns
                 && fc_out_live ns pkt v ->
            fc_out_replay ns pkt v
          | _ ->
            ip_output ns pkt;
            if ns.fc_enabled then
              uf.uf_v <-
                Hashtbl.find_opt ns.out_cache (Conntrack.flow_of_packet pkt))
    end

  let close s =
    s.u_closed <- true;
    sock_mutated s.u_ns;
    Hashtbl.remove s.u_ns.udp_binds s.u_port

  let port s = s.u_port
  let ns_of s = s.u_ns
end

module Tcp = struct
  type conn = tcp_conn

  let listen ns ~port ~on_accept =
    if Hashtbl.mem ns.listeners port then
      failwith
        (Printf.sprintf "Stack.Tcp.listen: port %d busy in %s" port ns.ns_name);
    Hashtbl.replace ns.listeners port { l_on_accept = on_accept };
    sock_mutated ns

  let unlisten ns ~port =
    sock_mutated ns;
    Hashtbl.remove ns.listeners port

  let connect ns ~dst ~port ?src ~on_established ?(on_close = fun () -> ()) () =
    let local_ip =
      match src with Some s -> s | None -> src_for ns dst
    in
    let local_port = alloc_ephemeral ns in
    let c =
      tcp_fresh_conn ns ~local_ip ~local_port ~remote_ip:dst ~remote_port:port
        ~state:Syn_sent
    in
    c.on_established_cb <- on_established;
    c.on_close_cb <- on_close;
    tcp_register c;
    tcp_xmit c
      (tcp_make_segment c
         ~flags:{ Tcp_wire.flags_none with Tcp_wire.syn = true }
         ~seq:0 ~len:0 ~msgs:[]);
    tcp_arm_rto c;
    c

  let send c ~size ?msg () =
    if c.c_state = Closed then false
    else if c.send_off - c.snd_una + size > c.c_sndbuf then begin
      c.writable_waiting <- true;
      false
    end
    else begin
      c.send_off <- c.send_off + size;
      (match msg with
      | Some m -> Queue.push (c.send_off, m) c.tx_boundaries
      | None -> ());
      Hop.service c.c_ns.cs.syscall ~bytes:size (fun () -> tcp_pump c);
      true
    end

  let set_on_receive c f = c.on_receive <- f
  let set_on_writable c f = c.on_writable <- f
  let set_on_close c f = c.on_close_cb <- f

  let close c =
    match c.c_state with
    | Closed -> ()
    | Syn_sent | Syn_rcvd ->
      c.c_state <- Closed;
      tcp_unregister c
    | Established ->
      c.c_state <- Fin_wait;
      tcp_xmit c
        (tcp_make_segment c
           ~flags:{ flags_ack with Tcp_wire.fin = true }
           ~seq:c.snd_nxt ~len:0 ~msgs:[])
    | Fin_wait | Last_ack -> ()

  let sendq_bytes c = c.send_off - c.snd_una
  let sndbuf_limit c = c.c_sndbuf
  let is_established c = c.c_state = Established
  let is_closed c = c.c_state = Closed
  let local_endpoint c = (c.c_local_ip, c.c_local_port)
  let remote_endpoint c = (c.c_remote_ip, c.c_remote_port)
  let ns_of c = c.c_ns
  let bytes_received c = c.delivered_off
  let bytes_acked c = c.snd_una
  let retransmits c = c.c_retransmits
end

let ping ns ~dst ~on_reply =
  let id = ns.next_icmp_id in
  ns.next_icmp_id <- ns.next_icmp_id + 1;
  Hashtbl.replace ns.icmp_waiters id (Engine.now ns.eng, on_reply);
  let pkt =
    Packet.make ~traced:ns.trace_all ?prov:(fresh_prov ns)
      ~src:(src_for ns dst) ~dst
      (Packet.Icmp_echo { id; seq = 1; reply = false })
  in
  Hop.service_prov ?prov:(Packet.prov pkt) ns.cs.tx ~bytes:(Packet.len pkt)
    (fun () -> ip_output ns pkt)
