(** A costed processing hop: the association of an execution context with a
    per-packet cost model.

    Every device crossing in the simulator is a [Hop.t]: servicing a frame
    occupies the hop's {!Nest_sim.Exec.t} for [fixed_ns + per_byte_ns × len]
    nanoseconds, charging the context's CPU account.  Throughput limits and
    queueing latency both emerge from this single mechanism.

    Hops are also the unit of latency attribution: {!service_prov} stamps
    an optional {!Nest_sim.Provenance.t} with (enqueue, start, end) for the
    crossing and feeds the per-hop [hop.<name>.queue_ns] /
    [hop.<name>.service_ns] histograms in the engine's metrics registry. *)

type t = {
  exec : Nest_sim.Exec.t;
  fixed_ns : int;
  per_byte_ns : float;
  charge_as : Nest_sim.Cpu_account.category option;
      (** Overrides the context's default accounting category. *)
  mutable hop_name : string;
      (** [""] = anonymous: attribution falls back to the exec name. *)
  mutable hists : (Nest_sim.Hdr.t * Nest_sim.Hdr.t) option;
      (** Lazily resolved (queue_ns, service_ns) histograms. *)
}

val make :
  ?charge_as:Nest_sim.Cpu_account.category ->
  ?per_byte_ns:float ->
  ?name:string ->
  Nest_sim.Exec.t ->
  fixed_ns:int ->
  t

val name : t -> string
(** The attribution name: [hop_name] if set, else the exec's name. *)

val set_name : t -> string -> unit
(** Also invalidates the cached histograms. *)

val cost_ns : t -> bytes:int -> int

val service : t -> bytes:int -> (unit -> unit) -> unit
(** [service t ~bytes k] queues the work on the hop's context and runs [k]
    on completion. *)

val service_prov :
  ?prov:Nest_sim.Provenance.t ->
  ?enq:Nest_sim.Time.ns ->
  ?extra_ns:int ->
  ?tail_ns:int ->
  t ->
  bytes:int ->
  (unit -> unit) ->
  unit
(** Timed {!service}.  With [prov = None] this is exactly [service] plus
    [extra_ns] of cost — no allocation, no clock reads.  With a record:
    [enq] overrides the enqueue timestamp when the packet was handed off
    strictly before this call runs (e.g. after a virtio kick delay);
    [extra_ns] adds cost outside the hop's rate (syscall overhead, NAT
    surcharges); [tail_ns] extends the recorded completion past the CPU
    finish (e.g. an interrupt-notify delay) without charging CPU — the
    continuation still runs at CPU finish, and callers scheduling a tail
    delay themselves get it attributed here. *)

val free : Nest_sim.Engine.t -> t
(** A zero-cost hop on a private context — useful in unit tests. *)
