(** Per-namespace IP stack: the kernel network path of a host, a VM, or a
    container/pod network namespace.

    A namespace owns devices, addresses, a routing table, netfilter chains
    with conntrack, an ARP cache, and socket tables.  All processing is
    costed through the {!costs} hops supplied at creation, so namespaces
    belonging to the same kernel (e.g. a VM's root namespace and its pods'
    namespaces) share execution contexts and therefore contend for the
    same vCPU time — the crux of the paper's CPU analysis.

    Reflector devices (loopback-mode TAP endpoints, i.e. Hostlo) get
    special treatment: traffic to a local address carried by a reflector
    is first offered to local sockets and otherwise transmitted out of the
    device with a broadcast destination MAC; inbound reflected frames that
    match no socket are dropped silently (no TCP reset), since every VM of
    the pod sees every reflected frame. *)

type costs = {
  tx : Hop.t;       (** Process-context transmit path, per segment/datagram. *)
  rx : Hop.t;       (** Softirq receive path, per packet. *)
  forward : Hop.t;  (** IP forwarding, per routed packet. *)
  nat : Hop.t;      (** Netfilter surcharge when hooks are armed. *)
  nat_per_rule_ns : int;  (** Extra surcharge per installed rule. *)
  local : Hop.t;    (** Loopback (local) delivery, per packet. *)
  syscall : Hop.t;  (** Per application send call. *)
  wakeup_delay_ns : int;
      (** Scheduler latency before application receive callbacks run —
          pure delay, charged to no context. *)
}

type ns

type ns_counters = {
  mutable delivered : int;       (** Packets handed to local sockets. *)
  mutable forwarded_pkts : int;
  mutable dropped_no_socket : int;
  mutable dropped_no_route : int;
  mutable dropped_filtered : int;
  mutable dropped_ttl : int;
  mutable rst_sent : int;
}

val create :
  Nest_sim.Engine.t ->
  name:string ->
  costs:costs ->
  ?with_loopback:bool ->
  ?rng:Nest_sim.Prng.t ->
  unit ->
  ns
(** [with_loopback] (default true) installs a standard [lo] device holding
    127.0.0.1/8.  Pod fractions backed by Hostlo pass [false] and give the
    Hostlo endpoint the localhost address instead.  [rng] is the stream the
    namespace splits its jitter stream from (default: the engine root) —
    sharded scenarios pass a per-node stream so draws are identical however
    the nodes are partitioned onto engines. *)

val name : ns -> string
val engine : ns -> Nest_sim.Engine.t
val nf : ns -> Netfilter.t
val ct : ns -> Conntrack.t
val routes : ns -> Route.t
val counters : ns -> ns_counters
val costs : ns -> costs

val attach : ns -> Dev.t -> unit
(** The stack becomes the device's consumer. *)

val detach : ns -> Dev.t -> unit
val devices : ns -> Dev.t list
val find_dev : ns -> string -> Dev.t option

val add_addr : ns -> Dev.t -> Ipv4.t -> Ipv4.cidr -> unit
(** Assigns an address and installs the connected (on-link) route. *)

val addrs : ns -> (Dev.t * Ipv4.t * Ipv4.cidr) list
val addr_of_dev : ns -> Dev.t -> Ipv4.t option
val is_local_addr : ns -> Ipv4.t -> bool

val set_ip_forward : ns -> bool -> unit
val set_trace_all : ns -> bool -> unit
(** When set, every frame originated by this namespace carries a hop
    trace (see {!Frame.hops}). *)

val set_provenance_all : ns -> bool -> unit
(** When set, every packet originated by this namespace carries a
    latency-provenance record (see {!Nest_sim.Provenance}): each hop on
    its path appends timed queue/service attribution and feeds the
    per-hop [hop.<name>.queue_ns] / [hop.<name>.service_ns] histograms.
    Off (the default), the datapath pays nothing. *)

val arp_cache : ns -> (Ipv4.t * Mac.t) list

val arp_flush : ?ip:Ipv4.t -> ns -> unit
(** Expires one neighbour entry ([ip]) or the whole ARP cache, as a
    neighbour-table timeout would; invalidates dependent flow-cache
    verdicts. *)

val garp : ns -> Dev.t -> Ipv4.t -> unit
(** Gratuitous ARP: broadcast announce of [ip] at [dev]'s MAC (as
    [arping -A] after assigning an address).  Corrects stale neighbour
    entries segment-wide when an address is reused with a new MAC —
    e.g. an IPAM lease freed by crash-time GC and re-allocated to a
    replacement pod. *)

(** {2 Flow cache}

    ONCache-style per-namespace memoization of the complete forwarding
    verdict — egress device, next hop, resolved MAC, netfilter no-op —
    keyed by flow tuple (plus ingress device on the input path).
    Verdicts are stamped with the sum of the route/netfilter/conntrack
    generation counters plus a namespace-local one bumped on
    address/device/forwarding-flag mutation, so any table change
    atomically invalidates every dependent verdict.  Summing is sound
    because each component is monotonic (asserted in debug builds): the
    sum can only repeat a value if every component is unchanged.  A
    saturation guard disables the cache outright should the sum ever
    approach [max_int].

    Two finer-grained generations avoid storm-wide flushes: a neighbour
    MAC move bumps only that destination's generation (verdicts embed
    the generation of the next hop they resolved), and socket-table
    mutations bump a socket generation consulted only by reflector
    (Hostlo) verdicts, whose local-deliver-vs-reflect decision depends
    on live socket state.  Reflector endpoint devices additionally
    carry a binding generation ({!Dev.bump_binding}) bumped when a
    device is claimed or rebound, so failover cannot serve a dead VM's
    binding.

    Per-packet work (conntrack translation, TTL, hop costing, delivery
    counters) still runs on cached packets: simulated time and results
    are identical with the cache on or off.  The cache assumes
    netfilter rules are flow-stable — a rule's match/verdict may depend
    on the flow tuple and devices but not on per-packet payload — which
    holds for every rule this repository installs (and for iptables NAT
    generally). *)

val set_flow_cache : ns -> bool -> unit
(** Default on; disabling also empties both cache tables. *)

val flow_cache_enabled : ns -> bool

val set_default_flow_cache : bool -> unit
(** Process-wide default applied to namespaces created afterwards —
    lets a harness run a whole deployment mechanisms-off without
    plumbing a flag through every construction site.  Set it before
    building the world; existing namespaces are unaffected. *)

val default_flow_cache : unit -> bool

val flow_cache_stats : ns -> int * int
(** [(hits, misses)] of the fast path since namespace creation (also
    exported as [ns.<name>.flow_cache_hits]/[..._misses] gauges). *)

val flow_cache_invalidations : ns -> int * int
(** [(full, scoped)] invalidation counts: full flushes (address/device/
    route-table mutations, whole-cache ARP flush) versus scoped
    per-neighbour invalidations (MAC moves, single-entry ARP expiry).
    Also exported as [fc.invalidate.<name>.full]/[.scoped] gauges — a
    GARP storm shows up as a scoped burst with the hit rate intact. *)

val set_observer : ns -> (Packet.t -> unit) option -> unit
(** Debug tap invoked for every packet delivered to a local socket in
    this namespace (after NAT reversal), e.g. to read {!Packet.hops}. *)

val loopback_dev : ns -> Dev.t option

(** Datagram sockets. *)
module Udp : sig
  type sock

  val bind :
    ns ->
    port:int ->
    ?kernel:bool ->
    (sock -> src:Ipv4.t * int -> Payload.t -> unit) ->
    sock
  (** Raises [Failure] if the port is taken in this namespace.
      [kernel] (default false) marks in-kernel consumers (e.g. a VXLAN
      VTEP) whose delivery skips the application wakeup delay. *)

  val sendto :
    ?prov:Nest_sim.Provenance.t -> sock -> dst:Ipv4.t -> dst_port:int ->
    Payload.t -> unit
  (** [prov] forces a specific provenance record onto the datagram — a
      tunnel threads the inner frame's record onto the outer packet this
      way; by default a record is minted iff {!set_provenance_all} is
      on. *)

  type flow
  (** A socket pinned to one destination: memoizes source-address
      selection, the send-time cost surcharge, and the composed egress
      verdict, all stamp-validated so {!flow_send} is byte- and
      time-identical to {!sendto} — it only skips re-deriving state the
      stamp proves unchanged. *)

  val flow : sock -> dst:Ipv4.t -> dst_port:int -> flow

  val flow_send : ?prov:Nest_sim.Provenance.t -> flow -> Payload.t -> unit
  (** Like {!sendto} on the pinned destination, via the composed fast
      path when the namespace flow cache is enabled (plain [sendto]
      otherwise). *)

  val close : sock -> unit
  val port : sock -> int
  val ns_of : sock -> ns
end

(** Stream sockets. *)
module Tcp : sig
  type conn

  val listen : ns -> port:int -> on_accept:(conn -> unit) -> unit
  val unlisten : ns -> port:int -> unit

  val connect :
    ns ->
    dst:Ipv4.t ->
    port:int ->
    ?src:Ipv4.t ->
    on_established:(conn -> unit) ->
    ?on_close:(unit -> unit) ->
    unit ->
    conn

  val send : conn -> size:int -> ?msg:Payload.app_msg -> unit -> bool
  (** Queues [size] application bytes (optionally completing message
      [msg]); returns [false] — nothing queued — when the send buffer is
      full, in which case the caller should wait for {!set_on_writable}. *)

  val set_on_receive : conn -> (bytes:int -> msgs:Payload.app_msg list -> unit) -> unit
  val set_on_writable : conn -> (unit -> unit) -> unit
  val set_on_close : conn -> (unit -> unit) -> unit
  val close : conn -> unit

  val sendq_bytes : conn -> int
  (** Bytes accepted from the application and not yet acknowledged. *)

  val sndbuf_limit : conn -> int
  val is_established : conn -> bool
  val is_closed : conn -> bool
  val local_endpoint : conn -> Ipv4.t * int
  val remote_endpoint : conn -> Ipv4.t * int
  val ns_of : conn -> ns
  val bytes_received : conn -> int
  val bytes_acked : conn -> int
  val retransmits : conn -> int
end

val ping :
  ns -> dst:Ipv4.t -> on_reply:(rtt_ns:Nest_sim.Time.ns -> unit) -> unit
(** ICMP echo; the reply callback fires at most once. *)
