(** Link impairment (tc-netem style): probabilistic loss, added delay
    with jitter, and a bounded egress queue with tail drop.

    [shape] wraps a device's egress: every transmitted frame first passes
    the impairment stage.  Apply it to both ends of a link to impair both
    directions.  Used by the test suite to exercise TCP loss recovery and
    available to experiments for sensitivity studies. *)

type t

val shape :
  Nest_sim.Engine.t ->
  Dev.t ->
  ?loss:float ->
  ?delay_ns:Nest_sim.Time.ns ->
  ?jitter_ns:Nest_sim.Time.ns ->
  ?limit:int ->
  rng:Nest_sim.Prng.t ->
  unit ->
  t
(** [loss] is the per-frame drop probability (default 0); [delay_ns] an
    added one-way delay (default 0); [jitter_ns] uniform extra jitter on
    it; [limit] the maximum frames in flight through the shaper, with
    tail drop (default unbounded). *)

val remove : t -> unit
(** Restores the device's original egress. *)

val passed : t -> int
val dropped_loss : t -> int
val dropped_overflow : t -> int

(** {2 Named link profiles}

    The degraded-network matrix (n3x-style tc profiles): each profile
    bundles one-way delay, jitter, loss probability and a queue limit
    under a stable name, usable both for {!shape} on a device and as
    per-link wire latencies in the [fleet]/[cluster] scenarios (the
    profile's [p_delay] becomes the conservative lookahead; jitter and
    loss are applied per datagram by the wire's impairment stage). *)

type profile = {
  p_name : string;
  p_delay : Nest_sim.Time.ns;   (** One-way added delay. *)
  p_jitter : Nest_sim.Time.ns;  (** Uniform extra jitter on top. *)
  p_loss : float;               (** Per-frame drop probability. *)
  p_limit : int option;         (** Egress queue bound (tail drop). *)
}

val profiles : profile list
(** [datacenter] (25 µs ± 5 µs, lossless), [wan] (10 ms ± 1 ms, 0.1 %),
    [edge] (30 ms ± 5 ms, 0.5 %), [lossy] (5 ms ± 2 ms, 2 %, limit 64). *)

val profile : string -> profile option
val profile_names : unit -> string list

val shape_profile :
  Nest_sim.Engine.t -> Dev.t -> profile -> rng:Nest_sim.Prng.t -> t
(** {!shape} with the profile's parameters. *)
