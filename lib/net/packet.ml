type transport =
  | Udp of { src_port : int; dst_port : int; payload : Payload.t }
  | Tcp of { seg : Tcp_wire.t; payload : Payload.t }
  | Icmp_echo of { id : int; seq : int; reply : bool }

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  transport : transport;
  trace : string list ref option;
  prov : Nest_sim.Provenance.t option;
}

let make ?(traced = false) ?prov ~src ~dst transport =
  { src; dst; ttl = 64; transport;
    trace = (if traced then Some (ref []) else None); prov }

let hops t = match t.trace with None -> [] | Some r -> List.rev !r

let record_hop t hop =
  match t.trace with None -> () | Some r -> r := hop :: !r

let prov t = t.prov

let ip_header_bytes = 20
let udp_header_bytes = 8
let icmp_bytes = 8

let len t =
  ip_header_bytes
  +
  match t.transport with
  | Udp { payload; _ } -> udp_header_bytes + Payload.size payload
  | Tcp { seg; _ } -> Tcp_wire.header_bytes + seg.Tcp_wire.len
  | Icmp_echo _ -> icmp_bytes

let ports t =
  match t.transport with
  | Udp { src_port; dst_port; _ } -> Some (src_port, dst_port)
  | Tcp { seg; _ } -> Some (seg.Tcp_wire.src_port, seg.Tcp_wire.dst_port)
  | Icmp_echo _ -> None

let with_addrs ?src ?dst t =
  { t with
    src = Option.value src ~default:t.src;
    dst = Option.value dst ~default:t.dst }

let with_ports ?src_port ?dst_port t =
  match t.transport with
  | Icmp_echo _ -> t
  | Udp u ->
    { t with
      transport =
        Udp
          { u with
            src_port = Option.value src_port ~default:u.src_port;
            dst_port = Option.value dst_port ~default:u.dst_port } }
  | Tcp { seg; payload } ->
    let seg =
      { seg with
        Tcp_wire.src_port = Option.value src_port ~default:seg.Tcp_wire.src_port;
        dst_port = Option.value dst_port ~default:seg.Tcp_wire.dst_port }
    in
    { t with transport = Tcp { seg; payload } }

let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let proto_name t =
  match t.transport with
  | Udp _ -> "udp"
  | Tcp _ -> "tcp"
  | Icmp_echo _ -> "icmp"

let pp fmt t =
  match ports t with
  | Some (sp, dp) ->
    Format.fprintf fmt "%s %a:%d > %a:%d len=%d" (proto_name t) Ipv4.pp t.src
      sp Ipv4.pp t.dst dp (len t)
  | None ->
    Format.fprintf fmt "%s %a > %a len=%d" (proto_name t) Ipv4.pp t.src
      Ipv4.pp t.dst (len t)
