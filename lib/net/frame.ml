type arp_op = Request | Reply

type arp_msg = {
  op : arp_op;
  sender_mac : Mac.t;
  sender_ip : Ipv4.t;
  target_mac : Mac.t;
  target_ip : Ipv4.t;
}

type body = Ipv4_body of Packet.t | Arp_body of arp_msg

type t = {
  src : Mac.t;
  dst : Mac.t;
  body : body;
  trace : string list ref option;
  prov : Nest_sim.Provenance.t option;
}

let make ?(traced = false) ?prov ~src ~dst body =
  (* IP frames share the packet's trace (and provenance record) so the
     path survives NAT rewrites and re-framing at every L3 hop. *)
  let trace =
    match body with
    | Ipv4_body p when p.Packet.trace <> None -> p.Packet.trace
    | Ipv4_body _ | Arp_body _ -> if traced then Some (ref []) else None
  in
  let prov =
    match body with
    | Ipv4_body p when p.Packet.prov <> None -> p.Packet.prov
    | Ipv4_body _ | Arp_body _ -> prov
  in
  { src; dst; body; trace; prov }

let prov t = t.prov

(* Fork the provenance record at a fan-out point (bridge flood, tap
   reflection, multi-remote vxlan) so each copy accumulates only its own
   downstream hops.  The inner packet shares the frame's record, so both
   must be rebuilt around the branched one. *)
let branch_prov t =
  match t.prov with
  | None -> t
  | Some p ->
    let p' = Some (Nest_sim.Provenance.branch p) in
    let body =
      match t.body with
      | Ipv4_body pkt when pkt.Packet.prov <> None ->
        Ipv4_body { pkt with Packet.prov = p' }
      | body -> body
    in
    { t with body; prov = p' }

let eth_header_bytes = 14
let min_frame_bytes = 60
let arp_bytes = 28

let len t =
  let body_len =
    match t.body with
    | Ipv4_body p -> Packet.len p
    | Arp_body _ -> arp_bytes
  in
  max min_frame_bytes (eth_header_bytes + body_len)

let record_hop t hop =
  match t.trace with None -> () | Some r -> r := hop :: !r

let hops t = match t.trace with None -> [] | Some r -> List.rev !r
let is_broadcast t = Mac.is_broadcast t.dst

let pp fmt t =
  match t.body with
  | Ipv4_body p ->
    Format.fprintf fmt "[%a > %a] %a" Mac.pp t.src Mac.pp t.dst Packet.pp p
  | Arp_body a ->
    let op = match a.op with Request -> "who-has" | Reply -> "is-at" in
    Format.fprintf fmt "[%a > %a] arp %s %a" Mac.pp t.src Mac.pp t.dst op
      Ipv4.pp a.target_ip
