type entry = {
  dst : Ipv4.cidr;
  gateway : Ipv4.t option;
  dev : Dev.t;
  src : Ipv4.t option;
}

type t = { mutable routes : entry list; mutable gen : int }

let create () = { routes = []; gen = 0 }

let add t ~dst ~dev ?gateway ?src () =
  t.gen <- t.gen + 1;
  t.routes <- { dst; gateway; dev; src } :: t.routes

let add_default t ~gateway ~dev ?src () =
  add t ~dst:(Ipv4.cidr_of_string "0.0.0.0/0") ~dev ~gateway ?src ()

let lookup t ip =
  let best = ref None in
  let consider e =
    if Ipv4.in_subnet e.dst ip then
      match !best with
      | Some b when b.dst.Ipv4.prefix >= e.dst.Ipv4.prefix -> ()
      | Some _ | None -> best := Some e
  in
  (* [routes] is most-recent-first; keeping the incumbent on equal
     prefixes therefore makes the most recent entry win. *)
  List.iter consider t.routes;
  !best

let next_hop e ip = match e.gateway with Some gw -> gw | None -> ip

let remove_dev t dev =
  t.gen <- t.gen + 1;
  t.routes <- List.filter (fun e -> e.dev != dev) t.routes

let entries t = t.routes
let generation t = t.gen
