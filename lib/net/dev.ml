type l2_mode = Normal | Reflector

type stats = {
  mutable rx_packets : int;
  mutable rx_bytes : int;
  mutable tx_packets : int;
  mutable tx_bytes : int;
  mutable drops : int;
}

type t = {
  name : string;
  mutable mac : Mac.t;
  mutable mtu : int;
  mutable up : bool;
  l2 : l2_mode;
  (* Binding generation: bumped whenever the device's ownership changes
     (claimed by an agent, rebound after failover).  Reflector endpoints
     of one tap share a single ref, so any endpoint claim invalidates the
     socket-state-dependent verdicts cached against the whole tap. *)
  binding : int ref;
  stats : stats;
  mutable tx_fn : Frame.t -> unit;
  mutable rx_fn : (Frame.t -> unit) option;
  mutable corrupt_fn : (Frame.t -> bool) option;
}

let create ?(mtu = 1500) ?(l2 = Normal) ?binding ~name ~mac () =
  let stats =
    { rx_packets = 0; rx_bytes = 0; tx_packets = 0; tx_bytes = 0; drops = 0 }
  in
  let binding = match binding with Some r -> r | None -> ref 0 in
  let t =
    { name; mac; mtu; up = true; l2; binding; stats; tx_fn = (fun _ -> ());
      rx_fn = None; corrupt_fn = None }
  in
  t.tx_fn <- (fun _ -> stats.drops <- stats.drops + 1);
  t

let bump_binding t = incr t.binding
let binding_generation t = !(t.binding)

let set_tx t f = t.tx_fn <- f
let set_rx t f = t.rx_fn <- Some f
let clear_rx t = t.rx_fn <- None
let set_up t up = t.up <- up
let set_corrupt t f = t.corrupt_fn <- f

let transmit t frame =
  if not t.up then t.stats.drops <- t.stats.drops + 1
  else begin
    t.stats.tx_packets <- t.stats.tx_packets + 1;
    t.stats.tx_bytes <- t.stats.tx_bytes + Frame.len frame;
    t.tx_fn frame
  end

let corrupted t frame =
  match t.corrupt_fn with None -> false | Some f -> f frame

let deliver t frame =
  if not t.up then t.stats.drops <- t.stats.drops + 1
  else if corrupted t frame then
    (* FCS/checksum failure on receive: the frame is counted and
       discarded before anything above the device sees it. *)
    t.stats.drops <- t.stats.drops + 1
  else begin
    Frame.record_hop frame t.name;
    match t.rx_fn with
    | None -> t.stats.drops <- t.stats.drops + 1
    | Some f ->
      t.stats.rx_packets <- t.stats.rx_packets + 1;
      t.stats.rx_bytes <- t.stats.rx_bytes + Frame.len frame;
      f frame
  end

let mss t = t.mtu - 40
