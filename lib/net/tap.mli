(** TAP devices: kernel-provided virtual interfaces that exchange Ethernet
    frames with a file-descriptor backend — the standard backend for
    QEMU/vhost virtual NICs.

    Two modes:
    - [Normal]: one or more RX/TX queues; frames written by the backend
      (vhost, i.e. the guest) appear on the host side, where the tap is
      typically enslaved to a bridge; host-side frames are handed to the
      backend.  This is the plumbing under every VM NIC in the testbed.
    - [Loopback]: the paper's modified driver (§4.2, Hostlo).  The tap has
      one queue per served VM and *reflects every frame written on any
      queue back out to all of its queues*; there is no host-side
      attachment.  The reflection work runs in the host kernel and is paid
      on the tap's {!Hop.t}. *)

type mode = Normal | Loopback

type t
type queue

val create :
  Nest_sim.Engine.t ->
  name:string ->
  mode:mode ->
  hop:Hop.t ->
  ?per_queue_ns:int ->
  mac:Mac.t ->
  unit ->
  t
(** [per_queue_ns] (loopback mode, default 0): extra reflection cost per
    served queue — copying one descriptor per destination ring. *)

val name : t -> string
val mode : t -> mode

val mac : t -> Mac.t
(** The tap's own address.  A loopback tap is one interface multiplexed
    between VMs, so all of its queue endpoints share this MAC. *)

val host_dev : t -> Dev.t
(** Host-side presence (attach to a bridge).  Raises [Failure] for
    loopback-mode taps, which have no host side. *)

val add_queue : t -> owner:string -> queue
(** New RX/TX queue; [owner] names the VM it will serve (diagnostics). *)

val remove_queues : t -> owner:string -> int
(** Detach (and orphan) every queue owned by [owner], returning how many
    were removed.  Used when a member VM crashes: the Hostlo reflector
    must stop reflecting into the dead VM's rings.  Writes arriving on a
    detached queue are counted as drops. *)

val queues : t -> queue list
val queue_owner : queue -> string

val queue_binding : queue -> int ref
(** The tap-wide binding-generation ref (see {!Dev.create}'s [binding]):
    endpoint devices created over this queue should share it, so a claim
    of any endpoint invalidates cached reflector verdicts tap-wide. *)

val bump_binding : t -> unit
(** Marks an endpoint ownership change (standby-pool claim/replenish,
    device claim on hot-plug): cached reflector-egress verdicts derived
    under the previous binding are invalidated on their next lookup. *)

val queue_set_backend : queue -> (Frame.t -> unit) -> unit
(** Installs the backend consumer (vhost): called for every frame the tap
    pushes toward the guest. *)

val queue_write : queue -> Frame.t -> unit
(** Backend -> tap: the guest transmitted [frame].
    Normal mode: the frame appears host-side.
    Loopback mode: the frame is reflected to all queues. *)

val reflected : t -> int
(** Loopback mode: total frames handed to queue backends by reflection. *)

val set_exhausted : t -> bool -> unit
(** Fault injection: queue exhaustion.  While set, every frame entering
    the tap (from the host side or from any queue) is dropped and
    counted — the behavior of full vhost rings under overload. *)

val exhausted : t -> bool

val drops : t -> int
(** Frames dropped by exhaustion or by writes on detached queues. *)
