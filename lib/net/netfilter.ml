type hook = Prerouting | Input | Forward | Output | Postrouting

type ctx = { in_dev : string option; out_dev : string option }

type verdict = Accept | Drop | Mangle of Packet.t

type rule = {
  rule_name : string;
  matches : ctx -> Packet.t -> bool;
  action : ctx -> Packet.t -> verdict;
}

type t = {
  chains : (hook, rule list ref) Hashtbl.t;
  mutable hits : int;
  mutable gen : int;
}

let all_hooks = [ Prerouting; Input; Forward; Output; Postrouting ]

let create () =
  let chains = Hashtbl.create 8 in
  List.iter (fun h -> Hashtbl.add chains h (ref [])) all_hooks;
  { chains; hits = 0; gen = 0 }

let chain t hook = Hashtbl.find t.chains hook

let append t hook rule =
  let c = chain t hook in
  t.gen <- t.gen + 1;
  c := !c @ [ rule ]

let remove t hook name =
  let c = chain t hook in
  t.gen <- t.gen + 1;
  c := List.filter (fun r -> r.rule_name <> name) !c

let run t hook ctx pkt =
  let rec go pkt = function
    | [] -> Some pkt
    | r :: rest ->
      t.hits <- t.hits + 1;
      if r.matches ctx pkt then
        match r.action ctx pkt with
        | Accept -> go pkt rest
        | Drop -> None
        | Mangle pkt' -> go pkt' rest
      else go pkt rest
  in
  go pkt !(chain t hook)

let rule_count t hook = List.length !(chain t hook)
let rule_names t hook = List.map (fun r -> r.rule_name) !(chain t hook)
let hits t = t.hits
let generation t = t.gen
let no_ctx = { in_dev = None; out_dev = None }
