(** Cross-node wires: UDP relay gateways over a {!Nest_sim.Sharded} link.

    Two single-node testbeds living on different shards have no shared
    L2/L3 fabric (each has its own bridge and subnets, and the address
    plans deliberately coincide).  A wire bridges one UDP service across
    that gap at L4, the way a load-balancer VIP or node-port does: the
    client sends to a gateway socket on its own node; the gateway ships
    the payload over a {!Nest_sim.Sharded.link} whose lookahead is the
    wire's latency (the inter-node RTT/2 — the netem/VXLAN underlay
    delay); the remote gateway re-emits it toward the server address,
    and replies retrace the path.

    Payloads cross untouched, so request/response tagging (e.g. netperf's
    [Rr_tagged]) survives the relay.  A wire serves one closed-loop flow:
    replies return to the most recent client source address, which is
    exact for the one-outstanding-transaction drivers used in the
    cluster scenarios. *)

type t

val udp_relay :
  Nest_sim.Sharded.t ->
  client_side:int * Stack.ns ->
  server_side:int * Stack.ns ->
  client_port:int ->
  server_port:int ->
  target:Ipv4.t * int ->
  latency:Nest_sim.Time.ns ->
  unit ->
  t
(** [udp_relay sd ~client_side:(shard, ns) ~server_side:(shard', ns') ...]
    binds a gateway socket on [client_port] in the client-side namespace
    and on [server_port] in the server-side one, and creates the forward
    and reverse sharded links (both with [lookahead = latency]).
    Clients reach the service at the client-side namespace's address on
    [client_port]; the server-side gateway forwards to [target] (and
    receives replies on [server_port], so a node that both serves and
    consumes binds two distinct ports).  Raises like
    {!Nest_sim.Sharded.link} on a non-positive [latency]. *)

val forwarded : t -> int
(** Datagrams delivered to the server side so far. *)

val returned : t -> int
(** Reply datagrams delivered back to the client side so far. *)
