(** Cross-node wires: UDP relay gateways over a {!Nest_sim.Sharded} link.

    Two single-node testbeds living on different shards have no shared
    L2/L3 fabric (each has its own bridge and subnets, and the address
    plans deliberately coincide).  A wire bridges one UDP service across
    that gap at L4, the way a load-balancer VIP or node-port does: the
    client sends to a gateway socket on its own node; the gateway ships
    the payload over a {!Nest_sim.Sharded.link} whose lookahead is the
    wire's latency (the inter-node RTT/2 — the netem/VXLAN underlay
    delay); the remote gateway re-emits it toward the server address,
    and replies retrace the path.

    Payloads cross untouched, so request/response tagging (e.g. netperf's
    [Rr_tagged]) survives the relay.  A wire serves one closed-loop flow:
    replies return to the most recent client source address, which is
    exact for the one-outstanding-transaction drivers used in the
    cluster scenarios. *)

type t

type impair
(** Per-direction wire impairment: probabilistic loss and uniform extra
    jitter on top of the base latency, plus an administrative down flag
    (link flaps).  Every random draw happens inside the sending
    gateway's event — on the direction's {e source} shard — so impaired
    wires stay deterministic for any shard/domain split.  One [impair]
    value must only ever be used by one direction for the same reason:
    its PRNG stream and down flag are owned by that shard. *)

val impair :
  ?loss:float -> ?jitter:Nest_sim.Time.ns -> rng:Nest_sim.Prng.t -> unit ->
  impair
(** [loss] (default 0) per-datagram drop probability; [jitter] (default
    0) uniform extra delay in [0, jitter] added to the base latency —
    delivery stays [>= lookahead], so the conservative promise holds. *)

val impair_of_profile :
  Netem.profile -> rng:Nest_sim.Prng.t -> impair
(** Loss and jitter from a named link profile (the profile's delay is
    the wire's base [latency], chosen by the caller). *)

val set_down : impair -> bool -> unit
(** Administrative link flap: while down, every datagram in this
    direction is dropped.  Call only from events on the direction's
    source shard. *)

val impair_dropped : impair -> int
(** Datagrams dropped by loss or down state in this direction. *)

val udp_relay :
  Nest_sim.Sharded.t ->
  client_side:int * Stack.ns ->
  server_side:int * Stack.ns ->
  client_port:int ->
  server_port:int ->
  target:Ipv4.t * int ->
  latency:Nest_sim.Time.ns ->
  ?fwd_impair:impair ->
  ?rev_impair:impair ->
  unit ->
  t
(** [udp_relay sd ~client_side:(shard, ns) ~server_side:(shard', ns') ...]
    binds a gateway socket on [client_port] in the client-side namespace
    and on [server_port] in the server-side one, and creates the forward
    and reverse sharded links (both with [lookahead = latency]).
    Clients reach the service at the client-side namespace's address on
    [client_port]; the server-side gateway forwards to [target] (and
    receives replies on [server_port], so a node that both serves and
    consumes binds two distinct ports).  Raises like
    {!Nest_sim.Sharded.link} on a non-positive [latency]. *)

val forwarded : t -> int
(** Datagrams delivered to the server side so far. *)

val returned : t -> int
(** Reply datagrams delivered back to the client side so far. *)
