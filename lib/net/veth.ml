let pair ~a_name ~a_mac ~b_name ~b_mac ~ab_hop ~ba_hop () =
  let a = Dev.create ~name:a_name ~mac:a_mac () in
  let b = Dev.create ~name:b_name ~mac:b_mac () in
  Hop.set_name ab_hop (a_name ^ "->" ^ b_name);
  Hop.set_name ba_hop (b_name ^ "->" ^ a_name);
  Dev.set_tx a (fun frame ->
      Hop.service_prov ?prov:(Frame.prov frame) ab_hop
        ~bytes:(Frame.len frame) (fun () -> Dev.deliver b frame));
  Dev.set_tx b (fun frame ->
      Hop.service_prov ?prov:(Frame.prov frame) ba_hop
        ~bytes:(Frame.len frame) (fun () -> Dev.deliver a frame));
  (a, b)
