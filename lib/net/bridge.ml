type entry = { port : Dev.t; mutable last_seen : Nest_sim.Time.ns }

type t = {
  engine : Nest_sim.Engine.t;
  br_name : string;
  hop : Hop.t;
  aging_ns : Nest_sim.Time.ns;
  self : Dev.t;
  mutable port_list : Dev.t list;
  fdb_tbl : (Mac.t, entry) Hashtbl.t;
  mutable forwarded : int;
  hop_ctr : Nest_sim.Metrics.counter;
}

let input t port frame =
  Frame.record_hop frame t.br_name;
  Nest_sim.Metrics.bump t.hop_ctr ();
  Nest_sim.Engine.trace_instant t.engine ~cat:"hop" ~name:t.br_name ();
  (* Source learning. *)
  if not (Mac.is_broadcast frame.Frame.src) then begin
    match Hashtbl.find_opt t.fdb_tbl frame.Frame.src with
    | Some e when e.port == port -> e.last_seen <- Nest_sim.Engine.now t.engine
    | Some _ | None ->
      Hashtbl.replace t.fdb_tbl frame.Frame.src
        { port; last_seen = Nest_sim.Engine.now t.engine }
  end;
  let deliver_self () = Dev.deliver t.self frame in
  let out p = Dev.transmit p frame in
  (* Flood/broadcast copies each take their own provenance branch so every
     egress accumulates only its own downstream hops. *)
  let out_branched p = Dev.transmit p (Frame.branch_prov frame) in
  let fresh e =
    Nest_sim.Engine.now t.engine - e.last_seen <= t.aging_ns
  in
  let forward () =
    t.forwarded <- t.forwarded + 1;
    if Mac.is_broadcast frame.Frame.dst then begin
      List.iter (fun p -> if p != port then out_branched p) t.port_list;
      if port != t.self then deliver_self ()
    end
    else if Mac.equal frame.Frame.dst t.self.Dev.mac then begin
      if port != t.self then deliver_self ()
    end
    else begin
      match Hashtbl.find_opt t.fdb_tbl frame.Frame.dst with
      | Some e when fresh e -> if e.port != port then out e.port
      | Some _ | None ->
        (* Unknown destination: flood. *)
        List.iter (fun p -> if p != port then out_branched p) t.port_list;
        if port != t.self && not (Mac.equal frame.Frame.dst t.self.Dev.mac)
        then ()
    end
  in
  Hop.service_prov ?prov:(Frame.prov frame) t.hop ~bytes:(Frame.len frame)
    forward

let create engine ~name ~hop ?(aging_ns = Nest_sim.Time.sec 300) ~self_mac () =
  Hop.set_name hop name;
  let self = Dev.create ~name:(name ^ "(self)") ~mac:self_mac () in
  let t =
    { engine; br_name = name; hop; aging_ns; self; port_list = [];
      fdb_tbl = Hashtbl.create 32; forwarded = 0;
      hop_ctr =
        Nest_sim.Metrics.counter (Nest_sim.Engine.metrics engine)
          ("hop." ^ name) }
  in
  (* Stack transmissions on the self device enter the switching plane. *)
  Dev.set_tx self (fun frame -> input t self frame);
  t

let name t = t.br_name
let self_dev t = t.self

let attach t dev =
  t.port_list <- t.port_list @ [ dev ];
  Dev.set_rx dev (fun frame -> input t dev frame)

let detach t dev =
  t.port_list <- List.filter (fun p -> p != dev) t.port_list;
  Dev.clear_rx dev;
  (* Drop any learning entries that point at the removed port. *)
  let stale =
    Hashtbl.fold
      (fun mac e acc -> if e.port == dev then mac :: acc else acc)
      t.fdb_tbl []
  in
  List.iter (Hashtbl.remove t.fdb_tbl) stale

let ports t = t.port_list

let fdb t =
  Hashtbl.fold
    (fun mac e acc ->
      if Nest_sim.Engine.now t.engine - e.last_seen <= t.aging_ns then
        (mac, e.port.Dev.name) :: acc
      else acc)
    t.fdb_tbl []
  |> List.sort compare

let forwarded t = t.forwarded
