(** Routing table with longest-prefix-match lookup. *)

type entry = {
  dst : Ipv4.cidr;
  gateway : Ipv4.t option;  (** [None] for on-link routes. *)
  dev : Dev.t;
  src : Ipv4.t option;      (** Preferred source address. *)
}

type t

val create : unit -> t
val add : t -> dst:Ipv4.cidr -> dev:Dev.t -> ?gateway:Ipv4.t -> ?src:Ipv4.t -> unit -> unit

val add_default : t -> gateway:Ipv4.t -> dev:Dev.t -> ?src:Ipv4.t -> unit -> unit
(** 0.0.0.0/0 via [gateway]. *)

val lookup : t -> Ipv4.t -> entry option
(** Longest matching prefix; among equal prefixes the most recently added
    entry wins. *)

val next_hop : entry -> Ipv4.t -> Ipv4.t
(** Gateway if set, otherwise the destination itself (on-link). *)

val remove_dev : t -> Dev.t -> unit
val entries : t -> entry list

val generation : t -> int
(** Monotonic counter bumped on every table mutation; lets callers
    (the stack's flow cache) detect staleness with one comparison. *)
