(* L4 relay between testbeds on different shards.  See wire.mli.

   Both gateway handlers run as ordinary stack deliveries on their own
   shard; the only cross-shard step is the Sharded.send, whose delay
   equals the link's lookahead, so the wire itself contributes exactly
   one latency per direction and fixes each payload's delivery date at
   send time (the determinism contract). *)

module Sharded = Nest_sim.Sharded

type t = {
  mutable w_client : (Ipv4.t * int) option;  (* last client src seen *)
  mutable w_forwarded : int;
  mutable w_returned : int;
}

type impair = {
  im_loss : float;
  im_jitter : Nest_sim.Time.ns;
  im_rng : Nest_sim.Prng.t;
  mutable im_down : bool;
  mutable im_dropped : int;
}

let impair ?(loss = 0.0) ?(jitter = 0) ~rng () =
  if loss < 0.0 || loss > 1.0 then invalid_arg "Wire.impair: loss in [0,1]";
  if jitter < 0 then invalid_arg "Wire.impair: jitter >= 0";
  { im_loss = loss; im_jitter = jitter; im_rng = rng; im_down = false;
    im_dropped = 0 }

let impair_of_profile (p : Netem.profile) ~rng =
  impair ~loss:p.Netem.p_loss ~jitter:p.Netem.p_jitter ~rng ()

let set_down im down = im.im_down <- down
let impair_dropped im = im.im_dropped

(* Decide one datagram's fate in the sending gateway's event: [None] to
   drop, [Some extra] to deliver with that much jitter on top of the
   base latency.  All PRNG draws happen here, on the source shard. *)
let impair_verdict = function
  | None -> Some 0
  | Some im ->
    if im.im_down then begin
      im.im_dropped <- im.im_dropped + 1;
      None
    end
    else if im.im_loss > 0.0 && Nest_sim.Prng.float im.im_rng < im.im_loss
    then begin
      im.im_dropped <- im.im_dropped + 1;
      None
    end
    else
      Some
        (if im.im_jitter > 0 then Nest_sim.Prng.int im.im_rng (im.im_jitter + 1)
         else 0)

let udp_relay sd ~client_side:(cshard, cns) ~server_side:(sshard, sns)
    ~client_port ~server_port ~target:(tip, tport) ~latency ?fwd_impair
    ?rev_impair () =
  let t = { w_client = None; w_forwarded = 0; w_returned = 0 } in
  let fwd =
    Sharded.link sd ~src:cshard ~dst:sshard ~lookahead:latency
      ~label:(Printf.sprintf "wire:%s>%s" (Stack.name cns) (Stack.name sns))
      ()
  in
  let rev =
    Sharded.link sd ~src:sshard ~dst:cshard ~lookahead:latency
      ~label:(Printf.sprintf "wire:%s>%s" (Stack.name sns) (Stack.name cns))
      ()
  in
  (* Tie the knot: the server-side handler needs the client-side socket
     for the return path, and both sockets capture [t]. *)
  let client_sock = ref None in
  let server_sock =
    Stack.Udp.bind sns ~port:server_port (fun sk ~src:_ payload ->
        (* A reply from the server: ship it home.  [w_client] is read on
           the client shard at delivery time — single-flow wires only
           ever hold one value by then. *)
        ignore sk;
        match impair_verdict rev_impair with
        | None -> ()
        | Some extra ->
          Sharded.send sd rev ~delay:(latency + extra) (fun () ->
              t.w_returned <- t.w_returned + 1;
              match (t.w_client, !client_sock) with
              | Some (ip, p), Some csock ->
                Stack.Udp.sendto csock ~dst:ip ~dst_port:p payload
              | _ -> ()))
  in
  let csock =
    Stack.Udp.bind cns ~port:client_port (fun _ ~src payload ->
        t.w_client <- Some src;
        match impair_verdict fwd_impair with
        | None -> ()
        | Some extra ->
          Sharded.send sd fwd ~delay:(latency + extra) (fun () ->
              t.w_forwarded <- t.w_forwarded + 1;
              Stack.Udp.sendto server_sock ~dst:tip ~dst_port:tport payload))
  in
  client_sock := Some csock;
  t

let forwarded t = t.w_forwarded
let returned t = t.w_returned
