(* L4 relay between testbeds on different shards.  See wire.mli.

   Both gateway handlers run as ordinary stack deliveries on their own
   shard; the only cross-shard step is the Sharded.send, whose delay
   equals the link's lookahead, so the wire itself contributes exactly
   one latency per direction and fixes each payload's delivery date at
   send time (the determinism contract). *)

module Sharded = Nest_sim.Sharded

type t = {
  mutable w_client : (Ipv4.t * int) option;  (* last client src seen *)
  mutable w_forwarded : int;
  mutable w_returned : int;
}

let udp_relay sd ~client_side:(cshard, cns) ~server_side:(sshard, sns)
    ~client_port ~server_port ~target:(tip, tport) ~latency () =
  let t = { w_client = None; w_forwarded = 0; w_returned = 0 } in
  let fwd =
    Sharded.link sd ~src:cshard ~dst:sshard ~lookahead:latency
      ~label:(Printf.sprintf "wire:%s>%s" (Stack.name cns) (Stack.name sns))
      ()
  in
  let rev =
    Sharded.link sd ~src:sshard ~dst:cshard ~lookahead:latency
      ~label:(Printf.sprintf "wire:%s>%s" (Stack.name sns) (Stack.name cns))
      ()
  in
  (* Tie the knot: the server-side handler needs the client-side socket
     for the return path, and both sockets capture [t]. *)
  let client_sock = ref None in
  let server_sock =
    Stack.Udp.bind sns ~port:server_port (fun sk ~src:_ payload ->
        (* A reply from the server: ship it home.  [w_client] is read on
           the client shard at delivery time — single-flow wires only
           ever hold one value by then. *)
        ignore sk;
        Sharded.send sd rev ~delay:latency (fun () ->
            t.w_returned <- t.w_returned + 1;
            match (t.w_client, !client_sock) with
            | Some (ip, p), Some csock ->
              Stack.Udp.sendto csock ~dst:ip ~dst_port:p payload
            | _ -> ()))
  in
  let csock =
    Stack.Udp.bind cns ~port:client_port (fun _ ~src payload ->
        t.w_client <- Some src;
        Sharded.send sd fwd ~delay:latency (fun () ->
            t.w_forwarded <- t.w_forwarded + 1;
            Stack.Udp.sendto server_sock ~dst:tip ~dst_port:tport payload))
  in
  client_sock := Some csock;
  t

let forwarded t = t.w_forwarded
let returned t = t.w_returned
