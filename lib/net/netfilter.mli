(** Netfilter-style hook chains.

    Each namespace's IP stack runs packets through five hooks (the Linux
    ones).  Rules match on the packet plus ingress/egress device names
    (iptables' [-i]/[-o]) and can accept, drop or rewrite the packet.
    These chains are where Docker and the VMM install their NAT — the
    per-packet hook work is the "soft" CPU the paper measures netfilter
    consuming (§5.2.3). *)

type hook = Prerouting | Input | Forward | Output | Postrouting

type ctx = {
  in_dev : string option;   (** Ingress device name, when known. *)
  out_dev : string option;  (** Egress device name, when known. *)
}

type verdict =
  | Accept
  | Drop
  | Mangle of Packet.t  (** Continue traversal with the rewritten packet. *)

type rule = {
  rule_name : string;
  matches : ctx -> Packet.t -> bool;
  action : ctx -> Packet.t -> verdict;
}

type t

val create : unit -> t
val append : t -> hook -> rule -> unit
val remove : t -> hook -> string -> unit
(** Removes all rules with the given name on that hook. *)

val run : t -> hook -> ctx -> Packet.t -> Packet.t option
(** [None] means the packet was dropped.  Rules run in insertion order;
    [Mangle] rewrites and continues with subsequent rules. *)

val rule_count : t -> hook -> int
val rule_names : t -> hook -> string list
val hits : t -> int
(** Total rule evaluations (diagnostics; a proxy for hook work).  Note
    that packets served from the stack's flow cache skip rule
    evaluation, so cached traversals do not count here. *)

val generation : t -> int
(** Monotonic counter bumped on every [append]/[remove]; lets callers
    (the stack's flow cache) detect staleness with one comparison. *)

val no_ctx : ctx
