(** IPv4 packets. *)

type transport =
  | Udp of { src_port : int; dst_port : int; payload : Payload.t }
  | Tcp of { seg : Tcp_wire.t; payload : Payload.t }
      (** [payload.size] must equal [seg.len]. *)
  | Icmp_echo of { id : int; seq : int; reply : bool }

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;
  transport : transport;
  trace : string list ref option;
      (** Hop names in reverse traversal order when tracing.  The ref is
          shared across NAT rewrites and re-framing at each L3 hop, so a
          packet's full end-to-end path is observable (see
          {!Frame.record_hop}). *)
  prov : Nest_sim.Provenance.t option;
      (** Latency-provenance record, shared the same way as [trace]:
          every hop that services the packet appends timed attribution
          (see [Hop.service_prov]). *)
}

val make :
  ?traced:bool -> ?prov:Nest_sim.Provenance.t -> src:Ipv4.t -> dst:Ipv4.t ->
  transport -> t
(** TTL defaults to 64; [traced] (default false) attaches a hop trace;
    [prov] attaches a latency-provenance record. *)

val prov : t -> Nest_sim.Provenance.t option

val hops : t -> string list
(** Hops in traversal order; [] when untraced. *)

val record_hop : t -> string -> unit
(** Appends a hop name to the packet's trace; no-op when untraced.  Used
    by devices that transform rather than re-frame the packet (e.g. NAT
    rule hits, which have no {!Frame.t} in hand). *)

val len : t -> int
(** Total IP length: 20-byte IP header + transport header + payload. *)

val ports : t -> (int * int) option
(** (src_port, dst_port) for UDP/TCP, [None] for ICMP. *)

val with_addrs : ?src:Ipv4.t -> ?dst:Ipv4.t -> t -> t
val with_ports : ?src_port:int -> ?dst_port:int -> t -> t
(** Rewrites transport ports (NAT); ICMP packets are returned unchanged. *)

val decrement_ttl : t -> t option
(** [None] once the TTL would reach 0 (packet must be dropped). *)

val proto_name : t -> string
val pp : Format.formatter -> t -> unit
