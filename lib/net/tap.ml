type mode = Normal | Loopback

type queue = {
  q_owner : string;
  mutable backend : (Frame.t -> unit) option;
  tap : t;
}

and t = {
  tap_name : string;
  tap_mode : mode;
  engine : Nest_sim.Engine.t;
  hop : Hop.t;
  per_queue_ns : int;
  host_side : Dev.t;
  (* Shared by every endpoint device carried by this tap's queues: a
     loopback tap is one interface multiplexed between VMs, so claiming
     any endpoint changes which socket owner the reflector serves. *)
  binding_gen : int ref;
  mutable queue_list : queue list;
  mutable reflected : int;
  mutable exhausted : bool;
  mutable tap_drops : int;
  hop_ctr : Nest_sim.Metrics.counter;
}

let note_hop t frame =
  Frame.record_hop frame t.tap_name;
  Nest_sim.Metrics.bump t.hop_ctr ();
  Nest_sim.Engine.trace_instant t.engine ~cat:"hop" ~name:t.tap_name ()

let host_input t frame =
  (* Host side -> guest(s).  With several queues the kernel hashes flows;
     we deliver to the first queue, which matches single-queue virtio. *)
  if t.exhausted then t.tap_drops <- t.tap_drops + 1
  else begin
  note_hop t frame;
  match t.queue_list with
  | [] -> ()
  | q :: _ -> (
    match q.backend with
    | None -> ()
    | Some backend ->
      Hop.service_prov ?prov:(Frame.prov frame) t.hop
        ~bytes:(Frame.len frame) (fun () -> backend frame))
  end

let create engine ~name ~mode ~hop ?(per_queue_ns = 0) ~mac () =
  Hop.set_name hop name;
  let host_side = Dev.create ~name ~mac () in
  let t =
    { tap_name = name; tap_mode = mode; engine; hop; per_queue_ns; host_side;
      binding_gen = ref 0; queue_list = []; reflected = 0; exhausted = false;
      tap_drops = 0;
      hop_ctr =
        Nest_sim.Metrics.counter (Nest_sim.Engine.metrics engine)
          ("hop." ^ name) }
  in
  Dev.set_tx host_side (fun frame -> host_input t frame);
  t

let name t = t.tap_name
let mode t = t.tap_mode
let mac t = t.host_side.Dev.mac

let host_dev t =
  match t.tap_mode with
  | Normal -> t.host_side
  | Loopback -> failwith "Tap.host_dev: loopback taps have no host side"

let add_queue t ~owner =
  let q = { q_owner = owner; backend = None; tap = t } in
  t.queue_list <- t.queue_list @ [ q ];
  q

let remove_queues t ~owner =
  let gone, kept =
    List.partition (fun q -> String.equal q.q_owner owner) t.queue_list
  in
  t.queue_list <- kept;
  List.iter (fun q -> q.backend <- None) gone;
  List.length gone

let queues t = t.queue_list
let queue_owner q = q.q_owner
let queue_binding q = q.tap.binding_gen
let bump_binding t = incr t.binding_gen
let queue_set_backend q f = q.backend <- Some f
let queue_attached q = List.memq q q.tap.queue_list
let set_exhausted t b = t.exhausted <- b
let exhausted t = t.exhausted
let drops t = t.tap_drops

let queue_write q frame =
  let t = q.tap in
  if t.exhausted || not (queue_attached q) then
    t.tap_drops <- t.tap_drops + 1
  else begin
  note_hop t frame;
  match t.tap_mode with
  | Normal ->
    (* Guest -> host side: the frame enters whatever the host attached
       (bridge port input), after the tap's processing cost. *)
    Hop.service_prov ?prov:(Frame.prov frame) t.hop ~bytes:(Frame.len frame)
      (fun () -> Dev.deliver t.host_side frame)
  | Loopback ->
    (* §4.2: "it sends back any received Ethernet frame to all of its
       queues" — including the originating one.  Each reflected copy takes
       its own provenance branch. *)
    let deliver_all () =
      List.iter
        (fun q' ->
          match q'.backend with
          | None -> ()
          | Some backend ->
            t.reflected <- t.reflected + 1;
            backend (Frame.branch_prov frame))
        t.queue_list
    in
    Hop.service_prov ?prov:(Frame.prov frame)
      ~extra_ns:(t.per_queue_ns * List.length t.queue_list) t.hop
      ~bytes:(Frame.len frame) deliver_all
  end

let reflected t = t.reflected
