(** Ethernet frames.

    Frames optionally carry a hop trace: every device that processes a
    traced frame appends its name, which lets integration tests assert the
    exact virtualization path a packet crossed (Fig. 1 of the paper). *)

type arp_op = Request | Reply

type arp_msg = {
  op : arp_op;
  sender_mac : Mac.t;
  sender_ip : Ipv4.t;
  target_mac : Mac.t;  (** Meaningless for requests. *)
  target_ip : Ipv4.t;
}

type body =
  | Ipv4_body of Packet.t
  | Arp_body of arp_msg

type t = {
  src : Mac.t;
  dst : Mac.t;
  body : body;
  trace : string list ref option;
      (** Hop names in reverse order of traversal when tracing. *)
  prov : Nest_sim.Provenance.t option;
      (** Latency-provenance record; shared with the inner packet's for
          IPv4 bodies so it survives NAT rewrites and re-framing. *)
}

val make :
  ?traced:bool -> ?prov:Nest_sim.Provenance.t -> src:Mac.t -> dst:Mac.t ->
  body -> t
(** [traced] defaults to false.  For IPv4 bodies whose packet already
    carries a trace or provenance record, the frame shares it and the
    corresponding argument is ignored. *)

val prov : t -> Nest_sim.Provenance.t option

val branch_prov : t -> t
(** Fork the provenance record at a fan-out point (bridge flood, Hostlo
    reflection, multi-remote vxlan) so each copy accumulates only its own
    downstream hops; the identity when the frame carries no record. *)

val len : t -> int
(** 14-byte Ethernet header + body, padded to the 60-byte minimum. *)

val record_hop : t -> string -> unit
(** No-op on untraced frames. *)

val hops : t -> string list
(** Hops in traversal order; [] when untraced. *)

val is_broadcast : t -> bool
val pp : Format.formatter -> t -> unit
