(* A datapath hop: a fixed + per-byte service cost charged on an
   execution context.

   Hops are the unit of latency attribution.  [service] is the plain
   path — submit the cost, run the continuation at completion.
   [service_prov] additionally stamps an optional [Provenance.t] with
   (enqueue, start, end) for this hop and feeds the per-hop
   [hop.<name>.queue_ns] / [hop.<name>.service_ns] histograms; with no
   record present it degrades to exactly the plain path. *)

type t = {
  exec : Nest_sim.Exec.t;
  fixed_ns : int;
  per_byte_ns : float;
  charge_as : Nest_sim.Cpu_account.category option;
  mutable hop_name : string;  (* "" = anonymous: falls back to exec name *)
  mutable hists : (Nest_sim.Hdr.t * Nest_sim.Hdr.t) option;
      (* lazily resolved (queue_ns, service_ns) histograms *)
}

let make ?charge_as ?(per_byte_ns = 0.0) ?(name = "") exec ~fixed_ns =
  { exec; fixed_ns; per_byte_ns; charge_as; hop_name = name; hists = None }

let name t =
  if t.hop_name <> "" then t.hop_name else Nest_sim.Exec.name t.exec

let set_name t n =
  t.hop_name <- n;
  t.hists <- None

let hists t =
  match t.hists with
  | Some h -> h
  | None ->
    let m = Nest_sim.Engine.metrics (Nest_sim.Exec.engine t.exec) in
    let n = name t in
    let h =
      ( Nest_sim.Metrics.histogram m ("hop." ^ n ^ ".queue_ns"),
        Nest_sim.Metrics.histogram m ("hop." ^ n ^ ".service_ns") )
    in
    t.hists <- Some h;
    h

let cost_ns t ~bytes =
  t.fixed_ns + int_of_float (t.per_byte_ns *. float_of_int bytes)

let service t ~bytes k =
  Nest_sim.Exec.submit ?charge_as:t.charge_as t.exec ~cost:(cost_ns t ~bytes) k

(* Timed service.  [enq] overrides the enqueue timestamp when the packet
   was handed off strictly before this call runs (e.g. a virtio kick
   delay); [extra_ns] adds cost not in the hop's rate (syscall overhead,
   NAT surcharges); [tail_ns] extends the recorded completion past the
   CPU finish (e.g. an interrupt-notify delay) without charging CPU.
   The continuation still runs at CPU finish — callers that model a tail
   delay schedule it themselves, and the record accounts for it. *)
let service_prov ?prov ?enq ?(extra_ns = 0) ?(tail_ns = 0) t ~bytes k =
  let cost = cost_ns t ~bytes + extra_ns in
  match prov with
  | None -> Nest_sim.Exec.submit ?charge_as:t.charge_as t.exec ~cost k
  | Some p ->
    let engine = Nest_sim.Exec.engine t.exec in
    let now = Nest_sim.Engine.now engine in
    let finish =
      Nest_sim.Exec.submit_timed ?charge_as:t.charge_as t.exec ~cost k
    in
    let start_ns = finish - cost in
    let enqueue_ns = Option.value enq ~default:now in
    let end_ns = finish + tail_ns in
    Nest_sim.Provenance.add p ~hop:(name t) ~enqueue_ns ~start_ns ~end_ns;
    let qh, sh = hists t in
    Nest_sim.Hdr.add qh (float_of_int (start_ns - enqueue_ns));
    Nest_sim.Hdr.add sh (float_of_int (end_ns - start_ns))

let free engine =
  make (Nest_sim.Exec.create engine ~name:"free-hop") ~fixed_ns:0
