type kind = Span_begin | Span_end | Instant

type event = {
  ts : Time.ns;
  kind : kind;
  cat : string;
  name : string;
  arg : string;
}

let dummy = { ts = 0; kind = Instant; cat = ""; name = ""; arg = "" }

type t = {
  buf : event array;
  mutable total : int;  (* events ever recorded; next write at total mod cap *)
}

let create ?(capacity = 8192) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be > 0";
  { buf = Array.make capacity dummy; total = 0 }

let capacity t = Array.length t.buf
let recorded t = t.total
let dropped t = max 0 (t.total - Array.length t.buf)

let record t ~ts kind ~cat ~name ?(arg = "") () =
  t.buf.(t.total mod Array.length t.buf) <- { ts; kind; cat; name; arg };
  t.total <- t.total + 1

let instant t ~ts ~cat ~name ?arg () = record t ~ts Instant ~cat ~name ?arg ()
let span_begin t ~ts ~cat ~name ?arg () = record t ~ts Span_begin ~cat ~name ?arg ()
let span_end t ~ts ~cat ~name ?arg () = record t ~ts Span_end ~cat ~name ?arg ()

let retained t = min t.total (Array.length t.buf)

(* Visit retained events oldest-first without materialising a list —
   dumping an 8192-event ring should not allocate an intermediate
   structure per event. *)
let iter t f =
  let cap = Array.length t.buf in
  let n = retained t in
  let first = t.total - n in
  for i = 0 to n - 1 do
    f t.buf.((first + i) mod cap)
  done

let events t =
  let cap = Array.length t.buf in
  let n = retained t in
  let first = t.total - n in
  List.init n (fun i -> t.buf.((first + i) mod cap))

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) dummy;
  t.total <- 0

let by_name t =
  let counts = Hashtbl.create 32 in
  iter t (fun e ->
      let key = e.cat ^ ":" ^ e.name in
      Hashtbl.replace counts key
        (1 + Option.value (Hashtbl.find_opt counts key) ~default:0));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare

let kind_string = function
  | Span_begin -> "begin"
  | Span_end -> "end"
  | Instant -> "instant"

let pp_event fmt e =
  Format.fprintf fmt "[%a] %-7s %s:%s%s" Time.pp e.ts (kind_string e.kind)
    e.cat e.name
    (if e.arg = "" then "" else " " ^ e.arg)

let pp_text ?limit fmt t =
  let n = retained t in
  let limit = Option.value limit ~default:n in
  let skipped = max 0 (n - limit) in
  Format.fprintf fmt "trace: %d recorded, %d in ring, %d dropped@."
    t.total n (dropped t);
  if skipped > 0 then Format.fprintf fmt "  … %d earlier events elided@." skipped;
  let i = ref 0 in
  iter t (fun e ->
      if !i >= skipped then Format.fprintf fmt "  %a@." pp_event e;
      incr i)

(* Minimal JSON string escaping: the names used here are plain
   identifiers, but args are free-form. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"capacity\":%d,\"recorded\":%d,\"dropped\":%d,\"events\":["
       (capacity t) t.total (dropped t));
  let i = ref 0 in
  iter t (fun e ->
      if !i > 0 then Buffer.add_char b ',';
      incr i;
      Buffer.add_string b
        (Printf.sprintf "{\"ts\":%d,\"kind\":\"%s\",\"cat\":\"%s\",\"name\":\"%s\",\"arg\":\"%s\"}"
           e.ts (kind_string e.kind) (json_escape e.cat) (json_escape e.name)
           (json_escape e.arg)));
  Buffer.add_string b "]}";
  Buffer.contents b
