(* Sharded fixed-layout event-tracing rings.

   Each shard is a preallocated binary ring: two native ints per slot in
   a Bigarray (timestamp + a packed kind/prio/cat/name word) plus a
   parallel string slot for the free-form arg.  Recording writes those
   three slots and bumps a counter — no event record, no boxing, no
   growth; category and subject strings are interned once into bounded
   per-trace pools and referenced by id thereafter.

   Readers see one merged stream: a k-way merge over the shards keyed by
   (ts, prio, shard, seq), so the view is deterministic regardless of
   how writers were laid out — the contract the future sharded engine
   needs, and already what lets [--jobs] cells compare traces.

   Packed word layout (62 usable bits):
     bits 0-1   kind        (begin / end / instant)
     bits 2-17  prio        (clamped to 16 bits)
     bits 18-29 cat id      (≤ 4096 distinct categories)
     bits 30-45 name id     (≤ 65536 distinct subjects) *)

type kind = Span_begin | Span_end | Instant

type event = {
  ts : Time.ns;
  kind : kind;
  cat : string;
  name : string;
  arg : string;
  prio : int;
  shard : int;
  seq : int;
}

(* Bounded intern pool: id -> string and back.  Categories and names are
   pooled separately because they pack into different bit widths. *)
type pool = {
  ids : (string, int) Hashtbl.t;
  mutable strs : string array;
  mutable nstrs : int;
  limit : int;
  (* One-entry memo on the last string interned, compared physically:
     per-packet call sites pass literal strings whose pointers are
     stable, so repeat interns skip the hash lookup entirely. *)
  mutable last_s : string;
  mutable last_id : int;
}

let pool_create limit =
  {
    ids = Hashtbl.create 64;
    strs = Array.make 16 "";
    nstrs = 0;
    limit;
    (* A fresh string no caller can be physically equal to. *)
    last_s = String.make 1 '\000';
    last_id = -1;
  }

let pool_intern_slow p s =
  (* [find], not [find_opt]: the hit path must not allocate a [Some]. *)
  let id =
    try Hashtbl.find p.ids s
    with Not_found ->
      let id = p.nstrs in
      if id >= p.limit then
        invalid_arg "Trace: intern pool exhausted (too many distinct names)";
      if id = Array.length p.strs then begin
        let ns = Array.make (2 * Array.length p.strs) "" in
        Array.blit p.strs 0 ns 0 id;
        p.strs <- ns
      end;
      p.strs.(id) <- s;
      p.nstrs <- id + 1;
      Hashtbl.add p.ids s id;
      id
  in
  p.last_s <- s;
  p.last_id <- id;
  id

let[@inline] pool_intern p s =
  if s == p.last_s then p.last_id else pool_intern_slow p s

type ring = {
  words : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  args : string array;
  scap : int;   (* always a power of two *)
  mask : int;   (* scap - 1: slot = stotal land mask *)
  mutable stotal : int;  (* events ever recorded; next write at stotal land mask *)
}

type t = { rings : ring array; cats : pool; names : pool }

let max_shards = 256

(* Capacities are rounded up to a power of two so the ring index is a
   mask, not a division — [record_i] runs on every simulated event. *)
let pow2_ceil n =
  let c = ref 1 in
  while !c < n do
    c := !c lsl 1
  done;
  !c

let create ?(capacity = 8192) ?(shards = 1) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be > 0";
  if shards <= 0 || shards > max_shards then
    invalid_arg "Trace.create: shards must be in 1..256";
  let capacity = pow2_ceil capacity in
  let mk _ =
    let words =
      Bigarray.Array1.create Bigarray.int Bigarray.c_layout (2 * capacity)
    in
    Bigarray.Array1.fill words 0;
    {
      words;
      args = Array.make capacity "";
      scap = capacity;
      mask = capacity - 1;
      stotal = 0;
    }
  in
  {
    rings = Array.init shards mk;
    cats = pool_create 4096;
    names = pool_create 65536;
  }

let shards t = Array.length t.rings
let shard_capacity t = t.rings.(0).scap
let capacity t = t.rings.(0).scap * Array.length t.rings

let recorded t = Array.fold_left (fun a r -> a + r.stotal) 0 t.rings

let dropped t =
  Array.fold_left (fun a r -> a + Stdlib.max 0 (r.stotal - r.scap)) 0 t.rings

let intern_cat t s = pool_intern t.cats s
let intern_name t s = pool_intern t.names s

let[@inline] kind_code = function Span_begin -> 0 | Span_end -> 1 | Instant -> 2
let kind_of_code = [| Span_begin; Span_end; Instant |]

(* The zero-allocation hot entry: ids pre-interned, nothing optional. *)
let record_i t ~shard ~prio ~ts kind ~cat ~name ~arg =
  let nr = Array.length t.rings in
  let r = Array.unsafe_get t.rings (if shard < nr then shard else shard mod nr) in
  let slot = r.stotal land r.mask in
  let prio = if prio < 0 then 0 else if prio > 0xFFFF then 0xFFFF else prio in
  let w = kind_code kind lor (prio lsl 2) lor (cat lsl 18) lor (name lsl 30) in
  Bigarray.Array1.unsafe_set r.words (2 * slot) ts;
  Bigarray.Array1.unsafe_set r.words ((2 * slot) + 1) w;
  (* Most events carry no arg; skipping the redundant "" -> "" store
     skips its write barrier too. *)
  if not (arg == Array.unsafe_get r.args slot) then
    Array.unsafe_set r.args slot arg;
  r.stotal <- r.stotal + 1

let record t ?(shard = 0) ?(prio = 0) ~ts kind ~cat ~name ?(arg = "") () =
  record_i t ~shard ~prio ~ts kind ~cat:(pool_intern t.cats cat)
    ~name:(pool_intern t.names name) ~arg

let instant t ?shard ?prio ~ts ~cat ~name ?arg () =
  record t ?shard ?prio ~ts Instant ~cat ~name ?arg ()

let span_begin t ?shard ?prio ~ts ~cat ~name ?arg () =
  record t ?shard ?prio ~ts Span_begin ~cat ~name ?arg ()

let span_end t ?shard ?prio ~ts ~cat ~name ?arg () =
  record t ?shard ?prio ~ts Span_end ~cat ~name ?arg ()

let clear t =
  Array.iter
    (fun r ->
      Array.fill r.args 0 r.scap "";
      r.stotal <- 0)
    t.rings

(* --- merged read view --- *)

(* One cursor per (trace, shard); [tkey] breaks ties between traces when
   several are merged ([iter_merged]), 0 for a single trace. *)
type cursor = {
  src : t;
  ring : ring;
  tkey : int;
  skey : int;
  mutable pos : int;  (* absolute seq of the next unread event *)
  pend : int;         (* absolute seq one past the last event *)
}

let cursor_ts c = Bigarray.Array1.unsafe_get c.ring.words (2 * (c.pos land c.ring.mask))

let cursor_prio c =
  let w = Bigarray.Array1.unsafe_get c.ring.words ((2 * (c.pos land c.ring.mask)) + 1) in
  (w lsr 2) land 0xFFFF

(* Strict (ts, prio, trace, shard, seq) order: [a] before [b]? *)
let cursor_lt a b =
  let ta = cursor_ts a and tb = cursor_ts b in
  if ta <> tb then ta < tb
  else begin
    let pa = cursor_prio a and pb = cursor_prio b in
    if pa <> pb then pa < pb
    else if a.tkey <> b.tkey then a.tkey < b.tkey
    else if a.skey <> b.skey then a.skey < b.skey
    else a.pos < b.pos
  end

let cursor_event c =
  let slot = c.pos land c.ring.mask in
  let ts = Bigarray.Array1.unsafe_get c.ring.words (2 * slot) in
  let w = Bigarray.Array1.unsafe_get c.ring.words ((2 * slot) + 1) in
  {
    ts;
    kind = kind_of_code.(w land 0x3);
    prio = (w lsr 2) land 0xFFFF;
    cat = c.src.cats.strs.((w lsr 18) land 0xFFF);
    name = c.src.names.strs.((w lsr 30) land 0xFFFF);
    arg = c.ring.args.(slot);
    shard = c.skey;
    seq = c.pos;
  }

let iter_cursors cursors f =
  let live = Array.of_list (List.filter (fun c -> c.pos < c.pend) cursors) in
  let nlive = ref (Array.length live) in
  while !nlive > 0 do
    (* k is tiny (shards × traces), so a linear scan beats a heap. *)
    let best = ref 0 in
    for i = 1 to !nlive - 1 do
      if cursor_lt live.(i) live.(!best) then best := i
    done;
    let c = live.(!best) in
    f (cursor_event c);
    c.pos <- c.pos + 1;
    if c.pos >= c.pend then begin
      live.(!best) <- live.(!nlive - 1);
      decr nlive
    end
  done

let cursors_of ?(tkey = 0) t =
  Array.to_list
    (Array.mapi
       (fun i r ->
         let n = Stdlib.min r.stotal r.scap in
         { src = t; ring = r; tkey; skey = i; pos = r.stotal - n; pend = r.stotal })
       t.rings)

let iter t f = iter_cursors (cursors_of t) f

let iter_merged ts f =
  iter_cursors (List.concat (List.mapi (fun i t -> cursors_of ~tkey:i t) ts)) f

let events t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let merged_events ts =
  let acc = ref [] in
  iter_merged ts (fun e -> acc := e :: !acc);
  List.rev !acc

let by_name t =
  let counts = Hashtbl.create 32 in
  iter t (fun e ->
      let key = e.cat ^ ":" ^ e.name in
      Hashtbl.replace counts key
        (1 + Option.value (Hashtbl.find_opt counts key) ~default:0));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare

let kind_string = function
  | Span_begin -> "begin"
  | Span_end -> "end"
  | Instant -> "instant"

let pp_event fmt e =
  Format.fprintf fmt "[%a] %-7s %s:%s%s" Time.pp e.ts (kind_string e.kind)
    e.cat e.name
    (if e.arg = "" then "" else " " ^ e.arg)

let retained t =
  Array.fold_left (fun a r -> a + Stdlib.min r.stotal r.scap) 0 t.rings

let pp_text ?limit fmt t =
  let n = retained t in
  let limit = Option.value limit ~default:n in
  let skipped = Stdlib.max 0 (n - limit) in
  Format.fprintf fmt "trace: %d recorded, %d in ring, %d dropped@."
    (recorded t) n (dropped t);
  if skipped > 0 then Format.fprintf fmt "  … %d earlier events elided@." skipped;
  let i = ref 0 in
  iter t (fun e ->
      if !i >= skipped then Format.fprintf fmt "  %a@." pp_event e;
      incr i)

(* Minimal JSON string escaping: the names used here are plain
   identifiers, but args are free-form. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"capacity\":%d,\"shards\":%d,\"recorded\":%d,\"dropped\":%d,\"events\":["
       (capacity t) (shards t) (recorded t) (dropped t));
  let i = ref 0 in
  iter t (fun e ->
      if !i > 0 then Buffer.add_char b ',';
      incr i;
      Buffer.add_string b
        (Printf.sprintf
           "{\"ts\":%d,\"kind\":\"%s\",\"cat\":\"%s\",\"name\":\"%s\",\"arg\":\"%s\"}"
           e.ts (kind_string e.kind) (json_escape e.cat) (json_escape e.name)
           (json_escape e.arg)));
  Buffer.add_string b "]}";
  Buffer.contents b
