(* Declarative SLOs evaluated live, window by window, during a run.

   A monitor owns a set of specs (latency percentile target,
   availability floor, goodput floor).  Workload drivers feed it raw
   observations — an operation offered, an operation completed, a
   completion latency — and each spec's accumulator is evaluated at a
   fixed window cadence on the engine clock.  Per window we compute a
   burn rate:

   - availability: (window error rate) / (error budget [1 - target]);
   - latency p:    (fraction of samples over the limit) / (1 - p/100);
   - goodput:      floor / (window completion rate) — the shortfall
                   factor, [infinity] for a silent window.

   burn > 1 means the window consumed more than its entire budget and
   counts as a violation: a trace instant (cat ["slo"]) is recorded and
   a [slo.<name>.violations] counter is bumped (registered on first
   violation only, so compliant runs do not grow zero rows in metric
   dumps).  Everything is driven by engine time, so results are
   deterministic and mergeable across [--jobs] cells.

   Ticks self-schedule only up to the [stop] horizon given at creation:
   a monitor must not keep an engine queue alive past the workload it
   observes (chaos harvests drain with [Engine.run]). *)

type objective =
  | Latency_p of { p : float; limit_us : float }
  | Availability of { target : float }
  | Goodput of { floor_per_s : float }

type spec = { sname : string; objective : objective; window : Time.ns }

type compliance = {
  c_name : string;
  c_objective : objective;
  c_windows : int;
  c_violations : int;
  c_worst_burn : float;
}

type tracker = {
  spec : spec;
  mutable w_sent : int;
  mutable w_ok : int;
  mutable w_lat_n : int;
  mutable w_lat_over : int;
  mutable windows : int;
  mutable violations : int;
  mutable worst_burn : float;
  (* Burn of the most recently completed window — the live reading the
     admission controller and the autoscaler key off.  Updated only
     inside the window tick (an engine event), so any same-shard reader
     sees a value that is a pure function of the event order. *)
  mutable last_burn : float;
}

type t = {
  engine : Engine.t;
  trackers : tracker array;
  lat : Hdr.t;  (* run-wide completion latency, microseconds *)
  stop_at : Time.ns;
}

let validate s =
  (match s.objective with
  | Latency_p { p; limit_us } ->
    if not (p > 0.0 && p < 100.0) then
      invalid_arg "Slo: latency percentile must be in (0, 100)";
    if not (limit_us > 0.0) then invalid_arg "Slo: latency limit must be > 0"
  | Availability { target } ->
    if not (target > 0.0 && target < 1.0) then
      invalid_arg "Slo: availability target must be in (0, 1)"
  | Goodput { floor_per_s } ->
    if not (floor_per_s > 0.0) then
      invalid_arg "Slo: goodput floor must be > 0");
  if s.window <= 0 then invalid_arg "Slo: window must be > 0"

let latency_p ?(window = Time.ms 500) ~p ~limit_us () =
  { sname = Printf.sprintf "lat_p%g" p; objective = Latency_p { p; limit_us };
    window }

let availability ?(window = Time.ms 500) ~target () =
  { sname = "availability"; objective = Availability { target }; window }

let goodput ?(window = Time.ms 500) ~floor_per_s () =
  { sname = "goodput"; objective = Goodput { floor_per_s }; window }

let pp_objective fmt = function
  | Latency_p { p; limit_us } ->
    Format.fprintf fmt "p%g <= %gus" p limit_us
  | Availability { target } -> Format.fprintf fmt "avail >= %g" target
  | Goodput { floor_per_s } -> Format.fprintf fmt "goodput >= %g/s" floor_per_s

let burn tk =
  match tk.spec.objective with
  | Availability { target } ->
    if tk.w_sent = 0 then 0.0
    else begin
      let err =
        1.0 -. (float_of_int tk.w_ok /. float_of_int tk.w_sent)
      in
      err /. (1.0 -. target)
    end
  | Latency_p { p; limit_us = _ } ->
    if tk.w_lat_n = 0 then 0.0
    else begin
      let over = float_of_int tk.w_lat_over /. float_of_int tk.w_lat_n in
      over /. (1.0 -. (p /. 100.0))
    end
  | Goodput { floor_per_s } ->
    let secs = float_of_int tk.spec.window /. 1e9 in
    let rate = float_of_int tk.w_ok /. secs in
    if rate >= floor_per_s then 0.0
    else if rate <= 0.0 then infinity
    else floor_per_s /. rate

let tick t tk () =
  let b = burn tk in
  tk.windows <- tk.windows + 1;
  tk.last_burn <- b;
  if b > tk.worst_burn then tk.worst_burn <- b;
  if b > 1.0 then begin
    tk.violations <- tk.violations + 1;
    Engine.trace_instant t.engine ~cat:"slo" ~name:tk.spec.sname
      ~arg:(Printf.sprintf "burn=%.2f" b) ();
    Metrics.bump
      (Metrics.counter (Engine.metrics t.engine)
         ("slo." ^ tk.spec.sname ^ ".violations"))
      ()
  end;
  tk.w_sent <- 0;
  tk.w_ok <- 0;
  tk.w_lat_n <- 0;
  tk.w_lat_over <- 0

let rec arm t tk ~at =
  if at <= t.stop_at then
    Engine.schedule_at t.engine ~label:"slo" ~at (fun () ->
        tick t tk ();
        arm t tk ~at:(at + tk.spec.window))

let create ?(error = 0.01) ?start ~specs ~stop engine =
  List.iter validate specs;
  let t =
    {
      engine;
      trackers =
        Array.of_list
          (List.map
             (fun spec ->
               { spec; w_sent = 0; w_ok = 0; w_lat_n = 0; w_lat_over = 0;
                 windows = 0; violations = 0; worst_burn = 0.0;
                 last_burn = 0.0 })
             specs);
      lat = Hdr.create ~error ~name:"slo.latency_us" ();
      stop_at = stop;
    }
  in
  (* Windows begin at [start] (default: creation time): a monitor armed
     before its workload must not count the idle lead-in as silent
     goodput windows. *)
  let base =
    match start with
    | Some s -> Stdlib.max s (Engine.now engine)
    | None -> Engine.now engine
  in
  Array.iter (fun tk -> arm t tk ~at:(base + tk.spec.window)) t.trackers;
  t

let observe_sent t =
  let n = Array.length t.trackers in
  for i = 0 to n - 1 do
    let tk = Array.unsafe_get t.trackers i in
    tk.w_sent <- tk.w_sent + 1
  done

let observe_ok t =
  let n = Array.length t.trackers in
  for i = 0 to n - 1 do
    let tk = Array.unsafe_get t.trackers i in
    tk.w_ok <- tk.w_ok + 1
  done

let observe_latency t us =
  Hdr.add t.lat us;
  let n = Array.length t.trackers in
  for i = 0 to n - 1 do
    let tk = Array.unsafe_get t.trackers i in
    match tk.spec.objective with
    | Latency_p { limit_us; _ } ->
      tk.w_lat_n <- tk.w_lat_n + 1;
      if us > limit_us then tk.w_lat_over <- tk.w_lat_over + 1
    | Availability _ | Goodput _ -> ()
  done

let latency t = t.lat

let last_burn t ~name =
  Array.fold_left
    (fun acc tk ->
      if String.equal tk.spec.sname name then Some tk.last_burn else acc)
    None t.trackers

let worst_last_burn t =
  Array.fold_left (fun acc tk -> Float.max acc tk.last_burn) 0.0 t.trackers

let report t =
  Array.to_list
    (Array.map
       (fun tk ->
         {
           c_name = tk.spec.sname;
           c_objective = tk.spec.objective;
           c_windows = tk.windows;
           c_violations = tk.violations;
           c_worst_burn = tk.worst_burn;
         })
       t.trackers)

let compliant c = c.c_violations = 0

let compliance_ratio c =
  if c.c_windows = 0 then 1.0
  else float_of_int (c.c_windows - c.c_violations) /. float_of_int c.c_windows

let pp_compliance fmt c =
  Format.fprintf fmt "%-12s %-18s windows=%-3d violations=%-3d worst_burn=%.2f %s"
    c.c_name
    (Format.asprintf "%a" pp_objective c.c_objective)
    c.c_windows c.c_violations c.c_worst_burn
    (if compliant c then "OK" else "VIOLATED")

let pp_report fmt t =
  List.iter (fun c -> Format.fprintf fmt "%a@." pp_compliance c) (report t)
