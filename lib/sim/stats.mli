(** Sample accumulators for experiment metrics.

    A [t] keeps every sample (float) so that exact percentiles and CDFs can
    be produced, plus running moments for O(1) mean/stddev queries.  Sample
    volumes in this project are bounded (at most a few hundred thousand per
    run), so retention is cheap and avoids quantile-sketch error.

    This exactness is load-bearing: figure results (fig4/5/11 latency
    tables) are byte-compared across commits, so their percentiles must
    not move by a bucket width.  Where a digest only needs to be
    *mergeable* — per-hop metrics, SLO windows, fleet-wide aggregation
    across [--jobs] cells — use {!Hdr} instead (or {!to_hdr} to bridge
    an exact accumulator into that world). *)

type t

val create : ?name:string -> unit -> t
val name : t -> string

val add : t -> float -> unit

val clear : t -> unit
(** Drops all samples and running moments; the accumulator is reusable
    (keeps its name).  Used by {!Metrics.reset}. *)

val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased (n-1) sample variance; 0 with fewer than 2 samples. *)

val stddev : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100], by linear interpolation on the
    sorted samples.  Raises [Invalid_argument] when empty. *)

val median : t -> float

val cdf : ?points:int -> t -> (float * float) list
(** [(value, fraction <= value)] pairs suitable for plotting; [points]
    defaults to 100. *)

val samples : t -> float array
(** Copy of the raw samples in insertion order. *)

val merge : t -> t -> t
(** New accumulator holding both sample sets. *)

val to_hdr : ?error:float -> t -> Hdr.t
(** Folds the retained samples into a fresh mergeable sketch (error
    bound as {!Hdr.create}).  The bridge from exact per-cell results to
    fleet-wide percentile aggregation. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [name: n=… mean=… sd=… p50=… p99=…] rendering. *)

(** Fixed-width-bin histogram, used for Fig. 9's savings distribution. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> bins:int -> h
  val add : h -> float -> unit

  val counts : h -> int array
  (** Per-bin counts; out-of-range samples are clamped to the edge bins. *)

  val bin_bounds : h -> int -> float * float
  val total : h -> int
end
