(* Chrome trace-event JSON export.

   Builds a trace file loadable by Perfetto (ui.perfetto.dev) or
   chrome://tracing from the simulator's observability sources:

   - [add_trace]      — the engine's [Trace.t] ring: labeled jobs become
                        B/E duration slices, instants become 'i' events;
   - [add_timeline]   — a [Timeline.t]: per-(entity, category) CPU usage
                        as counter ('C') tracks, in cores;
   - [add_provenance] — a packet's [Provenance.t]: one slice per hop,
                        with queue/service attribution in the args.

   Each simulated entity (a deployment mode, a testbed, a probe) maps to
   one trace "process"; tracks within it are threads/counters.  Sim time
   is nanoseconds; the trace-event [ts] field is microseconds, emitted
   with 3 decimals so nothing is rounded away. *)

type t = {
  buf : Buffer.t;
  mutable next_pid : int;
  mutable n_events : int;
}

let create () =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  { buf; next_pid = 0; n_events = 0 }

let ts_us ns = Printf.sprintf "%.3f" (float_of_int ns /. 1000.)

let raw t json =
  if t.n_events > 0 then Buffer.add_char t.buf ',';
  t.n_events <- t.n_events + 1;
  Buffer.add_string t.buf json

let event t ~ph ~pid ~tid ~ts ~cat ~name args =
  raw t
    (Printf.sprintf
       "{\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"cat\":\"%s\",\"name\":\"%s\"%s}"
       ph pid tid (ts_us ts) (Trace.json_escape cat) (Trace.json_escape name)
       args)

let args_of_pairs = function
  | [] -> ""
  | pairs ->
    let body =
      List.map
        (fun (k, v) -> Printf.sprintf "\"%s\":%s" (Trace.json_escape k) v)
        pairs
      |> String.concat ","
    in
    Printf.sprintf ",\"args\":{%s}" body

(* Allocate a trace process and name it via a metadata event. *)
let process t ~name =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  raw t
    (Printf.sprintf
       "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
       pid (Trace.json_escape name));
  pid

let thread_name t ~pid ~tid name =
  raw t
    (Printf.sprintf
       "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
       pid tid (Trace.json_escape name))

let span t ~pid ?(tid = 0) ~cat ~name ~start_ns ~end_ns args =
  event t ~ph:"B" ~pid ~tid ~ts:start_ns ~cat ~name (args_of_pairs args);
  event t ~ph:"E" ~pid ~tid ~ts:end_ns ~cat ~name ""

let instant t ~pid ?(tid = 0) ~cat ~name ~ts args =
  event t ~ph:"i" ~pid ~tid ~ts ~cat ~name
    (match args_of_pairs args with
    | "" -> ",\"s\":\"t\""
    | a -> a ^ ",\"s\":\"t\"")

let counter t ~pid ~name ~ts pairs =
  event t ~ph:"C" ~pid ~tid:0 ~ts ~cat:"counter" ~name (args_of_pairs pairs)

(* Engine trace ring → slices and instants.  The ring stores matched
   B/E pairs for labeled jobs (Engine.exec), so a straight replay
   produces well-nested slices per track. *)
let add_trace t ~pid ?(tid = 0) trace =
  Trace.iter trace (fun (e : Trace.event) ->
      let args =
        if e.Trace.arg = "" then []
        else [ ("arg", "\"" ^ Trace.json_escape e.Trace.arg ^ "\"") ]
      in
      match e.Trace.kind with
      | Trace.Span_begin ->
        event t ~ph:"B" ~pid ~tid ~ts:e.Trace.ts ~cat:e.Trace.cat
          ~name:e.Trace.name (args_of_pairs args)
      | Trace.Span_end ->
        event t ~ph:"E" ~pid ~tid ~ts:e.Trace.ts ~cat:e.Trace.cat
          ~name:e.Trace.name ""
      | Trace.Instant ->
        instant t ~pid ~tid ~cat:e.Trace.cat ~name:e.Trace.name ~ts:e.Trace.ts
          args)

(* Timeline → one counter track per entity, one series per CPU category,
   in cores (busy-ns delta over the sampling period). *)
let add_timeline t ~pid tl =
  let period = float_of_int (Timeline.period tl) in
  List.iter
    (fun entity ->
      let prev = Array.make 5 0 in
      List.iter
        (fun (tk : Timeline.tick) ->
          let cats =
            Option.value
              (List.assoc_opt entity tk.Timeline.snap)
              ~default:(List.map (fun c -> (c, 0)) Cpu_account.all_categories)
          in
          let pairs =
            List.map
              (fun (c, total) ->
                let i = Cpu_account.category_index c in
                let delta = total - prev.(i) in
                prev.(i) <- total;
                ( Cpu_account.category_to_string c,
                  Printf.sprintf "%.4f" (float_of_int delta /. period) ))
              cats
          in
          counter t ~pid ~name:("cpu." ^ entity) ~ts:tk.Timeline.tick_ts pairs)
        (Timeline.ticks tl))
    (Timeline.entities tl)

(* Provenance record → one slice per hop with queue/service attribution. *)
let add_provenance t ~pid ?(tid = 0) entries =
  List.iter
    (fun (e : Provenance.entry) ->
      span t ~pid ~tid ~cat:"hop" ~name:e.Provenance.hop
        ~start_ns:e.Provenance.enqueue_ns ~end_ns:e.Provenance.end_ns
        [
          ("queue_ns", string_of_int (Provenance.queue_ns e));
          ("service_ns", string_of_int (Provenance.service_ns e));
        ])
    entries

let event_count t = t.n_events

let to_string t = Buffer.contents t.buf ^ "]}"

let to_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
