(** CPU-accounting timelines.

    {!Cpu_account.t} holds end-of-run totals per (entity, category).  A
    [Timeline.t] samples those totals at a fixed sim-time cadence while
    the engine runs, turning them into time series suitable for counter
    tracks in a trace viewer.

    The sampler reschedules itself every [period] until {!stop}ped, so
    it must be driven with [Engine.run ~until]; under an unbounded
    [Engine.run] it would keep the event queue non-empty forever. *)

type tick = {
  tick_ts : Time.ns;
  snap : (string * (Cpu_account.category * int) list) list;
      (** cumulative busy-ns per (entity, category) at [tick_ts] *)
}

type t

val create : ?period:Time.ns -> Engine.t -> Cpu_account.t -> t
(** [period] defaults to 1 ms of sim time.  Raises [Invalid_argument]
    when [period <= 0]. *)

val start : t -> unit
(** Begin sampling (first tick at the current sim date).  Idempotent. *)

val stop : t -> unit
(** Stop sampling; the pending tick, if any, becomes a no-op. *)

val period : t -> Time.ns
val sample_count : t -> int

val ticks : t -> tick list
(** Oldest first. *)

val entities : t -> string list
(** Every entity that appears in any tick, sorted. *)

val series : t -> entity:string -> Cpu_account.category -> (Time.ns * int) list
(** Cumulative busy-ns samples for one (entity, category), oldest first;
    ticks predating the entity's first charge read as 0. *)

val pp : Format.formatter -> t -> unit
