let sources : (string, Logs.src) Hashtbl.t = Hashtbl.create 16

(* The source table is process-global and subsystem modules ask for
   their source lazily, which with a parallel harness can happen on any
   domain. *)
let sources_mu = Mutex.create ()

let locked f =
  Mutex.lock sources_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock sources_mu) f

let src name =
  let full = "nest." ^ name in
  locked (fun () ->
      match Hashtbl.find_opt sources full with
      | Some s -> s
      | None ->
        let s = Logs.Src.create full ~doc:("nest subsystem " ^ name) in
        Logs.Src.set_level s None;
        Hashtbl.add sources full s;
        s)

let reporter_installed = ref false

let enable ?(level = Logs.Debug) () =
  locked (fun () ->
      if not !reporter_installed then begin
        Logs.set_reporter (Logs.format_reporter ());
        reporter_installed := true
      end;
      Hashtbl.iter (fun _ s -> Logs.Src.set_level s (Some level)) sources);
  (* Sources created after [enable] inherit via the global level too. *)
  Logs.set_level ~all:false (Some level)

let disable () =
  locked (fun () ->
      Hashtbl.iter (fun _ s -> Logs.Src.set_level s None) sources)

let stamp engine =
  match engine with
  | None -> ""
  | Some e -> Format.asprintf "[%a] " Time.pp (Engine.now e)

let msg level ?engine src thunk =
  Logs.msg ~src level (fun m -> m "%s%s" (stamp engine) (thunk ()))

let debug ?engine src thunk = msg Logs.Debug ?engine src thunk
let info ?engine src thunk = msg Logs.Info ?engine src thunk
let warn ?engine src thunk = msg Logs.Warning ?engine src thunk
