type counter = int ref

type metric =
  | M_counter of counter
  | M_gauge of float ref
  | M_probe of (unit -> float)
  | M_hist of Hdr.t

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let flavour = function
  | M_counter _ -> "counter"
  | M_gauge _ | M_probe _ -> "gauge"
  | M_hist _ -> "histogram"

let wrong_flavour name ~want m =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, not a %s" name (flavour m) want)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_counter c) -> c
  | Some m -> wrong_flavour name ~want:"counter" m
  | None ->
    let c = ref 0 in
    Hashtbl.add t.tbl name (M_counter c);
    c

let bump c ?(by = 1) () = c := !c + by
let counter_value c = !c

let set_gauge t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_gauge g) -> g := v
  | Some m -> wrong_flavour name ~want:"gauge" m
  | None -> Hashtbl.add t.tbl name (M_gauge (ref v))

let gauge_probe t name f =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_probe _) | None -> Hashtbl.replace t.tbl name (M_probe f)
  | Some m -> wrong_flavour name ~want:"gauge" m

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_hist h) -> h
  | Some m -> wrong_flavour name ~want:"histogram" m
  | None ->
    let h = Hdr.create ~name () in
    Hashtbl.add t.tbl name (M_hist h);
    h

type value =
  | Counter of int
  | Gauge of float
  | Summary of {
      count : int;
      total : float;
      mean : float;
      p50 : float;
      p90 : float;
      p99 : float;
      p999 : float;
      vmin : float;
      vmax : float;
    }

let value_of = function
  | M_counter c -> Counter !c
  | M_gauge g -> Gauge !g
  | M_probe f -> Gauge (f ())
  | M_hist h ->
    let n = Hdr.count h in
    if n = 0 then
      Summary
        { count = 0; total = 0.0; mean = 0.0; p50 = 0.0; p90 = 0.0;
          p99 = 0.0; p999 = 0.0; vmin = 0.0; vmax = 0.0 }
    else
      Summary
        {
          count = n;
          total = Hdr.total h;
          mean = Hdr.mean h;
          p50 = Hdr.percentile h 50.0;
          p90 = Hdr.percentile h 90.0;
          p99 = Hdr.percentile h 99.0;
          p999 = Hdr.percentile h 99.9;
          vmin = Hdr.min h;
          vmax = Hdr.max h;
        }

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name = Option.map value_of (Hashtbl.find_opt t.tbl name)

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> c := 0
      | M_gauge g -> g := 0.0
      | M_probe _ -> ()
      | M_hist h -> Hdr.clear h)
    t.tbl

let size t = Hashtbl.length t.tbl

let pp_value fmt = function
  | Counter n -> Format.fprintf fmt "%d" n
  | Gauge v -> Format.fprintf fmt "%g" v
  | Summary s ->
    Format.fprintf fmt
      "n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f min=%.3f max=%.3f"
      s.count s.mean s.p50 s.p90 s.p99 s.p999 s.vmin s.vmax

let pp_text fmt t =
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-40s %a@." name pp_value v)
    (snapshot t)

let json_float v =
  (* [%g] alone can print "inf"/"nan", which is not JSON. *)
  if Float.is_nan v then "null"
  else if v = infinity then "1e308"
  else if v = neg_infinity then "-1e308"
  else Printf.sprintf "%.17g" v

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      let name = Trace.json_escape name in
      (match v with
      | Counter n ->
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"type\":\"counter\",\"value\":%d}"
             name n)
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"type\":\"gauge\",\"value\":%s}"
             name (json_float g))
      | Summary s ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"type\":\"histogram\",\"count\":%d,\"total\":%s,\
              \"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"p999\":%s,\
              \"min\":%s,\"max\":%s}"
             name s.count (json_float s.total) (json_float s.mean)
             (json_float s.p50) (json_float s.p90) (json_float s.p99)
             (json_float s.p999) (json_float s.vmin) (json_float s.vmax))))
    (snapshot t);
  Buffer.add_char b ']';
  Buffer.contents b
