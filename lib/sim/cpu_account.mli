(** CPU-time accounting by (entity, category), mirroring the paper's CPU
    breakdowns (Figs. 6, 7, 14, 15).

    Entities are free-form names ("vm1", "host", "memcached-server", ...).
    Categories follow the paper's taxonomy: [usr] application work, [sys]
    kernel work excluding interrupts, [soft] kernel servicing software
    interrupts (where netfilter NAT hooks run), [guest] host CPU time given
    to a guest VM, [irq] hardware interrupt service. *)

type category = Usr | Sys | Soft | Guest | Irq

val category_to_string : category -> string
val all_categories : category list

val category_index : category -> int
(** Stable dense index in [0, 4], in {!all_categories} order. *)

type t

val create : unit -> t
val charge : t -> entity:string -> category -> Time.ns -> unit

val get : t -> entity:string -> category -> Time.ns
(** 0 for unknown entities. *)

val entity_total : t -> entity:string -> Time.ns
val entities : t -> string list
(** Sorted, deduplicated. *)

val reset : t -> unit
(** Zeroes all counters (used to discard warmup). *)

val snapshot : t -> (string * (category * Time.ns) list) list
(** Sorted by entity, each with all five categories. *)

val cores : t -> entity:string -> category -> window:Time.ns -> float
(** Average number of busy cores over an observation window:
    charged-ns / window. *)

val pp : Format.formatter -> t -> unit
