(** Live SLO monitoring: declarative objectives, windowed burn-rate
    evaluation on the engine clock, violations as trace instants.

    A monitor is created with a list of {!spec}s and a stop horizon;
    each spec is evaluated every [window] of simulated time until the
    horizon (the self-scheduling ticks never outlive it, so a draining
    [Engine.run] still terminates).  Drivers feed it three kinds of raw
    observation — {!observe_sent} (an operation offered),
    {!observe_ok} (an operation completed), {!observe_latency} (a
    completion latency in µs) — and each window computes a burn rate:
    budget consumed over budget available.  [burn > 1] is a violation:
    recorded as a cat-["slo"] trace instant and a
    [slo.<name>.violations] metrics counter (registered on first
    violation only).

    All accounting is simulation-time driven, so reports are
    deterministic, and the run-wide latency digest is a mergeable
    {!Hdr.t} — fleet-wide percentiles across [--jobs] cells come from
    {!Hdr.merge_into} over the per-cell monitors. *)

type objective =
  | Latency_p of { p : float; limit_us : float }
      (** At most [1 - p/100] of window completions may exceed
          [limit_us]. *)
  | Availability of { target : float }
      (** Window completion ratio (ok/sent) must stay ≥ [target]. *)
  | Goodput of { floor_per_s : float }
      (** Window completion rate must stay ≥ [floor_per_s]. *)

type spec = { sname : string; objective : objective; window : Time.ns }

(** Spec constructors with a 500 ms default window. *)

val latency_p : ?window:Time.ns -> p:float -> limit_us:float -> unit -> spec
val availability : ?window:Time.ns -> target:float -> unit -> spec
val goodput : ?window:Time.ns -> floor_per_s:float -> unit -> spec

type t

val create :
  ?error:float ->
  ?start:Time.ns ->
  specs:spec list ->
  stop:Time.ns ->
  Engine.t ->
  t
(** Validates every spec ([Invalid_argument] on nonsense bounds) and
    arms one evaluation tick per spec, repeating every [spec.window]
    until [stop].  Windows begin at [start] (default: creation time) —
    set it to the workload's start so an idle lead-in is not counted as
    silent goodput windows.  [error] is the latency sketch's relative
    error bound. *)

val observe_sent : t -> unit
val observe_ok : t -> unit

val observe_latency : t -> float -> unit
(** Completion latency in microseconds; feeds both the run-wide sketch
    and every latency objective's window. *)

val latency : t -> Hdr.t
(** Run-wide completion-latency sketch (µs); merge across cells for
    fleet percentiles. *)

val last_burn : t -> name:string -> float option
(** Burn rate of the most recently completed window of the named spec
    (0.0 before the first window closes; [None] for an unknown name).
    This is the live reading control loops — admission controllers,
    autoscalers — consume.  It is only ever updated inside the monitor's
    own window-tick events, so a reader on the same engine observes a
    value that is a pure function of the deterministic event order. *)

val worst_last_burn : t -> float
(** Max of {!last_burn} across every spec (0.0 with no specs). *)

type compliance = {
  c_name : string;
  c_objective : objective;
  c_windows : int;      (** Full windows evaluated. *)
  c_violations : int;   (** Windows with burn > 1. *)
  c_worst_burn : float; (** Peak window burn; [infinity] possible. *)
}

val report : t -> compliance list
(** One entry per spec, in spec order. *)

val compliant : compliance -> bool

val compliance_ratio : compliance -> float
(** Fraction of windows without violation; 1.0 when no window
    completed. *)

val pp_objective : Format.formatter -> objective -> unit
val pp_compliance : Format.formatter -> compliance -> unit
val pp_report : Format.formatter -> t -> unit
