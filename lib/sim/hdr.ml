(* Bounded-relative-error streaming histogram (HDR/DDSketch-style).

   Values are binned into logarithmic buckets: bucket [i] covers
   (gamma^(i-1), gamma^i] with gamma = (1+alpha)/(1-alpha), so the
   midpoint estimate 2*gamma^i/(gamma+1) is within [alpha] relative
   error of any sample in the bucket.  Alongside the buckets we keep the
   exact count/sum/min/max, so totals and extrema read back exactly —
   only interior percentiles carry the bucket error.

   Buckets are a dense int array over the occupied index range, grown on
   demand; merging two sketches with the same [error] is a bucket-wise
   sum, which is what makes percentiles composable across shards and
   [--jobs] cells. *)

type t = {
  hname : string;
  alpha : float;
  gamma : float;
  ln_gamma : float;
  idx_min : int;  (* clamp: indices for values below ~1e-12 collapse *)
  idx_max : int;  (* clamp: indices for values above ~1e18 collapse *)
  mutable zero : int;  (* samples <= 0 (and NaN), kept out of the log bins *)
  mutable buckets : int array;
  mutable offset : int;  (* absolute index of buckets.(0); meaningful when
                            [Array.length buckets > 0] *)
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let create ?(error = 0.01) ?(name = "") () =
  if not (error > 0.0 && error < 1.0) then
    invalid_arg "Hdr.create: error must be in (0, 1)";
  let gamma = (1.0 +. error) /. (1.0 -. error) in
  let ln_gamma = log gamma in
  let idx_of v = int_of_float (Float.ceil (log v /. ln_gamma)) in
  {
    hname = name;
    alpha = error;
    gamma;
    ln_gamma;
    idx_min = idx_of 1e-12;
    idx_max = idx_of 1e18;
    zero = 0;
    buckets = [||];
    offset = 0;
    n = 0;
    sum = 0.0;
    mn = infinity;
    mx = neg_infinity;
  }

let name t = t.hname
let error t = t.alpha
let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
let min t = t.mn
let max t = t.mx

let clear t =
  t.zero <- 0;
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.n <- 0;
  t.sum <- 0.0;
  t.mn <- infinity;
  t.mx <- neg_infinity

(* Absolute log-bucket index of a strictly positive value, clamped to the
   supported range so one wild sample cannot balloon the bucket array. *)
let[@inline] idx_of t v =
  let i = int_of_float (Float.ceil (log v /. t.ln_gamma)) in
  if i < t.idx_min then t.idx_min else if i > t.idx_max then t.idx_max else i

(* Grow [t.buckets] so absolute index [i] is addressable.  Rare: only on
   first sight of a value outside the occupied range. *)
let ensure t i =
  let len = Array.length t.buckets in
  if len = 0 then begin
    t.buckets <- Array.make 64 0;
    t.offset <- i - 32
  end
  else if i < t.offset || i >= t.offset + len then begin
    let lo = Stdlib.min t.offset (i - 16) in
    let hi = Stdlib.max (t.offset + len) (i + 16) in
    let nb = Array.make (hi - lo) 0 in
    Array.blit t.buckets 0 nb (t.offset - lo) len;
    t.buckets <- nb;
    t.offset <- lo
  end

let add t v =
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.mn then t.mn <- v;
  if v > t.mx then t.mx <- v;
  if not (v > 0.0) then t.zero <- t.zero + 1
  else begin
    let i = idx_of t v in
    let len = Array.length t.buckets in
    if len = 0 || i < t.offset || i >= t.offset + len then ensure t i;
    let j = i - t.offset in
    Array.unsafe_set t.buckets j (Array.unsafe_get t.buckets j + 1)
  end

(* Midpoint estimate for bucket (gamma^(i-1), gamma^i]: within [alpha]
   relative error of every sample the bucket holds. *)
let bucket_value t i = 2.0 *. exp (float_of_int i *. t.ln_gamma) /. (t.gamma +. 1.0)

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let p = Stdlib.min 100.0 (Stdlib.max 0.0 p) in
    let rank =
      Stdlib.max 1
        (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)))
    in
    let est =
      if rank <= t.zero then Stdlib.min 0.0 t.mn
      else begin
        let cum = ref t.zero in
        let len = Array.length t.buckets in
        let res = ref t.mx in
        (try
           for j = 0 to len - 1 do
             cum := !cum + t.buckets.(j);
             if !cum >= rank then begin
               res := bucket_value t (t.offset + j);
               raise Exit
             end
           done
         with Exit -> ());
        !res
      end
    in
    (* Exact extrema are tracked, so never report outside [mn, mx]. *)
    Stdlib.min t.mx (Stdlib.max t.mn est)
  end

let median t = percentile t 50.0

let merge_into ~into src =
  if into.alpha <> src.alpha then
    invalid_arg "Hdr.merge_into: mismatched error bounds";
  into.zero <- into.zero + src.zero;
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  if src.mn < into.mn then into.mn <- src.mn;
  if src.mx > into.mx then into.mx <- src.mx;
  let len = Array.length src.buckets in
  if len > 0 then begin
    ensure into src.offset;
    ensure into (src.offset + len - 1);
    for j = 0 to len - 1 do
      let c = src.buckets.(j) in
      if c > 0 then begin
        let k = src.offset + j - into.offset in
        into.buckets.(k) <- into.buckets.(k) + c
      end
    done
  end

let merge ?name a b =
  let m = create ~error:a.alpha ?name () in
  merge_into ~into:m a;
  merge_into ~into:m b;
  m

let pp_summary fmt t =
  if t.n = 0 then Format.fprintf fmt "%s: (no samples)" t.hname
  else
    Format.fprintf fmt
      "%s: n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f min=%.3f max=%.3f (±%.1f%%)"
      t.hname t.n (mean t) (percentile t 50.0) (percentile t 90.0)
      (percentile t 99.0) (percentile t 99.9) t.mn t.mx (t.alpha *. 100.0)
