(** Fixed-size domain pool for embarrassingly parallel fan-out.

    The simulator itself is strictly single-threaded — an {!Engine} and
    everything scheduled on it must stay on one domain.  What {e is}
    parallel is the experiment harness: independent cells (one testbed +
    workload each) share no mutable state and can run on separate
    domains.  This module is the only place the repository spawns
    domains. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs] domains
    (the caller participates, so [jobs - 1] are spawned).  Order is
    preserved.  [jobs <= 1] degrades to plain [List.map] with no domain
    machinery.  If any application of [f] raises, the first such
    exception (in input order) is re-raised with its backtrace after all
    domains have joined.

    [f] must not touch domain-unsafe shared state; engines, testbeds and
    workloads created {e inside} [f] are safe because each cell owns its
    world. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: a sensible [~jobs] default. *)
