(** Low-overhead event-tracing ring.

    A trace is a fixed-capacity ring of timestamped events: span begin/end
    pairs bracket an activity (an engine event class, an experiment phase)
    and instants mark point occurrences (a packet crossing a hop, a drop).
    When the ring is full the oldest events are overwritten, so a tracer
    can stay installed for a whole run at bounded memory; {!dropped} says
    how much history was lost.

    Recording is O(1) with no allocation beyond the event record itself.
    Subsystems reach their tracer through {!Engine.tracer}, which is [None]
    unless one was installed — the disabled path is a single option
    check. *)

type t

type kind = Span_begin | Span_end | Instant

type event = {
  ts : Time.ns;    (** Simulation date of the event. *)
  kind : kind;
  cat : string;    (** Coarse category, e.g. ["hop"], ["pkt"], ["engine"]. *)
  name : string;   (** Subject, e.g. a device or event-class name. *)
  arg : string;    (** Free-form detail; [""] when none. *)
}

val create : ?capacity:int -> unit -> t
(** Ring of at most [capacity] events (default 8192).  Raises
    [Invalid_argument] when [capacity <= 0]. *)

val record :
  t -> ts:Time.ns -> kind -> cat:string -> name:string -> ?arg:string ->
  unit -> unit

val instant :
  t -> ts:Time.ns -> cat:string -> name:string -> ?arg:string -> unit -> unit

val span_begin :
  t -> ts:Time.ns -> cat:string -> name:string -> ?arg:string -> unit -> unit

val span_end :
  t -> ts:Time.ns -> cat:string -> name:string -> ?arg:string -> unit -> unit

val events : t -> event list
(** Retained events, oldest first. *)

val iter : t -> (event -> unit) -> unit
(** [iter t f] applies [f] to every retained event, oldest first, without
    materialising a list.  Exporters and dumpers should prefer this over
    {!events}. *)

val recorded : t -> int
(** Total events ever recorded (monotonic). *)

val dropped : t -> int
(** Events lost to ring wrap-around: [recorded - min recorded capacity]. *)

val capacity : t -> int

val clear : t -> unit
(** Empties the ring and releases the retained events (the backing array
    keeps its capacity but no longer references old events). *)

val by_name : t -> (string * int) list
(** Retained-event counts aggregated by [(cat, name)], rendered as
    ["cat:name"], sorted by name.  The per-hop summary view. *)

val pp_event : Format.formatter -> event -> unit

val pp_text : ?limit:int -> Format.formatter -> t -> unit
(** Human-readable dump: one line per event, oldest first; at most [limit]
    events (default: all retained), preceded by a header line. *)

val to_json : t -> string
(** The whole ring as a JSON object:
    [{"capacity":…,"recorded":…,"dropped":…,"events":[…]}]. *)

val json_escape : string -> string
(** Escapes a string for embedding in a JSON string literal.  Shared by
    the other hand-rolled JSON emitters in this tree ({!Metrics.to_json},
    the experiment drivers). *)
