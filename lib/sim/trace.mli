(** Low-overhead event tracing: sharded fixed-layout binary rings with a
    deterministic merged read view.

    A trace is one or more fixed-capacity ring shards of timestamped
    events: span begin/end pairs bracket an activity (an engine event
    class, an experiment phase) and instants mark point occurrences (a
    packet crossing a hop, a drop).  When a shard is full its oldest
    events are overwritten, so a tracer can stay installed for a whole
    run at bounded memory; {!dropped} says how much history was lost.

    Recording is O(1) and allocation-free: an event is two native-int
    stores into a preallocated Bigarray (timestamp + a packed
    kind/prio/cat/name word) plus a string slot for the arg.  Category
    and subject strings are interned once per trace into bounded pools;
    hot paths can pre-intern with {!intern_cat}/{!intern_name} and
    record through {!record_i} without even the hash lookup on the
    category.

    Readers never see shards: {!iter}, {!events}, {!by_name},
    {!to_json} and the exporters all consume one merged stream, a k-way
    merge keyed by [(ts, prio, shard, seq)].  Per-shard sequence
    numbers make the merge total and deterministic — the same events
    yield the same order however many shards (or, via {!iter_merged},
    traces) they were written to.  Within a shard, events are assumed
    recorded in non-decreasing [ts] order (the engine clock guarantees
    this); the merge is still deterministic otherwise, just not
    globally time-sorted.

    Subsystems reach their tracer through {!Engine.tracer}, which is
    [None] unless one was installed — the disabled path is a single
    option check. *)

type t

type kind = Span_begin | Span_end | Instant

type event = {
  ts : Time.ns;    (** Simulation date of the event. *)
  kind : kind;
  cat : string;    (** Coarse category, e.g. ["hop"], ["pkt"], ["engine"]. *)
  name : string;   (** Subject, e.g. a device or event-class name. *)
  arg : string;    (** Free-form detail; [""] when none. *)
  prio : int;      (** Merge priority within a timestamp; 0 by default. *)
  shard : int;     (** Shard the event was recorded to. *)
  seq : int;       (** Per-shard monotonic sequence number. *)
}

val create : ?capacity:int -> ?shards:int -> unit -> t
(** [shards] rings (default 1) of at most [capacity] events each
    (default 8192).  [capacity] is rounded up to a power of two so the
    ring index is a mask rather than a division.  Raises
    [Invalid_argument] when [capacity <= 0] or
    [shards] is outside [1..256]. *)

val record :
  t -> ?shard:int -> ?prio:int -> ts:Time.ns -> kind -> cat:string ->
  name:string -> ?arg:string -> unit -> unit

val instant :
  t -> ?shard:int -> ?prio:int -> ts:Time.ns -> cat:string -> name:string ->
  ?arg:string -> unit -> unit

val span_begin :
  t -> ?shard:int -> ?prio:int -> ts:Time.ns -> cat:string -> name:string ->
  ?arg:string -> unit -> unit

val span_end :
  t -> ?shard:int -> ?prio:int -> ts:Time.ns -> cat:string -> name:string ->
  ?arg:string -> unit -> unit

val intern_cat : t -> string -> int
(** Interns a category (≤ 4096 distinct per trace; raises
    [Invalid_argument] beyond).  The returned id is stable for the
    trace's lifetime and survives {!clear}. *)

val intern_name : t -> string -> int
(** Interns a subject name (≤ 65536 distinct per trace). *)

val record_i :
  t -> shard:int -> prio:int -> ts:Time.ns -> kind -> cat:int -> name:int ->
  arg:string -> unit
(** The pre-interned hot entry: no optional arguments, no lookups, no
    allocation.  [cat]/[name] must come from {!intern_cat} /
    {!intern_name} on the same trace. *)

val events : t -> event list
(** Retained events in merged [(ts, prio, shard, seq)] order. *)

val iter : t -> (event -> unit) -> unit
(** [iter t f] applies [f] to every retained event in merged order
    without materialising a list.  Exporters and dumpers should prefer
    this over {!events}. *)

val iter_merged : t list -> (event -> unit) -> unit
(** Merged view over several traces (e.g. per-cell tracers from a
    [--jobs] run), keyed by [(ts, prio, trace, shard, seq)] with the
    list position as the trace key.  Deterministic for any fixed input
    order. *)

val merged_events : t list -> event list

val recorded : t -> int
(** Total events ever recorded across all shards (monotonic). *)

val dropped : t -> int
(** Events lost to ring wrap-around, summed over shards. *)

val capacity : t -> int
(** Total retained-event bound: shard capacity × number of shards. *)

val shards : t -> int
val shard_capacity : t -> int

val clear : t -> unit
(** Empties every shard and releases retained arg strings.  Interned
    cat/name pools are kept (ids remain valid). *)

val by_name : t -> (string * int) list
(** Retained-event counts aggregated by [(cat, name)], rendered as
    ["cat:name"], sorted by name.  The per-hop summary view. *)

val pp_event : Format.formatter -> event -> unit

val pp_text : ?limit:int -> Format.formatter -> t -> unit
(** Human-readable dump: one line per event in merged order; at most
    [limit] events (default: all retained), preceded by a header line. *)

val to_json : t -> string
(** The whole ring as a JSON object:
    [{"capacity":…,"shards":…,"recorded":…,"dropped":…,"events":[…]}]. *)

val json_escape : string -> string
(** Escapes a string for embedding in a JSON string literal.  Shared by
    the other hand-rolled JSON emitters in this tree ({!Metrics.to_json},
    the experiment drivers). *)
