type t = {
  stat_name : string;
  mutable data : float array;
  mutable len : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
  mutable sorted_cache : float array option;
      (* Samples sorted ascending; invalidated by [add]/[clear].  Shared by
         all percentile/CDF queries between additions, so a summary line
         costs one sort, not one per percentile. *)
}

let create ?(name = "") () =
  { stat_name = name; data = [||]; len = 0; sum = 0.0; sumsq = 0.0;
    mn = infinity; mx = neg_infinity; sorted_cache = None }

let name t = t.stat_name

let add t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let nd = Array.make (Stdlib.max 64 (cap * 2)) 0.0 in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  t.sorted_cache <- None;
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let clear t =
  t.data <- [||];
  t.len <- 0;
  t.sum <- 0.0;
  t.sumsq <- 0.0;
  t.mn <- infinity;
  t.mx <- neg_infinity;
  t.sorted_cache <- None

let count t = t.len
let total t = t.sum
let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

let variance t =
  if t.len < 2 then 0.0
  else begin
    let n = float_of_int t.len in
    let v = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    Stdlib.max 0.0 v
  end

let stddev t = sqrt (variance t)
let min t = t.mn
let max t = t.mx

(* Only handed out internally: callers must not mutate the result.
   [Float.compare] is a total order (NaN sorts below every number), so a
   stray NaN sample cannot corrupt the sort the way an inconsistent
   comparison would. *)
let sorted t =
  match t.sorted_cache with
  | Some a -> a
  | None ->
    let a = Array.sub t.data 0 t.len in
    Array.sort Float.compare a;
    t.sorted_cache <- Some a;
    a

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty";
  let a = sorted t in
  let p = Stdlib.min 100.0 (Stdlib.max 0.0 p) in
  let rank = p /. 100.0 *. float_of_int (t.len - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then a.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. w)) +. (a.(hi) *. w)
  end

let median t = percentile t 50.0

let cdf ?(points = 100) t =
  if t.len = 0 then []
  else begin
    let a = sorted t in
    let n = t.len in
    let sample i =
      let idx = Stdlib.min (n - 1) (i * (n - 1) / Stdlib.max 1 (points - 1)) in
      (a.(idx), float_of_int (idx + 1) /. float_of_int n)
    in
    List.init points sample
  end

let samples t = Array.sub t.data 0 t.len

let merge a b =
  let m = create ~name:(name a) () in
  Array.iter (add m) (samples a);
  Array.iter (add m) (samples b);
  m

let to_hdr ?error t =
  let h = Hdr.create ?error ~name:t.stat_name () in
  for i = 0 to t.len - 1 do
    Hdr.add h t.data.(i)
  done;
  h

let pp_summary fmt t =
  if t.len = 0 then Format.fprintf fmt "%s: (no samples)" t.stat_name
  else
    Format.fprintf fmt "%s: n=%d mean=%.3f sd=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f"
      t.stat_name t.len (mean t) (stddev t) (percentile t 50.0)
      (percentile t 99.0) t.mn t.mx

module Histogram = struct
  type h = { lo : float; hi : float; width : float; bins : int array }

  let create ~lo ~hi ~bins =
    if bins <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; width = (hi -. lo) /. float_of_int bins; bins = Array.make bins 0 }

  let add h x =
    let i = int_of_float ((x -. h.lo) /. h.width) in
    let i = Stdlib.max 0 (Stdlib.min (Array.length h.bins - 1) i) in
    h.bins.(i) <- h.bins.(i) + 1

  let counts h = Array.copy h.bins

  let bin_bounds h i =
    (h.lo +. (float_of_int i *. h.width), h.lo +. (float_of_int (i + 1) *. h.width))

  let total h = Array.fold_left ( + ) 0 h.bins
end
