(* Hierarchical timing wheel (Varghese & Lauck) fronting a binary heap.

   Six levels of 32 slots each; priorities are read as six base-32
   digits.  An entry is filed at the highest level where its digit
   differs from [base] (the lowest undelivered tick), in the slot named
   by its own digit at that level.  Level-k slots therefore partition
   base's aligned level-(k+1) frame, which gives the key invariant: an
   entry at level k is strictly smaller than every entry at any level
   above k, so the lowest non-empty level always holds the global
   minimum and pop never scans the levels above it.

   Events whose priority differs from [base] beyond the top digit
   (i.e. outside base's aligned 32^6 = 2^30-tick frame, ~1.07 s of
   simulated nanoseconds) spill into an overflow min-heap and drain
   back as [base] crosses frame boundaries.

   Near-future scheduling — the common case in the event loop, where
   most delays are nanoseconds to microseconds — is O(1) per push; pop
   finds the next occupied slot with a per-level occupancy bitmask
   instead of an O(log n) sift, cascading one higher-level slot down
   when the levels below it are exhausted (each entry cascades at most
   once per level, so the amortized cost per event is O(levels)).

   Ordering contract (same as {!Heap}): extraction is by (priority,
   sequence), FIFO among equal priorities.  Sequence numbers are
   assigned at push; a level-0 slot holds exactly one tick, so taking
   the minimum-sequence entry of the first occupied slot reproduces the
   heap's deterministic order exactly — including for entries that
   migrated through cascades or the overflow heap (overflow entries are
   pushed in sequence order and the heap is itself FIFO on equal
   priorities, so they drain back in order). *)

type 'a entry = { e_prio : int; e_seq : int; e_value : 'a }

let slot_bits = 5
let slots_per_level = 1 lsl slot_bits (* 32 *)
let slot_mask = slots_per_level - 1
let levels = 6
let span = 1 lsl (slot_bits * levels) (* 2^30 ticks *)

type 'a t = {
  slots : 'a entry list array array; (* [levels][slots_per_level] *)
  masks : int array;                 (* occupancy bitmask per level *)
  overflow : 'a entry Heap.t;        (* beyond base's top-level frame *)
  mutable base : int;                (* lowest undelivered tick *)
  mutable count : int;
  mutable next_seq : int;
  mutable cached_min : int;          (* memoized peek; -1 = unknown *)
}

let create () =
  { slots = Array.init levels (fun _ -> Array.make slots_per_level []);
    masks = Array.make levels 0;
    overflow = Heap.create ();
    base = 0;
    count = 0;
    next_seq = 0;
    cached_min = -1 }

(* Smallest set bit of [m] (which must be non-zero). *)
let ctz m =
  let r = ref 0 and m = ref m in
  while !m land 1 = 0 do
    incr r;
    m := !m lsr 1
  done;
  !r

(* Highest level at which [x = prio lxor base] has a non-zero digit;
   [levels] means the entry falls outside base's top-level frame. *)
let level_of_diff x =
  if x < 32 then 0
  else if x < 1024 then 1
  else if x < 32768 then 2
  else if x < 1048576 then 3
  else if x < 33554432 then 4
  else if x < span then 5
  else levels

(* Files [e] relative to the current [base].  All wheel-resident
   entries satisfy [e.e_prio >= t.base]. *)
let place t e =
  let k = level_of_diff (e.e_prio lxor t.base) in
  if k = levels then Heap.push t.overflow ~prio:e.e_prio e
  else begin
    let slot = (e.e_prio lsr (slot_bits * k)) land slot_mask in
    let lv = t.slots.(k) in
    lv.(slot) <- e :: lv.(slot);
    t.masks.(k) <- t.masks.(k) lor (1 lsl slot)
  end

(* Pulls overflow events that share base's top-level frame. *)
let drain_overflow t =
  let rec go () =
    match Heap.peek_prio t.overflow with
    | Some p when p lxor t.base < span -> (
      match Heap.pop t.overflow with
      | Some (_, e) ->
        place t e;
        go ()
      | None -> ())
    | Some _ | None -> ()
  in
  go ()

(* Empties level-[k] slot [slot] and re-files its entries.  The caller
   guarantees every level below [k] is empty and the slot is the first
   occupied one at level k, so its aligned start is the new base; the
   entries then differ from it only below digit k and descend. *)
let cascade t k slot =
  let lv = t.slots.(k) in
  let entries = lv.(slot) in
  lv.(slot) <- [];
  t.masks.(k) <- t.masks.(k) land lnot (1 lsl slot);
  let g = slot_bits * k in
  (* [lsl]/[lsr] are right-associative in OCaml: parenthesize the
     round-down explicitly. *)
  let frame = (t.base lsr (g + slot_bits)) lsl (g + slot_bits) in
  let start = frame lor (slot lsl g) in
  if start > t.base then begin
    t.base <- start;
    drain_overflow t
  end;
  List.iter (fun e -> place t e) entries

(* Lowest pending tick without disturbing [base]: peeking must not
   commit the wheel to "nothing will ever be filed before the next
   event".  An external driver (a cross-shard mailbox delivery, see
   {!Sharded}) can still execute work dated between the clock and that
   event, and its follow-up pushes would then be clamped forward by a
   prematurely advanced [base] — a whole-rotation misdelivery.  So the
   read path scans the first occupied slot (its list is the global
   minimum's home, see the level invariant above) and leaves cascading
   to [pop], where [base] only ever advances to a tick being delivered.
   The result is memoized wherever the minimum lives; [pop] recomputes
   its slot from the level-0 mask after settling, so the memo never
   implies level-0 residence.  -1 when empty. *)
let find_min t =
  if t.count = 0 then -1
  else if t.cached_min >= 0 then t.cached_min
  else begin
    let m =
      if t.masks.(0) <> 0 then
        ((t.base lsr slot_bits) lsl slot_bits) lor ctz t.masks.(0)
      else begin
        let k = ref 1 in
        while !k < levels && t.masks.(!k) = 0 do
          incr k
        done;
        if !k < levels then
          List.fold_left
            (fun acc e -> if e.e_prio < acc then e.e_prio else acc)
            max_int
            t.slots.(!k).(ctz t.masks.(!k))
        else begin
          match Heap.peek_prio t.overflow with
          | Some p -> p
          | None -> assert false (* count > 0 *)
        end
      end
    in
    t.cached_min <- m;
    m
  end

(* Pop-time companion of [find_min]: cascades until the minimum lives in
   a level-0 slot (advancing [base] as frames resolve — safe here, the
   caller is about to deliver that tick). *)
let rec settle t =
  if t.masks.(0) = 0 then begin
    let k = ref 1 in
    while !k < levels && t.masks.(!k) = 0 do
      incr k
    done;
    if !k < levels then cascade t !k (ctz t.masks.(!k))
    else begin
      (* Only the overflow heap holds events: jump to its frame. *)
      match Heap.peek_prio t.overflow with
      | Some p ->
        t.base <- p;
        drain_overflow t
      | None -> assert false (* count > 0 *)
    end;
    settle t
  end

let peek_prio t =
  let m = find_min t in
  if m < 0 then None else Some m

(* Removes the minimum-sequence entry from [l] (non-empty).  Level-0
   slots hold one tick and are usually singletons — return the static
   empty list for that case instead of paying a filter pass. *)
let take_min_seq l =
  match l with
  | [ e ] -> (e, [])
  | l ->
    let rec best m = function
      | [] -> m
      | e :: rest -> best (if e.e_seq < m.e_seq then e else m) rest
    in
    let m = best (List.hd l) (List.tl l) in
    (m, List.filter (fun e -> e != m) l)

let pop t =
  if t.count = 0 then None
  else begin
    settle t;
    let m = ((t.base lsr slot_bits) lsl slot_bits) lor ctz t.masks.(0) in
    let slot = m land slot_mask in
    let lv = t.slots.(0) in
    let e, rest = take_min_seq lv.(slot) in
    lv.(slot) <- rest;
    if rest = [] then begin
      t.masks.(0) <- t.masks.(0) land lnot (1 lsl slot);
      t.cached_min <- -1
    end;
    t.count <- t.count - 1;
    if m > t.base then begin
      t.base <- m;
      drain_overflow t
    end;
    Some (e.e_prio, e.e_value)
  end

let push t ~prio value =
  (* Dates before the current base would already have been delivered;
     clamp them to fire immediately (the engine clamps to its clock
     before calling, so this only matters for standalone use). *)
  let prio = if prio < t.base then t.base else prio in
  let e = { e_prio = prio; e_seq = t.next_seq; e_value = value } in
  t.next_seq <- t.next_seq + 1;
  t.count <- t.count + 1;
  place t e;
  if prio < t.cached_min then t.cached_min <- prio

let size t = t.count
let is_empty t = t.count = 0

let clear t =
  Array.iter (fun lv -> Array.fill lv 0 slots_per_level []) t.slots;
  Array.fill t.masks 0 levels 0;
  Heap.clear t.overflow;
  t.base <- 0;
  t.count <- 0;
  t.cached_min <- -1
