(** Sharded parallel simulation: conservative per-shard event loops with
    link-latency lookahead.

    A sharded run partitions a scenario's state (hosts, namespaces,
    devices, VMs, workload endpoints) into [shards] sub-engines — each an
    ordinary {!Engine.t} with its own wheel queue, metrics registry and
    (optionally) trace ring.  Within a shard, events execute in exactly
    the engine's [(prio, seq)] order.  Shards interact only through
    {!link}s: timestamped mailboxes whose [lookahead] is a lower bound on
    the latency of every message sent across them (the simulated
    inter-node link delay — netem/VXLAN underlay latency in this
    repository's scenarios).

    Synchronization is conservative, in the classic null-message style:
    each shard may execute events strictly earlier than
    [min over inbound links (publisher clock + lookahead)].  A shard
    that is blocked (or out of work) broadcasts its clock floor — the
    lower bound on its next event — so neighbours can advance even when
    a link is idle; these broadcasts are counted as null messages in
    {!stats}.  Because lookahead is required to be positive, the
    broadcast fixpoint always makes progress and the system cannot
    deadlock.

    Determinism is a hard invariant: a message's delivery date is fixed
    at send time, deliveries at equal dates order by (link creation
    order, per-link send order) and execute before same-date local
    events, so results are byte-identical however many shards the
    scenario is folded onto and however many domains execute them —
    [shards=1 ≡ shards=N], [domains=1 ≡ domains=D]. *)

type t

type link
(** A unidirectional cross-shard channel with conservative lookahead. *)

val create : ?seed:int64 -> shards:int -> unit -> t
(** [shards] sub-engines.  Each sub-engine's root RNG seed is derived
    deterministically from [seed] and the shard index; scenario state
    that must be identical across shard counts should draw from streams
    keyed on the *partition* (per node), not from the sub-engine root.
    Raises [Invalid_argument] when [shards <= 0]. *)

val shards : t -> int

val engine : t -> int -> Engine.t
(** The sub-engine of shard [i] (0-based).  Raises [Invalid_argument]
    when out of range. *)

val link :
  t -> src:int -> dst:int -> lookahead:Time.ns -> ?label:string -> unit ->
  link
(** Declares a channel from shard [src] to shard [dst] on which every
    send is delayed by at least [lookahead].  [label] names delivery
    events for tracing/profiling on the destination engine.

    [lookahead] must be strictly positive: a zero-lookahead link would
    let a neighbour's event at date [t] schedule work here at the same
    [t], leaving no safe horizon to execute ahead to — the conservative
    loop could deadlock on an idle link.  Raises [Invalid_argument
    "Sharded.link: lookahead must be > 0 (a zero-lookahead link cannot
    be synchronized conservatively and would deadlock)"]. *)

val send : t -> link -> delay:Time.ns -> (unit -> unit) -> unit
(** [send t l ~delay fn], called from within an event executing on the
    link's source shard, runs [fn] on the destination shard at
    [source now + delay].  [delay] must be [>= lookahead] (the link's
    conservative promise); raises [Invalid_argument] otherwise. *)

val run : ?until:Time.ns -> ?domains:int -> t -> unit
(** Advances every shard to [until] (events dated [<= until] execute;
    every sub-engine clock ends at [>= until]).  [domains] (default 1)
    spreads shards across that many OCaml domains — results are
    identical for any value; only wall-clock time changes.  Omitting
    [until] drains every queue and mailbox instead, which is only
    supported single-domain (raises [Invalid_argument] with
    [domains > 1]). *)

type shard_stats = {
  ss_shard : int;
  ss_clock : Time.ns;      (** Sub-engine clock after the last run. *)
  ss_events : int;         (** Events executed (local + deliveries). *)
  ss_delivered : int;      (** Cross-shard mailbox deliveries executed. *)
  ss_blocked : int;        (** Times the loop stalled on lookahead. *)
  ss_null : int;           (** Clock broadcasts sent while blocked. *)
  ss_pending : int;        (** Events left queued (beyond the horizon). *)
}

val stats : t -> shard_stats array
(** Per-shard progress/imbalance counters, indexed by shard. *)
