(** Hierarchical timing wheel with a heap-backed overflow.

    Drop-in replacement for {!Heap} on the engine's hot path: push and
    pop are O(1) for events within ~2^30 ticks of the current minimum
    (six levels of 32 slots, lazily cascaded), and far-future events
    spill to an ordinary binary heap until the wheel advances into
    their frame.

    The ordering contract is identical to {!Heap}: [pop] returns
    entries in ascending priority, FIFO among equal priorities (a
    per-wheel sequence number assigned at push time breaks ties).
    Priorities must be non-negative; a priority below the last
    extracted minimum is clamped up to it, i.e. events cannot be
    scheduled into the already-delivered past. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> prio:int -> 'a -> unit
(** [push t ~prio v] files [v] at [prio] (clamped to the current
    minimum's tick if below it). *)

val pop : 'a t -> (int * 'a) option
(** Extracts the (priority, value) with the smallest priority,
    first-in-first-out among equal priorities. *)

val peek_prio : 'a t -> int option
(** Priority [pop] would return next, without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Drops all entries and resets the wheel to tick 0. *)
