(** Discrete-event simulation engine.

    The engine owns a virtual clock (nanoseconds since simulation start) and
    a priority queue of pending events.  [run] pops events in timestamp
    order; each event is a thunk that may schedule further events.  All the
    network devices, CPU contexts and workload generators in this repository
    are driven by one engine instance per experiment.

    The engine is also the anchor for observability state: it always owns a
    {!Metrics.t} registry, and optionally carries a {!Trace.t} ring plus a
    per-event-class wall-clock profile.  Tying these to the engine (rather
    than module globals) means their lifetime is exactly one run — a fresh
    engine starts with empty metrics, no tracer and no profile. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time 0.  [seed] initializes the root RNG stream
    (default [0x5EEDL]); subsystems should [Prng.split] their own streams
    from {!rng}. *)

val now : t -> Time.ns
(** Current simulated date. *)

val rng : t -> Prng.t
(** Root random stream of this engine. *)

val schedule : t -> ?label:string -> delay:Time.ns -> (unit -> unit) -> unit
(** [schedule t ~delay f] fires [f] at [now t + max 0 delay].  [label]
    names the event class (e.g. the executing context) for tracing and
    profiling; unlabeled events are not bracketed by trace spans. *)

val schedule_at : t -> ?label:string -> at:Time.ns -> (unit -> unit) -> unit
(** Absolute-date variant; dates in the past fire immediately (at [now]). *)

val schedule_at_interned :
  t -> label:string -> lbl:int -> at:Time.ns -> (unit -> unit) -> unit
(** {!schedule_at} for per-event hot callers ({!Exec}): [lbl] is the
    label's trace-name id from {!intern_label}, minted under the current
    {!trace_epoch}.  Tracing the event then skips the intern-pool hash
    lookup; a stale or absent id ([-1], or the tracer was swapped before
    the event fired) silently falls back to interning [label]. *)

val trace_epoch : t -> int
(** Bumped on every {!set_tracer}; cache interned label ids keyed on
    this to know when they went stale. *)

val intern_label : t -> string -> int
(** The trace-name id of [label] in the installed tracer, or [-1] when
    no tracer is installed or [label] is [""]. *)

val next_at : t -> Time.ns option
(** Date of the earliest queued event, or [None] when the queue is
    empty.  The conservative shard loop ({!Sharded}) uses this to decide
    whether the next local event is safe to execute. *)

val advance_to : t -> Time.ns -> unit
(** Moves the clock forward to the given date (never backwards) without
    executing anything — the end-of-horizon clamp [run ~until] applies,
    exposed for external drivers. *)

val run_external : t -> at:Time.ns -> ?label:string -> (unit -> unit) -> unit
(** Executes one event that never sat in this engine's queue (a
    cross-shard mailbox delivery): advances the clock to [at] (clamped
    to [now]), counts it in {!events_processed}, and brackets it with an
    [engine:<label>] span when labeled and a tracer is installed. *)

val run : ?until:Time.ns -> t -> unit
(** Pops events until the queue drains, or until the clock would pass
    [until] (events strictly after [until] remain queued; the clock is left
    at [until]). *)

val step : t -> bool
(** Executes exactly one event.  Returns [false] when the queue is empty. *)

val pending : t -> int
(** Number of queued events. *)

val events_processed : t -> int
(** Total number of events executed so far (monotonic). *)

(** {2 Observability} *)

val metrics : t -> Metrics.t
(** This engine's metrics registry.  Pre-populated with the
    [engine.events_processed] and [engine.pending] gauges. *)

val set_tracer : t -> Trace.t option -> unit
(** Installs (or removes) the event tracer.  With a tracer installed,
    labeled events are bracketed by [engine:<label>] spans and subsystems
    emit per-hop instants via {!trace_instant}. *)

val tracer : t -> Trace.t option

val trace_instant :
  t -> cat:string -> name:string -> ?arg:string -> unit -> unit
(** Records an instant at [now t] on the installed tracer; no-op (one
    option check) when tracing is disabled. *)

val enable_profiling : ?clock:(unit -> float) -> t -> unit
(** Starts accumulating per-label event counts and host wall time.
    [clock] defaults to [Sys.time]; tests inject a deterministic one.
    Idempotent (a second call only replaces the clock). *)

val profile : t -> (string * int * float) list
(** [(label, events, host_seconds)] per event class, most expensive first;
    events scheduled without a label appear as ["<unlabeled>"].  Empty
    when profiling was never enabled. *)
