(* Work-stealing-free static pool: an atomic cursor over an array of
   inputs, [jobs - 1] spawned domains plus the calling one racing to
   claim indices.  Results land in their input's slot, so ordering is
   preserved no matter which domain computed what. *)

let map ~jobs f xs =
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Ok (f inputs.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          out.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join others;
    (* Domain.join is the synchronization point: every worker's writes
       to [out] happen-before this read. *)
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         out)
  end

let recommended_jobs () = Domain.recommended_domain_count ()
