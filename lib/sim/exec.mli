(** Execution contexts (busy-until servers, optionally CPU-constrained).

    An [Exec.t] models a context that processes work in FIFO order with a
    bounded degree of parallelism ([width]): a guest softirq context is
    width 1; a kernel's process-context path is as wide as the machine's
    CPU count (many threads can be in a syscall at once); an application
    worker thread is width 1.  Work submitted while all slots are busy
    queues behind them, which turns per-packet CPU costs into throughput
    ceilings and queueing latency — the core of the paper's performance
    story.

    Binding the context to a {!Cpu_set.t} additionally caps the *sum* of
    all contexts' parallelism on one machine at its core count, so a VM
    saturates as a whole.

    A context optionally charges everything it executes to
    {!Cpu_account.t} (entity, category) pairs, so CPU breakdowns fall out
    of the same bookkeeping. *)

type t

val create :
  ?account:Cpu_account.t * string * Cpu_account.category ->
  ?also:(Cpu_account.t * string * Cpu_account.category) list ->
  ?width:int ->
  ?cpus:Cpu_set.t ->
  Engine.t ->
  name:string ->
  t
(** [width] defaults to 1.  [also] lists secondary accounting targets
    charged for every unit of work in addition to [account] — e.g. a
    guest vCPU context charges (vm, soft) and also (host, guest).
    [charge_as] overrides only the primary target's category. *)

val name : t -> string
val width : t -> int

val submit : ?charge_as:Cpu_account.category -> t -> cost:Time.ns -> (unit -> unit) -> unit
(** [submit t ~cost k] enqueues a work item needing [cost] ns of service;
    [k] runs at completion. *)

val submit_timed :
  ?charge_as:Cpu_account.category -> t -> cost:Time.ns -> (unit -> unit) ->
  Time.ns
(** Like {!submit}, but returns the completion date, from which callers
    needing latency attribution recover [start = finish - cost].  The
    common path pays nothing extra for it. *)

val engine : t -> Engine.t

val busy_until : t -> Time.ns
(** Earliest date a slot of this context frees up. *)

val busy_ns : t -> Time.ns
(** Total service time accumulated since creation (or {!reset_busy}). *)

val backlog : t -> Time.ns
(** Committed-but-not-elapsed service on the most loaded slot (0 when
    idle).  A persistently growing backlog means saturation. *)

val reset_busy : t -> unit
val utilization : t -> window:Time.ns -> float
(** [busy_ns / window] — may exceed 1.0 for widths > 1. *)
