type t = {
  exec_name : string;
  engine : Engine.t;
  account : (Cpu_account.t * string * Cpu_account.category) option;
  also : (Cpu_account.t * string * Cpu_account.category) list;
  slots : Time.ns array;
  cpus : Cpu_set.t option;
  mutable busy_ns : Time.ns;
  (* Cached trace-name id for [exec_name], valid while the engine's
     trace epoch matches — every submission is labeled with the exec
     name, so interning it per event would dominate tracing cost. *)
  mutable lbl : int;
  mutable lbl_epoch : int;
}

let create ?account ?(also = []) ?(width = 1) ?cpus engine ~name =
  if width <= 0 then invalid_arg "Exec.create: width must be > 0";
  { exec_name = name; engine; account; also; slots = Array.make width 0;
    cpus; busy_ns = 0; lbl = -1; lbl_epoch = -1 }

let name t = t.exec_name
let width t = Array.length t.slots

let min_slot t =
  let best = ref 0 in
  Array.iteri (fun i v -> if v < t.slots.(!best) then best := i) t.slots;
  !best

(* Core submission path.  Returns the completion time so callers that
   need timing (latency provenance) can recover [start = finish - cost]
   without any allocation on the common path. *)
let submit_timed ?charge_as t ~cost k =
  let cost = max 0 cost in
  let now = Engine.now t.engine in
  let slot = min_slot t in
  let slot_free = max now t.slots.(slot) in
  let start, booking =
    match t.cpus with
    | None -> (slot_free, None)
    | Some set ->
      let start, core = Cpu_set.book set ~ready:slot_free in
      (start, Some (set, core))
  in
  let finish = start + cost in
  t.slots.(slot) <- finish;
  (match booking with
  | None -> ()
  | Some (set, core) -> Cpu_set.commit set core ~finish);
  t.busy_ns <- t.busy_ns + cost;
  (match t.account with
  | None -> ()
  | Some (acct, entity, default_cat) ->
    let cat = Option.value charge_as ~default:default_cat in
    Cpu_account.charge acct ~entity cat cost);
  List.iter
    (fun (acct, entity, cat) -> Cpu_account.charge acct ~entity cat cost)
    t.also;
  let ep = Engine.trace_epoch t.engine in
  if t.lbl_epoch <> ep then begin
    t.lbl <- Engine.intern_label t.engine t.exec_name;
    t.lbl_epoch <- ep
  end;
  Engine.schedule_at_interned t.engine ~label:t.exec_name ~lbl:t.lbl ~at:finish
    k;
  finish

let submit ?charge_as t ~cost k =
  ignore (submit_timed ?charge_as t ~cost k : Time.ns)

let engine t = t.engine

let busy_until t = t.slots.(min_slot t)
let busy_ns t = t.busy_ns

let backlog t =
  let now = Engine.now t.engine in
  Array.fold_left (fun acc v -> max acc (v - now)) 0 t.slots

let reset_busy t = t.busy_ns <- 0

let utilization t ~window =
  if window <= 0 then 0.0 else float_of_int t.busy_ns /. float_of_int window
