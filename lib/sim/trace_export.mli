(** Chrome trace-event JSON export.

    Builds a trace loadable by Perfetto ({:https://ui.perfetto.dev}) or
    [chrome://tracing] from the simulator's observability sources: the
    engine {!Trace.t} ring (duration slices + instants), a {!Timeline.t}
    (CPU counter tracks, in cores), and {!Provenance.t} records (one
    slice per hop with queue/service attribution in the args).

    Each simulated entity maps to one trace "process" allocated with
    {!process}; sim-time nanoseconds are emitted as the format's
    microsecond [ts] with 3 decimals, so nothing is rounded away. *)

type t

val create : unit -> t

val process : t -> name:string -> int
(** Allocate a process id and emit its [process_name] metadata. *)

val thread_name : t -> pid:int -> tid:int -> string -> unit

val span :
  t -> pid:int -> ?tid:int -> cat:string -> name:string ->
  start_ns:Time.ns -> end_ns:Time.ns -> (string * string) list -> unit
(** Emit a B/E pair.  The args list holds (key, raw-JSON-value) pairs
    attached to the begin event. *)

val instant :
  t -> pid:int -> ?tid:int -> cat:string -> name:string -> ts:Time.ns ->
  (string * string) list -> unit

val counter :
  t -> pid:int -> name:string -> ts:Time.ns -> (string * string) list -> unit

val add_trace : t -> pid:int -> ?tid:int -> Trace.t -> unit
(** Replay a trace ring: labeled-job spans become duration slices,
    instants become 'i' events. *)

val add_timeline : t -> pid:int -> Timeline.t -> unit
(** One [cpu.<entity>] counter track per entity, one series per CPU
    category, in cores (busy-ns delta over the sampling period). *)

val add_provenance : t -> pid:int -> ?tid:int -> Provenance.entry list -> unit
(** One slice per hop, cat ["hop"], with [queue_ns]/[service_ns] args. *)

val event_count : t -> int

val to_string : t -> string
(** The complete JSON document. *)

val to_file : t -> string -> unit
