(* Per-packet latency provenance.

   A provenance record rides (optionally) on a frame/packet through the
   datapath.  Every hop that services the packet appends one entry with
   three timestamps: when the packet was handed to the hop ([enqueue_ns]),
   when the hop's execution context actually started working on it
   ([start_ns]), and when service completed ([end_ns]).  The end-to-end
   latency of a linear path then decomposes exactly into per-hop queueing
   ([start - enqueue]) and service ([end - start]) time — the attribution
   the paper's Figs. 1/6/7 argue from.

   Records are pay-for-use: a packet without one costs the datapath
   nothing (see [Hop.service_prov]).  At fan-out points (bridge floods,
   Hostlo reflection) the record is [branch]ed so each copy accumulates
   only its own path; branches share the common prefix structurally. *)

type entry = {
  hop : string;
  enqueue_ns : Time.ns;  (* handed to the hop *)
  start_ns : Time.ns;    (* service began (>= enqueue: queueing) *)
  end_ns : Time.ns;      (* service completed *)
}

type t = { mutable rev_entries : entry list (* newest first *) }

(* 1-in-N sampling knob.  Minting one record per packet is the dominant
   cost of provenance-on runs (+330 % on the netperf kernel); sampling
   trades per-packet coverage for rate.  The knob is global and read by
   the producers ([Stack.fresh_prov]) through a deterministic per-
   namespace tick counter, so results stay reproducible across runs and
   across [--jobs N].  Atomic because experiment cells run in domains. *)
let sampling_every = Atomic.make 1
let set_sampling n = Atomic.set sampling_every (max 1 n)
let sampling () = Atomic.get sampling_every

let create () = { rev_entries = [] }

let add t ~hop ~enqueue_ns ~start_ns ~end_ns =
  t.rev_entries <- { hop; enqueue_ns; start_ns; end_ns } :: t.rev_entries

(* Zero-duration marker (e.g. a NAT rewrite) pinned to the completion of
   the previous hop — exactly "now" for a rewrite running inside that
   hop's continuation, and needing no clock to compute. *)
let mark_after t ~hop =
  let ts = match t.rev_entries with e :: _ -> e.end_ns | [] -> 0 in
  add t ~hop ~enqueue_ns:ts ~start_ns:ts ~end_ns:ts

(* Fork at a fan-out point: the new record shares the (immutable) prefix
   and accumulates its own suffix. *)
let branch t = { rev_entries = t.rev_entries }

let entries t = List.rev t.rev_entries
let length t = List.length t.rev_entries
let is_empty t = t.rev_entries = []

let queue_ns e = e.start_ns - e.enqueue_ns
let service_ns e = e.end_ns - e.start_ns

(* Sum of per-hop queue + service time. *)
let attributed_ns t =
  List.fold_left
    (fun acc e -> acc + (e.end_ns - e.enqueue_ns))
    0 t.rev_entries

(* First enqueue to last completion.  On a linear path with contiguous
   hops this equals [attributed_ns]; any difference is unattributed time
   (pure delays between hops). *)
let total_ns t =
  match t.rev_entries with
  | [] -> 0
  | last :: _ ->
    let rec first = function [ e ] -> e | _ :: tl -> first tl | [] -> last in
    last.end_ns - (first t.rev_entries).enqueue_ns

let gap_ns t = total_ns t - attributed_ns t

let hops t = List.rev_map (fun e -> e.hop) t.rev_entries

let pp_entry fmt e =
  Format.fprintf fmt "%-28s enq=%a queue=%a service=%a" e.hop Time.pp
    e.enqueue_ns Time.pp (queue_ns e) Time.pp (service_ns e)

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "  %a@." pp_entry e) (entries t);
  Format.fprintf fmt "  %-28s queue=%a service=%a e2e=%a@." "total" Time.pp
    (List.fold_left (fun a e -> a + queue_ns e) 0 t.rev_entries)
    Time.pp
    (List.fold_left (fun a e -> a + service_ns e) 0 t.rev_entries)
    Time.pp (total_ns t)
