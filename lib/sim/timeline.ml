(* CPU-accounting timelines.

   [Cpu_account] holds end-of-run totals per (entity, category) — the
   paper's Fig. 6 bars.  A [Timeline] samples those totals at a fixed
   sim-time cadence while the engine runs, turning them into time series:
   where each nanosecond of usr/sys/soft/guest time was spent *when*, not
   just in aggregate.

   The sampler reschedules itself every [period] until [stop]ped, so it
   must be driven with [Engine.run ~until] (as every experiment does);
   under a plain [Engine.run] it would keep the queue non-empty. *)

type tick = {
  tick_ts : Time.ns;
  snap : (string * (Cpu_account.category * int) list) list;
      (* cumulative ns per (entity, category) at [tick_ts] *)
}

type t = {
  engine : Engine.t;
  acct : Cpu_account.t;
  period : Time.ns;
  mutable ticks_rev : tick list;
  mutable running : bool;
  mutable stopped : bool;
}

let create ?(period = Time.ms 1) engine acct =
  if period <= 0 then invalid_arg "Timeline.create: period must be > 0";
  { engine; acct; period; ticks_rev = []; running = false; stopped = false }

let rec tick t () =
  if not t.stopped then begin
    t.ticks_rev <-
      { tick_ts = Engine.now t.engine; snap = Cpu_account.snapshot t.acct }
      :: t.ticks_rev;
    Engine.schedule t.engine ~label:"timeline" ~delay:t.period (tick t)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.schedule t.engine ~label:"timeline" ~delay:0 (tick t)
  end

let stop t = t.stopped <- true

let period t = t.period
let sample_count t = List.length t.ticks_rev
let ticks t = List.rev t.ticks_rev

let entities t =
  List.concat_map (fun tk -> List.map fst tk.snap) t.ticks_rev
  |> List.sort_uniq compare

(* Cumulative busy-ns samples for one (entity, category), oldest first.
   Entities appear in the account only once charged, so early ticks may
   lack them; those read as 0. *)
let series t ~entity cat =
  List.rev_map
    (fun tk ->
      let v =
        match List.assoc_opt entity tk.snap with
        | None -> 0
        | Some cats -> Option.value (List.assoc_opt cat cats) ~default:0
      in
      (tk.tick_ts, v))
    t.ticks_rev

let pp fmt t =
  Format.fprintf fmt "timeline: %d samples every %a@." (sample_count t)
    Time.pp t.period;
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-24s" e;
      List.iter
        (fun c ->
          let s = series t ~entity:e c in
          let last = match List.rev s with (_, v) :: _ -> v | [] -> 0 in
          Format.fprintf fmt " %s=%a" (Cpu_account.category_to_string c)
            Time.pp last)
        Cpu_account.all_categories;
      Format.pp_print_newline fmt ())
    (entities t)
