(* [lbl]/[lbl_epoch]: an optional pre-interned trace-name id for [label],
   valid only while [trace_epoch] still equals [lbl_epoch] (the tracer has
   not been swapped since the id was minted).  Lets the per-event hot path
   skip the intern-pool hash lookup.

   Unlabeled events — the bulk of every run — are carried as a bare
   [Plain] closure: no metadata record, no tracer check at execution
   (an unlabeled event is never bracketed by spans).  The labeled
   variant pays for its record only when a label was supplied. *)
type job =
  | Plain of (unit -> unit)
  | Labeled of { label : string; lbl : int; lbl_epoch : int;
                 fn : unit -> unit }

type prof_slot = { mutable calls : int; mutable wall : float }

type t = {
  mutable clock : Time.ns;
  queue : job Wheel.t;
  root_rng : Prng.t;
  mutable executed : int;
  metrics : Metrics.t;
  mutable tracer : Trace.t option;
  mutable engine_cat : int;  (* interned "engine" cat of the current tracer *)
  mutable trace_epoch : int;  (* bumped by [set_tracer]; guards cached ids *)
  mutable prof : (string, prof_slot) Hashtbl.t option;
  mutable prof_clock : unit -> float;
}

let create ?(seed = 0x5EEDL) () =
  let t =
    {
      clock = 0;
      queue = Wheel.create ();
      root_rng = Prng.create seed;
      executed = 0;
      metrics = Metrics.create ();
      tracer = None;
      engine_cat = 0;
      trace_epoch = 0;
      prof = None;
      prof_clock = Sys.time;
    }
  in
  Metrics.gauge_probe t.metrics "engine.events_processed" (fun () ->
      float_of_int t.executed);
  Metrics.gauge_probe t.metrics "engine.pending" (fun () ->
      float_of_int (Wheel.size t.queue));
  t

let now t = t.clock
let rng t = t.root_rng
let metrics t = t.metrics

let set_tracer t tr =
  t.tracer <- tr;
  t.trace_epoch <- t.trace_epoch + 1;
  match tr with
  | Some trace -> t.engine_cat <- Trace.intern_cat trace "engine"
  | None -> ()
let tracer t = t.tracer
let trace_epoch t = t.trace_epoch

let intern_label t label =
  match t.tracer with
  | Some tr when label <> "" -> Trace.intern_name tr label
  | Some _ | None -> -1

let trace_instant t ~cat ~name ?arg () =
  match t.tracer with
  | None -> ()
  | Some tr -> Trace.instant tr ~ts:t.clock ~cat ~name ?arg ()

let enable_profiling ?clock t =
  (match clock with Some c -> t.prof_clock <- c | None -> ());
  if t.prof = None then t.prof <- Some (Hashtbl.create 32)

let profile t =
  match t.prof with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun label s acc -> (label, s.calls, s.wall) :: acc) tbl []
    |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)

let schedule_at t ?label ~at fn =
  let at = max at t.clock in
  match label with
  | None | Some "" -> Wheel.push t.queue ~prio:at (Plain fn)
  | Some label ->
    Wheel.push t.queue ~prio:at
      (Labeled { label; lbl = -1; lbl_epoch = 0; fn })

(* Hot-caller variant (see {!Exec.submit_timed}): the label's trace-name
   id was interned once by the caller and rides along, so tracing this
   event costs two ring writes and no hashing. *)
let schedule_at_interned t ~label ~lbl ~at fn =
  let at = max at t.clock in
  Wheel.push t.queue ~prio:at
    (Labeled { label; lbl; lbl_epoch = t.trace_epoch; fn })

let schedule t ?label ~delay fn =
  schedule_at t ?label ~at:(t.clock + max 0 delay) fn

(* The unlabeled, untraced, unprofiled path must stay as close to a bare
   [fn ()] as possible: the ≤2%-overhead budget for disabled observability
   is burned here, once per simulated event. *)
let exec t job at =
  match job with
  | Plain fn -> fn ()
  | Labeled { label; lbl; lbl_epoch; fn } -> (
    match t.tracer with
    | Some tr ->
      let name =
        if lbl >= 0 && lbl_epoch = t.trace_epoch then lbl
        else Trace.intern_name tr label
      in
      Trace.record_i tr ~shard:0 ~prio:0 ~ts:at Trace.Span_begin
        ~cat:t.engine_cat ~name ~arg:"";
      fn ();
      Trace.record_i tr ~shard:0 ~prio:0 ~ts:t.clock Trace.Span_end
        ~cat:t.engine_cat ~name ~arg:""
    | None -> fn ())

let prof_charge tbl label ~t0 ~t1 =
  let dt = t1 -. t0 in
  match Hashtbl.find_opt tbl label with
  | Some s ->
    s.calls <- s.calls + 1;
    s.wall <- s.wall +. dt
  | None -> Hashtbl.add tbl label { calls = 1; wall = dt }

let exec_profiled t tbl job at =
  let t0 = t.prof_clock () in
  exec t job at;
  let t1 = t.prof_clock () in
  let label =
    match job with
    | Plain _ -> "<unlabeled>"
    | Labeled { label = ""; _ } -> "<unlabeled>"
    | Labeled { label; _ } -> label
  in
  prof_charge tbl label ~t0 ~t1

let step t =
  match Wheel.pop t.queue with
  | None -> false
  | Some (at, job) ->
    t.clock <- at;
    t.executed <- t.executed + 1;
    (match t.prof with
    | None -> exec t job at
    | Some tbl -> exec_profiled t tbl job at);
    true

let next_at t = Wheel.peek_prio t.queue

let advance_to t horizon = if horizon > t.clock then t.clock <- horizon

(* External-event execution (cross-shard mailbox deliveries): behaves
   like popping a wheel event at [at] — advances the clock, counts it,
   brackets it with a span when labeled and a tracer is installed — but
   the thunk never sat in this engine's queue.  The conservative shard
   loop guarantees [at >= clock] before calling. *)
let run_external t ~at ?(label = "") fn =
  let at = max at t.clock in
  t.clock <- at;
  t.executed <- t.executed + 1;
  let job =
    if label = "" then Plain fn
    else Labeled { label; lbl = -1; lbl_epoch = 0; fn }
  in
  match t.prof with
  | None -> exec t job at
  | Some tbl -> exec_profiled t tbl job at

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match Wheel.peek_prio t.queue with
      | Some at when at <= horizon -> ignore (step t)
      | Some _ | None ->
        continue := false;
        t.clock <- max t.clock horizon
    done

let pending t = Wheel.size t.queue
let events_processed t = t.executed
