(** Bounded-error log-bucketed streaming histogram (HDR/DDSketch-style).

    Replaces keep-every-sample accumulators where only a digest is
    needed: O(1) {!add} into dense logarithmic buckets whose midpoint is
    within [error] (default 1 %) relative error of any sample in the
    bucket, while count, sum, min and max are tracked exactly.  Two
    sketches with the same [error] merge by bucket-wise addition, which
    makes percentiles composable across engine shards and [--jobs]
    cells — the property sort-based {!Stats} percentiles cannot offer.

    Memory is bounded: the bucket array covers only the occupied index
    range (≈700 buckets for values spanning 1 ns…10 s at 1 % error) and
    indices are clamped outside [1e-12, 1e18].  Non-positive and NaN
    samples land in a dedicated zero bucket (they still count toward
    [count]/[sum]/extrema). *)

type t

val create : ?error:float -> ?name:string -> unit -> t
(** [error] is the relative error bound in (0, 1), default [0.01].
    Raises [Invalid_argument] outside that range. *)

val name : t -> string

val error : t -> float
(** The relative error bound this sketch guarantees on percentiles. *)

val add : t -> float -> unit

val clear : t -> unit
(** Empties the sketch; keeps its name, error bound, and bucket storage. *)

val count : t -> int
val total : t -> float
(** Exact sum of all samples. *)

val mean : t -> float
(** Exact; 0 when empty. *)

val min : t -> float
(** Exact smallest sample; [infinity] when empty. *)

val max : t -> float
(** Exact largest sample; [neg_infinity] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100] by nearest rank over the
    buckets; within [error t] relative error of the exact value, and
    always clamped into [[min t, max t]].  0 when empty (unlike
    {!Stats.percentile}, a sketch query cannot raise: fleet aggregation
    reads empty cells). *)

val median : t -> float

val merge_into : into:t -> t -> unit
(** Adds all of [src]'s mass into [into].  Commutative and associative
    up to bucket contents, so any merge order over a set of sketches
    yields identical percentiles.  Raises [Invalid_argument] when the
    error bounds differ. *)

val merge : ?name:string -> t -> t -> t
(** Fresh sketch holding both sample sets. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line [name: n=… mean=… p50=… p90=… p99=… p99.9=…] rendering. *)
