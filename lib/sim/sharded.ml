(* Conservative sharded event loops (null-message synchronization).

   Each shard is a plain {!Engine.t}; cross-shard traffic rides
   per-link timestamped mailboxes whose [lookahead] lower-bounds every
   message delay.  A shard executes work strictly earlier than

     safe = min over inbound links (publish(src) + lookahead)

   where [publish(src)] is the source shard's broadcast clock floor — a
   lower bound on the date of anything it will still execute (and hence,
   + lookahead, on anything it will still send).  A shard with nothing
   executable under [safe] publishes [min (next candidate, safe)]
   instead (the null message); with positive lookahead that fixpoint
   strictly climbs, so the system cannot deadlock.

   Determinism does not depend on scheduling: shards own disjoint state,
   a message's delivery date is fixed at send time, and the executable
   set below [safe] is stable (any concurrent send lands at or beyond
   [safe] — see the ordering argument at [send]).  Per shard, work
   executes in (date, deliveries-before-local, link key, per-link send
   order / wheel seq) order no matter how many domains pump, so
   [shards=N, domains=D] is byte-identical to [shards=N, domains=1].

   Single-writer discipline: a shard is only ever pumped by one domain
   at a time (static assignment in [run]); its publish cell has one
   writer, so plain read-after-read on the Atomic is race-free.
   Mailboxes are the only shared mutable state and sit under a mutex;
   the [l_head] date hint is re-published atomically after every
   push/pop so peeking the head of all inbound links costs one atomic
   load each, no locks. *)

type link = {
  l_src : int;
  l_dst : int;
  l_key : int;                     (* creation order: delivery tie-break *)
  l_lookahead : int;
  l_label : string;
  l_src_pub : int Atomic.t;        (* the source shard's publish cell *)
  l_mu : Mutex.t;
  l_box : (unit -> unit) Heap.t;   (* prio = delivery date; FIFO per link *)
  l_head : int Atomic.t;           (* earliest pending date; max_int = empty *)
  mutable l_sent : int;            (* written by the source shard only *)
}

type shard = {
  sh_ix : int;
  sh_engine : Engine.t;
  mutable sh_inbound : link list;  (* ascending l_key *)
  sh_publish : int Atomic.t;
  mutable sh_done : bool;          (* reached the current run's horizon *)
  mutable sh_was_blocked : bool;   (* edge detector: count blocked episodes *)
  (* Cumulative imbalance counters (see {!stats}). *)
  mutable sh_delivered : int;
  mutable sh_blocked : int;
  mutable sh_null : int;
}

type t = { sd_shards : shard array; mutable sd_links : int }

let golden = 0x9E3779B97F4A7C15L

let create ?(seed = 0x5EEDL) ~shards () =
  if shards <= 0 then invalid_arg "Sharded.create: shards must be > 0";
  let mk i =
    (* Shard 0 keeps the root seed, so a single-node scenario placed on
       shard 0 draws exactly what it would from a plain [Engine.create
       ~seed] — the shards=1 ≡ shards=N digest checks rely on this.
       Other sub-engine seeds only have to be distinct and deterministic;
       scenario streams that must survive re-partitioning are split from
       per-node seeds, not from these. *)
    let s =
      if i = 0 then seed
      else Int64.add seed (Int64.mul golden (Int64.of_int i))
    in
    {
      sh_ix = i;
      sh_engine = Engine.create ~seed:s ();
      sh_inbound = [];
      sh_publish = Atomic.make 0;
      sh_done = false;
      sh_was_blocked = false;
      sh_delivered = 0;
      sh_blocked = 0;
      sh_null = 0;
    }
  in
  { sd_shards = Array.init shards mk; sd_links = 0 }

let shards t = Array.length t.sd_shards

let engine t i =
  if i < 0 || i >= Array.length t.sd_shards then
    invalid_arg "Sharded.engine: shard index out of range";
  t.sd_shards.(i).sh_engine

let link t ~src ~dst ~lookahead ?(label = "") () =
  let n = Array.length t.sd_shards in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Sharded.link: shard index out of range";
  if lookahead <= 0 then
    invalid_arg
      "Sharded.link: lookahead must be > 0 (a zero-lookahead link cannot \
       be synchronized conservatively and would deadlock)";
  let l =
    {
      l_src = src;
      l_dst = dst;
      l_key = t.sd_links;
      l_lookahead = lookahead;
      l_label = label;
      l_src_pub = t.sd_shards.(src).sh_publish;
      l_mu = Mutex.create ();
      l_box = Heap.create ();
      l_head = Atomic.make max_int;
      l_sent = 0;
    }
  in
  t.sd_links <- t.sd_links + 1;
  let d = t.sd_shards.(dst) in
  (* Keep inbound ascending by creation key so a plain scan breaks
     equal-date delivery ties toward the oldest link. *)
  d.sh_inbound <-
    List.sort (fun a b -> compare a.l_key b.l_key) (l :: d.sh_inbound);
  l

(* Why a concurrent send can never undercut a receiver's [safe]: the
   receiver read [publish(src) = P] and uses [safe = P + lookahead].
   Any push it can subsequently observe was made while the source's
   clock was >= P (publish trails the clock from below), so its delivery
   date is >= P + delay >= P + lookahead = safe — and the receiver only
   executes strictly below [safe].  Pushes made before publish reached P
   are made visible by the SC atomics + mailbox mutex: the receiver
   reads publishes first, head hints second. *)
let send t l ~delay fn =
  if delay < l.l_lookahead then
    invalid_arg "Sharded.send: delay below the link's declared lookahead";
  let at = Engine.now t.sd_shards.(l.l_src).sh_engine + delay in
  Mutex.lock l.l_mu;
  Heap.push l.l_box ~prio:at fn;
  (match Heap.peek_prio l.l_box with
  | Some p -> Atomic.set l.l_head p
  | None -> assert false);
  Mutex.unlock l.l_mu;
  l.l_sent <- l.l_sent + 1

let pop_delivery l =
  Mutex.lock l.l_mu;
  let r = Heap.pop l.l_box in
  (match Heap.peek_prio l.l_box with
  | Some p -> Atomic.set l.l_head p
  | None -> Atomic.set l.l_head max_int);
  Mutex.unlock l.l_mu;
  match r with Some (_, fn) -> fn | None -> assert false

let inbound_safe s =
  List.fold_left
    (fun acc l ->
      let v = Atomic.get l.l_src_pub + l.l_lookahead in
      if v < acc then v else acc)
    max_int s.sh_inbound

(* Earliest pending delivery: date + link, equal dates resolving to the
   lowest creation key (the inbound list is key-ascending and the scan
   uses strict [<]).  [max_int, None] when every mailbox is empty. *)
let delivery_head s =
  let best = ref max_int and best_l = ref None in
  List.iter
    (fun l ->
      let h = Atomic.get l.l_head in
      if h < !best then begin
        best := h;
        best_l := Some l
      end)
    s.sh_inbound;
  (!best, !best_l)

(* Only the owning domain writes a shard's publish cell, so the
   read-then-set below is single-writer and needs no CAS. *)
let publish_floor s v =
  if v > Atomic.get s.sh_publish then Atomic.set s.sh_publish v

let wheel_next e = match Engine.next_at e with Some a -> a | None -> max_int

(* Executes everything currently provable-safe on [s], then either
   declares the shard done for this horizon or broadcasts its clock
   floor.  Returns true when an event ran or the published floor
   advanced (progress another shard can observe). *)
let pump s ~horizon =
  let progress = ref false in
  let safe = inbound_safe s in
  let running = ref true in
  while !running do
    running := false;
    let da, dl = delivery_head s in
    let wa = wheel_next s.sh_engine in
    (* Deliveries beat local events on equal dates. *)
    if da <= wa then begin
      if da < safe && da <= horizon then begin
        let l = match dl with Some l -> l | None -> assert false in
        let fn = pop_delivery l in
        Engine.run_external s.sh_engine ~at:da ~label:l.l_label fn;
        s.sh_delivered <- s.sh_delivered + 1;
        publish_floor s (Engine.now s.sh_engine);
        progress := true;
        running := true
      end
    end
    else if wa < safe && wa <= horizon then begin
      ignore (Engine.step s.sh_engine);
      publish_floor s (Engine.now s.sh_engine);
      progress := true;
      running := true
    end
  done;
  (* Nothing executable under [safe]. *)
  let da, _ = delivery_head s in
  let cand = min da (wheel_next s.sh_engine) in
  let bound = min cand safe in
  if bound > horizon then begin
    (* Both the local candidate and every possible future inbound
       delivery lie beyond the horizon: this shard is finished, and
       (because future sends to it arrive at >= safe > horizon) its
       mailboxes can no longer grow below the horizon either. *)
    Engine.advance_to s.sh_engine horizon;
    publish_floor s (horizon + 1);
    s.sh_done <- true
  end
  else begin
    (* Blocked on lookahead: broadcast the clock floor (null message) so
       neighbours waiting on us can advance past our idle links. *)
    if bound > Atomic.get s.sh_publish then begin
      Atomic.set s.sh_publish bound;
      s.sh_null <- s.sh_null + 1;
      s.sh_was_blocked <- false;
      progress := true
    end
    else begin
      (* Counted per episode, not per poll: a parallel pump spins here
         via [cpu_relax] until a neighbour publishes. *)
      if not s.sh_was_blocked then s.sh_blocked <- s.sh_blocked + 1;
      s.sh_was_blocked <- true
    end
  end;
  !progress

let reset_run t =
  Array.iter
    (fun s ->
      s.sh_done <- false;
      Atomic.set s.sh_publish (Engine.now s.sh_engine))
    t.sd_shards

let run_horizon_single t ~horizon =
  let all_done = ref false in
  while not !all_done do
    let progress = ref false and d = ref true in
    Array.iter
      (fun s ->
        if not s.sh_done then begin
          if pump s ~horizon then progress := true;
          if not s.sh_done then d := false
        end)
      t.sd_shards;
    all_done := !d;
    if (not !all_done) && not !progress then
      (* Unreachable with positive lookahead: the minimal blocked bound
         always advances some publish.  Fail loudly rather than spin. *)
      failwith "Sharded.run: no shard can make progress (deadlock)"
  done

let run_horizon_parallel t ~horizon ~domains =
  let nshards = Array.length t.sd_shards in
  let domains = min domains nshards in
  let worker d () =
    (* Static shard assignment: shard i is pumped only by domain
       [i mod domains], preserving the single-writer discipline. *)
    let mine = ref [] in
    for i = nshards - 1 downto 0 do
      if i mod domains = d then mine := t.sd_shards.(i) :: !mine
    done;
    let mine = !mine in
    let all_done = ref false in
    let idle = ref 0 in
    while not !all_done do
      let progress = ref false and dn = ref true in
      List.iter
        (fun s ->
          if not s.sh_done then begin
            if pump s ~horizon then progress := true;
            if not s.sh_done then dn := false
          end)
        mine;
      all_done := !dn;
      if (not !all_done) && not !progress then begin
        (* Our shards are waiting on another domain's publishes.  Spin
           briefly — a working neighbour usually publishes within a few
           polls — then back off to real sleeps so oversubscribed hosts
           (domains > cores) yield the core to the domain being waited
           on instead of burning its timeslice busy-polling. *)
        incr idle;
        if !idle <= 200 then Domain.cpu_relax ()
        else Unix.sleepf (Float.min 1e-4 (float_of_int (!idle - 200) *. 1e-6))
      end
      else idle := 0
    done
  in
  let others = List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join others

(* Drain mode: execute the globally earliest work item until every wheel
   and mailbox is empty.  The global merge executes each shard's events
   in exactly the order the conservative loop would (the per-shard
   comparator is identical); it exists because "run until empty" has no
   horizon for the publish fixpoint to converge to. *)
let drain t =
  let continue_ = ref true in
  while !continue_ do
    let best = ref max_int and best_s = ref None in
    Array.iter
      (fun s ->
        let da, _ = delivery_head s in
        let c = min da (wheel_next s.sh_engine) in
        if c < !best then begin
          best := c;
          best_s := Some s
        end)
      t.sd_shards;
    match !best_s with
    | None -> continue_ := false
    | Some s ->
      let da, dl = delivery_head s in
      if da <= wheel_next s.sh_engine then begin
        let l = match dl with Some l -> l | None -> assert false in
        let fn = pop_delivery l in
        Engine.run_external s.sh_engine ~at:da ~label:l.l_label fn;
        s.sh_delivered <- s.sh_delivered + 1
      end
      else ignore (Engine.step s.sh_engine)
  done

let run ?until ?(domains = 1) t =
  match until with
  | None ->
    if domains > 1 then
      invalid_arg "Sharded.run: draining (no ~until) is single-domain only";
    drain t
  | Some horizon ->
    reset_run t;
    if domains <= 1 || Array.length t.sd_shards = 1 then
      run_horizon_single t ~horizon
    else run_horizon_parallel t ~horizon ~domains

type shard_stats = {
  ss_shard : int;
  ss_clock : Time.ns;
  ss_events : int;
  ss_delivered : int;
  ss_blocked : int;
  ss_null : int;
  ss_pending : int;
}

let stats t =
  Array.map
    (fun s ->
      let boxed =
        List.fold_left
          (fun acc l ->
            Mutex.lock l.l_mu;
            let n = Heap.size l.l_box in
            Mutex.unlock l.l_mu;
            acc + n)
          0 s.sh_inbound
      in
      {
        ss_shard = s.sh_ix;
        ss_clock = Engine.now s.sh_engine;
        ss_events = Engine.events_processed s.sh_engine;
        ss_delivered = s.sh_delivered;
        ss_blocked = s.sh_blocked;
        ss_null = s.sh_null;
        ss_pending = Engine.pending s.sh_engine + boxed;
      })
    t.sd_shards
