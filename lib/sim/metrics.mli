(** Global metrics registry: named counters, gauges and histograms with a
    single snapshot/reset surface.

    Every {!Engine.t} owns one registry ({!Engine.metrics}), so metric
    lifetime is the engine's lifetime — no cross-run accumulation, no
    module-global state.  Hot paths hold on to the {!counter} or
    {!histogram} handle returned at registration and bump it directly; the
    name table is only consulted at registration and snapshot time.

    Three metric flavours:
    - counters: monotonically increasing ints, zeroed by {!reset};
    - gauges: either stored floats ({!set_gauge}) or probes
      ({!gauge_probe}) read lazily at snapshot time — probes are how
      existing mutable counters (e.g. a namespace's datapath counters) are
      exported without double accounting;
    - histograms: bounded-error streaming {!Hdr.t} sketches — O(1) adds
      with no per-sample retention, exact count/total/min/max, and
      percentiles within the sketch's error bound (1 %), mergeable
      across shards and [--jobs] cells. *)

type t

type counter

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create.  Raises [Invalid_argument] if [name] is already a
    metric of another flavour. *)

val bump : counter -> ?by:int -> unit -> unit
val counter_value : counter -> int

val set_gauge : t -> string -> float -> unit
(** Stored gauge; creates it on first use. *)

val gauge_probe : t -> string -> (unit -> float) -> unit
(** Registers (or replaces) a gauge whose value is read by calling the
    probe at snapshot time. *)

val histogram : t -> string -> Hdr.t
(** Get-or-create a streaming histogram registered under [name]. *)

type value =
  | Counter of int
  | Gauge of float
  | Summary of {
      count : int;
      total : float;  (** Exact. *)
      mean : float;   (** Exact. *)
      p50 : float;
      p90 : float;
      p99 : float;
      p999 : float;   (** p50/p90/p99/p99.9 within the sketch error. *)
      vmin : float;   (** Exact. *)
      vmax : float;   (** Exact. *)
    }  (** Histogram digest; all floats 0 when [count = 0]. *)

val snapshot : t -> (string * value) list
(** All metrics, sorted by name; probes are evaluated now. *)

val find : t -> string -> value option

val reset : t -> unit
(** Counters to 0, stored gauges to 0, histograms emptied.  Probes are
    untouched (they re-read their source).  Handles stay valid. *)

val size : t -> int
(** Number of registered metrics. *)

val pp_text : Format.formatter -> t -> unit
(** One line per metric, sorted by name. *)

val to_json : t -> string
(** Snapshot as a JSON array of
    [{"name":…,"type":"counter"|"gauge"|"histogram",…}] objects. *)
