(** Per-packet latency provenance.

    A provenance record rides (optionally) on a frame/packet through the
    datapath.  Every hop that services the packet appends one entry with
    three timestamps: when the packet was handed to the hop, when the
    hop's execution context actually started working on it, and when
    service completed.  The end-to-end latency of a linear path then
    decomposes exactly into per-hop queueing ([start - enqueue]) and
    service ([end - start]) time.

    Records are pay-for-use: a packet without one costs the datapath
    nothing (see [Hop.service_prov] in [nest_net]).  At fan-out points
    (bridge floods, Hostlo reflection, multi-remote vxlan) the record is
    {!branch}ed so each copy accumulates only its own path. *)

type entry = {
  hop : string;
  enqueue_ns : Time.ns;  (** handed to the hop *)
  start_ns : Time.ns;    (** service began ([>= enqueue_ns]: queueing) *)
  end_ns : Time.ns;      (** service completed *)
}

type t

val set_sampling : int -> unit
(** [set_sampling n] asks producers to mint one provenance record per
    [n] eligible packets (clamped to [>= 1]; default 1 = every packet).
    Consumed by [Stack.fresh_prov] in [nest_net] through a deterministic
    per-namespace counter, so sampled runs remain bit-reproducible. *)

val sampling : unit -> int
(** Current 1-in-N sampling period. *)

val create : unit -> t

val add :
  t -> hop:string -> enqueue_ns:Time.ns -> start_ns:Time.ns ->
  end_ns:Time.ns -> unit

val mark_after : t -> hop:string -> unit
(** Append a zero-duration marker (e.g. a NAT rewrite) pinned to the
    completion date of the previous entry; needs no clock because a
    rewrite runs inside that hop's continuation. *)

val branch : t -> t
(** Fork at a fan-out point: the branch shares the (immutable) prefix
    recorded so far and accumulates its own suffix. *)

val entries : t -> entry list
(** Oldest first. *)

val length : t -> int
val is_empty : t -> bool

val queue_ns : entry -> Time.ns
val service_ns : entry -> Time.ns

val attributed_ns : t -> Time.ns
(** Sum over entries of queue + service time. *)

val total_ns : t -> Time.ns
(** First enqueue to last completion.  On a linear path with contiguous
    hops this equals {!attributed_ns}; any difference is unattributed
    inter-hop delay. *)

val gap_ns : t -> Time.ns
(** [total_ns - attributed_ns]. *)

val hops : t -> string list
(** Hop names, oldest first. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
