open Nest_net

type t = {
  nic_id : string;
  guest_dev : Dev.t;
  vhost : Nest_sim.Exec.t;
  mutable plugged : bool;
}

let create ~vm ~id ~mac ~queue ~vhost ?(l2 = Dev.Normal) () =
  let host = Vm.host vm in
  let cm = Host.cost_model host in
  let engine = Host.engine host in
  (* Endpoints share the tap's binding-generation ref: claiming or
     rebinding any queue of a reflector tap must invalidate cached
     reflector verdicts for the whole tap. *)
  let guest_dev =
    Dev.create ~name:(Vm.name vm ^ ":" ^ id) ~mac ~l2
      ~binding:(Tap.queue_binding queue) ()
  in
  let t = { nic_id = id; guest_dev; vhost; plugged = true } in
  (* The vhost worker is a hop like any other, so virtio crossings feed
     the same provenance/histogram machinery as kernel hops. *)
  let tx_hop =
    Hop.make vhost ~per_byte_ns:cm.Cost_model.vhost_per_byte_ns
      ~name:(Vm.name vm ^ ":" ^ id ^ ":virtio-tx")
      ~fixed_ns:cm.Cost_model.vhost_fixed_ns
  in
  let rx_hop =
    Hop.make vhost ~per_byte_ns:cm.Cost_model.vhost_per_byte_ns
      ~name:(Vm.name vm ^ ":" ^ id ^ ":virtio-rx")
      ~fixed_ns:cm.Cost_model.vhost_fixed_ns
  in
  (* Guest -> host: doorbell kick wakes the vhost worker, which dequeues
     from the TX vring and writes the tap.  The kick delay counts as
     queueing on the virtio-tx hop (enqueue predates the worker). *)
  Dev.set_tx guest_dev (fun frame ->
      if t.plugged then begin
        let enq = Nest_sim.Engine.now engine in
        Nest_sim.Engine.schedule engine ~delay:cm.Cost_model.virtio_kick_delay_ns
          (fun () ->
            if t.plugged then
              Hop.service_prov ?prov:(Frame.prov frame) ~enq tx_hop
                ~bytes:(Frame.len frame)
                (fun () -> if t.plugged then Tap.queue_write queue frame))
      end);
  (* Host -> guest: vhost fills the RX vring, then injects an interrupt;
     the injection latency is pure delay (no context occupied), recorded
     as the virtio-rx hop's tail. *)
  Tap.queue_set_backend queue (fun frame ->
      if t.plugged then
        Hop.service_prov ?prov:(Frame.prov frame)
          ~tail_ns:cm.Cost_model.virtio_notify_delay_ns rx_hop
          ~bytes:(Frame.len frame)
          (fun () ->
            if t.plugged then
              Nest_sim.Engine.schedule engine
                ~delay:cm.Cost_model.virtio_notify_delay_ns (fun () ->
                  if t.plugged then Dev.deliver t.guest_dev frame)));
  t

let dev t = t.guest_dev
let vhost_exec t = t.vhost
let id t = t.nic_id

let unplug t =
  t.plugged <- false;
  t.guest_dev.Dev.up <- false
