open Nest_net
module Exec = Nest_sim.Exec
module Cpu_account = Nest_sim.Cpu_account

type t = {
  engine : Nest_sim.Engine.t;
  acct : Cpu_account.t;
  host_entity : string;
  host_cpus : int;
  cm : Cost_model.t;
  mac_alloc : Mac.Alloc.alloc;
  cpuset : Nest_sim.Cpu_set.t;
  sys_exec : Exec.t;
  soft : Exec.t;
  host_ns : Stack.ns;
  host_rng : Nest_sim.Prng.t;
  rng_explicit : bool;  (* created with ~rng: key child streams off it *)
  mutable bridge_list : (string * Bridge.t) list;
  mutable vhost_count : int;
}

let create engine acct ?(cpus = 12) ?(cost_model = Cost_model.default)
    ?(entity = "host") ?rng ~name () =
  let cpuset = Nest_sim.Cpu_set.create ~cores:cpus ~name in
  let sys_exec =
    Exec.create ~account:(acct, entity, Cpu_account.Sys) ~width:cpus
      ~cpus:cpuset engine ~name:(name ^ ":sys")
  in
  let soft =
    Exec.create ~account:(acct, entity, Cpu_account.Soft) ~cpus:cpuset engine
      ~name:(name ^ ":softirq")
  in
  let costs = Kernel_costs.stack_costs cost_model ~sys_exec ~soft_exec:soft in
  let host_ns = Stack.create engine ~name ~costs ?rng () in
  Stack.set_ip_forward host_ns true;
  { engine; acct; host_entity = entity; host_cpus = cpus; cm = cost_model;
    mac_alloc = Mac.Alloc.create (); cpuset; sys_exec; soft; host_ns;
    host_rng =
      (match rng with
      | Some r -> Nest_sim.Prng.split r
      | None -> Nest_sim.Prng.split (Nest_sim.Engine.rng engine));
    rng_explicit = (rng <> None);
    bridge_list = []; vhost_count = 0 }

let engine t = t.engine
let account t = t.acct
let entity t = t.host_entity
let cpus t = t.host_cpus
let cost_model t = t.cm
let ns t = t.host_ns
let soft_exec t = t.soft
let fresh_mac t = Mac.Alloc.fresh t.mac_alloc
let rng t = t.host_rng

(* Stream child namespaces should split their jitter streams from: the
   host stream when the host was seeded explicitly (so draws are keyed
   on the node, not on whichever engine the node landed on), the engine
   root otherwise (the historical behaviour — existing single-node
   scenarios stay byte-identical). *)
let ns_rng_src t = if t.rng_explicit then Some t.host_rng else None

let bridge_hop t =
  Hop.make t.soft ~fixed_ns:t.cm.Cost_model.bridge_fixed_ns
    ~per_byte_ns:t.cm.Cost_model.bridge_per_byte_ns

let veth_hop t =
  Hop.make t.soft ~fixed_ns:t.cm.Cost_model.veth_fixed_ns
    ~per_byte_ns:t.cm.Cost_model.veth_per_byte_ns

let tap_hop t = Hop.make t.soft ~fixed_ns:t.cm.Cost_model.tap_fixed_ns

let add_bridge t ~name ~ip ~subnet =
  let br =
    Bridge.create t.engine ~name ~hop:(bridge_hop t) ~self_mac:(fresh_mac t) ()
  in
  let self = Bridge.self_dev br in
  Stack.attach t.host_ns self;
  Stack.add_addr t.host_ns self ip subnet;
  t.bridge_list <- t.bridge_list @ [ (name, br) ];
  br

let find_bridge t name = List.assoc_opt name t.bridge_list
let bridges t = t.bridge_list

let masquerade t ~src_subnet ~nat_ip =
  Nat.masquerade (Stack.nf t.host_ns) (Stack.ct t.host_ns)
    ~name:(Printf.sprintf "masq-%s" (Ipv4.cidr_to_string src_subnet))
    ~src_subnet ~nat_ip ()

let cpu_set t = t.cpuset

let new_vhost_exec t ~name =
  t.vhost_count <- t.vhost_count + 1;
  Exec.create ~account:(t.acct, t.host_entity, Cpu_account.Sys)
    ~cpus:t.cpuset t.engine ~name

let new_process_ns t ~name ~entity =
  let sys_exec =
    Exec.create ~account:(t.acct, entity, Cpu_account.Sys) ~cpus:t.cpuset
      t.engine ~name:(name ^ ":sys")
  in
  let soft_exec =
    Exec.create ~account:(t.acct, entity, Cpu_account.Soft) ~cpus:t.cpuset
      t.engine ~name:(name ^ ":soft")
  in
  Stack.create t.engine ~name
    ~costs:(Kernel_costs.stack_costs t.cm ~sys_exec ~soft_exec)
    ?rng:(ns_rng_src t) ()

let new_app_exec t ~name ~entity =
  Exec.create ~account:(t.acct, entity, Cpu_account.Usr) ~cpus:t.cpuset
    t.engine ~name

let connect_ns_to_host t peer_ns ~host_ip ~ns_ip ~subnet =
  let peer_soft = (Stack.costs peer_ns).Stack.rx.Hop.exec in
  let to_ns_hop =
    Hop.make peer_soft ~fixed_ns:t.cm.Cost_model.veth_fixed_ns
      ~per_byte_ns:t.cm.Cost_model.veth_per_byte_ns
  in
  let ns_dev, host_dev =
    Veth.pair
      ~a_name:(Stack.name peer_ns ^ ":eth0")
      ~a_mac:(fresh_mac t)
      ~b_name:("veth-" ^ Stack.name peer_ns)
      ~b_mac:(fresh_mac t) ~ab_hop:(veth_hop t) ~ba_hop:to_ns_hop ()
  in
  Stack.attach peer_ns ns_dev;
  Stack.add_addr peer_ns ns_dev ns_ip subnet;
  Route.add_default (Stack.routes peer_ns) ~gateway:host_ip ~dev:ns_dev ();
  Stack.attach t.host_ns host_dev;
  Stack.add_addr t.host_ns host_dev host_ip subnet
