open Nest_net
module Engine = Nest_sim.Engine
module Metrics = Nest_sim.Metrics
module Time = Nest_sim.Time

let log_src = Nest_sim.Log.src "vmm"

type backend =
  | Tap_backend of Tap.t
  | Hostlo_backend of Tap.t

type fault_decision =
  | Pass
  | Fail of string
  | Timeout of Nest_sim.Time.ns
  | Partial_timeout of Nest_sim.Time.ns

(* The VM lifecycle state machine.  Transitions along these edges are the
   ONLY way device state attached to a VM may change:

     Running ──► Crashing ──► Down ──► Restarting ──► Running
                    ▲                      │
                    └──────────────────────┘  (crash during restart)

   - device plug/unplug ([perform]) requires [Running];
   - teardown (taps off bridges, Hostlo queue detach, journal flush)
     happens only inside the [Crashing] window of [crash_vm];
   - [Restarting] is a real window ([boot_delay] of virtual time), so a
     crash landing inside it is an explicit edge, not interleaving luck:
     it cancels the pending boot via a generation counter.  *)
type lifecycle = Running | Crashing | Down | Restarting

let lifecycle_name = function
  | Running -> "running"
  | Crashing -> "crashing"
  | Down -> "down"
  | Restarting -> "restarting"

let legal_edge = function
  | Running, Crashing
  | Crashing, Down
  | Down, Restarting
  | Restarting, Running
  | Restarting, Crashing -> true
  | _ -> false

(* Boot-time parameters, retained so a crashed VM can be restarted with
   the identity the orchestrator knows it by. *)
type vm_spec = {
  spec_vcpus : int;
  spec_mem_mb : int;
  spec_bridge : string;
  spec_ip : Ipv4.t;
}

type t = {
  vmm_host : Host.t;
  vmm_rng : Nest_sim.Prng.t;
  mutable vm_list : (string * Vm.t) list;
  mutable hostlo_list : (string * Tap.t) list;
  netdevs : (string * string, backend) Hashtbl.t;
  nic_tbl : (string * string, Virtio_net.t) Hashtbl.t;
  (* Host-side taps serving each VM, with the bridge they are enslaved
     to — what crash_vm must tear down. *)
  mutable vm_taps : (string * (string * Tap.t)) list;
  mutable spec_list : (string * vm_spec) list;
  mutable qmp_fault : (vm:string -> Qmp.command -> fault_decision) option;
  (* Reply journal: (vm, idempotency key) -> the reply of every command
     that APPLIED.  A retried command answers from here instead of
     re-applying, so "timeout" can mean "applied but ack lost" without
     the retry double-plugging a device.  Cleared per VM on crash: a
     restarted VM is a fresh QEMU process with a fresh QMP socket. *)
  journal : (string * string, Qmp.response) Hashtbl.t;
  lifecycle_tbl : (string, lifecycle) Hashtbl.t;
  (* Invalidates a pending [Restarting] boot when a crash lands first. *)
  boot_gen : (string, int) Hashtbl.t;
  mutable illegal : int;
}

let create host =
  { vmm_host = host; vmm_rng = Nest_sim.Prng.split (Host.rng host);
    vm_list = []; hostlo_list = []; netdevs = Hashtbl.create 16;
    nic_tbl = Hashtbl.create 16; vm_taps = []; spec_list = [];
    qmp_fault = None; journal = Hashtbl.create 16;
    lifecycle_tbl = Hashtbl.create 8; boot_gen = Hashtbl.create 8;
    illegal = 0 }

let set_qmp_fault t f = t.qmp_fault <- f

let host t = t.vmm_host
let vms t = t.vm_list
let find_vm t name = List.assoc_opt name t.vm_list

let lifecycle t name = Hashtbl.find_opt t.lifecycle_tbl name
let illegal_transitions t = t.illegal

(* The single state mutator.  A request along an illegal edge is refused,
   counted, and logged — the caller's state is left untouched, and the
   [illegal_transitions] counter turning non-zero is a bug by definition
   (every public operation guards its preconditions first). *)
let transition t ~name to_ =
  let engine = Host.engine t.vmm_host in
  let ok from =
    Hashtbl.replace t.lifecycle_tbl name to_;
    Engine.trace_instant engine ~cat:"vmm" ~name:"lifecycle"
      ~arg:(Printf.sprintf "%s: %s -> %s" name from (lifecycle_name to_))
      ();
    true
  in
  match Hashtbl.find_opt t.lifecycle_tbl name with
  | None when to_ = Running -> ok "(new)" (* first boot enters at Running *)
  | None ->
    t.illegal <- t.illegal + 1;
    Nest_sim.Log.info ~engine log_src (fun () ->
        Printf.sprintf "ILLEGAL lifecycle transition %s: (none) -> %s" name
          (lifecycle_name to_));
    false
  | Some from when legal_edge (from, to_) -> ok (lifecycle_name from)
  | Some from ->
    t.illegal <- t.illegal + 1;
    Nest_sim.Log.info ~engine log_src (fun () ->
        Printf.sprintf "ILLEGAL lifecycle transition %s: %s -> %s" name
          (lifecycle_name from) (lifecycle_name to_));
    false

let bridge_self_addr t br =
  let hns = Host.ns t.vmm_host in
  let self = Bridge.self_dev br in
  List.find_map
    (fun (d, ip, cidr) -> if d == self then Some (ip, cidr) else None)
    (Stack.addrs hns)

let make_tap_on_bridge t ~name ~bridge =
  match Host.find_bridge t.vmm_host bridge with
  | None -> Error (Printf.sprintf "no such bridge: %s" bridge)
  | Some br ->
    let tap =
      Tap.create (Host.engine t.vmm_host) ~name ~mode:Tap.Normal
        ~hop:(Host.tap_hop t.vmm_host) ~mac:(Host.fresh_mac t.vmm_host) ()
    in
    Bridge.attach br (Tap.host_dev tap);
    Ok tap

let create_vm t ~name ~vcpus ~mem_mb ~bridge ~ip =
  if List.mem_assoc name t.vm_list then
    failwith ("Vmm.create_vm: already running: " ^ name);
  (* Entering [Running] must come through the machine: a fresh name is
     the entry point; a restart completes Restarting -> Running; a name
     that is Down (manual re-create without restart_vm) passes through
     Restarting with a zero-length boot. *)
  (match Hashtbl.find_opt t.lifecycle_tbl name with
  | None | Some Restarting -> ()
  | Some Down -> ignore (transition t ~name Restarting)
  | Some (Running | Crashing) ->
    failwith ("Vmm.create_vm: illegal lifecycle state for boot: " ^ name));
  let br =
    match Host.find_bridge t.vmm_host bridge with
    | Some br -> br
    | None -> failwith ("Vmm.create_vm: no such bridge: " ^ bridge)
  in
  let gw, subnet =
    match bridge_self_addr t br with
    | Some a -> a
    | None -> failwith ("Vmm.create_vm: bridge has no address: " ^ bridge)
  in
  let vm = Vm.create t.vmm_host ~name ~vcpus ~mem_mb in
  let tap =
    match make_tap_on_bridge t ~name:("tap-" ^ name) ~bridge with
    | Ok tap -> tap
    | Error e -> failwith ("Vmm.create_vm: " ^ e)
  in
  t.vm_taps <- t.vm_taps @ [ (name, (bridge, tap)) ];
  if not (List.mem_assoc name t.spec_list) then
    t.spec_list <-
      t.spec_list
      @ [ (name,
           { spec_vcpus = vcpus; spec_mem_mb = mem_mb; spec_bridge = bridge;
             spec_ip = ip }) ];
  let queue = Tap.add_queue tap ~owner:name in
  let vhost = Host.new_vhost_exec t.vmm_host ~name:("vhost-" ^ name) in
  let nic =
    Virtio_net.create ~vm ~id:"eth0" ~mac:(Host.fresh_mac t.vmm_host) ~queue
      ~vhost ()
  in
  let dev = Virtio_net.dev nic in
  Stack.attach (Vm.ns vm) dev;
  Stack.add_addr (Vm.ns vm) dev ip subnet;
  Route.add_default (Stack.routes (Vm.ns vm)) ~gateway:gw ~dev ();
  Hashtbl.replace t.nic_tbl (name, "eth0") nic;
  Vm.nic_arrived vm dev;
  t.vm_list <- t.vm_list @ [ (name, vm) ];
  ignore (transition t ~name Running);
  vm

let bridge_addr t name =
  match Host.find_bridge t.vmm_host name with
  | None -> None
  | Some br -> bridge_self_addr t br

let create_hostlo t ~name =
  let cm = Host.cost_model t.vmm_host in
  let hop =
    Hop.make (Host.soft_exec t.vmm_host)
      ~fixed_ns:cm.Cost_model.hostlo_reflect_fixed_ns
      ~per_byte_ns:cm.Cost_model.hostlo_reflect_per_byte_ns
  in
  let tap =
    Tap.create (Host.engine t.vmm_host) ~name ~mode:Tap.Loopback ~hop
      ~per_queue_ns:cm.Cost_model.hostlo_per_queue_fixed_ns
      ~mac:(Host.fresh_mac t.vmm_host) ()
  in
  t.hostlo_list <- t.hostlo_list @ [ (name, tap) ];
  tap

let find_hostlo t name = List.assoc_opt name t.hostlo_list

(* Any tap the VMM knows — VM-serving taps and Hostlo reflectors — by
   interface name, for fault targeting. *)
let find_tap t name =
  match
    List.find_map
      (fun (_, (_, tap)) ->
        if String.equal (Tap.name tap) name then Some tap else None)
      t.vm_taps
  with
  | Some tap -> Some tap
  | None ->
    List.find_map
      (fun (_, tap) ->
        if String.equal (Tap.name tap) name then Some tap else None)
      t.hostlo_list

let sample_latency t ~mean ~cv =
  int_of_float (Nest_sim.Dist.lognormal_mean_cv t.vmm_rng ~mean ~cv)

let qmp_delay t =
  let cm = Host.cost_model t.vmm_host in
  sample_latency t ~mean:cm.Cost_model.qmp_roundtrip_mean_ns
    ~cv:cm.Cost_model.qmp_roundtrip_cv

let probe_delay t =
  let cm = Host.cost_model t.vmm_host in
  sample_latency t ~mean:cm.Cost_model.guest_probe_mean_ns
    ~cv:cm.Cost_model.guest_probe_cv

let perform t ~vm cmd =
  let vm_name = Vm.name vm in
  match cmd with
  | Qmp.Netdev_add { id; bridge } -> (
    match make_tap_on_bridge t ~name:(vm_name ^ ":" ^ id) ~bridge with
    | Error e -> Qmp.Error e
    | Ok tap ->
      t.vm_taps <- t.vm_taps @ [ (vm_name, (bridge, tap)) ];
      Hashtbl.replace t.netdevs (vm_name, id) (Tap_backend tap);
      Qmp.Ok_done)
  | Qmp.Netdev_add_hostlo { id; hostlo } -> (
    match find_hostlo t hostlo with
    | None -> Qmp.Error ("no such hostlo: " ^ hostlo)
    | Some tap ->
      Hashtbl.replace t.netdevs (vm_name, id) (Hostlo_backend tap);
      Qmp.Ok_done)
  | Qmp.Device_add { id; netdev } -> (
    match Hashtbl.find_opt t.netdevs (vm_name, netdev) with
    | None -> Qmp.Error ("no such netdev: " ^ netdev)
    | Some backend ->
      let tap, l2 =
        match backend with
        | Tap_backend tap -> (tap, Dev.Normal)
        | Hostlo_backend tap -> (tap, Dev.Reflector)
      in
      let mac =
        (* Every queue of a Hostlo tap shares the tap's MAC: it is one
           interface multiplexed between VMs (§4.2). *)
        match backend with
        | Hostlo_backend tap -> Tap.mac tap
        | Tap_backend _ -> Host.fresh_mac t.vmm_host
      in
      let queue = Tap.add_queue tap ~owner:vm_name in
      let vhost =
        Host.new_vhost_exec t.vmm_host
          ~name:(Printf.sprintf "vhost-%s-%s" vm_name id)
      in
      let nic = Virtio_net.create ~vm ~id ~mac ~queue ~vhost ~l2 () in
      Hashtbl.replace t.nic_tbl (vm_name, id) nic;
      (* The frontend exists as soon as QMP returns; the guest sees the
         device once its virtio probe completes. *)
      Engine.schedule (Host.engine t.vmm_host) ~delay:(probe_delay t)
        (fun () -> Vm.nic_arrived vm (Virtio_net.dev nic));
      Qmp.Ok_nic { mac })
  | Qmp.Device_del { id } -> (
    match Hashtbl.find_opt t.nic_tbl (vm_name, id) with
    | None -> Qmp.Error ("no such device: " ^ id)
    | Some nic ->
      Virtio_net.unplug nic;
      Hashtbl.remove t.nic_tbl (vm_name, id);
      Qmp.Ok_done)

(* [vm] is the process the caller is talking to: a handle from before a
   crash never becomes current again (the restart builds a fresh Vm.t),
   so late QMP against a dead incarnation answers "vm not running" even
   if a same-named VM is back up. *)
let vm_current t vm =
  let name = Vm.name vm in
  (match List.assoc_opt name t.vm_list with
  | Some v -> v == vm
  | None -> false)
  && Hashtbl.find_opt t.lifecycle_tbl name = Some Running

let execute t ~vm cmd k =
  let engine = Host.engine t.vmm_host in
  let vm_name = Vm.name vm in
  Nest_sim.Log.info ~engine log_src (fun () ->
      Printf.sprintf "qmp %s -> %s" (Qmp.command_name cmd) vm_name);
  let key = Qmp.idempotency_key cmd in
  (* Exactly-once apply: a journal hit means this logical operation
     already changed device state and only its ack was lost — answer the
     recorded reply instead of plugging a second device. *)
  let apply () =
    match Hashtbl.find_opt t.journal (vm_name, key) with
    | Some r ->
      Metrics.bump (Metrics.counter (Engine.metrics engine) "qmp.dedupe") ();
      Engine.trace_instant engine ~cat:"qmp" ~name:"dedupe"
        ~arg:(key ^ " @ " ^ vm_name) ();
      Nest_sim.Log.info ~engine log_src (fun () ->
          Printf.sprintf "qmp dedupe %s @ %s (already applied)" key vm_name);
      r
    | None ->
      let r = perform t ~vm cmd in
      (match r with
      | Qmp.Error _ -> ()
      | _ ->
        Hashtbl.replace t.journal (vm_name, key) r;
        (* A successful del/add pair invalidates its counterpart, so the
           journal always describes the device state actually applied. *)
        (match cmd with
        | Qmp.Device_add { id; _ } ->
          Hashtbl.remove t.journal (vm_name, "device_del:" ^ id)
        | Qmp.Device_del { id } ->
          Hashtbl.remove t.journal (vm_name, "device_add:" ^ id)
        | _ -> ()));
      r
  in
  let finish delay r =
    Engine.schedule engine ~delay (fun () ->
        let r = if vm_current t vm then r () else Qmp.Error "vm not running" in
        Nest_sim.Log.info ~engine log_src (fun () ->
            Format.asprintf "qmp %s @ %s: %a" (Qmp.command_name cmd) vm_name
              Qmp.pp_response r);
        k r)
  in
  (* Fault injection on the management plane.  The decision is made at
     issue time so an injected timeout delays the caller without holding
     a monitor lock; [None] (the default) is the unfaulted path. *)
  let decision =
    match t.qmp_fault with
    | None -> Pass
    | Some f -> f ~vm:vm_name cmd
  in
  match decision with
  | Pass -> finish (qmp_delay t) apply
  | Fail e -> finish (qmp_delay t) (fun () -> Qmp.Error e)
  | Timeout ns ->
    finish ns (fun () -> Qmp.Error (Qmp.command_name cmd ^ ": timeout"))
  | Partial_timeout ns ->
    (* The dangerous case: the VMM applies the command after the normal
       round-trip, but the ack is lost — the caller learns only via its
       own (longer) timeout and will retry a command that already took
       effect.  The journal above is what makes that retry safe. *)
    Engine.schedule engine ~delay:(qmp_delay t) (fun () ->
        if vm_current t vm then ignore (apply ()));
    finish ns (fun () ->
        Qmp.Error (Qmp.command_name cmd ^ ": timeout (reply lost)"))

(* The two-command hot-plug protocols surface failures to the caller as
   [Error] instead of raising: under fault injection a refused or timed-
   out QMP round-trip is an operational event the orchestrator retries
   (Kubelet backoff), not a programming error. *)
let hotplug_nic_mac t ~vm ~bridge ~id ~k =
  execute t ~vm (Qmp.Netdev_add { id = id ^ "-nd"; bridge }) (fun r1 ->
      match r1 with
      | Qmp.Error e -> k (Result.Error ("netdev_add: " ^ e))
      | Qmp.Ok_done | Qmp.Ok_nic _ ->
        execute t ~vm (Qmp.Device_add { id; netdev = id ^ "-nd" }) (fun r2 ->
            match r2 with
            | Qmp.Ok_nic { mac } -> k (Result.Ok mac)
            | Qmp.Error e -> k (Result.Error ("device_add: " ^ e))
            | Qmp.Ok_done -> k (Result.Error "device_add: no mac")))

let require_mac what k = function
  | Result.Ok mac -> k mac
  | Result.Error e -> failwith (what ^ ": " ^ e)

let hotplug_nic t ~vm ~bridge ~id ~k =
  hotplug_nic_mac t ~vm ~bridge ~id
    ~k:(require_mac "hotplug_nic" (fun mac -> Vm.wait_nic vm ~mac ~k ()))

let hotplug_hostlo_endpoint_mac t ~vm ~hostlo ~id ~k =
  execute t ~vm (Qmp.Netdev_add_hostlo { id = id ^ "-nd"; hostlo }) (fun r1 ->
      match r1 with
      | Qmp.Error e -> k (Result.Error ("netdev_add_hostlo: " ^ e))
      | Qmp.Ok_done | Qmp.Ok_nic _ ->
        execute t ~vm (Qmp.Device_add { id; netdev = id ^ "-nd" }) (fun r2 ->
            match r2 with
            | Qmp.Ok_nic { mac } -> k (Result.Ok mac)
            | Qmp.Error e -> k (Result.Error ("device_add: " ^ e))
            | Qmp.Ok_done -> k (Result.Error "device_add: no mac")))

let hotplug_hostlo_endpoint t ~vm ~hostlo ~id ~k =
  hotplug_hostlo_endpoint_mac t ~vm ~hostlo ~id
    ~k:
      (require_mac "hotplug_hostlo_endpoint" (fun mac ->
           Vm.wait_nic vm ~mac ~k ()))

let unplug_nic t ~vm ~id =
  execute t ~vm (Qmp.Device_del { id }) (fun _ -> ())

(* ------------------------------------------------------------------ *)
(* VM crash / restart (fault injection)                                *)

let bump_boot_gen t name =
  let g = Option.value (Hashtbl.find_opt t.boot_gen name) ~default:0 in
  Hashtbl.replace t.boot_gen name (g + 1);
  g + 1

(* Everything the QEMU process's death takes with it, torn down inside
   the [Crashing] window. *)
let teardown t ~name vm =
  Vm.kill vm;
  (* Host side of the guest NICs: frontends die with the QEMU process. *)
  Hashtbl.iter
    (fun (vm_name, _) nic ->
      if String.equal vm_name name then Virtio_net.unplug nic)
    t.nic_tbl;
  Hashtbl.filter_map_inplace
    (fun (vm_name, _) nic ->
      if String.equal vm_name name then None else Some nic)
    t.nic_tbl;
  Hashtbl.filter_map_inplace
    (fun (vm_name, _) nd ->
      if String.equal vm_name name then None else Some nd)
    t.netdevs;
  (* The reply journal dies with the QMP socket: the replacement QEMU
     process knows nothing of its predecessor's applied commands, so
     post-restart re-plugs with recycled ids must re-apply. *)
  Hashtbl.filter_map_inplace
    (fun (vm_name, _) r -> if String.equal vm_name name then None else Some r)
    t.journal;
  (* The VM's taps disappear from their bridges; any queue the VM held
     on a Hostlo reflector is detached so reflection stops feeding a
     dead vhost (§4.2 teardown). *)
  let mine, rest =
    List.partition (fun (owner, _) -> String.equal owner name) t.vm_taps
  in
  t.vm_taps <- rest;
  List.iter
    (fun (_, (bridge, tap)) ->
      ignore (Tap.remove_queues tap ~owner:name);
      match Host.find_bridge t.vmm_host bridge with
      | Some br -> Bridge.detach br (Tap.host_dev tap)
      | None -> ())
    mine;
  List.iter
    (fun (_, hlo) -> ignore (Tap.remove_queues hlo ~owner:name))
    t.hostlo_list;
  t.vm_list <- List.remove_assoc name t.vm_list

let crash_vm t ~name =
  let engine = Host.engine t.vmm_host in
  match lifecycle t name with
  | Some Running ->
    Nest_sim.Log.info ~engine log_src (fun () -> "vm crash: " ^ name);
    ignore (bump_boot_gen t name);
    if transition t ~name Crashing then begin
      (match List.assoc_opt name t.vm_list with
      | Some vm -> teardown t ~name vm
      | None -> ());
      ignore (transition t ~name Down)
    end
  | Some Restarting ->
    (* Crash-during-restart: the replacement QEMU process dies before
       its boot completes.  There is no device state yet — the edge's
       whole job is to cancel the pending boot. *)
    Nest_sim.Log.info ~engine log_src (fun () ->
        "vm crash during restart: " ^ name);
    ignore (bump_boot_gen t name);
    if transition t ~name Crashing then ignore (transition t ~name Down)
  | Some Crashing | Some Down | None -> ()
  (* nothing running to kill: crash of a Down/unknown VM is a no-op, and
     [Crashing] is unobservable from the engine (teardown is atomic in
     virtual time) *)

let default_boot_delay = Time.ms 100

let restart_vm t ~name ?(boot_delay = default_boot_delay) ~k () =
  let engine = Host.engine t.vmm_host in
  match (List.assoc_opt name t.spec_list, lifecycle t name) with
  | None, _ -> false
  | Some _, (Some Running | Some Crashing | Some Restarting | None) -> false
  | Some s, Some Down ->
    if not (transition t ~name Restarting) then false
    else begin
      Nest_sim.Log.info ~engine log_src (fun () -> "vm restart: " ^ name);
      let gen = bump_boot_gen t name in
      Engine.schedule engine ~label:"vmm:boot" ~delay:boot_delay (fun () ->
          (* A crash (or a newer restart) inside the boot window bumped
             the generation: this boot was cancelled by that edge. *)
          if
            Hashtbl.find_opt t.boot_gen name = Some gen
            && lifecycle t name = Some Restarting
          then begin
            let vm =
              create_vm t ~name ~vcpus:s.spec_vcpus ~mem_mb:s.spec_mem_mb
                ~bridge:s.spec_bridge ~ip:s.spec_ip
            in
            (* Gratuitous ARP on boot: the address is reused but the MACs
               are fresh, so peers on the bridge segment must drop their
               stale mapping or keep blackholing the restarted VM. *)
            Stack.arp_flush ~ip:s.spec_ip (Host.ns t.vmm_host);
            List.iter
              (fun (_, v) ->
                if not (v == vm) then Stack.arp_flush ~ip:s.spec_ip (Vm.ns v))
              t.vm_list;
            k vm
          end);
      true
    end

(* ------------------------------------------------------------------ *)
(* Invariants                                                          *)

(* Cross-table consistency the lifecycle machine is supposed to enforce.
   Chaos runs and the no-dangling tests assert this comes back empty
   after any fault schedule. *)
let check_invariants t =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let running name = lifecycle t name = Some Running in
  List.iter
    (fun (name, _) ->
      if not (running name) then
        add "%s in vm_list but lifecycle %s" name
          (match lifecycle t name with
          | Some s -> lifecycle_name s
          | None -> "(none)"))
    t.vm_list;
  Hashtbl.iter
    (fun name st ->
      if st = Running && not (List.mem_assoc name t.vm_list) then
        add "%s lifecycle running but not in vm_list" name;
      if st = Crashing then add "%s stuck in crashing" name)
    t.lifecycle_tbl;
  Hashtbl.iter
    (fun (vm, id) _ ->
      if not (running vm) then add "device %s:%s outlives its VM" vm id)
    t.nic_tbl;
  Hashtbl.iter
    (fun (vm, id) _ ->
      if not (running vm) then add "netdev %s:%s outlives its VM" vm id)
    t.netdevs;
  List.iter
    (fun (owner, (_, tap)) ->
      if not (running owner) then
        add "host tap %s outlives its VM %s" (Tap.name tap) owner)
    t.vm_taps;
  Hashtbl.iter
    (fun (vm, key) _ ->
      if not (running vm) then add "journal entry %s for dead VM %s" key vm)
    t.journal;
  List.iter
    (fun (hname, tap) ->
      List.iter
        (fun q ->
          let owner = Tap.queue_owner q in
          if not (running owner) then
            add "hostlo %s queue dangles for dead VM %s" hname owner)
        (Tap.queues tap))
    t.hostlo_list;
  if t.illegal > 0 then
    add "%d illegal lifecycle transition(s) attempted" t.illegal;
  List.sort compare !out
