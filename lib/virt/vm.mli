(** A guest virtual machine: vCPUs, guest-kernel execution contexts, the
    guest root network namespace, and the guest-visible NIC registry fed
    by hot-plug (the paper's VM agent discovers hot-plugged NICs by the
    MAC address the orchestrator learned from the VMM — §3.1 step 4).

    All guest work — kernel or application — is charged both to its own
    entity and to the host's [guest] category, matching how KVM guest
    time appears on the host. *)

open Nest_net

type t

val create :
  Host.t -> name:string -> vcpus:int -> mem_mb:int -> t

val name : t -> string
val host : t -> Host.t
val vcpus : t -> int
val mem_mb : t -> int

val ns : t -> Stack.ns
(** Guest root namespace (IP forwarding enabled, as Docker requires). *)

val sys_exec : t -> Nest_sim.Exec.t
val soft_exec : t -> Nest_sim.Exec.t

val cpu_set : t -> Nest_sim.Cpu_set.t
(** The VM's vCPUs: every guest context (kernel and applications) draws
    from this pool, so the VM saturates as a whole. *)

val new_netns : t -> name:string -> ?with_loopback:bool -> unit -> Stack.ns
(** A pod/container network namespace inside this guest.  It shares the
    guest kernel's execution contexts: its packet work contends with the
    guest's other namespaces for the same vCPU time. *)

val new_app_exec : t -> name:string -> entity:string -> Nest_sim.Exec.t
(** Application context inside the guest ([entity], usr + host guest). *)

val guest_hops : t -> veth:unit -> Hop.t * Hop.t
(** [(guest-soft veth hop, guest-soft bridge hop)] for building in-guest
    plumbing (Docker's veth pairs and docker0). *)

val entities : t -> string list
(** This VM's entity plus every app entity registered through
    {!new_app_exec}; used to aggregate per-VM CPU figures. *)

(* Hot-plug arrival: the VMM inserts NICs; the in-guest agent waits for
   them by MAC (virtio probe + udev having completed). *)

val nic_arrived : t -> Dev.t -> unit
(** Called by the VMM when a hot-plugged NIC becomes guest-visible. *)

val wait_nic :
  t -> mac:Mac.t -> ?on_dead:(unit -> unit) -> k:(Dev.t -> unit) -> unit ->
  unit
(** Runs [k] with the device once (immediately if already present).
    [on_dead] (default: nothing) fires instead of [k] if the VM dies
    before the device arrives — or immediately if it is already dead —
    so callers can release resources reserved for the NIC rather than
    leak them with the waiter. *)

val nics : t -> Dev.t list

val netns_list : t -> Stack.ns list
(** Every pod/container namespace created inside this guest. *)

val alive : t -> bool

val kill : t -> unit
(** Abrupt VM death (fault injection): marks the VM dead, downs every
    guest-visible device in the root and pod namespaces, and discards
    pending NIC waiters.  The VMM layer ({!Vmm.crash_vm}) additionally
    tears down host-side plumbing. *)
