type command =
  | Netdev_add of { id : string; bridge : string }
  | Netdev_add_hostlo of { id : string; hostlo : string }
  | Device_add of { id : string; netdev : string }
  | Device_del of { id : string }

type response =
  | Ok_done
  | Ok_nic of { mac : Nest_net.Mac.t }
  | Error of string

let command_name = function
  | Netdev_add _ -> "netdev_add"
  | Netdev_add_hostlo _ -> "netdev_add_hostlo"
  | Device_add _ -> "device_add"
  | Device_del _ -> "device_del"

(* The id names the logical operation: an orchestrator retry re-issues
   the command with the same id, a distinct operation uses a fresh one
   (QEMU itself enforces this by refusing duplicate ids).  Command name +
   id is therefore a usable idempotency key: the VMM's reply journal
   dedupes re-applies under it, turning "timeout" into "applied but ack
   lost" instead of "unknown". *)
let idempotency_key = function
  | Netdev_add { id; _ } -> "netdev_add:" ^ id
  | Netdev_add_hostlo { id; _ } -> "netdev_add_hostlo:" ^ id
  | Device_add { id; _ } -> "device_add:" ^ id
  | Device_del { id } -> "device_del:" ^ id

let pp_response fmt = function
  | Ok_done -> Format.pp_print_string fmt "ok"
  | Ok_nic { mac } -> Format.fprintf fmt "ok mac=%a" Nest_net.Mac.pp mac
  | Error e -> Format.fprintf fmt "error: %s" e
