(** The physical machine: pCPUs, the host kernel's root network namespace,
    host bridges, vhost workers, and process namespaces for bare-metal
    processes (the benchmark clients in the paper's setup run directly on
    the host, linked to the host bridge). *)

open Nest_net

type t

val create :
  Nest_sim.Engine.t ->
  Nest_sim.Cpu_account.t ->
  ?cpus:int ->
  ?cost_model:Cost_model.t ->
  ?entity:string ->
  ?rng:Nest_sim.Prng.t ->
  name:string ->
  unit ->
  t
(** [cpus] defaults to 12 (the paper's Dell server); [entity] to "host".
    [rng] keys this host's random streams (and, transitively, those of
    its namespaces and guests) on a caller-owned stream instead of the
    engine root — sharded cluster scenarios pass a per-node stream so
    the node's draws do not depend on which sub-engine it shares. *)

val engine : t -> Nest_sim.Engine.t
val account : t -> Nest_sim.Cpu_account.t
val entity : t -> string
val cpus : t -> int
val cost_model : t -> Cost_model.t
val ns : t -> Stack.ns
(** Host root namespace (IP forwarding enabled). *)

val soft_exec : t -> Nest_sim.Exec.t
(** Host softirq context: bridge switching, veth crossings, forwarding. *)

val cpu_set : t -> Nest_sim.Cpu_set.t
(** The machine's cores; every host-side context draws from it. *)

val fresh_mac : t -> Mac.t
val rng : t -> Nest_sim.Prng.t

val ns_rng_src : t -> Nest_sim.Prng.t option
(** The stream child namespace stacks should split from: [Some (rng t)]
    when the host was created with an explicit [~rng], [None] (split
    from the engine root, the historical behaviour) otherwise. *)

val add_bridge : t -> name:string -> ip:Ipv4.t -> subnet:Ipv4.cidr -> Bridge.t
(** Creates a bridge, gives its self interface [ip] in the host namespace
    (so the host routes the bridged segment) and registers it by name. *)

val find_bridge : t -> string -> Bridge.t option
val bridges : t -> (string * Bridge.t) list

val bridge_hop : t -> Hop.t
(** Switching cost on the host softirq context (for extra bridges). *)

val veth_hop : t -> Hop.t
val tap_hop : t -> Hop.t

val masquerade : t -> src_subnet:Ipv4.cidr -> nat_ip:Ipv4.t -> unit
(** Installs host-level source NAT (the VMM's NAT of Fig. 1). *)

val new_vhost_exec : t -> name:string -> Nest_sim.Exec.t
(** A vhost kernel worker: host CPU charged as [sys] (the paper observes
    this attribution in §5.3.4). *)

val new_process_ns : t -> name:string -> entity:string -> Stack.ns
(** Namespace for a bare-metal process (e.g. the Netperf client), with its
    own execution contexts charged to [entity]. *)

val new_app_exec : t -> name:string -> entity:string -> Nest_sim.Exec.t
(** Application (usr) context for a host process. *)

val connect_ns_to_host :
  t -> Stack.ns -> host_ip:Ipv4.t -> ns_ip:Ipv4.t -> subnet:Ipv4.cidr -> unit
(** Veth pair between a process namespace and the host root namespace;
    installs addresses, the default route in [ns], and host-side routing. *)
