(** The virtual machine manager: creates VMs, executes management commands
    over their QMP side channels, and owns the two mechanisms the paper
    adds to the management plane:

    - NIC hot-plug into a running VM, backed by a fresh host tap enslaved
      to a host bridge (BrFusion's primitive, §3);
    - creation of Hostlo multiplexed loopback taps and insertion of their
      per-VM queue endpoints (§4).

    [execute] models the asynchronous QMP round-trip; hot-plugged devices
    become guest-visible only after the in-guest virtio probe delay, and
    are then handed to {!Vm.wait_nic} waiters — the paper's VM-agent
    discovery by MAC. *)

open Nest_net

type t

type fault_decision =
  | Pass                            (** execute normally *)
  | Fail of string                  (** reply [Error] after the QMP RTT *)
  | Timeout of Nest_sim.Time.ns     (** reply [Error] after the given wait *)

val create : Host.t -> t
val host : t -> Host.t

val set_qmp_fault :
  t -> (vm:string -> Qmp.command -> fault_decision) option -> unit
(** Install (or clear) a management-plane fault oracle consulted once per
    {!execute}.  [None] — the default — is the unfaulted path and draws
    nothing from any RNG, so runs without a fault plan are bit-identical
    to runs built before the hook existed. *)

val create_vm :
  t -> name:string -> vcpus:int -> mem_mb:int -> bridge:string -> ip:Ipv4.t -> Vm.t
(** Boots a VM with one cold-plugged NIC ([eth0]) on the named host
    bridge, addressed [ip] with the bridge's subnet and the bridge as
    default gateway. *)

val vms : t -> (string * Vm.t) list
val find_vm : t -> string -> Vm.t option

val execute : t -> vm:Vm.t -> Qmp.command -> (Qmp.response -> unit) -> unit

val bridge_addr : t -> string -> (Ipv4.t * Ipv4.cidr) option
(** The (gateway address, subnet) of a host bridge's self interface. *)

val create_hostlo : t -> name:string -> Tap.t
(** New loopback-mode tap in the host kernel (no VM attached yet). *)

val find_hostlo : t -> string -> Tap.t option

val find_tap : t -> string -> Tap.t option
(** Any tap the VMM knows — VM-serving taps ("tap-<vm>", hot-plugged
    "<vm>:<id>") and Hostlo reflectors — by interface name.  Used by
    fault injection to target queue-exhaustion events. *)

(* Convenience wrappers bundling the §3.1/§4.1 orchestrator<->VMM
   protocol: netdev_add + device_add + in-guest discovery. *)

val hotplug_nic :
  t -> vm:Vm.t -> bridge:string -> id:string -> k:(Dev.t -> unit) -> unit
(** [k] fires once the NIC is guest-visible. *)

val hotplug_nic_mac :
  t -> vm:Vm.t -> bridge:string -> id:string ->
  k:((Mac.t, string) result -> unit) -> unit
(** Like {!hotplug_nic} but hands back the MAC as soon as the VMM answers
    (§3.1 step 3): discovery of the guest-visible device is then the VM
    agent's job ({!Vm.wait_nic}, or [Nest_orch.Kubelet.configure_nic]).
    A refused or timed-out round-trip (fault injection, dead VM) arrives
    as [Error] for the orchestrator to retry. *)

val hotplug_hostlo_endpoint :
  t -> vm:Vm.t -> hostlo:string -> id:string -> k:(Dev.t -> unit) -> unit

val hotplug_hostlo_endpoint_mac :
  t -> vm:Vm.t -> hostlo:string -> id:string ->
  k:((Mac.t, string) result -> unit) -> unit

val unplug_nic : t -> vm:Vm.t -> id:string -> unit

(* Fault injection: abrupt VM death and supervised restart. *)

val crash_vm : t -> name:string -> unit
(** Kill the named VM as if its QEMU process died: the guest and every
    pod namespace inside it go dark ({!Vm.kill}), its host taps leave
    their bridges, its virtio frontends unplug, and any queue it held on
    a Hostlo reflector is detached — the reflector keeps serving the
    surviving members with no dangling queue.  No-op for unknown VMs. *)

val restart_vm : t -> name:string -> Vm.t option
(** Re-boot a crashed VM from its recorded creation spec (same name,
    sizing, bridge, and address; fresh MACs).  Returns [None] when the
    name is unknown or the VM is still running.  Pods are not restored —
    rescheduling them is the orchestrator's job. *)
