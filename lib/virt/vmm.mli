(** The virtual machine manager: creates VMs, executes management commands
    over their QMP side channels, and owns the two mechanisms the paper
    adds to the management plane:

    - NIC hot-plug into a running VM, backed by a fresh host tap enslaved
      to a host bridge (BrFusion's primitive, §3);
    - creation of Hostlo multiplexed loopback taps and insertion of their
      per-VM queue endpoints (§4).

    [execute] models the asynchronous QMP round-trip; hot-plugged devices
    become guest-visible only after the in-guest virtio probe delay, and
    are then handed to {!Vm.wait_nic} waiters — the paper's VM-agent
    discovery by MAC.

    Two robustness mechanisms live here:

    - {b Exactly-once hot-plug.}  Every applied command's reply is
      journaled under its {!Qmp.idempotency_key}; a retried command
      answers from the journal instead of re-applying, so a lost ack
      ([Partial_timeout]) cannot duplicate a device.  The journal dies
      with the VM's QMP socket on crash.
    - {b Lifecycle state machine.}  Each VM is in exactly one of
      [Running | Crashing | Down | Restarting]; transitions along the
      legal edges are the only way its device state may change, making
      crash-during-restart and restart-during-detach explicit edges
      rather than interleaving accidents. *)

open Nest_net

type t

type fault_decision =
  | Pass                            (** execute normally *)
  | Fail of string                  (** reply [Error] after the QMP RTT *)
  | Timeout of Nest_sim.Time.ns     (** command lost; [Error] after the wait *)
  | Partial_timeout of Nest_sim.Time.ns
      (** command {e applied} after the normal RTT, but the ack is lost:
          the caller sees [Error "... timeout (reply lost)"] after the
          wait and will retry a command that already took effect.  The
          reply journal is what makes that retry safe. *)

(** VM lifecycle.  Legal edges: [Running -> Crashing -> Down ->
    Restarting -> Running], plus [Restarting -> Crashing] (crash during
    the boot window).  [Crashing] is unobservable from scheduled events
    (teardown is atomic in virtual time). *)
type lifecycle = Running | Crashing | Down | Restarting

val lifecycle_name : lifecycle -> string

val create : Host.t -> t
val host : t -> Host.t

val set_qmp_fault :
  t -> (vm:string -> Qmp.command -> fault_decision) option -> unit
(** Install (or clear) a management-plane fault oracle consulted once per
    {!execute}.  [None] — the default — is the unfaulted path and draws
    nothing from any RNG, so runs without a fault plan are bit-identical
    to runs built before the hook existed. *)

val create_vm :
  t -> name:string -> vcpus:int -> mem_mb:int -> bridge:string -> ip:Ipv4.t -> Vm.t
(** Boots a VM with one cold-plugged NIC ([eth0]) on the named host
    bridge, addressed [ip] with the bridge's subnet and the bridge as
    default gateway.  Raises if a VM of that name is already running. *)

val vms : t -> (string * Vm.t) list
val find_vm : t -> string -> Vm.t option

val lifecycle : t -> string -> lifecycle option
(** Current lifecycle state, [None] for names never booted. *)

val illegal_transitions : t -> int
(** How many illegal lifecycle transitions were {e requested} (each was
    refused and logged).  Non-zero means a code path tried to mutate a VM
    outside the machine's rules — correct runs keep this at exactly 0,
    and the lifecycle tests assert it. *)

val execute : t -> vm:Vm.t -> Qmp.command -> (Qmp.response -> unit) -> unit
(** One QMP round-trip against [vm]'s monitor socket.  Exactly-once: if
    the command's {!Qmp.idempotency_key} is in the reply journal the
    recorded reply is returned without re-applying (counted in the
    [qmp.dedupe] metric).  The reply is [Error "vm not running"] when the
    handle's incarnation is no longer the current Running VM — a handle
    from before a crash never becomes current again. *)

val bridge_addr : t -> string -> (Ipv4.t * Ipv4.cidr) option
(** The (gateway address, subnet) of a host bridge's self interface. *)

val create_hostlo : t -> name:string -> Tap.t
(** New loopback-mode tap in the host kernel (no VM attached yet). *)

val find_hostlo : t -> string -> Tap.t option

val find_tap : t -> string -> Tap.t option
(** Any tap the VMM knows — VM-serving taps ("tap-<vm>", hot-plugged
    "<vm>:<id>") and Hostlo reflectors — by interface name.  Used by
    fault injection to target queue-exhaustion events. *)

(* Convenience wrappers bundling the §3.1/§4.1 orchestrator<->VMM
   protocol: netdev_add + device_add + in-guest discovery. *)

val hotplug_nic :
  t -> vm:Vm.t -> bridge:string -> id:string -> k:(Dev.t -> unit) -> unit
(** [k] fires once the NIC is guest-visible. *)

val hotplug_nic_mac :
  t -> vm:Vm.t -> bridge:string -> id:string ->
  k:((Mac.t, string) result -> unit) -> unit
(** Like {!hotplug_nic} but hands back the MAC as soon as the VMM answers
    (§3.1 step 3): discovery of the guest-visible device is then the VM
    agent's job ({!Vm.wait_nic}, or [Nest_orch.Kubelet.configure_nic]).
    A refused or timed-out round-trip (fault injection, dead VM) arrives
    as [Error] for the orchestrator to retry. *)

val hotplug_hostlo_endpoint :
  t -> vm:Vm.t -> hostlo:string -> id:string -> k:(Dev.t -> unit) -> unit

val hotplug_hostlo_endpoint_mac :
  t -> vm:Vm.t -> hostlo:string -> id:string ->
  k:((Mac.t, string) result -> unit) -> unit

val unplug_nic : t -> vm:Vm.t -> id:string -> unit

(* Fault injection: abrupt VM death and supervised restart. *)

val crash_vm : t -> name:string -> unit
(** [Running -> Crashing -> Down]: kill the named VM as if its QEMU
    process died.  The guest and every pod namespace inside it go dark
    ({!Vm.kill}), its host taps leave their bridges, its virtio frontends
    unplug, any queue it held on a Hostlo reflector is detached, and its
    reply journal is discarded (a restarted VM is a fresh QMP socket).
    On a [Restarting] VM this is the crash-during-restart edge: the
    pending boot is cancelled and the VM goes back to [Down].  No-op for
    unknown or already-Down VMs. *)

val restart_vm :
  t -> name:string -> ?boot_delay:Nest_sim.Time.ns -> k:(Vm.t -> unit) ->
  unit -> bool
(** [Down -> Restarting -> Running]: re-boot a crashed VM from its
    recorded creation spec (same name, sizing, bridge, and address; fresh
    MACs).  The boot occupies [boot_delay] (default 100ms) of virtual
    time in [Restarting]; [k] fires with the fresh incarnation when it
    completes.  Returns [false] — and schedules nothing — when the name
    has no spec or is not [Down].  A crash landing inside the boot window
    cancels it ([k] never fires).  Pods are not restored — rescheduling
    them is the orchestrator's job. *)

val check_invariants : t -> string list
(** Cross-table consistency the lifecycle machine enforces: device,
    netdev, tap, and journal entries exist only for Running VMs; Hostlo
    reflector queues are owned by Running VMs; [vm_list] and the
    lifecycle table agree; no illegal transition was ever requested.
    Empty means consistent — chaos cells assert this after every fault
    schedule. *)
