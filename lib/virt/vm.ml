open Nest_net
module Exec = Nest_sim.Exec
module Cpu_account = Nest_sim.Cpu_account

type t = {
  vm_name : string;
  vm_host : Host.t;
  vm_vcpus : int;
  vm_mem_mb : int;
  vm_cpuset : Nest_sim.Cpu_set.t;
  sys : Exec.t;
  soft : Exec.t;
  vm_ns : Stack.ns;
  mutable entity_list : string list;
  mutable nic_list : Dev.t list;
  mutable nic_waiters : (Mac.t * (Dev.t -> unit) * (unit -> unit)) list;
  mutable netns_list : Stack.ns list;
  mutable vm_alive : bool;
}

let guest_cost_model host =
  let cm = Host.cost_model host in
  Cost_model.scaled cm cm.Cost_model.guest_kernel_factor

let create host ~name ~vcpus ~mem_mb =
  let engine = Host.engine host in
  let acct = Host.account host in
  let guest_charge = [ (acct, Host.entity host, Cpu_account.Guest) ] in
  let vm_cpuset = Nest_sim.Cpu_set.create ~cores:vcpus ~name in
  let sys =
    Exec.create ~account:(acct, name, Cpu_account.Sys) ~also:guest_charge
      ~width:vcpus ~cpus:vm_cpuset engine ~name:(name ^ ":sys")
  in
  let soft =
    Exec.create ~account:(acct, name, Cpu_account.Soft) ~also:guest_charge
      ~cpus:vm_cpuset engine ~name:(name ^ ":softirq")
  in
  let costs =
    Kernel_costs.stack_costs (guest_cost_model host) ~sys_exec:sys
      ~soft_exec:soft
  in
  let vm_ns = Stack.create engine ~name ~costs ?rng:(Host.ns_rng_src host) () in
  Stack.set_ip_forward vm_ns true;
  { vm_name = name; vm_host = host; vm_vcpus = vcpus; vm_mem_mb = mem_mb;
    vm_cpuset; sys; soft; vm_ns; entity_list = [ name ]; nic_list = [];
    nic_waiters = []; netns_list = []; vm_alive = true }

let name t = t.vm_name
let host t = t.vm_host
let vcpus t = t.vm_vcpus
let mem_mb t = t.vm_mem_mb
let ns t = t.vm_ns
let cpu_set t = t.vm_cpuset
let sys_exec t = t.sys
let soft_exec t = t.soft

let new_netns t ~name ?(with_loopback = true) () =
  let costs =
    Kernel_costs.stack_costs (guest_cost_model t.vm_host) ~sys_exec:t.sys
      ~soft_exec:t.soft
  in
  let ns =
    Stack.create (Host.engine t.vm_host) ~name ~costs ~with_loopback
      ?rng:(Host.ns_rng_src t.vm_host) ()
  in
  t.netns_list <- t.netns_list @ [ ns ];
  ns

let new_app_exec t ~name ~entity =
  let acct = Host.account t.vm_host in
  if not (List.mem entity t.entity_list) then
    t.entity_list <- t.entity_list @ [ entity ];
  Exec.create
    ~account:(acct, entity, Cpu_account.Usr)
    ~also:[ (acct, Host.entity t.vm_host, Cpu_account.Guest) ]
    ~cpus:t.vm_cpuset (Host.engine t.vm_host) ~name

let guest_hops t ~veth:() =
  let cm = guest_cost_model t.vm_host in
  ( Hop.make t.soft ~fixed_ns:cm.Cost_model.veth_fixed_ns
      ~per_byte_ns:cm.Cost_model.veth_per_byte_ns,
    Hop.make t.soft ~fixed_ns:cm.Cost_model.bridge_fixed_ns
      ~per_byte_ns:cm.Cost_model.bridge_per_byte_ns )

let entities t = t.entity_list

(* Hostlo endpoints all carry the reflector tap's MAC (§4.2: one
   interface multiplexed between VMs), so a MAC can match several
   devices.  A device already claimed by a namespace ([rx_fn] set by
   [Stack.attach]) must never match again — handing it out would rebind
   its receive path and silently steal it from the first owner.  The
   agent matches the first *unclaimed* device, like udev matching the
   newly-probed instance rather than grepping the MAC table. *)
let unclaimed d = Option.is_none d.Dev.rx_fn

let nic_arrived t dev =
  t.nic_list <- t.nic_list @ [ dev ];
  (* One arrival satisfies one waiter: with shared-MAC endpoints, two
     concurrent configures must end up on two distinct devices. *)
  let rec pop acc = function
    | [] -> (None, List.rev acc)
    | ((mac, k, _) as w) :: rest ->
      if Mac.equal mac dev.Dev.mac then (Some k, List.rev_append acc rest)
      else pop (w :: acc) rest
  in
  let ready, waiting = pop [] t.nic_waiters in
  t.nic_waiters <- waiting;
  match ready with
  | Some k ->
    (* The waiter is about to claim [dev]: ownership changes, so any
       reflector verdicts cached against the old binding must die. *)
    Dev.bump_binding dev;
    k dev
  | None -> ()

let wait_nic t ~mac ?(on_dead = fun () -> ()) ~k () =
  if not t.vm_alive then on_dead ()
  else
    match
      List.find_opt
        (fun d -> Mac.equal d.Dev.mac mac && unclaimed d)
        t.nic_list
    with
    | Some dev ->
      Dev.bump_binding dev;
      k dev
    | None -> t.nic_waiters <- t.nic_waiters @ [ (mac, k, on_dead) ]

let nics t = t.nic_list
let netns_list t = t.netns_list
let alive t = t.vm_alive

(* Abrupt VM death: every guest-visible device — root-namespace NICs and
   the veths inside pod namespaces — goes dead at once.  In-flight events
   already scheduled on guest contexts still fire (the host reclaims the
   vCPUs only after the instant of death), but every frame they try to
   move is dropped at a down device.  Waiters for NICs that will never
   arrive are discarded. *)
let kill t =
  t.vm_alive <- false;
  let waiters = t.nic_waiters in
  t.nic_waiters <- [];
  (* Tell each abandoned waiter its NIC will never arrive, so the owner
     can release whatever it reserved for the device (an IPAM lease, a
     pool slot) instead of leaking it with the dead VM. *)
  List.iter (fun (_, _, on_dead) -> on_dead ()) waiters;
  List.iter (fun d -> Dev.set_up d false) t.nic_list;
  let down_ns ns = List.iter (fun d -> Dev.set_up d false) (Stack.devices ns) in
  down_ns t.vm_ns;
  List.iter down_ns t.netns_list
