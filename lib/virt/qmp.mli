(** The VMM's side-channel management interface (QEMU's QMP socket, §3.2).

    Commands are typed rather than JSON, but keep QMP's shape: netdev
    (backend) creation, device (frontend) plug/unplug, and the Hostlo
    extension that creates a multiplexed loopback tap.  Each command costs
    one management round-trip, sampled from the cost model. *)

type command =
  | Netdev_add of { id : string; bridge : string }
      (** Create a tap backend enslaved to the named host bridge. *)
  | Netdev_add_hostlo of { id : string; hostlo : string }
      (** Take a queue of the named Hostlo loopback tap as backend. *)
  | Device_add of { id : string; netdev : string }
      (** Plug a virtio-net frontend bound to the named backend. *)
  | Device_del of { id : string }

type response =
  | Ok_done
  | Ok_nic of { mac : Nest_net.Mac.t }
      (** Device_add returns the MAC the orchestrator forwards to its VM
          agent (§3.1 step 3). *)
  | Error of string

val command_name : command -> string

val idempotency_key : command -> string
(** ["<command_name>:<id>"].  The id names the logical operation —
    orchestrator retries re-issue the same id, distinct operations use
    fresh ones — so the key identifies exactly one intended state change.
    {!Vmm.execute} journals the reply of every applied command under this
    key and answers a retried command from the journal instead of
    re-applying it (exactly-once hot-plug: a lost ack no longer means a
    duplicated device). *)

val pp_response : Format.formatter -> response -> unit
