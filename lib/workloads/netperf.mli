(** Netperf (§5.1): the micro-benchmark behind Figs. 2, 4 and 10.

    - [tcp_stream]: one connection, the client sends fixed-size messages
      as fast as the socket accepts them for the measurement window; the
      metric is average payload throughput.
    - [udp_rr]: synchronous request/response transactions, one at a
      time; the metric is the transaction latency distribution.

    Both run a warmup before the measured window and drive the engine to
    completion themselves. *)

open Nestfusion

type stream_result = {
  mbps : float;              (** Payload Mbit/s over the window. *)
  bytes_delivered : int;
  sends : int;
}

val tcp_stream :
  Testbed.t ->
  App.endpoints ->
  msg_size:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  stream_result
(** Defaults: 100 ms warmup, 2 s measured (the paper uses 20 s wall
    time; in simulation the steady state is reached well within 2 s —
    benches can lengthen it). *)

type rr_result = {
  latency : Nest_sim.Stats.t;  (** Per-transaction round-trip, us. *)
  transactions : int;
}

val udp_rr :
  Testbed.t ->
  App.endpoints ->
  msg_size:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  rr_result

val tcp_rr :
  Testbed.t ->
  App.endpoints ->
  msg_size:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  rr_result
(** Netperf's TCP_RR mode: synchronous transactions over one persistent
    connection. *)

val default_sizes : int list
(** The message-size sweep of Figs. 4 and 10: 64 B .. 16 KiB. *)

(** {2 Fault-tolerant UDP_RR driver}

    {!udp_rr} drives the engine itself, which a chaos cell cannot allow.
    The driver below is purely event-scheduled: the same closed loop and
    application costs, but each transaction is armed with a resend
    watchdog so a dead or restarting server costs counted losses rather
    than a wedged loop. *)

val udp_echo_server :
  Nest_net.Stack.ns -> port:int -> exec:Nest_sim.Exec.t ->
  Nest_net.Stack.Udp.sock
(** The UDP_RR server half on its own: echo after the per-transaction
    application cost on [exec].  Re-deployable into a fresh pod namespace
    after a crash. *)

type rr_driver = {
  rrd_sent : unit -> int;        (** transactions attempted so far *)
  rrd_lost : unit -> int;        (** given up on by the resend watchdog *)
  rrd_completions : unit -> (Nest_sim.Time.ns * float) list;
      (** (completion time, round-trip us) in completion order — the
          harness splits these into during-fault and post-recovery
          windows itself. *)
  rrd_skew : unit -> Nest_sim.Hdr.t;
      (** Coordinated-omission ledger (wrk2): per send, actual minus
          intended start in us, where intended is the previous
          completion plus the client's per-call cost — or, after a
          watchdog fire, the lost op's own send time.  A loop wedged
          behind a dead server records its stall here even though the
          completed-RTT histogram stays flat. *)
  rrd_corrected : unit -> Nest_sim.Hdr.t;
      (** wrk2's corrected latency: per completion, the measured RTT
          plus that operation's own send skew — what the op would have
          measured had it left on time.  The honest percentile to quote
          when the skew ledger flags coordinated omission. *)
}

val udp_rr_driver :
  Nestfusion.Testbed.t ->
  cl_ns:Nest_net.Stack.ns ->
  cl_exec:Nest_sim.Exec.t ->
  target:(unit -> (Nest_net.Ipv4.t * int) option) ->
  msg_size:int ->
  ?resend_timeout:Nest_sim.Time.ns ->
  ?slo:Nest_sim.Slo.t ->
  start:Nest_sim.Time.ns ->
  stop:Nest_sim.Time.ns ->
  unit ->
  rr_driver
(** Closed-loop UDP_RR from [cl_ns] against whatever [target] currently
    answers (polled per send, so the harness can re-point it after a
    re-deploy; [None] while the service is down just burns watchdog
    losses).  Runs between [start] and [stop] of virtual time without
    ever calling [Engine.run].  [slo] receives one
    {!Nest_sim.Slo.observe_sent} per transaction attempted and an
    [observe_ok] + [observe_latency] per completion. *)

(** {2 Scalable UDP echo pool}

    The serving side of a fleet node under autoscaling: [max] worker
    contexts ("pods") created up front for a deterministic exec roster,
    requests round-robined over the active prefix, and an activation
    knob an {!Nest_orch.Autoscaler} drives from inside its own tick
    events.  Warm standby workers activate instantly (the Deploy
    standby-pool story); cold ones pay a boot delay.  Deactivating a
    worker only stops routing to it — work already on its exec
    completes on schedule, so scale-down never strands a request. *)

type echo_pool = {
  epool_set_active : int -> unit;
      (** Set the routed-worker count, clamped to [1 .. max].  Growing
          past the warm set boots cold workers asynchronously; shrinking
          drains.  Call only from events of the owning engine. *)
  epool_active : unit -> int;       (** Routed prefix size (desired). *)
  epool_ready : unit -> int;        (** Workers actually serving now. *)
  epool_served : unit -> int;       (** Requests accepted so far. *)
  epool_cold_starts : unit -> int;  (** Boot delays paid so far. *)
  epool_close : unit -> unit;
}

val udp_echo_pool :
  ns:Nest_net.Stack.ns ->
  port:int ->
  new_exec:(string -> Nest_sim.Exec.t) ->
  ?service_cost:Nest_sim.Time.ns ->
  ?initial:int ->
  max:int ->
  ?standby:int ->
  ?boot_delay:Nest_sim.Time.ns ->
  ?slo:Nest_sim.Slo.t ->
  unit ->
  echo_pool
(** [new_exec] is the worker-context factory (e.g. a deployment site's
    [site_new_exec]); it is called exactly [max] times at creation.
    Workers [0 .. initial-1] start ready, the next [standby] start
    warm, the rest cold.  Each request pays [service_cost] (default:
    the echo server's per-transaction cost) on its worker before the
    reply leaves.  [slo] — a {e server-side} monitor — receives sent at
    arrival and ok/latency at reply, where latency is the request's
    queueing plus service time on the node; its burn is what a
    co-located autoscaler should read.  Defaults: [initial] 1,
    [standby] 0, [boot_delay] 50 ms. *)
