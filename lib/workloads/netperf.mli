(** Netperf (§5.1): the micro-benchmark behind Figs. 2, 4 and 10.

    - [tcp_stream]: one connection, the client sends fixed-size messages
      as fast as the socket accepts them for the measurement window; the
      metric is average payload throughput.
    - [udp_rr]: synchronous request/response transactions, one at a
      time; the metric is the transaction latency distribution.

    Both run a warmup before the measured window and drive the engine to
    completion themselves. *)

open Nestfusion

type stream_result = {
  mbps : float;              (** Payload Mbit/s over the window. *)
  bytes_delivered : int;
  sends : int;
}

val tcp_stream :
  Testbed.t ->
  App.endpoints ->
  msg_size:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  stream_result
(** Defaults: 100 ms warmup, 2 s measured (the paper uses 20 s wall
    time; in simulation the steady state is reached well within 2 s —
    benches can lengthen it). *)

type rr_result = {
  latency : Nest_sim.Stats.t;  (** Per-transaction round-trip, us. *)
  transactions : int;
}

val udp_rr :
  Testbed.t ->
  App.endpoints ->
  msg_size:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  rr_result

val tcp_rr :
  Testbed.t ->
  App.endpoints ->
  msg_size:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  rr_result
(** Netperf's TCP_RR mode: synchronous transactions over one persistent
    connection. *)

val default_sizes : int list
(** The message-size sweep of Figs. 4 and 10: 64 B .. 16 KiB. *)

(** {2 Fault-tolerant UDP_RR driver}

    {!udp_rr} drives the engine itself, which a chaos cell cannot allow.
    The driver below is purely event-scheduled: the same closed loop and
    application costs, but each transaction is armed with a resend
    watchdog so a dead or restarting server costs counted losses rather
    than a wedged loop. *)

val udp_echo_server :
  Nest_net.Stack.ns -> port:int -> exec:Nest_sim.Exec.t ->
  Nest_net.Stack.Udp.sock
(** The UDP_RR server half on its own: echo after the per-transaction
    application cost on [exec].  Re-deployable into a fresh pod namespace
    after a crash. *)

type rr_driver = {
  rrd_sent : unit -> int;        (** transactions attempted so far *)
  rrd_lost : unit -> int;        (** given up on by the resend watchdog *)
  rrd_completions : unit -> (Nest_sim.Time.ns * float) list;
      (** (completion time, round-trip us) in completion order — the
          harness splits these into during-fault and post-recovery
          windows itself. *)
  rrd_skew : unit -> Nest_sim.Hdr.t;
      (** Coordinated-omission ledger (wrk2): per send, actual minus
          intended start in us, where intended is the previous
          completion plus the client's per-call cost — or, after a
          watchdog fire, the lost op's own send time.  A loop wedged
          behind a dead server records its stall here even though the
          completed-RTT histogram stays flat. *)
}

val udp_rr_driver :
  Nestfusion.Testbed.t ->
  cl_ns:Nest_net.Stack.ns ->
  cl_exec:Nest_sim.Exec.t ->
  target:(unit -> (Nest_net.Ipv4.t * int) option) ->
  msg_size:int ->
  ?resend_timeout:Nest_sim.Time.ns ->
  ?slo:Nest_sim.Slo.t ->
  start:Nest_sim.Time.ns ->
  stop:Nest_sim.Time.ns ->
  unit ->
  rr_driver
(** Closed-loop UDP_RR from [cl_ns] against whatever [target] currently
    answers (polled per send, so the harness can re-point it after a
    re-deploy; [None] while the service is down just burns watchdog
    losses).  Runs between [start] and [stop] of virtual time without
    ever calling [Engine.run].  [slo] receives one
    {!Nest_sim.Slo.observe_sent} per transaction attempted and an
    [observe_ok] + [observe_latency] per completion. *)
