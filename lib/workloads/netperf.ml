open Nest_net
open Nestfusion
module Engine = Nest_sim.Engine
module Time = Nest_sim.Time

type stream_result = { mbps : float; bytes_delivered : int; sends : int }

(* Application-side per-call costs (netperf itself is a thin loop). *)
let app_send_cost_ns = 180
let app_recv_cost_ns = 250

let tcp_stream tb (ep : App.endpoints) ~msg_size ?(warmup = Time.ms 100)
    ?(duration = Time.sec 2) () =
  let engine = tb.Testbed.engine in
  let received = ref 0 in
  let sends = ref 0 in
  Stack.Tcp.listen ep.App.sv_ns ~port:ep.App.sv_port ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes ~msgs:_ ->
          received := !received + bytes;
          Nest_sim.Exec.submit ep.App.sv_exec ~cost:app_recv_cost_ns
            (fun () -> ())));
  let stop_at = ref max_int in
  let rec fill conn =
    if Engine.now engine < !stop_at then begin
      let accepted = ref true in
      while !accepted do
        if Stack.Tcp.send conn ~size:msg_size () then begin
          incr sends;
          Nest_sim.Exec.submit ep.App.cl_exec ~cost:app_send_cost_ns
            (fun () -> ())
        end
        else accepted := false
      done;
      Stack.Tcp.set_on_writable conn (fun () -> fill conn)
    end
  in
  let _conn =
    Stack.Tcp.connect ep.App.cl_ns ~dst:ep.App.sv_addr ~port:ep.App.sv_port
      ~on_established:(fun conn -> fill conn)
      ()
  in
  let t0 = Engine.now engine in
  stop_at := t0 + warmup + duration;
  Engine.run ~until:(t0 + warmup) engine;
  let base = !received in
  Engine.run ~until:!stop_at engine;
  Stack.Tcp.unlisten ep.App.sv_ns ~port:ep.App.sv_port;
  let bytes = !received - base in
  let mbps = float_of_int (bytes * 8) /. Time.to_sec_f duration /. 1e6 in
  { mbps; bytes_delivered = bytes; sends = !sends }

type rr_result = { latency : Nest_sim.Stats.t; transactions : int }

let udp_rr tb (ep : App.endpoints) ~msg_size ?(warmup = Time.ms 50)
    ?(duration = Time.sec 1) () =
  let engine = tb.Testbed.engine in
  let latency = Nest_sim.Stats.create ~name:"udp_rr_us" () in
  let transactions = ref 0 in
  let measuring = ref false in
  let stop_at = ref max_int in
  let server =
    Stack.Udp.bind ep.App.sv_ns ~port:ep.App.sv_port
      (fun s ~src payload ->
        let ip, p = src in
        (* Echo after the server's per-transaction application work. *)
        Nest_sim.Exec.submit ep.App.sv_exec ~cost:app_recv_cost_ns (fun () ->
            Stack.Udp.sendto s ~dst:ip ~dst_port:p payload))
  in
  let sent_at = ref 0 in
  let client_sock = ref None in
  let send_next () =
    match !client_sock with
    | None -> ()
    | Some sock ->
      sent_at := Engine.now engine;
      Stack.Udp.sendto sock ~dst:ep.App.sv_addr ~dst_port:ep.App.sv_port
        (Payload.raw msg_size)
  in
  let sock =
    Stack.Udp.bind ep.App.cl_ns ~port:0 (fun _ ~src:_ _ ->
        let rtt = Engine.now engine - !sent_at in
        if !measuring then begin
          Nest_sim.Stats.add latency (Time.to_us_f rtt);
          incr transactions
        end;
        if Engine.now engine < !stop_at then
          Nest_sim.Exec.submit ep.App.cl_exec ~cost:app_send_cost_ns send_next)
  in
  client_sock := Some sock;
  let t0 = Engine.now engine in
  stop_at := t0 + warmup + duration;
  send_next ();
  Engine.run ~until:(t0 + warmup) engine;
  measuring := true;
  Engine.run ~until:!stop_at engine;
  (* Let the final in-flight transaction land. *)
  Engine.run ~until:(!stop_at + Time.ms 10) engine;
  Stack.Udp.close server;
  Stack.Udp.close sock;
  { latency; transactions = !transactions }

type Nest_net.Payload.app_msg +=
  | Rr_req of { t0 : Time.ns }
  | Rr_resp of { t0 : Time.ns }

let tcp_rr tb (ep : App.endpoints) ~msg_size ?(warmup = Time.ms 50)
    ?(duration = Time.sec 1) () =
  let engine = tb.Testbed.engine in
  let latency = Nest_sim.Stats.create ~name:"tcp_rr_us" () in
  let transactions = ref 0 in
  let measuring = ref false in
  let stop_at = ref max_int in
  Stack.Tcp.listen ep.App.sv_ns ~port:ep.App.sv_port ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
          List.iter
            (fun msg ->
              match msg with
              | Rr_req { t0 } ->
                Nest_sim.Exec.submit ep.App.sv_exec ~cost:app_recv_cost_ns
                  (fun () ->
                    if not (Stack.Tcp.is_closed conn) then
                      App.send_all conn ~size:msg_size ~msg:(Rr_resp { t0 }) ())
              | _ -> ())
            msgs));
  let send_next conn =
    App.send_all conn ~size:msg_size
      ~msg:(Rr_req { t0 = Engine.now engine })
      ()
  in
  ignore
    (Stack.Tcp.connect ep.App.cl_ns ~dst:ep.App.sv_addr ~port:ep.App.sv_port
       ~on_established:(fun conn ->
         Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
             List.iter
               (fun msg ->
                 match msg with
                 | Rr_resp { t0 } ->
                   if !measuring then begin
                     Nest_sim.Stats.add latency
                       (Time.to_us_f (Engine.now engine - t0));
                     incr transactions
                   end;
                   if Engine.now engine < !stop_at then
                     Nest_sim.Exec.submit ep.App.cl_exec
                       ~cost:app_send_cost_ns (fun () ->
                         if not (Stack.Tcp.is_closed conn) then send_next conn)
                 | _ -> ())
               msgs);
         send_next conn)
       ());
  let t0 = Engine.now engine in
  stop_at := t0 + warmup + duration;
  Engine.run ~until:(t0 + warmup) engine;
  measuring := true;
  Engine.run ~until:!stop_at engine;
  Engine.run ~until:(!stop_at + Time.ms 10) engine;
  Stack.Tcp.unlisten ep.App.sv_ns ~port:ep.App.sv_port;
  { latency; transactions = !transactions }

let default_sizes = [ 64; 128; 256; 512; 1024; 1280; 2048; 4096; 8192; 16384 ]

(* ---- fault-tolerant UDP_RR driver (chaos cells) ----

   [udp_rr] above owns the engine: it drives [Engine.run] to completion,
   which a chaos cell — whose engine is busy crashing VMs — cannot use.
   This driver is purely event-scheduled: same closed loop, same
   application costs, but each transaction is armed with a resend
   watchdog so the loop survives a dead server instead of wedging on the
   first lost datagram.  Transactions lost to the watchdog are counted;
   completions carry their wall-clock time so the harness can split
   latency into during-fault and post-recovery windows. *)

type Nest_net.Payload.app_msg += Rr_tagged of { seq : int; t0 : Time.ns }

let udp_echo_server ns ~port ~exec =
  Stack.Udp.bind ns ~port (fun s ~src payload ->
      let ip, p = src in
      Nest_sim.Exec.submit exec ~cost:app_recv_cost_ns (fun () ->
          Stack.Udp.sendto s ~dst:ip ~dst_port:p payload))

type rr_driver = {
  rrd_sent : unit -> int;
  rrd_lost : unit -> int;
  rrd_completions : unit -> (Time.ns * float) list;
  rrd_skew : unit -> Nest_sim.Hdr.t;
  rrd_corrected : unit -> Nest_sim.Hdr.t;
}

let udp_rr_driver tb ~cl_ns ~cl_exec ~target ~msg_size
    ?(resend_timeout = Time.ms 10) ?slo ~start ~stop () =
  let engine = tb.Testbed.engine in
  let sent = ref 0 and lost = ref 0 in
  let completions = ref [] in
  let slo_sent () =
    match slo with Some s -> Nest_sim.Slo.observe_sent s | None -> ()
  in
  let slo_done us =
    match slo with
    | Some s ->
      Nest_sim.Slo.observe_ok s;
      Nest_sim.Slo.observe_latency s us
    | None -> ()
  in
  (* Sequence tags tell a live transaction's reply from a stale one: a
     reply outrun by its own watchdog must not complete the transaction
     the watchdog already re-drove. *)
  let outstanding = ref 0 in
  let seq = ref 0 in
  let sock = ref None in
  (* Coordinated-omission ledger (wrk2): [intended] is when this send
     would have left the client had nothing stalled — the previous
     completion plus the client's own per-call cost, or, after a
     watchdog fire, the lost op's send time (the loop owed a send it
     never made).  Skew = actual - intended; a closed loop that wedges
     for a second shows up here even though its recorded RTTs stay
     flat. *)
  let skew = Nest_sim.Hdr.create ~name:"rr:skew_us" () in
  (* Corrected ledger: per completion, measured RTT plus that op's own
     send skew — wrk2's corrected percentile.  [cur_skew] carries the
     in-flight op's skew from send to completion (the loop is
     synchronous, so there is exactly one). *)
  let corrected = Nest_sim.Hdr.create ~name:"rr:corrected_us" () in
  let cur_skew = ref 0.0 in
  let intended = ref start in
  let last_send = ref start in
  let rec send_next () =
    if Engine.now engine < stop then begin
      let now = Engine.now engine in
      let sk_us = Float.max 0. (Time.to_us_f (now - !intended)) in
      Nest_sim.Hdr.add skew sk_us;
      cur_skew := sk_us;
      last_send := now;
      incr seq;
      let s = !seq in
      outstanding := s;
      incr sent;
      slo_sent ();
      (match (!sock, target ()) with
      | Some sk, Some (ip, p) ->
        Stack.Udp.sendto sk ~dst:ip ~dst_port:p
          (Payload.make ~size:msg_size
             (Rr_tagged { seq = s; t0 = Engine.now engine }))
      | _ -> ());
      Engine.schedule engine ~label:"rr:watchdog" ~delay:resend_timeout
        (fun () ->
          if !outstanding = s then begin
            incr lost;
            outstanding := 0;
            intended := !last_send + app_send_cost_ns;
            send_next ()
          end)
    end
  in
  let sk =
    Stack.Udp.bind cl_ns ~port:0 (fun _ ~src:_ payload ->
        match payload.Payload.msg with
        | Some (Rr_tagged { seq = s; t0 }) when !outstanding = s ->
          outstanding := 0;
          let us = Time.to_us_f (Engine.now engine - t0) in
          completions := (Engine.now engine, us) :: !completions;
          Nest_sim.Hdr.add corrected (us +. !cur_skew);
          slo_done us;
          if Engine.now engine < stop then begin
            intended := Engine.now engine + app_send_cost_ns;
            Nest_sim.Exec.submit cl_exec ~cost:app_send_cost_ns send_next
          end
        | _ -> ())
  in
  sock := Some sk;
  Engine.schedule_at engine ~label:"rr:start" ~at:start send_next;
  { rrd_sent = (fun () -> !sent);
    rrd_lost = (fun () -> !lost);
    rrd_completions = (fun () -> List.rev !completions);
    rrd_skew = (fun () -> skew);
    rrd_corrected = (fun () -> corrected) }

(* ---- scalable UDP echo pool (fleet serving side) ----

   [udp_echo_server] is one worker context behind one socket.  The pool
   generalizes it into the serving side of a fleet node: [max] worker
   contexts created up front (so the exec roster is deterministic),
   requests round-robined over the currently active prefix, and an
   [epool_set_active] knob an autoscaler drives.  Warm standby workers
   activate instantly; cold ones pay [boot_delay].  Scale-down is a
   drain by construction: a deactivated worker merely stops receiving
   new work — everything already submitted to its exec completes on
   schedule, so no request is ever stranded. *)

type echo_pool = {
  epool_set_active : int -> unit;
  epool_active : unit -> int;
  epool_ready : unit -> int;
  epool_served : unit -> int;
  epool_cold_starts : unit -> int;
  epool_close : unit -> unit;
}

type worker_state = Cold | Warm | Booting | Ready

let udp_echo_pool ~ns ~port ~new_exec ?(service_cost = app_recv_cost_ns)
    ?(initial = 1) ~max:max_workers ?(standby = 0)
    ?(boot_delay = Time.ms 50) ?slo () =
  if initial < 1 then invalid_arg "udp_echo_pool: initial must be >= 1";
  if max_workers < initial then
    invalid_arg "udp_echo_pool: max must be >= initial";
  if standby < 0 then invalid_arg "udp_echo_pool: standby must be >= 0";
  if boot_delay < 0 then invalid_arg "udp_echo_pool: boot_delay must be >= 0";
  if service_cost < 0 then
    invalid_arg "udp_echo_pool: service_cost must be >= 0";
  let workers =
    Array.init max_workers (fun i -> new_exec (Printf.sprintf "pod%d" i))
  in
  let engine = Nest_sim.Exec.engine workers.(0) in
  let state =
    Array.init max_workers (fun i ->
        if i < initial then Ready
        else if i < initial + standby then Warm
        else Cold)
  in
  let active = ref initial in
  let served = ref 0 in
  let cold_starts = ref 0 in
  let rr = ref 0 in
  let slo_sent () =
    match slo with Some s -> Nest_sim.Slo.observe_sent s | None -> ()
  in
  let slo_done us =
    match slo with
    | Some s ->
      Nest_sim.Slo.observe_ok s;
      Nest_sim.Slo.observe_latency s us
    | None -> ()
  in
  (* Next Ready worker in the active prefix, round-robin.  Worker 0 is
     Ready from creation and the knob never deactivates it, so the scan
     cannot come up empty. *)
  let pick () =
    let n = !active in
    let rec scan tries =
      let i = !rr mod n in
      rr := (!rr + 1) mod n;
      match state.(i) with
      | Ready -> i
      | Cold | Warm | Booting -> if tries <= 1 then 0 else scan (tries - 1)
    in
    scan n
  in
  let sock =
    Stack.Udp.bind ns ~port (fun s ~src payload ->
        let ip, p = src in
        incr served;
        slo_sent ();
        let arrived = Engine.now engine in
        let w = workers.(pick ()) in
        let finish =
          Nest_sim.Exec.submit_timed w ~cost:service_cost (fun () ->
              slo_done (Time.to_us_f (Engine.now engine - arrived));
              Stack.Udp.sendto s ~dst:ip ~dst_port:p payload)
        in
        ignore (finish : Time.ns))
  in
  let set_active n =
    let n = Stdlib.min max_workers (Stdlib.max 1 n) in
    let cur = !active in
    if n > cur then begin
      for i = cur to n - 1 do
        match state.(i) with
        | Warm -> state.(i) <- Ready  (* pre-provisioned: instant *)
        | Cold ->
          state.(i) <- Booting;
          incr cold_starts;
          Engine.schedule engine ~label:"epool:boot" ~delay:boot_delay
            (fun () -> if state.(i) = Booting then state.(i) <- Ready)
        | Booting | Ready -> ()
      done;
      active := n
    end
    else if n < cur then begin
      (* Drain: stop routing; in-flight work on the drained execs
         completes on schedule.  A drained worker stays warm — it was
         just running. *)
      for i = n to cur - 1 do
        match state.(i) with Ready | Booting -> state.(i) <- Warm | _ -> ()
      done;
      active := n
    end
  in
  {
    epool_set_active = set_active;
    epool_active = (fun () -> !active);
    epool_ready =
      (fun () ->
        Array.fold_left
          (fun acc st -> if st = Ready then acc + 1 else acc)
          0 state);
    epool_served = (fun () -> !served);
    epool_cold_starts = (fun () -> !cold_starts);
    epool_close = (fun () -> Stack.Udp.close sock);
  }
