open Nest_net
open Nestfusion
module Engine = Nest_sim.Engine
module Time = Nest_sim.Time

type op = Get | Set

type Payload.app_msg +=
  | Mc_request of { op : op; id : int; t0 : Time.ns }
  | Mc_response of { id : int; t0 : Time.ns }

type result = {
  responses_per_sec : float;
  latency : Nest_sim.Stats.t;
  skew : Nest_sim.Stats.t;
  gets : int;
  sets : int;
}

(* Wire sizes: textual protocol framing plus key/value bytes. *)
let get_request_bytes = 40
let set_request_bytes value = 48 + value
let get_response_bytes value = 38 + value
let set_response_bytes = 8

(* Server-side service costs (request parse, hash lookup, slab
   read/write, response build). *)
let get_service_mean_ns = 7_000.0
let set_service_mean_ns = 9_000.0
let service_cv = 0.25

(* memtier's own per-request client work (request build, response parse,
   histogram update). *)
let client_cost_ns = 11_000

(* Server half: service each request on a worker thread, then respond.
   Factored out so chaos cells can re-deploy it into a fresh pod
   namespace after a crash; [run] below uses it unchanged. *)
let serve ~pool ~rng ~value_size ns ~port =
  Stack.Tcp.listen ns ~port ~on_accept:(fun conn ->
      Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
          List.iter
            (fun msg ->
              match msg with
              | Mc_request { op; id; t0 } ->
                let mean =
                  match op with
                  | Get -> get_service_mean_ns
                  | Set -> set_service_mean_ns
                in
                let cost =
                  int_of_float
                    (Nest_sim.Dist.lognormal_mean_cv rng ~mean ~cv:service_cv)
                in
                let resp_bytes =
                  match op with
                  | Get -> get_response_bytes value_size
                  | Set -> set_response_bytes
                in
                App.Pool.submit pool ~cost (fun () ->
                    if not (Stack.Tcp.is_closed conn) then
                      App.send_all conn ~size:resp_bytes
                        ~msg:(Mc_response { id; t0 })
                        ())
              | _ -> ())
            msgs))

let run tb (ep : App.endpoints) ?(threads = 4) ?(conns_per_thread = 50)
    ?(value_size = 100) ?(server_threads = 4) ?(warmup = Time.ms 100)
    ?(duration = Time.sec 1) () =
  let engine = tb.Testbed.engine in
  let rng = Nest_sim.Prng.split (Engine.rng engine) in
  let latency = Nest_sim.Stats.create ~name:"memcached_us" () in
  (* Send skew: client-pool queueing between the loop deciding to issue
     an op and the request actually leaving.  Latency is measured from
     the actual send, so this is exactly the coordinated-omission bound
     on the published percentiles (wrk2). *)
  let skew = Nest_sim.Stats.create ~name:"memcached_skew_us" () in
  let gets = ref 0 and sets = ref 0 and responses = ref 0 in
  let measuring = ref false in
  let stop_at = ref max_int in
  let pool = App.Pool.create ep.App.sv_new_exec ~n:server_threads ~name:"mc" in
  let client_pool =
    App.Pool.create ep.App.cl_new_exec ~n:threads ~name:"memtier"
  in
  serve ~pool ~rng ~value_size ep.App.sv_ns ~port:ep.App.sv_port;
  (* memtier: one closed loop per connection. *)
  let next_id = ref 0 in
  let new_request conn =
    incr next_id;
    let id = !next_id in
    (* SET:GET = 1:10. *)
    let op = if Nest_sim.Prng.int rng 11 = 0 then Set else Get in
    if !measuring then (match op with Get -> incr gets | Set -> incr sets);
    let bytes =
      match op with
      | Get -> get_request_bytes
      | Set -> set_request_bytes value_size
    in
    let intended = Engine.now engine in
    App.Pool.submit client_pool ~cost:client_cost_ns (fun () ->
        if !measuring then
          Nest_sim.Stats.add skew
            (Time.to_us_f (Engine.now engine - intended));
        if not (Stack.Tcp.is_closed conn) then
          App.send_all conn ~size:bytes
            ~msg:(Mc_request { op; id; t0 = Engine.now engine })
            ())
  in
  let total_conns = threads * conns_per_thread in
  for _ = 1 to total_conns do
    ignore
      (Stack.Tcp.connect ep.App.cl_ns ~dst:ep.App.sv_addr ~port:ep.App.sv_port
         ~on_established:(fun conn ->
           Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
               List.iter
                 (fun msg ->
                   match msg with
                   | Mc_response { t0; _ } ->
                     if !measuring then begin
                       Nest_sim.Stats.add latency
                         (Time.to_us_f (Engine.now engine - t0));
                       incr responses
                     end;
                     if Engine.now engine < !stop_at then new_request conn
                   | _ -> ())
                 msgs);
           new_request conn)
         ())
  done;
  let t0 = Engine.now engine in
  stop_at := t0 + warmup + duration;
  Engine.run ~until:(t0 + warmup) engine;
  measuring := true;
  Engine.run ~until:!stop_at engine;
  Engine.run ~until:(!stop_at + Time.ms 20) engine;
  measuring := false;
  Stack.Tcp.unlisten ep.App.sv_ns ~port:ep.App.sv_port;
  { responses_per_sec = float_of_int !responses /. Time.to_sec_f duration;
    latency; skew; gets = !gets; sets = !sets }

(* ---- fault-tolerant driver (chaos cells) ----

   [run] owns the engine and assumes the server outlives the clients;
   neither holds in a chaos cell.  This driver keeps memtier's shape —
   closed loops over persistent connections, the same op mix and costs —
   but treats the connection as mortal: an op that times out twice in a
   row (or a connection that dies under it) suspends the loop instead of
   wedging it or raising on backpressure.  The harness resumes suspended
   loops when it knows the service is back ([mcd_resume] from its
   re-deploy hook) — informed reconnection, not blind retry. *)

type mc_driver = {
  mcd_sent : unit -> int;
  mcd_dropped : unit -> int;
  mcd_completions : unit -> (Time.ns * float) list;
  mcd_resume : unit -> unit;
  mcd_skew : unit -> Nest_sim.Hdr.t;
  mcd_corrected : unit -> Nest_sim.Hdr.t;
}

let drive tb ~cl_ns ~cl_new_exec ~target ?(threads = 2) ?(conns = 4)
    ?(value_size = 100) ?(op_timeout = Time.ms 60)
    ?(connect_timeout = Time.ms 500) ?slo ~start ~stop () =
  let engine = tb.Testbed.engine in
  let rng = Nest_sim.Prng.split (Engine.rng engine) in
  let client_pool = App.Pool.create cl_new_exec ~n:threads ~name:"memtier-f" in
  let sent = ref 0 and dropped = ref 0 in
  let completions = ref [] in
  let slo_sent () =
    match slo with Some s -> Nest_sim.Slo.observe_sent s | None -> ()
  in
  let slo_done us =
    match slo with
    | Some s ->
      Nest_sim.Slo.observe_ok s;
      Nest_sim.Slo.observe_latency s us
    | None -> ()
  in
  (* Coordinated-omission ledger (wrk2): each send records how late it
     left relative to when a prompt loop would have issued it.  A
     suspension remembers *when* the loop parked, so the whole outage —
     strikes, the parked wait, the reconnect handshake — lands in the
     first post-resume send's skew rather than vanishing from the
     record the way it does from the completion latencies. *)
  let skew = Nest_sim.Hdr.create ~name:"mc:skew_us" () in
  (* Corrected ledger: measured latency plus the op's own send skew —
     wrk2's corrected percentile, the honest number when skew flags
     coordinated omission. *)
  let corrected = Nest_sim.Hdr.create ~name:"mc:corrected_us" () in
  let suspended = ref [] in
  let suspend () = suspended := Engine.now engine :: !suspended in
  let next_id = ref 0 in
  (* Bumped by every [mcd_resume].  A connection remembers the epoch it
     was born under; giving up in a *later* epoch means the service was
     re-deployed while this loop was still striking out against the dead
     generation — reconnect at once instead of suspending, or the resume
     edge (which already passed) would never be seen again. *)
  let epoch = ref 0 in
  let rec start_conn ?intended () =
    if Engine.now engine >= stop then ()
    else
      match target () with
      | None -> suspend ()
      | Some (addr, port) ->
        let intent0 =
          match intended with Some t -> t | None -> Engine.now engine
        in
        let my_epoch = !epoch in
        let established = ref false in
        let awaiting = ref 0 in
        let strikes = ref 0 in
        let gone = ref false in
        let last_send = ref intent0 in
        (* This connection's in-flight op's send skew (one outstanding
           op per closed loop), carried from send to completion. *)
        let cur_skew = ref 0.0 in
        let give_up conn =
          if not !gone then begin
            gone := true;
            (try Stack.Tcp.close conn with _ -> ());
            if Engine.now engine < stop then
              if !epoch > my_epoch then start_conn () else suspend ()
          end
        in
        let rec new_request ~intended conn =
          if Engine.now engine >= stop || !gone then ()
          else begin
            incr next_id;
            let id = !next_id in
            let op = if Nest_sim.Prng.int rng 11 = 0 then Set else Get in
            let bytes =
              match op with
              | Get -> get_request_bytes
              | Set -> set_request_bytes value_size
            in
            incr sent;
            slo_sent ();
            awaiting := id;
            App.Pool.submit client_pool ~cost:client_cost_ns (fun () ->
                let now = Engine.now engine in
                let sk_us = Float.max 0. (Time.to_us_f (now - intended)) in
                Nest_sim.Hdr.add skew sk_us;
                cur_skew := sk_us;
                last_send := now;
                if (not !gone) && not (Stack.Tcp.is_closed conn) then
                  (* Raw send, not [App.send_all]: with the server dead
                     nothing drains the socket, so backpressure is
                     survival information here, not a protocol bug. *)
                  ignore
                    (Stack.Tcp.send conn ~size:bytes
                       ~msg:(Mc_request { op; id; t0 = now })
                       ()));
            Engine.schedule engine ~label:"mc:watchdog" ~delay:op_timeout
              (fun () ->
                if (not !gone) && !awaiting = id then begin
                  incr dropped;
                  incr strikes;
                  awaiting := 0;
                  if !strikes >= 2 || Stack.Tcp.is_closed conn then
                    give_up conn
                  else
                    new_request ~intended:(!last_send + client_cost_ns) conn
                end)
          end
        in
        let conn =
          Stack.Tcp.connect cl_ns ~dst:addr ~port
            ~on_established:(fun conn ->
              established := true;
              Stack.Tcp.set_on_receive conn (fun ~bytes:_ ~msgs ->
                  List.iter
                    (fun msg ->
                      match msg with
                      | Mc_response { id; t0 }
                        when (not !gone) && !awaiting = id ->
                        awaiting := 0;
                        strikes := 0;
                        let us = Time.to_us_f (Engine.now engine - t0) in
                        completions := (Engine.now engine, us) :: !completions;
                        Nest_sim.Hdr.add corrected (us +. !cur_skew);
                        slo_done us;
                        if Engine.now engine < stop then
                          new_request
                            ~intended:(Engine.now engine + client_cost_ns)
                            conn
                      | _ -> ())
                    msgs);
              new_request ~intended:intent0 conn)
            ()
        in
        (* A SYN into a dead VM never completes the handshake.  The
           window must outlive at least one SYN retransmission (RTO
           200 ms): right after a re-deploy the first SYN can chase a
           stale neighbour entry — the replacement pod's gratuitous ARP
           is still propagating — and only the retransmit connects. *)
        Engine.schedule engine ~label:"mc:connect" ~delay:connect_timeout
          (fun () -> if not !established then give_up conn)
  in
  let resume () =
    incr epoch;
    let parked = !suspended in
    suspended := [];
    List.iter (fun parked_at -> start_conn ~intended:parked_at ()) parked
  in
  Engine.schedule_at engine ~label:"mc:start" ~at:start (fun () ->
      for _ = 1 to conns do
        start_conn ()
      done);
  { mcd_sent = (fun () -> !sent);
    mcd_dropped = (fun () -> !dropped);
    mcd_completions = (fun () -> List.rev !completions);
    mcd_resume = resume;
    mcd_skew = (fun () -> skew);
    mcd_corrected = (fun () -> corrected) }
