(** Memcached server + memtier_benchmark client (Table 1 row 1).

    memtier drives a closed loop: [threads × conns_per_thread] persistent
    TCP connections, each issuing the next request as soon as the
    previous response arrives, with a SET:GET ratio of 1:10.  Metrics are
    responses per second and the per-request latency distribution —
    Figs. 5 (gain), 11/12 (Hostlo overhead) and the CPU figures. *)

open Nestfusion

type result = {
  responses_per_sec : float;
  latency : Nest_sim.Stats.t;  (** Per-request, us. *)
  skew : Nest_sim.Stats.t;
      (** Per-request send skew (us): client-pool queueing between the
          loop deciding to issue an op and the request leaving.  The
          coordinated-omission bound on the published percentiles —
          figure paths print its p99 next to the latency numbers. *)
  gets : int;
  sets : int;
}

val run :
  Testbed.t ->
  App.endpoints ->
  ?threads:int ->
  ?conns_per_thread:int ->
  ?value_size:int ->
  ?server_threads:int ->
  ?warmup:Nest_sim.Time.ns ->
  ?duration:Nest_sim.Time.ns ->
  unit ->
  result
(** Defaults follow Table 1: 4 threads, 50 connections/thread, 1:10
    SET:GET; 100-byte values; 4 server worker threads. *)

(** {2 Fault-tolerant pieces (chaos cells)}

    {!run} owns the engine and assumes the server outlives the client;
    neither holds under fault injection.  [serve] is the server half on
    its own, re-deployable into a fresh pod namespace; [drive] is a
    memtier-shaped client whose connections are mortal: a request that
    times out twice in a row (or a connection that dies under it)
    suspends that loop, and the harness resumes suspended loops when it
    knows the service is back. *)

val serve :
  pool:App.Pool.t ->
  rng:Nest_sim.Prng.t ->
  value_size:int ->
  Nest_net.Stack.ns ->
  port:int ->
  unit
(** Listen and service requests on the pool's worker threads (lognormal
    per-op cost drawn from [rng]), exactly as inside {!run}. *)

type mc_driver = {
  mcd_sent : unit -> int;
  mcd_dropped : unit -> int;      (** ops lost to the watchdog *)
  mcd_completions : unit -> (Nest_sim.Time.ns * float) list;
      (** (completion time, latency us) in completion order *)
  mcd_resume : unit -> unit;
      (** reconnect every suspended loop — call when the service is
          known to be back (the harness's re-deploy hook) *)
  mcd_skew : unit -> Nest_sim.Hdr.t;
      (** Coordinated-omission ledger (wrk2): per send, actual minus
          intended start in us.  A suspension remembers when the loop
          parked, so the whole outage — strikes, the parked wait, the
          reconnect — lands in the first post-resume send's skew. *)
  mcd_corrected : unit -> Nest_sim.Hdr.t;
      (** wrk2's corrected latency: per completion, measured plus that
          op's own send skew — the honest percentile when the skew
          ledger flags coordinated omission. *)
}

val drive :
  Testbed.t ->
  cl_ns:Nest_net.Stack.ns ->
  cl_new_exec:(string -> Nest_sim.Exec.t) ->
  target:(unit -> (Nest_net.Ipv4.t * int) option) ->
  ?threads:int ->
  ?conns:int ->
  ?value_size:int ->
  ?op_timeout:Nest_sim.Time.ns ->
  ?connect_timeout:Nest_sim.Time.ns ->
  ?slo:Nest_sim.Slo.t ->
  start:Nest_sim.Time.ns ->
  stop:Nest_sim.Time.ns ->
  unit ->
  mc_driver
(** Closed loops from [cl_ns] against whatever [target] currently
    answers (polled at each (re)connect).  Runs between [start] and
    [stop] of virtual time without ever calling [Engine.run].  Defaults:
    2 threads, 4 connections, 60 ms op timeout.  [connect_timeout]
    (default 500 ms) bounds the handshake instead: it must outlive a SYN
    retransmission, because the first SYN after a re-deploy can chase a
    stale neighbour entry and only the retransmit reaches the
    replacement pod.  [slo] receives one {!Nest_sim.Slo.observe_sent}
    per op attempted and an [observe_ok] + [observe_latency] per
    completion. *)
