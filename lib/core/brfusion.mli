(** BrFusion (§3): network virtualization de-duplication.

    Instead of bridging the pod into an in-VM docker0 + NAT layer, the
    orchestrator asks the VMM — over its management side channel — to
    hot-plug a fresh virtio NIC into the VM for this pod.  The NIC's
    host-side backend is enslaved to the host bridge, and the guest-side
    device is moved straight into the pod's network namespace: the pod is
    directly linked to the host-level virtual network, with addressing and
    NAT exactly as the host already does for VMs.

    The four-step protocol of §3.1 maps to this implementation as:
    + the plugin calls {!Nest_virt.Vmm.hotplug_nic}, naming the target
      host bridge (steps 1–2: netdev_add + device_add over QMP);
    + the VMM answers with the new NIC's MAC (step 3);
    + the plugin, acting as the in-VM agent, waits for the device to
      appear by that MAC, moves it into the pod namespace and configures
      address + default route (step 4). *)

open Nest_net

type config
(** A deployment's BrFusion state: VMM handle, target bridge, pod IPAM,
    plus the pod address assignments and hotplug count accumulated by
    {!plugin}.  All of it has the config's lifetime. *)

val make_config :
  ?garp:bool -> Nest_virt.Vmm.t -> host_bridge:string -> config
(** Builds the IPAM from the bridge's subnet, reserving the gateway and
    already-used VM addresses as callers allocate them through it too.

    [garp] (default false) broadcasts a gratuitous ARP ({!Stack.garp})
    when a pod's address is configured.  Deployments that recycle leases
    — chaos cells running {!release_vm} — need it: a reused address
    otherwise stays bound to the dead pod's MAC in peer neighbour caches
    and the replacement is blackholed.  Off by default so unfaulted
    benchmark figures keep their exact frame sequence. *)

val host_bridge : config -> string
(** Bridge whose network pods join. *)

val pod_ipam : config -> Ipam.t
(** Addresses for pod NICs (host-bridge subnet); callers provisioning
    sibling endpoints (e.g. fresh VMs) allocate through this too. *)

val plugin : config -> Nest_orch.Cni.t
(** CNI plugin named "brfusion". *)

val pod_ip : config -> Stack.ns -> Ipv4.t option
(** Address assigned to a pod namespace by this plugin. *)

val release_vm : config -> vm:Nest_virt.Vm.t -> int
(** Crash-time lease GC: frees the IPAM lease of every pod namespace
    living inside [vm] (which just died) and drops their assignments;
    returns how many were released.  Chaos recovery calls this from its
    crash hook — replacement pods allocate fresh leases, so a dead VM's
    leases would otherwise leak forever. *)

val hotplug_count : config -> int
(** NICs provisioned so far (diagnostics). *)

val live_assignments : config -> int
(** Pod addresses currently assigned.  The no-leak invariant chaos cells
    assert is [Ipam.in_use (pod_ipam c) = live_assignments c] once the
    engine quiesces: every allocated lease is held by a live pod. *)
