open Nest_net

type server_site = {
  site_ns : Stack.ns;
  site_addr : Ipv4.t;
  site_port : int;
  site_exec : Nest_sim.Exec.t;
  site_entity : string;
  site_new_exec : string -> Nest_sim.Exec.t;
}

let vm_primary_ip vm =
  let lo = Ipv4.cidr_of_string "127.0.0.0/8" in
  match
    List.find_opt
      (fun (_, ip, _) -> not (Ipv4.in_subnet lo ip))
      (Stack.addrs (Nest_virt.Vm.ns vm))
  with
  | Some (_, ip, _) -> ip
  | None -> failwith "Deploy: VM has no address"

let deploy_single (tb : Testbed.t) ~mode ~name ~entity ~port ~k =
  let vm = Testbed.vm tb 0 in
  let node = Testbed.node tb 0 in
  let exec = Nest_virt.Vm.new_app_exec vm ~name:(name ^ ":app") ~entity in
  let site_new_exec n = Nest_virt.Vm.new_app_exec vm ~name:n ~entity in
  match mode with
  | `NoCont ->
    k
      { site_ns = Nest_virt.Vm.ns vm; site_addr = vm_primary_ip vm;
        site_port = port; site_exec = exec; site_entity = entity;
        site_new_exec }
  | `Nat ->
    let plugin = Nest_orch.Cni_bridge.plugin () in
    plugin.Nest_orch.Cni.add ~pod_name:name ~node
      ~publish:[ (port, port) ]
      ~k:(fun netns ->
        k
          { site_ns = netns; site_addr = vm_primary_ip vm; site_port = port;
            site_exec = exec; site_entity = entity; site_new_exec })
  | `Brfusion ->
    let config =
      Brfusion.make_config tb.Testbed.vmm
        ~host_bridge:(tb.Testbed.prefix ^ "virbr0")
    in
    let plugin = Brfusion.plugin config in
    plugin.Nest_orch.Cni.add ~pod_name:name ~node ~publish:[]
      ~k:(fun netns ->
        let addr =
          match Brfusion.pod_ip config netns with
          | Some ip -> ip
          | None -> failwith "Deploy: BrFusion assigned no address"
        in
        k
          { site_ns = netns; site_addr = addr; site_port = port;
            site_exec = exec; site_entity = entity; site_new_exec })

type pair_site = {
  a_ns : Stack.ns;
  a_exec : Nest_sim.Exec.t;
  a_entity : string;
  b_ns : Stack.ns;
  b_exec : Nest_sim.Exec.t;
  b_entity : string;
  b_addr : Ipv4.t;
  b_port : int;
  a_new_exec : string -> Nest_sim.Exec.t;
  b_new_exec : string -> Nest_sim.Exec.t;
}

let deploy_pair ?(standby = 0) (tb : Testbed.t) ~mode ~name ~a_entity
    ~b_entity ~port ~k =
  if standby < 0 then invalid_arg "Deploy.deploy_pair: standby must be >= 0";
  let vm_a = Testbed.vm tb 0 in
  match mode with
  | `SameNode ->
    (* Whole pod on one node: a single shared namespace, localhost. *)
    let pod_ns = Nest_virt.Vm.new_netns vm_a ~name () in
    let a_exec =
      Nest_virt.Vm.new_app_exec vm_a ~name:(name ^ ":a") ~entity:a_entity
    in
    let b_exec =
      Nest_virt.Vm.new_app_exec vm_a ~name:(name ^ ":b") ~entity:b_entity
    in
    k
      { a_ns = pod_ns; a_exec; a_entity; b_ns = pod_ns; b_exec; b_entity;
        b_addr = Ipv4.localhost; b_port = port;
        a_new_exec =
          (fun n -> Nest_virt.Vm.new_app_exec vm_a ~name:n ~entity:a_entity);
        b_new_exec =
          (fun n -> Nest_virt.Vm.new_app_exec vm_a ~name:n ~entity:b_entity) }
  | `NatX ->
    let vm_b = Testbed.vm tb 1 in
    let a_exec =
      Nest_virt.Vm.new_app_exec vm_a ~name:(name ^ ":a") ~entity:a_entity
    in
    let b_exec =
      Nest_virt.Vm.new_app_exec vm_b ~name:(name ^ ":b") ~entity:b_entity
    in
    let plugin = Nest_orch.Cni_bridge.plugin () in
    plugin.Nest_orch.Cni.add ~pod_name:(name ^ "-a") ~node:(Testbed.node tb 0)
      ~publish:[]
      ~k:(fun a_ns ->
        plugin.Nest_orch.Cni.add ~pod_name:(name ^ "-b")
          ~node:(Testbed.node tb 1)
          ~publish:[ (port, port) ]
          ~k:(fun b_ns ->
            k
              { a_ns; a_exec; a_entity; b_ns; b_exec; b_entity;
                b_addr = vm_primary_ip vm_b; b_port = port;
                a_new_exec =
                  (fun n ->
                    Nest_virt.Vm.new_app_exec vm_a ~name:n ~entity:a_entity);
                b_new_exec =
                  (fun n ->
                    Nest_virt.Vm.new_app_exec vm_b ~name:n ~entity:b_entity) }))
  | `Overlay ->
    let vm_b = Testbed.vm tb 1 in
    let a_exec =
      Nest_virt.Vm.new_app_exec vm_a ~name:(name ^ ":a") ~entity:a_entity
    in
    let b_exec =
      Nest_virt.Vm.new_app_exec vm_b ~name:(name ^ ":b") ~entity:b_entity
    in
    let net =
      Nest_orch.Cni_overlay.create ~name:(name ^ "-ov") ~vni:4242
        ~subnet:(Ipv4.cidr_of_string "10.222.0.0/16")
    in
    let plugin = Nest_orch.Cni_overlay.plugin net in
    plugin.Nest_orch.Cni.add ~pod_name:(name ^ "-a") ~node:(Testbed.node tb 0)
      ~publish:[]
      ~k:(fun a_ns ->
        plugin.Nest_orch.Cni.add ~pod_name:(name ^ "-b")
          ~node:(Testbed.node tb 1) ~publish:[]
          ~k:(fun b_ns ->
            let b_addr =
              match Nest_orch.Cni_overlay.pod_ip net b_ns with
              | Some ip -> ip
              | None -> failwith "Deploy: overlay assigned no address"
            in
            k
              { a_ns; a_exec; a_entity; b_ns; b_exec; b_entity; b_addr;
                b_port = port;
                a_new_exec =
                  (fun n ->
                    Nest_virt.Vm.new_app_exec vm_a ~name:n ~entity:a_entity);
                b_new_exec =
                  (fun n ->
                    Nest_virt.Vm.new_app_exec vm_b ~name:n ~entity:b_entity) }))
  | `Hostlo ->
    let vm_b = Testbed.vm tb 1 in
    let a_exec =
      Nest_virt.Vm.new_app_exec vm_a ~name:(name ^ ":a") ~entity:a_entity
    in
    let b_exec =
      Nest_virt.Vm.new_app_exec vm_b ~name:(name ^ ":b") ~entity:b_entity
    in
    let config = Hostlo.make_config ~standby tb.Testbed.vmm in
    let plugin = Hostlo.plugin config in
    plugin.Nest_orch.Cni.add ~pod_name:name ~node:(Testbed.node tb 0)
      ~publish:[]
      ~k:(fun a_ns ->
        plugin.Nest_orch.Cni.add ~pod_name:name ~node:(Testbed.node tb 1)
          ~publish:[]
          ~k:(fun b_ns ->
            (* Warm the per-(VM, pod) endpoint pools right after both
               fractions land, so a later reschedule claims instead of
               paying the QMP hot-plug round-trip. *)
            if standby > 0 then begin
              Hostlo.preprovision config ~node:(Testbed.node tb 0)
                ~pod_name:name;
              Hostlo.preprovision config ~node:(Testbed.node tb 1)
                ~pod_name:name
            end;
            k
              { a_ns; a_exec; a_entity; b_ns; b_exec; b_entity;
                b_addr = Ipv4.localhost; b_port = port;
                a_new_exec =
                  (fun n ->
                    Nest_virt.Vm.new_app_exec vm_a ~name:n ~entity:a_entity);
                b_new_exec =
                  (fun n ->
                    Nest_virt.Vm.new_app_exec vm_b ~name:n ~entity:b_entity) }))
