(** The paper's §7 direction, implemented: the orchestrator as the only
    manager of the datacenter, with the VMM as its tool.

    The autopilot owns both the node fleet and the VMM.  Deploying a pod:

    + place it whole on an existing node ("most requested") and network
      it with BrFusion — the de-duplicated datapath is the default;
    + if no node can host it whole but the fleet's *aggregate* free
      capacity can, split the pod's containers across nodes
      (first-fit-decreasing) and give the pod a Hostlo localhost spanning
      its fractions — the cross-VM deployment §4 enables;
    + otherwise ask the VMM for a new VM (paying a provisioning delay),
      register it as a node, and retry.

    [scale_down] releases empty VMs, closing the loop the paper says
    current platforms lack: the orchestrator sizing the VM fleet. *)

open Nest_net

type t

type placement =
  | Whole of Nest_orch.Node.t * Stack.ns
  | Split of (Nest_orch.Node.t * Stack.ns) list
      (** One Hostlo fraction per node. *)

type deployment = {
  dep_tag : string;  (** Unique instance tag (volume registry key). *)
  dep_pod : Nest_orch.Pod.t;
  placement : placement;
  containers : Nest_container.Engine.container list;
}

val create :
  Testbed.t ->
  ?vm_vcpus:int ->
  ?vm_mem_mb:int ->
  ?provision_delay:Nest_sim.Time.ns ->
  ?allow_split:bool ->
  unit ->
  t
(** Starts with the testbed's existing nodes (if any).  Defaults: VMs of
    5 vCPUs / 4 GB (the paper's shape), 45 s provisioning (cloud VM boot),
    splitting allowed.  [allow_split:false] gives the pre-Hostlo world
    (whole-pod only) for comparison. *)

val deploy :
  t -> Nest_orch.Pod.t -> on_ready:(deployment -> unit) -> unit
(** Asynchronous; drive the engine.  Pod volumes are declared and mounted
    per §4.3: a pod with a non-shared (local) volume is never split — its
    filesystem cannot be visible from two OSes — so it falls back to
    whole-pod placement even when fragmentation would allow a split.
    Raises [Failure] only if a single container exceeds a whole VM. *)

val volumes : t -> Pod_resources.Volumes.t
(** The §4.3 volume registry the autopilot maintains. *)

val delete : t -> deployment -> unit
(** Stops containers and releases reservations (VMs stay until
    {!scale_down}). *)

val scale_down : t -> int
(** Releases nodes with no reservations; returns how many. *)

val replica_headroom : Nest_orch.Node.t -> cpu:float -> mem:float -> int
(** How many more replicas of the given shape the node's remaining
    capacity can host — the static ceiling a per-node autoscaler plans
    against at setup time (a runtime reservation from an arbitrary
    shard would race with the churn replay and break digest identity;
    see DESIGN.md §5e).  Raises [Invalid_argument] on a non-positive
    shape. *)

val nodes : t -> Nest_orch.Node.t list
val vms_bought : t -> int
val pods_split : t -> int
val deployments : t -> deployment list
