open Nest_net

(* Deployment state is part of the config record.  It used to live in a
   module-global [(config * state) list] found by physical equality —
   never pruned, so assignments and hotplug counts from finished runs
   stayed reachable forever.  Inlining the state gives it exactly the
   config's lifetime. *)
type config = {
  vmm : Nest_virt.Vmm.t;
  bridge_name : string;
  ipam : Ipam.t;
  garp : bool;
  mutable assignments : (Stack.ns * Ipv4.t) list;
  mutable hotplugs : int;
}

let host_bridge config = config.bridge_name
let pod_ipam config = config.ipam

let make_config ?(garp = false) vmm ~host_bridge =
  match Nest_virt.Vmm.bridge_addr vmm host_bridge with
  | None -> failwith ("Brfusion.make_config: no such bridge: " ^ host_bridge)
  | Some (gw, subnet) ->
    (* Reserve the gateway and every address already visible on the
       bridge's segment (the running VMs). *)
    let vm_addrs =
      List.concat_map
        (fun (_, vm) ->
          List.filter_map
            (fun (_, ip, _) ->
              if Ipv4.in_subnet subnet ip then Some ip else None)
            (Stack.addrs (Nest_virt.Vm.ns vm)))
        (Nest_virt.Vmm.vms vmm)
    in
    { vmm; bridge_name = host_bridge; garp;
      ipam = Ipam.create ~reserved:(gw :: vm_addrs) subnet;
      assignments = []; hotplugs = 0 }

let plugin config =
  let add ~pod_name ~node ~publish:_ ~k =
    let vm = Nest_orch.Node.vm node in
    let gw, subnet =
      match Nest_virt.Vmm.bridge_addr config.vmm config.bridge_name with
      | Some a -> a
      | None -> failwith "Brfusion: bridge disappeared"
    in
    let netns = Nest_virt.Vm.new_netns vm ~name:pod_name () in
    config.hotplugs <- config.hotplugs + 1;
    let kubelet = Nest_orch.Kubelet.of_node node in
    (* Steps 1-3: ask the VMM for a NIC on the host bridge; it answers
       with the new device's MAC.  A refused/timed-out round-trip is
       retried with backoff (kubelet semantics); only an exhausted
       policy fails the pod. *)
    Nest_orch.Kubelet.hotplug_with_retry kubelet
      ~issue:(fun ~k ->
        Nest_virt.Vmm.hotplug_nic_mac config.vmm ~vm
          ~bridge:config.bridge_name ~id:("brf-" ^ pod_name) ~k)
      ~k:(fun r ->
        match r with
        | Error e ->
          let engine = Nest_virt.Host.engine (Nest_virt.Vmm.host config.vmm) in
          Nest_sim.Metrics.bump
            (Nest_sim.Metrics.counter
               (Nest_sim.Engine.metrics engine)
               "fault.pod_setup_failed")
            ();
          Nest_sim.Engine.trace_instant engine ~cat:"fault"
            ~name:"pod_setup_failed" ~arg:(pod_name ^ ": " ^ e) ()
        | Ok mac ->
          (* Step 4: the VM agent discovers the device by MAC, moves it
             into the pod namespace and configures it. *)
          let ip = Ipam.alloc config.ipam in
          Nest_orch.Kubelet.configure_nic kubelet ~netns ~mac ~ip ~subnet
            ~gateway:gw
            ~on_dead:(fun () ->
              (* The VM died between the VMM's Ok and the guest-visible
                 device: the lease was reserved for a NIC that will never
                 be configured.  Freeing it here is what keeps IPAM
                 leak-free under crash faults — before, the lease died
                 with the discarded waiter. *)
              Ipam.free config.ipam ip;
              let engine =
                Nest_virt.Host.engine (Nest_virt.Vmm.host config.vmm)
              in
              Nest_sim.Metrics.bump
                (Nest_sim.Metrics.counter
                   (Nest_sim.Engine.metrics engine)
                   "recovery.lease_released")
                ();
              Nest_sim.Engine.trace_instant engine ~cat:"fault"
                ~name:"lease_released" ~arg:pod_name ())
            ~k:(fun dev ->
              config.assignments <- (netns, ip) :: config.assignments;
              (* Announce the address segment-wide: the lease may be a
                 crash-GC'd reuse, and peers still holding the previous
                 holder's MAC would otherwise blackhole this pod until
                 their neighbour entries expire. *)
              if config.garp then Stack.garp netns dev ip;
              k netns)
            ())
      ()
  in
  { Nest_orch.Cni.cni_name = "brfusion"; add }

(* Crash-time lease GC: every pod namespace inside the dead VM held an
   address out of the bridge subnet's pool.  The pods are gone — their
   replacements allocate fresh leases on reschedule — so without this the
   pool shrinks by [k_pods] per crash until allocation fails. *)
let release_vm config ~vm =
  let inside = Nest_virt.Vm.netns_list vm in
  let mine, rest =
    List.partition
      (fun (ns, _) -> List.exists (fun n -> n == ns) inside)
      config.assignments
  in
  config.assignments <- rest;
  List.iter (fun (_, ip) -> Ipam.free config.ipam ip) mine;
  List.length mine

let pod_ip config ns =
  List.find_map
    (fun (n, ip) -> if n == ns then Some ip else None)
    config.assignments

let hotplug_count config = config.hotplugs
let live_assignments config = List.length config.assignments
